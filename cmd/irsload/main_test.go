package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListPrintsVariants(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"1z4h", "2z4h-diurnal", "2z8h-outage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-nonsense"}, 2},
		{[]string{}, 2}, // no spec source
		{[]string{"-variant", "x", "-spec", "topo:zones=1,hosts=1"}, 2}, // two sources
		{[]string{"-variant", "nosuchrig"}, 2},
		{[]string{"-spec", "topo:zones=0"}, 2}, // invalid spec
		{[]string{"-file", "/nonexistent.load"}, 2},
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(t, tc.args...); code != tc.want {
			t.Errorf("%v: exit = %d, want %d", tc.args, code, tc.want)
		}
	}
}

func TestOutageVariantPassesExpectGate(t *testing.T) {
	// The acceptance rig end to end: outage mid-ramp, failover, the
	// autoscaler restoring the replica count, and a recovered SLO rate
	// below the 1% CI gate.
	code, out, errOut := runCmd(t, "-variant", "2z8h-outage", "-expect", "1.0")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"failover", "recovered", "expect gate", "— ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "scale +0/-0") {
		t.Fatalf("autoscaler never acted:\n%s", out)
	}
}

func TestExpectGateFailsWhenUnreachable(t *testing.T) {
	// A 0% gate cannot be met strictly (rate must be *below* it), so
	// this pins the failure path.
	code, _, errOut := runCmd(t, "-variant", "2z8h-outage", "-expect", "0")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "not below the -expect gate") {
		t.Fatalf("stderr missing gate message: %s", errOut)
	}
}

func TestExpectRequiresOutagePhases(t *testing.T) {
	code, _, errOut := runCmd(t, "-variant", "1z4h", "-expect", "1.0")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "no outage") {
		t.Fatalf("stderr missing phase message: %s", errOut)
	}
}

func TestSpecFileAndDeterminism(t *testing.T) {
	spec := "topo:zones=2,hosts=2,pcpus=4; load:arrival=2ms,duration=4s,drain=1s; " +
		"tenants:servers=1,server-vcpus=2,ants=1,ant-vcpus=2,spacing=300ms"
	path := filepath.Join(t.TempDir(), "rig.load")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCmd(t, "-file", path, "-v")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "spec: topo:zones=2") {
		t.Fatalf("-v did not echo the parsed spec:\n%s", out)
	}
	// Same spec inline, same seed: identical measurements (the report
	// header names the source, so compare from the numbers on), serial
	// or sharded.
	results := func(s string) string {
		if i := strings.Index(s, "served"); i >= 0 {
			return s[i:]
		}
		return s
	}
	_, inline, _ := runCmd(t, "-spec", spec, "-v")
	if results(inline) != results(out) {
		t.Fatalf("inline spec differs from file spec:\n%s\n%s", inline, out)
	}
	_, serial, _ := runCmd(t, "-spec", spec, "-v", "-shards", "1")
	if results(serial) != results(out) {
		t.Fatalf("serial run differs from auto-sharded:\n%s\n%s", serial, out)
	}
}
