// Command irsload drives the multi-rack control plane with a
// declarative cluster-load spec: zones and hosts, arrival ramps or a
// diurnal curve, tenant mix, zone outages, burn-rate alerting, and the
// replica autoscaler. It prints the end-to-end outcome — tail
// latency, SLO burn per phase, failover traffic, scale events — and
// with -expect gates the post-recovery SLO-violation rate for CI.
//
// Usage:
//
//	irsload [-variant 2z8h-outage] [-spec 'topo:zones=2,...'] [-file spec.load]
//	        [-seed 1] [-shards 0] [-lookahead 250us] [-expect 1.0] [-v]
//
// Exactly one of -variant, -spec, -file selects the load spec;
// -variant names a built-in rig (irsload -list shows them).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	variant := fs.String("variant", "", "built-in load spec by name (see -list)")
	specFlag := fs.String("spec", "", "inline load spec (topology.ParseLoadSpec syntax)")
	file := fs.String("file", "", "read the load spec from a file")
	list := fs.Bool("list", false, "list built-in variants and exit")
	seed := fs.Uint64("seed", 1, "random seed")
	shards := fs.Int("shards", 0, "engine pool width (0 = auto, 1 = serial)")
	lookahead := fs.Duration("lookahead", 0, "conservative window override (0 = default)")
	expect := fs.Float64("expect", -1, "fail unless the post-recovery SLO-violation rate is below this percentage")
	verbose := fs.Bool("v", false, "echo the parsed spec before running")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, v := range experiments.ScaleVariants() {
			fmt.Fprintf(stdout, "%-14s %s\n", v.Name, v.Spec)
		}
		return 0
	}

	text, name, code := specText(*variant, *specFlag, *file, stderr)
	if code != 0 {
		return code
	}
	spec, err := topology.ParseLoadSpec(text)
	if err != nil {
		fmt.Fprintf(stderr, "irsload: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stdout, "spec: %s\n", spec.String())
	}

	cfg, err := experiments.ScaleConfig(spec, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "irsload: %v\n", err)
		return 2
	}
	cfg.Shards = *shards
	if *lookahead > 0 {
		cfg.Lookahead = sim.Duration(*lookahead)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "irsload: %v\n", err)
		return 1
	}
	res, err := c.Run()
	if err != nil {
		fmt.Fprintf(stderr, "irsload: %v\n", err)
		return 1
	}

	report(stdout, name, spec, res)

	if res.Unserved != 0 {
		fmt.Fprintf(stderr, "irsload: %d of %d requests unserved\n", res.Unserved, res.Generated)
		return 1
	}
	if res.Violations != 0 {
		fmt.Fprintf(stderr, "irsload: %d invariant violations\n", res.Violations)
		return 1
	}
	if *expect >= 0 {
		rate, ok := recoveryRate(res)
		if !ok {
			fmt.Fprintln(stderr, "irsload: -expect set but the spec has no outage (no recovery phase to gate)")
			return 1
		}
		if rate*100 >= *expect {
			fmt.Fprintf(stderr, "irsload: recovery SLO-violation rate %.2f%% is not below the -expect gate %.2f%%\n",
				rate*100, *expect)
			return 1
		}
		fmt.Fprintf(stdout, "expect gate: recovery slo-viol %.2f%% < %.2f%% — ok\n", rate*100, *expect)
	}
	return 0
}

// specText resolves the one allowed spec source into its text.
func specText(variant, spec, file string, stderr io.Writer) (text, name string, code int) {
	set := 0
	for _, s := range []string{variant, spec, file} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		fmt.Fprintln(stderr, "irsload: exactly one of -variant, -spec, -file must be given")
		return "", "", 2
	}
	switch {
	case variant != "":
		v, ok := experiments.ScaleVariantByName(variant)
		if !ok {
			fmt.Fprintf(stderr, "irsload: unknown variant %q (try -list)\n", variant)
			return "", "", 2
		}
		return v.Spec, v.Name, 0
	case spec != "":
		return spec, "spec", 0
	default:
		b, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "irsload: %v\n", err)
			return "", "", 2
		}
		return string(b), file, 0
	}
}

// report prints the run outcome: headline latency/SLO numbers, the
// control-plane counters, and the per-phase SLO breakdown when the
// spec injected an outage.
func report(w io.Writer, name string, spec topology.LoadSpec, res *cluster.Result) {
	fmt.Fprintf(w, "== irsload %s: %s ==\n", name, spec.Topology())
	fmt.Fprintf(w, "served   %d/%d  p50 %v  p99 %v  slo-viol %d (%.2f%%)\n",
		res.Served, res.Generated, time.Duration(res.P50), time.Duration(res.P99),
		res.SLOViolations, res.SLORate*100)
	fmt.Fprintf(w, "zones    %d  outages %d  failover %d  alerts %d  migrations %d\n",
		res.Zones, res.ZoneOutages, res.Failover, res.Alerts, res.Migrations)
	fmt.Fprintf(w, "replicas %d→%d  scale +%d/-%d  invariant-violations %d\n",
		spec.ServersPerZone*spec.Zones, res.Replicas, res.ScaleUps, res.ScaleDowns, res.Violations)
	if len(res.Phases) == 3 {
		labels := []string{"pre-outage", "outage+settle", "recovered"}
		for i, p := range res.Phases {
			fmt.Fprintf(w, "phase %-13s served %6d  slo-viol %5d (%.2f%%)\n",
				labels[i], p.Served, p.Violations, p.Rate*100)
		}
	}
}

// recoveryRate returns the SLO-violation rate of the post-recovery
// phase, when the run had the three-phase outage layout.
func recoveryRate(res *cluster.Result) (float64, bool) {
	if len(res.Phases) != 3 {
		return 0, false
	}
	return res.Phases[2].Rate, true
}
