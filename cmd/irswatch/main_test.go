package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown scenario", []string{"-scenario", "nope"}, 2},
		{"bad flag", []string{"-frobnicate"}, 2},
		{"bad rules", []string{"-rules", "page:budget=2"}, 2},
		{"empty rules", []string{"-rules", ";;"}, 2},
		{"dump without incident", []string{"-scenario", "quiet", "-duration", "2s", "-dump", t.TempDir() + "/x"}, 1},
		{"expect-top without alert", []string{"-scenario", "quiet", "-duration", "2s", "-expect-top", "bully"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.code {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.code, errb.String())
			}
		})
	}
}

func TestBullyScenarioAlertsAndDumps(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "incident")
	var out, errb bytes.Buffer
	code := run([]string{"-expect-top", "bully", "-dump", prefix}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "ALERT page:") {
		t.Fatalf("no live alert line in output:\n%s", text)
	}
	if !strings.Contains(text, "#1 srv0<-bully") {
		t.Fatalf("bully not top-ranked in output:\n%s", text)
	}

	raw, err := os.ReadFile(prefix + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var inc struct {
		Reason   string `json:"reason"`
		Rankings []struct {
			Aggressor string `json:"aggressor"`
		} `json:"rankings"`
		Series []json.RawMessage `json:"series"`
		Spans  []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(raw, &inc); err != nil {
		t.Fatalf("incident bundle is not valid JSON: %v", err)
	}
	if inc.Reason != "slo-alert" || len(inc.Rankings) == 0 || inc.Rankings[0].Aggressor != "bully" {
		t.Fatalf("bundle reason=%q rankings=%+v", inc.Reason, inc.Rankings)
	}
	if len(inc.Series) == 0 || len(inc.Spans) == 0 {
		t.Fatalf("bundle missing telemetry: %d series, %d spans", len(inc.Series), len(inc.Spans))
	}

	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	rawTr, err := os.ReadFile(prefix + ".trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawTr, &tr); err != nil {
		t.Fatalf("trace half is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace half has no events")
	}
}

func TestQuietScenarioStaysSilent(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "quiet"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if strings.Contains(out.String(), "ALERT") {
		t.Fatalf("quiet scenario printed an alert:\n%s", out.String())
	}
}

func TestOutputDeterministic(t *testing.T) {
	render := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-duration", "6s"}, &out, &errb); code != 0 {
			t.Fatalf("exit = %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("same seed diverged:\n%s\n---\n%s", a, b)
	}
}
