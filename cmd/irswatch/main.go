// Command irswatch runs the watchdog rig (a sensitive server ambushed
// by a late-arriving CPU bully) with the online SLO watchdog attached
// and prints the alerts as they fire, each with its noisy-neighbor
// attribution ranking. With -dump it writes the first incident bundle
// to disk: a self-contained JSON forensics file plus a Chrome/Perfetto
// trace of the slowest spans around the alert.
//
// Usage:
//
//	irswatch [-scenario bully|quiet] [-seed 1] [-duration 10s]
//	         [-rules 'page:budget=0.02,fast=500ms,slow=2500ms,burn=3']
//	         [-interval 100ms] [-dump incident] [-expect-top bully]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/watch"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irswatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "bully", "rig variant: bully | quiet")
	seed := fs.Uint64("seed", 1, "random seed")
	duration := fs.Duration("duration", time.Duration(experiments.DefaultWatchDuration), "request-stream duration (virtual time)")
	rulesFlag := fs.String("rules", experiments.DefaultWatchRules, "burn-rate alert rules (';'-separated name:budget=F,fast=D,slow=D,burn=F)")
	interval := fs.Duration("interval", time.Duration(experiments.DefaultWatchInterval), "watch epoch cadence / window width")
	dump := fs.String("dump", "", "write the first incident bundle to <prefix>.json and <prefix>.trace.json")
	expectTop := fs.String("expect-top", "", "exit nonzero unless this VM is the top-ranked aggressor (CI smoke)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	v, ok := experiments.WatchVariantByName(*scenario)
	if !ok {
		fmt.Fprintf(stderr, "irswatch: unknown scenario %q (valid: bully, quiet)\n", *scenario)
		return 2
	}
	rules, err := watch.ParseRules(*rulesFlag)
	if err != nil {
		fmt.Fprintf(stderr, "irswatch: bad -rules: %v\n", err)
		return 2
	}
	if len(rules) == 0 {
		fmt.Fprintln(stderr, "irswatch: -rules parsed to an empty rule set")
		return 2
	}

	cfg := experiments.WatchConfig(v, *seed, sim.Duration(*duration), rules, sim.Duration(*interval))
	c, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "irswatch: %v\n", err)
		return 1
	}
	w := c.Watcher()
	w.OnAlert = func(a watch.Alert, ranked []watch.RankedAggressor) {
		fmt.Fprintf(stdout, "ALERT %s\n", a)
		for i, r := range ranked {
			fmt.Fprintf(stdout, "  #%d %s\n", i+1, r)
		}
	}
	res, err := c.Run()
	if err != nil {
		fmt.Fprintf(stderr, "irswatch: %v\n", err)
		return 1
	}

	alerts := w.Alerts()
	incidents := w.Recorder().Incidents()
	fmt.Fprintf(stdout, "\n== %s: served %d/%d, slo-viol %d (%.2f%%), alerts %d, incidents %d ==\n",
		v.Name, res.Served, res.Generated, res.SLOViolations, res.SLORate*100,
		len(alerts), len(incidents))
	if len(alerts) > 0 {
		fmt.Fprintf(stdout, "first alert at %v (%v after the bully window opens)\n",
			time.Duration(alerts[0].At), time.Duration(alerts[0].At-experiments.WatchBullyArrive))
	}
	ranked, _ := w.Rankings()
	for i, r := range ranked {
		fmt.Fprintf(stdout, "aggressor #%d: %s\n", i+1, r)
	}

	if *dump != "" {
		if len(incidents) == 0 {
			fmt.Fprintln(stderr, "irswatch: -dump requested but no incident was captured")
			return 1
		}
		if err := dumpIncident(incidents[0], *dump, stdout); err != nil {
			fmt.Fprintf(stderr, "irswatch: %v\n", err)
			return 1
		}
	}

	if *expectTop != "" {
		if len(alerts) == 0 {
			fmt.Fprintf(stderr, "irswatch: expected an alert naming %q, none fired\n", *expectTop)
			return 1
		}
		if len(ranked) == 0 || ranked[0].Aggressor != *expectTop {
			got := "nothing"
			if len(ranked) > 0 {
				got = ranked[0].Aggressor
			}
			fmt.Fprintf(stderr, "irswatch: top aggressor is %s, expected %q\n", got, *expectTop)
			return 1
		}
	}
	return 0
}

// dumpIncident writes the bundle's JSON and Perfetto halves.
func dumpIncident(inc *watch.Incident, prefix string, stdout io.Writer) error {
	jsonPath := prefix + ".json"
	tracePath := prefix + ".trace.json"
	if err := writeWith(jsonPath, inc.WriteJSON); err != nil {
		return err
	}
	if err := writeWith(tracePath, inc.WriteTrace); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote incident bundle to %s and %s (open the trace in ui.perfetto.dev)\n",
		jsonPath, tracePath)
	return nil
}

// writeWith streams fn's output into a freshly created file.
func writeWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
