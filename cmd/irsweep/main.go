// Command irsweep runs ad-hoc parameter sweeps: one benchmark, a range
// of interference levels, all four scheduling strategies. The
// (level × strategy) matrix fans out across worker goroutines; each
// cell is an isolated deterministic simulation, so the printed table is
// identical with and without -parallel.
//
// Usage:
//
//	irsweep -bench streamcluster -inter 0,1,2,4 [-mode spin|block] [-vcpus 4]
//	        [-unpinned] [-seed S] [-runs N] [-parallel] [-workers N]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	irsweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("irsweep", flag.ContinueOnError)
	benchName := fs.String("bench", "streamcluster", "benchmark name (see -list)")
	interList := fs.String("inter", "0,1,2,4", "comma-separated interference levels")
	modeName := fs.String("mode", "", "override wait policy: spin or block")
	vcpus := fs.Int("vcpus", 4, "foreground vCPUs (== pCPUs)")
	unpinned := fs.Bool("unpinned", false, "leave vCPUs unpinned (stacking setup)")
	seed := fs.Uint64("seed", 1, "base random seed")
	runs := fs.Int("runs", 3, "runs per data point")
	list := fs.Bool("list", false, "list benchmark names and exit")
	parallel := fs.Bool("parallel", true, "fan sweep cells across worker goroutines")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsweep: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "irsweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "irsweep: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "irsweep: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	bench, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "irsweep: unknown benchmark %q (try -list)\n", *benchName)
		return 1
	}
	var mode workload.SyncMode
	switch *modeName {
	case "":
	case "spin":
		mode = workload.SyncSpinning
	case "block":
		mode = workload.SyncBlocking
	default:
		fmt.Fprintf(os.Stderr, "irsweep: bad -mode %q\n", *modeName)
		return 2
	}

	var levels []int
	for _, part := range strings.Split(*interList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "irsweep: bad -inter entry %q\n", part)
			return 2
		}
		levels = append(levels, n)
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if !*parallel {
		nWorkers = 1
	}

	// Compute every (level, strategy) cell up front — each is an
	// isolated simulation — then print the matrix serially.
	strats := core.Strategies()
	type cell struct {
		mean float64
		err  error
	}
	cells := make([]cell, len(levels)*len(strats))
	var fns []func()
	for li, lvl := range levels {
		for si, st := range strats {
			li, si, lvl, st := li, si, lvl, st
			fns = append(fns, func() {
				mean, err := sweepPoint(bench, mode, st, lvl, *vcpus, *unpinned, *seed, *runs)
				cells[li*len(strats)+si] = cell{mean: mean, err: err}
			})
		}
	}
	experiments.ParallelDo(nWorkers, fns)

	fmt.Printf("%-10s", "inter")
	for _, st := range strats {
		fmt.Printf("  %-12s", st)
	}
	fmt.Println()
	for li, lvl := range levels {
		fmt.Printf("%-10d", lvl)
		for si := range strats {
			c := cells[li*len(strats)+si]
			if c.err != nil {
				fmt.Printf("  %-12s", "ERR")
				continue
			}
			fmt.Printf("  %-12s", fmt.Sprintf("%.3fs", c.mean))
		}
		fmt.Println()
	}
	return 0
}

func sweepPoint(bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy, inter, vcpus int, unpinned bool, seed uint64, runs int) (float64, error) {
	var rts []float64
	for i := 0; i < runs; i++ {
		var fgPins, bgPins []int
		if !unpinned {
			fgPins = core.SeqPins(0, vcpus)
			bgPins = core.SeqPins(0, inter)
		}
		fg := core.BenchmarkVM("fg", bench, mode, vcpus, fgPins)
		fg.IRS = strat == core.StrategyIRS
		vms := []core.VMSpec{fg}
		if inter > 0 {
			vms = append(vms, core.HogVM("bg", inter, bgPins))
		}
		res, err := core.Run(core.Scenario{
			PCPUs:    vcpus,
			Strategy: strat,
			Seed:     seed + uint64(i)*7919,
			Unpinned: unpinned,
			Horizon:  1800 * sim.Second,
			VMs:      vms,
		})
		if err != nil {
			return 0, err
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean, nil
}
