// Command irsweep runs ad-hoc parameter sweeps. The default dimension
// is one benchmark against a range of interference levels under all
// four scheduling strategies; -cluster instead sweeps the multi-host
// placement variants (first-fit, least-loaded, interference-aware ±
// IRS) across rack sizes. Every cell is an isolated deterministic
// simulation fanned out across worker goroutines, so the printed table
// is identical with and without -parallel.
//
// Usage:
//
//	irsweep -bench streamcluster -inter 0,1,2,4 [-mode spin|block] [-vcpus 4]
//	        [-unpinned] [-seed S] [-runs N] [-parallel] [-workers N]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	irsweep -cluster [-hosts 2,3,4] [-zones 1] [-shards N] [-lookahead 250us] [-seed S] [-parallel] [-workers N]
//	irsweep -attack "tick-evade;boost-game,run=2ms" [-seed S] [-parallel] [-workers N]
//	irsweep -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchName := fs.String("bench", "streamcluster", "benchmark name (see -list)")
	interList := fs.String("inter", "0,1,2,4", "comma-separated interference levels")
	modeName := fs.String("mode", "", "override wait policy: spin or block")
	vcpus := fs.Int("vcpus", 4, "foreground vCPUs (== pCPUs)")
	unpinned := fs.Bool("unpinned", false, "leave vCPUs unpinned (stacking setup)")
	seed := fs.Uint64("seed", 1, "base random seed")
	runs := fs.Int("runs", 3, "runs per data point")
	list := fs.Bool("list", false, "list benchmark names and exit")
	clusterSweep := fs.Bool("cluster", false, "sweep the multi-host placement variants across rack sizes")
	hostsList := fs.String("hosts", "2,3,4", "comma-separated host counts for -cluster (per zone when -zones > 1)")
	zones := fs.Int("zones", 1, "zone count for -cluster: >1 runs each rack size under the two-level zone scheduler")
	shards := fs.Int("shards", 0, "per-host engine shards inside each -cluster cell (0 = auto, 1 = serial; output is identical at any setting)")
	lookahead := fs.Duration("lookahead", 0, "conservative window width for sharded -cluster cells (0 = default 250µs; changing it changes results)")
	attackList := fs.String("attack", "", "semicolon-separated attacker specs to sweep against every accounting defense")
	parallel := fs.Bool("parallel", true, "fan sweep cells across worker goroutines")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, n := range workload.Names() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "irsweep: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "irsweep: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "irsweep: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "irsweep: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if !*parallel {
		nWorkers = 1
	}

	if *clusterSweep {
		hosts, ok := parseIntList(*hostsList)
		if !ok || len(hosts) == 0 {
			fmt.Fprintf(stderr, "irsweep: bad -hosts %q\n", *hostsList)
			return 2
		}
		if *zones < 1 {
			fmt.Fprintf(stderr, "irsweep: bad -zones %d\n", *zones)
			return 2
		}
		return clusterMatrix(stdout, stderr, hosts, *zones, *seed, nWorkers, *shards, sim.Duration(*lookahead))
	}

	if *attackList != "" {
		var specs []workload.AttackSpec
		for _, part := range strings.Split(*attackList, ";") {
			s, err := workload.ParseAttack(part)
			if err != nil {
				fmt.Fprintf(stderr, "irsweep: bad -attack spec %q: %v\n", part, err)
				return 2
			}
			if s.Zero() {
				continue
			}
			specs = append(specs, s)
		}
		if len(specs) == 0 {
			fmt.Fprintf(stderr, "irsweep: -attack %q names no attackers\n", *attackList)
			return 2
		}
		return attackMatrix(stdout, stderr, specs, *seed, nWorkers)
	}

	bench, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(stderr, "irsweep: unknown benchmark %q (try -list)\n", *benchName)
		return 1
	}
	var mode workload.SyncMode
	switch *modeName {
	case "":
	case "spin":
		mode = workload.SyncSpinning
	case "block":
		mode = workload.SyncBlocking
	default:
		fmt.Fprintf(stderr, "irsweep: bad -mode %q\n", *modeName)
		return 2
	}

	levels, ok := parseIntList(*interList)
	if !ok {
		fmt.Fprintf(stderr, "irsweep: bad -inter %q\n", *interList)
		return 2
	}

	// Compute every (level, strategy) cell up front — each is an
	// isolated simulation — then print the matrix serially.
	strats := core.Strategies()
	type cell struct {
		mean float64
		err  error
	}
	cells := make([]cell, len(levels)*len(strats))
	var fns []func()
	for li, lvl := range levels {
		for si, st := range strats {
			li, si, lvl, st := li, si, lvl, st
			fns = append(fns, func() {
				mean, err := sweepPoint(bench, mode, st, lvl, *vcpus, *unpinned, *seed, *runs)
				cells[li*len(strats)+si] = cell{mean: mean, err: err}
			})
		}
	}
	experiments.ParallelDo(nWorkers, fns)

	fmt.Fprintf(stdout, "%-10s", "inter")
	for _, st := range strats {
		fmt.Fprintf(stdout, "  %-12s", st)
	}
	fmt.Fprintln(stdout)
	for li, lvl := range levels {
		fmt.Fprintf(stdout, "%-10d", lvl)
		for si := range strats {
			c := cells[li*len(strats)+si]
			if c.err != nil {
				fmt.Fprintf(stdout, "  %-12s", "ERR")
				continue
			}
			fmt.Fprintf(stdout, "  %-12s", fmt.Sprintf("%.3fs", c.mean))
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// parseIntList parses a comma-separated list of non-negative ints.
func parseIntList(s string) ([]int, bool) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}

// clusterMatrix sweeps the experiment's placement variants over rack
// sizes: one row per host count, one column pair (p99, SLO-violation
// rate) per variant. With zones > 1 each rack size is per zone and
// every cell runs under the two-level zone scheduler and partitioned
// router.
func clusterMatrix(stdout, stderr io.Writer, hosts []int, zones int, seed uint64, nWorkers, shards int, lookahead sim.Time) int {
	variants := experiments.ClusterVariants()
	type cell struct {
		p99  sim.Time
		slo  float64
		migr int64
		err  error
	}
	cells := make([]cell, len(hosts)*len(variants))
	var fns []func()
	for hi, n := range hosts {
		for vi, v := range variants {
			hi, vi, n, v := hi, vi, n, v
			fns = append(fns, func() {
				cfg := experiments.ClusterConfig(v, seed)
				cfg.Hosts = zones * n
				if zones > 1 {
					cfg.Topology = topology.Uniform(zones, n)
				}
				cfg.Shards = shards
				if lookahead > 0 {
					cfg.Lookahead = lookahead
				}
				c, err := cluster.New(cfg)
				if err != nil {
					cells[hi*len(variants)+vi] = cell{err: err}
					return
				}
				res, err := c.Run()
				if err != nil {
					cells[hi*len(variants)+vi] = cell{err: err}
					return
				}
				cells[hi*len(variants)+vi] = cell{p99: res.P99, slo: res.SLORate, migr: res.Migrations}
			})
		}
	}
	experiments.ParallelDo(nWorkers, fns)

	hdr := "hosts"
	if zones > 1 {
		hdr = fmt.Sprintf("hosts/%dz", zones)
	}
	fmt.Fprintf(stdout, "%-8s", hdr)
	for _, v := range variants {
		fmt.Fprintf(stdout, "  %-24s", v.Name+" p99/slo/migr")
	}
	fmt.Fprintln(stdout)
	bad := 0
	for hi, n := range hosts {
		fmt.Fprintf(stdout, "%-8d", n)
		for vi, v := range variants {
			c := cells[hi*len(variants)+vi]
			if c.err != nil {
				fmt.Fprintf(stdout, "  %-24s", "ERR")
				fmt.Fprintf(stderr, "irsweep: %d hosts, %s: %v\n", n, v.Name, c.err)
				bad++
				continue
			}
			fmt.Fprintf(stdout, "  %-24s", fmt.Sprintf("%.3fms/%.2f%%/%d",
				float64(c.p99)/float64(sim.Millisecond), c.slo*100, c.migr))
		}
		fmt.Fprintln(stdout)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// attackMatrix sweeps attacker specs against every accounting defense:
// one row per (attacker, defense) cell, in spec order then defense
// order, each cell an isolated deterministic simulation.
func attackMatrix(stdout, stderr io.Writer, specs []workload.AttackSpec, seed uint64, nWorkers int) int {
	defenses := experiments.AttackDefenses()
	type cell struct {
		out experiments.AttackOutcome
		err error
	}
	cells := make([]cell, len(specs)*len(defenses))
	var fns []func()
	for si, spec := range specs {
		for di, d := range defenses {
			si, di, spec, d := si, di, spec, d
			fns = append(fns, func() {
				out, err := experiments.RunAttack(spec, d, seed)
				cells[si*len(defenses)+di] = cell{out: out, err: err}
			})
		}
	}
	experiments.ParallelDo(nWorkers, fns)

	tb := experiments.Table{
		ID:      "attack-sweep",
		Title:   "attacker specs vs accounting defenses",
		Columns: experiments.AttackColumns(),
	}
	bad := 0
	for si, spec := range specs {
		for di, d := range defenses {
			c := cells[si*len(defenses)+di]
			if c.err != nil {
				fmt.Fprintf(stderr, "irsweep: attack %q/%s: %v\n", spec, d.Name, c.err)
				bad++
				continue
			}
			row := experiments.AttackRow(c.out)
			// The sweep may carry several variants of one attack kind;
			// show the full spec so rows stay distinguishable.
			row[0] = spec.String()
			tb.Rows = append(tb.Rows, row)
		}
	}
	fmt.Fprint(stdout, tb)
	if bad > 0 {
		return 1
	}
	return 0
}

func sweepPoint(bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy, inter, vcpus int, unpinned bool, seed uint64, runs int) (float64, error) {
	var rts []float64
	for i := 0; i < runs; i++ {
		var fgPins, bgPins []int
		if !unpinned {
			fgPins = core.SeqPins(0, vcpus)
			bgPins = core.SeqPins(0, inter)
		}
		fg := core.BenchmarkVM("fg", bench, mode, vcpus, fgPins)
		fg.IRS = strat == core.StrategyIRS
		vms := []core.VMSpec{fg}
		if inter > 0 {
			vms = append(vms, core.HogVM("bg", inter, bgPins))
		}
		res, err := core.Run(core.Scenario{
			PCPUs:    vcpus,
			Strategy: strat,
			Seed:     seed + uint64(i)*7919,
			Unpinned: unpinned,
			Horizon:  1800 * sim.Second,
			VMs:      vms,
		})
		if err != nil {
			return 0, err
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean, nil
}
