// Command irsweep runs ad-hoc parameter sweeps: one benchmark, a range
// of interference levels, all four scheduling strategies.
//
// Usage:
//
//	irsweep -bench streamcluster -inter 0,1,2,4 [-mode spin|block] [-vcpus 4]
//	        [-unpinned] [-seed S] [-runs N]
//	irsweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("irsweep", flag.ContinueOnError)
	benchName := fs.String("bench", "streamcluster", "benchmark name (see -list)")
	interList := fs.String("inter", "0,1,2,4", "comma-separated interference levels")
	modeName := fs.String("mode", "", "override wait policy: spin or block")
	vcpus := fs.Int("vcpus", 4, "foreground vCPUs (== pCPUs)")
	unpinned := fs.Bool("unpinned", false, "leave vCPUs unpinned (stacking setup)")
	seed := fs.Uint64("seed", 1, "base random seed")
	runs := fs.Int("runs", 3, "runs per data point")
	list := fs.Bool("list", false, "list benchmark names and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return 0
	}

	bench, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "irsweep: unknown benchmark %q (try -list)\n", *benchName)
		return 1
	}
	var mode workload.SyncMode
	switch *modeName {
	case "":
	case "spin":
		mode = workload.SyncSpinning
	case "block":
		mode = workload.SyncBlocking
	default:
		fmt.Fprintf(os.Stderr, "irsweep: bad -mode %q\n", *modeName)
		return 2
	}

	var levels []int
	for _, part := range strings.Split(*interList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "irsweep: bad -inter entry %q\n", part)
			return 2
		}
		levels = append(levels, n)
	}

	fmt.Printf("%-10s", "inter")
	for _, st := range core.Strategies() {
		fmt.Printf("  %-12s", st)
	}
	fmt.Println()
	for _, lvl := range levels {
		fmt.Printf("%-10d", lvl)
		for _, st := range core.Strategies() {
			mean, err := sweepPoint(bench, mode, st, lvl, *vcpus, *unpinned, *seed, *runs)
			if err != nil {
				fmt.Printf("  %-12s", "ERR")
				continue
			}
			fmt.Printf("  %-12s", fmt.Sprintf("%.3fs", mean))
		}
		fmt.Println()
	}
	return 0
}

func sweepPoint(bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy, inter, vcpus int, unpinned bool, seed uint64, runs int) (float64, error) {
	var rts []float64
	for i := 0; i < runs; i++ {
		var fgPins, bgPins []int
		if !unpinned {
			fgPins = core.SeqPins(0, vcpus)
			bgPins = core.SeqPins(0, inter)
		}
		fg := core.BenchmarkVM("fg", bench, mode, vcpus, fgPins)
		fg.IRS = strat == core.StrategyIRS
		vms := []core.VMSpec{fg}
		if inter > 0 {
			vms = append(vms, core.HogVM("bg", inter, bgPins))
		}
		res, err := core.Run(core.Scenario{
			PCPUs:    vcpus,
			Strategy: strat,
			Seed:     seed + uint64(i)*7919,
			Unpinned: unpinned,
			Horizon:  1800 * sim.Second,
			VMs:      vms,
		})
		if err != nil {
			return 0, err
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean, nil
}
