package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListPrintsBenchmarks(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if !strings.Contains(out, "streamcluster") {
		t.Fatalf("-list output missing streamcluster:\n%s", out)
	}
}

func TestBadInputs(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-nonsense"}, 2},
		{[]string{"-inter", "1,x"}, 2},
		{[]string{"-inter", "-3"}, 2},
		{[]string{"-mode", "busy"}, 2},
		{[]string{"-cluster", "-hosts", "two"}, 2},
		{[]string{"-bench", "nosuchbench"}, 1},
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(t, tc.args...); code != tc.want {
			t.Errorf("%v: exit = %d, want %d", tc.args, code, tc.want)
		}
	}
}

func TestParseIntList(t *testing.T) {
	if got, ok := parseIntList(" 2, 3 ,4"); !ok || len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("parseIntList = %v, %v", got, ok)
	}
	if _, ok := parseIntList("2,-1"); ok {
		t.Fatal("parseIntList accepted a negative entry")
	}
}

func TestClusterSweepDeterministic(t *testing.T) {
	code, out, errOut := runCmd(t, "-cluster", "-hosts", "3", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"hosts", "first-fit", "least-loaded", "ia+irs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
	code2, out2, _ := runCmd(t, "-cluster", "-hosts", "3", "-seed", "1", "-parallel=false")
	if code2 != 0 || out2 != out {
		t.Fatalf("serial sweep differs from parallel (exit %d)", code2)
	}
}

func TestClusterSweepZones(t *testing.T) {
	code, out, errOut := runCmd(t, "-cluster", "-hosts", "2", "-zones", "2", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "hosts/2z") {
		t.Fatalf("zoned sweep header missing hosts/2z:\n%s", out)
	}
	// A zoned run is a different topology, so its numbers must differ
	// from the flat run over the same total host count.
	_, flat, _ := runCmd(t, "-cluster", "-hosts", "4", "-seed", "1")
	flatRow := flat[strings.LastIndex(flat, "\n4"):]
	zonedRow := out[strings.LastIndex(out, "\n2"):]
	if strings.TrimSpace(flatRow[2:]) == strings.TrimSpace(zonedRow[2:]) {
		t.Fatal("2-zone sweep produced the same cells as the flat 4-host sweep")
	}
	if code, _, _ := runCmd(t, "-cluster", "-zones", "0"); code != 2 {
		t.Fatal("-zones 0 accepted")
	}
}

func TestAttackSweepMatrix(t *testing.T) {
	code, out, errOut := runCmd(t, "-attack", "tick-evade;boost-game,run=2ms", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"tick-evade", "boost-game,run=2ms", "vanilla", "jitter", "exact", "both"} {
		if !strings.Contains(out, want) {
			t.Errorf("attack matrix missing %q:\n%s", want, out)
		}
	}
	// Same seed ⇒ byte-identical, serial vs parallel.
	code2, out2, _ := runCmd(t, "-attack", "tick-evade;boost-game,run=2ms", "-seed", "1", "-parallel=false")
	if code2 != 0 || out2 != out {
		t.Fatalf("serial attack sweep differs from parallel (exit %d)", code2)
	}
}

func TestAttackSweepRejectsBadSpecs(t *testing.T) {
	if code, _, _ := runCmd(t, "-attack", "frobnicate"); code != 2 {
		t.Fatalf("bad spec: exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-attack", "none;off"); code != 2 {
		t.Fatalf("all-zero specs: exit = %d, want 2", code)
	}
}
