// Command irstrace runs a small interference scenario with tracing
// enabled and dumps the scheduling timeline: vCPU state transitions,
// pCPU context switches, scheduler activations, and guest task
// migrations. Useful for seeing exactly how IRS reacts to a
// preemption.
//
// Usage:
//
//	irstrace [-bench streamcluster] [-strategy irs] [-inter 1]
//	         [-window 200ms] [-at 1s] [-kinds sa,migrate]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irstrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchName := fs.String("bench", "streamcluster", "benchmark to trace")
	stratName := fs.String("strategy", "irs", "vanilla | ple | relaxed-co | irs")
	inter := fs.Int("inter", 1, "number of interfering CPU hogs")
	at := fs.Duration("at", time.Second, "start of the dump window (virtual time)")
	window := fs.Duration("window", 100*time.Millisecond, "length of the dump window")
	kindsArg := fs.String("kinds", "", "comma-separated filter: vcpu,switch,sa,task,migrate,note")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var strat core.Strategy
	switch *stratName {
	case "vanilla":
		strat = core.StrategyVanilla
	case "ple":
		strat = core.StrategyPLE
	case "relaxed-co":
		strat = core.StrategyRelaxedCo
	case "irs":
		strat = core.StrategyIRS
	default:
		fmt.Fprintf(stderr, "irstrace: unknown strategy %q\n", *stratName)
		return 2
	}
	bench, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(stderr, "irstrace: unknown benchmark %q\n", *benchName)
		return 1
	}
	allowed, err := trace.ParseKinds(*kindsArg)
	if err != nil {
		fmt.Fprintf(stderr, "irstrace: %v\n", err)
		return 2
	}

	log := trace.NewLog(500000)
	fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	vms := []core.VMSpec{fg}
	if *inter > 0 {
		vms = append(vms, core.HogVM("bg", *inter, core.SeqPins(0, *inter)))
	}
	scn := core.Scenario{
		PCPUs:    4,
		Strategy: strat,
		Seed:     *seed,
		VMs:      vms,
		TuneHV:   func(c *hypervisor.Config) { c.Trace = log },
		TuneGuest: func(name string, c *guest.Config) {
			if name == "fg" {
				c.Trace = log
			}
		},
	}
	res, err := core.Run(scn)
	if err != nil {
		fmt.Fprintf(stderr, "irstrace: %v\n", err)
		return 1
	}

	from := sim.Duration(*at)
	to := from + sim.Duration(*window)
	events := log.Events()
	shown := 0
	for _, e := range events {
		if e.At < from || e.At > to {
			continue
		}
		if allowed != nil && !allowed[e.Kind] {
			continue
		}
		fmt.Fprintln(stdout, e)
		shown++
	}
	fmt.Fprintf(stdout, "\n%d events shown (window %v..%v, %d dropped at capacity); totals: %s\n",
		shown, from, to, log.Dropped(), log.Summary())
	fmt.Fprintf(stdout, "runtime=%v SA sent/acked/expired=%d/%d/%d\n",
		res.VM("fg").Runtime, res.SASent, res.SAAcked, res.SAExpired)
	return 0
}
