package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBadInputs(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-nonsense"}, 2},
		{[]string{"-strategy", "fifo"}, 2},
		{[]string{"-kinds", "bogus"}, 2},
		{[]string{"-bench", "nosuchbench"}, 1},
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(t, tc.args...); code != tc.want {
			t.Errorf("%v: exit = %d, want %d", tc.args, code, tc.want)
		}
	}
}

func TestTraceDumpsWindowDeterministically(t *testing.T) {
	args := []string{"-strategy", "irs", "-inter", "1", "-seed", "1",
		"-at", "1s", "-window", "50ms", "-kinds", "sa,switch"}
	code, out, errOut := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "events shown") || !strings.Contains(out, "runtime=") {
		t.Fatalf("trace summary missing:\n%s", out)
	}
	// The ring-buffer drop counter is part of the summary: readers must
	// be able to tell a complete window from a truncated one.
	if !strings.Contains(out, "dropped at capacity") {
		t.Fatalf("summary does not surface the dropped-event count:\n%s", out)
	}
	code2, out2, _ := runCmd(t, args...)
	if code2 != 0 || out2 != out {
		t.Fatalf("rerun differs (exit %d)", code2)
	}
}
