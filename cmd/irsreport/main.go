// Command irsreport runs an interference scenario with full telemetry
// enabled — the typed metrics registry, the periodic time-series
// sampler, and the scheduling trace — and emits a report: a summary
// table on stdout (per-vCPU steal time, preemption-wait and SA
// ack-latency histograms, LHP/LWP counts, migration counters) plus
// optional machine-readable exports (Prometheus text, CSV time series,
// Chrome trace_viewer JSON for chrome://tracing / Perfetto).
//
// Output is fully deterministic: the same seed produces byte-identical
// summaries and exports.
//
// Usage:
//
//	irsreport [-bench streamcluster] [-strategy vanilla,irs] [-inter 1]
//	          [-seed 1] [-sample 10ms] [-prom out.prom] [-csv out.csv]
//	          [-tracejson out.json] [-at 1s] [-window 100ms]
//	          [-faults drop-sa=0.1,dup-sa=0.05] [-fault-seed 0]
//	          [-parallel] [-workers N]
//
// With -faults, the spec (see fault.ParsePlan) is injected into every
// run, the runtime invariant checker is attached, and the summary
// gains injected-fault and violation counts.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irsreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchName := fs.String("bench", "streamcluster", "benchmark to run")
	stratArg := fs.String("strategy", "vanilla,irs", "comma-separated: vanilla,ple,relaxed-co,irs,strict-co")
	inter := fs.Int("inter", 1, "number of interfering CPU hogs")
	seed := fs.Uint64("seed", 1, "random seed")
	sample := fs.Duration("sample", 10*time.Millisecond, "sampler cadence (virtual time)")
	promPath := fs.String("prom", "", "write Prometheus text export to this file (- for stdout)")
	csvPath := fs.String("csv", "", "write CSV time-series export to this file (- for stdout)")
	traceJSON := fs.String("tracejson", "", "write Chrome trace JSON to this file (- for stdout)")
	at := fs.Duration("at", time.Second, "start of the Chrome trace window (virtual time)")
	window := fs.Duration("window", 100*time.Millisecond, "length of the Chrome trace window")
	faultSpec := fs.String("faults", "", "fault plan, e.g. drop-sa=0.1,dup-sa=0.05 (see fault.ParsePlan; \"none\" disables)")
	faultSeed := fs.Uint64("fault-seed", 0, "fault injector seed (0 derives from -seed)")
	parallel := fs.Bool("parallel", true, "run the per-strategy reports across worker goroutines")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	plan, err := fault.ParsePlan(*faultSpec)
	if err != nil {
		fmt.Fprintf(stderr, "irsreport: -faults: %v\n", err)
		return 2
	}

	bench, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(stderr, "irsreport: unknown benchmark %q\n", *benchName)
		return 1
	}
	var strategies []core.Strategy
	for _, name := range strings.Split(*stratArg, ",") {
		s, ok := strategyByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(stderr, "irsreport: unknown strategy %q (valid: vanilla, ple, relaxed-co, irs, strict-co)\n", name)
			return 2
		}
		strategies = append(strategies, s)
	}
	if len(strategies) == 0 {
		fmt.Fprintln(stderr, "irsreport: no strategy given")
		return 2
	}

	// Each strategy's run is an isolated simulation: fan them out and
	// buffer the output so stdout/stderr stay in strategy order and the
	// emitted report is byte-identical to a serial run.
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	if !*parallel {
		nWorkers = 1
	}
	type reportOut struct {
		out, errOut bytes.Buffer
		err         error
	}
	outs := make([]reportOut, len(strategies))
	fns := make([]func(), len(strategies))
	for i, strat := range strategies {
		i, strat := i, strat
		fns[i] = func() {
			outs[i].err = report(&outs[i].out, &outs[i].errOut, bench, *benchName,
				strat, *inter, *seed, sim.Duration(*sample),
				*promPath, *csvPath, *traceJSON,
				sim.Duration(*at), sim.Duration(*window), len(strategies) > 1,
				plan, *faultSeed)
		}
	}
	experiments.ParallelDo(nWorkers, fns)
	for i := range outs {
		io.Copy(stdout, &outs[i].out)
		io.Copy(stderr, &outs[i].errOut)
		if outs[i].err != nil {
			fmt.Fprintf(stderr, "irsreport: %v\n", outs[i].err)
			return 1
		}
	}
	return 0
}

func strategyByName(name string) (core.Strategy, bool) {
	switch name {
	case "vanilla":
		return core.StrategyVanilla, true
	case "ple":
		return core.StrategyPLE, true
	case "relaxed-co":
		return core.StrategyRelaxedCo, true
	case "irs":
		return core.StrategyIRS, true
	case "strict-co":
		return core.StrategyStrictCo, true
	}
	return 0, false
}

// report runs one strategy with telemetry attached and emits its
// summary and exports.
func report(stdout, stderr io.Writer, bench workload.Benchmark, benchName string,
	strat core.Strategy, inter int, seed uint64, sample sim.Time,
	promPath, csvPath, traceJSON string, at, window sim.Time, multi bool,
	plan fault.Plan, faultSeed uint64) error {

	reg := obs.NewRegistry()
	log := trace.NewLog(500000)
	fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	vms := []core.VMSpec{fg}
	if inter > 0 {
		vms = append(vms, core.HogVM("bg", inter, core.SeqPins(0, inter)))
	}
	scn := core.Scenario{
		PCPUs:          4,
		Strategy:       strat,
		Seed:           seed,
		VMs:            vms,
		Metrics:        reg,
		SampleInterval: sample,
		Faults:         plan,
		FaultSeed:      faultSeed,
		Invariants:     !plan.Zero(),
		TuneHV:         func(c *hypervisor.Config) { c.Trace = log },
		TuneGuest: func(name string, c *guest.Config) {
			if name == "fg" {
				c.Trace = log
			}
		},
	}
	cluster, err := core.Build(scn)
	if err != nil {
		return err
	}
	res, err := cluster.Run()
	if errors.Is(err, core.ErrUnfinished) {
		// Under fault injection a run may stall; the partial telemetry
		// is exactly what the report is for.
		fmt.Fprintf(stderr, "irsreport: %s: %v (reporting partial run)\n", strat, err)
	} else if err != nil {
		return err
	}
	// One final snapshot so the series include the end-of-run state.
	cluster.Sampler.Sample()

	writeSummary(stdout, reg, cluster.Sampler, res, benchName, strat, inter, seed, plan)

	for _, exp := range []struct {
		path  string
		label string
		write func(io.Writer) error
	}{
		{promPath, "prometheus", func(w io.Writer) error { return obs.WritePrometheus(w, reg) }},
		{csvPath, "csv", func(w io.Writer) error { return obs.WriteCSV(w, cluster.Sampler) }},
		{traceJSON, "chrome-trace", func(w io.Writer) error { return obs.WriteChromeTrace(w, log, at, at+window) }},
	} {
		if exp.path == "" {
			continue
		}
		if exp.path == "-" {
			fmt.Fprintf(stdout, "--- %s (%s) ---\n", exp.label, strat)
			if err := exp.write(stdout); err != nil {
				return err
			}
			continue
		}
		path := exp.path
		if multi {
			path = insertSuffix(path, strat.String())
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := exp.write(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(stderr, "irsreport: wrote %s to %s\n", exp.label, path)
	}
	return nil
}

// insertSuffix turns "out.csv" + "irs" into "out.irs.csv".
func insertSuffix(path, suffix string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + suffix + ext
}

// writeSummary renders the human-readable telemetry digest.
func writeSummary(w io.Writer, reg *obs.Registry, smp *obs.Sampler, res *core.Result,
	benchName string, strat core.Strategy, inter int, seed uint64, plan fault.Plan) {

	fmt.Fprintf(w, "== irsreport: bench=%s inter=%d strategy=%s seed=%d ==\n",
		benchName, inter, strat, seed)
	fgRes := res.VM("fg")
	fmt.Fprintf(w, "runtime            %s (elapsed %s, %d sim events)\n",
		fgRes.Runtime, res.Elapsed, res.Events)

	for _, vr := range res.VMs {
		var parts []string
		for _, v := range vr.Kernel.VM().VCPUs {
			steal := obs.CounterTime(reg, "hv_runstate_ns",
				obs.Labels{Sub: "hv", VM: vr.Name, CPU: v.Name(), Kind: "runnable"})
			parts = append(parts, fmt.Sprintf("%s=%s", v.Name(), steal))
		}
		fmt.Fprintf(w, "steal per vCPU     %s\n", strings.Join(parts, " "))
	}

	fgL := obs.Labels{Sub: "hv", VM: "fg"}
	fmt.Fprintf(w, "preempt wait (fg)  %s\n",
		obs.HistogramLine(reg.FindHistogram("hv_preempt_wait_ns", fgL)))
	fmt.Fprintf(w, "SA ack latency     %s\n",
		obs.HistogramLine(reg.FindHistogram("hv_sa_ack_ns", fgL)))
	fmt.Fprintf(w, "SA sent/ack/exp    %d/%d/%d (pending %d, fallbacks %d)\n",
		obs.CounterValue(reg, "hv_sa_sent_total", fgL),
		obs.CounterValue(reg, "hv_sa_acked_total", fgL),
		obs.CounterValue(reg, "hv_sa_expired_total", fgL),
		res.SAPending, res.SAFallbacks)
	if !plan.Zero() {
		fmt.Fprintf(w, "faults injected    %d (plan %s)\n", res.FaultsInjected, plan)
		fmt.Fprintf(w, "invariants         %d violations\n", res.Violations)
	}
	fmt.Fprintf(w, "LHP/LWP (fg)       %d/%d\n",
		obs.CounterValue(reg, "hv_lhp_total", fgL),
		obs.CounterValue(reg, "hv_lwp_total", fgL))
	fmt.Fprintf(w, "boost wakeups (fg) %d\n",
		obs.CounterValue(reg, "hv_boost_total", fgL))

	gL := obs.Labels{Sub: "guest", VM: "fg"}
	fmt.Fprintf(w, "guest migrations   task=%d wake=%d pull=%d irs=%d irs-pull=%d\n",
		obs.CounterValue(reg, "guest_task_migrations_total", gL),
		obs.CounterValue(reg, "guest_wake_migrations_total", gL),
		obs.CounterValue(reg, "guest_pull_migrations_total", gL),
		obs.CounterValue(reg, "guest_irs_migrations_total", gL),
		obs.CounterValue(reg, "guest_irs_pull_steals_total", gL))
	fmt.Fprintf(w, "migrator latency   %s\n",
		obs.HistogramLine(reg.FindHistogram("guest_migrator_latency_ns", gL)))
	fmt.Fprintf(w, "spin waits (fg)    %d\n",
		obs.CounterValue(reg, "guest_spin_waits_total", gL))

	hvL := obs.Labels{Sub: "hv"}
	var switches []string
	for i := int64(0); ; i++ {
		c := reg.FindCounter("hv_ctx_switches_total", obs.Labels{Sub: "hv", CPU: fmt.Sprintf("p%d", i)})
		if c == nil {
			break
		}
		switches = append(switches, fmt.Sprintf("p%d=%d", i, c.Value()))
	}
	fmt.Fprintf(w, "pCPU ctx switches  %s\n", strings.Join(switches, " "))
	fmt.Fprintf(w, "vCPU migrations    %d (steal attempts=%d moves=%d, PLE yields=%d)\n",
		obs.CounterValue(reg, "hv_vcpu_migrations_total", hvL),
		obs.CounterValue(reg, "hv_steal_attempts_total", hvL),
		obs.CounterValue(reg, "hv_steal_moves_total", hvL),
		obs.CounterValue(reg, "hv_ple_yields_total", hvL))
	fmt.Fprintf(w, "telemetry          %d metrics, %d samples, %d series\n\n",
		reg.Len(), smp.Samples(), len(smp.AllSeries()))
}
