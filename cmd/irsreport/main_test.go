package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBadInputs(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-nonsense"}, 2},
		{[]string{"-faults", "bogus=1"}, 2},
		{[]string{"-strategy", "fifo"}, 2},
		{[]string{"-strategy", ""}, 2},
		{[]string{"-bench", "nosuchbench"}, 1},
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(t, tc.args...); code != tc.want {
			t.Errorf("%v: exit = %d, want %d", tc.args, code, tc.want)
		}
	}
}

func TestInsertSuffix(t *testing.T) {
	if got := insertSuffix("out.csv", "irs"); got != "out.irs.csv" {
		t.Fatalf("insertSuffix = %q", got)
	}
	if got := insertSuffix("trace", "ple"); got != "trace.ple" {
		t.Fatalf("insertSuffix = %q", got)
	}
}

func TestReportRunsAndIsDeterministic(t *testing.T) {
	prom := filepath.Join(t.TempDir(), "out.prom")
	args := []string{"-strategy", "irs", "-inter", "1", "-seed", "1", "-prom", prom}
	code, out, errOut := runCmd(t, args...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"irsreport: bench=streamcluster", "steal per vCPU", "SA sent/ack/exp", "telemetry"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errOut, "wrote prometheus") {
		t.Fatalf("stderr missing export confirmation: %q", errOut)
	}
	code2, out2, _ := runCmd(t, args...)
	if code2 != 0 || out2 != out {
		t.Fatalf("rerun differs (exit %d)", code2)
	}
}
