// Command irsblame runs the bully workload with causal span tracing
// enabled and prints, per scheduling strategy, the end-to-end latency
// blame breakdown: which scheduler pathology (preemption wait, LHP
// spinning, SA handshakes, queueing, migration downtime, ...) owns what
// share of the p50/p99/p99.9 request cohorts, plus the critical paths
// of the slowest individual requests. With -perfetto it also writes the
// slowest requests' nested span trees as a Chrome/Perfetto trace, and
// with -csv the per-band category breakdown as a machine-readable
// table.
//
// Usage:
//
//	irsblame [-strategy vanilla,irs] [-seed 1] [-top 3]
//	         [-duration 2s] [-arrival 500µs] [-perfetto spans.json]
//	         [-csv blame.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irsblame", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strategies := fs.String("strategy", "vanilla,irs", "comma-separated strategies: vanilla | ple | irs")
	seed := fs.Uint64("seed", 1, "random seed")
	top := fs.Int("top", 3, "slowest requests to show per strategy")
	duration := fs.Duration("duration", time.Duration(experiments.DefaultBlameDuration), "request-stream duration (virtual time)")
	arrival := fs.Duration("arrival", time.Duration(experiments.DefaultBlameArrival), "mean request inter-arrival time")
	perfetto := fs.String("perfetto", "", "write the slowest requests' span trees to this file (Chrome/Perfetto trace JSON)")
	csvPath := fs.String("csv", "", "write the per-band blame breakdown to this file as CSV")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var variants []experiments.BlameVariant
	for _, name := range strings.Split(*strategies, ",") {
		v, ok := experiments.BlameVariantByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(stderr, "irsblame: unknown strategy %q (valid: vanilla, ple, irs)\n", name)
			return 2
		}
		variants = append(variants, v)
	}
	if len(variants) == 0 {
		fmt.Fprintln(stderr, "irsblame: no strategies selected")
		return 2
	}

	var sets []span.TrackSet
	var csvRows [][]string
	for _, v := range variants {
		spans, err := experiments.BlameRun(v.Strat, *seed, sim.Duration(*duration), sim.Duration(*arrival))
		if err != nil {
			fmt.Fprintf(stderr, "irsblame: %s: %v\n", v.Name, err)
			return 1
		}
		an := span.Analyze(spans, obs.DefaultSketchAlpha)
		printAnalysis(stdout, v.Name, an, *top)
		sets = append(sets, span.TrackSet{Name: v.Name, Spans: an.Slowest(*top)})
		csvRows = append(csvRows, blameCSVRows(v.Name, an)...)
	}

	if *csvPath != "" {
		err := writeFileWith(*csvPath, func(w io.Writer) error {
			return obs.WriteCSVTable(w, blameCSVHeader(), csvRows)
		})
		if err != nil {
			fmt.Fprintf(stderr, "irsblame: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote blame breakdown CSV to %s\n", *csvPath)
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintf(stderr, "irsblame: %v\n", err)
			return 1
		}
		werr := span.WriteChromeSpans(f, sets)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "irsblame: %v\n", werr)
			return 1
		}
		fmt.Fprintf(stdout, "wrote perfetto span trace to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
	return 0
}

// printAnalysis renders one strategy's blame breakdown.
func printAnalysis(w io.Writer, name string, an *span.Analysis, top int) {
	fmt.Fprintf(w, "== %s: %d requests, p50 %v p99 %v p99.9 %v ==\n",
		name, an.Requests,
		time.Duration(an.Wall.Percentile(50)),
		time.Duration(an.Wall.Percentile(99)),
		time.Duration(an.Wall.Percentile(99.9)))
	fmt.Fprintf(w, "conservation: %d violations, max error %v\n", an.Violations, time.Duration(an.MaxError))
	for _, b := range an.Bands {
		fmt.Fprintf(w, "  %-6s %5d reqs  %s\n", b.Label, b.Requests, shareLine(b.Shares, 5))
	}
	if top <= 0 {
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "slowest %d requests:\n", top)
	for _, sp := range an.Slowest(top) {
		fmt.Fprintf(w, "  #%d wall %v: %s\n", sp.ID, time.Duration(sp.Wall()), shareLine(sp.TopContributors(4), 4))
		fmt.Fprintf(w, "    %s\n", criticalPath(sp, 12))
	}
	fmt.Fprintln(w)
}

// shareLine renders the top-k category shares as "cat pct (time)".
func shareLine(shares []span.CategoryShare, k int) string {
	var parts []string
	for i, s := range shares {
		if i >= k {
			parts = append(parts, fmt.Sprintf("(+%d more)", len(shares)-k))
			break
		}
		parts = append(parts, fmt.Sprintf("%s %.1f%% (%v)", s.Cat, s.Share*100, time.Duration(s.Time)))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}

// criticalPath renders the span's segment timeline, phase by phase. A
// request span is single-threaded, so the whole timeline IS the
// critical path; long chains are truncated to maxSegs segments.
func criticalPath(sp *span.Span, maxSegs int) string {
	var b strings.Builder
	segs := 0
	for pi, ph := range sp.Phases {
		if pi > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s[", ph.Name)
		for si, seg := range ph.Segments {
			if segs >= maxSegs {
				fmt.Fprintf(&b, " …+%d", sp.SegmentCount()-segs)
				segs = sp.SegmentCount()
				break
			}
			if si > 0 {
				b.WriteString(" → ")
			}
			fmt.Fprintf(&b, "%s %v", seg.Cat, time.Duration(seg.Dur()))
			segs++
		}
		b.WriteByte(']')
		if segs >= maxSegs && pi < len(sp.Phases)-1 {
			fmt.Fprintf(&b, " …")
			break
		}
	}
	return b.String()
}

// blameCSVHeader names the machine-readable breakdown's columns.
func blameCSVHeader() []string {
	return []string{"strategy", "band", "requests", "band_wall_ns",
		"category", "time_ns", "share"}
}

// blameCSVRows flattens one strategy's per-band category breakdown
// into CSV rows: one row per (band, category) with the time and share.
func blameCSVRows(strategy string, an *span.Analysis) [][]string {
	var rows [][]string
	for _, b := range an.Bands {
		for _, sh := range b.Shares {
			rows = append(rows, []string{
				strategy,
				b.Label,
				fmt.Sprintf("%d", b.Requests),
				fmt.Sprintf("%d", int64(b.Wall)),
				sh.Cat.String(),
				fmt.Sprintf("%d", int64(sh.Time)),
				fmt.Sprintf("%.6f", sh.Share),
			})
		}
	}
	return rows
}

// writeFileWith streams fn's output into a freshly created file.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := fn(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
