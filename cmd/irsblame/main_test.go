package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadInputs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown strategy", []string{"-strategy", "nope"}, 2},
		{"empty strategy list", []string{"-strategy", ""}, 2},
		{"bad flag", []string{"-frobnicate"}, 2},
		{"unwritable perfetto path", []string{"-duration", "50ms", "-strategy", "vanilla", "-perfetto", "/nonexistent-dir/x.json"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.code {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.code, errb.String())
			}
		})
	}
}

func TestBlameOutputDeterministic(t *testing.T) {
	args := []string{"-duration", "300ms", "-top", "2", "-strategy", "vanilla,irs"}
	render := func() string {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("exit = %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	first := render()
	for _, want := range []string{
		"== vanilla:", "== irs:",
		"conservation: 0 violations, max error 0s",
		"p99", "slowest 2 requests:",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("output missing %q:\n%s", want, first)
		}
	}
	if second := render(); first != second {
		t.Fatal("two identical invocations produced different bytes")
	}
}

func TestPerfettoExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.json")
	var out, errb bytes.Buffer
	args := []string{"-duration", "200ms", "-top", "2", "-strategy", "vanilla,irs", "-perfetto", path}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote perfetto span trace") {
		t.Fatal("no perfetto confirmation line")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto file has no events")
	}
	// Both strategies must appear as named processes.
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e["name"] == "process_name" {
			if args, ok := e["args"].(map[string]any); ok {
				names[args["name"].(string)] = true
			}
		}
	}
	if !names["vanilla"] || !names["irs"] {
		t.Fatalf("process names = %v, want vanilla and irs", names)
	}
}

func TestCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blame.csv")
	var out, errb bytes.Buffer
	args := []string{"-duration", "200ms", "-top", "0", "-strategy", "vanilla,irs", "-csv", path}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wrote blame breakdown CSV") {
		t.Fatal("no CSV confirmation line")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "strategy,band,requests,band_wall_ns,category,time_ns,share" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if len(lines) < 8 {
		t.Fatalf("only %d CSV lines, want both strategies' bands", len(lines))
	}
	both := map[string]bool{}
	for _, ln := range lines[1:] {
		fields := strings.Split(ln, ",")
		if len(fields) != 7 {
			t.Fatalf("row has %d fields: %q", len(fields), ln)
		}
		both[fields[0]] = true
	}
	if !both["vanilla"] || !both["irs"] {
		t.Fatalf("strategies in CSV = %v, want vanilla and irs", both)
	}
}

func TestCSVUnwritablePath(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-duration", "50ms", "-strategy", "vanilla", "-csv", "/nonexistent-dir/x.csv"}
	if code := run(args, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
}
