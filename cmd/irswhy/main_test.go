package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListPrintsVariants(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"1z4h", "2z4h-diurnal", "2z8h-outage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"-nonsense"}, 2},
		{[]string{"-variant", "nosuchrig"}, 2},
		{[]string{"-spec", "topo:zones=0"}, 1},   // invalid spec fails at run time
		{[]string{"-kinds", "bogus"}, 2},         // unknown decision kind
		{[]string{"-q", "kind=place kind=x"}, 2}, // malformed query
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(t, tc.args...); code != tc.want {
			t.Errorf("%v: exit = %d, want %d", tc.args, code, tc.want)
		}
	}
}

// TestExpectGatePassesOnOutageTrail is the CI acceptance path: the
// outage rig's decision trail is exactly the elasticity story.
func TestExpectGatePassesOnOutageTrail(t *testing.T) {
	code, out, errOut := runCmd(t, "-shards", "1",
		"-expect", "cordon,failover,scale-up,scale-up,drain,drain")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"trail cordon", "trail failover", "expect gate", "— ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExpectGateFailsOnWrongTrail(t *testing.T) {
	code, _, errOut := runCmd(t, "-shards", "1", "-expect", "cordon,drain")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "does not match -expect") {
		t.Fatalf("stderr missing trail mismatch: %s", errOut)
	}
}

// TestQueryAndTopAreDeterministic pins the whole pipeline: two
// identical invocations — query, closest calls, trail — must emit
// byte-identical output regardless of the engine pool width.
func TestQueryAndTopAreDeterministic(t *testing.T) {
	args := []string{"-q", "kind=autoscale", "-top", "3"}
	_, serial, _ := runCmd(t, append([]string{"-shards", "1"}, args...)...)
	_, pooled, _ := runCmd(t, append([]string{"-shards", "0"}, args...)...)
	if serial != pooled {
		t.Fatalf("output differs between serial and pooled runs:\n--- serial ---\n%s--- pooled ---\n%s", serial, pooled)
	}
	if !strings.Contains(serial, "query \"kind=autoscale\": 4 of") {
		t.Fatalf("query did not match the 4 autoscale decisions:\n%s", serial)
	}
}

func TestJSONExportIsValid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decisions.json")
	code, _, errOut := runCmd(t, "-shards", "1", "-q", "kind=cordon,uncordon,autoscale", "-json", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bundle struct {
		Count   int `json:"count"`
		Records []struct {
			Kind string `json:"kind"`
		} `json:"records"`
	}
	if err := json.Unmarshal(b, &bundle); err != nil {
		t.Fatalf("exported bundle is not valid JSON: %v", err)
	}
	// 1 cordon + 1 uncordon + 4 autoscale actions.
	if bundle.Count != 6 || len(bundle.Records) != 6 {
		t.Fatalf("bundle has %d records, want 6", bundle.Count)
	}
}

func TestPerfettoExportIsValid(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "decisions.trace")
	code, _, errOut := runCmd(t, "-shards", "1", "-q", "kind=place", "-perfetto", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	var instants int
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "i" {
			instants++
		}
	}
	if instants != 10 {
		t.Fatalf("%d instant events, want 10 (one per placement)", instants)
	}
}
