// Command irswhy answers "why did the scheduler do that?" for a
// cluster run: it executes a load spec with the decision audit log
// attached and prints the incident's decision trail, then lets you
// interrogate the full log with a filter query, rank the closest calls
// (smallest winning margins — where the schedule nearly went the other
// way), and export the records as JSON or a Perfetto trace that lines
// up with the span tracer's timeline. With -expect it gates CI on the
// exact trail.
//
// Usage:
//
//	irswhy [-variant 2z8h-outage] [-spec 'topo:zones=2,...'] [-kinds ctl]
//	       [-seed 1] [-shards 0] [-lookahead 250us]
//	       [-q 'kind=place vm=srv0 t>6s'] [-limit 20] [-top 5]
//	       [-expect cordon,failover,scale-up,scale-up,drain,drain]
//	       [-json decisions.json] [-perfetto decisions.trace]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/decision"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irswhy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	variant := fs.String("variant", "2z8h-outage", "built-in load spec by name (see -list)")
	specFlag := fs.String("spec", "", "inline load spec instead of -variant (topology.ParseLoadSpec syntax)")
	list := fs.Bool("list", false, "list built-in variants and exit")
	seed := fs.Uint64("seed", 1, "random seed")
	shards := fs.Int("shards", 0, "engine pool width (0 = auto, 1 = serial)")
	lookahead := fs.Duration("lookahead", 0, "conservative window override (0 = default)")
	kindsFlag := fs.String("kinds", "ctl", "decision kinds to record: ctl, all, or a comma list (e.g. place,route)")
	query := fs.String("q", "", "print records matching this filter query (e.g. 'kind=place vm=srv0 t>6s')")
	limit := fs.Int("limit", 20, "cap on printed query records (0 = all)")
	top := fs.Int("top", 0, "print the N closest calls: scored decisions with the smallest winning margin")
	expect := fs.String("expect", "", "fail unless the decision trail is exactly this comma-separated step list")
	jsonOut := fs.String("json", "", "write the matched records as a JSON bundle to this file ('-' = stdout)")
	perfetto := fs.String("perfetto", "", "write the matched records as a Perfetto/Chrome trace to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, v := range experiments.ScaleVariants() {
			fmt.Fprintf(stdout, "%-14s %s\n", v.Name, v.Spec)
		}
		return 0
	}

	text, name := *specFlag, "spec"
	if text == "" {
		v, ok := experiments.ScaleVariantByName(*variant)
		if !ok {
			fmt.Fprintf(stderr, "irswhy: unknown variant %q (try -list)\n", *variant)
			return 2
		}
		text, name = v.Spec, v.Name
	}
	kinds, err := decision.ParseKinds(*kindsFlag)
	if err != nil {
		fmt.Fprintf(stderr, "irswhy: %v\n", err)
		return 2
	}
	q, err := decision.ParseQuery(*query)
	if err != nil {
		fmt.Fprintf(stderr, "irswhy: %v\n", err)
		return 2
	}

	c, err := experiments.RunWhy(text, kinds, *seed, *shards, sim.Duration(*lookahead))
	if err != nil {
		fmt.Fprintf(stderr, "irswhy: %v\n", err)
		return 1
	}
	log := c.Decisions()
	recs := log.Records()

	fmt.Fprintf(stdout, "== irswhy %s: %d decisions (%s, dropped %d) ==\n",
		name, len(recs), decision.CountsString(recs), log.Dropped())
	trail := decision.Trail(recs)
	for _, step := range trail {
		fmt.Fprintf(stdout, "trail %-9s %s\n", step.Label, recLine(&step.Rec))
	}

	if *query != "" {
		matched := decision.Filter(recs, q)
		fmt.Fprintf(stdout, "query %q: %d of %d records\n", q.String(), len(matched), len(recs))
		printRecs(stdout, matched, *limit)
	}
	if *top > 0 {
		calls := decision.ClosestCalls(decision.Filter(recs, q), *top)
		fmt.Fprintf(stdout, "closest calls (top %d by winning margin):\n", *top)
		printRecs(stdout, calls, 0)
	}

	if *jsonOut != "" {
		if code := export(*jsonOut, stdout, stderr, func(w io.Writer) error {
			return decision.WriteJSON(w, decision.Filter(recs, q), log.Dropped())
		}); code != 0 {
			return code
		}
	}
	if *perfetto != "" {
		if code := export(*perfetto, stdout, stderr, func(w io.Writer) error {
			return decision.WriteChromeTrace(w, decision.Filter(recs, q))
		}); code != 0 {
			return code
		}
	}

	if *expect != "" {
		got := decision.TrailString(trail)
		if got != *expect {
			fmt.Fprintf(stderr, "irswhy: decision trail %q does not match -expect %q\n", got, *expect)
			return 1
		}
		fmt.Fprintf(stdout, "expect gate: trail %s — ok\n", got)
	}
	return 0
}

// recLine renders one decision record as a single line.
func recLine(r *decision.Record) string {
	margin := ""
	if m, ok := r.Margin(); ok {
		margin = fmt.Sprintf(" margin=%.3f", m)
	}
	return fmt.Sprintf("t=%-9s %-9s %-5s %s -> %s%s  %s",
		r.At, r.Kind, r.Chooser, r.Subject, r.Winner, margin, r.Detail)
}

// printRecs prints up to limit records (0 = all), noting any overflow.
func printRecs(w io.Writer, recs []decision.Record, limit int) {
	n := len(recs)
	if limit > 0 && n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "  %s\n", recLine(&recs[i]))
	}
	if n < len(recs) {
		fmt.Fprintf(w, "  … and %d more (raise -limit)\n", len(recs)-n)
	}
}

// export writes one artifact to path ('-' = stdout).
func export(path string, stdout io.Writer, stderr io.Writer, write func(io.Writer) error) int {
	if path == "-" {
		if err := write(stdout); err != nil {
			fmt.Fprintf(stderr, "irswhy: %v\n", err)
			return 1
		}
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "irswhy: %v\n", err)
		return 1
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintf(stderr, "irswhy: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "irswhy: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return 0
}
