package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListIncludesEveryExperiment(t *testing.T) {
	code, out, _ := runCmd(t, "list")
	if code != 0 {
		t.Fatalf("list exited %d", code)
	}
	for _, id := range []string{"fig1a", "claims", "chaos", "cluster"} {
		if !strings.Contains(out, id+"\n") {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	code, _, errOut := runCmd(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Fatalf("no usage message on stderr: %q", errOut)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	if code, _, _ := runCmd(t, "-nonsense"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	code, _, errOut := runCmd(t, "fig99")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestClusterExperimentDeterministic(t *testing.T) {
	// The -experiment alias, and the headline property: same seed ⇒
	// byte-identical stdout, with and without -parallel.
	code, out, errOut := runCmd(t, "-experiment", "cluster", "-runs", "1", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "first-fit") || !strings.Contains(out, "ia+irs") {
		t.Fatalf("cluster table missing variants:\n%s", out)
	}
	code2, out2, _ := runCmd(t, "-runs", "1", "-seed", "1", "cluster")
	if code2 != 0 || out2 != out {
		t.Fatalf("positional rerun differs (exit %d)", code2)
	}
	code3, out3, _ := runCmd(t, "-parallel=false", "-runs", "1", "-seed", "1", "cluster")
	if code3 != 0 || out3 != out {
		t.Fatalf("serial run differs from parallel (exit %d)", code3)
	}
}

func TestAttackGatePassesWithDefenses(t *testing.T) {
	code, out, errOut := runCmd(t, "-attack", "tick-evade", "-expect-overshoot", "1.05")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "both") {
		t.Fatalf("attack table missing defense rows:\n%s", out)
	}
	if !strings.Contains(errOut, "attack gate ok") {
		t.Fatalf("no gate verdict on stderr: %q", errOut)
	}
}

func TestAttackGateFailsOnImpossibleCap(t *testing.T) {
	// No defense can hold an attacker below 1% of fair share; the gate
	// must trip.
	code, _, errOut := runCmd(t, "-attack", "tick-evade", "-expect-overshoot", "0.01")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "attack gate FAILED") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestAttackRejectsBadSpec(t *testing.T) {
	if code, _, _ := runCmd(t, "-attack", "frobnicate"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-attack", "none"); code != 2 {
		t.Fatalf("zero spec: exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-attack", "tick-evade", "fig1a"); code != 2 {
		t.Fatalf("spec+ids: exit = %d, want 2", code)
	}
}
