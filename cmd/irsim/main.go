// Command irsim regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	irsim [-runs N] [-seed S] [-parallel] [-workers N] [-v] list
//	irsim [-runs N] [-seed S] [-v] all
//	irsim [-runs N] [-seed S] [-v] fig5 fig6 ...
//	irsim [-cpuprofile cpu.pprof] [-memprofile mem.pprof] all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("irsim", flag.ContinueOnError)
	runs := fs.Int("runs", 3, "simulated runs per data point (paper: 5)")
	seed := fs.Uint64("seed", 1, "base random seed")
	verbose := fs.Bool("v", false, "log each measurement")
	parallel := fs.Bool("parallel", true, "fan each figure's simulation matrix across worker goroutines")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage(fs)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "irsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "irsim: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "irsim: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	opt := experiments.Options{Runs: *runs, Seed: *seed, Workers: *workers}
	if !*parallel {
		opt.Workers = 1
	}
	if *verbose {
		opt.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	ids := fs.Args()
	if len(ids) == 1 {
		switch strings.ToLower(ids[0]) {
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
			return 0
		case "all":
			ids = experiments.IDs()
		}
	}

	bad := 0
	for _, id := range ids {
		start := time.Now()
		tb, ok := experiments.ByID(id, opt)
		if !ok {
			fmt.Fprintf(os.Stderr, "irsim: unknown experiment %q (try: irsim list)\n", id)
			bad++
			continue
		}
		fmt.Print(tb)
		fmt.Printf("(%.1fs wall)\n\n", time.Since(start).Seconds())
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: irsim [flags] list | all | <figure-id>...")
	fs.PrintDefaults()
}
