// Command irsim regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	irsim [-runs N] [-seed S] [-parallel] [-workers N] [-v] list
//	irsim [-runs N] [-seed S] [-v] all
//	irsim [-runs N] [-seed S] [-v] fig5 fig6 ...
//	irsim [-experiment cluster] [-runs N] [-seed S]
//	irsim [-cpuprofile cpu.pprof] [-memprofile mem.pprof] all
//	irsim -attack tick-evade [-expect-overshoot 1.05] [-seed S]
//
// Tables go to stdout and are byte-identical for a given seed (wall
// times and progress go to stderr), so output can be diffed across
// runs and against the golden corpus.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("irsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runs := fs.Int("runs", 3, "simulated runs per data point (paper: 5)")
	seed := fs.Uint64("seed", 1, "base random seed")
	verbose := fs.Bool("v", false, "log each measurement")
	parallel := fs.Bool("parallel", true, "fan each figure's simulation matrix across worker goroutines")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "per-host engine shards inside cluster-backed experiments (0 = auto, 1 = serial; output is identical at any setting)")
	lookahead := fs.Duration("lookahead", 0, "conservative window width for sharded cluster runs (0 = default 250µs; changing it changes results)")
	experiment := fs.String("experiment", "", "experiment id to run (alias for the positional form)")
	attack := fs.String("attack", "", "attacker spec (e.g. tick-evade,margin=500us); runs it against every accounting defense")
	expectOvershoot := fs.Float64("expect-overshoot", 0,
		"with -attack: exit nonzero unless the fully-defended row keeps the attacker at or below this fair-share ratio")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ids := fs.Args()
	if *experiment != "" {
		ids = append([]string{*experiment}, ids...)
	}
	if *attack != "" {
		if len(ids) > 0 {
			fmt.Fprintln(stderr, "irsim: -attack does not combine with experiment ids")
			return 2
		}
		return attackGate(*attack, *expectOvershoot, *seed, stdout, stderr)
	}
	if len(ids) == 0 {
		usage(fs, stderr)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "irsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "irsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "irsim: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "irsim: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	opt := experiments.Options{
		Runs: *runs, Seed: *seed, Workers: *workers,
		Shards: *shards, Lookahead: sim.Duration(*lookahead),
	}
	if !*parallel {
		opt.Workers = 1
	}
	if *verbose {
		opt.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}

	if len(ids) == 1 {
		switch strings.ToLower(ids[0]) {
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Fprintln(stdout, id)
			}
			return 0
		case "all":
			ids = experiments.IDs()
		}
	}

	bad := 0
	for _, id := range ids {
		start := time.Now()
		tb, ok := experiments.ByID(id, opt)
		if !ok {
			fmt.Fprintf(stderr, "irsim: unknown experiment %q (try: irsim list)\n", id)
			bad++
			continue
		}
		fmt.Fprint(stdout, tb)
		fmt.Fprintln(stdout)
		fmt.Fprintf(stderr, "irsim: %s took %.1fs wall\n", id, time.Since(start).Seconds())
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: irsim [flags] list | all | <experiment-id>...")
	fs.PrintDefaults()
}

// attackGate runs one attacker spec against every accounting defense
// and prints the resulting table. With a positive expect threshold it
// doubles as the CI smoke gate: the fully-defended ("both") row must
// keep the attacker's obtained/fair ratio at or below the threshold.
func attackGate(spec string, expect float64, seed uint64, stdout, stderr io.Writer) int {
	as, err := workload.ParseAttack(spec)
	if err != nil {
		fmt.Fprintf(stderr, "irsim: -attack: %v\n", err)
		return 2
	}
	if as.Zero() {
		fmt.Fprintln(stderr, "irsim: -attack: spec names no attack kind")
		return 2
	}
	defenses := experiments.AttackDefenses()
	outs := make([]experiments.AttackOutcome, len(defenses))
	errs := make([]error, len(defenses))
	var fns []func()
	for i, d := range defenses {
		i, d := i, d
		fns = append(fns, func() {
			outs[i], errs[i] = experiments.RunAttack(as, d, seed)
		})
	}
	experiments.ParallelDo(len(fns), fns)

	tb := experiments.Table{
		ID:      "attack",
		Title:   fmt.Sprintf("attacker %q vs accounting defenses", as),
		Columns: experiments.AttackColumns(),
	}
	var defended *experiments.AttackOutcome
	for i, d := range defenses {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "irsim: attack %s/%s: %v\n", as.Kind, d.Name, errs[i])
			return 1
		}
		tb.Rows = append(tb.Rows, experiments.AttackRow(outs[i]))
		if d.Name == "both" {
			defended = &outs[i]
		}
	}
	fmt.Fprint(stdout, tb)
	fmt.Fprintln(stdout)

	if expect > 0 {
		if defended == nil {
			fmt.Fprintln(stderr, "irsim: attack gate: no fully-defended row")
			return 1
		}
		if defended.FairRatio > expect {
			fmt.Fprintf(stderr, "irsim: attack gate FAILED: defended %s still obtains %.3fx fair share (cap %.2fx)\n",
				as.Kind, defended.FairRatio, expect)
			return 1
		}
		fmt.Fprintf(stderr, "irsim: attack gate ok: defended %s held to %.3fx fair share (cap %.2fx)\n",
			as.Kind, defended.FairRatio, expect)
	}
	return 0
}
