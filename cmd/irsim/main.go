// Command irsim regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	irsim [-runs N] [-seed S] [-v] list
//	irsim [-runs N] [-seed S] [-v] all
//	irsim [-runs N] [-seed S] [-v] fig5 fig6 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("irsim", flag.ContinueOnError)
	runs := fs.Int("runs", 3, "simulated runs per data point (paper: 5)")
	seed := fs.Uint64("seed", 1, "base random seed")
	verbose := fs.Bool("v", false, "log each measurement")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		usage(fs)
		return 2
	}

	opt := experiments.Options{Runs: *runs, Seed: *seed}
	if *verbose {
		opt.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	ids := fs.Args()
	if len(ids) == 1 {
		switch strings.ToLower(ids[0]) {
		case "list":
			for _, id := range experiments.IDs() {
				fmt.Println(id)
			}
			return 0
		case "all":
			ids = experiments.IDs()
		}
	}

	bad := 0
	for _, id := range ids {
		start := time.Now()
		tb, ok := experiments.ByID(id, opt)
		if !ok {
			fmt.Fprintf(os.Stderr, "irsim: unknown experiment %q (try: irsim list)\n", id)
			bad++
			continue
		}
		fmt.Print(tb)
		fmt.Printf("(%.1fs wall)\n\n", time.Since(start).Seconds())
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet) {
	fmt.Fprintln(os.Stderr, "usage: irsim [flags] list | all | <figure-id>...")
	fs.PrintDefaults()
}
