// Command benchjson converts `go test -bench` output into a JSON
// snapshot and gates performance regressions between two snapshots.
//
// Snapshot mode reads benchmark output on stdin and writes JSON:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Compare mode diffs a new snapshot against a committed baseline:
//
//	benchjson -compare BENCH_baseline.json BENCH_new.json -tolerance 0.15
//
// The gate is asymmetric by metric:
//
//   - allocs/op is hardware-independent and (for this repo's
//     deterministic simulator) reproducible, so it is gated on every
//     comparison: a relative increase beyond the tolerance fails.
//   - ns/op is only meaningful between runs on matching hardware, so
//     it is gated when the two snapshots' host metadata (OS, arch, CPU
//     model, CPU count, GOMAXPROCS) agrees and reported as
//     informational otherwise.
//   - events/sec (simulation throughput from the cluster benchmarks)
//     gates like ns/op — matching hardware only — but in the opposite
//     direction: a relative drop beyond the tolerance fails.
//   - a benchmark present in the baseline but missing from the new
//     snapshot fails (coverage loss); new benchmarks are noted.
//
// Exit status: 0 clean, 1 regression or coverage loss, 2 usage error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Meta records the environment a snapshot was measured in. Compare
// mode uses it to decide whether wall-clock metrics are comparable.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Note       string `json:"note,omitempty"`
}

// Snapshot is one benchmark run: metric name → value, per benchmark.
type Snapshot struct {
	Meta       Meta                          `json:"meta"`
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "-", "snapshot mode: output path (- for stdout)")
	note := fs.String("note", "", "snapshot mode: free-form note stored in the metadata")
	compare := fs.Bool("compare", false, "compare mode: diff <baseline.json> <new.json>")
	tolerance := fs.Float64("tolerance", 0.15, "compare mode: allowed relative growth per gated metric")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchjson: -compare needs exactly two snapshot files")
			return 2
		}
		return compareSnapshots(stdout, stderr, fs.Arg(0), fs.Arg(1), *tolerance)
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "benchjson: snapshot mode reads stdin and takes no arguments")
		return 2
	}

	snap, err := parseBench(stdin, *note)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on stdin")
		return 2
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if *out == "-" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	return 0
}

// parseBench scans `go test -bench` output. A benchmark line is
//
//	BenchmarkName-8   12345   77.67 ns/op   64 B/op   1 allocs/op ...
//
// i.e. a name, an iteration count, then (value, unit) pairs; custom
// b.ReportMetric units (events/sec, ...) parse the same way.
func parseBench(r io.Reader, note string) (*Snapshot, error) {
	snap := &Snapshot{
		Meta: Meta{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			CPUModel:   cpuModel(),
			Note:       note,
		},
		Benchmarks: make(map[string]map[string]float64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		metrics := map[string]float64{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
		snap.Benchmarks[name] = metrics
	}
	return snap, sc.Err()
}

// cpuModel best-effort reads the CPU model name (linux only).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return ""
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// sameHost reports whether wall-clock numbers from the two snapshots
// are comparable.
func sameHost(a, b Meta) bool {
	if a.GOOS != b.GOOS || a.GOARCH != b.GOARCH ||
		a.NumCPU != b.NumCPU || a.GOMAXPROCS != b.GOMAXPROCS {
		return false
	}
	if a.CPUModel != "" && b.CPUModel != "" && a.CPUModel != b.CPUModel {
		return false
	}
	return true
}

func compareSnapshots(stdout, stderr io.Writer, basePath, newPath string, tol float64) int {
	base, err := loadSnapshot(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	cur, err := loadSnapshot(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}

	gateTime := sameHost(base.Meta, cur.Meta)
	if !gateTime {
		fmt.Fprintf(stdout, "note: host metadata differs (%s/%s/%dcpu vs %s/%s/%dcpu); ns/op reported but not gated\n",
			base.Meta.GOOS, base.Meta.GOARCH, base.Meta.NumCPU,
			cur.Meta.GOOS, cur.Meta.GOARCH, cur.Meta.NumCPU)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	// check gates one metric; lowerIsBetter selects which direction of
	// drift beyond the tolerance counts as a regression (ns/op and
	// allocs/op shrink when things improve; events/sec grows).
	check := func(name, metric string, gate, lowerIsBetter bool) {
		old, okOld := base.Benchmarks[name][metric]
		now, okNew := cur.Benchmarks[name][metric]
		if !okOld || !okNew || old == 0 {
			return
		}
		delta := (now - old) / old
		worse, better := delta > tol, delta < -tol
		if !lowerIsBetter {
			worse, better = delta < -tol, delta > tol
		}
		status := "ok"
		switch {
		case worse && gate:
			status = "REGRESSION"
			failures++
		case worse:
			status = "worse (ungated)"
		case better:
			status = "improved"
		}
		fmt.Fprintf(stdout, "%-40s %-10s %12.2f -> %12.2f  %+6.1f%%  %s\n",
			name, metric, old, now, delta*100, status)
	}
	for _, name := range names {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(stdout, "%-40s MISSING from new snapshot\n", name)
			failures++
			continue
		}
		check(name, "ns/op", gateTime, true)
		check(name, "allocs/op", true, true)
		// Simulation throughput is wall-clock-derived, so like ns/op it
		// only gates between matching hosts.
		check(name, "events/sec", gateTime, false)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(stdout, "%-40s new benchmark (no baseline)\n", name)
		}
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "benchjson: %d regression(s) beyond %.0f%% tolerance\n", failures, tol*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: no regressions beyond %.0f%% tolerance (%d benchmarks)\n", tol*100, len(names))
	return 0
}
