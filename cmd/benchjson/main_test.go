package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/sim
BenchmarkScheduleFire-4     14801766        77.67 ns/op      12875772 events/sec        64 B/op        1 allocs/op
BenchmarkPeriodicFire-4     48233721        24.84 ns/op       0 B/op        0 allocs/op
PASS
ok   repro/internal/sim  3.1s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleBench), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	fire := snap.Benchmarks["BenchmarkScheduleFire"]
	if fire == nil {
		t.Fatal("BenchmarkScheduleFire missing (or -4 suffix not stripped)")
	}
	if got := fire["ns/op"]; got != 77.67 {
		t.Errorf("ns/op = %v, want 77.67", got)
	}
	if got := fire["events/sec"]; got != 12875772 {
		t.Errorf("custom metric events/sec = %v, want 12875772", got)
	}
	if got := fire["allocs/op"]; got != 1 {
		t.Errorf("allocs/op = %v, want 1", got)
	}
	if snap.Meta.Note != "test" {
		t.Errorf("note = %q", snap.Meta.Note)
	}
}

// writeSnap renders a snapshot file via the real snapshot code path.
func writeSnap(t *testing.T, dir, name, benchOut string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path}, strings.NewReader(benchOut), &stdout, &stderr); code != 0 {
		t.Fatalf("snapshot exited %d: %s", code, stderr.String())
	}
	return path
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", sampleBench)

	// Identical snapshots: clean.
	var out, errOut bytes.Buffer
	if code := run([]string{"-compare", base, base}, nil, &out, &errOut); code != 0 {
		t.Fatalf("self-compare exited %d:\n%s%s", code, out.String(), errOut.String())
	}

	// ns/op regression beyond 15% on the same host: gated.
	worse := strings.Replace(sampleBench, "77.67 ns/op", "177.67 ns/op", 1)
	worsePath := writeSnap(t, dir, "worse.json", worse)
	out.Reset()
	if code := run([]string{"-compare", base, worsePath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("ns/op regression not gated (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", out.String())
	}

	// allocs/op regression: gated even across hosts.
	alloc := strings.Replace(sampleBench, "1 allocs/op", "3 allocs/op", 1)
	allocPath := writeSnap(t, dir, "alloc.json", alloc)
	mutateHost(t, allocPath)
	out.Reset()
	if code := run([]string{"-compare", base, allocPath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("allocs/op regression not gated (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Errorf("cross-host ns/op should be reported ungated:\n%s", out.String())
	}

	// Missing benchmark: coverage loss fails.
	short := strings.Replace(sampleBench, "BenchmarkPeriodicFire", "BenchmarkRenamed", 1)
	shortPath := writeSnap(t, dir, "short.json", short)
	out.Reset()
	if code := run([]string{"-compare", base, shortPath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("missing benchmark not gated (exit %d):\n%s", code, out.String())
	}

	// events/sec gates in the opposite direction: a throughput DROP
	// beyond the tolerance fails on matching hardware...
	slow := strings.Replace(sampleBench, "12875772 events/sec", "6875772 events/sec", 1)
	slowPath := writeSnap(t, dir, "slow.json", slow)
	out.Reset()
	if code := run([]string{"-compare", base, slowPath}, nil, &out, &errOut); code != 1 {
		t.Fatalf("events/sec drop not gated (exit %d):\n%s", code, out.String())
	}
	// ...a throughput gain is an improvement, not a regression...
	fast := strings.Replace(sampleBench, "12875772 events/sec", "22875772 events/sec", 1)
	fastPath := writeSnap(t, dir, "fast.json", fast)
	out.Reset()
	if code := run([]string{"-compare", base, fastPath}, nil, &out, &errOut); code != 0 {
		t.Fatalf("events/sec gain gated as a regression (exit %d):\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Errorf("throughput gain not reported as improved:\n%s", out.String())
	}
	// ...and across hosts the drop is reported but ungated.
	slowFar := writeSnap(t, dir, "slowfar.json", slow)
	mutateHost(t, slowFar)
	out.Reset()
	if code := run([]string{"-compare", base, slowFar}, nil, &out, &errOut); code != 0 {
		t.Fatalf("cross-host events/sec drop should not gate (exit %d):\n%s", code, out.String())
	}
}

// mutateHost rewrites a snapshot's num_cpu so it looks like a
// different machine.
func mutateHost(t *testing.T, path string) {
	t.Helper()
	snap, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Meta.NumCPU += 7
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
}
