package decision

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func rec(at sim.Time, k Kind, subject string) Record {
	return Record{At: at, Kind: k, Subject: subject}
}

func TestNilRingAndLogAreNoOps(t *testing.T) {
	var r *Ring
	if r.Wants(KindPlace) {
		t.Fatal("nil ring wants records")
	}
	r.Add(rec(0, KindPlace, "x")) // must not panic

	var l *Log
	l.Merge()
	l.Label(0, "ctl")
	if l.Ring(0) != nil {
		t.Fatal("nil log returned a ring")
	}
	if l.Records() != nil || l.Dropped() != 0 {
		t.Fatal("nil log has state")
	}
}

func TestRingStampsShardChooserSeq(t *testing.T) {
	l := NewLog(3, Options{PerShard: 8})
	l.Label(0, "ctl")
	l.Label(2, "host1")
	l.Ring(0).Add(rec(10, KindPlace, "a"))
	l.Ring(0).Add(rec(20, KindRoute, "b"))
	l.Ring(2).Add(rec(15, KindBoost, "c"))
	l.Merge()
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("merged %d records, want 3", len(recs))
	}
	if recs[0].Chooser != "ctl" || recs[0].Shard != 0 || recs[0].Seq != 0 {
		t.Fatalf("record 0 stamped %q shard=%d seq=%d", recs[0].Chooser, recs[0].Shard, recs[0].Seq)
	}
	if recs[1].Chooser != "host1" || recs[1].Shard != 2 {
		t.Fatalf("record 1 = %+v, want host1 shard 2 (time order)", recs[1])
	}
	if recs[2].Seq != 1 {
		t.Fatalf("second ctl record seq = %d, want 1", recs[2].Seq)
	}
}

// TestMergeCanonicalOrder pins the determinism contract: the merged
// order depends only on (time, shard, per-shard order), never on which
// merge batch a record landed in.
func TestMergeCanonicalOrder(t *testing.T) {
	build := func(splitMerges bool) []Record {
		l := NewLog(3, Options{PerShard: 16})
		// Equal times across shards: shard order must win.
		l.Ring(2).Add(rec(100, KindPlace, "s2a"))
		l.Ring(1).Add(rec(100, KindPlace, "s1a"))
		l.Ring(1).Add(rec(50, KindPlace, "s1b"))
		if splitMerges {
			l.Merge()
		}
		l.Ring(0).Add(rec(100, KindPlace, "s0a"))
		l.Ring(2).Add(rec(70, KindPlace, "s2b"))
		l.Merge()
		out := make([]Record, len(l.Records()))
		copy(out, l.Records())
		return out
	}
	a, b := build(false), build(true)
	names := func(rs []Record) string {
		var parts []string
		for _, r := range rs {
			parts = append(parts, r.Subject)
		}
		return strings.Join(parts, ",")
	}
	// One merge: concat shard order [s0a][s1a s1b][s2a s2b] then stable
	// sort by time → s1b(50) s2b(70) s0a s1a s2a (equal 100, shard order).
	if got := names(a); got != "s1b,s2b,s0a,s1a,s2a" {
		t.Fatalf("single merge order = %s", got)
	}
	// Records already merged keep their place; later records sort into
	// their own batch. The barrier schedule fixes which records share a
	// batch independently of the worker pool, so this order is still
	// deterministic — it just differs from the single-batch one.
	if got := names(b); got != "s1b,s1a,s2a,s2b,s0a" {
		t.Fatalf("split merge order = %s", got)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	l := NewLog(1, Options{PerShard: 2})
	r := l.Ring(0)
	r.Add(rec(1, KindPlace, "a"))
	r.Add(rec(2, KindPlace, "b"))
	r.Add(rec(3, KindPlace, "c"))
	l.Merge()
	recs := l.Records()
	if len(recs) != 2 || recs[0].Subject != "b" || recs[1].Subject != "c" {
		t.Fatalf("overflow kept %+v", recs)
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", l.Dropped())
	}
}

func TestLogTotalBound(t *testing.T) {
	l := NewLog(1, Options{PerShard: 8, Total: 3})
	r := l.Ring(0)
	for i := 0; i < 5; i++ {
		r.Add(rec(sim.Time(i), KindRoute, "x"))
		l.Merge()
	}
	if len(l.Records()) != 3 {
		t.Fatalf("merged log holds %d, want 3", len(l.Records()))
	}
	if l.Records()[0].At != 2 {
		t.Fatalf("oldest surviving record at %v, want 2ns", l.Records()[0].At)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
}

func TestKindMaskFiltersRecording(t *testing.T) {
	l := NewLog(1, Options{Kinds: []Kind{KindPlace, KindCordon}})
	r := l.Ring(0)
	if !r.Wants(KindPlace) || !r.Wants(KindCordon) {
		t.Fatal("selected kinds not wanted")
	}
	if r.Wants(KindBoost) || r.Wants(KindRoute) {
		t.Fatal("unselected kinds wanted")
	}
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("all")
	if err != nil || len(all) != len(AllKinds()) {
		t.Fatalf("all = %v, %v", all, err)
	}
	ctl, err := ParseKinds("ctl")
	if err != nil || len(ctl) != len(ControlKinds()) {
		t.Fatalf("ctl = %v, %v", ctl, err)
	}
	got, err := ParseKinds("route, place")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != KindPlace || got[1] != KindRoute {
		t.Fatalf("kinds = %v, want enum order [place route]", got)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
}

func TestMarginAndRunnerUp(t *testing.T) {
	r := Record{
		Winner: "host1",
		Candidates: []Candidate{
			{Name: "host0", Score: 0.9},
			{Name: "host1", Score: 0.2},
			{Name: "host2", Score: 0.5},
		},
	}
	ru, ok := r.RunnerUp()
	if !ok || ru.Name != "host2" {
		t.Fatalf("runner-up = %+v, %v", ru, ok)
	}
	m, ok := r.Margin()
	if !ok || m < 0.299 || m > 0.301 {
		t.Fatalf("margin = %v, %v", m, ok)
	}
	// A winner outside the candidate set (boost records) has no margin.
	r.Winner = "elsewhere"
	if _, ok := r.Margin(); ok {
		t.Fatal("margin defined without a scored winner")
	}
}

func TestTrailSelectsElasticityStory(t *testing.T) {
	up := Record{At: 3, Kind: KindAutoscale, Inputs: []KV{{Key: "act", Val: "up"}}}
	down := Record{At: 9, Kind: KindAutoscale, Inputs: []KV{{Key: "act", Val: "down"}}}
	failover := Record{At: 2, Kind: KindRoute, Inputs: []KV{{Key: "failover", Val: "1"}}}
	recs := []Record{
		rec(0, KindPlace, "srv0"),
		rec(1, KindCordon, "z1"),
		rec(1, KindRoute, "srv0"), // plain route: not a failover step
		failover,
		{At: 2, Kind: KindRoute, Inputs: []KV{{Key: "failover", Val: "1"}}}, // only the first counts
		up,
		rec(5, KindMigrate, "srv1"), // migrations are queryable, not trail steps
		rec(6, KindUncordon, "z1"),
		down,
	}
	steps := Trail(recs)
	if got := TrailString(steps); got != "cordon,failover,scale-up,drain" {
		t.Fatalf("trail = %q", got)
	}
}

func TestClosestCalls(t *testing.T) {
	mk := func(at sim.Time, winner float64, runner float64) Record {
		return Record{
			At: at, Kind: KindPlace, Winner: "w",
			Candidates: []Candidate{{Name: "w", Score: winner}, {Name: "r", Score: runner}},
		}
	}
	recs := []Record{
		mk(1, 0.1, 0.9), // margin 0.8
		mk(2, 0.1, 0.2), // margin 0.1
		rec(3, KindCordon, "z0"),
		mk(4, 0.3, 0.5), // margin 0.2
	}
	calls := ClosestCalls(recs, 2)
	if len(calls) != 2 || calls[0].At != 2 || calls[1].At != 4 {
		t.Fatalf("closest calls = %+v", calls)
	}
	if got := ClosestCalls(recs, 10); len(got) != 3 {
		t.Fatalf("n beyond scored count returned %d", len(got))
	}
}

func TestCountsString(t *testing.T) {
	recs := []Record{
		rec(1, KindPlace, "a"), rec(2, KindPlace, "b"),
		rec(3, KindCordon, "z"),
	}
	if got := CountsString(recs); got != "place=2 cordon=1" {
		t.Fatalf("counts = %q", got)
	}
	if got := CountsString(nil); got != "none" {
		t.Fatalf("empty counts = %q", got)
	}
}
