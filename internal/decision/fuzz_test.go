package decision

import (
	"reflect"
	"testing"
)

// FuzzParseQuery pins the parser's two contracts: it never panics on
// arbitrary input, and every accepted query round-trips through its
// canonical String form to an identical Query.
func FuzzParseQuery(f *testing.F) {
	for _, s := range []string{
		"",
		"all",
		"kind=place",
		"kind=place,route vm=t3 t>40ms",
		"kind=zone-pick,autoscale chooser=ctl winner=host2",
		"vm=srv0#2 t>1.5ms t<2s",
		"t<6s",
		"kind=boost,preempt vm=ant1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q1, err := ParseQuery(s)
		if err != nil {
			return
		}
		canon := q1.String()
		q2, err := ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, s, err)
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("round trip of %q: %+v != %+v", s, q1, q2)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("String not a fixed point: %q -> %q", canon, got)
		}
	})
}
