package decision

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestParseQueryBasics(t *testing.T) {
	q, err := ParseQuery("kind=place vm=t3 t>40ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Kinds) != 1 || q.Kinds[0] != KindPlace || q.VM != "t3" || q.After != 40*sim.Millisecond {
		t.Fatalf("parsed %+v", q)
	}
	if got := q.String(); got != "kind=place vm=t3 t>40ms" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseQueryZeroForms(t *testing.T) {
	for _, s := range []string{"", "  ", "all"} {
		q, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if !reflect.DeepEqual(q, Query{}) {
			t.Fatalf("%q parsed to %+v", s, q)
		}
	}
	if (Query{}).String() != "all" {
		t.Fatalf("zero query renders %q", (Query{}).String())
	}
}

func TestParseQueryCanonicalKindOrder(t *testing.T) {
	q, err := ParseQuery("kind=route,place chooser=ctl winner=host2 t<6s")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.String(); got != "kind=place,route chooser=ctl winner=host2 t<6s" {
		t.Fatalf("canonical form = %q", got)
	}
}

func TestParseQueryRoundTrip(t *testing.T) {
	for _, s := range []string{
		"all",
		"kind=place",
		"kind=place,route,boost vm=srv0",
		"chooser=host3 t>1.5ms t<2s",
		"winner=z1",
	} {
		q1, err := ParseQuery(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		q2, err := ParseQuery(q1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q1.String(), err)
		}
		if !reflect.DeepEqual(q1, q2) {
			t.Fatalf("%q: %+v != reparsed %+v", s, q1, q2)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, s := range []string{
		"kind=bogus",
		"kind=place,place",
		"vm=",
		"unknownkey=x",
		"vm=a vm=b",
		"t>oops",
		"t>-5ms",
		"t>2s t<1s",
		"t>1s t<1s",
		"noequals",
	} {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("%q parsed without error", s)
		}
	}
}

func TestQueryMatch(t *testing.T) {
	recs := []Record{
		{At: 10 * sim.Millisecond, Kind: KindPlace, Chooser: "ctl", Subject: "srv0", Winner: "host1"},
		{At: 50 * sim.Millisecond, Kind: KindRoute, Chooser: "ctl", Subject: "srv0#2", Winner: "srv0#2"},
		{At: 90 * sim.Millisecond, Kind: KindBoost, Chooser: "host1", Subject: "ant1", Winner: "ant1/v0"},
	}
	cases := []struct {
		q    string
		want int
	}{
		{"all", 3},
		{"kind=place", 1},
		{"kind=place,route", 2},
		{"vm=srv0", 2}, // migration generation srv0#2 matches too
		{"vm=srv0#2", 1},
		{"chooser=host1", 1},
		{"winner=host1", 1},
		{"t>10ms", 2}, // strict: the 10ms record is excluded
		{"t<50ms", 1},
		{"t>10ms t<90ms", 1},
		{"kind=route vm=srv0 chooser=ctl", 1},
		{"vm=ant1 kind=place", 0},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.q)
		if err != nil {
			t.Fatalf("%q: %v", c.q, err)
		}
		if got := len(Filter(recs, q)); got != c.want {
			t.Errorf("%q matched %d records, want %d", c.q, got, c.want)
		}
	}
}
