package decision

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

// Exports. The JSON bundle is the machine-readable artifact CI
// uploads; the Chrome-trace export renders each decision as a Perfetto
// instant event on a per-chooser track, with the same microsecond
// timestamps and VM names span.WriteChromeSpans uses — load both files
// into one Perfetto session and the decision that routed a request
// lines up under the request's span.

// jsonCandidate mirrors Candidate with stable JSON keys.
type jsonCandidate struct {
	Name   string  `json:"name"`
	Score  float64 `json:"score"`
	Reason string  `json:"reason,omitempty"`
}

// jsonRecord is one exported decision.
type jsonRecord struct {
	T          string            `json:"t"`  // human time, e.g. "6.000s"
	Ns         int64             `json:"ns"` // virtual nanoseconds (span correlation key)
	Shard      int               `json:"shard"`
	Seq        uint64            `json:"seq"`
	Kind       string            `json:"kind"`
	Chooser    string            `json:"chooser"`
	Subject    string            `json:"subject,omitempty"`
	Winner     string            `json:"winner,omitempty"`
	Detail     string            `json:"detail,omitempty"`
	Candidates []jsonCandidate   `json:"candidates,omitempty"`
	Inputs     map[string]string `json:"inputs,omitempty"`
}

// jsonBundle is the export envelope.
type jsonBundle struct {
	Count   int          `json:"count"`
	Dropped uint64       `json:"dropped"`
	Records []jsonRecord `json:"records"`
}

// WriteJSON writes the records as one indented JSON bundle.
func WriteJSON(w io.Writer, recs []Record, dropped uint64) error {
	bundle := jsonBundle{Count: len(recs), Dropped: dropped, Records: []jsonRecord{}}
	for i := range recs {
		r := &recs[i]
		jr := jsonRecord{
			T:       r.At.String(),
			Ns:      int64(r.At),
			Shard:   r.Shard,
			Seq:     r.Seq,
			Kind:    r.Kind.String(),
			Chooser: r.Chooser,
			Subject: r.Subject,
			Winner:  r.Winner,
			Detail:  r.Detail,
		}
		for _, c := range r.Candidates {
			jr.Candidates = append(jr.Candidates, jsonCandidate{Name: c.Name, Score: c.Score, Reason: c.Reason})
		}
		if len(r.Inputs) > 0 {
			jr.Inputs = make(map[string]string, len(r.Inputs))
			for _, kv := range r.Inputs {
				jr.Inputs[kv.Key] = kv.Val
			}
		}
		bundle.Records = append(bundle.Records, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bundle)
}

// Chrome Trace Event Format types, as in span/export.go.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChromeTrace renders the records as Perfetto instant events: one
// process ("decisions"), one thread track per chooser in first-
// appearance order, each decision a thread-scoped instant at its
// virtual time carrying kind/subject/winner/detail args.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	const pid = 1
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]string{"name": "decisions"},
	})
	tids := map[string]int{}
	for i := range recs {
		r := &recs[i]
		tid, ok := tids[r.Chooser]
		if !ok {
			tid = len(tids) + 1
			tids[r.Chooser] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": r.Chooser},
			})
		}
		args := map[string]string{
			"subject": r.Subject,
			"winner":  r.Winner,
			"detail":  r.Detail,
			"vtime":   time.Duration(r.At).String(),
		}
		if m, ok := r.Margin(); ok {
			args["margin"] = fmt.Sprintf("%.3f", m)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("%s %s", r.Kind, r.Subject),
			Ph:   "i", Ts: usec(r.At), Pid: pid, Tid: tid,
			Cat: r.Kind.String(), S: "t", Args: args,
		})
	}
	return json.NewEncoder(w).Encode(out)
}
