package decision

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// The query grammar is a space-separated clause list, mirroring
// fault.ParsePlan and topology.ParseLoadSpec:
//
//	kind=place,route vm=srv0 chooser=ctl winner=host3 t>40ms t<6s
//
// Clauses AND together. kind takes a comma-separated kind list; vm
// matches the record's subject by logical VM name (migration
// generations like "srv0#2" match vm=srv0); t> and t< bound the
// decision time strictly. "" and "all" are the match-everything query.
// String() renders the canonical form (fixed clause order, kinds in
// enum order) and ParseQuery(q.String()) round-trips exactly — the
// property FuzzParseQuery pins.

// Query is a parsed decision filter.
type Query struct {
	Kinds   []Kind // deduplicated, enum order; empty matches all
	VM      string
	Chooser string
	Winner  string
	After   sim.Time // t>: strictly later than this (0 = unset)
	Before  sim.Time // t<: strictly earlier than this (0 = unset)
}

// ParseQuery parses the filter grammar.
func ParseQuery(s string) (Query, error) {
	var q Query
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return q, nil
	}
	seen := map[string]bool{}
	for _, clause := range strings.Fields(s) {
		switch {
		case strings.HasPrefix(clause, "t>"), strings.HasPrefix(clause, "t<"):
			key := clause[:2]
			if seen[key] {
				return Query{}, fmt.Errorf("decision: duplicate %q clause", key)
			}
			seen[key] = true
			d, err := time.ParseDuration(clause[2:])
			if err != nil {
				return Query{}, fmt.Errorf("decision: bad duration in %q: %v", clause, err)
			}
			if d < 0 {
				return Query{}, fmt.Errorf("decision: negative duration in %q", clause)
			}
			if key == "t>" {
				q.After = sim.Duration(d)
			} else {
				q.Before = sim.Duration(d)
			}
		default:
			key, val, ok := strings.Cut(clause, "=")
			if !ok || val == "" {
				return Query{}, fmt.Errorf("decision: clause %q is not key=value", clause)
			}
			if seen[key] {
				return Query{}, fmt.Errorf("decision: duplicate %q clause", key)
			}
			seen[key] = true
			switch key {
			case "kind":
				var mask uint32
				for _, part := range strings.Split(val, ",") {
					k, kok := ParseKind(part)
					if !kok {
						return Query{}, fmt.Errorf("decision: unknown kind %q", part)
					}
					if mask&(1<<uint(k)) != 0 {
						return Query{}, fmt.Errorf("decision: duplicate kind %q", part)
					}
					mask |= 1 << uint(k)
					q.Kinds = append(q.Kinds, k)
				}
				sort.Slice(q.Kinds, func(i, j int) bool { return q.Kinds[i] < q.Kinds[j] })
			case "vm":
				q.VM = val
			case "chooser":
				q.Chooser = val
			case "winner":
				q.Winner = val
			default:
				return Query{}, fmt.Errorf("decision: unknown clause key %q (want kind/vm/chooser/winner/t>/t<)", key)
			}
		}
	}
	if q.After > 0 && q.Before > 0 && q.Before <= q.After {
		return Query{}, fmt.Errorf("decision: empty time window t>%v t<%v", q.After, q.Before)
	}
	return q, nil
}

// String renders the canonical query form; ParseQuery round-trips it.
func (q Query) String() string {
	var parts []string
	if len(q.Kinds) > 0 {
		names := make([]string, len(q.Kinds))
		for i, k := range q.Kinds {
			names[i] = k.String()
		}
		parts = append(parts, "kind="+strings.Join(names, ","))
	}
	if q.VM != "" {
		parts = append(parts, "vm="+q.VM)
	}
	if q.Chooser != "" {
		parts = append(parts, "chooser="+q.Chooser)
	}
	if q.Winner != "" {
		parts = append(parts, "winner="+q.Winner)
	}
	if q.After > 0 {
		parts = append(parts, "t>"+q.After.Std().String())
	}
	if q.Before > 0 {
		parts = append(parts, "t<"+q.Before.Std().String())
	}
	if len(parts) == 0 {
		return "all"
	}
	return strings.Join(parts, " ")
}

// matchVM reports whether subject names the logical VM want: exact, or
// a migration generation of it ("srv0#2" matches "srv0").
func matchVM(subject, want string) bool {
	if subject == want {
		return true
	}
	base, _, ok := strings.Cut(subject, "#")
	return ok && base == want
}

// Match reports whether rec satisfies every clause.
func (q Query) Match(rec *Record) bool {
	if len(q.Kinds) > 0 {
		hit := false
		for _, k := range q.Kinds {
			if rec.Kind == k {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	if q.VM != "" && !matchVM(rec.Subject, q.VM) {
		return false
	}
	if q.Chooser != "" && rec.Chooser != q.Chooser {
		return false
	}
	if q.Winner != "" && rec.Winner != q.Winner {
		return false
	}
	if q.After > 0 && rec.At <= q.After {
		return false
	}
	if q.Before > 0 && rec.At >= q.Before {
		return false
	}
	return true
}

// Filter returns the records matching q, in input order.
func Filter(recs []Record, q Query) []Record {
	var out []Record
	for i := range recs {
		if q.Match(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}
