package decision

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkRingAdd is the enabled-path cost of one recorded decision
// (the Record itself is prebuilt here; producers additionally pay for
// candidate formatting, which Wants gates off when disabled).
func BenchmarkRingAdd(b *testing.B) {
	l := NewLog(1, Options{PerShard: 4096})
	r := l.Ring(0)
	rec := Record{At: 1, Kind: KindRoute, Subject: "srv0", Winner: "srv0"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.At = sim.Time(i)
		r.Add(rec)
	}
}

// BenchmarkRingWantsDisabled is the disabled-path cost every hook site
// pays: one mask test.
func BenchmarkRingWantsDisabled(b *testing.B) {
	var r *Ring
	b.ReportAllocs()
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = r.Wants(KindRoute)
	}
	_ = sink
}

// BenchmarkLogMerge is one barrier merge of a typical batch (16 shards,
// a few records each).
func BenchmarkLogMerge(b *testing.B) {
	l := NewLog(16, Options{PerShard: 64, Total: 1 << 10})
	rec := Record{Kind: KindRoute, Subject: "srv0"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 16; s++ {
			rec.At = sim.Time(i*16 + s)
			l.Ring(s).Add(rec)
		}
		l.Merge()
		if len(l.merged) >= 1<<10 {
			l.merged = l.merged[:0] // keep the bound from dominating
		}
	}
}
