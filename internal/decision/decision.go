// Package decision is the cluster's "why" audit log: every control-
// plane choice — zone pick, host placement, request route, autoscaler
// step, migration trigger, zone cordon — and the credit scheduler's
// BOOST/preempt calls are recorded as structured Records carrying the
// full candidate set the chooser saw (with per-candidate scores and
// reasons), the winner, and the scalar inputs the decision read.
//
// The log is built for the sharded simulation (DESIGN.md §14): each
// shard appends to its own bounded Ring stamped with a per-ring
// sequence number, and the coordinator merges the rings at every
// barrier under the same canonical (time, shard, order) key the engine
// uses for cross-shard mail — concatenate in shard index order, then a
// stable sort by time. The merged log is therefore byte-identical at
// any worker-pool width, which is what makes a scheduler decision
// trail a goldenable artifact rather than a debug dump.
//
// When no log is attached, every hook site reduces to a nil/mask check
// and zero allocations (see the paired benchmarks in
// internal/hypervisor and internal/cluster); nil *Ring and *Log are
// valid no-op instances, following the internal/obs convention.
package decision

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a scheduler decision.
type Kind int

const (
	// KindZonePick is the outer level of two-level placement: which
	// zone receives an arriving VM.
	KindZonePick Kind = iota + 1
	// KindPlace is host placement inside the chosen zone.
	KindPlace
	// KindRoute is one request dispatch: zone selection plus the
	// intra-zone JSQ replica choice.
	KindRoute
	// KindAutoscale is one autoscaler action (scale-up or drain).
	KindAutoscale
	// KindMigrate is a hot-spot migration trigger: victim and
	// destination choice.
	KindMigrate
	// KindCordon marks a zone cordoned (outage start); KindUncordon
	// the cordon lifting.
	KindCordon
	KindUncordon
	// KindBoost is a credit-scheduler BOOST grant on vCPU wake.
	KindBoost
	// KindPreempt is an involuntary deschedule (timeslice expiry, SA
	// expiry, or a higher-priority wake).
	KindPreempt
)

// kindCount bounds the Kind enum for mask and slice sizing.
const kindCount = int(KindPreempt) + 1

func (k Kind) String() string {
	switch k {
	case KindZonePick:
		return "zone-pick"
	case KindPlace:
		return "place"
	case KindRoute:
		return "route"
	case KindAutoscale:
		return "autoscale"
	case KindMigrate:
		return "migrate"
	case KindCordon:
		return "cordon"
	case KindUncordon:
		return "uncordon"
	case KindBoost:
		return "boost"
	case KindPreempt:
		return "preempt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a kind from its String form.
func ParseKind(s string) (Kind, bool) {
	for _, k := range AllKinds() {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// AllKinds lists every decision kind in enum order.
func AllKinds() []Kind {
	return []Kind{KindZonePick, KindPlace, KindRoute, KindAutoscale,
		KindMigrate, KindCordon, KindUncordon, KindBoost, KindPreempt}
}

// ControlKinds lists the cluster control-plane kinds — everything but
// the per-vCPU boost/preempt stream, whose volume (one record per
// scheduler event on every host) swamps a cluster-length log. This is
// the default recording set for the why experiment and cmd/irswhy.
func ControlKinds() []Kind {
	return []Kind{KindZonePick, KindPlace, KindRoute, KindAutoscale,
		KindMigrate, KindCordon, KindUncordon}
}

// ParseKinds parses a comma-separated kind list; "all" and "ctl" name
// the two standard sets. The result is deduplicated and in enum order.
func ParseKinds(s string) ([]Kind, error) {
	switch strings.TrimSpace(s) {
	case "", "all":
		return AllKinds(), nil
	case "ctl":
		return ControlKinds(), nil
	}
	var mask uint32
	for _, part := range strings.Split(s, ",") {
		k, ok := ParseKind(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("decision: unknown kind %q", strings.TrimSpace(part))
		}
		mask |= 1 << uint(k)
	}
	var out []Kind
	for _, k := range AllKinds() {
		if mask&(1<<uint(k)) != 0 {
			out = append(out, k)
		}
	}
	return out, nil
}

// Candidate is one option a decision considered. Score is
// lower-is-better at every site (placement scores, outstanding
// request counts), so the winner of a scored decision is the minimum.
type Candidate struct {
	Name   string
	Score  float64
	Reason string
}

// KV is one named scalar input a decision read (headroom,
// interference, burn-rate state, credits...). A slice of pairs keeps
// record rendering deterministic where a map would not be.
type KV struct {
	Key, Val string
}

// Record is one audited decision.
type Record struct {
	At         sim.Time // virtual time of the choice
	Shard      int      // origin shard (0 = control plane, i+1 = host i)
	Seq        uint64   // per-shard sequence number (merge tie-break)
	Kind       Kind
	Chooser    string // who decided: "ctl", "host3", ...
	Subject    string // what the decision is about (VM, replica, zone)
	Winner     string // the chosen option ("-" when nothing was chosen)
	Detail     string // one-line human explanation
	Candidates []Candidate
	Inputs     []KV
}

// Input returns the named input value.
func (r *Record) Input(key string) (string, bool) {
	for _, kv := range r.Inputs {
		if kv.Key == key {
			return kv.Val, true
		}
	}
	return "", false
}

// WinnerScore returns the winning candidate's score, when the winner
// appears in the candidate set.
func (r *Record) WinnerScore() (float64, bool) {
	for _, c := range r.Candidates {
		if c.Name == r.Winner {
			return c.Score, true
		}
	}
	return 0, false
}

// RunnerUp returns the best-scoring losing candidate — the
// counterfactual choice.
func (r *Record) RunnerUp() (Candidate, bool) {
	best, found := Candidate{}, false
	for _, c := range r.Candidates {
		if c.Name == r.Winner {
			continue
		}
		if !found || c.Score < best.Score {
			best, found = c, true
		}
	}
	return best, found
}

// Margin is how close the call was: runner-up score minus winner score
// (scores are lower-is-better, so a small positive margin means the
// decision nearly went the other way). Only defined when the winner
// was scored against at least one alternative.
func (r *Record) Margin() (float64, bool) {
	ws, ok := r.WinnerScore()
	if !ok {
		return 0, false
	}
	ru, ok := r.RunnerUp()
	if !ok {
		return 0, false
	}
	return ru.Score - ws, true
}

// Ring is one shard's bounded decision buffer. All methods are
// nil-safe no-ops, so hook sites pay one nil/mask check when the log
// is off. A Ring is single-shard state: written only by its shard's
// window execution (or barrier context) and drained only at barriers,
// the same discipline as the cluster's host outboxes.
type Ring struct {
	mask    uint32
	chooser string
	shard   int
	seq     uint64
	buf     []Record
	start   int // index of the oldest record
	n       int
	dropped uint64
}

// Wants reports whether kind k is recorded. Hook sites call this
// before building a Record, so disabled logs never pay for candidate
// formatting.
func (r *Ring) Wants(k Kind) bool {
	return r != nil && r.mask&(1<<uint(k)) != 0
}

// Add appends rec, stamping the ring's shard, chooser, and next
// sequence number. When the ring is full the oldest record is dropped
// (and counted).
func (r *Ring) Add(rec Record) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	rec.Shard = r.shard
	rec.Chooser = r.chooser
	rec.Seq = r.seq
	r.seq++
	if r.n == len(r.buf) {
		r.start = (r.start + 1) % len(r.buf)
		r.n--
		r.dropped++
	}
	r.buf[(r.start+r.n)%len(r.buf)] = rec
	r.n++
}

// drain appends the ring's records (oldest first) to dst and empties
// the ring.
func (r *Ring) drain(dst []Record) []Record {
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(r.start+i)%len(r.buf)])
	}
	r.start, r.n = 0, 0
	return dst
}

// Options sizes a decision log.
type Options struct {
	// PerShard is each shard ring's capacity (default 4096 — with
	// barriers every lookahead, a shard would need thousands of
	// decisions per 250µs window to drop anything).
	PerShard int
	// Total bounds the merged log (default 1<<20 records); the oldest
	// are dropped, and counted, beyond it.
	Total int
	// Kinds selects which decision kinds are recorded (empty = all).
	Kinds []Kind
}

func (o Options) withDefaults() Options {
	if o.PerShard <= 0 {
		o.PerShard = 4096
	}
	if o.Total <= 0 {
		o.Total = 1 << 20
	}
	if len(o.Kinds) == 0 {
		o.Kinds = AllKinds()
	}
	return o
}

// Log is the cluster-wide decision log: one Ring per shard, merged at
// barriers into one canonically ordered record sequence.
type Log struct {
	rings   []*Ring
	merged  []Record
	total   int
	dropped uint64
	batch   []Record // merge scratch
}

// NewLog builds a log with shards rings.
func NewLog(shards int, opt Options) *Log {
	opt = opt.withDefaults()
	var mask uint32
	for _, k := range opt.Kinds {
		if int(k) > 0 && int(k) < kindCount {
			mask |= 1 << uint(k)
		}
	}
	l := &Log{total: opt.Total}
	for i := 0; i < shards; i++ {
		l.rings = append(l.rings, &Ring{
			mask:    mask,
			shard:   i,
			chooser: fmt.Sprintf("shard%d", i),
			buf:     make([]Record, opt.PerShard),
		})
	}
	return l
}

// Ring returns shard i's ring. A nil log returns a nil ring, so
// wiring code needs no conditionals.
func (l *Log) Ring(i int) *Ring {
	if l == nil || i < 0 || i >= len(l.rings) {
		return nil
	}
	return l.rings[i]
}

// Label names shard i's chooser (e.g. "ctl", "host3"). Nil-safe.
func (l *Log) Label(i int, chooser string) {
	if r := l.Ring(i); r != nil {
		r.chooser = chooser
	}
}

// Merge drains every shard ring into the merged log under the
// canonical key: rings are concatenated in shard index order, then
// stable-sorted by time — exactly the (time, shard, order) merge the
// sharded engine applies to cross-shard mail. Called at every barrier
// (and once after the run), where all shards are parked. Nil-safe.
func (l *Log) Merge() {
	if l == nil {
		return
	}
	batch := l.batch[:0]
	for _, r := range l.rings {
		batch = r.drain(batch)
		l.dropped += r.dropped
		r.dropped = 0
	}
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].At < batch[j].At })
	l.merged = append(l.merged, batch...)
	l.batch = batch[:0]
	if over := len(l.merged) - l.total; over > 0 {
		l.dropped += uint64(over)
		l.merged = append(l.merged[:0], l.merged[over:]...)
	}
}

// Records returns the merged log in canonical order. The slice is the
// log's own storage; callers must not mutate it.
func (l *Log) Records() []Record {
	if l == nil {
		return nil
	}
	return l.merged
}

// Dropped reports how many records were lost to ring or total bounds.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Counts returns per-kind record totals, indexed by Kind.
func Counts(recs []Record) []int {
	out := make([]int, kindCount)
	for i := range recs {
		if k := int(recs[i].Kind); k > 0 && k < kindCount {
			out[k]++
		}
	}
	return out
}

// CountsString renders non-zero per-kind totals in enum order, e.g.
// "place=10 route=21011 cordon=1".
func CountsString(recs []Record) string {
	counts := Counts(recs)
	var b strings.Builder
	for _, k := range AllKinds() {
		if counts[k] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, counts[k])
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// TrailStep is one labeled step of an incident trail.
type TrailStep struct {
	Label string
	Rec   Record
}

// Trail reduces a record sequence to its elasticity story: every
// cordon, the first failover route after each cordon (the moment
// traffic actually moved), and every autoscaler action. Routine
// steady-state decisions (placements, the other ~10^4 routes,
// migrations, uncordons) stay queryable but are not trail steps —
// the trail is the sequence a human would recount about the incident:
// cordon → failover → scale-up… → drain…
func Trail(recs []Record) []TrailStep {
	var out []TrailStep
	awaitFailover := false
	for i := range recs {
		r := recs[i]
		switch r.Kind {
		case KindCordon:
			out = append(out, TrailStep{Label: "cordon", Rec: r})
			awaitFailover = true
		case KindUncordon:
			awaitFailover = false
		case KindRoute:
			if awaitFailover {
				if _, ok := r.Input("failover"); ok {
					out = append(out, TrailStep{Label: "failover", Rec: r})
					awaitFailover = false
				}
			}
		case KindAutoscale:
			label := "scale-up"
			if act, _ := r.Input("act"); act == "down" {
				label = "drain"
			}
			out = append(out, TrailStep{Label: label, Rec: r})
		}
	}
	return out
}

// TrailString renders a trail as its comma-separated step labels —
// the form cmd/irswhy's -expect gate compares.
func TrailString(steps []TrailStep) string {
	var b strings.Builder
	for i, s := range steps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Label)
	}
	return b.String()
}

// ClosestCalls returns the n scored decisions with the smallest
// winner-vs-runner-up margin — the counterfactual summary: where the
// schedule nearly went differently. Ties (and equal margins) keep
// canonical log order.
func ClosestCalls(recs []Record, n int) []Record {
	type scored struct {
		rec    Record
		margin float64
	}
	var calls []scored
	for i := range recs {
		if m, ok := recs[i].Margin(); ok {
			calls = append(calls, scored{rec: recs[i], margin: m})
		}
	}
	sort.SliceStable(calls, func(i, j int) bool { return calls[i].margin < calls[j].margin })
	if n > len(calls) {
		n = len(calls)
	}
	out := make([]Record, 0, n)
	for _, c := range calls[:n] {
		out = append(out, c.rec)
	}
	return out
}
