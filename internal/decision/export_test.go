package decision

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func exportRecs() []Record {
	return []Record{
		{
			At: 6 * sim.Second, Shard: 0, Seq: 3, Kind: KindCordon,
			Chooser: "ctl", Subject: "z1", Winner: "z1",
			Detail: "zone outage: 8 hosts dark",
			Inputs: []KV{{Key: "hosts", Val: "8"}},
		},
		{
			At: 6*sim.Second + 250*sim.Microsecond, Shard: 0, Seq: 4, Kind: KindRoute,
			Chooser: "ctl", Subject: "srv0", Winner: "srv0",
			Candidates: []Candidate{{Name: "srv0", Score: 3, Reason: "out=3"}, {Name: "srv2", Score: 5, Reason: "out=5"}},
			Inputs:     []KV{{Key: "failover", Val: "1"}},
		},
	}
}

func TestWriteJSONBundle(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, exportRecs(), 7); err != nil {
		t.Fatal(err)
	}
	var bundle struct {
		Count   int    `json:"count"`
		Dropped uint64 `json:"dropped"`
		Records []struct {
			T          string            `json:"t"`
			Ns         int64             `json:"ns"`
			Kind       string            `json:"kind"`
			Chooser    string            `json:"chooser"`
			Winner     string            `json:"winner"`
			Inputs     map[string]string `json:"inputs"`
			Candidates []struct {
				Name  string  `json:"name"`
				Score float64 `json:"score"`
			} `json:"candidates"`
		} `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if bundle.Count != 2 || bundle.Dropped != 7 || len(bundle.Records) != 2 {
		t.Fatalf("bundle envelope: %+v", bundle)
	}
	r0 := bundle.Records[0]
	if r0.Kind != "cordon" || r0.T != "6.000s" || r0.Ns != int64(6*sim.Second) {
		t.Fatalf("record 0 = %+v", r0)
	}
	r1 := bundle.Records[1]
	if r1.Inputs["failover"] != "1" || len(r1.Candidates) != 2 || r1.Candidates[1].Score != 5 {
		t.Fatalf("record 1 = %+v", r1)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	// records must encode as [], not null — consumers iterate it.
	if !strings.Contains(buf.String(), "\"records\": []") {
		t.Fatalf("empty bundle: %s", buf.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, exportRecs()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Fatalf("time unit %q", trace.DisplayTimeUnit)
	}
	// process_name + one thread_name (single chooser) + 2 instants.
	var instants int
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "i" {
			instants++
			if ev.Ts <= 0 {
				t.Fatalf("instant at ts %v", ev.Ts)
			}
		}
	}
	if instants != 2 {
		t.Fatalf("%d instant events, want 2", instants)
	}
	// The route instant carries the margin arg (scored candidates).
	last := trace.TraceEvents[len(trace.TraceEvents)-1]
	if last.Args["margin"] != "2.000" {
		t.Fatalf("route margin arg = %q", last.Args["margin"])
	}
}
