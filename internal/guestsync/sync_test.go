package guestsync_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// rig builds one VM with nvcpus vCPUs on nvcpus pCPUs.
func rig(t *testing.T, nvcpus int) (*sim.Engine, *guest.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	hv := hypervisor.New(eng, hypervisor.DefaultConfig(nvcpus))
	vm := hv.NewVM("vm", nvcpus, 256, false)
	kern := guest.NewKernel(hv, vm, guest.DefaultConfig())
	return eng, kern
}

// scripted runs a sequence of ops, each a func(t, resume).
type scripted struct {
	ops []func(t *guest.Task, resume func())
	i   int
	gap sim.Time
}

func (p *scripted) Step(t *guest.Task) guest.Action {
	if p.i >= len(p.ops) {
		return guest.Exit()
	}
	op := p.ops[p.i]
	p.i++
	return guest.RunThen(p.gap, op)
}

func runRig(t *testing.T, eng *sim.Engine, kern *guest.Kernel, horizon sim.Time) {
	t.Helper()
	done := false
	kern.OnAllExited = func() { done = true; eng.Stop() }
	kern.Start()
	if err := eng.Run(horizon); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done {
		t.Fatal("tasks did not finish")
	}
}

func TestMutexProvidesMutualExclusion(t *testing.T) {
	eng, kern := rig(t, 2)
	mu := guestsync.NewMutex(kern)
	inCS := 0
	maxIn := 0
	op := func(tk *guest.Task, resume func()) {
		mu.Lock(tk, func() {
			inCS++
			if inCS > maxIn {
				maxIn = inCS
			}
			tk.Kernel().RunInTask(tk, sim.Millisecond, func() {
				inCS--
				mu.Unlock(tk)
				resume()
			})
		})
	}
	for i := 0; i < 2; i++ {
		ops := make([]func(*guest.Task, func()), 20)
		for j := range ops {
			ops[j] = op
		}
		kern.Spawn("m", &scripted{ops: ops, gap: sim.Millisecond}, i)
	}
	runRig(t, eng, kern, 10*sim.Second)
	if maxIn != 1 {
		t.Fatalf("max tasks in critical section = %d, want 1", maxIn)
	}
	if mu.Acquires != 40 {
		t.Fatalf("acquires = %d, want 40", mu.Acquires)
	}
}

func TestMutexHandoffIsFIFOForSleepers(t *testing.T) {
	eng, kern := rig(t, 4)
	mu := guestsync.NewMutex(kern)
	var order []int
	// Task 0 takes the lock and holds it; tasks 1..3 queue up.
	holder := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) {
			mu.Lock(tk, func() {
				tk.Kernel().RunInTask(tk, 50*sim.Millisecond, func() {
					mu.Unlock(tk)
					resume()
				})
			})
		},
	}}
	kern.Spawn("holder", holder, 0)
	for i := 1; i < 4; i++ {
		i := i
		w := &scripted{gap: sim.Time(i) * 2 * sim.Millisecond, ops: []func(*guest.Task, func()){
			func(tk *guest.Task, resume func()) {
				mu.Lock(tk, func() {
					order = append(order, i)
					mu.Unlock(tk)
					resume()
				})
			},
		}}
		kern.Spawn("w", w, i)
	}
	runRig(t, eng, kern, 10*sim.Second)
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("sleepers woken out of order: %v", order)
		}
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	eng, kern := rig(t, 2)
	mu := guestsync.NewMutex(kern)
	cond := guestsync.NewCond(kern)
	woken := 0
	waiter := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) {
			mu.Lock(tk, func() {
				cond.Wait(tk, mu, func() {
					woken++
					mu.Unlock(tk)
					resume()
				})
			})
		},
	}}
	kern.Spawn("waiter", waiter, 0)
	signaler := &scripted{gap: 10 * sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) {
			mu.Lock(tk, func() {
				cond.Signal()
				mu.Unlock(tk)
				resume()
			})
		},
	}}
	kern.Spawn("signaler", signaler, 1)
	runRig(t, eng, kern, 5*sim.Second)
	if woken != 1 {
		t.Fatalf("woken = %d, want 1", woken)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	eng, kern := rig(t, 4)
	mu := guestsync.NewMutex(kern)
	cond := guestsync.NewCond(kern)
	woken := 0
	for i := 0; i < 3; i++ {
		w := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
			func(tk *guest.Task, resume func()) {
				mu.Lock(tk, func() {
					cond.Wait(tk, mu, func() {
						woken++
						mu.Unlock(tk)
						resume()
					})
				})
			},
		}}
		kern.Spawn("w", w, i)
	}
	b := &scripted{gap: 20 * sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) {
			mu.Lock(tk, func() {
				cond.Broadcast()
				mu.Unlock(tk)
				resume()
			})
		},
	}}
	kern.Spawn("b", b, 3)
	runRig(t, eng, kern, 5*sim.Second)
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestBlockingBarrierReleasesAllGenerations(t *testing.T) {
	eng, kern := rig(t, 4)
	bar := guestsync.NewBarrier(kern, 4)
	const rounds = 15
	for i := 0; i < 4; i++ {
		ops := make([]func(*guest.Task, func()), rounds)
		for j := range ops {
			ops[j] = func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) }
		}
		kern.Spawn("w", &scripted{ops: ops, gap: sim.Time(i+1) * sim.Millisecond}, i)
	}
	runRig(t, eng, kern, 30*sim.Second)
	if bar.Generations != rounds {
		t.Fatalf("generations = %d, want %d", bar.Generations, rounds)
	}
}

func TestSpinBarrierBurnsCPUWhileWaiting(t *testing.T) {
	eng, kern := rig(t, 2)
	bar := guestsync.NewSpinBarrier(kern, 2)
	// Task 0 arrives immediately and spins ~50ms for task 1.
	fast := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) },
	}}
	slow := &scripted{gap: 50 * sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) },
	}}
	t0 := kern.Spawn("fast", fast, 0)
	kern.Spawn("slow", slow, 1)
	runRig(t, eng, kern, 5*sim.Second)
	if bar.Generations != 1 {
		t.Fatalf("generations = %d", bar.Generations)
	}
	// The fast task burned ~50ms of CPU spinning.
	if t0.CPUTime < 45*sim.Millisecond {
		t.Fatalf("fast task CPU %v, want ~50ms of spinning", t0.CPUTime)
	}
}

func TestBlockingBarrierIdlesWhileWaiting(t *testing.T) {
	eng, kern := rig(t, 2)
	bar := guestsync.NewBarrier(kern, 2)
	fast := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) },
	}}
	slow := &scripted{gap: 50 * sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) },
	}}
	t0 := kern.Spawn("fast", fast, 0)
	kern.Spawn("slow", slow, 1)
	runRig(t, eng, kern, 5*sim.Second)
	// The fast task slept: only the adaptive pre-sleep spin burned CPU.
	if t0.CPUTime > 5*sim.Millisecond {
		t.Fatalf("fast task CPU %v; blocking waiter should sleep", t0.CPUTime)
	}
}

func TestTASSpinLockExcludesAndCompletes(t *testing.T) {
	eng, kern := rig(t, 2)
	l := guestsync.NewSpinLock(kern)
	inCS, maxIn, total := 0, 0, 0
	op := func(tk *guest.Task, resume func()) {
		l.Lock(tk, func() {
			inCS++
			total++
			if inCS > maxIn {
				maxIn = inCS
			}
			tk.Kernel().RunInTask(tk, 500*sim.Microsecond, func() {
				inCS--
				l.Unlock(tk)
				resume()
			})
		})
	}
	for i := 0; i < 2; i++ {
		ops := make([]func(*guest.Task, func()), 25)
		for j := range ops {
			ops[j] = op
		}
		kern.Spawn("s", &scripted{ops: ops, gap: sim.Millisecond}, i)
	}
	runRig(t, eng, kern, 10*sim.Second)
	if maxIn != 1 {
		t.Fatalf("mutual exclusion violated: %d", maxIn)
	}
	if total != 50 {
		t.Fatalf("total acquisitions = %d, want 50", total)
	}
}

func TestTicketLockIsFIFO(t *testing.T) {
	eng, kern := rig(t, 4)
	l := guestsync.NewTicketLock(kern)
	var order []int
	// Holder grabs the lock; three tasks queue in a known order.
	holder := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) {
			l.Lock(tk, func() {
				tk.Kernel().RunInTask(tk, 30*sim.Millisecond, func() {
					l.Unlock(tk)
					resume()
				})
			})
		},
	}}
	kern.Spawn("holder", holder, 0)
	for i := 1; i < 4; i++ {
		i := i
		w := &scripted{gap: sim.Time(i) * 2 * sim.Millisecond, ops: []func(*guest.Task, func()){
			func(tk *guest.Task, resume func()) {
				l.Lock(tk, func() {
					order = append(order, i)
					l.Unlock(tk)
					resume()
				})
			},
		}}
		kern.Spawn("w", w, i)
	}
	runRig(t, eng, kern, 10*sim.Second)
	for i := 1; i < len(order); i++ {
		if order[i-1] > order[i] {
			t.Fatalf("ticket order violated: %v", order)
		}
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSpinLockCountsContention(t *testing.T) {
	eng, kern := rig(t, 2)
	l := guestsync.NewSpinLock(kern)
	op := func(tk *guest.Task, resume func()) {
		l.Lock(tk, func() {
			tk.Kernel().RunInTask(tk, 2*sim.Millisecond, func() {
				l.Unlock(tk)
				resume()
			})
		})
	}
	for i := 0; i < 2; i++ {
		ops := make([]func(*guest.Task, func()), 10)
		for j := range ops {
			ops[j] = op
		}
		kern.Spawn("s", &scripted{ops: ops, gap: 0}, i)
	}
	runRig(t, eng, kern, 10*sim.Second)
	if l.Contentions == 0 {
		t.Fatal("no contention recorded for overlapping critical sections")
	}
}

func TestUnlockByNonOwnerPanics(t *testing.T) {
	eng, kern := rig(t, 1)
	mu := guestsync.NewMutex(kern)
	panicked := false
	p := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
		func(tk *guest.Task, resume func()) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
				resume()
			}()
			mu.Unlock(tk)
		},
	}}
	kern.Spawn("bad", p, 0)
	runRig(t, eng, kern, sim.Second)
	if !panicked {
		t.Fatal("unlock of unheld mutex did not panic")
	}
}
