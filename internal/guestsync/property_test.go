package guestsync_test

import (
	"testing"
	"testing/quick"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/sim"
)

// randomLockProg performs a random sequence of critical sections with
// random durations drawn from the seed, tracking invariants.
type randomLockProg struct {
	mu      *guestsync.Mutex
	sl      *guestsync.SpinLock
	rng     *sim.RNG
	steps   int
	inCS    *[2]int
	maxCS   *[2]int
	entries *int
}

func (p *randomLockProg) Step(t *guest.Task) guest.Action {
	if p.steps <= 0 {
		return guest.Exit()
	}
	p.steps--
	outside := sim.Time(p.rng.Intn(2000)+1) * sim.Microsecond
	inside := sim.Time(p.rng.Intn(500)+1) * sim.Microsecond
	useSpin := p.sl != nil && p.rng.Intn(2) == 0
	return guest.RunThen(outside, func(tk *guest.Task, resume func()) {
		// Each lock guards its own critical-section counter; inCS and
		// maxCS are two-element arrays indexed by lock.
		idx := 0
		if useSpin {
			idx = 1
		}
		enter := func(unlock func(*guest.Task)) {
			(*p.inCS)[idx]++
			*p.entries++
			if (*p.inCS)[idx] > (*p.maxCS)[idx] {
				(*p.maxCS)[idx] = (*p.inCS)[idx]
			}
			tk.Kernel().RunInTask(tk, inside, func() {
				(*p.inCS)[idx]--
				unlock(tk)
				resume()
			})
		}
		if useSpin {
			p.sl.Lock(tk, func() { enter(p.sl.Unlock) })
		} else {
			p.mu.Lock(tk, func() { enter(p.mu.Unlock) })
		}
	})
}

// TestQuickMutualExclusionUnderRandomSchedules drives random mixes of
// blocking mutexes and spinlocks across random interference patterns
// and checks mutual exclusion plus completion.
func TestQuickMutualExclusionUnderRandomSchedules(t *testing.T) {
	f := func(seed uint64, nTasksRaw, stepsRaw uint8) bool {
		nTasks := int(nTasksRaw%4) + 2 // 2..5
		steps := int(stepsRaw%30) + 5  // 5..34
		eng, kern := rig(t, 2)
		mu := guestsync.NewMutex(kern)
		sl := guestsync.NewSpinLock(kern)
		rng := sim.NewRNG(seed | 1)
		var inCS, maxCS [2]int
		entries := 0
		for i := 0; i < nTasks; i++ {
			p := &randomLockProg{
				mu: mu, sl: sl, rng: rng.Fork(uint64(i)),
				steps: steps, inCS: &inCS, maxCS: &maxCS, entries: &entries,
			}
			kern.Spawn("r", p, i%2)
		}
		done := false
		kern.OnAllExited = func() { done = true; eng.Stop() }
		kern.Start()
		if err := eng.Run(120 * sim.Second); err != nil {
			return false
		}
		return done && maxCS[0] <= 1 && maxCS[1] <= 1 && entries == nTasks*steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBarrierGenerations drives random barrier parties and rounds.
func TestQuickBarrierGenerations(t *testing.T) {
	f := func(seed uint64, partyRaw, roundsRaw uint8) bool {
		party := int(partyRaw%4) + 2 // 2..5
		rounds := int(roundsRaw%20) + 1
		eng, kern := rig(t, party)
		bar := guestsync.NewBarrier(kern, party)
		rng := sim.NewRNG(seed | 1)
		for i := 0; i < party; i++ {
			r := rng.Fork(uint64(i))
			ops := make([]func(*guest.Task, func()), rounds)
			for j := range ops {
				ops[j] = func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) }
			}
			kern.Spawn("b", &scripted{ops: ops, gap: sim.Time(r.Intn(3000)+1) * sim.Microsecond}, i)
		}
		done := false
		kern.OnAllExited = func() { done = true; eng.Stop() }
		kern.Start()
		if err := eng.Run(120 * sim.Second); err != nil {
			return false
		}
		return done && int(bar.Generations) == rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpinBarrierGenerations does the same with active waiting.
func TestQuickSpinBarrierGenerations(t *testing.T) {
	f := func(seed uint64, roundsRaw uint8) bool {
		rounds := int(roundsRaw%15) + 1
		const party = 3
		eng, kern := rig(t, party)
		bar := guestsync.NewSpinBarrier(kern, party)
		rng := sim.NewRNG(seed | 1)
		for i := 0; i < party; i++ {
			r := rng.Fork(uint64(i))
			ops := make([]func(*guest.Task, func()), rounds)
			for j := range ops {
				ops[j] = func(tk *guest.Task, resume func()) { bar.Wait(tk, resume) }
			}
			kern.Spawn("s", &scripted{ops: ops, gap: sim.Time(r.Intn(3000)+1) * sim.Microsecond}, i)
		}
		done := false
		kern.OnAllExited = func() { done = true; eng.Stop() }
		kern.Start()
		if err := eng.Run(120 * sim.Second); err != nil {
			return false
		}
		return done && int(bar.Generations) == rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTicketLockFIFOOrder verifies grant order matches arrival
// order for random arrival patterns.
func TestQuickTicketLockFIFOOrder(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%4) + 2
		eng, kern := rig(t, n)
		l := guestsync.NewTicketLock(kern)
		var order []int
		// A holder keeps the lock long enough for all others to queue.
		holder := &scripted{gap: sim.Millisecond, ops: []func(*guest.Task, func()){
			func(tk *guest.Task, resume func()) {
				l.Lock(tk, func() {
					tk.Kernel().RunInTask(tk, 50*sim.Millisecond, func() {
						l.Unlock(tk)
						resume()
					})
				})
			},
		}}
		kern.Spawn("h", holder, 0)
		rng := sim.NewRNG(seed | 1)
		delays := make([]sim.Time, n)
		base := 2 * sim.Millisecond
		for i := 1; i < n; i++ {
			delays[i] = base + sim.Time(i)*sim.Millisecond + sim.Time(rng.Intn(300))*sim.Microsecond
			i := i
			w := &scripted{gap: delays[i], ops: []func(*guest.Task, func()){
				func(tk *guest.Task, resume func()) {
					l.Lock(tk, func() {
						order = append(order, i)
						l.Unlock(tk)
						resume()
					})
				},
			}}
			kern.Spawn("w", w, i%n)
		}
		done := false
		kern.OnAllExited = func() { done = true; eng.Stop() }
		kern.Start()
		if err := eng.Run(60 * sim.Second); err != nil {
			return false
		}
		if !done || len(order) != n-1 {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i-1] > order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
