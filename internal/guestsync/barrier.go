package guestsync

import "repro/internal/guest"

// Barrier is a pthread-style blocking barrier for n tasks: arrivals
// spin briefly (futex pre-sleep spinning), then sleep until the last
// task arrives and wakes everyone. Blocked waiters idle their vCPUs —
// the deceptive-idleness behaviour behind Figure 2 and the CPU-stacking
// results (§5.6).
type Barrier struct {
	kern     *guest.Kernel
	n        int
	arrivals int
	sleepers []mutexWaiter
	spinners []*guest.Task

	// Generations counts completed barrier episodes.
	Generations int64
}

// NewBarrier creates a blocking barrier for n tasks.
func NewBarrier(kern *guest.Kernel, n int) *Barrier {
	if n <= 0 {
		panic("guestsync: barrier size must be positive")
	}
	return &Barrier{kern: kern, n: n}
}

// N returns the party size.
func (b *Barrier) N() int { return b.n }

// Wait joins the barrier; cont runs once all n tasks have arrived. The
// last arriver proceeds directly and releases the waiters.
func (b *Barrier) Wait(t *guest.Task, cont func()) {
	b.arrivals++
	if b.arrivals == b.n {
		b.arrivals = 0
		b.Generations++
		sleepers, spinners := b.sleepers, b.spinners
		b.sleepers, b.spinners = nil, nil
		for _, w := range sleepers {
			b.kern.WakeTask(w.t, w.cont)
		}
		for _, s := range spinners {
			b.kern.GrantSpin(s)
		}
		cont()
		return
	}
	budget := b.kern.Config().SpinBeforeBlock
	if budget <= 0 {
		b.sleepers = append(b.sleepers, mutexWaiter{t: t, cont: cont})
		b.kern.BlockTask(t)
		return
	}
	b.spinners = append(b.spinners, t)
	b.kern.SpinTaskBounded(t, budget, nil, cont, func() {
		b.removeSpinner(t)
		b.sleepers = append(b.sleepers, mutexWaiter{t: t, cont: cont})
		b.kern.BlockTask(t)
	})
}

func (b *Barrier) removeSpinner(t *guest.Task) {
	for i, s := range b.spinners {
		if s == t {
			b.spinners = append(b.spinners[:i], b.spinners[i+1:]...)
			return
		}
	}
}

// SpinBarrier is an OpenMP-style barrier with an active wait policy:
// arrivals busy-wait (burning vCPU cycles, visible to PLE) until the
// last task arrives and releases the generation.
type SpinBarrier struct {
	kern     *guest.Kernel
	n        int
	waiting  []*guest.Task
	arrivals int

	Generations int64
}

// NewSpinBarrier creates a spinning barrier for n tasks.
func NewSpinBarrier(kern *guest.Kernel, n int) *SpinBarrier {
	if n <= 0 {
		panic("guestsync: barrier size must be positive")
	}
	return &SpinBarrier{kern: kern, n: n}
}

// N returns the party size.
func (b *SpinBarrier) N() int { return b.n }

// Wait joins the barrier; cont runs once all n tasks have arrived.
// Non-last arrivals spin.
func (b *SpinBarrier) Wait(t *guest.Task, cont func()) {
	b.arrivals++
	if b.arrivals < b.n {
		b.waiting = append(b.waiting, t)
		b.kern.SpinTask(t, nil, cont)
		return
	}
	// Last arriver: release the generation.
	b.arrivals = 0
	b.Generations++
	ws := b.waiting
	b.waiting = nil
	for _, w := range ws {
		b.kern.GrantSpin(w)
	}
	cont()
}
