package guestsync

import "repro/internal/guest"

// SpinLock is a busy-waiting lock. In TAS mode (default) the lock is a
// test-and-set loop: whichever actively-running spinner notices the
// release first wins, and preempted spinners simply retry when they run
// again. In FIFO (ticket) mode ownership is handed to the next ticket
// holder even if its vCPU is preempted — the acquisition-order
// guarantee that makes ticket locks so vulnerable to lock-waiter
// preemption (§1, [24]).
type SpinLock struct {
	kern *guest.Kernel
	// FIFO selects ticket-lock semantics.
	FIFO bool

	owner    *guest.Task
	spinners []spinEntry

	Acquires    int64
	Contentions int64
}

type spinEntry struct {
	t    *guest.Task
	cont func()
}

// NewSpinLock creates a test-and-set spinlock.
func NewSpinLock(kern *guest.Kernel) *SpinLock {
	return &SpinLock{kern: kern}
}

// NewTicketLock creates a FIFO ticket spinlock.
func NewTicketLock(kern *guest.Kernel) *SpinLock {
	return &SpinLock{kern: kern, FIFO: true}
}

// Owner returns the current holder, or nil.
func (l *SpinLock) Owner() *guest.Task { return l.owner }

// Lock acquires l for t, spinning while contended; cont runs once held.
func (l *SpinLock) Lock(t *guest.Task, cont func()) {
	l.Acquires++
	if l.owner == nil && len(l.spinners) == 0 {
		l.owner = t
		t.LocksHeld++
		cont()
		return
	}
	l.Contentions++
	l.spinners = append(l.spinners, spinEntry{t: t, cont: cont})
	if l.FIFO {
		// Ticket holders wait for an explicit handoff.
		l.kern.SpinTask(t, nil, func() {
			t.LocksHeld++
			cont()
		})
		return
	}
	// TAS: re-try the acquire whenever the spinner runs.
	l.kern.SpinTask(t, func() bool { return l.tryAcquire(t) }, func() {
		cont()
	})
}

// tryAcquire is the TAS poll: grab the lock if free.
func (l *SpinLock) tryAcquire(t *guest.Task) bool {
	if l.owner != nil {
		return false
	}
	l.owner = t
	t.LocksHeld++
	l.removeSpinner(t)
	return true
}

// Unlock releases l. Ticket locks hand off to the next ticket; TAS
// locks nudge actively running spinners to race for the acquire.
func (l *SpinLock) Unlock(t *guest.Task) {
	if l.owner != t {
		panic("guestsync: unlock of spinlock not held by " + t.Name)
	}
	t.LocksHeld--
	l.owner = nil
	if len(l.spinners) == 0 {
		return
	}
	if l.FIFO {
		next := l.spinners[0]
		l.spinners = l.spinners[1:]
		l.owner = next.t
		l.kern.GrantSpin(next.t)
		return
	}
	// TAS: poke running spinners; the first poll that runs wins. A
	// preempted spinner retries when its vCPU is scheduled again.
	for _, e := range l.spinners {
		l.kern.PollSpinner(e.t)
	}
}

func (l *SpinLock) removeSpinner(t *guest.Task) {
	for i, e := range l.spinners {
		if e.t == t {
			l.spinners = append(l.spinners[:i], l.spinners[i+1:]...)
			return
		}
	}
}
