// Package guestsync provides the synchronization primitives the
// workload models are built from: a blocking mutex and condition
// variable (pthread-style), blocking and spinning barriers (pthread
// barrier / OpenMP with passive or active wait policy), and test-and-
// set or ticket spinlocks. All primitives operate on simulated guest
// tasks and exhibit the lock-holder- and lock-waiter-preemption
// behaviour the paper studies.
package guestsync

import (
	"repro/internal/guest"
)

// Mutex is a blocking (pthread-style) adaptive mutex: contended
// acquirers spin briefly (the kernel's SpinBeforeBlock budget) before
// sleeping on a FIFO wait queue; unlock hands off to the first sleeper
// or frees the lock for the spinners to race.
type Mutex struct {
	kern     *guest.Kernel
	owner    *guest.Task
	waiters  []mutexWaiter
	spinners []*guest.Task

	// Contentions counts lock attempts that had to wait.
	Contentions int64
	Acquires    int64
}

type mutexWaiter struct {
	t    *guest.Task
	cont func()
}

// NewMutex creates a mutex for tasks of kern.
func NewMutex(kern *guest.Kernel) *Mutex {
	return &Mutex{kern: kern}
}

// Owner returns the current lock holder, or nil.
func (m *Mutex) Owner() *guest.Task { return m.owner }

// Lock acquires m for t, invoking cont once the lock is held. Must be
// called from task context. Contended callers spin briefly, then block.
func (m *Mutex) Lock(t *guest.Task, cont func()) {
	m.Acquires++
	if m.owner == nil && len(m.waiters) == 0 {
		m.owner = t
		t.LocksHeld++
		cont()
		return
	}
	m.Contentions++
	budget := m.kern.Config().SpinBeforeBlock
	if budget <= 0 {
		m.sleepLock(t, cont)
		return
	}
	m.spinners = append(m.spinners, t)
	// Let blame attribution see who we are spinning on: LHP when the
	// holder is itself off-CPU, plain contention otherwise.
	t.SetSpinHolder(func() *guest.Task { return m.owner })
	m.kern.SpinTaskBounded(t, budget,
		func() bool { return m.tryAcquire(t) },
		cont,
		func() {
			m.removeSpinner(t)
			m.sleepLock(t, cont)
		})
}

func (m *Mutex) sleepLock(t *guest.Task, cont func()) {
	m.waiters = append(m.waiters, mutexWaiter{t: t, cont: cont})
	m.kern.BlockTask(t)
}

func (m *Mutex) tryAcquire(t *guest.Task) bool {
	// Sleepers have handoff priority; spinners only grab a truly free
	// lock.
	if m.owner != nil || len(m.waiters) > 0 {
		return false
	}
	m.owner = t
	t.LocksHeld++
	m.removeSpinner(t)
	return true
}

func (m *Mutex) removeSpinner(t *guest.Task) {
	for i, s := range m.spinners {
		if s == t {
			m.spinners = append(m.spinners[:i], m.spinners[i+1:]...)
			return
		}
	}
}

// Unlock releases m, handing ownership to the first sleeping waiter
// (woken through wakeup balancing) or letting active spinners race.
func (m *Mutex) Unlock(t *guest.Task) {
	if m.owner != t {
		panic("guestsync: unlock of mutex not held by " + t.Name)
	}
	t.LocksHeld--
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		m.owner = w.t
		w.t.LocksHeld++
		m.kern.WakeTask(w.t, w.cont)
		return
	}
	m.owner = nil
	for _, s := range m.spinners {
		m.kern.PollSpinner(s)
	}
}

// Cond is a pthread-style condition variable used with a Mutex.
type Cond struct {
	kern    *guest.Kernel
	waiters []mutexWaiter
}

// NewCond creates a condition variable for tasks of kern.
func NewCond(kern *guest.Kernel) *Cond {
	return &Cond{kern: kern}
}

// Wait atomically releases m and blocks t; once signalled, the lock is
// re-acquired before cont runs.
func (c *Cond) Wait(t *guest.Task, m *Mutex, cont func()) {
	c.waiters = append(c.waiters, mutexWaiter{t: t, cont: func() {
		m.Lock(t, cont)
	}})
	m.Unlock(t)
	m.kern.BlockTask(t)
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.kern.WakeTask(w.t, w.cont)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.kern.WakeTask(w.t, w.cont)
	}
}
