package cluster

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/watch"
)

// watchConfig builds a deliberately painful single-host rig: a
// sensitive 2-vCPU server sharing 4 pCPUs with two fat CPU hogs, a
// tight SLO, and a burn-rate rule the contention will trip.
func watchConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 1
	cfg.Overcommit = 4
	cfg.Duration = 6 * sim.Second
	cfg.Drain = 2 * sim.Second
	cfg.SLO = 10 * sim.Millisecond
	cfg.VMs = []VMSpec{
		{Name: "srv0", Kind: KindServer, VCPUs: 2, Sensitive: true, Pressure: 0.8},
		{Name: "hog0", Kind: KindAntagonist, VCPUs: 4, Pressure: 4},
		{Name: "hog1", Kind: KindAntagonist, VCPUs: 4, Pressure: 4},
	}
	rule, _ := watch.ParseRule("page:budget=0.05,fast=500ms,slow=2s,burn=2")
	cfg.Spans = span.NewTracer()
	cfg.Watch = &watch.Config{
		Interval: 100 * sim.Millisecond,
		Rules:    []watch.Rule{rule},
	}
	return cfg
}

func TestClusterWatchWiring(t *testing.T) {
	cfg := watchConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Watcher()
	if w == nil {
		t.Fatal("Watch config set but Watcher() is nil")
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}

	vms := w.VMs()
	if len(vms) != 3 {
		t.Fatalf("registered %d VMs, want 3: %+v", len(vms), vms)
	}
	for _, info := range vms {
		if info.Host != c.hosts[0].Name() {
			t.Fatalf("%s registered on %q", info.Name, info.Host)
		}
	}

	// The feeds must have populated both attribution inputs.
	host := c.hosts[0].Name()
	if s := w.Store().Series(watch.SeriesPain, obs.Labels{Sub: host, VM: "srv0"}); s == nil {
		t.Fatal("no pain series for srv0")
	}
	occ := 0
	w.Store().Visit(func(name string, l obs.Labels, s *watch.Series) {
		if name == watch.SeriesOcc {
			occ++
		}
	})
	if occ == 0 {
		t.Fatal("no occupancy series recorded")
	}

	// 10 pressure-4 vCPUs against a 10ms SLO on 4 pCPUs: the burn-rate
	// rule must fire, and the incident bundle must blame a hog, not the
	// victim itself.
	if len(w.Alerts()) == 0 {
		t.Fatal("no SLO alert fired under 2.5x overcommit")
	}
	ranked, _ := w.Rankings()
	if len(ranked) == 0 {
		t.Fatal("alert fired but attribution ranked no aggressors")
	}
	top := ranked[0]
	if top.Aggressor != "hog0" && top.Aggressor != "hog1" {
		t.Fatalf("top aggressor = %q, want a hog; ranking: %+v", top.Aggressor, ranked)
	}
	if top.Victim != "srv0" {
		t.Fatalf("top victim = %q, want srv0", top.Victim)
	}

	incs := w.Recorder().Incidents()
	if len(incs) == 0 {
		t.Fatal("alert fired but no incident bundle captured")
	}
	inc := incs[0]
	if inc.Reason != "slo-alert" || inc.Alert == nil {
		t.Fatalf("incident = %q alert=%v, want slo-alert with alert attached", inc.Reason, inc.Alert)
	}
	if len(inc.Series) == 0 || len(inc.Spans) == 0 {
		t.Fatalf("incident bundle missing telemetry: %d series, %d spans", len(inc.Series), len(inc.Spans))
	}
}

func TestClusterWatchSurvivesMigration(t *testing.T) {
	// Two hosts with migration on: after srv0 escapes the hogs, the
	// watcher must show its new placement and keep feeding pain without
	// tripping on the successor instance's counter reset.
	cfg := watchConfig()
	cfg.Hosts = 2
	cfg.Policy = FirstFit // pack everyone onto h0 so migration has a reason
	cfg.Migration = true
	cfg.Duration = 10 * sim.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Skip("no migration happened under this seed; nothing to verify")
	}
	var srv watch.VMInfo
	for _, info := range c.Watcher().VMs() {
		if info.Name == "srv0" {
			srv = info
		}
	}
	if srv.Name == "" {
		t.Fatal("srv0 not registered with watcher")
	}
	moved := false
	for _, hd := range c.servers {
		if hd.Spec.Name == "srv0" && hd.gen > 0 {
			moved = true
			if srv.Host != hd.host.Name() {
				t.Fatalf("watcher thinks srv0 is on %q, cluster says %q", srv.Host, hd.host.Name())
			}
		}
	}
	if !moved {
		t.Skip("srv0 did not migrate under this seed")
	}
}

func TestClusterWatchDisabledStaysNil(t *testing.T) {
	cfg := watchConfig()
	cfg.Watch = nil
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Watcher() != nil {
		t.Fatal("no Watch config but Watcher() is non-nil")
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
