package cluster

import (
	"fmt"

	"repro/internal/decision"
	"repro/internal/sim"
)

// The replica autoscaler closes the loop between the SLO watchdog and
// the placement scheduler: while any burn-rate rule is firing it adds
// server replicas (placed through the normal two-level path, so they
// land in the least-interfering zone with headroom), and once the
// alert has stayed quiet for DownAfter it retires the most recently
// added replica again. Retirement is drain-then-retire, never kill:
// the router stops feeding the replica, its queue and in-flight work
// finish, in-transit requests land, and only then does the gate seal —
// so the request-conservation invariant holds through every scale
// event by construction.

// AutoscaleConfig parameterizes the replica autoscaler. It requires
// Config.Watch with at least one burn-rate rule — the alert level is
// the scale-up signal.
type AutoscaleConfig struct {
	// Template is the spec cloned for each added replica (must be a
	// KindServer spec; Name becomes the "name-asN" prefix).
	Template VMSpec
	// Min floors the live replica count for scale-down (0 = never
	// below 1); Max caps scale-up; Step is replicas added per trigger.
	Min, Max, Step int
	// Interval is the evaluation cadence; Cooldown the minimum gap
	// between scale-ups; DownAfter the quiet time required before a
	// scale-down.
	Interval, Cooldown, DownAfter sim.Time
}

// withDefaults fills unset autoscaler knobs.
func (a AutoscaleConfig) withDefaults() AutoscaleConfig {
	if a.Step <= 0 {
		a.Step = 1
	}
	if a.Interval <= 0 {
		a.Interval = 250 * sim.Millisecond
	}
	if a.Cooldown <= 0 {
		a.Cooldown = 2 * sim.Second
	}
	if a.DownAfter <= 0 {
		a.DownAfter = 3 * sim.Second
	}
	return a
}

// liveReplicas counts server replicas the router could feed or start
// feeding (admitted and not on their way out; a mid-migration replica
// still counts — it resumes after the switchover).
func (c *Cluster) liveReplicas() int {
	n := 0
	for _, hd := range c.servers {
		if hd.admitted && !hd.draining && !hd.retired {
			n++
		}
	}
	return n
}

// autoscaleTick is the autoscaler state machine, one step per
// Interval. Barrier task, registered after the watch epoch so a
// same-instant evaluation is already visible.
func (c *Cluster) autoscaleTick() {
	as := c.cfg.Autoscale
	now := c.sh.Now()
	if c.watcher.Monitor().AnyFiring() {
		c.asQuietSince = now
		live := c.liveReplicas()
		if live >= as.Max || now-c.asLastUp < as.Cooldown {
			return
		}
		n := as.Step
		if live+n > as.Max {
			n = as.Max - live
		}
		for i := 0; i < n; i++ {
			c.scaleUp()
		}
		c.asLastUp = now
		return
	}
	if now-c.asQuietSince < as.DownAfter {
		return
	}
	floor := as.Min
	if floor < 1 {
		floor = 1 // never drain the last replica, whatever Min says
	}
	if c.liveReplicas() <= floor {
		return
	}
	// LIFO: retire the newest autoscaler-added replica; VMs from the
	// configured arrival sequence are never scaled away.
	for i := len(c.asCreated) - 1; i >= 0; i-- {
		hd := c.asCreated[i]
		if hd.admitted && !hd.draining && !hd.retired && !hd.migrating {
			c.beginDrain(hd)
			c.asQuietSince = now // pace consecutive scale-downs
			return
		}
	}
}

// scaleUp admits one replica cloned from the template through the
// normal placement path. Barrier context.
func (c *Cluster) scaleUp() {
	as := c.cfg.Autoscale
	spec := as.Template
	c.asSeq++
	spec.Name = fmt.Sprintf("%s-as%d", as.Template.Name, c.asSeq)
	spec.ArriveAt = c.sh.Now()
	if spec.Weight <= 0 {
		spec.Weight = 256
	}
	if spec.Threads <= 0 {
		spec.Threads = spec.VCPUs
	}
	hd := &VMHandle{Spec: spec, idx: len(c.vms)}
	c.vms = append(c.vms, hd)
	c.servers = append(c.servers, hd)
	c.asCreated = append(c.asCreated, hd)
	c.scaleUps++
	if c.decCtl.Wants(decision.KindAutoscale) {
		c.recordScale("up", hd, c.liveReplicas())
	}
	c.admit(hd)
}

// beginDrain cordons hd (the router skips draining replicas) and arms
// the drain watch. Barrier context.
func (c *Cluster) beginDrain(hd *VMHandle) {
	if c.decCtl.Wants(decision.KindAutoscale) {
		c.recordScale("down", hd, c.liveReplicas())
	}
	hd.draining = true
	c.sh.AtBarrier(c.sh.Now()+c.lookahead, "drain-"+hd.Spec.Name, func() { c.drainCheck(hd) })
}

// drainCheck retires hd once every routed request has landed and
// finished: nothing in transit (routed == delivered), nothing queued
// or in flight at the gate, nothing carried by a migration. Until
// then it re-arms one lookahead out. Barrier task.
func (c *Cluster) drainCheck(hd *VMHandle) {
	if hd.retired {
		return
	}
	g := hd.gate
	if hd.routed == hd.delivered && len(hd.carried) == 0 && g.QueueLen() == 0 && g.InFlight() == 0 {
		c.retire(hd)
		return
	}
	c.sh.AtBarrier(c.sh.Now()+c.lookahead, "drain-"+hd.Spec.Name, func() { c.drainCheck(hd) })
}

// retire seals the drained replica's gate (empty by construction — the
// drain condition held at this same barrier) and releases its
// committed capacity. The instance's shell idles on its host for the
// rest of the run, as a deprovisioned-but-not-deallocated VM would.
func (c *Cluster) retire(hd *VMHandle) {
	if left := hd.gate.Close(); len(left) != 0 {
		// Cannot happen given the drain condition; carrying them keeps
		// the conservation ledger honest even if it does.
		hd.carried = append(hd.carried, left...)
	}
	hd.retired = true
	hd.draining = false
	hd.host.committed -= hd.Spec.VCPUs
	if hd.Spec.Sensitive {
		hd.host.sensitive--
	}
	c.scaleDowns++
}
