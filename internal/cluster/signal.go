package cluster

import (
	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
)

// The interference signal is read from each host's obs registry — the
// same telemetry a real deployment scrapes: cumulative per-vCPU
// runstate nanoseconds (running = busy, runnable = steal), the per-VM
// preempt-wait histograms, and the lock-holder-preemption counters.
// Runstate counters advance on transitions, so the reader first asks
// the hypervisor to fold the accruing intervals in
// (SyncRunstateAccounting); the registry then holds exact values.

// hostCumulative sums the host's cumulative signal counters, in
// nanoseconds (busy, steal, wait) and events (lhp).
func hostCumulative(h *Host) (busy, steal, wait, lhp float64) {
	h.HV.SyncRunstateAccounting()
	for _, vm := range h.HV.VMs() {
		vmL := obs.Labels{Sub: "hv", VM: vm.Name}
		if hist := h.Reg.FindHistogram("hv_preempt_wait_ns", vmL); hist != nil {
			wait += float64(hist.Sum())
		}
		if ctr := h.Reg.FindCounter("hv_lhp_total", vmL); ctr != nil {
			lhp += float64(ctr.Value())
		}
		b, s := vmCumulativeRunstates(h.Reg, vm.Name, vm.VCPUs)
		busy += b
		steal += s
	}
	return busy, steal, wait, lhp
}

// vmCumulativeRunstates reads one VM's summed running/runnable
// nanoseconds from the registry.
func vmCumulativeRunstates(reg *obs.Registry, vmName string, vcpus []*hypervisor.VCPU) (busy, steal float64) {
	for _, v := range vcpus {
		base := obs.Labels{Sub: "hv", VM: vmName, CPU: v.Name()}
		run := base
		run.Kind = "running"
		if ctr := reg.FindCounter("hv_runstate_ns", run); ctr != nil {
			busy += float64(ctr.Value())
		}
		rq := base
		rq.Kind = "runnable"
		if ctr := reg.FindCounter("hv_runstate_ns", rq); ctr != nil {
			steal += float64(ctr.Value())
		}
	}
	return busy, steal
}

// refreshSignals recomputes every host's windowed interference
// fractions and every server VM's steal delta since the last refresh.
// A zero-length window keeps the previous values. Barrier context: it
// reads (and syncs) every host's registry.
func (c *Cluster) refreshSignals() {
	now := c.sh.Now()
	window := float64(now - c.lastRefresh)
	if window <= 0 {
		return
	}
	c.lastRefresh = now
	for _, h := range c.hosts {
		busy, steal, wait, lhp := hostCumulative(h)
		norm := window * float64(c.cfg.PCPUsPerHost)
		h.busyFrac = (busy - h.prevBusy) / norm
		h.stealFrac = (steal - h.prevSteal) / norm
		h.waitFrac = (wait - h.prevWait) / norm
		h.lhpRate = (lhp - h.prevLHP) / (window / float64(sim.Second))
		h.prevBusy, h.prevSteal, h.prevWait, h.prevLHP = busy, steal, wait, lhp
	}
	for _, hd := range c.servers {
		if !hd.admitted || hd.vm == nil {
			continue
		}
		_, steal := vmCumulativeRunstates(hd.host.Reg, hd.vm.Name, hd.vm.VCPUs)
		hd.stealFrac = (steal - hd.prevSteal) / (window * float64(hd.Spec.VCPUs))
		if hd.stealFrac < 0 {
			hd.stealFrac = 0
		}
		hd.prevSteal = steal
	}
}
