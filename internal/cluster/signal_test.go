package cluster

import (
	"testing"

	"repro/internal/sim"
)

// signalRig builds a small busy cluster and runs it to 1s of virtual
// time without invoking the periodic monitor refresh logic under test.
func signalRig(t *testing.T) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Hosts = 2
	cfg.Duration = 2 * sim.Second
	cfg.Drain = 0
	cfg.VMs = []VMSpec{
		{Name: "srv0", Kind: KindServer, VCPUs: 2, Sensitive: true, Pressure: 0.8},
		{Name: "ant0", Kind: KindAntagonist, VCPUs: 4, Pressure: 4},
		{Name: "ant1", Kind: KindAntagonist, VCPUs: 4, Pressure: 4},
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.sh.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRefreshSignalsSingleWindow(t *testing.T) {
	c := signalRig(t)
	c.refreshSignals()
	var busy float64
	for _, h := range c.hosts {
		if h.busyFrac < 0 || h.busyFrac > float64(c.cfg.PCPUsPerHost) {
			t.Fatalf("%s busyFrac = %v out of range", h.Name(), h.busyFrac)
		}
		if h.stealFrac < 0 || h.waitFrac < 0 || h.lhpRate < 0 {
			t.Fatalf("%s negative signal: steal=%v wait=%v lhp=%v",
				h.Name(), h.stealFrac, h.waitFrac, h.lhpRate)
		}
		busy += h.busyFrac
	}
	if busy == 0 {
		t.Fatal("an overcommitted cluster measured zero busy fraction")
	}
	for _, hd := range c.servers {
		if hd.stealFrac < 0 {
			t.Fatalf("%s stealFrac = %v", hd.Spec.Name, hd.stealFrac)
		}
	}
}

func TestRefreshSignalsEmptyWindowKeepsValues(t *testing.T) {
	c := signalRig(t)
	c.refreshSignals()
	h := c.hosts[0]
	busy, steal, wait, lhp := h.busyFrac, h.stealFrac, h.waitFrac, h.lhpRate
	srvSteal := c.servers[0].stealFrac

	// Same virtual instant: window is zero, the refresh must be a no-op
	// (not a divide-by-zero, not a reset to zero).
	c.refreshSignals()
	if h.busyFrac != busy || h.stealFrac != steal || h.waitFrac != wait || h.lhpRate != lhp {
		t.Fatalf("zero-window refresh changed host signal: %v/%v/%v/%v -> %v/%v/%v/%v",
			busy, steal, wait, lhp, h.busyFrac, h.stealFrac, h.waitFrac, h.lhpRate)
	}
	if c.servers[0].stealFrac != srvSteal {
		t.Fatalf("zero-window refresh changed server steal: %v -> %v", srvSteal, c.servers[0].stealFrac)
	}
}

func TestRefreshSignalsCounterResetClamps(t *testing.T) {
	c := signalRig(t)
	c.refreshSignals()
	// Simulate a counter reset (what a migration does to the successor
	// instance's runstate clocks): the remembered cumulative value is
	// ahead of what the registry now reports. The windowed fraction
	// must clamp to zero, not go negative.
	hd := c.servers[0]
	hd.prevSteal = 1e18
	if err := c.sh.Run(c.sh.Now() + 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.refreshSignals()
	if hd.stealFrac != 0 {
		t.Fatalf("stealFrac after counter reset = %v, want clamp to 0", hd.stealFrac)
	}
	// The next window recovers normal readings.
	if err := c.sh.Run(c.sh.Now() + 500*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	c.refreshSignals()
	if hd.stealFrac < 0 {
		t.Fatalf("stealFrac = %v after recovery window", hd.stealFrac)
	}
}

func TestRefreshSignalsBeforeAnyTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = sim.Second
	cfg.Drain = 0
	cfg.VMs = []VMSpec{{Name: "srv0", Kind: KindServer, VCPUs: 1, Sensitive: true}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No virtual time has passed at all: window is zero even on the
	// very first refresh.
	c.refreshSignals()
	for _, h := range c.hosts {
		if h.busyFrac != 0 || h.stealFrac != 0 {
			t.Fatalf("signals nonzero before any run: %+v", h)
		}
	}
}
