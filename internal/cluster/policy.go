package cluster

import (
	"fmt"

	"repro/internal/decision"
)

// Policy selects how arriving VMs are placed onto hosts.
type Policy int

const (
	// FirstFit packs each VM onto the lowest-numbered host with
	// committed-vCPU capacity left.
	FirstFit Policy = iota + 1
	// LeastLoaded balances committed vCPUs (ties to the lowest host).
	LeastLoaded
	// InterferenceAware scores hosts from the measured interference
	// signal (busy/steal/preempt-wait fractions, LHP rate from each
	// host's obs registry) plus the declared pressure and sensitivity
	// of the incoming VM, and picks the minimum.
	InterferenceAware
)

func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case LeastLoaded:
		return "least-loaded"
	case InterferenceAware:
		return "interference-aware"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists the placement policies in comparison order.
func Policies() []Policy { return []Policy{FirstFit, LeastLoaded, InterferenceAware} }

// PolicyByName resolves a policy from its String form.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies() {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// overfullPenalty soft-forbids exceeding the committed-vCPU capacity:
// an over-capacity host is chosen only when every host is over.
const overfullPenalty = 1000.0

// place picks a host for hd: with a multi-zone topology the zone
// picker ranks zones by aggregate telemetry first (the outer level),
// then the configured policy runs over the chosen zone's hosts (the
// inner level). With one flat zone the outer level vanishes and the
// policy sees the whole rack — the pre-zone behavior, byte for byte.
// Ties always break to the lowest host ID, keeping placement
// deterministic.
func (c *Cluster) place(hd *VMHandle) *Host {
	hosts := c.hosts
	if len(c.zones) > 1 {
		hosts = c.zones[c.pickZone(hd)].hosts
	}
	return c.placeAmong(hd, hosts)
}

// placeAmong runs the configured placement policy over the candidate
// hosts and records the choice — with every candidate's score — in the
// decision log when one is attached.
func (c *Cluster) placeAmong(hd *VMHandle, hosts []*Host) *Host {
	n := hd.Spec.VCPUs
	cap := c.capacity()
	var best *Host
	switch c.cfg.Policy {
	case FirstFit:
		for _, h := range hosts {
			if h.committed+n <= cap {
				best = h
				break
			}
		}
		if best == nil {
			best = leastCommitted(hosts)
		}
	case InterferenceAware:
		// Act on a fresh window rather than the last monitor tick.
		c.refreshSignals()
		bestScore := 0.0
		for _, h := range hosts {
			s := c.placementScore(h, hd, cap)
			if best == nil || s < bestScore {
				best, bestScore = h, s
			}
		}
	default: // LeastLoaded
		best = leastCommitted(hosts)
	}
	if c.decCtl.Wants(decision.KindPlace) {
		c.recordPlace(hd, hosts, best, cap)
	}
	return best
}

// leastCommitted returns the candidate host with the fewest committed
// vCPUs.
func leastCommitted(hosts []*Host) *Host {
	best := hosts[0]
	for _, h := range hosts[1:] {
		if h.committed < best.committed {
			best = h
		}
	}
	return best
}

// placementScore estimates how bad placing hd on h would be, from the
// measured signal plus the projected post-placement utilization
// (measured busy fraction + the newcomer's declared pressure): what the
// host would do to a sensitive newcomer (measured contention, projected
// CPU scarcity), what the newcomer's pressure would do to resident
// sensitive VMs (only when CPU becomes scarce), a mild committed-load
// tiebreak, and a large penalty for exceeding capacity.
func (c *Cluster) placementScore(h *Host, hd *VMHandle, cap int) float64 {
	uProj := h.busyFrac + hd.Spec.Pressure/float64(c.cfg.PCPUsPerHost)
	s := 0.05 * float64(h.committed) / float64(cap)
	if hd.Spec.Sensitive {
		s += h.Interference()
		if uProj > 0.8 {
			s += 4 * (uProj - 0.8)
		}
	}
	s += hd.Spec.Pressure * float64(h.sensitive) * scarcity(uProj)
	if h.committed+hd.Spec.VCPUs > cap {
		s += overfullPenalty
	}
	return s
}

// scarcity maps projected utilization to contention likelihood: free
// below 50%, certain at saturation.
func scarcity(u float64) float64 {
	switch {
	case u <= 0.5:
		return 0
	case u >= 1.0:
		return 1
	default:
		return (u - 0.5) / 0.5
	}
}
