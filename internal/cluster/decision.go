package cluster

import (
	"fmt"
	"strconv"

	"repro/internal/decision"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Decision-log producers for the control plane's five choice sites:
// zone pick, host placement, request routing, autoscaling, and
// migration — plus the cordon/uncordon pair a zone outage emits. Every
// caller gates on decCtl.Wants first, so runs without Config.Decisions
// pay one nil test per site and build none of the candidate sets or
// strings below. All sites run on the control shard (mid-window for
// routing, barrier context for the rest), so they share decCtl.

// recordZonePick audits the outer level of two-level placement: every
// zone scored with the shared zone scorer, cordoned zones marked.
func (c *Cluster) recordZonePick(hd *VMHandle, st []topology.ZoneStats, zi int) {
	cands := make([]decision.Candidate, 0, len(st))
	for i, zs := range st {
		reason := fmt.Sprintf("committed=%d/%d intf=%.3f", zs.Committed, zs.Capacity, zs.Interference)
		if zs.Cordoned {
			reason = "cordoned " + reason
		}
		cands = append(cands, decision.Candidate{
			Name:   c.zones[i].name,
			Score:  topology.ZoneScore(zs, hd.Spec.VCPUs, hd.Spec.Pressure, hd.Spec.Sensitive),
			Reason: reason,
		})
	}
	c.decCtl.Add(decision.Record{
		At:         c.sh.Now(),
		Kind:       decision.KindZonePick,
		Subject:    hd.instName(),
		Winner:     c.zones[zi].name,
		Detail:     fmt.Sprintf("zone for %s (%d vCPUs)", hd.instName(), hd.Spec.VCPUs),
		Candidates: cands,
		Inputs: []decision.KV{
			{Key: "vcpus", Val: strconv.Itoa(hd.Spec.VCPUs)},
			{Key: "pressure", Val: strconv.FormatFloat(hd.Spec.Pressure, 'f', 2, 64)},
			{Key: "sensitive", Val: strconv.FormatBool(hd.Spec.Sensitive)},
		},
	})
}

// recordPlace audits the inner level: every candidate host with the
// score the policy ranked it by — the interference-aware placement
// score, or the committed-vCPU count for the load-based policies.
func (c *Cluster) recordPlace(hd *VMHandle, hosts []*Host, best *Host, cap int) {
	cands := make([]decision.Candidate, 0, len(hosts))
	for _, h := range hosts {
		var cand decision.Candidate
		cand.Name = h.Name()
		if c.cfg.Policy == InterferenceAware {
			cand.Score = c.placementScore(h, hd, cap)
			cand.Reason = fmt.Sprintf("busy=%.3f intf=%.3f sens=%d committed=%d",
				h.busyFrac, h.Interference(), h.sensitive, h.committed)
		} else {
			cand.Score = float64(h.committed)
			cand.Reason = fmt.Sprintf("committed=%d", h.committed)
		}
		if h.committed+hd.Spec.VCPUs > cap {
			cand.Reason = "over-cap " + cand.Reason
		}
		cands = append(cands, cand)
	}
	c.decCtl.Add(decision.Record{
		At:         c.sh.Now(),
		Kind:       decision.KindPlace,
		Subject:    hd.instName(),
		Winner:     best.Name(),
		Detail:     fmt.Sprintf("%s placed %s (%d vCPUs) on %s", c.cfg.Policy, hd.instName(), hd.Spec.VCPUs, best.Name()),
		Candidates: cands,
		Inputs: []decision.KV{
			{Key: "policy", Val: c.cfg.Policy.String()},
			{Key: "cap", Val: strconv.Itoa(cap)},
			{Key: "pressure", Val: strconv.FormatFloat(hd.Spec.Pressure, 'f', 2, 64)},
			{Key: "sensitive", Val: strconv.FormatBool(hd.Spec.Sensitive)},
		},
	})
}

// recordRoute audits one dispatched request: the chosen zone's
// routable replicas with their outstanding estimates (the JSQ
// ranking). The zone-level comparison is an input, not a candidate —
// zone scores and replica loads are different units.
func (c *Cluster) recordRoute(req workload.Request, z *zoneState, best *VMHandle, failover bool) {
	var cands []decision.Candidate
	for _, hd := range z.servers {
		if !routable(hd) {
			continue
		}
		cands = append(cands, decision.Candidate{
			Name:   hd.instName(),
			Score:  float64(hd.routed - hd.servedSeen),
			Reason: fmt.Sprintf("out=%d", hd.routed-hd.servedSeen),
		})
	}
	inputs := []decision.KV{{Key: "zone", Val: z.name}}
	if failover {
		inputs = append(inputs, decision.KV{Key: "failover", Val: "1"})
	}
	c.decCtl.Add(decision.Record{
		At:         c.ctl.Now(),
		Kind:       decision.KindRoute,
		Subject:    best.instName(),
		Winner:     best.instName(),
		Detail:     fmt.Sprintf("req@%v to %s in %s", req.Arrival, best.instName(), z.name),
		Candidates: cands,
		Inputs:     inputs,
	})
}

// recordRouteBuffered audits a request the router had to hold back:
// no routable zone or no live replica. Winner "-" marks the non-choice.
func (c *Cluster) recordRouteBuffered(req workload.Request, why string) {
	c.decCtl.Add(decision.Record{
		At:      c.ctl.Now(),
		Kind:    decision.KindRoute,
		Subject: "-",
		Winner:  "-",
		Detail:  fmt.Sprintf("req@%v held back: %s", req.Arrival, why),
		Inputs:  []decision.KV{{Key: "buffered", Val: "1"}},
	})
}

// recordScale audits one autoscaler action (act "up" or "down"), with
// the state machine's inputs: live replica count before the action and
// the burn-rate alert state that drove it.
func (c *Cluster) recordScale(act string, hd *VMHandle, live int) {
	firing := "0"
	if c.watcher.Monitor().AnyFiring() {
		firing = "1"
	}
	c.decCtl.Add(decision.Record{
		At:      c.sh.Now(),
		Kind:    decision.KindAutoscale,
		Subject: hd.Spec.Name,
		Winner:  hd.Spec.Name,
		Detail:  fmt.Sprintf("scale %s: %s (live %d, max %d)", act, hd.Spec.Name, live, c.cfg.Autoscale.Max),
		Inputs: []decision.KV{
			{Key: "act", Val: act},
			{Key: "live", Val: strconv.Itoa(live)},
			{Key: "max", Val: strconv.Itoa(c.cfg.Autoscale.Max)},
			{Key: "firing", Val: firing},
		},
	})
}

// recordMigrate audits a triggered migration: the victim, its measured
// steal fraction against the trigger, and every in-zone destination
// candidate with the placement score the balancer ranked it by.
func (c *Cluster) recordMigrate(victim *VMHandle, hot, cool *Host, cands []decision.Candidate) {
	c.decCtl.Add(decision.Record{
		At:      c.sh.Now(),
		Kind:    decision.KindMigrate,
		Subject: victim.instName(),
		Winner:  cool.Name(),
		Detail: fmt.Sprintf("migrate %s: %s -> %s (steal %.3f > %.3f)",
			victim.instName(), hot.Name(), cool.Name(), victim.stealFrac, c.cfg.StealTrigger),
		Candidates: cands,
		Inputs: []decision.KV{
			{Key: "from", Val: hot.Name()},
			{Key: "steal", Val: strconv.FormatFloat(victim.stealFrac, 'f', 3, 64)},
			{Key: "trigger", Val: strconv.FormatFloat(c.cfg.StealTrigger, 'f', 3, 64)},
			{Key: "hot-score", Val: strconv.FormatFloat(hot.Score(), 'f', 3, 64)},
			{Key: "threshold", Val: strconv.FormatFloat(c.cfg.HotThreshold, 'f', 2, 64)},
		},
	})
}

// recordCordon / recordUncordon audit a zone outage's edges.
func (c *Cluster) recordCordon(z *zoneState, dur sim.Time) {
	c.decCtl.Add(decision.Record{
		At:      c.sh.Now(),
		Kind:    decision.KindCordon,
		Subject: z.name,
		Winner:  z.name,
		Detail:  fmt.Sprintf("zone %s cordoned for %v (%d hosts dark)", z.name, dur, len(z.hosts)),
		Inputs: []decision.KV{
			{Key: "hosts", Val: strconv.Itoa(len(z.hosts))},
			{Key: "for", Val: dur.String()},
		},
	})
}

func (c *Cluster) recordUncordon(z *zoneState) {
	c.decCtl.Add(decision.Record{
		At:      c.sh.Now(),
		Kind:    decision.KindUncordon,
		Subject: z.name,
		Winner:  z.name,
		Detail:  fmt.Sprintf("zone %s restored (%d hosts resume)", z.name, len(z.hosts)),
		Inputs:  []decision.KV{{Key: "hosts", Val: strconv.Itoa(len(z.hosts))}},
	})
}
