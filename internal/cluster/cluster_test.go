package cluster

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// shortConfig trims the default rig for unit-test wall-clock.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 8 * sim.Second
	cfg.Drain = 2 * sim.Second
	cfg.Invariants = true
	return cfg
}

func TestClusterDeterminism(t *testing.T) {
	cfg := shortConfig()
	cfg.Policy = InterferenceAware
	cfg.Migration = true
	a := fmt.Sprintf("%+v", mustRun(t, cfg))
	b := fmt.Sprintf("%+v", mustRun(t, cfg))
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	cfg.Seed = 2
	if c := fmt.Sprintf("%+v", mustRun(t, cfg)); c == a {
		t.Fatal("different seed produced an identical run")
	}
}

func TestClusterRequestConservation(t *testing.T) {
	res := mustRun(t, shortConfig())
	if res.Generated < 1000 {
		t.Fatalf("generated only %d requests", res.Generated)
	}
	if res.Unserved != 0 {
		t.Fatalf("%d of %d requests unserved after the drain", res.Unserved, res.Generated)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations", res.Violations)
	}
}

func TestInterferenceAwarePlusIRSBeatsFirstFit(t *testing.T) {
	// The headline acceptance criterion: the full stack must beat naive
	// packing on both tail latency and SLO-violation rate.
	ff := shortConfig()
	ff.Policy = FirstFit
	base := mustRun(t, ff)

	ia := shortConfig()
	ia.Policy = InterferenceAware
	ia.Strategy = hypervisor.StrategyIRS
	ia.IRS = true
	ia.Migration = true
	full := mustRun(t, ia)

	if full.P99 >= base.P99 {
		t.Fatalf("ia+irs p99 %v not better than first-fit %v", full.P99, base.P99)
	}
	if full.SLORate >= base.SLORate {
		t.Fatalf("ia+irs SLO rate %.4f not better than first-fit %.4f", full.SLORate, base.SLORate)
	}
	if base.Violations != 0 || full.Violations != 0 {
		t.Fatalf("invariant violations: first-fit %d, ia+irs %d", base.Violations, full.Violations)
	}
}

func TestMigrationOccursAndStaysInvariantClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = InterferenceAware
	cfg.Migration = true
	cfg.Invariants = true
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Migrations == 0 {
		t.Fatal("interference-aware run never migrated")
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations across %d migrations", res.Violations, res.Migrations)
	}
	if res.Unserved != 0 {
		t.Fatalf("%d requests lost across migrations", res.Unserved)
	}
	// The logical VM moved hosts; its handle must say so and the
	// committed bookkeeping must still sum to the placements.
	moved := 0
	for _, hd := range c.VMs() {
		moved += hd.Migrations()
	}
	if int64(moved) != res.Migrations {
		t.Fatalf("handles record %d moves, result says %d", moved, res.Migrations)
	}
}

func TestClusterChaosMigratesWithoutViolations(t *testing.T) {
	// Control-plane faults inside every host plus periodic host
	// blackouts, with the hardened guest profile: migrations must still
	// complete and the checker must stay silent (no VM lost or
	// double-placed, no request dropped).
	cfg := DefaultConfig()
	cfg.Policy = InterferenceAware
	cfg.Strategy = hypervisor.StrategyIRS
	cfg.IRS = true
	cfg.Migration = true
	cfg.Invariants = true
	cfg.Faults = fault.LossPlan(0.10)
	cfg.HostBlackoutEvery = 6 * sim.Second
	cfg.HostBlackoutFor = 60 * sim.Millisecond
	cfg.TuneHV = func(c *hypervisor.Config) {
		c.SABreakerN = 5
		c.SABreakerCooldown = 50 * sim.Millisecond
	}
	cfg.TuneGuest = func(c *guest.Config) {
		c.HardenDupSA = true
		c.MigratorRetries = 3
		c.MigratorBackoff = 200 * sim.Microsecond
		c.WakePoll = 5 * sim.Millisecond
	}
	res := mustRun(t, cfg)
	if res.FaultsInjected == 0 {
		t.Fatal("chaos run injected no faults")
	}
	if res.Blackouts == 0 {
		t.Fatal("chaos run saw no host blackouts")
	}
	if res.Migrations == 0 {
		t.Fatal("chaos run never migrated")
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations under chaos", res.Violations)
	}
	if res.Served < res.Generated*9/10 {
		t.Fatalf("served %d of %d — chaos collapsed throughput", res.Served, res.Generated)
	}
}

func TestPlacementPoliciesSpreadAndPack(t *testing.T) {
	// FirstFit packs the early arrivals onto host 0 until it is full;
	// LeastLoaded spreads them round-robin by committed vCPUs.
	ff := shortConfig()
	ff.Policy = FirstFit
	ff.Migration = false
	c, err := New(ff)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cap := c.capacity()
	if got := c.Hosts()[0].Committed(); got != cap {
		t.Fatalf("first-fit left host0 at %d/%d committed vCPUs", got, cap)
	}

	ll := shortConfig()
	ll.Policy = LeastLoaded
	c2, err := New(ll)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c2.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, h := range c2.Hosts() {
		if h.Committed() == 0 {
			t.Fatalf("least-loaded left %s empty", h.Name())
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, p := range Policies() {
		got, ok := PolicyByName(p.String())
		if !ok || got != p {
			t.Fatalf("PolicyByName(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := PolicyByName("round-robin"); ok {
		t.Fatal("PolicyByName accepted an unknown policy")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no hosts", func(c *Config) { c.Hosts = 0 }},
		{"no pcpus", func(c *Config) { c.PCPUsPerHost = 0 }},
		{"no vms", func(c *Config) { c.VMs = nil }},
		{"kindless vm", func(c *Config) { c.VMs = []VMSpec{{Name: "x", VCPUs: 1}} }},
		{"zero-vcpu vm", func(c *Config) { c.VMs = []VMSpec{{Name: "x", Kind: KindServer}} }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
}

func TestScarcityShape(t *testing.T) {
	for _, tc := range []struct{ u, want float64 }{
		{0, 0}, {0.5, 0}, {0.75, 0.5}, {1.0, 1}, {1.5, 1},
	} {
		if got := scarcity(tc.u); got != tc.want {
			t.Errorf("scarcity(%.2f) = %.2f, want %.2f", tc.u, got, tc.want)
		}
	}
}
