package cluster

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/watch"
)

// zoneConfig is a 2-zone rig sized for unit-test wall-clock: zones ×
// hostsPer hosts, one server and one antagonist admitted per zone.
func zoneConfig(zones, hostsPer int) Config {
	cfg := DefaultConfig()
	cfg.Hosts = zones * hostsPer
	cfg.Topology = topology.Uniform(zones, hostsPer)
	cfg.Policy = InterferenceAware
	cfg.Duration = 8 * sim.Second
	cfg.Drain = 2 * sim.Second
	cfg.Invariants = true
	cfg.VMs = StandardMix(2*zones, 2, zones, 2, 400*sim.Millisecond)
	return cfg
}

// burnRule is the watchdog rule the autoscaler tests scale on.
func burnRule() watch.Rule {
	return watch.Rule{Name: "slo-burn", Budget: 0.02, Fast: 500 * sim.Millisecond, Slow: 2 * sim.Second, Burn: 3}
}

// serverTemplate is the replica spec the autoscaler clones.
func serverTemplate() VMSpec {
	return VMSpec{Name: "srv-auto", Kind: KindServer, VCPUs: 2, Pressure: 0.8, Sensitive: true}
}

func TestSingleZoneTopologyDegenerates(t *testing.T) {
	// Property: with exactly one zone the two-level control plane must
	// be invisible — nil Topology, an explicit Flat topology, and a
	// 1-zone Uniform topology all produce the identical Result.
	base := shortConfig()
	base.Policy = InterferenceAware
	base.Migration = true
	want := fmt.Sprintf("%+v", mustRun(t, base))

	flat := base
	flat.Topology = topology.Flat(base.Hosts)
	if got := fmt.Sprintf("%+v", mustRun(t, flat)); got != want {
		t.Errorf("explicit Flat topology diverged from nil topology:\n%s\n%s", got, want)
	}

	uni := base
	uni.Topology = topology.Uniform(1, base.Hosts)
	if got := fmt.Sprintf("%+v", mustRun(t, uni)); got != want {
		t.Errorf("1-zone Uniform topology diverged from nil topology:\n%s\n%s", got, want)
	}
}

func TestTopologyMustCoverHosts(t *testing.T) {
	cfg := shortConfig()
	cfg.Topology = topology.Uniform(2, cfg.Hosts) // twice the hosts
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a topology that does not match Hosts")
	}
}

func TestMultiZonePlacementUsesAllZones(t *testing.T) {
	cfg := zoneConfig(2, 4)
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Zones != 2 {
		t.Fatalf("result reports %d zones, want 2", res.Zones)
	}
	for _, z := range c.zones {
		if len(z.servers) == 0 {
			t.Errorf("zone %s got no server replicas — the zone picker never chose it", z.name)
		}
		if z.routed == 0 {
			t.Errorf("zone %s served no traffic — the partitioned router never chose it", z.name)
		}
	}
	if res.Unserved != 0 || res.Violations != 0 {
		t.Fatalf("unserved=%d violations=%d", res.Unserved, res.Violations)
	}
}

func TestZoneOutageFailsOverAndNeverRoutesToCordonedZone(t *testing.T) {
	cfg := zoneConfig(2, 4)
	cfg.ZoneOutages = []ZoneOutage{{Zone: 1, At: 3 * sim.Second, For: 800 * sim.Millisecond}}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Probe the dark zone's router counter at every 100ms barrier: over
	// any interval that begins and ends cordoned, not one request may
	// have been routed into it.
	z1 := c.zones[1]
	var lastRouted int64
	wasCordoned := false
	leaked := false
	c.sh.EveryBarrier(100*sim.Millisecond, "outage-probe", func() {
		if wasCordoned && z1.cordoned && z1.routed != lastRouted {
			leaked = true
		}
		wasCordoned = z1.cordoned
		lastRouted = z1.routed
	})
	res, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ZoneOutages != 1 {
		t.Fatalf("recorded %d zone outages, want 1", res.ZoneOutages)
	}
	if res.Failover == 0 {
		t.Fatal("no requests routed during the outage — failover never happened")
	}
	if leaked {
		t.Fatal("router sent requests into the cordoned zone during the outage")
	}
	if res.Unserved != 0 {
		t.Fatalf("%d requests lost across the outage", res.Unserved)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations across the outage", res.Violations)
	}
}

// autoscaleConfig overloads a 2-zone rig during a zone outage so the
// burn-rate alert trips: one server per zone (~1 req/ms capacity each)
// against a 700µs mean arrival (~1.4 req/ms) — fine with both zones,
// saturating when one goes dark at t=3s.
func autoscaleConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 8
	cfg.Topology = topology.Uniform(2, 4)
	cfg.Policy = InterferenceAware
	cfg.Duration = 10 * sim.Second
	cfg.Drain = 3 * sim.Second
	cfg.Invariants = true
	cfg.Arrival = 700 * sim.Microsecond
	cfg.SLO = 25 * sim.Millisecond
	cfg.VMs = StandardMix(2, 2, 2, 2, 400*sim.Millisecond)
	cfg.ZoneOutages = []ZoneOutage{{Zone: 1, At: 3 * sim.Second, For: 1 * sim.Second}}
	cfg.Watch = &watch.Config{Interval: 100 * sim.Millisecond, Rules: []watch.Rule{burnRule()}}
	cfg.Autoscale = &AutoscaleConfig{
		Template:  serverTemplate(),
		Max:       6,
		Step:      1,
		Interval:  250 * sim.Millisecond,
		Cooldown:  1 * sim.Second,
		DownAfter: 1 * sim.Second,
	}
	return cfg
}

func TestAutoscalerScalesUpOnBurnAndRestores(t *testing.T) {
	res := mustRun(t, autoscaleConfig())
	if res.Alerts == 0 {
		t.Fatal("the outage never tripped the burn-rate alert")
	}
	if res.ScaleUps == 0 {
		t.Fatal("autoscaler never scaled up on the firing alert")
	}
	if res.ScaleDowns != res.ScaleUps {
		t.Fatalf("autoscaler added %d replicas but drained %d — count not restored", res.ScaleUps, res.ScaleDowns)
	}
	if res.Replicas != 2 {
		t.Fatalf("run ended with %d live replicas, want the configured 2", res.Replicas)
	}
	if res.Unserved != 0 {
		t.Fatalf("%d requests lost across scale events", res.Unserved)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations across scale events", res.Violations)
	}
}

func TestAutoscalerCooldownPreventsFlapping(t *testing.T) {
	// Sustained overload with no outage: the alert fires for seconds on
	// end, but scale-ups must stay paced by the cooldown — at most one
	// trigger per cooldown window, never past Max.
	cfg := autoscaleConfig()
	cfg.ZoneOutages = nil
	cfg.Arrival = 400 * sim.Microsecond // ~2.5 req/ms vs ~2 req/ms capacity
	cfg.Duration = 8 * sim.Second
	cfg.Autoscale.Cooldown = 2 * sim.Second
	res := mustRun(t, cfg)
	if res.ScaleUps == 0 {
		t.Fatal("sustained overload never scaled up")
	}
	// 8s of firing with a 2s cooldown allows at most 4 triggers of
	// Step=1 each; more means the cooldown is not being honored.
	if res.ScaleUps > 4 {
		t.Fatalf("%d scale-ups in 8s with a 2s cooldown — flapping", res.ScaleUps)
	}
	if res.Replicas > cfg.Autoscale.Max {
		t.Fatalf("%d live replicas exceeds Max=%d", res.Replicas, cfg.Autoscale.Max)
	}
	if res.Unserved != 0 || res.Violations != 0 {
		t.Fatalf("unserved=%d violations=%d", res.Unserved, res.Violations)
	}
}

func TestAutoscalerNeverDrainsLastReplica(t *testing.T) {
	// One lightly-loaded replica and an alert that never fires: the
	// quiet timer urges a scale-down at every tick, but the floor is
	// absolute — the last live replica is never cordoned.
	cfg := DefaultConfig()
	cfg.Duration = 6 * sim.Second
	cfg.Drain = 2 * sim.Second
	cfg.Invariants = true
	cfg.Arrival = 2 * sim.Millisecond
	cfg.VMs = StandardMix(1, 2, 1, 2, 400*sim.Millisecond)
	cfg.Watch = &watch.Config{Interval: 100 * sim.Millisecond, Rules: []watch.Rule{burnRule()}}
	cfg.Autoscale = &AutoscaleConfig{
		Template:  serverTemplate(),
		Min:       0, // even an explicit zero must floor at one replica
		Max:       4,
		Interval:  250 * sim.Millisecond,
		DownAfter: 500 * sim.Millisecond,
	}
	res := mustRun(t, cfg)
	if res.ScaleDowns != 0 {
		t.Fatalf("autoscaler drained %d replicas with only one live", res.ScaleDowns)
	}
	if res.Replicas != 1 {
		t.Fatalf("run ended with %d live replicas, want 1", res.Replicas)
	}
	if res.Unserved != 0 || res.Violations != 0 {
		t.Fatalf("unserved=%d violations=%d", res.Unserved, res.Violations)
	}
}

func TestAutoscalerRidesOutHostBlackout(t *testing.T) {
	// Host blackouts keep firing while the autoscaler is admitting and
	// draining replicas; the conservation and single-placement
	// invariants must hold throughout.
	cfg := autoscaleConfig()
	cfg.HostBlackoutEvery = 2 * sim.Second
	cfg.HostBlackoutFor = 60 * sim.Millisecond
	res := mustRun(t, cfg)
	if res.Blackouts == 0 {
		t.Fatal("no host blackouts fired")
	}
	if res.ScaleUps == 0 {
		t.Fatal("autoscaler never scaled up under blackout chaos")
	}
	if res.Unserved != 0 {
		t.Fatalf("%d requests lost under blackouts + scaling", res.Unserved)
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations under blackouts + scaling", res.Violations)
	}
}

func TestZoneOutageValidation(t *testing.T) {
	cases := []struct {
		name string
		out  ZoneOutage
	}{
		{"zone out of range", ZoneOutage{Zone: 2, At: sim.Second, For: sim.Second}},
		{"negative zone", ZoneOutage{Zone: -1, At: sim.Second, For: sim.Second}},
		{"zero duration", ZoneOutage{Zone: 1, At: sim.Second}},
	}
	for _, tc := range cases {
		cfg := zoneConfig(2, 2)
		cfg.ZoneOutages = []ZoneOutage{tc.out}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the outage", tc.name)
		}
	}
}

func TestAutoscaleConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no watch rules", func(c *Config) { c.Watch = nil }},
		{"non-server template", func(c *Config) { c.Autoscale.Template.Kind = KindAntagonist }},
		{"zero-vcpu template", func(c *Config) { c.Autoscale.Template.VCPUs = 0 }},
		{"zero max", func(c *Config) { c.Autoscale.Max = 0 }},
	}
	for _, tc := range cases {
		cfg := autoscaleConfig()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
}
