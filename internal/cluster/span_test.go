package cluster

import (
	"testing"

	"repro/internal/hypervisor"
	"repro/internal/sim"
	"repro/internal/span"
)

// TestClusterSpansConserveAcrossMigrations threads the tracer through
// the full cluster stack — router admission, replica queues, guest
// scheduling, and live-migration carry-over — and checks that every
// request is accounted for and every finished span conserves exactly.
func TestClusterSpansConserveAcrossMigrations(t *testing.T) {
	tr := span.NewTracer()
	cfg := DefaultConfig()
	cfg.Duration = 4 * sim.Second
	cfg.Drain = 1 * sim.Second
	cfg.Strategy = hypervisor.StrategyIRS
	cfg.IRS = true
	cfg.Policy = InterferenceAware
	cfg.Migration = true
	cfg.Invariants = true
	cfg.MigrationCooldown = 1 * sim.Second
	cfg.Spans = tr
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("invariant violations: %d", res.Violations)
	}

	spans := tr.Finished()
	// Every generated request minted a span; served ones finished it.
	if int64(len(spans)) != res.Served {
		t.Fatalf("finished spans %d != served requests %d", len(spans), res.Served)
	}
	if int64(len(spans)+tr.Open()) != res.Generated {
		t.Fatalf("spans %d + open %d != generated %d", len(spans), tr.Open(), res.Generated)
	}
	if len(spans) == 0 {
		t.Fatal("no traced requests")
	}
	migrSpans := 0
	for _, sp := range spans {
		if sp.ConservationError() != 0 {
			t.Fatalf("span #%d: conservation error %v", sp.ID, sp.ConservationError())
		}
		if sp.Totals()[span.CatVMMigr] > 0 {
			migrSpans++
		}
	}
	// With migration enabled on the standard rig a switchover happens;
	// the requests it carried must wear the downtime as vm-migr blame.
	if res.Migrations > 0 && migrSpans == 0 {
		t.Fatalf("%d migrations but no span carries vm-migr time", res.Migrations)
	}
	an := span.Analyze(spans, 0)
	if an.Violations != 0 {
		t.Fatalf("analyzer found %d violations", an.Violations)
	}
}
