package cluster

import "repro/internal/workload"

// The router is the cluster's front door: an open-loop Poisson stream
// of requests, each dispatched to the live server replica with the
// least outstanding work (queued + in service), ties to the earliest
// admitted replica. A replica under migration is cordoned so its queue
// drains before the switchover; when no replica is available at all
// (early arrivals, every server mid-blackout switchover) the request is
// held back and flushed as soon as a gate opens, original timestamp
// intact, so its wait shows up in the measured latency.

// nextArrival generates one cluster request and re-arms itself until
// the stream duration elapses.
func (c *Cluster) nextArrival() {
	now := c.eng.Now()
	if now >= c.cfg.Duration {
		return
	}
	c.generated++
	// Admission is where the causal span is born: everything that happens
	// to the request from here on is somebody's fault.
	c.route(workload.Request{Arrival: now, Span: c.cfg.Spans.Start(now)})
	c.eng.After(c.arrivalRNG.Exp(c.cfg.Arrival), "cluster-arrival", c.nextArrival)
}

// route dispatches one request stamped with its arrival time.
func (c *Cluster) route(req workload.Request) {
	var best *VMHandle
	bestLoad := 0
	for _, hd := range c.servers {
		if !hd.admitted || hd.migrating || hd.gate == nil || hd.gate.Closed() {
			continue
		}
		load := hd.gate.QueueLen() + int(hd.gate.InFlight())
		if best == nil || load < bestLoad {
			best, bestLoad = hd, load
		}
	}
	if best == nil {
		c.buffered = append(c.buffered, req)
		return
	}
	best.gate.SubmitReq(req)
	best.routed++
}

// flushBuffered re-routes requests held back while no replica was
// available.
func (c *Cluster) flushBuffered() {
	if len(c.buffered) == 0 {
		return
	}
	held := c.buffered
	c.buffered = nil
	for _, req := range held {
		c.route(req)
	}
}
