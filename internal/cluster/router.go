package cluster

import (
	"repro/internal/decision"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/topology"
	"repro/internal/workload"
)

// The router is the cluster's front door: an open-loop Poisson stream
// of requests on the control shard. Routing is partitioned by zone —
// the outer level picks a zone by least mean outstanding work per live
// replica (skipping cordoned zones, so an outage fails traffic over
// automatically), the inner level runs join-shortest-queue over that
// zone's replicas only. With one flat zone the outer level collapses
// to a constant and the inner JSQ is exactly the old global router.
// Each dispatch posts to the replica's host shard with the transit
// latency (= the lookahead), so routing never reads another shard
// mid-window. The load view is routed minus served-as-seen-at-the-
// last-barrier — the slightly stale picture a real front door has. A
// replica under migration or autoscaler drain is cordoned so its queue
// empties before the switchover; when no replica is available at all
// (early arrivals, every server mid-switchover, every zone dark) the
// request is held back and flushed as soon as a gate opens, original
// timestamp intact, so its wait shows up in the measured latency.

// arrivalMean returns the mean inter-arrival time in effect at now:
// the flat Arrival, or the active stage of the configured ramp. The
// stage cursor only moves forward — arrivals consume time
// monotonically.
func (c *Cluster) arrivalMean(now sim.Time) sim.Time {
	ramp := c.cfg.Ramp
	if len(ramp) == 0 {
		return c.cfg.Arrival
	}
	for c.rampIdx+1 < len(ramp) && ramp[c.rampIdx+1].At <= now {
		c.rampIdx++
	}
	if ramp[c.rampIdx].At <= now {
		return ramp[c.rampIdx].Arrival
	}
	return c.cfg.Arrival // before the first stage
}

// nextArrival generates one cluster request and re-arms itself until
// the stream duration elapses. Runs on the control shard.
func (c *Cluster) nextArrival() {
	now := c.ctl.Now()
	if now >= c.cfg.Duration {
		return
	}
	c.generated++
	// Admission is where the causal span is born: everything that happens
	// to the request from here on is somebody's fault.
	c.route(workload.Request{Arrival: now, Span: c.cfg.Spans.Start(now)})
	c.ctl.After(c.arrivalRNG.Exp(c.arrivalMean(now)), "cluster-arrival", c.nextArrival)
}

// route dispatches one request stamped with its arrival time: pick a
// zone (trivial with one), then the replica with the fewest
// outstanding requests inside it (ties to the earliest admitted), and
// post the delivery to its host's shard one transit latency out.
func (c *Cluster) route(req workload.Request) {
	z := c.zones[0]
	failover := false
	if len(c.zones) > 1 {
		zi := topology.RouteZone(c.zoneRoutes())
		if zi < 0 {
			if c.decCtl.Wants(decision.KindRoute) {
				c.recordRouteBuffered(req, "no routable zone")
			}
			c.buffered = append(c.buffered, req)
			return
		}
		z = c.zones[zi]
		if c.cordonedZones > 0 {
			c.failoverRouted++
			failover = true
		}
	}
	var best *VMHandle
	var bestLoad int64
	for _, hd := range z.servers {
		if !routable(hd) {
			continue
		}
		load := hd.routed - hd.servedSeen
		if best == nil || load < bestLoad {
			best, bestLoad = hd, load
		}
	}
	if best == nil {
		if c.decCtl.Wants(decision.KindRoute) {
			c.recordRouteBuffered(req, "no live replica in "+z.name)
		}
		c.buffered = append(c.buffered, req)
		return
	}
	if c.decCtl.Wants(decision.KindRoute) {
		c.recordRoute(req, z, best, failover)
	}
	z.routed++
	best.routed++
	host := best.host
	gate := best.gate
	hd := best
	c.sh.Post(ctlShard, host.ID+1, c.lookahead, "deliver-"+hd.Spec.Name, func() {
		c.deliverReq(hd, host, gate, req)
	})
}

// deliverReq lands one routed request on its host shard. The gate is
// the one that was live at routing time; if a migration sealed it while
// the request was in transit, the request bounces through the outbox
// and the next barrier re-routes it to the successor instance (or into
// the migration's carried set). Runs on host's shard.
func (c *Cluster) deliverReq(hd *VMHandle, host *Host, gate *workload.RemoteGate, req workload.Request) {
	host.spans.Adopt(req.Span)
	if gate.SubmitReq(req) {
		host.outbox.delivered = append(host.outbox.delivered, hd)
		return
	}
	req.Span.Transition(host.eng.Now(), span.CatVMMigr)
	host.outbox.bounced = append(host.outbox.bounced, bounceRec{hd: hd, req: req})
}

// flushBuffered re-routes requests held back while no replica was
// available. Barrier context (admission, migration completion, outage
// recovery).
func (c *Cluster) flushBuffered() {
	if len(c.buffered) == 0 {
		return
	}
	held := c.buffered
	c.buffered = nil
	for _, req := range held {
		c.route(req)
	}
}
