package cluster

import (
	"strings"

	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/watch"
)

// This file adapts the cluster's per-host telemetry into the online
// watchdog (internal/watch): pCPU occupancy intervals stream in from
// each hypervisor's deschedule choke point into the host's outbox
// (drained at barriers — the watcher is control-plane state and must
// never be touched mid-window), per-VM pain counters are pushed once
// per watch epoch, and each host's bounded event log feeds the flight
// recorder. All of it is dormant when Config.Watch is nil.

// logicalVMName strips the migration-generation suffix ("srv0#2" ->
// "srv0") so watch signals stay continuous across live migrations.
func logicalVMName(inst string) string {
	name, _, _ := strings.Cut(inst, "#")
	return name
}

// wireWatchHost connects one host's hypervisor to the watcher: the
// occupancy observer for attribution and the event log for incident
// bundles. The observer fires during the host's window execution, so
// it only appends to the host-local outbox.
func (c *Cluster) wireWatchHost(host *Host, tl *trace.Log) {
	host.HV.SetOccupancyObserver(func(vm *hypervisor.VM, p *hypervisor.PCPU, dur sim.Time) {
		host.outbox.occ = append(host.outbox.occ, occRec{
			at:   host.eng.Now(),
			vm:   logicalVMName(vm.Name),
			pcpu: p.Name(),
			dur:  dur,
		})
	})
	if tl != nil {
		c.watcher.Recorder().AddHostLog(host.Name(), tl)
	}
}

// registerWatchVM records (or, after a migration, updates) one VM's
// placement metadata with the watcher.
func (c *Cluster) registerWatchVM(hd *VMHandle) {
	if c.watcher == nil {
		return
	}
	c.watcher.RegisterVM(watch.VMInfo{
		Name:      hd.Spec.Name,
		Host:      hd.host.Name(),
		VCPUs:     hd.Spec.VCPUs,
		Sensitive: hd.Spec.Sensitive,
	})
}

// feedWatcher runs at the top of every watch epoch (a barrier task, all
// shards parked): it flushes the accruing runstate and occupancy
// intervals on every host, drains the freshly produced occupancy
// records into the store, then pushes each admitted VM's cumulative
// pain (preempt-wait + steal) so the watcher can window it. Migration
// restarts an instance's counters; the watcher's delta clamp absorbs
// the reset.
func (c *Cluster) feedWatcher(now sim.Time) {
	for _, h := range c.hosts {
		h.HV.SyncRunstateAccounting()
		h.HV.SyncOccupancyAccounting()
	}
	// The syncs above emitted occupancy intervals into the host
	// outboxes after this barrier's drain already ran; flush them so
	// attribution sees the full window.
	c.drainOccupancy()
	for _, hd := range c.vms {
		if !hd.admitted || hd.vm == nil {
			continue
		}
		_, steal := vmCumulativeRunstates(hd.host.Reg, hd.vm.Name, hd.vm.VCPUs)
		var wait float64
		if hist := hd.host.Reg.FindHistogram("hv_preempt_wait_ns", obs.Labels{Sub: "hv", VM: hd.vm.Name}); hist != nil {
			wait = float64(hist.Sum())
		}
		c.watcher.FeedPain(now, hd.host.Name(), hd.Spec.Name, sim.Time(steal+wait))
	}
}
