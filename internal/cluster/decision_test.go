package cluster

import (
	"bytes"
	"testing"

	"repro/internal/decision"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestPlaceDecisionRecorded is the successor of the old debugPlace
// stderr dump: every interference-aware placement must leave a record
// carrying the full candidate set, and the recorded winner must be the
// minimum-score candidate — the policy's own invariant, now asserted
// instead of eyeballed.
func TestPlaceDecisionRecorded(t *testing.T) {
	cfg := shortConfig()
	cfg.Policy = InterferenceAware
	cfg.Decisions = &decision.Options{Kinds: []decision.Kind{decision.KindPlace}}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs := c.Decisions().Records()
	if len(recs) != len(cfg.VMs) {
		t.Fatalf("%d place records for %d admissions", len(recs), len(cfg.VMs))
	}
	for i := range recs {
		r := &recs[i]
		if r.Kind != decision.KindPlace || r.Chooser != "ctl" {
			t.Fatalf("record %d: kind=%v chooser=%q", i, r.Kind, r.Chooser)
		}
		if len(r.Candidates) != cfg.Hosts {
			t.Fatalf("record %d for %s has %d candidates, want %d", i, r.Subject, len(r.Candidates), cfg.Hosts)
		}
		best := r.Candidates[0]
		for _, cand := range r.Candidates[1:] {
			if cand.Score < best.Score {
				best = cand
			}
		}
		if r.Winner != best.Name {
			t.Fatalf("record %d: winner %q but min-score candidate is %q (%.3f)", i, r.Winner, best.Name, best.Score)
		}
		if pol, _ := r.Input("policy"); pol != "interference-aware" {
			t.Fatalf("record %d: policy input %q", i, pol)
		}
	}
}

// TestClusterDecisionLogShardInvariant pins the tentpole's determinism
// claim at the cluster level: the exported decision log is
// byte-identical whether the host engines run serially or on a full
// worker pool.
func TestClusterDecisionLogShardInvariant(t *testing.T) {
	run := func(shards int) []byte {
		cfg := DefaultConfig()
		cfg.Hosts = 4
		cfg.Topology = topology.Uniform(2, 2)
		cfg.Policy = InterferenceAware
		cfg.Duration = 4 * sim.Second
		cfg.Drain = sim.Second
		cfg.VMs = StandardMix(4, 2, 2, 2, 400*sim.Millisecond)
		cfg.Shards = shards
		cfg.Decisions = &decision.Options{Kinds: decision.ControlKinds()}
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if _, err := c.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := decision.WriteJSON(&buf, c.Decisions().Records(), c.Decisions().Dropped()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	pooled := run(0)
	if !bytes.Equal(serial, pooled) {
		t.Fatalf("decision log differs between serial and pooled runs (%d vs %d bytes)", len(serial), len(pooled))
	}
	if len(serial) == 0 {
		t.Fatal("empty decision log")
	}
}

// TestClusterDecisionsDisabledStaysNil: runs without Config.Decisions
// expose a nil log and record nothing.
func TestClusterDecisionsDisabledStaysNil(t *testing.T) {
	cfg := shortConfig()
	cfg.Duration = 2 * sim.Second
	cfg.Drain = sim.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Decisions() != nil {
		t.Fatal("Decisions() non-nil without Config.Decisions")
	}
	if recs := c.Decisions().Records(); recs != nil {
		t.Fatalf("nil log returned %d records", len(recs))
	}
}

// Paired throughput benchmarks for the decision log's cluster cost:
// the same default rig with the audit off (hook sites pay one nil
// test) and on (every control-plane choice recorded with candidates).
func benchClusterDecisions(b *testing.B, opt *decision.Options) {
	b.Helper()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Decisions = opt
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkClusterNoDecisions(b *testing.B) { benchClusterDecisions(b, nil) }
func BenchmarkClusterWithDecisions(b *testing.B) {
	benchClusterDecisions(b, &decision.Options{Kinds: decision.ControlKinds()})
}
