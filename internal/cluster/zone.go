package cluster

import (
	"fmt"

	"repro/internal/decision"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Zones partition the rack into failure/latency domains and split the
// control plane in two: the zone level decides from cheap per-zone
// aggregates (which zone should host an arriving VM, which zone should
// serve the next request), the host level keeps the fine-grained
// interference-aware decisions it already had, now scoped to one
// zone's hosts. A cluster with no Topology configured runs one flat
// zone and behaves byte-identically to the pre-zone code: the zone
// level collapses to "zone 0" without consulting any aggregate.

// ZoneOutage injects a zone-wide failure: at At the zone is cordoned —
// the router fails away from it, placement and migration stop
// targeting it — and every vCPU on its hosts pauses for For (the
// rack-row power/network event). At At+For the hosts resume and the
// cordon lifts.
type ZoneOutage struct {
	Zone    int
	At, For sim.Time
}

// zoneState is the control plane's per-zone bookkeeping: the member
// hosts, the server replicas admitted into the zone (in admission
// order — the JSQ tie-break order), and the cordon flag.
type zoneState struct {
	idx      int
	name     string
	hosts    []*Host
	servers  []*VMHandle
	cordoned bool
	routed   int64 // requests routed into this zone
}

// buildZones materializes cfg.Topology (or the flat single zone) into
// runtime state. Called from New after the hosts exist.
func (c *Cluster) buildZones() error {
	topo := c.cfg.Topology
	if topo == nil {
		topo = topology.Flat(c.cfg.Hosts)
	}
	if topo.Hosts() != c.cfg.Hosts {
		return fmt.Errorf("cluster: topology covers %d hosts, config has %d", topo.Hosts(), c.cfg.Hosts)
	}
	c.topo = topo
	for zi := 0; zi < topo.Zones(); zi++ {
		z := topo.Zone(zi)
		zs := &zoneState{idx: zi, name: z.Name}
		for _, h := range z.Hosts {
			zs.hosts = append(zs.hosts, c.hosts[h])
		}
		c.zones = append(c.zones, zs)
	}
	return nil
}

// zoneOf returns the zone holding host h.
func (c *Cluster) zoneOf(h *Host) *zoneState { return c.zones[c.topo.ZoneOf(h.ID)] }

// routable reports whether the router may feed hd: admitted, not
// cordoned for a migration switchover, and not being drained away by
// the autoscaler.
func routable(hd *VMHandle) bool {
	return hd.admitted && !hd.migrating && !hd.draining && !hd.retired
}

// zoneRoutes refreshes the router's per-zone aggregates (live replica
// count, summed outstanding estimate) into a reused scratch slice.
func (c *Cluster) zoneRoutes() []topology.ZoneRoute {
	zs := c.zoneRouteScratch[:0]
	for _, z := range c.zones {
		r := topology.ZoneRoute{Cordoned: z.cordoned}
		for _, hd := range z.servers {
			if !routable(hd) {
				continue
			}
			r.Replicas++
			r.Outstanding += hd.routed - hd.servedSeen
		}
		zs = append(zs, r)
	}
	c.zoneRouteScratch = zs
	return zs
}

// pickZone is the outer level of the two-level placement scheduler:
// aggregate each zone's telemetry and rank with the shared zone
// scorer. Only consulted when the topology has more than one zone.
func (c *Cluster) pickZone(hd *VMHandle) int {
	c.refreshSignals() // aggregate a fresh window, as host-level IA does
	cap := c.capacity()
	st := c.zoneStatScratch[:0]
	for _, z := range c.zones {
		zs := topology.ZoneStats{
			Hosts:    len(z.hosts),
			Capacity: cap * len(z.hosts),
			Cordoned: z.cordoned,
		}
		for _, h := range z.hosts {
			zs.Committed += h.committed
			zs.Busy += h.busyFrac
			zs.Interference += h.Interference()
			zs.Sensitive += h.sensitive
		}
		zs.Busy /= float64(len(z.hosts))
		zs.Interference /= float64(len(z.hosts))
		st = append(st, zs)
	}
	c.zoneStatScratch = st
	zi := topology.PickZone(st, hd.Spec.VCPUs, hd.Spec.Pressure, hd.Spec.Sensitive)
	if c.decCtl.Wants(decision.KindZonePick) {
		c.recordZonePick(hd, st, zi)
	}
	return zi
}

// startZoneOutage cordons the zone and blacks out its hosts: every
// vCPU of every resident VM pauses for the outage duration. Barrier
// task.
func (c *Cluster) startZoneOutage(z *zoneState, dur sim.Time) {
	if z.cordoned {
		return
	}
	z.cordoned = true
	c.cordonedZones++
	c.zoneOutageCount++
	if c.decCtl.Wants(decision.KindCordon) {
		c.recordCordon(z, dur)
	}
	for _, h := range z.hosts {
		for _, vm := range h.HV.VMs() {
			for _, v := range vm.VCPUs {
				h.HV.PauseVCPU(v, dur)
			}
		}
	}
}

// endZoneOutage lifts the cordon (the hosts' vCPUs resume on their own
// pause timers). Barrier task.
func (c *Cluster) endZoneOutage(z *zoneState) {
	if !z.cordoned {
		return
	}
	z.cordoned = false
	c.cordonedZones--
	if c.decCtl.Wants(decision.KindUncordon) {
		c.recordUncordon(z)
	}
	// Requests buffered while every zone was dark can flow again.
	c.flushBuffered()
}
