// Package cluster models a rack of simulated hosts — each running the
// full hypervisor+guest stack on its own discrete-event engine shard —
// under a cluster scheduler that places incoming VMs by predicted
// interference, live-migrates whole VMs away from interference
// hot-spots, and routes an open-loop request stream across the server
// replicas so cluster-level tail latency and SLO-violation rate become
// first-class outputs.
//
// Execution is a conservative parallel discrete-event simulation
// (sim.ShardedEngine): shard 0 is the control plane (arrival stream +
// router), shards 1..Hosts are the hosts. Each round every shard runs
// independently up to the lookahead — the router's minimum transit
// latency, the floor on any cross-host interaction — then a barrier
// exchanges cross-host traffic and runs the control-plane tasks
// (placement, the migration state machine, blackouts, invariant audits,
// watchdog epochs) with every shard parked at one instant, exactly the
// semantics they had on a single shared engine. Host shards execute on
// a bounded goroutine pool (Config.Shards); the output is byte-
// identical at any pool size by construction.
//
// The paper fixes lock-holder preemption inside one host; this layer is
// the deployment surface above it: the per-host steal / preempt-wait /
// LHP telemetry that the IRS machinery exports (internal/obs) doubles
// as the placement signal, in the spirit of Angelou et al.'s resource-
// and interference-aware scheduling.
package cluster

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/decision"
	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/invariant"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/watch"
	"repro/internal/workload"
)

// VMKind classifies a cluster VM for placement purposes.
type VMKind int

const (
	// KindServer is a latency-sensitive request-serving VM; the router
	// spreads the cluster request stream across all live server VMs.
	KindServer VMKind = iota + 1
	// KindAntagonist is a CPU-bound batch VM with no latency SLO.
	KindAntagonist
)

func (k VMKind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindAntagonist:
		return "antagonist"
	default:
		return fmt.Sprintf("VMKind(%d)", int(k))
	}
}

// VMSpec describes one VM arriving at the cluster.
type VMSpec struct {
	Name  string
	Kind  VMKind
	VCPUs int
	// Weight is the credit-scheduler weight (default 256).
	Weight int
	// Threads is the worker-thread count for server VMs (default VCPUs).
	Threads int
	// ArriveAt is when the VM is submitted for placement.
	ArriveAt sim.Time
	// Pressure declares the VM's expected CPU demand in pCPUs, as a
	// cloud user declares resource requests. The interference-aware
	// policy uses it to bound the harm a newcomer does to resident
	// sensitive VMs before any measurement of the newcomer exists.
	Pressure float64
	// Sensitive marks latency-critical VMs (QoS class). Placement
	// keeps measured interference away from sensitive VMs and keeps
	// high-pressure newcomers away from hosts running them.
	Sensitive bool
}

// DefaultLookahead is the router's transit latency and therefore the
// conservative sync window: a quarter millisecond of simulated network
// hop, comfortably under every control-plane cadence.
const DefaultLookahead = 250 * sim.Microsecond

// Config parameterizes a cluster run.
type Config struct {
	Hosts        int
	PCPUsPerHost int
	// Strategy is the per-host hypervisor scheduling strategy.
	Strategy hypervisor.Strategy
	// IRS makes guests SA-capable (effective with StrategyIRS).
	IRS bool
	// Policy selects the placement policy.
	Policy Policy
	// Overcommit bounds committed vCPUs per host at
	// Overcommit×PCPUsPerHost (soft for placement fallback).
	Overcommit float64

	// Shards bounds the goroutine pool that executes host engine
	// windows: 1 is fully serial, 0 picks min(GOMAXPROCS, Hosts+1).
	// The pool size is invisible to the simulation — output is
	// byte-identical at any value.
	Shards int
	// Lookahead is the conservative sync window and the router's
	// transit latency (the minimum delay of any cross-host event).
	// Zero means DefaultLookahead.
	Lookahead sim.Time

	Seed uint64
	// Duration is how long the request stream runs; Drain is the extra
	// time the simulation continues so queues empty.
	Duration sim.Time
	Drain    sim.Time

	// VMs is the arrival sequence (ordered by ArriveAt).
	VMs []VMSpec

	// Service is the mean request service time; Arrival the mean
	// inter-arrival time of the cluster-wide request stream; SLO the
	// latency above which a request counts as an SLO violation.
	Service sim.Time
	Arrival sim.Time
	SLO     sim.Time

	// Migration enables hot-spot detection and live VM migration.
	Migration bool
	// MonitorInterval is how often the interference signal is
	// refreshed (and migrations considered).
	MonitorInterval sim.Time
	// StealTrigger is the per-vCPU steal fraction (time runnable but
	// not running, over the monitor window) above which a server VM is
	// considered to be suffering and becomes a migration victim.
	StealTrigger float64
	// HotThreshold adds hysteresis: the victim's host must show more
	// than HotThreshold× the destination's interference score.
	HotThreshold float64
	// MigrationPause is the switchover downtime; CopyPerVCPU the
	// pre-copy duration per vCPU (VM keeps serving during the copy);
	// MigrationCooldown the minimum gap between migrations of one VM.
	MigrationPause    sim.Time
	CopyPerVCPU       sim.Time
	MigrationCooldown sim.Time

	// HostBlackoutEvery, when positive, pauses every vCPU of one
	// randomly chosen host for HostBlackoutFor at each period — the
	// cluster-level fault model (rack power/management-plane events).
	HostBlackoutEvery sim.Time
	HostBlackoutFor   sim.Time
	// Faults, when non-zero, attaches a per-host fault injector with a
	// forked seed (control-plane message faults inside each host).
	Faults    fault.Plan
	FaultSeed uint64

	// Invariants attaches the runtime invariant checker to every host
	// hypervisor, every guest kernel, and the cluster itself.
	Invariants    bool
	AuditInterval sim.Time

	// TuneHV and TuneGuest, when non-nil, adjust each host's
	// hypervisor config and each guest kernel's config after defaults
	// are applied.
	TuneHV    func(*hypervisor.Config)
	TuneGuest func(*guest.Config)

	// Spans, when non-nil, mints a causal blame span for every routed
	// request; the span rides the request through replica queues, guest
	// scheduling, and migration carry-over (see internal/span).
	Spans *span.Tracer

	// Watch, when non-nil, attaches the online SLO watchdog: windowed
	// telemetry, burn-rate alerting over the router's violation signal,
	// noisy-neighbor attribution, and the incident flight recorder
	// (see internal/watch). Runs without it pay nothing.
	Watch *watch.Config

	// Decisions, when non-nil, attaches the decision audit log: every
	// control-plane choice (zone pick, placement, routing, autoscale,
	// migration, cordon) is recorded with its full candidate set and
	// inputs, per shard, and merged at barriers under the engine's own
	// canonical order — so the log is byte-identical at any worker
	// pool size (see internal/decision). Runs without it pay nothing;
	// Options.Kinds selects what is recorded (include boost/preempt to
	// also audit the per-vCPU scheduler stream on every host).
	Decisions *decision.Options

	// Topology groups the hosts into zones for the two-level control
	// plane (see zone.go). Nil runs one flat zone — byte-identical to
	// the pre-zone cluster. Must cover exactly Hosts hosts.
	Topology *topology.Topology
	// Ramp, when non-empty, is a piecewise arrival schedule: stage k's
	// mean inter-arrival applies from its At until the next stage
	// (before the first stage, Arrival applies). Stages must advance.
	Ramp []topology.Stage
	// ZoneOutages injects zone-wide failures (requires a Topology
	// covering the named zones).
	ZoneOutages []ZoneOutage
	// Autoscale, when non-nil, runs the replica autoscaler against the
	// watchdog's burn-rate signal (requires Watch with rules).
	Autoscale *AutoscaleConfig
	// SLOPhases, when non-empty, splits served/violation counts into
	// len+1 phase buckets at these completion-time boundaries, so a
	// "recovered after the outage" rate is measurable.
	SLOPhases []sim.Time
}

// DefaultConfig returns the standard consolidation rig: three 4-pCPU
// hosts, a 20-second request stream, and the StandardMix arrival
// sequence of four server VMs interleaved with four antagonists.
func DefaultConfig() Config {
	return Config{
		Hosts:             3,
		PCPUsPerHost:      4,
		Strategy:          hypervisor.StrategyVanilla,
		Policy:            LeastLoaded,
		Overcommit:        1.5,
		Seed:              1,
		Duration:          20 * sim.Second,
		Drain:             2 * sim.Second,
		VMs:               StandardMix(4, 2, 4, 2, 1*sim.Second),
		Service:           2 * sim.Millisecond,
		Arrival:           1250 * sim.Microsecond,
		SLO:               20 * sim.Millisecond,
		MonitorInterval:   500 * sim.Millisecond,
		StealTrigger:      0.09,
		HotThreshold:      1.3,
		MigrationPause:    25 * sim.Millisecond,
		CopyPerVCPU:       40 * sim.Millisecond,
		MigrationCooldown: 3 * sim.Second,
		AuditInterval:     50 * sim.Millisecond,
	}
}

// StandardMix builds the default arrival sequence: servers and
// antagonists alternating, one VM every spacing.
func StandardMix(servers, serverVCPUs, antagonists, antagonistVCPUs int, spacing sim.Time) []VMSpec {
	var out []VMSpec
	t := sim.Time(0)
	for si, ai := 0, 0; si < servers || ai < antagonists; {
		if si < servers {
			out = append(out, VMSpec{
				Name:      fmt.Sprintf("srv%d", si),
				Kind:      KindServer,
				VCPUs:     serverVCPUs,
				Pressure:  0.4 * float64(serverVCPUs),
				Sensitive: true,
				ArriveAt:  t,
			})
			si++
			t += spacing
		}
		if ai < antagonists {
			out = append(out, VMSpec{
				Name:     fmt.Sprintf("ant%d", ai),
				Kind:     KindAntagonist,
				VCPUs:    antagonistVCPUs,
				Pressure: float64(antagonistVCPUs),
				ArriveAt: t,
			})
			ai++
			t += spacing
		}
	}
	return out
}

// servedRec is one completed request, observed on the serving host's
// shard and drained to the control plane at the next barrier.
type servedRec struct {
	at  sim.Time
	lat sim.Time
	hd  *VMHandle
}

// occRec is one pCPU occupancy interval bound for the watchdog's
// attribution store.
type occRec struct {
	at   sim.Time
	vm   string
	pcpu string
	dur  sim.Time
}

// bounceRec is a request that reached its host after the target gate
// sealed for a migration switchover; the barrier drain re-routes it.
type bounceRec struct {
	hd  *VMHandle
	req workload.Request
}

// hostOutbox buffers a host shard's observations for the barrier
// drain. Each is written only by its host's window execution (or by
// barrier context) and read only at barriers, so no locking is needed;
// the slices are reset in place to keep the steady state allocation-
// free.
type hostOutbox struct {
	served    []servedRec
	delivered []*VMHandle
	bounced   []bounceRec
	occ       []occRec
	viols     []invariant.Violation
}

// Host is one simulated machine in the rack: a full hypervisor+guest
// stack on its own engine shard, with its own metrics registry
// (per-host metric namespaces, as per-host scrape endpoints would be),
// its own forked fault-injector stream, its own invariant checker, and
// an outbox carrying its observations to the control plane.
type Host struct {
	ID  int
	HV  *hypervisor.Hypervisor
	Reg *obs.Registry
	inj *fault.Injector

	eng     *sim.Engine        // this host's shard engine
	checker *invariant.Checker // host-local audits (hv + resident kernels)
	spans   *span.Tracer       // shard-local collector for finished spans
	outbox  hostOutbox

	committed int // placed vCPUs (bookkeeping, audited)
	sensitive int // resident sensitive VMs

	// Windowed interference signal, refreshed by the monitor from the
	// host registry's cumulative counters.
	prevBusy, prevSteal, prevWait float64
	prevLHP                       float64
	busyFrac, stealFrac, waitFrac float64
	lhpRate                       float64
}

// Name returns the host identifier, e.g. "host1".
func (h *Host) Name() string { return fmt.Sprintf("host%d", h.ID) }

// Committed returns the number of vCPUs placed on the host.
func (h *Host) Committed() int { return h.committed }

// Engine returns the host's shard engine.
func (h *Host) Engine() *sim.Engine { return h.eng }

// Interference is the host's contention score: heavily weighted steal
// and preempt-wait fractions plus the lock-holder-preemption rate.
// Unlike Score it ignores plain busyness — a host full of
// well-isolated work is busy but not interfering.
func (h *Host) Interference() float64 {
	return 4*(h.stealFrac+h.waitFrac) + h.lhpRate/100
}

// Score is the host's placement score: measured busy fraction plus the
// interference terms.
func (h *Host) Score() float64 {
	return h.busyFrac + h.Interference()
}

// VMHandle is the cluster's view of one logical VM across its boot
// generations (a migration retires the current instance and boots a
// successor on the destination host).
type VMHandle struct {
	Spec VMSpec
	idx  int

	admitted  bool
	migrating bool
	host      *Host
	gen       int
	lastMove  sim.Time

	vm   *hypervisor.VM
	kern *guest.Kernel
	inst *workload.Instance

	// Server-only routing state. routed and servedSeen are control-
	// plane counters (routed++ on dispatch, servedSeen++ as served
	// records drain), so the router's load view is the outstanding
	// estimate routed-servedSeen — the slightly stale view a real
	// cluster front door has. delivered is the host-side count of
	// requests that reached a replica gate.
	gate       *workload.RemoteGate
	gates      []*workload.RemoteGate // every generation, for conservation audits
	carried    []workload.Request     // queued requests in transit during a switchover
	routed     int64
	servedSeen int64
	delivered  int64

	// Autoscaler lifecycle: a draining replica is cordoned while its
	// outstanding work finishes; a retired one has sealed its gate and
	// released its capacity (see autoscale.go).
	draining bool
	retired  bool

	// Windowed steal signal (migration victim detection), refreshed by
	// the monitor barrier task.
	prevSteal float64
	stealFrac float64
}

// Host returns the host the VM currently occupies (nil before
// admission).
func (hd *VMHandle) Host() *Host { return hd.host }

// Migrations returns how many times the VM has moved hosts.
func (hd *VMHandle) Migrations() int { return hd.gen }

// instName returns the per-generation instance name, e.g. "srv2#1"
// after one migration.
func (hd *VMHandle) instName() string {
	if hd.gen == 0 {
		return hd.Spec.Name
	}
	return fmt.Sprintf("%s#%d", hd.Spec.Name, hd.gen)
}

// Cluster ties the rack, the placement policy, the router, and the
// migration monitor together on one sharded deterministic engine.
type Cluster struct {
	cfg       Config
	sh        *sim.ShardedEngine
	ctl       *sim.Engine // shard 0: the control plane (arrivals + routing)
	lookahead sim.Time
	hosts     []*Host
	vms       []*VMHandle
	servers   []*VMHandle
	checker   *invariant.Checker // cluster-level invariants, audited at barriers
	watcher   *watch.Watcher

	// Decision audit log (nil when Config.Decisions is nil). decCtl is
	// the control shard's ring, where every cluster-level choice lands.
	decLog *decision.Log
	decCtl *decision.Ring

	arrivalRNG  *sim.RNG
	blackoutRNG *sim.RNG

	stats         *workload.ServerStats
	generated     int64
	buffered      []workload.Request // arrivals held back while no replica is live
	sloViolations int64
	migrations    int64
	lastRefresh   sim.Time
	blackouts     int64

	// Zone layer (see zone.go). zones is never empty: a nil Topology
	// yields one flat zone.
	topo             *topology.Topology
	zones            []*zoneState
	cordonedZones    int
	zoneOutageCount  int64
	failoverRouted   int64 // requests routed while some zone was dark
	zoneRouteScratch []topology.ZoneRoute
	zoneStatScratch  []topology.ZoneStats
	rampIdx          int

	// Autoscaler state (see autoscale.go).
	asLastUp     sim.Time
	asQuietSince sim.Time
	asSeq        int
	asCreated    []*VMHandle
	scaleUps     int64
	scaleDowns   int64

	// Phase SLO accounting (len(SLOPhases)+1 buckets), filled at drain.
	phaseServed []int64
	phaseViols  []int64

	// pendingViols defers cluster-level invariant violations to the
	// next barrier drain: a violation may be recorded mid-window (a
	// lookahead trip during routing), where the watcher — which reads
	// every host — must not run.
	pendingViols []invariant.Violation
}

// ctlShard is the control plane's shard index; host i runs on shard
// i+1.
const ctlShard = 0

// New builds a cluster but does not run it.
func New(cfg Config) (*Cluster, error) {
	if cfg.Hosts <= 0 || cfg.PCPUsPerHost <= 0 {
		return nil, fmt.Errorf("cluster: need at least one host and one pCPU (got %d×%d)", cfg.Hosts, cfg.PCPUsPerHost)
	}
	if cfg.Policy == 0 {
		cfg.Policy = LeastLoaded
	}
	if cfg.Overcommit <= 0 {
		cfg.Overcommit = 1.5
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 500 * sim.Millisecond
	}
	if cfg.StealTrigger <= 0 {
		cfg.StealTrigger = 0.1
	}
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 1.3
	}
	if cfg.AuditInterval <= 0 {
		cfg.AuditInterval = 50 * sim.Millisecond
	}
	if cfg.Lookahead < 0 {
		return nil, fmt.Errorf("cluster: negative lookahead %v", cfg.Lookahead)
	}
	if cfg.Lookahead == 0 {
		cfg.Lookahead = DefaultLookahead
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: negative shard pool %d", cfg.Shards)
	}
	if len(cfg.VMs) == 0 {
		return nil, fmt.Errorf("cluster: no VMs to place")
	}
	for _, s := range cfg.VMs {
		if s.Kind != KindServer && s.Kind != KindAntagonist {
			return nil, fmt.Errorf("cluster: VM %q has no kind", s.Name)
		}
		if s.VCPUs <= 0 {
			return nil, fmt.Errorf("cluster: VM %q has %d vCPUs", s.Name, s.VCPUs)
		}
	}
	for i, st := range cfg.Ramp {
		if st.Arrival <= 0 {
			return nil, fmt.Errorf("cluster: ramp stage %d arrival %v not positive", i, st.Arrival)
		}
		if i > 0 && st.At <= cfg.Ramp[i-1].At {
			return nil, fmt.Errorf("cluster: ramp stage %d at %v does not advance", i, st.At)
		}
	}
	if cfg.Autoscale != nil {
		if cfg.Watch == nil || len(cfg.Watch.Rules) == 0 {
			return nil, fmt.Errorf("cluster: autoscaler needs the SLO watchdog with at least one burn-rate rule")
		}
		if cfg.Autoscale.Template.Kind != KindServer || cfg.Autoscale.Template.VCPUs <= 0 {
			return nil, fmt.Errorf("cluster: autoscaler template must be a server spec with vCPUs")
		}
		if cfg.Autoscale.Max < 1 {
			return nil, fmt.Errorf("cluster: autoscaler max %d < 1", cfg.Autoscale.Max)
		}
		as := cfg.Autoscale.withDefaults()
		cfg.Autoscale = &as
	}

	sh := sim.NewSharded(cfg.Hosts+1, cfg.Lookahead)
	workers := cfg.Shards
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > cfg.Hosts+1 {
			workers = cfg.Hosts + 1
		}
	}
	sh.SetWorkers(workers)

	c := &Cluster{
		cfg:         cfg,
		sh:          sh,
		ctl:         sh.Shard(ctlShard),
		lookahead:   cfg.Lookahead,
		arrivalRNG:  sim.NewRNG(cfg.Seed ^ 0xc1a57e12),
		blackoutRNG: sim.NewRNG(cfg.Seed ^ 0xb1ac0a7e),
		stats:       &workload.ServerStats{Latency: &metrics.Reservoir{}},
	}

	if cfg.Watch != nil {
		c.watcher = watch.New(*cfg.Watch)
		c.sh.EveryBarrier(c.watcher.Interval(), "watch-epoch", func() {
			c.watcher.RunEpoch(c.sh.Now())
		})
	}

	if cfg.Decisions != nil {
		c.decLog = decision.NewLog(cfg.Hosts+1, *cfg.Decisions)
		c.decLog.Label(ctlShard, "ctl")
		c.decCtl = c.decLog.Ring(ctlShard)
	}

	for i := 0; i < cfg.Hosts; i++ {
		reg := obs.NewRegistry()
		var inj *fault.Injector
		if !cfg.Faults.Zero() {
			seed := cfg.FaultSeed
			if seed == 0 {
				seed = cfg.Seed ^ 0xfa017eed
			}
			inj = fault.NewInjector(cfg.Faults, seed^uint64(i+1)*0x9e3779b97f4a7c15, reg)
		}
		hc := hypervisor.DefaultConfig(cfg.PCPUsPerHost)
		hc.Strategy = cfg.Strategy
		hc.LoadBalance = true
		hc.Metrics = reg
		hc.Faults = inj
		hc.Seed = cfg.Seed ^ uint64(i+1)*0x9e3779b97f4a7c15
		c.decLog.Label(i+1, fmt.Sprintf("host%d", i))
		hc.Decisions = c.decLog.Ring(i + 1)
		if cfg.TuneHV != nil {
			cfg.TuneHV(&hc)
		}
		if c.watcher != nil && hc.Trace == nil {
			// The flight recorder wants each host's recent scheduling
			// events; a bounded ring keeps the cost flat.
			hc.Trace = trace.NewLog(4096)
		}
		eng := sh.Shard(i + 1)
		host := &Host{
			ID:  i,
			HV:  hypervisor.New(eng, hc),
			Reg: reg,
			inj: inj,
			eng: eng,
		}
		if cfg.Spans != nil {
			host.spans = span.NewTracer()
		}
		c.hosts = append(c.hosts, host)
		if c.watcher != nil {
			c.wireWatchHost(host, hc.Trace)
		}
	}

	if err := c.buildZones(); err != nil {
		return nil, err
	}
	for i, o := range cfg.ZoneOutages {
		if o.Zone < 0 || o.Zone >= len(c.zones) {
			return nil, fmt.Errorf("cluster: zone outage %d targets zone %d of %d", i, o.Zone, len(c.zones))
		}
		if o.At < 0 || o.For <= 0 {
			return nil, fmt.Errorf("cluster: zone outage %d needs at >= 0 and for > 0", i)
		}
	}
	if len(cfg.SLOPhases) > 0 {
		c.phaseServed = make([]int64, len(cfg.SLOPhases)+1)
		c.phaseViols = make([]int64, len(cfg.SLOPhases)+1)
	}

	if cfg.Invariants {
		// Cluster-level invariants audit at barriers (they read every
		// shard); each host additionally runs its own checker over its
		// hypervisor and resident kernels, on its own engine.
		c.checker = invariant.New(cfg.AuditInterval)
		c.checker.Observe(c)
		c.checker.OnViolation = func(v invariant.Violation) {
			c.pendingViols = append(c.pendingViols, v)
		}
		c.ctl.OnViolation = func(name, detail string) {
			c.checker.Record(c.ctl.Now(), name, detail)
		}
		c.sh.OnViolation = func(name, detail string) {
			c.checker.Record(c.sh.Now(), name, detail)
		}
		c.sh.EveryBarrier(cfg.AuditInterval, "invariant-audit", func() {
			c.checker.AuditAt(c.sh.Now())
		})
		for _, h := range c.hosts {
			h := h
			h.checker = invariant.New(cfg.AuditInterval)
			h.checker.Observe(h.HV)
			h.checker.Attach(h.eng)
			h.checker.OnViolation = func(v invariant.Violation) {
				h.outbox.viols = append(h.outbox.viols, v)
			}
		}
	}

	if c.watcher != nil {
		c.watcher.AddFeed(c.feedWatcher)
		if cfg.Spans != nil {
			cfg.Spans.OnFinish = c.watcher.Recorder().ObserveSpan
		}
	}

	// The barrier drain: every host's observations flow to the control
	// plane before any barrier task at the same instant runs.
	c.sh.OnBarrier(c.drain)

	// VM arrivals, in a stable order at equal times. Admission reads
	// and mutates the whole rack (placement), so it is a barrier task.
	handles := make([]*VMHandle, len(cfg.VMs))
	for i, spec := range cfg.VMs {
		if spec.Weight <= 0 {
			spec.Weight = 256
		}
		if spec.Threads <= 0 {
			spec.Threads = spec.VCPUs
		}
		handles[i] = &VMHandle{Spec: spec, idx: i}
	}
	sort.SliceStable(handles, func(a, b int) bool { return handles[a].Spec.ArriveAt < handles[b].Spec.ArriveAt })
	for _, hd := range handles {
		hd := hd
		c.vms = append(c.vms, hd)
		if hd.Spec.Kind == KindServer {
			c.servers = append(c.servers, hd)
		}
		c.sh.AtBarrier(hd.Spec.ArriveAt, "vm-arrive-"+hd.Spec.Name, func() { c.admit(hd) })
	}

	// Cluster-wide request stream (open loop, exponential) on the
	// control shard.
	if cfg.Arrival > 0 && cfg.Duration > 0 {
		c.ctl.After(c.arrivalRNG.Exp(c.arrivalMean(0)), "cluster-arrival", c.nextArrival)
	}

	// Interference monitor (signal refresh + migration trigger): reads
	// every host's registry, so it runs at barriers.
	c.sh.EveryBarrier(cfg.MonitorInterval, "cluster-monitor", c.monitor)

	// Cluster-level host blackouts.
	if cfg.HostBlackoutEvery > 0 && cfg.HostBlackoutFor > 0 {
		c.sh.EveryBarrier(cfg.HostBlackoutEvery, "cluster-blackout", c.hostBlackout)
	}

	// Zone outages and the autoscaler register last, so configurations
	// without them keep the exact barrier-task sequence (and therefore
	// byte-identical output) of the pre-zone cluster.
	for _, o := range cfg.ZoneOutages {
		o := o
		z := c.zones[o.Zone]
		c.sh.AtBarrier(o.At, "zone-outage-"+z.name, func() { c.startZoneOutage(z, o.For) })
		c.sh.AtBarrier(o.At+o.For, "zone-restore-"+z.name, func() { c.endZoneOutage(z) })
	}
	if cfg.Autoscale != nil {
		// Registered after the watch epoch task: at a shared instant the
		// epoch's evaluation runs first, so the tick reads fresh state.
		c.sh.EveryBarrier(cfg.Autoscale.Interval, "autoscale", c.autoscaleTick)
		// Any rising-edge alert resets the quiet clock even if the rule
		// clears again between ticks — a brief page still delays
		// scale-down by a full DownAfter.
		c.watcher.AddAlertHook(func(watch.Alert) { c.asQuietSince = c.sh.Now() })
	}

	return c, nil
}

// drain runs at every barrier, before due barrier tasks: it folds each
// host's outbox into the control plane in host order — served requests
// into the latency reservoir, SLO signal, and router bookkeeping;
// occupancy intervals and invariant trips into the watchdog; finished
// spans into the minting tracer. Host order then host-local completion
// order is the canonical merge key, so the result is independent of
// the worker pool.
func (c *Cluster) drain(now sim.Time) {
	for _, h := range c.hosts {
		ob := &h.outbox
		for _, hd := range ob.delivered {
			hd.delivered++
		}
		ob.delivered = ob.delivered[:0]
		for _, b := range ob.bounced {
			b.hd.delivered++
			if b.hd.gate != nil && !b.hd.gate.Closed() {
				// The VM already restarted elsewhere; hand the request
				// straight to the live generation.
				b.hd.host.spans.Adopt(b.req.Span)
				b.hd.gate.SubmitReq(b.req)
			} else {
				b.hd.carried = append(b.hd.carried, b.req)
			}
		}
		ob.bounced = ob.bounced[:0]
		for _, r := range ob.served {
			r.hd.servedSeen++
			c.stats.Requests++
			c.stats.Latency.Add(r.lat)
			violated := c.cfg.SLO > 0 && r.lat > c.cfg.SLO
			if violated {
				c.sloViolations++
			}
			if c.phaseServed != nil {
				pi := 0
				for pi < len(c.cfg.SLOPhases) && r.at >= c.cfg.SLOPhases[pi] {
					pi++
				}
				c.phaseServed[pi]++
				if violated {
					c.phaseViols[pi]++
				}
			}
			c.watcher.ObserveRequest(r.at, violated)
		}
		ob.served = ob.served[:0]
		for _, v := range ob.viols {
			c.watcher.RecordInvariant(v.At, v.Rule, v.Detail)
		}
		ob.viols = ob.viols[:0]
		if c.cfg.Spans != nil {
			c.cfg.Spans.AbsorbFinished(h.spans.TakeFinished())
		}
	}
	c.drainOccupancy()
	if len(c.pendingViols) > 0 {
		for _, v := range c.pendingViols {
			c.watcher.RecordInvariant(v.At, v.Rule, v.Detail)
		}
		c.pendingViols = c.pendingViols[:0]
	}
	// The decision log merges under the same canonical key as the mail
	// above: shard index order within the barrier, stable by time.
	c.decLog.Merge()
}

// drainOccupancy flushes the hosts' occupancy intervals into the
// watchdog store. Split out of drain because the watch feed re-syncs
// occupancy accounting mid-barrier and must flush again before
// attribution runs (see feedWatcher).
func (c *Cluster) drainOccupancy() {
	if c.watcher == nil {
		return
	}
	for _, h := range c.hosts {
		for _, r := range h.outbox.occ {
			c.watcher.AddOccupancy(r.at, h.Name(), r.vm, r.pcpu, r.dur)
		}
		h.outbox.occ = h.outbox.occ[:0]
	}
}

// Sharded exposes the coordinator (tests, benchmarks).
func (c *Cluster) Sharded() *sim.ShardedEngine { return c.sh }

// Engine exposes the control shard's engine (for tests).
func (c *Cluster) Engine() *sim.Engine { return c.ctl }

// Watcher returns the online SLO watchdog, or nil when Config.Watch
// was not set.
func (c *Cluster) Watcher() *watch.Watcher { return c.watcher }

// Decisions returns the decision audit log, or nil when
// Config.Decisions was not set.
func (c *Cluster) Decisions() *decision.Log { return c.decLog }

// Hosts returns the rack.
func (c *Cluster) Hosts() []*Host { return c.hosts }

// VMs returns the logical VM handles in arrival order.
func (c *Cluster) VMs() []*VMHandle { return c.vms }

// capacity is the committed-vCPU bound per host.
func (c *Cluster) capacity() int {
	return int(c.cfg.Overcommit * float64(c.cfg.PCPUsPerHost))
}

// admit places hd on a host chosen by the policy and boots it there.
// Runs at a barrier: placement reads every host's signal and the boot
// mutates the chosen host's stack.
func (c *Cluster) admit(hd *VMHandle) {
	host := c.place(hd)
	host.committed += hd.Spec.VCPUs
	if hd.Spec.Sensitive {
		host.sensitive++
	}
	hd.host = host
	hd.admitted = true
	hd.lastMove = c.sh.Now() // starts the migration residency clock
	if hd.Spec.Kind == KindServer {
		// Router membership is per zone, in admission order (the JSQ
		// tie-break order). Migration is intra-zone, so membership is
		// set once here.
		z := c.zoneOf(host)
		z.servers = append(z.servers, hd)
	}
	c.registerWatchVM(hd)
	c.boot(hd, host, nil)
	if hd.Spec.Kind == KindServer {
		c.flushBuffered()
	}
}

// boot creates hd's next instance on host. A non-nil snapshot seeds the
// new VM's scheduler state (migration restore path). Barrier context.
func (c *Cluster) boot(hd *VMHandle, host *Host, snap *hypervisor.VMSnapshot) {
	cfg := c.cfg
	saCapable := cfg.Strategy == hypervisor.StrategyIRS && cfg.IRS
	vm := host.HV.NewVM(hd.instName(), hd.Spec.VCPUs, hd.Spec.Weight, saCapable)
	if snap != nil {
		if err := host.HV.RestoreVM(vm, *snap); err != nil {
			panic("cluster: " + err.Error())
		}
	}

	gc := guest.DefaultConfig()
	gc.IRS = saCapable
	gc.Metrics = host.Reg
	gc.Faults = host.inj
	gc.Seed = cfg.Seed ^ uint64(hd.idx+1)*0x9e37 ^ uint64(hd.gen)*0x517cc1b7
	if cfg.TuneGuest != nil {
		cfg.TuneGuest(&gc)
	}
	kern := guest.NewKernel(host.HV, vm, gc)

	switch hd.Spec.Kind {
	case KindServer:
		spec := workload.ServerSpec{
			Name:    hd.instName(),
			Threads: hd.Spec.Threads,
			Service: cfg.Service,
		}
		// Each instance gets private stats (ignored); the cluster-level
		// reservoir is fed from the served records at barrier drains so
		// its insertion order cannot depend on the worker pool.
		inst, gate := workload.NewRemoteServer(kern, spec, gc.Seed^0x5e12e, nil)
		gate.OnServed = func(lat sim.Time) {
			host.outbox.served = append(host.outbox.served, servedRec{at: kern.Now(), lat: lat, hd: hd})
		}
		hd.inst = inst
		hd.gate = gate
		hd.gates = append(hd.gates, gate)
		inst.Start()
	case KindAntagonist:
		hd.inst = workload.NewHog(kern, hd.Spec.Threads)
		hd.inst.Start()
	}
	hd.vm = vm
	hd.kern = kern
	kern.Start()
	if host.checker != nil {
		host.checker.Observe(kern)
	}
}

// Run drives the simulation to Duration+Drain and collects the result.
func (c *Cluster) Run() (*Result, error) {
	if err := c.sh.Run(c.cfg.Duration + c.cfg.Drain); err != nil {
		return nil, err
	}
	if c.checker != nil {
		c.checker.AuditAt(c.sh.Now())
	}
	c.decLog.Merge() // records minted after the last barrier
	return c.result(), nil
}

// HostLoad is the per-host slice of a Result.
type HostLoad struct {
	ID        int
	Committed int
	VMs       int
}

// PhaseStats is the SLO accounting for one Config.SLOPhases bucket.
type PhaseStats struct {
	Served, Violations int64
	Rate               float64
}

// Result summarizes one cluster run.
type Result struct {
	Generated, Served, Unserved int64
	P50, P99, P999              sim.Time
	MeanLatency                 sim.Time
	SLOViolations               int64
	SLORate                     float64 // violations / served
	Migrations                  int64
	Blackouts                   int64
	FaultsInjected              int64
	Violations                  int64
	Events                      uint64 // engine events dispatched, all shards
	Hosts                       []HostLoad

	// Zone / control-plane outputs (zero without a multi-zone topology
	// or the respective feature).
	Zones       int
	ZoneOutages int64
	Failover    int64 // requests routed while some zone was dark
	Replicas    int   // live server replicas at end of run
	ScaleUps    int64
	ScaleDowns  int64
	Alerts      int64
	Phases      []PhaseStats // per-SLOPhases bucket, when configured
}

func (c *Cluster) result() *Result {
	res := &Result{
		Generated:     c.generated,
		Served:        c.stats.Requests,
		Unserved:      c.generated - c.stats.Requests,
		P50:           c.stats.Latency.Percentile(50),
		P99:           c.stats.Latency.Percentile(99),
		P999:          c.stats.Latency.Percentile(99.9),
		MeanLatency:   c.stats.Latency.Mean(),
		SLOViolations: c.sloViolations,
		Migrations:    c.migrations,
		Blackouts:     c.blackouts,
		Events:        c.sh.Fired(),
	}
	if res.Served > 0 {
		res.SLORate = float64(c.sloViolations) / float64(res.Served)
	}
	for _, h := range c.hosts {
		if h.inj != nil {
			res.FaultsInjected += h.inj.Total()
		}
		res.Hosts = append(res.Hosts, HostLoad{ID: h.ID, Committed: h.committed, VMs: len(h.HV.VMs())})
	}
	if c.checker != nil {
		res.Violations = c.checker.Count()
	}
	for _, h := range c.hosts {
		if h.checker != nil {
			res.Violations += h.checker.Count()
		}
	}
	res.Zones = len(c.zones)
	res.ZoneOutages = c.zoneOutageCount
	res.Failover = c.failoverRouted
	res.Replicas = c.liveReplicas()
	res.ScaleUps = c.scaleUps
	res.ScaleDowns = c.scaleDowns
	if c.watcher != nil {
		res.Alerts = int64(len(c.watcher.Alerts()))
	}
	for i := range c.phaseServed {
		p := PhaseStats{Served: c.phaseServed[i], Violations: c.phaseViols[i]}
		if p.Served > 0 {
			p.Rate = float64(p.Violations) / float64(p.Served)
		}
		res.Phases = append(res.Phases, p)
	}
	return res
}

// Zones returns the zone count (1 for a flat topology).
func (c *Cluster) Zones() int { return len(c.zones) }

// ZoneCordoned reports whether zone zi is currently cordoned.
func (c *Cluster) ZoneCordoned(zi int) bool { return c.zones[zi].cordoned }

// Stats exposes the cluster-level server statistics (latency
// reservoir), fed at barrier drains.
func (c *Cluster) Stats() *workload.ServerStats { return c.stats }

// AuditInvariants implements invariant.Source: no logical VM may be
// lost or double-placed across migrations, committed-vCPU bookkeeping
// must match placements, and every generated request must be accounted
// for (served, queued, in service, carried by a migration, in transit
// to a host, or held by the router). Runs at barriers, where every
// shard is parked.
func (c *Cluster) AuditInvariants(report func(rule, detail string)) {
	perHost := make([]int, len(c.hosts))
	for _, hd := range c.vms {
		if hd.admitted && !hd.retired {
			perHost[hd.host.ID] += hd.Spec.VCPUs
		}
	}
	for _, h := range c.hosts {
		if perHost[h.ID] != h.committed {
			report("cluster-committed", fmt.Sprintf("%s commits %d vCPUs, placements sum to %d",
				h.Name(), h.committed, perHost[h.ID]))
		}
	}

	var routed int64
	for _, hd := range c.servers {
		if !hd.admitted {
			continue
		}
		open := 0
		var served, inflight int64
		for _, g := range hd.gates {
			if !g.Closed() {
				open++
			}
			served += g.Served()
			inflight += g.InFlight()
		}
		if hd.retired {
			// A retired replica sealed its gate at retirement; anything
			// open means the drain-then-retire protocol broke.
			if open != 0 {
				report("cluster-single-instance", fmt.Sprintf("%s retired with %d open gates", hd.Spec.Name, open))
			}
		} else if hd.migrating {
			if open > 1 {
				report("cluster-single-instance", fmt.Sprintf("%s has %d open gates mid-migration", hd.Spec.Name, open))
			}
		} else if open != 1 {
			report("cluster-single-instance", fmt.Sprintf("%s has %d open gates", hd.Spec.Name, open))
		}
		queued := int64(0)
		if hd.gate != nil {
			queued = int64(hd.gate.QueueLen())
		}
		total := served + inflight + queued + int64(len(hd.carried))
		if total != hd.delivered {
			report("cluster-request-conservation", fmt.Sprintf(
				"%s delivered %d != served %d + in-flight %d + queued %d + carried %d",
				hd.Spec.Name, hd.delivered, served, inflight, queued, len(hd.carried)))
		}
		if hd.delivered > hd.routed {
			report("cluster-request-conservation", fmt.Sprintf(
				"%s delivered %d > routed %d", hd.Spec.Name, hd.delivered, hd.routed))
		}
		routed += hd.routed
	}
	if c.generated != routed+int64(len(c.buffered)) {
		report("cluster-request-conservation", fmt.Sprintf(
			"generated %d != routed %d + held back %d", c.generated, routed, len(c.buffered)))
	}
}
