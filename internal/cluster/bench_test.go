package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// Simulation-throughput benchmarks: how many engine events per
// wall-clock second the cluster dispatches, serially and on the
// sharded coordinator. events/sec is the hardware-portable progress
// metric the benchjson gate tracks (higher is better) — on a 1-core
// runner the sharded run cannot beat serial by wall time, but a
// coordinator or mailbox regression still shows up as a throughput
// drop on either row.

// benchCluster runs the default rig at the given shard width and
// reports events/sec.
func benchCluster(b *testing.B, shards int) {
	b.Helper()
	var events uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Shards = shards
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		wall += time.Since(start)
		events += res.Events
	}
	if wall > 0 {
		b.ReportMetric(float64(events)/wall.Seconds(), "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkClusterSerial(b *testing.B)  { benchCluster(b, 1) }
func BenchmarkClusterSharded(b *testing.B) { benchCluster(b, 0) }

// BenchmarkClusterShardedRack scales the rig to a 16-host rack — wide
// enough that the per-host engine pool has real parallelism to win on
// multi-core runners.
func BenchmarkClusterShardedRack(b *testing.B) {
	var events uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Hosts = 16
		cfg.Duration = 5 * sim.Second
		cfg.Drain = sim.Second
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		wall += time.Since(start)
		events += res.Events
	}
	if wall > 0 {
		b.ReportMetric(float64(events)/wall.Seconds(), "events/sec")
	}
}
