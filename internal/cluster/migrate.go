package cluster

import (
	"fmt"

	"repro/internal/decision"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// Live migration follows the classic pre-copy shape: while the VM keeps
// serving on the source (and the router cordons it so its queue
// drains), state is copied for CopyPerVCPU×vCPUs; then the VM pauses
// for MigrationPause (switchover), its scheduler state is snapshotted,
// its not-yet-started requests are carried over, and a successor
// instance boots on the destination seeded with the snapshot. Carried
// requests keep their original arrival stamps, so the downtime is paid
// in their measured latency — migrations are never free.
//
// Every step here reads or mutates more than one host (the signal
// sweep, the destination scorer, the cross-host reboot), so the whole
// state machine runs as coordinator barrier tasks with all shards
// parked.

// monitor refreshes the interference signal and, when enabled,
// considers one migration per tick. Barrier task.
func (c *Cluster) monitor() {
	c.refreshSignals()
	if c.cfg.Migration {
		c.maybeMigrate()
	}
}

// maybeMigrate moves the worst-suffering server VM — the one whose
// measured per-vCPU steal fraction over the last window exceeds
// StealTrigger — to the least-interfering host with capacity. One
// migration is in flight at a time, each VM has a cooldown, and
// HotThreshold hysteresis stops ping-ponging between near-equal hosts.
func (c *Cluster) maybeMigrate() {
	for _, hd := range c.servers {
		if hd.migrating {
			return
		}
	}
	now := c.sh.Now()

	open := 0
	for _, hd := range c.servers {
		if hd.admitted && hd.gate != nil && !hd.gate.Closed() {
			open++
		}
	}
	var victim *VMHandle
	for _, hd := range c.servers {
		if !hd.admitted || hd.gate == nil || hd.gate.Closed() {
			continue
		}
		// An autoscaler-draining replica is already on its way out, and
		// a replica in a cordoned (outaged) zone has nowhere to go —
		// migration is intra-zone.
		if hd.draining || (len(c.zones) > 1 && c.zoneOf(hd.host).cordoned) {
			continue
		}
		// Residency: a VM is not movable until MigrationCooldown after
		// its admission or last move, so transient balancer noise right
		// after placement cannot evict it.
		if now-hd.lastMove < c.cfg.MigrationCooldown {
			continue
		}
		// Never cordon the only live replica: with nowhere to route,
		// the whole stream would stall for the copy+pause window.
		if open <= 1 {
			continue
		}
		if hd.stealFrac < c.cfg.StealTrigger {
			continue
		}
		if victim == nil || hd.stealFrac > victim.stealFrac {
			victim = hd
		}
	}
	if victim == nil {
		return
	}
	hot := victim.host

	// Destination: re-run the interference-aware placement scorer for
	// the victim over the other hosts, so a host that is "cool" only
	// because its hogs steal from each other is not chosen for a
	// latency-sensitive VM. Candidates stay inside the victim's zone —
	// a zone is a failure/latency domain, and cross-zone capacity moves
	// are the autoscaler's job, not the hot-spot balancer's.
	candidates := c.hosts
	if len(c.zones) > 1 {
		candidates = c.zoneOf(hot).hosts
	}
	cap := c.capacity()
	rec := c.decCtl.Wants(decision.KindMigrate)
	var cands []decision.Candidate
	var cool *Host
	var coolScore float64
	for _, h := range candidates {
		if h == hot || h.committed+victim.Spec.VCPUs > cap {
			continue
		}
		s := c.placementScore(h, victim, cap)
		if rec {
			cands = append(cands, decision.Candidate{
				Name:   h.Name(),
				Score:  s,
				Reason: fmt.Sprintf("busy=%.3f intf=%.3f committed=%d", h.busyFrac, h.Interference(), h.committed),
			})
		}
		if cool == nil || s < coolScore {
			cool, coolScore = h, s
		}
	}
	if cool == nil {
		return
	}
	// Hysteresis: the move must be a clear win (the epsilon keeps a
	// cold rack from dividing near-zero scores).
	if hot.Score() <= c.cfg.HotThreshold*coolScore+0.02 {
		return
	}
	if rec {
		c.recordMigrate(victim, hot, cool, cands)
	}
	c.startMigration(victim, cool)
}

// startMigration runs the pre-copy phase, then the switchover. The copy
// runs for at least one transit latency so every request routed before
// the cordon has landed (or bounced) by the time the gate seals.
func (c *Cluster) startMigration(hd *VMHandle, dest *Host) {
	hd.migrating = true // cordons the VM: router stops feeding it
	now := c.sh.Now()
	hd.lastMove = now
	copyTime := c.cfg.CopyPerVCPU * sim.Time(hd.Spec.VCPUs)
	if copyTime < c.lookahead {
		copyTime = c.lookahead
	}
	c.sh.AtBarrier(now+copyTime, "migrate-copy-"+hd.Spec.Name, func() {
		// Switchover: freeze scheduler state, seal the gate, carry the
		// requests no worker has started.
		snap := hd.host.HV.SnapshotVM(hd.vm)
		hd.carried = append(hd.carried, hd.gate.Close()...)
		c.sh.AtBarrier(c.sh.Now()+c.cfg.MigrationPause, "migrate-switch-"+hd.Spec.Name, func() {
			c.completeMigration(hd, dest, snap)
		})
	})
}

// completeMigration boots the successor instance on dest, re-submits
// the carried requests with their original arrival stamps, and reopens
// the VM to the router. The retired instance idles on the source until
// the end of the run (shell teardown is not modeled); its drained
// workers have already exited.
func (c *Cluster) completeMigration(hd *VMHandle, dest *Host, snap hypervisor.VMSnapshot) {
	src := hd.host
	src.committed -= hd.Spec.VCPUs
	dest.committed += hd.Spec.VCPUs
	if hd.Spec.Sensitive {
		src.sensitive--
		dest.sensitive++
	}
	hd.gen++
	hd.host = dest
	hd.prevSteal = 0      // successor VM's steal clock restarts on dest
	c.registerWatchVM(hd) // attribution follows the VM to its new host
	c.boot(hd, dest, &snap)
	carried := hd.carried
	hd.carried = nil
	for _, req := range carried {
		// The span followed the request to the source host's collector;
		// its Finish will now happen on the destination shard.
		dest.spans.Adopt(req.Span)
		hd.gate.SubmitReq(req)
	}
	hd.migrating = false
	c.migrations++
	c.flushBuffered()
}

// hostBlackout pauses every vCPU of one randomly chosen host for
// HostBlackoutFor — the rack-level fault model. Migrations and the
// invariant audits must ride it out. Barrier task.
func (c *Cluster) hostBlackout() {
	h := c.hosts[c.blackoutRNG.Intn(len(c.hosts))]
	c.blackouts++
	for _, vm := range h.HV.VMs() {
		for _, v := range vm.VCPUs {
			h.HV.PauseVCPU(v, c.cfg.HostBlackoutFor)
		}
	}
}
