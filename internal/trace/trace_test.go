package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	l := NewLog(0)
	l.Record(10, KindSA, "fg/v0", "sent")
	l.Recordf(20, KindMigrate, "task-1", "cpu%d -> cpu%d", 0, 1)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].At != 10 || evs[0].Kind != KindSA {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	if evs[1].Detail != "cpu0 -> cpu1" {
		t.Fatalf("bad formatted detail: %q", evs[1].Detail)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Record(sim.Time(i), KindNote, "s", "")
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", l.Dropped())
	}
	if l.Events()[0].At != 7 {
		t.Fatalf("oldest retained = %v, want 7", l.Events()[0].At)
	}
}

func TestFilter(t *testing.T) {
	l := NewLog(0)
	l.Record(1, KindSA, "a", "sent")
	l.Record(2, KindSA, "b", "sent")
	l.Record(3, KindTask, "a", "blocked")
	if got := len(l.Filter(KindSA, "")); got != 2 {
		t.Fatalf("Filter(SA) = %d", got)
	}
	if got := len(l.Filter(KindSA, "a")); got != 1 {
		t.Fatalf("Filter(SA, a) = %d", got)
	}
	if got := len(l.Filter(KindMigrate, "")); got != 0 {
		t.Fatalf("Filter(Migrate) = %d", got)
	}
}

func TestDumpWindow(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 10; i++ {
		l.Record(sim.Time(i)*sim.Millisecond, KindNote, "s", "x")
	}
	var b strings.Builder
	if err := l.Dump(&b, 3*sim.Millisecond, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(b.String(), "\n")
	if lines != 3 {
		t.Fatalf("dumped %d lines, want 3 (t=3,4,5ms)", lines)
	}
}

func TestSummary(t *testing.T) {
	l := NewLog(0)
	l.Record(1, KindSA, "a", "")
	l.Record(2, KindSA, "a", "")
	l.Record(3, KindSwitch, "p0", "")
	s := l.Summary()
	if !strings.Contains(s, "sa=2") || !strings.Contains(s, "switch=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 5 * sim.Millisecond, Kind: KindSA, Subject: "fg/v0", Detail: "sent"}
	s := e.String()
	if !strings.Contains(s, "5.000ms") || !strings.Contains(s, "sa") || !strings.Contains(s, "fg/v0") {
		t.Fatalf("event string = %q", s)
	}
}
