package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	l := NewLog(0)
	l.Record(10, KindSA, "fg/v0", "sent")
	l.Recordf(20, KindMigrate, "task-1", "cpu%d -> cpu%d", 0, 1)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].At != 10 || evs[0].Kind != KindSA {
		t.Fatalf("bad first event: %+v", evs[0])
	}
	if evs[1].Detail != "cpu0 -> cpu1" {
		t.Fatalf("bad formatted detail: %q", evs[1].Detail)
	}
}

func TestRingEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 10; i++ {
		l.Record(sim.Time(i), KindNote, "s", "")
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", l.Dropped())
	}
	if l.Events()[0].At != 7 {
		t.Fatalf("oldest retained = %v, want 7", l.Events()[0].At)
	}
}

func TestFilter(t *testing.T) {
	l := NewLog(0)
	l.Record(1, KindSA, "a", "sent")
	l.Record(2, KindSA, "b", "sent")
	l.Record(3, KindTask, "a", "blocked")
	if got := len(l.Filter(KindSA, "")); got != 2 {
		t.Fatalf("Filter(SA) = %d", got)
	}
	if got := len(l.Filter(KindSA, "a")); got != 1 {
		t.Fatalf("Filter(SA, a) = %d", got)
	}
	if got := len(l.Filter(KindMigrate, "")); got != 0 {
		t.Fatalf("Filter(Migrate) = %d", got)
	}
}

func TestDumpWindow(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 10; i++ {
		l.Record(sim.Time(i)*sim.Millisecond, KindNote, "s", "x")
	}
	var b strings.Builder
	if err := l.Dump(&b, 3*sim.Millisecond, 5*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(b.String(), "\n")
	if lines != 3 {
		t.Fatalf("dumped %d lines, want 3 (t=3,4,5ms)", lines)
	}
}

func TestSummary(t *testing.T) {
	l := NewLog(0)
	l.Record(1, KindSA, "a", "")
	l.Record(2, KindSA, "a", "")
	l.Record(3, KindSwitch, "p0", "")
	s := l.Summary()
	if !strings.Contains(s, "sa=2") || !strings.Contains(s, "switch=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	l := NewLog(2)
	l.Record(1, KindNote, "a", "")
	l.Record(2, KindNote, "b", "")
	evs := l.Events()
	// Recording past the limit evicts underneath; the earlier slice must
	// be insulated from that.
	l.Record(3, KindNote, "c", "")
	if evs[0].At != 1 || evs[1].At != 2 {
		t.Fatalf("snapshot mutated by later Record: %+v", evs)
	}
	evs[0].Subject = "mutated"
	if l.Events()[0].Subject == "mutated" {
		t.Fatal("caller writes must not reach the log's ring")
	}
}

func TestDroppedAccumulatesAcrossEvictions(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Record(sim.Time(i), KindNote, "s", "")
	}
	if l.Dropped() != 3 {
		t.Fatalf("dropped = %d after first overflow burst, want 3", l.Dropped())
	}
	for i := 5; i < 9; i++ {
		l.Record(sim.Time(i), KindNote, "s", "")
	}
	// Eviction count must accumulate across separate bursts, not reset.
	if l.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", l.Dropped())
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
	if got := l.Events()[0].At; got != 7 {
		t.Fatalf("oldest retained = %v, want 7", got)
	}
}

func TestDumpWindowUnbounded(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 4; i++ {
		l.Record(sim.Time(i)*sim.Millisecond, KindNote, "s", "x")
	}
	// to == 0 means no upper bound: everything from 2 ms on.
	var b strings.Builder
	if err := l.Dump(&b, 2*sim.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 2 {
		t.Fatalf("dumped %d lines, want 2 (t=2,3ms)", lines)
	}
}

func TestDumpReportsDropped(t *testing.T) {
	l := NewLog(1)
	l.Record(1, KindNote, "s", "")
	l.Record(2, KindNote, "s", "")
	var b strings.Builder
	if err := l.Dump(&b, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1 earlier events dropped") {
		t.Fatalf("dump = %q", b.String())
	}
}

func TestSummaryOrdering(t *testing.T) {
	l := NewLog(0)
	// Record in reverse declaration order; Summary must render in fixed
	// kind order (vcpu, switch, sa, ...) regardless.
	l.Record(1, KindMigrate, "t", "")
	l.Record(2, KindSA, "v", "")
	l.Record(3, KindSA, "v", "")
	l.Record(4, KindVCPUState, "v", "")
	if got := l.Summary(); got != "vcpu=1 sa=2 migrate=1" {
		t.Fatalf("summary = %q", got)
	}
	empty := NewLog(0)
	if got := empty.Summary(); got != "" {
		t.Fatalf("empty summary = %q", got)
	}
}

func TestParseKinds(t *testing.T) {
	if m, err := ParseKinds(""); m != nil || err != nil {
		t.Fatalf("empty filter = %v, %v", m, err)
	}
	m, err := ParseKinds(" sa, migrate ")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || !m[KindSA] || !m[KindMigrate] {
		t.Fatalf("parsed = %v", m)
	}
	if _, err := ParseKinds("sa,bogus"); err == nil ||
		!strings.Contains(err.Error(), `"bogus"`) ||
		!strings.Contains(err.Error(), "vcpu") {
		t.Fatalf("unknown kind error = %v", err)
	}
	// Every advertised name must parse, and KindNames must cover every
	// declared kind.
	names := KindNames()
	if len(names) != int(KindNote) {
		t.Fatalf("KindNames lists %d kinds, want %d", len(names), int(KindNote))
	}
	for _, n := range names {
		if _, err := ParseKinds(n); err != nil {
			t.Errorf("valid kind %q rejected: %v", n, err)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 5 * sim.Millisecond, Kind: KindSA, Subject: "fg/v0", Detail: "sent"}
	s := e.String()
	if !strings.Contains(s, "5.000ms") || !strings.Contains(s, "sa") || !strings.Contains(s, "fg/v0") {
		t.Fatalf("event string = %q", s)
	}
}
