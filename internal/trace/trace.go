// Package trace records scheduling events from the hypervisor and
// guest kernels into a bounded in-memory log, for debugging scenarios
// and for rendering execution timelines (cmd/irstrace). Tracing is
// optional: components emit events through the Recorder interface only
// when one is attached.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a trace event.
type Kind int

const (
	// KindVCPUState is a hypervisor vCPU runstate transition.
	KindVCPUState Kind = iota + 1
	// KindSwitch is a pCPU context switch.
	KindSwitch
	// KindSA is a scheduler-activation event (sent/acked/expired).
	KindSA
	// KindTask is a guest task state transition.
	KindTask
	// KindMigrate is a guest task migration.
	KindMigrate
	// KindNote is a free-form annotation.
	KindNote
)

func (k Kind) String() string {
	switch k {
	case KindVCPUState:
		return "vcpu"
	case KindSwitch:
		return "switch"
	case KindSA:
		return "sa"
	case KindTask:
		return "task"
	case KindMigrate:
		return "migrate"
	case KindNote:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kindNames maps the user-facing names accepted by ParseKinds.
var kindNames = map[string]Kind{
	"vcpu":    KindVCPUState,
	"switch":  KindSwitch,
	"sa":      KindSA,
	"task":    KindTask,
	"migrate": KindMigrate,
	"note":    KindNote,
}

// KindNames returns the valid kind names in display order.
func KindNames() []string {
	return []string{"vcpu", "switch", "sa", "task", "migrate", "note"}
}

// ParseKinds parses a comma-separated kind filter such as "sa,migrate".
// An empty string means no filter and returns nil. Unknown names are an
// error (naming the offender and the valid set) instead of silently
// matching nothing.
func ParseKinds(arg string) (map[Kind]bool, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	m := map[Kind]bool{}
	for _, part := range strings.Split(arg, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		k, ok := kindNames[name]
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q (valid: %s)",
				name, strings.Join(KindNames(), ", "))
		}
		m[k] = true
	}
	if len(m) == 0 {
		return nil, nil
	}
	return m, nil
}

// Event is one recorded occurrence.
type Event struct {
	At      sim.Time
	Kind    Kind
	Subject string // vCPU/task/pCPU name
	Detail  string
}

func (e Event) String() string {
	return fmt.Sprintf("%12s %-8s %-12s %s", e.At, e.Kind, e.Subject, e.Detail)
}

// Log is a bounded ring of events. The zero value is unbounded until
// SetLimit is called; NewLog sets a limit up front.
type Log struct {
	limit   int
	events  []Event
	dropped uint64
}

// NewLog creates a log keeping at most limit events (0 = unbounded).
func NewLog(limit int) *Log {
	return &Log{limit: limit}
}

// Record appends an event, evicting the oldest past the limit.
func (l *Log) Record(at sim.Time, kind Kind, subject, detail string) {
	l.events = append(l.events, Event{At: at, Kind: kind, Subject: subject, Detail: detail})
	if l.limit > 0 && len(l.events) > l.limit {
		over := len(l.events) - l.limit
		l.events = l.events[over:]
		l.dropped += uint64(over)
	}
}

// Recordf formats and records an event.
func (l *Log) Recordf(at sim.Time, kind Kind, subject, format string, args ...any) {
	l.Record(at, kind, subject, fmt.Sprintf(format, args...))
}

// Events returns a copy of the retained events in order. Copying keeps
// callers insulated from later recording: the ring may evict or append
// underneath a slice handed out earlier.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Dropped reports how many events were evicted.
func (l *Log) Dropped() uint64 { return l.dropped }

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Filter returns events matching kind (and subject, when non-empty).
func (l *Log) Filter(kind Kind, subject string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind != kind {
			continue
		}
		if subject != "" && e.Subject != subject {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes the retained events to w, optionally restricted to a
// time window (to == 0 means no upper bound).
func (l *Log) Dump(w io.Writer, from, to sim.Time) error {
	for _, e := range l.events {
		if e.At < from || (to > 0 && e.At > to) {
			continue
		}
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		_, err := fmt.Fprintf(w, "(%d earlier events dropped)\n", l.dropped)
		return err
	}
	return nil
}

// Summary aggregates event counts by kind.
func (l *Log) Summary() string {
	counts := map[Kind]int{}
	for _, e := range l.events {
		counts[e.Kind]++
	}
	var b strings.Builder
	for k := KindVCPUState; k <= KindNote; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(&b, "%s=%d ", k, counts[k])
		}
	}
	return strings.TrimSpace(b.String())
}
