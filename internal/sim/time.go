// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue, cancellable timers, and seeded random
// number streams. All higher layers (hypervisor, guest OS, workloads)
// are driven by this kernel, so a given seed reproduces a run exactly.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Common durations expressed in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts a virtual time span back to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
