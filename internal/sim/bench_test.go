package sim

import (
	"testing"
)

// Engine hot-path microbenchmarks. These are the numbers the Makefile's
// bench target snapshots into BENCH_3.json and that bench-compare gates
// against: ns/op and allocs/op for schedule→fire, cancel, periodic
// re-arm, and a mixed churn workload approximating a simulation run.

// BenchmarkScheduleFire measures one-shot schedule + dispatch: the
// dominant engine operation in a simulation (every guest segment,
// timer, and SA round trip is at least one of these).
func BenchmarkScheduleFire(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, "bench", fn)
		eng.Step()
	}
	b.ReportMetric(float64(eng.Fired())*1e9/float64(b.Elapsed().Nanoseconds()+1), "events/sec")
}

// BenchmarkScheduleCancel measures schedule + cancel without firing:
// the defensive-timer pattern (slice timers, PLE windows, SA deadlines
// are mostly cancelled before they fire).
func BenchmarkScheduleCancel(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eng.After(1, "bench", fn)
		eng.Cancel(ev)
	}
}

// BenchmarkPeriodicFire measures the periodic re-arm path (ticks,
// accounting, audits).
func BenchmarkPeriodicFire(b *testing.B) {
	eng := NewEngine()
	eng.Every(1, "tick", func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// BenchmarkEngineChurn approximates a simulation's queue profile: a
// standing population of pending events with a mix of one-shot fires,
// cancellations, and periodic timers.
func BenchmarkEngineChurn(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	rng := NewRNG(1)
	// Standing population of 256 pending one-shots.
	for i := 0; i < 256; i++ {
		eng.After(Time(rng.Intn(1000)+1), "pop", fn)
	}
	eng.Every(64, "tick", func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eng.After(Time(rng.Intn(1000)+1), "churn", fn)
		if i%4 == 0 {
			eng.Cancel(ev)
		}
		eng.Step()
	}
}

// BenchmarkShardedSparse measures the coordinator's per-window
// overhead when most shards are idle: 16 shards, events on only one,
// multi-worker pool. Before the idle-shard skip every window paid 16
// worker wake/park round-trips; with it, 15 of those collapse to an
// inline clock advance (ROADMAP item 1's noted remaining upside).
func BenchmarkShardedSparse(b *testing.B) {
	const lookahead = Time(250_000)
	sh := NewSharded(16, lookahead)
	sh.SetWorkers(4)
	busy := sh.Shard(1)
	busy.Every(lookahead/4, "work", func() {})
	b.ReportAllocs()
	b.ResetTimer()
	horizon := Time(0)
	for i := 0; i < b.N; i++ {
		horizon += lookahead
		if err := sh.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sh.Fired())*1e9/float64(b.Elapsed().Nanoseconds()+1), "events/sec")
}
