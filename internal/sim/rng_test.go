package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestForkIndependentOfParentDraws(t *testing.T) {
	a := NewRNG(7)
	fork1 := a.Fork(3)
	a.Uint64() // advance parent
	b := NewRNG(7)
	fork2 := b.Fork(3)
	for i := 0; i < 10; i++ {
		if fork1.Uint64() != fork2.Uint64() {
			t.Fatal("fork depends on parent draw position only via state; expected equal streams")
		}
	}
}

func TestForkDistinctIDs(t *testing.T) {
	a := NewRNG(7)
	f1, f2 := a.Fork(1), a.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different ids produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestQuickIntnInRange(t *testing.T) {
	r := NewRNG(5)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickJitterBounds(t *testing.T) {
	r := NewRNG(6)
	f := func(d uint32, fRaw uint8) bool {
		base := Time(d) + 1
		frac := float64(fRaw%50+1) / 100 // 0.01 .. 0.50
		j := r.Jitter(base, frac)
		lo := Time(float64(base) * (1 - frac - 1e-9))
		hi := Time(float64(base)*(1+frac) + 1)
		return j >= max(1, lo-1) && j <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterZeroFactorIsIdentity(t *testing.T) {
	r := NewRNG(8)
	if got := r.Jitter(12345, 0); got != 12345 {
		t.Fatalf("Jitter(..., 0) = %v", got)
	}
}

func TestExpMeanRoughlyCorrect(t *testing.T) {
	r := NewRNG(11)
	const mean = Time(1000000)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("Exp mean = %.0f, want ~%d", got, mean)
	}
}

func TestExpPositiveAndCapped(t *testing.T) {
	r := NewRNG(12)
	const mean = Time(1000)
	for i := 0; i < 10000; i++ {
		v := r.Exp(mean)
		if v < 1 || v > 20*mean {
			t.Fatalf("Exp out of bounds: %v", v)
		}
	}
}
