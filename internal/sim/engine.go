package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when the event queue drains before the
// requested horizon. A simulation with periodic timers should never go
// quiet, so an empty queue usually means every actor blocked.
var ErrDeadlock = errors.New("sim: event queue empty before horizon")

// Engine is a single-threaded discrete-event simulation loop.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64

	// OnViolation, when set, receives scheduling-contract violations
	// (scheduling in the past, non-positive periods) instead of the
	// engine panicking mid-run. The engine then degrades safely: a
	// past-time event is clamped to now, a non-positive period
	// schedules nothing. Chaos runs attach an invariant checker here so
	// fault sweeps report which contract broke rather than crashing.
	OnViolation func(name, detail string)
}

// NewEngine returns an engine with an empty queue at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events dispatched so far (for diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at absolute time t. Scheduling in the past is a
// programming error: it would silently corrupt causality. Without an
// OnViolation hook it panics; with one it reports the violation and
// clamps the event to now.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		detail := fmt.Sprintf("scheduling %q at %v before now %v", name, t, e.now)
		if e.OnViolation == nil {
			panic("sim: " + detail)
		}
		e.OnViolation("schedule-in-past", detail)
		t = e.now
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq, Name: name}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after delay d from now.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	return e.At(e.now+d, name, fn)
}

// Every schedules fn to run every period d, first firing after d.
// A non-positive period panics, or — when an OnViolation hook is set —
// reports the violation and schedules nothing (returns nil, which
// Cancel accepts).
func (e *Engine) Every(d Time, name string, fn func()) *Event {
	if d <= 0 {
		if e.OnViolation == nil {
			panic("sim: non-positive period for " + name)
		}
		e.OnViolation("non-positive-period", fmt.Sprintf("period %v for %q", d, name))
		return nil
	}
	ev := e.After(d, name, fn)
	ev.Period = d
	return ev
}

// Cancel removes ev from the queue. It is safe to cancel a nil, already
// fired, or already cancelled event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step dispatches the single next event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.At
		if ev.Period > 0 {
			// Re-arm the same object before firing so the callback (or a
			// later caller holding the handle) can still Cancel it.
			ev.At += ev.Period
			ev.seq = e.seq
			e.seq++
			heap.Push(&e.queue, ev)
		} else {
			ev.dead = true
			ev.index = -1
		}
		e.fired++
		ev.Fn()
		return true
	}
	return false
}

// Run dispatches events until the horizon is reached, Stop is called, or
// the queue drains. When the queue drains early it returns ErrDeadlock.
func (e *Engine) Run(horizon Time) error {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			return fmt.Errorf("%w at %v (horizon %v)", ErrDeadlock, e.now, horizon)
		}
		if e.queue[0].At > horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	return nil
}

// RunUntilQuiet dispatches events until the queue drains or until the
// hard cap is hit, whichever comes first. Workload-completion driven
// simulations use this; periodic timers must be cancelled by the caller
// when the workload finishes, otherwise the cap applies.
func (e *Engine) RunUntilQuiet(cap Time) error {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 {
		if e.queue[0].At > cap {
			e.now = cap
			return fmt.Errorf("sim: horizon cap %v exceeded", cap)
		}
		e.Step()
	}
	return nil
}
