package sim

import (
	"errors"
	"fmt"
)

// ErrDeadlock is returned by Run when the event queue drains before the
// requested horizon. A simulation with periodic timers should never go
// quiet, so an empty queue usually means every actor blocked.
var ErrDeadlock = errors.New("sim: event queue empty before horizon")

// ErrHorizonCap is returned by RunUntilQuiet when the hard cap is hit
// before the queue drains. Callers match it with errors.Is rather than
// string comparison.
var ErrHorizonCap = errors.New("sim: horizon cap exceeded")

// Engine is a single-threaded discrete-event simulation loop.
// The zero value is not usable; call NewEngine.
//
// Fired one-shot and cancelled events are recycled through a free list,
// so a steady-state simulation schedules events without allocating.
// Recycling is safe because user code holds generation-stamped EventRef
// handles: a handle goes stale the moment its event fires or is
// cancelled, and stale handles are ignored even after the underlying
// object has been reused.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	free    []*Event // recycled Event objects

	// OnViolation, when set, receives scheduling-contract violations
	// (scheduling in the past, non-positive periods) instead of the
	// engine panicking mid-run. The engine then degrades safely: a
	// past-time event is clamped to now, a non-positive period
	// schedules nothing. Chaos runs attach an invariant checker here so
	// fault sweeps report which contract broke rather than crashing.
	// Violation details are formatted only on the violation path; the
	// happy path does no fmt work.
	OnViolation func(name, detail string)
}

// NewEngine returns an engine with an empty queue at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events dispatched so far (for diagnostics).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of queued events (for diagnostics).
func (e *Engine) Pending() int { return e.queue.len() }

// alloc takes an Event from the free list, or heap-allocates the first
// time a slot is needed.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// release invalidates every outstanding handle to ev and returns the
// object to the free list.
func (e *Engine) release(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.name = ""
	ev.period = 0
	ev.index = -1
	e.free = append(e.free, ev)
}

// At schedules fn at absolute time t. Scheduling in the past is a
// programming error: it would silently corrupt causality. Without an
// OnViolation hook it panics; with one it reports the violation and
// clamps the event to now.
func (e *Engine) At(t Time, name string, fn func()) EventRef {
	if t < e.now {
		t = e.schedulePastViolation(t, name)
	}
	ev := e.alloc()
	ev.at = t
	ev.fn = fn
	ev.name = name
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// schedulePastViolation is the cold path of At: it formats the detail
// string only once a violation actually happened, keeping all fmt work
// off the scheduling fast path.
//
//go:noinline
func (e *Engine) schedulePastViolation(t Time, name string) Time {
	detail := fmt.Sprintf("scheduling %q at %v before now %v", name, t, e.now)
	if e.OnViolation == nil {
		panic("sim: " + detail)
	}
	e.OnViolation("schedule-in-past", detail)
	return e.now
}

// After schedules fn after delay d from now.
func (e *Engine) After(d Time, name string, fn func()) EventRef {
	return e.At(e.now+d, name, fn)
}

// Every schedules fn to run every period d, first firing after d.
// A non-positive period panics, or — when an OnViolation hook is set —
// reports the violation and schedules nothing (returns a zero EventRef,
// which Cancel accepts).
func (e *Engine) Every(d Time, name string, fn func()) EventRef {
	if d <= 0 {
		e.nonPositivePeriodViolation(d, name)
		return EventRef{}
	}
	r := e.After(d, name, fn)
	r.ev.period = d
	return r
}

//go:noinline
func (e *Engine) nonPositivePeriodViolation(d Time, name string) {
	if e.OnViolation == nil {
		panic("sim: non-positive period for " + name)
	}
	e.OnViolation("non-positive-period", fmt.Sprintf("period %v for %q", d, name))
}

// Cancel removes the referenced event from the queue and recycles it.
// It is safe to cancel a zero, already fired, or already cancelled
// handle.
func (e *Engine) Cancel(r EventRef) {
	ev := r.ev
	if ev == nil || ev.gen != r.gen {
		return
	}
	if ev.index >= 0 {
		e.queue.remove(int(ev.index))
	}
	e.release(ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step dispatches the single next event. It reports false when the queue
// is empty.
func (e *Engine) Step() bool {
	ev := e.queue.pop()
	if ev == nil {
		return false
	}
	e.now = ev.at
	e.fired++
	fn := ev.fn
	if ev.period > 0 {
		// Re-arm the same object (same generation) before firing so the
		// callback, or a later caller holding the handle, can still
		// Cancel it.
		ev.at += ev.period
		ev.seq = e.seq
		e.seq++
		e.queue.push(ev)
	} else {
		// One-shot: every handle goes stale now; the object is free for
		// reuse by whatever fn schedules next.
		e.release(ev)
	}
	fn()
	return true
}

// Run dispatches events until the horizon is reached, Stop is called, or
// the queue drains. When the queue drains early it returns ErrDeadlock.
func (e *Engine) Run(horizon Time) error {
	e.stopped = false
	for !e.stopped {
		next := e.queue.min()
		if next == nil {
			return fmt.Errorf("%w at %v (horizon %v)", ErrDeadlock, e.now, horizon)
		}
		if next.at > horizon {
			e.now = horizon
			return nil
		}
		e.Step()
	}
	return nil
}

// RunWindow dispatches every event at or before end and advances the
// clock to exactly end. Unlike Run, an empty queue is not a deadlock:
// a sharded host engine may simply be idle for a window (the sharded
// coordinator decides when the whole simulation has gone quiet).
func (e *Engine) RunWindow(end Time) {
	for {
		next := e.queue.min()
		if next == nil || next.at > end {
			break
		}
		e.Step()
	}
	e.now = end
}

// NextAt returns the due time of the earliest pending event, or false
// for an empty queue. The sharded coordinator uses it to tell an
// active window (events to dispatch) from an idle one (clock advance
// only) without paying a worker wakeup for the latter.
func (e *Engine) NextAt() (Time, bool) {
	if next := e.queue.min(); next != nil {
		return next.at, true
	}
	return 0, false
}

// SkipTo advances the clock to end without dispatching — the
// empty-window fast path of RunWindow. The caller must know no event
// is due at or before end (see NextAt).
func (e *Engine) SkipTo(end Time) {
	if end > e.now {
		e.now = end
	}
}

// RunUntilQuiet dispatches events until the queue drains or until the
// hard cap is hit, whichever comes first; hitting the cap returns
// ErrHorizonCap (wrapped with the times involved). Workload-completion
// driven simulations use this; periodic timers must be cancelled by the
// caller when the workload finishes, otherwise the cap applies.
func (e *Engine) RunUntilQuiet(cap Time) error {
	e.stopped = false
	for !e.stopped {
		next := e.queue.min()
		if next == nil {
			return nil
		}
		if next.at > cap {
			e.now = cap
			return fmt.Errorf("%w: cap %v", ErrHorizonCap, cap)
		}
		e.Step()
	}
	return nil
}
