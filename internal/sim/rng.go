package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64). Each simulated actor gets its own stream derived from
// the run seed so that adding an actor never perturbs another actor's
// draws.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent stream labelled by id.
func (r *RNG) Fork(id uint64) *RNG {
	// Mix the label through one SplitMix64 round of a copy so forked
	// streams neither advance nor correlate with the parent.
	mixed := r.state + 0x9e3779b97f4a7c15*(id+1)
	return &RNG{state: splitmix(&mixed)}
}

func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 { return splitmix(&r.state) }

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f].
// It never returns less than 1ns for positive d.
func (r *RNG) Jitter(d Time, f float64) Time {
	if d <= 0 || f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	j := Time(float64(d) * scale)
	if j < 1 {
		j = 1
	}
	return j
}

// Exp returns an exponentially distributed duration with the given mean,
// truncated at 20x the mean to keep event times finite.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	d := Time(-float64(mean) * math.Log(1-u))
	if cap := 20 * mean; d > cap {
		d = cap
	}
	if d < 1 {
		d = 1
	}
	return d
}
