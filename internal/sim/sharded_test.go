package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// shardedRig wires a ping-pong workload over n shards: every shard
// runs a local periodic event and posts cross-shard messages that
// re-post on arrival, exercising mailbox delivery, ordering, and the
// window/barrier machinery. Each shard appends to its own log
// (single-writer mid-window); logs are concatenated at the end.
func shardedRig(t *testing.T, shards, workers int, lookahead, horizon Time) (string, uint64) {
	t.Helper()
	s := NewSharded(shards, lookahead)
	s.SetWorkers(workers)
	logs := make([][]string, shards)
	var hop func(from, to, ttl int)
	hop = func(from, to, ttl int) {
		s.Post(from, to, lookahead+Time(from+1)*Microsecond, fmt.Sprintf("hop-%d-%d", from, to), func() {
			logs[to] = append(logs[to], fmt.Sprintf("%d recv from %d at %v", to, from, s.Shard(to).Now()))
			if ttl > 0 {
				hop(to, (to+1)%shards, ttl-1)
			}
		})
	}
	for i := 0; i < shards; i++ {
		i := i
		s.Shard(i).Every(37*Microsecond+Time(i)*Microsecond, fmt.Sprintf("tick-%d", i), func() {
			logs[i] = append(logs[i], fmt.Sprintf("%d tick at %v", i, s.Shard(i).Now()))
		})
		s.Shard(i).After(5*Microsecond, "seed", func() { hop(i, (i+3)%shards, 40) })
	}
	barriers := 0
	s.OnBarrier(func(now Time) { barriers++ })
	s.EveryBarrier(90*Microsecond, "epoch", func() {
		for j := range logs {
			logs[j] = append(logs[j], fmt.Sprintf("%d epoch at %v", j, s.Now()))
		}
	})
	if err := s.Run(horizon); err != nil {
		t.Fatalf("run: %v", err)
	}
	if barriers == 0 {
		t.Fatalf("no barriers ran")
	}
	if got := s.Now(); got != horizon {
		t.Fatalf("coordinator stopped at %v, want %v", got, horizon)
	}
	for i := 0; i < shards; i++ {
		if got := s.Shard(i).Now(); got != horizon {
			t.Fatalf("shard %d stopped at %v, want %v", i, got, horizon)
		}
	}
	var b strings.Builder
	for _, l := range logs {
		for _, line := range l {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), s.Fired()
}

// TestShardedDeterministicAcrossWorkers is the core guarantee: the
// worker count is invisible to the simulation. Every shard's event log
// and the total fired count must be byte-identical for any pool size.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	const shards = 5
	base, baseFired := shardedRig(t, shards, 1, 50*Microsecond, 3*Millisecond)
	if !strings.Contains(base, "recv") || !strings.Contains(base, "tick") {
		t.Fatalf("rig produced no traffic:\n%s", base)
	}
	for _, workers := range []int{2, 4, 8} {
		got, fired := shardedRig(t, shards, workers, 50*Microsecond, 3*Millisecond)
		if got != base {
			t.Fatalf("workers=%d diverged from serial log", workers)
		}
		if fired != baseFired {
			t.Fatalf("workers=%d fired %d events, serial fired %d", workers, fired, baseFired)
		}
	}
}

// TestShardedLookaheadViolation pins the conservative-synchrony
// invariant: posting a cross-shard event with delay < lookahead inside
// a window panics without a hook, and with OnViolation set it reports
// and clamps the delay to the lookahead.
func TestShardedLookaheadViolation(t *testing.T) {
	t.Run("panics", func(t *testing.T) {
		s := NewSharded(2, 100*Microsecond)
		s.Shard(0).After(10*Microsecond, "bad-post", func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("in-window post below lookahead did not panic")
					return
				}
				if !strings.Contains(fmt.Sprint(r), "lookahead") {
					t.Errorf("panic %q does not mention lookahead", r)
				}
			}()
			s.Post(0, 1, 5*Microsecond, "too-soon", func() {})
		})
		s.EveryBarrier(150*Microsecond, "keepalive", func() {})
		if err := s.Run(200 * Microsecond); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	t.Run("reported and clamped", func(t *testing.T) {
		s := NewSharded(2, 100*Microsecond)
		var viols []string
		s.OnViolation = func(name, detail string) {
			viols = append(viols, name+": "+detail)
		}
		var deliveredAt Time
		s.Shard(0).After(10*Microsecond, "bad-post", func() {
			s.Post(0, 1, 5*Microsecond, "too-soon", func() { deliveredAt = s.Shard(1).Now() })
		})
		s.EveryBarrier(150*Microsecond, "keepalive", func() {})
		if err := s.Run(400 * Microsecond); err != nil {
			t.Fatalf("run: %v", err)
		}
		if len(viols) != 1 || !strings.Contains(viols[0], "lookahead-violation") {
			t.Fatalf("violations = %v, want one lookahead-violation", viols)
		}
		if want := 110 * Microsecond; deliveredAt != want {
			t.Fatalf("clamped delivery at %v, want %v (post time + lookahead)", deliveredAt, want)
		}
	})
}

// TestShardedBarrierTasks checks that barrier tasks run at exactly
// their due times with every shard parked there, that windows truncate
// to land barriers on task times, and that periodic tasks re-arm.
func TestShardedBarrierTasks(t *testing.T) {
	s := NewSharded(3, 70*Microsecond)
	var at []Time
	s.AtBarrier(105*Microsecond, "once", func() {
		at = append(at, s.Now())
		for i := 0; i < s.Shards(); i++ {
			if got := s.Shard(i).Now(); got != s.Now() {
				t.Errorf("shard %d at %v during barrier at %v", i, got, s.Now())
			}
		}
	})
	var every []Time
	s.EveryBarrier(100*Microsecond, "periodic", func() { every = append(every, s.Now()) })
	// Keep the shards busy so the run isn't a deadlock.
	for i := 0; i < 3; i++ {
		s.Shard(i).Every(11*Microsecond, "tick", func() {})
	}
	if err := s.Run(350 * Microsecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(at) != 1 || at[0] != 105*Microsecond {
		t.Fatalf("one-shot barrier task ran at %v, want exactly once at 105µs", at)
	}
	if want := []Time{100 * Microsecond, 200 * Microsecond, 300 * Microsecond}; len(every) != len(want) {
		t.Fatalf("periodic barrier task ran at %v, want %v", every, want)
	} else {
		for i := range want {
			if every[i] != want[i] {
				t.Fatalf("periodic barrier task ran at %v, want %v", every, want)
			}
		}
	}
}

// TestShardedDeadlock mirrors Engine.Run: a coordinator with no
// pending events, mail, or barrier tasks before the horizon reports
// ErrDeadlock rather than spinning to the horizon.
func TestShardedDeadlock(t *testing.T) {
	s := NewSharded(2, 50*Microsecond)
	s.Shard(0).After(30*Microsecond, "only", func() {})
	err := s.Run(Millisecond)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestShardedMailboxOrdering pins the canonical merge key: two posts
// delivered to one shard at the same virtual time fire in source-shard
// order regardless of post timing inside the window.
func TestShardedMailboxOrdering(t *testing.T) {
	s := NewSharded(3, 100*Microsecond)
	var order []int
	// Shard 2 posts first in wall-clock terms (lower window cost), but
	// shard 1 is the lower source index; both deliveries land on shard
	// 0 at the same instant and must fire in source order 1, 2.
	s.Shard(2).After(10*Microsecond, "from-2", func() {
		s.Post(2, 0, 100*Microsecond, "b", func() { order = append(order, 2) })
	})
	s.Shard(1).After(10*Microsecond, "from-1", func() {
		s.Post(1, 0, 100*Microsecond, "a", func() { order = append(order, 1) })
	})
	s.EveryBarrier(500*Microsecond, "keepalive", func() {})
	if err := s.Run(Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", order)
	}
}

// TestEngineRunWindow covers the window primitive directly: events at
// or before the window end fire, later ones stay queued, and an empty
// queue still advances the clock (no deadlock mid-rack).
func TestEngineRunWindow(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.At(10*Microsecond, "a", func() { fired = append(fired, "a") })
	e.At(50*Microsecond, "b", func() { fired = append(fired, "b") })
	e.At(80*Microsecond, "c", func() { fired = append(fired, "c") })
	e.RunWindow(50 * Microsecond)
	if got := strings.Join(fired, ","); got != "a,b" {
		t.Fatalf("fired %q in first window, want a,b", got)
	}
	if e.Now() != 50*Microsecond {
		t.Fatalf("now = %v, want 50µs", e.Now())
	}
	e.RunWindow(60 * Microsecond) // empty window: clock still advances
	if e.Now() != 60*Microsecond || len(fired) != 2 {
		t.Fatalf("empty window mishandled: now=%v fired=%v", e.Now(), fired)
	}
	e.RunWindow(100 * Microsecond)
	if got := strings.Join(fired, ","); got != "a,b,c" {
		t.Fatalf("fired %q, want a,b,c", got)
	}
}
