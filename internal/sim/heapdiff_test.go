package sim

import (
	"container/heap"
	"testing"
)

// Differential test: the inlined 4-ary eventQueue must produce a
// bit-identical pop sequence to the original container/heap binary
// min-heap under any interleaving of push, pop, and remove. The
// reference implementation below is the pre-overhaul heap, kept
// verbatim (modulo field renames) as the ordering oracle.

type refEvent struct {
	at    Time
	seq   uint64
	id    int
	index int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }

func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// heapOp is one scripted operation: push a new event at time at, pop
// the minimum, or remove a previously pushed (still queued) event.
type heapOp struct {
	kind int // 0 = push, 1 = pop, 2 = remove
	at   Time
	pick uint64 // selects which live event to remove
}

// runDifferential drives both heaps through ops and asserts identical
// pop sequences (by insertion id).
func runDifferential(t *testing.T, ops []heapOp) {
	t.Helper()
	var newQ eventQueue
	var refQ refQueue
	var seq uint64
	nextID := 0
	newLive := map[int]*Event{}
	refLive := map[int]*refEvent{}
	liveIDs := []int{}
	var popsNew, popsRef []int
	idOf := map[*Event]int{}

	for _, op := range ops {
		switch op.kind {
		case 0: // push
			id := nextID
			nextID++
			ne := &Event{at: op.at, seq: seq}
			re := &refEvent{at: op.at, seq: seq, id: id}
			seq++
			newQ.push(ne)
			heap.Push(&refQ, re)
			newLive[id] = ne
			refLive[id] = re
			idOf[ne] = id
			liveIDs = append(liveIDs, id)
		case 1: // pop
			ne := newQ.pop()
			if refQ.Len() == 0 {
				if ne != nil {
					t.Fatalf("new heap popped %v while reference is empty", ne.at)
				}
				continue
			}
			re := heap.Pop(&refQ).(*refEvent)
			if ne == nil {
				t.Fatalf("new heap empty while reference has %d events", refQ.Len()+1)
			}
			popsNew = append(popsNew, idOf[ne])
			popsRef = append(popsRef, re.id)
			removeID(&liveIDs, idOf[ne])
			delete(newLive, idOf[ne])
			delete(refLive, re.id)
		case 2: // remove
			if len(liveIDs) == 0 {
				continue
			}
			id := liveIDs[op.pick%uint64(len(liveIDs))]
			ne, re := newLive[id], refLive[id]
			newQ.remove(int(ne.index))
			heap.Remove(&refQ, re.index)
			removeID(&liveIDs, id)
			delete(newLive, id)
			delete(refLive, id)
		}
	}
	// Drain both completely.
	for {
		ne := newQ.pop()
		if ne == nil {
			break
		}
		popsNew = append(popsNew, idOf[ne])
	}
	for refQ.Len() > 0 {
		popsRef = append(popsRef, heap.Pop(&refQ).(*refEvent).id)
	}
	if len(popsNew) != len(popsRef) {
		t.Fatalf("pop counts differ: new %d, ref %d", len(popsNew), len(popsRef))
	}
	for i := range popsNew {
		if popsNew[i] != popsRef[i] {
			t.Fatalf("pop %d differs: new id %d, ref id %d", i, popsNew[i], popsRef[i])
		}
	}
	// Index bookkeeping must survive the churn.
	for i, ev := range newQ.a {
		if int(ev.index) != i {
			t.Fatalf("event at slot %d carries index %d", i, ev.index)
		}
	}
}

func removeID(ids *[]int, id int) {
	for i, v := range *ids {
		if v == id {
			*ids = append((*ids)[:i], (*ids)[i+1:]...)
			return
		}
	}
}

// TestHeapDifferentialRandom runs long randomized op sequences with
// heavy timestamp collisions (small time range forces tie-breaks
// through seq) against the container/heap oracle.
func TestHeapDifferentialRandom(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := NewRNG(uint64(trial) * 7919)
		ops := make([]heapOp, 0, 2000)
		for i := 0; i < 2000; i++ {
			r := rng.Intn(10)
			switch {
			case r < 5:
				// Small range → many equal timestamps → seq tie-breaks.
				ops = append(ops, heapOp{kind: 0, at: Time(rng.Intn(64))})
			case r < 8:
				ops = append(ops, heapOp{kind: 1})
			default:
				ops = append(ops, heapOp{kind: 2, pick: uint64(rng.Intn(1 << 16))})
			}
		}
		runDifferential(t, ops)
	}
}

// TestHeapDifferentialAdversarial exercises degenerate shapes: strictly
// ascending, strictly descending, and all-identical timestamps, with
// interior removals.
func TestHeapDifferentialAdversarial(t *testing.T) {
	var ops []heapOp
	for i := 0; i < 300; i++ {
		ops = append(ops, heapOp{kind: 0, at: Time(i)})
	}
	for i := 0; i < 100; i++ {
		ops = append(ops, heapOp{kind: 2, pick: uint64(i * 31)})
	}
	runDifferential(t, ops)

	ops = ops[:0]
	for i := 0; i < 300; i++ {
		ops = append(ops, heapOp{kind: 0, at: Time(300 - i)})
	}
	for i := 0; i < 150; i++ {
		ops = append(ops, heapOp{kind: 1})
	}
	runDifferential(t, ops)

	ops = ops[:0]
	for i := 0; i < 300; i++ {
		ops = append(ops, heapOp{kind: 0, at: 7})
		if i%3 == 0 {
			ops = append(ops, heapOp{kind: 2, pick: uint64(i)})
		}
	}
	runDifferential(t, ops)
}
