package sim

// Event is a scheduled callback. Events are ordered by (at, seq) so that
// two events at the same instant fire in scheduling order, which keeps
// runs deterministic. Event objects are owned and recycled by the
// engine's free list; user code holds EventRef handles instead of bare
// pointers so a recycled object can never be cancelled by a stale
// handle.
type Event struct {
	at     Time
	fn     func()
	seq    uint64
	gen    uint64 // bumped every time the object is released for reuse
	period Time   // if > 0 the engine re-arms the event after it fires
	index  int32  // heap index; -1 when not queued
	name   string // label for violation reports and debugging
}

// EventRef is a generation-stamped handle to a scheduled event. The
// zero EventRef is valid and behaves as an already-cancelled event, so
// fields of type EventRef need no initialisation and Engine.Cancel
// accepts them safely. Once the event fires (one-shot) or is cancelled,
// the handle goes stale and every further operation is a no-op — even
// if the engine has recycled the underlying object for a new event.
type EventRef struct {
	ev  *Event
	gen uint64
}

// Cancelled reports whether the handle no longer addresses a live
// event: a zero handle, a fired one-shot, or a cancelled event.
func (r EventRef) Cancelled() bool { return r.ev == nil || r.ev.gen != r.gen }

// eventLess orders events by (at, seq): earliest first, scheduling
// order breaking ties.
func eventLess(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventQueue is an index-tracked 4-ary min-heap of *Event keyed by
// (at, seq). It replaces container/heap on the engine's hot path: no
// interface{} boxing on push/pop, sift loops specialized to the event
// comparison, and a wider node fan-out that roughly halves tree depth
// for the queue sizes simulations reach (hundreds to low thousands of
// pending events).
type eventQueue struct {
	a []*Event
}

func (q *eventQueue) len() int { return len(q.a) }

// min returns the earliest event without removing it, or nil when empty.
func (q *eventQueue) min() *Event {
	if len(q.a) == 0 {
		return nil
	}
	return q.a[0]
}

func (q *eventQueue) push(ev *Event) {
	q.a = append(q.a, ev)
	q.siftUp(len(q.a) - 1)
}

// pop removes and returns the earliest event, or nil when empty.
func (q *eventQueue) pop() *Event {
	if len(q.a) == 0 {
		return nil
	}
	ev := q.a[0]
	last := len(q.a) - 1
	q.a[0] = q.a[last]
	q.a[last] = nil
	q.a = q.a[:last]
	if last > 0 {
		q.siftDown(0)
	}
	ev.index = -1
	return ev
}

// remove deletes the event at heap index i.
func (q *eventQueue) remove(i int) {
	ev := q.a[i]
	last := len(q.a) - 1
	q.a[i] = q.a[last]
	q.a[last] = nil
	q.a = q.a[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	ev.index = -1
}

func (q *eventQueue) siftUp(i int) {
	ev := q.a[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, q.a[p]) {
			break
		}
		q.a[i] = q.a[p]
		q.a[i].index = int32(i)
		i = p
	}
	q.a[i] = ev
	ev.index = int32(i)
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.a)
	ev := q.a[i]
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q.a[j], q.a[m]) {
				m = j
			}
		}
		if !eventLess(q.a[m], ev) {
			break
		}
		q.a[i] = q.a[m]
		q.a[i].index = int32(i)
		i = m
	}
	q.a[i] = ev
	ev.index = int32(i)
}
