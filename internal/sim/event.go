package sim

import "container/heap"

// Event is a scheduled callback. Events are ordered by (At, seq) so that
// two events at the same instant fire in scheduling order, which keeps
// runs deterministic.
type Event struct {
	At     Time
	Fn     func()
	seq    uint64
	index  int // heap index; -1 when not queued
	dead   bool
	Name   string // optional label for tracing/debugging
	Period Time   // if > 0 the engine re-arms the event after it fires
}

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e == nil || e.dead }

// eventQueue is a binary min-heap of events keyed by (At, seq).
type eventQueue []*Event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
