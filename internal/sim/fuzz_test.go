package sim

import (
	"encoding/binary"
	"testing"
)

// FuzzEventHeapOrdering drives the event heap with adversarial
// timestamps — negative, zero, duplicate, maximal — and asserts the
// dispatch contract: every scheduled event fires exactly once, virtual
// time never moves backwards, and same-instant events fire in schedule
// order. Past timestamps are absorbed by the OnViolation hook (clamped
// to now) rather than panicking.
func FuzzEventHeapOrdering(f *testing.F) {
	le := binary.LittleEndian
	enc := func(ts ...int64) []byte {
		b := make([]byte, 8*len(ts))
		for i, t := range ts {
			le.PutUint64(b[8*i:], uint64(t))
		}
		return b
	}
	f.Add(enc(5, 1, 3, 2, 4))
	f.Add(enc(7, 7, 7, 7))
	f.Add(enc(0, -1, -100, 50))
	f.Add(enc(1<<62, 1, 1<<62, 2))
	f.Add(enc(-9223372036854775808, 9223372036854775807))
	f.Add(enc())
	f.Add([]byte{1, 2, 3}) // trailing partial timestamp

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 256 {
			n = 256
		}
		eng := NewEngine()
		eng.OnViolation = func(string, string) {}
		fired := make([]int, n)
		order := make([]int, 0, n)
		var lastAt Time = -1 << 62
		for i := 0; i < n; i++ {
			i := i
			at := Time(le.Uint64(data[8*i:]))
			eng.At(at, "fuzz", func() {
				fired[i]++
				order = append(order, i)
				if eng.Now() < lastAt {
					t.Fatalf("time moved backwards: %v after %v", eng.Now(), lastAt)
				}
				lastAt = eng.Now()
			})
		}
		for eng.Step() {
		}
		for i, c := range fired {
			if c != 1 {
				t.Fatalf("event %d fired %d times", i, c)
			}
		}
		// Ties must preserve schedule order: among fired events at the
		// same instant, indices are increasing. All scheduling happened
		// at time zero, so the clamp rule reduces to max(at, 0).
		eff := make([]Time, n)
		for i := 0; i < n; i++ {
			at := Time(le.Uint64(data[8*i:]))
			if at < 0 {
				at = 0
			}
			eff[i] = at
		}
		for k := 1; k < len(order); k++ {
			a, b := order[k-1], order[k]
			if eff[a] == eff[b] && a > b {
				t.Fatalf("tie at %v fired out of schedule order: %d before %d", eff[a], a, b)
			}
		}
	})
}
