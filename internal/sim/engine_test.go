package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	eng := NewEngine()
	var got []Time
	for _, d := range []Time{5, 1, 3, 2, 4} {
		d := d
		eng.At(d, "e", func() { got = append(got, d) })
	}
	if err := eng.Run(10); err != nil && !errors.Is(err, ErrDeadlock) {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameInstantFiresInScheduleOrder(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(7, "e", func() { got = append(got, i) })
	}
	_ = eng.Run(10)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, got)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.At(5, "e", func() { fired = true })
	eng.At(1, "canceller", func() { eng.Cancel(ev) })
	_ = eng.Run(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestCancelIsIdempotentAndNilSafe(t *testing.T) {
	eng := NewEngine()
	ev := eng.At(5, "e", func() {})
	eng.Cancel(ev)
	eng.Cancel(ev)
	eng.Cancel(EventRef{})
}

// TestStaleHandleCannotCancelRecycledEvent pins down the safety
// contract of the free-list pool: once an event fires, its handle goes
// stale, and cancelling it must not touch whatever event has since
// reused the underlying object.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	eng := NewEngine()
	stale := eng.At(1, "first", func() {})
	eng.Step() // fires "first"; its object returns to the free list
	fired := false
	fresh := eng.At(5, "second", func() { fired = true })
	if fresh.ev != stale.ev {
		t.Skip("pool did not reuse the object; nothing to verify")
	}
	eng.Cancel(stale) // stale generation: must be a no-op
	if fresh.Cancelled() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	_ = eng.Run(10)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestPeriodicEventReArmsAndCancels(t *testing.T) {
	eng := NewEngine()
	count := 0
	ev := eng.Every(10, "tick", func() { count++ })
	eng.At(55, "stop", func() { eng.Cancel(ev) })
	eng.At(200, "end", func() {})
	_ = eng.Run(200)
	if count != 5 {
		t.Fatalf("periodic fired %d times, want 5 (at 10..50)", count)
	}
}

func TestPeriodicCancelFromOwnCallback(t *testing.T) {
	eng := NewEngine()
	count := 0
	var ev EventRef
	ev = eng.Every(10, "tick", func() {
		count++
		if count == 3 {
			eng.Cancel(ev)
		}
	})
	eng.At(100, "end", func() {})
	_ = eng.Run(100)
	if count != 3 {
		t.Fatalf("fired %d, want 3", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(10, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		eng.At(5, "past", func() {})
	})
	_ = eng.Run(20)
}

func TestRunStopsAtHorizon(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.At(100, "late", func() { fired = true })
	if err := eng.Run(50); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if eng.Now() != 50 {
		t.Fatalf("clock at %v, want 50", eng.Now())
	}
	// Continuing past the horizon fires it.
	if err := eng.Run(200); err != nil && !errors.Is(err, ErrDeadlock) {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire on second run")
	}
}

func TestDeadlockReported(t *testing.T) {
	eng := NewEngine()
	eng.At(5, "only", func() {})
	err := eng.Run(100)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestStopEndsRun(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Every(1, "tick", func() {
		count++
		if count == 7 {
			eng.Stop()
		}
	})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
}

func TestEventCallbackMayScheduleMore(t *testing.T) {
	eng := NewEngine()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 50 {
			eng.After(1, "chain", chain)
		}
	}
	eng.After(1, "chain", chain)
	_ = eng.Run(1000)
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if eng.Now() > 1000 {
		t.Fatalf("clock ran away: %v", eng.Now())
	}
}

// Property: any batch of events fires in nondecreasing time order and
// exactly once.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine()
		fired := make(map[int]int)
		var last Time = -1
		ok := true
		for i, d := range delays {
			i := i
			at := Time(d)
			eng.At(at, "e", func() {
				fired[i]++
				if eng.Now() < last {
					ok = false
				}
				last = eng.Now()
			})
		}
		err := eng.Run(Time(1 << 20))
		if len(delays) > 0 && !errors.Is(err, ErrDeadlock) {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for _, n := range fired {
			if n != 1 {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset fires exactly the rest.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		eng := NewEngine()
		events := make([]EventRef, len(delays))
		fired := make([]bool, len(delays))
		for i, d := range delays {
			i := i
			events[i] = eng.At(Time(d)+1, "e", func() { fired[i] = true })
		}
		for i := range events {
			if i < len(mask) && mask[i] {
				eng.Cancel(events[i])
			}
		}
		_ = eng.Run(Time(1 << 12))
		for i := range events {
			cancelled := i < len(mask) && mask[i]
			if fired[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{Second + Second/2, "1.500s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestOnViolationReportsInsteadOfPanicking(t *testing.T) {
	eng := NewEngine()
	var names, details []string
	eng.OnViolation = func(name, detail string) {
		names = append(names, name)
		details = append(details, detail)
	}
	fired := false
	eng.At(10, "later", func() {
		// Scheduling in the past is clamped to now and still fires.
		eng.At(5, "past", func() { fired = true })
	})
	if ev := eng.Every(0, "bad-period", func() {}); ev != (EventRef{}) {
		t.Fatal("non-positive period returned an event")
	}
	eng.Cancel(EventRef{}) // the zero return must be safe to cancel
	if err := eng.Run(20); err != nil && !errors.Is(err, ErrDeadlock) {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("clamped past event did not fire")
	}
	if len(names) != 2 || names[0] != "non-positive-period" || names[1] != "schedule-in-past" {
		t.Fatalf("violations = %v", names)
	}
	for _, d := range details {
		if d == "" {
			t.Fatal("violation with empty detail")
		}
	}
}
