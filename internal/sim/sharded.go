package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ShardedEngine is a conservative parallel discrete-event coordinator:
// N independent Engines (shards) advance in lockstep through time
// windows bounded by a fixed lookahead — the known minimum latency of
// any cross-shard interaction. Within a window every shard's events are
// data-isolated, so shards may execute on a bounded goroutine pool; at
// the window boundary (a barrier) all shards are parked at the same
// virtual time and cross-shard traffic is exchanged.
//
// Determinism is by construction, not by luck:
//
//   - Cross-shard events are posted with delay >= lookahead (Post), so
//     a message sent inside a window (T, T+W], W <= lookahead, is
//     delivered strictly after the window ends. Shards therefore never
//     observe each other mid-window, and the worker count cannot change
//     what any shard computes. Posting with a shorter delay is a
//     lookahead violation: it panics, or reports through OnViolation
//     and is clamped to the lookahead.
//   - Mailboxes are merged at each barrier under the canonical key
//     (delivery time, source shard, post order) — the same trick the
//     experiment harness uses to merge parallel jobs — and inserted
//     into the destination engines single-threaded, so the destination
//     sequence numbers (and hence same-instant tie-breaks) are
//     identical for any worker count.
//   - Global synchronous work (control planes that legitimately read or
//     mutate many shards at one instant) runs as barrier tasks
//     (AtBarrier/EveryBarrier): windows truncate so a barrier lands
//     exactly at each task's due time, and the task executes while
//     every shard is parked at that time — exactly the semantics the
//     work had on a single shared engine.
//
// The zero value is not usable; call NewSharded.
type ShardedEngine struct {
	engines   []*Engine
	lookahead Time
	now       Time
	workers   int

	inWindow bool      // set while shard goroutines may be running
	outboxes [][]mail  // per-source-shard cross-shard posts this window
	scratch  []mail    // merge buffer reused across barriers
	active   []*Engine // shards with events due this window, reused

	tasks   []*barrierTask
	taskSeq uint64

	onBarrier []func(now Time)

	// OnViolation, when set, receives coordination-contract violations
	// (cross-shard posts inside the lookahead window, barrier tasks
	// scheduled in the past) instead of the coordinator panicking; the
	// offending event is then clamped to the earliest legal time.
	OnViolation func(name, detail string)
}

// mail is one cross-shard event awaiting delivery at the next barrier.
type mail struct {
	at   Time
	to   int
	name string
	fn   func()
}

// barrierTask is a global synchronous event: it runs at a window
// boundary with every shard parked at exactly its due time.
type barrierTask struct {
	at     Time
	seq    uint64
	period Time
	name   string
	fn     func()
}

// NewSharded builds a coordinator over shards independent engines with
// the given lookahead (the minimum cross-shard event delay). It panics
// on a non-positive shard count or lookahead — a zero lookahead would
// make every window empty and the coordinator pointless.
func NewSharded(shards int, lookahead Time) *ShardedEngine {
	if shards <= 0 {
		panic(fmt.Sprintf("sim: sharded engine needs at least one shard (got %d)", shards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: sharded engine needs a positive lookahead (got %v)", lookahead))
	}
	s := &ShardedEngine{
		engines:   make([]*Engine, shards),
		outboxes:  make([][]mail, shards),
		lookahead: lookahead,
		workers:   1,
	}
	for i := range s.engines {
		s.engines[i] = NewEngine()
	}
	return s
}

// Shard returns shard i's engine. Shard-local work (the vast majority)
// schedules on it directly; only cross-shard traffic goes through Post.
func (s *ShardedEngine) Shard(i int) *Engine { return s.engines[i] }

// Shards returns the number of shards.
func (s *ShardedEngine) Shards() int { return len(s.engines) }

// Lookahead returns the minimum cross-shard event delay.
func (s *ShardedEngine) Lookahead() Time { return s.lookahead }

// Now returns the coordinator's clock: the last barrier time. Shard
// engines run ahead of it mid-window (each by at most the lookahead).
func (s *ShardedEngine) Now() Time { return s.now }

// Fired sums the events dispatched across all shards (the simulation's
// throughput numerator).
func (s *ShardedEngine) Fired() uint64 {
	var n uint64
	for _, e := range s.engines {
		n += e.Fired()
	}
	return n
}

// Pending sums the queued events across all shards.
func (s *ShardedEngine) Pending() int {
	n := 0
	for _, e := range s.engines {
		n += e.Pending()
	}
	return n
}

// SetWorkers bounds the goroutine pool that executes shard windows.
// One worker (the default) runs shards sequentially on the caller's
// goroutine — the serial mode. The output is identical either way; the
// worker count is invisible to the simulation by construction.
func (s *ShardedEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers returns the configured pool bound.
func (s *ShardedEngine) Workers() int { return s.workers }

// Post schedules fn on shard to at delay from shard from's current
// time. Called from inside from's window execution it buffers the
// event in from's outbox for delivery at the next barrier; called from
// barrier context (every shard parked) it schedules directly. A delay
// below the lookahead is a violation of the conservative-synchrony
// contract when posted mid-window — the destination may already have
// executed past the delivery time — so it panics (or reports through
// OnViolation and is clamped to the lookahead).
func (s *ShardedEngine) Post(from, to int, delay Time, name string, fn func()) {
	if delay < s.lookahead {
		s.lookaheadViolation(from, to, delay, name)
		delay = s.lookahead
	}
	at := s.engines[from].Now() + delay
	if !s.inWindow {
		s.engines[to].At(at, name, fn)
		return
	}
	s.outboxes[from] = append(s.outboxes[from], mail{at: at, to: to, name: name, fn: fn})
}

// lookaheadViolation is the cold path of Post: fmt work happens only
// once the contract is already broken.
//
//go:noinline
func (s *ShardedEngine) lookaheadViolation(from, to int, delay Time, name string) {
	detail := fmt.Sprintf("cross-shard post %q from shard %d to shard %d with delay %v < lookahead %v",
		name, from, to, delay, s.lookahead)
	if s.OnViolation == nil {
		panic("sim: " + detail)
	}
	s.OnViolation("lookahead-violation", detail)
}

// AtBarrier schedules fn as a global synchronous task at absolute time
// t: the window in progress when t comes due is truncated so a barrier
// lands exactly at t, and fn runs with every shard parked there.
// Scheduling in the past is a violation (panic, or report + clamp).
func (s *ShardedEngine) AtBarrier(t Time, name string, fn func()) {
	if t < s.now {
		detail := fmt.Sprintf("barrier task %q at %v before now %v", name, t, s.now)
		if s.OnViolation == nil {
			panic("sim: " + detail)
		}
		s.OnViolation("schedule-in-past", detail)
		t = s.now
	}
	s.tasks = append(s.tasks, &barrierTask{at: t, seq: s.taskSeq, name: name, fn: fn})
	s.taskSeq++
}

// EveryBarrier schedules fn as a periodic barrier task, first firing
// after d. A non-positive period is a violation (panic, or report and
// schedule nothing).
func (s *ShardedEngine) EveryBarrier(d Time, name string, fn func()) {
	if d <= 0 {
		detail := fmt.Sprintf("period %v for barrier task %q", d, name)
		if s.OnViolation == nil {
			panic("sim: " + detail)
		}
		s.OnViolation("non-positive-period", detail)
		return
	}
	s.tasks = append(s.tasks, &barrierTask{at: s.now + d, seq: s.taskSeq, period: d, name: name, fn: fn})
	s.taskSeq++
}

// OnBarrier registers fn to run at every barrier, after mailbox
// delivery and before due barrier tasks. The cluster layer drains
// per-shard observation outboxes here (served requests, occupancy
// intervals, finished spans) so control-plane tasks at the same
// barrier see every shard fact up to the barrier time.
func (s *ShardedEngine) OnBarrier(fn func(now Time)) {
	s.onBarrier = append(s.onBarrier, fn)
}

// nextTask returns the earliest pending barrier task by (at, seq), or
// nil. The task list is small (a handful of control-plane timers), so
// a linear scan beats heap bookkeeping.
func (s *ShardedEngine) nextTask() (*barrierTask, int) {
	var best *barrierTask
	idx := -1
	for i, t := range s.tasks {
		if best == nil || t.at < best.at || (t.at == best.at && t.seq < best.seq) {
			best, idx = t, i
		}
	}
	return best, idx
}

// Run advances all shards to the horizon in conservative windows:
// each round every shard executes independently up to
// min(now+lookahead, next barrier task, horizon), then the barrier
// exchanges cross-shard mail, runs drain hooks, and runs due tasks.
// When every shard is quiet and no mail or task is pending before the
// horizon it returns ErrDeadlock, mirroring Engine.Run.
func (s *ShardedEngine) Run(horizon Time) error {
	for s.now < horizon {
		end := s.now + s.lookahead
		if end > horizon {
			end = horizon
		}
		if bt, _ := s.nextTask(); bt != nil && bt.at < end {
			end = bt.at
		}
		if s.Pending() == 0 {
			if bt, _ := s.nextTask(); bt == nil {
				return fmt.Errorf("%w at %v (horizon %v)", ErrDeadlock, s.now, horizon)
			}
			// Only barrier tasks remain; like an engine whose next event
			// is beyond the horizon, the idle windows just advance the
			// clock.
		}
		s.runWindow(end)
		s.now = end
		s.barrier()
	}
	return nil
}

// runWindow executes every shard from its current time to end. Shards
// with no event due in the window are skipped inline — their clock
// just advances — so idle hosts cost no worker wakeup. With one worker
// the active shards run sequentially in index order on the calling
// goroutine; otherwise a bounded pool claims them off a shared
// counter. Either way each shard's window is single-threaded and
// isolated, so the schedule is identical.
func (s *ShardedEngine) runWindow(end Time) {
	if end <= s.now {
		return
	}
	// Partition: an engine whose next event lies beyond the window
	// would only execute `now = end` — doing that here skips the
	// wake/park round-trip that dominates when most shards are idle.
	active := s.active[:0]
	for _, e := range s.engines {
		if at, ok := e.NextAt(); ok && at <= end {
			active = append(active, e)
		} else {
			e.SkipTo(end)
		}
	}
	s.active = active
	if len(active) == 0 {
		return
	}
	s.inWindow = true
	n := s.workers
	if n > len(active) {
		n = len(active)
	}
	if n <= 1 {
		for _, e := range active {
			e.RunWindow(end)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(n)
		for w := 0; w < n; w++ {
			go func() {
				defer wg.Done()
				// Read the active set through s (stable until the
				// barrier): capturing the reassigned local would heap-
				// allocate a cell for it every window.
				for {
					i := int(next.Add(1)) - 1
					if i >= len(s.active) {
						return
					}
					s.active[i].RunWindow(end)
				}
			}()
		}
		wg.Wait()
	}
	s.inWindow = false
}

// barrier exchanges cross-shard mail, runs the drain hooks, then runs
// every barrier task due at the current time. All of it is
// single-threaded: the shards are parked.
func (s *ShardedEngine) barrier() {
	s.deliver()
	for _, fn := range s.onBarrier {
		fn(s.now)
	}
	for {
		bt, idx := s.nextTask()
		if bt == nil || bt.at > s.now {
			break
		}
		if bt.period > 0 {
			bt.at += bt.period
			bt.seq = s.taskSeq
			s.taskSeq++
		} else {
			last := len(s.tasks) - 1
			s.tasks[idx] = s.tasks[last]
			s.tasks[last] = nil
			s.tasks = s.tasks[:last]
		}
		bt.fn()
	}
}

// deliver merges every outbox and inserts the mail into the
// destination engines. Concatenating outboxes in shard order and
// stable-sorting by delivery time yields the canonical total order
// (time, source shard, post order) — independent of which worker ran
// which shard. Delivery times are strictly beyond the window just
// executed (the lookahead guarantees it), so insertion never schedules
// in a destination's past.
func (s *ShardedEngine) deliver() {
	all := s.scratch[:0]
	for i, ob := range s.outboxes {
		all = append(all, ob...)
		s.outboxes[i] = ob[:0]
	}
	if len(all) == 0 {
		s.scratch = all
		return
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].at < all[j].at })
	for i := range all {
		m := &all[i]
		s.engines[m.to].At(m.at, m.name, m.fn)
		m.fn = nil
	}
	s.scratch = all[:0]
}
