package hypervisor

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New(sim.NewEngine(), DefaultConfig(2))
	vm := src.NewVM("vm", 2, 512, true)
	vm.VCPUs[0].credits = 120
	vm.VCPUs[0].prio = PrioOver
	vm.VCPUs[1].credits = -50
	vm.VCPUs[1].prio = PrioBoost
	vm.LHPCount = 7
	vm.LWPCount = 3

	snap := src.SnapshotVM(vm)
	if snap.Name != "vm" || snap.Weight != 512 || !snap.SACapable {
		t.Fatalf("snapshot identity = %q/%d/%v", snap.Name, snap.Weight, snap.SACapable)
	}
	if len(snap.VCPUs) != 2 || snap.VCPUs[0].Credits != 120 || snap.VCPUs[1].Credits != -50 {
		t.Fatalf("snapshot vCPUs = %+v", snap.VCPUs)
	}

	dst := New(sim.NewEngine(), DefaultConfig(2))
	nv := dst.NewVM("vm#1", 2, 256, true)
	if err := dst.RestoreVM(nv, snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if nv.Weight != 512 || nv.LHPCount != 7 || nv.LWPCount != 3 {
		t.Fatalf("restored VM state = weight %d LHP %d LWP %d", nv.Weight, nv.LHPCount, nv.LWPCount)
	}
	if nv.VCPUs[0].credits != 120 || nv.VCPUs[0].prio != PrioOver {
		t.Fatalf("vCPU0 = credits %d prio %v", nv.VCPUs[0].credits, nv.VCPUs[0].prio)
	}
	// BOOST does not survive the move: the destination sees a plain vCPU.
	if nv.VCPUs[1].credits != -50 || nv.VCPUs[1].prio != PrioUnder {
		t.Fatalf("vCPU1 = credits %d prio %v, want -50/UNDER", nv.VCPUs[1].credits, nv.VCPUs[1].prio)
	}
}

func TestRestoreRejectsVCPUCountMismatch(t *testing.T) {
	h := New(sim.NewEngine(), DefaultConfig(2))
	snap := h.SnapshotVM(h.NewVM("a", 2, 256, false))
	if err := h.RestoreVM(h.NewVM("b", 1, 256, false), snap); err == nil {
		t.Fatal("restore with mismatched vCPU count succeeded")
	}
}

func TestRestoreRejectsStartedVCPU(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1)
	vm := h.VMs()[0]
	snap := h.SnapshotVM(vm)
	_ = eng
	if err := h.RestoreVM(vm, snap); err == nil {
		t.Fatal("restore onto a started VM succeeded")
	}
}

func TestRestoreRejectsOutOfRangeCredits(t *testing.T) {
	h := New(sim.NewEngine(), DefaultConfig(1))
	snap := h.SnapshotVM(h.NewVM("a", 1, 256, false))
	snap.VCPUs[0].Credits = creditCap + 1
	if err := h.RestoreVM(h.NewVM("b", 1, 256, false), snap); err == nil {
		t.Fatal("restore with out-of-range credits succeeded")
	}
}

func TestSyncRunstateAccountingExposesAccruingIntervals(t *testing.T) {
	// A vCPU that runs continuously never transitions, so without the
	// sync its running time is invisible to registry readers.
	cfg := DefaultConfig(1)
	cfg.Metrics = obs.NewRegistry()
	eng, h, _ := rig(t, cfg, false, 1)
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	v := h.VMs()[0].VCPUs[0]
	labels := obs.Labels{Sub: "hv", VM: "vma", CPU: v.Name(), Kind: "running"}
	ctr := cfg.Metrics.FindCounter("hv_runstate_ns", labels)
	if ctr == nil {
		t.Fatal("hv_runstate_ns counter not registered")
	}
	before := ctr.Value()
	h.SyncRunstateAccounting()
	after := ctr.Value()
	if after < before {
		t.Fatalf("sync moved counter backwards: %d -> %d", before, after)
	}
	// The vCPU ran (alone on its pCPU) for essentially the whole run.
	if after < int64(90*sim.Millisecond) {
		t.Fatalf("running ns after sync = %d, want ≈ %d", after, 100*sim.Millisecond)
	}
	// Idempotent at a fixed instant.
	h.SyncRunstateAccounting()
	if ctr.Value() != after {
		t.Fatalf("second sync changed counter: %d -> %d", after, ctr.Value())
	}
}
