package hypervisor

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// faultRig is saRig plus a fault plan and optional config tweaks.
func faultRig(t *testing.T, plan fault.Plan, tune func(*Config), delay sim.Time, block, ignore bool) (*sim.Engine, *Hypervisor, *saGuest) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = StrategyIRS
	cfg.Faults = fault.NewInjector(plan, 7, nil)
	if tune != nil {
		tune(&cfg)
	}
	h := New(eng, cfg)
	vm := h.NewVM("sa", 1, 256, true)
	v := vm.VCPUs[0]
	g := &saGuest{h: h, v: v, delay: delay, block: block, ignore: ignore}
	h.RegisterGuest(v, g)
	v.Pin(h.PCPU(0))
	h.StartVCPU(v)

	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)
	return eng, h, g
}

// saLedger asserts the SA accounting identity sent == acked + expired +
// pending, which must hold under any fault mix.
func saLedger(t *testing.T, h *Hypervisor) (sent, acked, expired, pending int64) {
	t.Helper()
	sent, acked, expired, pending, _, _ = h.SAStats()
	if sent != acked+expired+pending {
		t.Fatalf("SA ledger broken: sent %d != acked %d + expired %d + pending %d",
			sent, acked, expired, pending)
	}
	return
}

func TestSADropAllExpire(t *testing.T) {
	eng, h, g := faultRig(t, fault.Plan{DropSA: 1}, nil, 20*sim.Microsecond, false, false)
	_ = eng.Run(2 * sim.Second)
	sent, acked, expired, _ := saLedger(t, h)
	if sent == 0 {
		t.Fatal("no SAs sent under contention")
	}
	if g.upcalls != 0 {
		t.Fatalf("guest saw %d upcalls with drop-sa=1", g.upcalls)
	}
	if acked != 0 || expired == 0 {
		t.Fatalf("acked=%d expired=%d, want all dropped SAs to expire", acked, expired)
	}
}

func TestSADupDeliversTwiceAndLedgerHolds(t *testing.T) {
	eng, h, g := faultRig(t, fault.Plan{DupSA: 1}, nil, 20*sim.Microsecond, false, false)
	_ = eng.Run(2 * sim.Second)
	sent, acked, _, _ := saLedger(t, h)
	if sent == 0 || acked == 0 {
		t.Fatalf("sent=%d acked=%d, want activity", sent, acked)
	}
	// Every sent SA is delivered twice (original + duplicate 1 ns later,
	// both inside the open handshake window).
	if g.upcalls != 2*int(sent) {
		t.Fatalf("guest saw %d upcalls for %d sent with dup-sa=1", g.upcalls, sent)
	}
}

func TestSAAckLossExpiresHandshake(t *testing.T) {
	eng, h, _ := faultRig(t, fault.Plan{AckLoss: 1}, nil, 20*sim.Microsecond, false, false)
	_ = eng.Run(2 * sim.Second)
	sent, acked, expired, _ := saLedger(t, h)
	if sent == 0 {
		t.Fatal("no SAs sent")
	}
	if acked != 0 || expired != sent {
		t.Fatalf("acked=%d expired=%d sent=%d, want every ack lost", acked, expired, sent)
	}
}

func TestSAAckDelayStillCompletes(t *testing.T) {
	eng, h, _ := faultRig(t, fault.Plan{AckDelay: 10 * sim.Microsecond}, nil, 20*sim.Microsecond, false, false)
	_ = eng.Run(2 * sim.Second)
	sent, acked, expired, _ := saLedger(t, h)
	if sent == 0 || acked == 0 {
		t.Fatalf("sent=%d acked=%d, want delayed acks to land", sent, acked)
	}
	if expired != 0 {
		t.Fatalf("expired=%d with ack delay well inside the hard limit", expired)
	}
}

func TestMixedFaultLedger(t *testing.T) {
	eng, h, _ := faultRig(t, fault.LossPlan(0.3), nil, 20*sim.Microsecond, false, false)
	_ = eng.Run(5 * sim.Second)
	sent, acked, expired, _ := saLedger(t, h)
	if sent == 0 || acked == 0 || expired == 0 {
		t.Fatalf("sent=%d acked=%d expired=%d, want a mixed outcome under LossPlan", sent, acked, expired)
	}
}

func TestCircuitBreakerFallsBackToPlainPreemption(t *testing.T) {
	tune := func(c *Config) {
		c.SABreakerN = 3
		c.SABreakerCooldown = 500 * sim.Millisecond
	}
	// Rogue guest: every SA expires, so the breaker opens after 3. The
	// cooldown is longer than the ~60 ms preemption cadence so most
	// preemptions find the breaker open and fall back.
	eng, h, _ := faultRig(t, fault.Plan{}, tune, 0, false, true)
	_ = eng.Run(2 * sim.Second)
	sent, _, expired, _ := saLedger(t, h)
	if h.SAFallbacks() == 0 {
		t.Fatal("breaker never fell back to plain preemption")
	}
	if expired != sent {
		t.Fatalf("expired=%d sent=%d for a rogue guest", expired, sent)
	}
	// Initial streak of 3 plus ~1 half-open probe per 500 ms window;
	// without the breaker the rogue guest would see dozens.
	if sent > 3+4+3 {
		t.Fatalf("breaker open but %d SAs still sent", sent)
	}
}

func TestCircuitBreakerClosesOnAck(t *testing.T) {
	tune := func(c *Config) {
		c.SABreakerN = 3
		c.SABreakerCooldown = 10 * sim.Millisecond
	}
	// Half of the acks are lost: streaks of expiries open the breaker,
	// but a successful half-open probe must close it again.
	eng, h, _ := faultRig(t, fault.Plan{AckLoss: 0.5}, tune, 20*sim.Microsecond, false, false)
	_ = eng.Run(5 * sim.Second)
	sent, acked, _, _ := saLedger(t, h)
	if sent == 0 || acked == 0 {
		t.Fatalf("sent=%d acked=%d, want the breaker to keep probing", sent, acked)
	}
}

func TestStaleRunstateServed(t *testing.T) {
	plan := fault.Plan{StaleRunstate: 10 * sim.Millisecond}
	eng, h, _ := faultRig(t, plan, nil, 20*sim.Microsecond, false, false)
	v := h.VMs()[0].VCPUs[0]
	var first, within Runstate
	var firstAt, withinAt, beyondAt sim.Time
	eng.At(100*sim.Millisecond, "probe1", func() {
		first = h.GetRunstate(v)
		firstAt = h.staleRS[v].at
	})
	eng.At(105*sim.Millisecond, "probe2", func() {
		within = h.GetRunstate(v)
		withinAt = h.staleRS[v].at
	})
	eng.At(120*sim.Millisecond, "probe3", func() {
		h.GetRunstate(v)
		beyondAt = h.staleRS[v].at
	})
	_ = eng.Run(150 * sim.Millisecond)
	if within != first || withinAt != firstAt {
		t.Fatalf("snapshot within staleness bound changed: %+v -> %+v", first, within)
	}
	if beyondAt != 120*sim.Millisecond {
		t.Fatalf("snapshot beyond the staleness bound not refreshed (cached at %v)", beyondAt)
	}
	if h.Config().Faults.Count(fault.KindStaleRunstate) == 0 {
		t.Fatal("stale serves not counted")
	}
}

func TestBlackoutPausesAndResumes(t *testing.T) {
	plan := fault.Plan{BlackoutEvery: 100 * sim.Millisecond, BlackoutFor: 5 * sim.Millisecond}
	eng, h, _ := faultRig(t, plan, nil, 20*sim.Microsecond, false, false)
	_ = eng.Run(2 * sim.Second)
	saLedger(t, h)
	if h.Config().Faults.Count(fault.KindBlackout) == 0 {
		t.Fatal("no blackouts injected")
	}
	// Both vCPUs keep making progress across blackouts.
	for _, vm := range h.VMs() {
		if rt := vm.VCPUs[0].RunTime(); rt < 100*sim.Millisecond {
			t.Fatalf("%s ran only %v across 2s with periodic blackouts", vm.Name, rt)
		}
	}
}

func TestAuditInvariantsCleanUnderFaults(t *testing.T) {
	plans := map[string]fault.Plan{
		"none": {},
		"loss": fault.LossPlan(0.25),
		"blackout": {
			BlackoutEvery: 50 * sim.Millisecond,
			BlackoutFor:   2 * sim.Millisecond,
		},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			tune := func(c *Config) { c.SABreakerN = 3; c.SABreakerCooldown = 10 * sim.Millisecond }
			eng, h, _ := faultRig(t, plan, tune, 20*sim.Microsecond, false, false)
			var violations []string
			eng.Every(sim.Millisecond, "audit", func() {
				h.AuditInvariants(func(rule, detail string) {
					violations = append(violations, fmt.Sprintf("%s: %s", rule, detail))
				})
			})
			_ = eng.Run(1 * sim.Second)
			if len(violations) > 0 {
				t.Fatalf("%d invariant violations, first: %s", len(violations), violations[0])
			}
		})
	}
}
