package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// saGuest acknowledges scheduler activations after a configurable
// delay, mimicking the guest's 20-26µs SA handling path.
type saGuest struct {
	h       *Hypervisor
	v       *VCPU
	delay   sim.Time
	block   bool // ack with SCHEDOP_block instead of yield
	ignore  bool // never acknowledge (rogue guest)
	upcalls int
}

func (g *saGuest) Resume()  {}
func (g *saGuest) Suspend() {}
func (g *saGuest) TakeIRQ(irq IRQ) {
	if irq != IRQSAUpcall || g.ignore {
		return
	}
	g.upcalls++
	g.h.eng.After(g.delay, "sa-ack", func() {
		if !g.v.saPending {
			return
		}
		if g.block {
			g.h.SchedOpBlock(g.v)
		} else {
			g.h.SchedOpYield(g.v)
		}
	})
}
func (g *saGuest) Descheduling() PreemptClass { return PreemptOther }

func saRig(t *testing.T, delay sim.Time, block, ignore bool) (*sim.Engine, *Hypervisor, *saGuest) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = StrategyIRS
	h := New(eng, cfg)
	vm := h.NewVM("sa", 1, 256, true)
	v := vm.VCPUs[0]
	g := &saGuest{h: h, v: v, delay: delay, block: block, ignore: ignore}
	h.RegisterGuest(v, g)
	v.Pin(h.PCPU(0))
	h.StartVCPU(v)

	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)
	return eng, h, g
}

func TestSASentOnInvoluntaryPreemption(t *testing.T) {
	eng, h, g := saRig(t, 20*sim.Microsecond, false, false)
	_ = eng.Run(2 * sim.Second)
	sent, acked, expired, _, mean, _ := h.SAStats()
	if sent == 0 {
		t.Fatal("no SAs sent under contention")
	}
	if acked != sent-expired {
		t.Fatalf("acked=%d sent=%d expired=%d inconsistent", acked, sent, expired)
	}
	if expired != 0 {
		t.Fatalf("expired=%d with a prompt guest", expired)
	}
	if g.upcalls != int(sent) {
		t.Fatalf("guest saw %d upcalls, hypervisor sent %d", g.upcalls, sent)
	}
	if mean != 20*sim.Microsecond {
		t.Fatalf("mean delay %v, want 20µs", mean)
	}
}

func TestSAHardLimitEnforced(t *testing.T) {
	eng, h, _ := saRig(t, 0, false, true) // rogue guest never acks
	_ = eng.Run(2 * sim.Second)
	sent, acked, expired, _, _, _ := h.SAStats()
	if sent == 0 {
		t.Fatal("no SAs sent")
	}
	if acked != 0 {
		t.Fatalf("acked=%d for a rogue guest", acked)
	}
	if expired != sent {
		t.Fatalf("expired=%d, want %d (all)", expired, sent)
	}
}

func TestSADelayWithinHardLimit(t *testing.T) {
	eng, h, _ := saRig(t, 30*sim.Microsecond, false, false)
	_ = eng.Run(1 * sim.Second)
	_, _, _, _, _, maxDelay := h.SAStats()
	if maxDelay > h.Config().SALimit {
		t.Fatalf("max SA delay %v exceeds limit %v", maxDelay, h.Config().SALimit)
	}
}

func TestSAAckWithBlockTransitionsVCPU(t *testing.T) {
	eng, h, _ := saRig(t, 15*sim.Microsecond, true, false)
	v := h.VMs()[0].VCPUs[0]
	blockedSeen := false
	eng.Every(sim.Millisecond, "watch", func() {
		if v.State() == StateBlocked {
			blockedSeen = true
			eng.Stop()
		}
	})
	_ = eng.Run(2 * sim.Second)
	if !blockedSeen {
		t.Fatal("SA block acknowledgement never blocked the vCPU")
	}
}

func TestSANotSentToIncapableVM(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = StrategyIRS
	h := New(eng, cfg)
	vm := h.NewVM("legacy", 1, 256, false) // not SA-capable
	v := vm.VCPUs[0]
	h.RegisterGuest(v, &stubGuest{v: v})
	v.Pin(h.PCPU(0))
	h.StartVCPU(v)
	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)
	_ = eng.Run(1 * sim.Second)
	sent, _, _, _, _, _ := h.SAStats()
	if sent != 0 {
		t.Fatalf("%d SAs sent to a non-capable VM", sent)
	}
}

func TestSANotSentUnderVanilla(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	_ = eng.Run(1 * sim.Second)
	if sent, _, _, _, _, _ := h.SAStats(); sent != 0 {
		t.Fatalf("%d SAs sent under vanilla strategy", sent)
	}
}

func TestSADelaysPreemptionUntilAck(t *testing.T) {
	eng, h, _ := saRig(t, 25*sim.Microsecond, false, false)
	v := h.VMs()[0].VCPUs[0]
	// While an SA is pending, the vCPU must still be running.
	violated := false
	eng.Every(5*sim.Microsecond, "watch", func() {
		if v.saPending && v.State() != StateRunning {
			violated = true
			eng.Stop()
		}
	})
	_ = eng.Run(500 * sim.Millisecond)
	if violated {
		t.Fatal("vCPU descheduled while its SA was pending")
	}
}

func TestFairnessPreservedUnderIRS(t *testing.T) {
	// §5.4: IRS must not compromise fairness between VMs.
	eng, h, _ := saRig(t, 22*sim.Microsecond, false, false)
	_ = eng.Run(5 * sim.Second)
	a := h.VMs()[0].VCPUs[0].RunTime()
	b := h.VMs()[1].VCPUs[0].RunTime()
	ratio := float64(a) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("IRS broke fairness: fg=%v bg=%v", a, b)
	}
}
