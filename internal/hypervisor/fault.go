package hypervisor

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// This file holds the fault-facing hypervisor surface: vCPU blackouts
// (control-plane pause/resume) and the invariant audit hook consumed by
// internal/invariant.

// blackout pauses one started vCPU for dur, chosen by the injector's
// blackout stream. Driven by a periodic event armed in New.
func (h *Hypervisor) blackout(dur sim.Time) {
	var cands []*VCPU
	for _, vm := range h.vms {
		for _, v := range vm.VCPUs {
			if v.started && v.state != StateOffline {
				cands = append(cands, v)
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	h.PauseVCPU(cands[h.cfg.Faults.BlackoutPick(len(cands))], dur)
}

// PauseVCPU takes v off the CPU for dur, as a management-plane
// pause/resume would: a running vCPU is descheduled, a queued one is
// skipped by dispatch until the park expires, and any open SA handshake
// is torn down as expired so SA accounting stays closed. After dur the
// vCPU competes for its home pCPU again.
func (h *Hypervisor) PauseVCPU(v *VCPU, dur sim.Time) {
	if dur <= 0 || v.state == StateOffline {
		return
	}
	now := h.eng.Now()
	if until := now + dur; until > v.parkedUntil {
		v.parkedUntil = until
	}
	if tl := h.cfg.Trace; tl != nil {
		tl.Recordf(now, trace.KindVCPUState, v.Name(), "blackout for %s", dur)
	}
	if v.saPending {
		h.saFail(v)
		if v.pcpu != nil {
			v.pcpu.saWait = false
		}
	}
	if p := v.pcpu; p != nil && p.current == v {
		h.deschedule(p, StateRunnable, true)
		h.dispatch(p)
	}
	h.eng.After(dur, "fault-unpause-"+v.Name(), func() {
		if v.assigned != nil {
			h.checkPreempt(v.assigned)
		}
	})
}

// AuditInvariants walks the hypervisor's scheduling state and reports
// every broken invariant through report (rule, detail). It is called
// periodically by the invariant checker; a fault-free and a faulty run
// alike must report nothing — faults may degrade performance, never
// consistency.
func (h *Hypervisor) AuditInvariants(report func(rule, detail string)) {
	now := h.eng.Now()

	// One vCPU per pCPU, with coherent cross-links and runstates.
	running := make(map[*VCPU]*PCPU, len(h.pcpus))
	for _, p := range h.pcpus {
		if v := p.current; v != nil {
			if prev, dup := running[v]; dup {
				report("one-vcpu-per-pcpu", fmt.Sprintf("%s current on %s and %s", v.Name(), prev.Name(), p.Name()))
			}
			running[v] = p
			if v.pcpu != p {
				report("vcpu-pcpu-link", fmt.Sprintf("%s runs on %s but links %v", v.Name(), p.Name(), v.pcpu))
			}
			if v.state != StateRunning {
				report("runstate-coherence", fmt.Sprintf("%s current on %s in state %s", v.Name(), p.Name(), v.state))
			}
		}
	}
	queued := make(map[*VCPU]*PCPU)
	for _, p := range h.pcpus {
		for _, v := range p.runq {
			if _, isRunning := running[v]; isRunning {
				report("runq-coherence", fmt.Sprintf("%s queued on %s while running", v.Name(), p.Name()))
			}
			if prev, dup := queued[v]; dup {
				report("runq-coherence", fmt.Sprintf("%s queued on %s and %s", v.Name(), prev.Name(), p.Name()))
			}
			queued[v] = p
			if v.state != StateRunnable {
				report("runstate-coherence", fmt.Sprintf("%s queued on %s in state %s", v.Name(), p.Name(), v.state))
			}
		}
	}

	// SA ledger: every sent activation is acked, expired, or in flight.
	if h.saSent != h.saAcked+h.saExpired+h.saPendingN || h.saPendingN < 0 {
		report("sa-accounting", fmt.Sprintf("sent %d != acked %d + expired %d + pending %d",
			h.saSent, h.saAcked, h.saExpired, h.saPendingN))
	}

	for _, vm := range h.vms {
		for _, v := range vm.VCPUs {
			if !v.started {
				continue
			}
			// Runstate accounting must sum to the vCPU's wall time.
			var total sim.Time
			for s := StateRunning; s <= StateOffline; s++ {
				total += v.StateTime(s)
			}
			if total != now-v.startedAt {
				report("runstate-walltime", fmt.Sprintf("%s runstates sum to %s over %s of wall time",
					v.Name(), total, now-v.startedAt))
			}
			// Credit conservation: balances never escape the scheduler's
			// clamp bounds, so no vCPU mints or leaks credits.
			if v.credits < creditFloor || v.credits > creditCap {
				report("credit-bounds", fmt.Sprintf("%s credits %d outside [%d, %d]",
					v.Name(), v.credits, creditFloor, creditCap))
			}
			if v.saPending && v.saDeadline.Cancelled() {
				report("sa-accounting", fmt.Sprintf("%s has an open SA with no deadline", v.Name()))
			}
		}
	}
}
