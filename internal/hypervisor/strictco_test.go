package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

func strictRig(t *testing.T) (*sim.Engine, *Hypervisor, *VM, *VM) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.Strategy = StrategyStrictCo
	h := New(eng, cfg)
	gang := h.NewVM("gang", 2, 256, false)
	for i, v := range gang.VCPUs {
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(i))
		h.StartVCPU(v)
	}
	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)
	return eng, h, gang, hog
}

func TestStrictCoGangRunsTogether(t *testing.T) {
	eng, h, gang, _ := strictRig(t)
	// Sample: whenever one gang vCPU runs, its sibling must be running
	// too (both are CPU-bound and on distinct pCPUs).
	violations := 0
	eng.Every(sim.Millisecond, "watch", func() {
		a := gang.VCPUs[0].State() == StateRunning
		b := gang.VCPUs[1].State() == StateRunning
		if a != b {
			violations++
		}
	})
	_ = eng.Run(2 * sim.Second)
	_ = h
	// Allow a tiny tolerance for sampling on slot edges.
	if violations > 10 {
		t.Fatalf("gang vCPUs ran asynchronously in %d samples", violations)
	}
}

func TestStrictCoAlternatesSlots(t *testing.T) {
	eng, _, gang, hog := strictRig(t)
	_ = eng.Run(3 * sim.Second)
	gangRun := gang.VCPUs[0].RunTime()
	hogRun := hog.VCPUs[0].RunTime()
	// Gang and free slots alternate: each side gets ~half of pCPU 0.
	ratio := float64(gangRun) / float64(hogRun)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("slot split gang=%v hog=%v", gangRun, hogRun)
	}
}

func TestStrictCoNoLHPDuringSlot(t *testing.T) {
	eng, _, gang, _ := strictRig(t)
	// Mark the gang guest as always lock-holding: strict co-scheduling
	// must still never preempt it mid-slot in a way its sibling
	// doesn't share — i.e. no involuntary preemption while the sibling
	// keeps running.
	for i := range gang.VCPUs {
		g := gang.VCPUs[i].ctx.(*stubGuest)
		g.preempted = PreemptLockHolder
	}
	_ = eng.Run(2 * sim.Second)
	// Slot-edge preemptions hit both siblings at once; they are counted
	// as LHP by the stub, but there must be no *additional* mid-slot
	// preemptions: at most one per rotation.
	rotations := int64(2 * sim.Second / (30 * sim.Millisecond))
	if gang.LHPCount > rotations+2 {
		t.Fatalf("LHP count %d exceeds one per slot rotation (%d)", gang.LHPCount, rotations)
	}
}

func TestStrictCoFragmentation(t *testing.T) {
	// A gang whose vCPU 1 blocks forever wastes pCPU 1 during its slots:
	// the hog must not backfill it (reserved), so machine utilization
	// drops below work-conserving.
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.Strategy = StrategyStrictCo
	h := New(eng, cfg)
	gang := h.NewVM("gang", 2, 256, false)
	for i, v := range gang.VCPUs {
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(i))
		h.StartVCPU(v)
	}
	// Block gang vCPU 1 immediately and keep it blocked.
	eng.After(sim.Millisecond, "block", func() {
		if gang.VCPUs[1].State() == StateRunning {
			h.SchedOpBlock(gang.VCPUs[1])
		}
	})
	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(1)) // hog shares pCPU 1 with the blocked gang vCPU
	h.StartVCPU(hv)
	_ = eng.Run(2 * sim.Second)
	// pCPU 1 idles during gang slots (reserved for the blocked vCPU):
	// the hog gets only the free slots, ~half the machine time.
	if hv.RunTime() > sim.Time(float64(2*sim.Second)*0.7) {
		t.Fatalf("hog backfilled reserved gang slots: ran %v of 2s", hv.RunTime())
	}
	if h.PCPU(1).IdleTime() < 500*sim.Millisecond {
		t.Fatalf("no fragmentation: pCPU1 idle only %v", h.PCPU(1).IdleTime())
	}
}
