package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// coRig: a 2-vCPU VM spread over 2 pCPUs; vCPU 0 shares pCPU 0 with a
// hog, so it lags its sibling — the relaxed-co trigger condition.
func coRig(t *testing.T, strategy Strategy) (*sim.Engine, *Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.Strategy = strategy
	h := New(eng, cfg)
	vm := h.NewVM("par", 2, 256, false)
	for i, v := range vm.VCPUs {
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(i))
		h.StartVCPU(v)
	}
	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)
	return eng, h
}

func TestRelaxedCoBoostsLaggard(t *testing.T) {
	engCo, hCo := coRig(t, StrategyRelaxedCo)
	_ = engCo.Run(3 * sim.Second)
	engV, hV := coRig(t, StrategyVanilla)
	_ = engV.Run(3 * sim.Second)

	lagCo := hCo.VMs()[0].VCPUs[0].RunTime()
	lagV := hV.VMs()[0].VCPUs[0].RunTime()
	// The laggard should receive at least as much CPU with relaxed-co
	// boosting it every accounting period.
	if lagCo < lagV {
		t.Fatalf("relaxed-co laggard runtime %v < vanilla %v", lagCo, lagV)
	}
}

func TestRelaxedCoParksLeader(t *testing.T) {
	eng, h := coRig(t, StrategyRelaxedCo)
	leader := h.VMs()[0].VCPUs[1] // uncontended sibling leads
	parked := false
	eng.Every(sim.Millisecond, "watch", func() {
		if leader.parkedUntil > eng.Now() {
			parked = true
			eng.Stop()
		}
	})
	_ = eng.Run(3 * sim.Second)
	if !parked {
		t.Fatal("leading vCPU was never parked despite persistent skew")
	}
}

func TestRelaxedCoParkReleasedOnCatchUp(t *testing.T) {
	eng, h := coRig(t, StrategyRelaxedCo)
	leader := h.VMs()[0].VCPUs[1]
	var parkStart sim.Time
	var parkSpan sim.Time
	eng.Every(sim.Millisecond, "watch", func() {
		now := eng.Now()
		if leader.parkedUntil > now && parkStart == 0 {
			parkStart = now
		}
		if parkStart > 0 && (leader.parkedUntil <= now || leader.State() == StateRunning) {
			parkSpan = now - parkStart
			eng.Stop()
		}
	})
	_ = eng.Run(3 * sim.Second)
	if parkStart == 0 {
		t.Skip("no park observed")
	}
	maxPark := h.Config().AccountPeriod + 2*h.Config().Tick
	if parkSpan > maxPark+2*sim.Millisecond {
		t.Fatalf("park lasted %v, want <= %v", parkSpan, maxPark)
	}
}

func TestRelaxedCoInactiveWithoutSkew(t *testing.T) {
	// Two sibling vCPUs with identical contention: no skew, no parks.
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.Strategy = StrategyRelaxedCo
	h := New(eng, cfg)
	vm := h.NewVM("par", 2, 256, false)
	for i, v := range vm.VCPUs {
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(i))
		h.StartVCPU(v)
	}
	parks := 0
	eng.Every(sim.Millisecond, "watch", func() {
		for _, v := range vm.VCPUs {
			if v.parkedUntil > eng.Now() {
				parks++
			}
		}
	})
	_ = eng.Run(2 * sim.Second)
	if parks != 0 {
		t.Fatalf("%d park observations without skew", parks)
	}
}

func TestRelaxedCoSkipsSingleVCPUVMs(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = StrategyRelaxedCo
	h := New(eng, cfg)
	for _, name := range []string{"a", "b"} {
		vm := h.NewVM(name, 1, 256, false)
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(0))
		h.StartVCPU(v)
	}
	_ = eng.Run(2 * sim.Second)
	for _, vm := range h.VMs() {
		if vm.VCPUs[0].parkedUntil != 0 {
			t.Fatal("single-vCPU VM was parked")
		}
	}
}
