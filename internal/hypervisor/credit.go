package hypervisor

import (
	"repro/internal/decision"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements the credit scheduler proper: dispatch,
// preemption (including the IRS scheduler-activation handshake), credit
// accounting, wakeup boosting, and vCPU placement.

const (
	creditsPerTick = 100
	creditFloor    = -300
	creditCap      = 300
)

// tick runs every cfg.Tick on each pCPU: it burns the running vCPU's
// credits and preempts it when it has gone OVER while higher-priority
// vCPUs wait.
func (h *Hypervisor) tick(p *PCPU) {
	p.snapshotLoad()
	if h.cfg.Strategy == StrategyRelaxedCo {
		h.coUnparkScan(p)
	}
	v := p.current
	if v == nil {
		return
	}
	if h.cfg.ExactAccounting {
		// Exact-accounting defense: settle the credits owed for actual
		// runtime instead of sampling. The cumulative-owed formulation
		// makes double-charging at tick edges impossible: a vCPU
		// dispatched mid-tick owes only for the fraction it ran.
		h.debitExact(v)
	} else {
		// Tick-sampled credit debiting, as in Xen credit1: whoever runs
		// when the tick fires pays a full tick's credits, regardless of
		// how long it has actually run. The resulting misattribution on
		// contended pCPUs (a vCPU whose dispatch aligns with tick edges
		// can pay for time it never used) is a faithful reproduction of
		// credit1's documented sampling unfairness — one ingredient of
		// the below-fair-share starvation the paper measures, and the
		// channel tick-evasion attacks steal through (a vCPU that is
		// never on-CPU at sampling instants is never charged at all).
		v.credits -= creditsPerTick
		if v.credits < creditFloor {
			v.credits = creditFloor
		}
		v.VM.CreditsDebited += creditsPerTick
		v.VM.mDebited.Add(creditsPerTick)
	}
	v.accActive = true
	// csched_vcpu_acct: after a full accounting period of *runtime*
	// (not wall time) the running vCPU re-evaluates its placement.
	// Stacked vCPUs accrue runtime slowly, so they re-pick rarely —
	// which is why stacking persists (§5.6).
	if h.cfg.LoadBalance {
		v.acctRun += h.cfg.Tick
		if v.acctRun >= h.cfg.AccountPeriod {
			v.acctRun = 0
			h.repickVCPU(p, v)
			if p.current != v {
				return
			}
		}
	}
	// BOOST is transient: it expires at the first tick, after which the
	// priority reflects the credit balance again (Xen csched_tick).
	if v.prio == PrioBoost || (v.credits <= 0 && v.prio == PrioUnder) {
		v.prio = prioForCredits(v.credits)
	}
	// A tick never interrupts an SA handshake; it resolves within
	// microseconds anyway. Under strict co-scheduling the gang rotation
	// owns all preemption decisions.
	if p.saWait || h.cfg.Strategy == StrategyStrictCo {
		return
	}
	if next := p.peek(h.eng.Now()); next != nil && next.prio < v.prio {
		h.preempt(p)
	}
}

// account runs every cfg.AccountPeriod: it refills credits
// proportionally to VM weight and lets the relaxed co-scheduler examine
// execution skew.
func (h *Hypervisor) account() {
	// Total weight of VMs with at least one non-blocked vCPU.
	totalWeight := 0
	for _, vm := range h.vms {
		if vmActive(vm) {
			totalWeight += vm.Weight
		}
	}
	if totalWeight > 0 {
		// Credits available per period: one tick's worth per pCPU per
		// tick interval, i.e. capacity of the whole machine.
		total := int(int64(len(h.pcpus)) * int64(h.cfg.AccountPeriod/h.cfg.Tick) * creditsPerTick)
		for _, vm := range h.vms {
			if !vmActive(vm) {
				continue
			}
			active := activeVCPUs(vm)
			if active == 0 {
				continue
			}
			share := total * vm.Weight / totalWeight / active
			for _, v := range vm.VCPUs {
				eligible := v.state == StateRunning || v.state == StateRunnable || v.accActive
				v.accActive = false
				if v.state == StateOffline || !eligible || v.parkedUntil > h.eng.Now() {
					// Going inactive resets a negative balance, as in
					// csched_vcpu_acct_stop: a vCPU that idled through
					// an accounting window wakes at UNDER (and is thus
					// BOOST-eligible), instead of paying down debt from
					// a previous busy phase.
					if v.state == StateBlocked && v.credits < 0 {
						v.credits = 0
						v.prio = PrioUnder
					}
					continue
				}
				v.credits += share
				vm.mCredits.Add(int64(share))
				if v.credits > creditCap {
					v.credits = creditCap
				}
				if v.credits > 0 && v.prio == PrioOver {
					v.prio = PrioUnder
				}
			}
		}
	}

	if h.cfg.Strategy == StrategyRelaxedCo {
		h.relaxedCoAccount()
	}
}

// debitExact settles v's credit debt under exact accounting: the
// credits owed grow with cumulative runtime (creditsPerTick per
// cfg.Tick of execution, integer-floored), and each settlement charges
// only the still-unpaid difference. Called at every tick for the
// running vCPU and at every deschedule, so no run interval escapes
// charging and none is charged twice. Any vCPU that accrues a charge is
// also marked active for the accounting window: activity, like debiting,
// must come from runstates, or a tick-evader is "forgiven" its debt at
// each account instant as if it had idled through the window.
func (h *Hypervisor) debitExact(v *VCPU) {
	owed := int64(v.RunTime()) * creditsPerTick / int64(h.cfg.Tick)
	delta := owed - v.debited
	if delta <= 0 {
		return
	}
	v.debited = owed
	v.accActive = true
	v.credits -= int(delta)
	if v.credits < creditFloor {
		v.credits = creditFloor
	}
	// Priority must track the balance at settlement too: vanilla credit1
	// only demotes the vCPU sampled by the tick, so a vCPU that is never
	// on-CPU at sampling instants keeps UNDER (and wake-BOOST
	// eligibility) no matter how deep in debt it is.
	if v.credits <= 0 && v.prio != PrioOver {
		v.prio = PrioOver
	}
	v.VM.CreditsDebited += delta
	v.VM.mDebited.Add(delta)
}

func prioForCredits(c int) Priority {
	if c > 0 {
		return PrioUnder
	}
	return PrioOver
}

func vmActive(vm *VM) bool { return activeVCPUs(vm) > 0 }

// activeVCPUs counts vCPUs that want CPU now or consumed CPU during the
// current accounting window (so bursty blockers still earn credits).
// vCPUs parked by relaxed co-scheduling are inactive: they neither
// consume nor receive credits, concentrating the VM's share on the
// laggard.
func activeVCPUs(vm *VM) int {
	now := vm.hv.eng.Now()
	n := 0
	for _, v := range vm.VCPUs {
		if v.parkedUntil > now {
			continue
		}
		if v.state == StateRunning || v.state == StateRunnable || v.accActive {
			n++
		}
	}
	return n
}

// dispatch picks the next vCPU for an idle pCPU.
func (h *Hypervisor) dispatch(p *PCPU) {
	if p.current != nil || p.saWait {
		return
	}
	now := h.eng.Now()
	next := p.pop(now)
	if next == nil && h.cfg.LoadBalance {
		next = h.stealWork(p)
	}
	if next == nil {
		return // stay idle; idleSince already set by deschedule
	}
	h.startRunning(p, next)
}

// startRunning puts v on p and resumes the guest.
func (h *Hypervisor) startRunning(p *PCPU, v *VCPU) {
	now := h.eng.Now()
	if p.current != nil {
		panic("hypervisor: startRunning on busy pCPU " + p.Name())
	}
	if v.state == StateRunnable {
		// Wait between losing (or first wanting) the pCPU and running
		// again: the paper's preemption/scheduling delay (§2.2).
		v.VM.mPreemptWait.Observe(now - v.stateSince)
	}
	p.idleTotal += now - p.idleSince
	p.current = v
	p.switches++
	p.mSwitches.Inc()
	v.pcpu = p
	v.accActive = true
	v.setState(StateRunning)
	v.sliceStart = now
	v.occSince = now
	p.sliceEnd = h.eng.After(h.cfg.Timeslice, p.sliceName, p.sliceFn)
	if tl := h.cfg.Trace; tl != nil {
		tl.Recordf(now, trace.KindSwitch, p.Name(), "run %s (%s)", v.Name(), v.prio)
	}
	v.ctx.Resume()
}

// sliceExpired ends the 30 ms quantum: if anyone else wants the pCPU the
// current vCPU is preempted, otherwise it runs another slice.
func (h *Hypervisor) sliceExpired(p *PCPU) {
	v := p.current
	if v == nil {
		return
	}
	if p.saWait {
		return // SA ack (µs away) will re-run scheduling
	}
	if p.peek(h.eng.Now()) == nil {
		// Nothing queued: extend by a fresh slice.
		p.sliceEnd = h.eng.After(h.cfg.Timeslice, p.sliceName, p.sliceFn)
		return
	}
	h.preempt(p)
}

// checkPreempt is called whenever the runqueue of p gains a vCPU: an
// idle pCPU dispatches; a busy one is preempted only when the newcomer
// outranks the running vCPU (wakeup boost).
func (h *Hypervisor) checkPreempt(p *PCPU) {
	if p.saWait {
		return
	}
	if p.current == nil {
		h.dispatch(p)
		return
	}
	now := h.eng.Now()
	next := p.peek(now)
	if next == nil || next.prio >= p.current.prio {
		return
	}
	// Respect the ratelimit: a vCPU runs at least cfg.Ratelimit before
	// a boost wakeup may preempt it.
	ran := now - p.current.sliceStart
	if ran < h.cfg.Ratelimit {
		h.eng.After(h.cfg.Ratelimit-ran, "xen-ratelimit-"+p.Name(), func() { h.checkPreempt(p) })
		return
	}
	h.preempt(p)
}

// preempt involuntarily removes the running vCPU from p. With the IRS
// strategy and an SA-capable runnable guest, the preemption is delayed
// until the guest acknowledges the scheduler activation (paper Alg. 1).
func (h *Hypervisor) preempt(p *PCPU) {
	v := p.current
	if v == nil || p.saWait {
		return
	}
	if h.cfg.Strategy == StrategyIRS && v.VM.SACapable && !v.saPending {
		if h.saBreakerAllows(v) {
			h.startSA(p, v)
			return
		}
		// Breaker open: the guest repeatedly failed to ack in time, so
		// skip the handshake and preempt plainly (bounded degradation).
		h.saFallbacks++
		v.VM.mSAFallback.Inc()
		if tl := h.cfg.Trace; tl != nil {
			tl.Record(h.eng.Now(), trace.KindSA, v.Name(), "fallback (breaker open)")
		}
	}
	h.deschedule(p, StateRunnable, true)
	h.dispatch(p)
}

// saBreakerAllows reports whether the SA circuit breaker permits
// activating v. With the breaker disabled (SABreakerN == 0) it always
// does. An open breaker re-closes for a single half-open probe once
// per cooldown; the probe either acks (resetting the streak) or
// expires (re-opening the breaker).
func (h *Hypervisor) saBreakerAllows(v *VCPU) bool {
	n := h.cfg.SABreakerN
	if n <= 0 || v.saConsecExpired < n {
		return true
	}
	now := h.eng.Now()
	if h.cfg.SABreakerCooldown > 0 && now-v.saBreakerOpenedAt >= h.cfg.SABreakerCooldown {
		v.saBreakerOpenedAt = now
		return true
	}
	return false
}

// startSA sends VIRQ_SA_UPCALL to the running vCPU and stalls the
// preemption until the guest answers with a sched_op hypercall or the
// hard limit expires.
func (h *Hypervisor) startSA(p *PCPU, v *VCPU) {
	now := h.eng.Now()
	v.saPending = true
	v.saSentAt = now
	p.saWait = true
	h.saSent++
	h.saPendingN++
	v.VM.mSASent.Inc()
	v.saDeadline = h.eng.After(h.cfg.SALimit, "xen-sa-limit-"+v.Name(), func() {
		h.saExpire(p, v)
	})
	v.notifyObserver()
	if tl := h.cfg.Trace; tl != nil {
		tl.Record(now, trace.KindSA, v.Name(), "sent")
	}
	dropped, delays := h.cfg.Faults.SADelivery()
	if dropped {
		// The upcall is lost in flight. The hypervisor still accounts it
		// as sent, so the hard limit fires and preempts regardless — the
		// paper's anti-rogue-guest mechanism doubles as loss recovery.
		if tl := h.cfg.Trace; tl != nil {
			tl.Record(now, trace.KindSA, v.Name(), "dropped (fault)")
		}
		return
	}
	if delays == nil {
		// The vCPU is running, so the interrupt is taken immediately.
		v.ctx.TakeIRQ(IRQSAUpcall)
		return
	}
	for _, d := range delays {
		if d == 0 {
			v.ctx.TakeIRQ(IRQSAUpcall)
			continue
		}
		// Late (or duplicated) delivery only lands while the handshake
		// is still open and the vCPU still executes on its pCPU.
		h.eng.After(d, "fault-sa-delivery-"+v.Name(), func() {
			if v.saPending && p.current == v {
				v.ctx.TakeIRQ(IRQSAUpcall)
			}
		})
	}
}

// saExpire fires when a guest failed to acknowledge an SA in time; the
// hypervisor preempts regardless (the anti-rogue-guest hard limit).
// Every expiry is accounted — even if the vCPU already left the pCPU
// through some other path — so sent == acked + expired + pending holds
// under fault injection.
func (h *Hypervisor) saExpire(p *PCPU, v *VCPU) {
	if !v.saPending {
		return
	}
	h.saFail(v)
	if tl := h.cfg.Trace; tl != nil {
		tl.Record(h.eng.Now(), trace.KindSA, v.Name(), "expired")
	}
	if p.current != v {
		return
	}
	p.saWait = false
	h.deschedule(p, StateRunnable, true)
	h.dispatch(p)
}

// saFail closes an open handshake as expired: accounting, breaker
// streak, and pending-flag teardown shared by the hard limit and
// forced teardowns (vCPU blackouts).
func (h *Hypervisor) saFail(v *VCPU) {
	h.saExpired++
	h.saPendingN--
	v.VM.mSAExpired.Inc()
	v.saConsecExpired++
	if n := h.cfg.SABreakerN; n > 0 && v.saConsecExpired == n {
		v.saBreakerOpenedAt = h.eng.Now()
		v.VM.mSABreaker.Inc()
	}
	h.eng.Cancel(v.saDeadline)
	v.saDeadline = sim.EventRef{}
	v.saPending = false
	v.notifyObserver()
}

// completeSA finishes the SA handshake after the guest's sched_op
// hypercall. disposition is the state requested by the guest.
func (h *Hypervisor) completeSA(v *VCPU, disposition RunState) {
	p := v.pcpu
	h.saAcked++
	h.saPendingN--
	v.saConsecExpired = 0
	delay := h.eng.Now() - v.saSentAt
	h.saDelaySum += delay
	if delay > h.saDelayMax {
		h.saDelayMax = delay
	}
	v.VM.mSAAcked.Inc()
	v.VM.mSAAck.Observe(delay)
	h.eng.Cancel(v.saDeadline)
	v.saDeadline = sim.EventRef{}
	v.saPending = false
	v.notifyObserver()
	p.saWait = false
	if tl := h.cfg.Trace; tl != nil {
		tl.Recordf(h.eng.Now(), trace.KindSA, v.Name(), "acked after %s (%s)", delay, disposition)
	}
	h.deschedule(p, disposition, false)
	h.dispatch(p)
}

// deschedule takes p.current off the pCPU, accounts LHP/LWP for
// involuntary preemptions, and requeues or blocks the vCPU.
func (h *Hypervisor) deschedule(p *PCPU, disposition RunState, involuntary bool) {
	v := p.current
	if v == nil {
		return
	}
	now := h.eng.Now()
	if involuntary {
		v.preemptions++
		v.mPreempt.Inc()
		pc := v.ctx.Descheduling()
		switch pc {
		case PreemptLockHolder:
			v.VM.LHPCount++
			v.VM.mLHP.Inc()
		case PreemptLockWaiter:
			v.VM.LWPCount++
			v.VM.mLWP.Inc()
		}
		if d := h.cfg.Decisions; d.Wants(decision.KindPreempt) {
			h.recordPreempt(d, now, p, v, pc, disposition)
		}
	}
	if h.cfg.ExactAccounting {
		// Settle the run interval ending now; the tick path's
		// cumulative-owed bookkeeping guarantees the overlap with the
		// last tick settlement is not charged again.
		h.debitExact(v)
	}
	v.ctx.Suspend()
	h.eng.Cancel(p.sliceEnd)
	p.sliceEnd = sim.EventRef{}
	h.stopPLEWindow(v)
	if h.occObs != nil {
		if d := now - v.occSince; d > 0 {
			h.occObs(v.VM, p, d)
		}
	}
	p.current = nil
	p.idleSince = now
	v.pcpu = nil
	v.setState(disposition)
	if disposition == StateRunnable {
		target := v.assigned
		if h.cfg.LoadBalance && v.pinned == nil {
			target = p // requeue locally; periodic repick moves it if needed
			v.assigned = p
		}
		target.enqueue(v)
	}
}

// WakeVCPU transitions a blocked vCPU to runnable with BOOST priority
// and places it on a pCPU, possibly preempting.
func (h *Hypervisor) WakeVCPU(v *VCPU) {
	if v.state != StateBlocked {
		return
	}
	v.wakeups++
	v.setState(StateRunnable)
	if v.prio == PrioUnder || v.prio == PrioBoost {
		v.prio = PrioBoost
		v.VM.BoostGrants++
		v.VM.mBoost.Inc()
		if d := h.cfg.Decisions; d.Wants(decision.KindBoost) {
			h.recordBoost(d, v)
		}
	}
	p := h.placeVCPU(v)
	if p != v.assigned {
		h.vcpuMigrations++
		h.mVCPUMigr.Inc()
	}
	v.assigned = p
	p.enqueue(v)
	h.checkPreempt(p)
}

// placeVCPU picks the pCPU for a waking or starting vCPU. Pinned vCPUs
// have no choice. Unpinned placement prefers an idle pCPU, then the
// least-loaded by runnable count, with ties broken toward the lowest ID
// (this deterministic tie-break is what lets deceptive idleness stack
// sibling vCPUs, as in §5.6 of the paper).
func (h *Hypervisor) placeVCPU(v *VCPU) *PCPU {
	if v.pinned != nil {
		return v.pinned
	}
	if !h.cfg.LoadBalance {
		return v.assigned
	}
	var best *PCPU
	bestLoad := 1 << 30
	for _, p := range h.pcpus {
		// Idle pCPUs are visible immediately (idler bitmask); otherwise
		// the placement works from the stale per-tick load snapshot.
		load := p.loadSnapshot
		if p.current == nil && p.QueueLen() == 0 {
			load = 0
		}
		if load < bestLoad {
			best, bestLoad = p, load
		}
	}
	if best == nil {
		return v.assigned
	}
	return best
}

// stealWork lets an idle pCPU pull a runnable vCPU from the longest
// peer runqueue (credit-scheduler work stealing).
func (h *Hypervisor) stealWork(p *PCPU) *VCPU {
	h.mStealAttempts.Inc()
	now := h.eng.Now()
	var src *PCPU
	for _, q := range h.pcpus {
		if q == p || q.QueueLen() == 0 {
			continue
		}
		if src == nil || q.QueueLen() > src.QueueLen() {
			src = q
		}
	}
	if src == nil {
		return nil
	}
	for i, cand := range src.runq {
		if cand.pinned != nil && cand.pinned != p {
			continue
		}
		if cand.parkedUntil > now {
			continue
		}
		src.runq = append(src.runq[:i], src.runq[i+1:]...)
		cand.assigned = p
		h.vcpuMigrations++
		h.mVCPUMigr.Inc()
		h.mStealMoves.Inc()
		return cand
	}
	return nil
}

// repickVCPU re-evaluates the placement of a running vCPU: it migrates
// to a strictly less-loaded pCPU, or — with probability RepickEpsilon —
// to an equally loaded one (the placement noise of a real scheduler).
// Queued vCPUs never re-pick themselves, the asymmetry that lets
// stacked runqueues persist (§5.6).
func (h *Hypervisor) repickVCPU(p *PCPU, v *VCPU) {
	if p.current != v || v.pinned != nil || p.saWait {
		return
	}
	myLoad := p.QueueLen() + 1
	var best *PCPU
	bestLoad := myLoad - 1 // require a strictly better target
	equals := make([]*PCPU, 0, len(h.pcpus))
	for _, q := range h.pcpus {
		if q == p {
			continue
		}
		load := q.QueueLen() + btoi(q.current != nil)
		if load < bestLoad {
			best, bestLoad = q, load
		} else if load == myLoad-1 {
			equals = append(equals, q)
		}
	}
	target := best
	if target == nil && len(equals) > 0 && h.rng.Float64() < h.cfg.RepickEpsilon {
		target = equals[h.rng.Intn(len(equals))]
	}
	if target == nil {
		return
	}
	h.deschedule(p, StateRunnable, true)
	p.dequeue(v)
	v.assigned = target
	h.vcpuMigrations++
	h.mVCPUMigr.Inc()
	target.enqueue(v)
	h.dispatch(p)
	h.checkPreempt(target)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RunnableWait returns how long vCPU v has been waiting in a runqueue,
// or zero if it is not waiting.
func (v *VCPU) RunnableWait(now sim.Time) sim.Time {
	if v.state != StateRunnable {
		return 0
	}
	return now - v.stateSince
}
