package hypervisor

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// newBareVCPU builds a detached vCPU for queue-ordering tests.
func newBareVCPU(h *Hypervisor, prio Priority, yield bool) *VCPU {
	v := &VCPU{hv: h, state: StateRunnable, prio: prio, yieldHint: yield,
		VM: &VM{Name: "q", hv: h}}
	return v
}

func queueRig() (*Hypervisor, *PCPU) {
	eng := sim.NewEngine()
	h := New(eng, DefaultConfig(1))
	return h, h.PCPU(0)
}

func TestRunqueuePriorityClasses(t *testing.T) {
	h, p := queueRig()
	over := newBareVCPU(h, PrioOver, false)
	boost := newBareVCPU(h, PrioBoost, false)
	under := newBareVCPU(h, PrioUnder, false)
	p.enqueue(over)
	p.enqueue(under)
	p.enqueue(boost)
	if got := p.pop(0); got != boost {
		t.Fatalf("first pop = %v, want boost", got.prio)
	}
	if got := p.pop(0); got != under {
		t.Fatalf("second pop = %v, want under", got.prio)
	}
	if got := p.pop(0); got != over {
		t.Fatalf("third pop = %v, want over", got.prio)
	}
}

func TestRunqueueFIFOWithinClass(t *testing.T) {
	h, p := queueRig()
	a := newBareVCPU(h, PrioUnder, false)
	b := newBareVCPU(h, PrioUnder, false)
	c := newBareVCPU(h, PrioUnder, false)
	p.enqueue(a)
	p.enqueue(b)
	p.enqueue(c)
	if p.pop(0) != a || p.pop(0) != b || p.pop(0) != c {
		t.Fatal("FIFO order violated within a priority class")
	}
}

func TestYieldHintDemotesBehindClass(t *testing.T) {
	// A yielding vCPU queues behind vCPUs of its own class that are
	// already waiting (Xen consumes the YIELD flag at insertion).
	h, p := queueRig()
	a := newBareVCPU(h, PrioUnder, false)
	p.enqueue(a)
	y := newBareVCPU(h, PrioUnder, true)
	p.enqueue(y)
	if got := p.pop(0); got != a {
		t.Fatal("yielding vCPU jumped ahead of its class")
	}
	// But it still outranks lower classes.
	h2, p2 := queueRig()
	over := newBareVCPU(h2, PrioOver, false)
	p2.enqueue(over)
	y2 := newBareVCPU(h2, PrioUnder, true)
	p2.enqueue(y2)
	if got := p2.pop(0); got != y2 {
		t.Fatal("yielding UNDER vCPU fell behind OVER")
	}
}

func TestEnqueueClearsYieldHint(t *testing.T) {
	h, p := queueRig()
	y := newBareVCPU(h, PrioUnder, true)
	p.enqueue(y)
	if y.yieldHint {
		t.Fatal("yield hint not consumed by enqueue")
	}
}

func TestPopSkipsParked(t *testing.T) {
	h, p := queueRig()
	parked := newBareVCPU(h, PrioBoost, false)
	parked.parkedUntil = 100
	normal := newBareVCPU(h, PrioOver, false)
	p.enqueue(parked)
	p.enqueue(normal)
	if got := p.pop(50); got != normal {
		t.Fatal("pop did not skip the parked vCPU")
	}
	if got := p.pop(200); got != parked {
		t.Fatal("pop skipped an expired park")
	}
}

func TestDequeueRemoves(t *testing.T) {
	h, p := queueRig()
	a := newBareVCPU(h, PrioUnder, false)
	b := newBareVCPU(h, PrioUnder, false)
	p.enqueue(a)
	p.enqueue(b)
	if !p.dequeue(a) {
		t.Fatal("dequeue reported missing")
	}
	if p.dequeue(a) {
		t.Fatal("double dequeue succeeded")
	}
	if p.QueueLen() != 1 || p.pop(0) != b {
		t.Fatal("queue corrupted after dequeue")
	}
}

// Property: pops always come out in nonincreasing priority groups and
// FIFO within a class, regardless of enqueue order.
func TestQuickRunqueueOrdering(t *testing.T) {
	f := func(prios []uint8) bool {
		h, p := queueRig()
		seq := make(map[*VCPU]int)
		for i, pr := range prios {
			v := newBareVCPU(h, Priority(pr%3)+PrioBoost, false)
			p.enqueue(v)
			seq[v] = i
		}
		lastPrio := PrioBoost
		lastSeq := -1
		for {
			v := p.pop(0)
			if v == nil {
				break
			}
			if v.prio < lastPrio {
				return false
			}
			if v.prio > lastPrio {
				lastPrio = v.prio
				lastSeq = -1
			}
			if seq[v] < lastSeq {
				return false
			}
			lastSeq = seq[v]
		}
		return p.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
