package hypervisor

import "fmt"

// IRQ identifies a virtual interrupt line delivered to a guest vCPU.
type IRQ int

const (
	// IRQTimer is the per-vCPU one-shot timer interrupt.
	IRQTimer IRQ = iota + 1
	// IRQSAUpcall is the scheduler-activation upcall added by IRS
	// (VIRQ_SA_UPCALL in the paper).
	IRQSAUpcall
	// IRQKick is an event-channel notification / reschedule IPI from a
	// sibling vCPU, used to wake an idle vCPU after task migration.
	IRQKick
)

func (i IRQ) String() string {
	switch i {
	case IRQTimer:
		return "timer"
	case IRQSAUpcall:
		return "sa-upcall"
	case IRQKick:
		return "kick"
	default:
		return fmt.Sprintf("IRQ(%d)", int(i))
	}
}

// SendIRQ delivers irq to v. A running vCPU takes it immediately; a
// descheduled vCPU accumulates it as pending (taken on resume); a
// blocked vCPU is woken first. Event-channel kicks (IRQKick) pass
// through the fault injector and may be dropped, delayed, or
// duplicated — the lost-wakeup pathology.
func (h *Hypervisor) SendIRQ(v *VCPU, irq IRQ) {
	if irq == IRQKick {
		dropped, delays := h.cfg.Faults.WakeDelivery()
		if dropped {
			return
		}
		if delays != nil {
			for _, d := range delays {
				if d == 0 {
					h.deliverIRQ(v, irq)
					continue
				}
				h.eng.After(d, "fault-wake-delay-"+v.Name(), func() {
					if v.state != StateOffline {
						h.deliverIRQ(v, irq)
					}
				})
			}
			return
		}
	}
	h.deliverIRQ(v, irq)
}

func (h *Hypervisor) deliverIRQ(v *VCPU, irq IRQ) {
	switch v.state {
	case StateRunning:
		v.ctx.TakeIRQ(irq)
	case StateBlocked:
		h.pendIRQ(v, irq)
		h.WakeVCPU(v)
	default:
		h.pendIRQ(v, irq)
	}
}

func (h *Hypervisor) pendIRQ(v *VCPU, irq IRQ) {
	for _, p := range v.pendingIRQ {
		if p == irq {
			return // level-triggered: collapse duplicates
		}
	}
	v.pendingIRQ = append(v.pendingIRQ, irq)
}

// ClaimPendingIRQs returns and clears the interrupts that arrived while
// the vCPU was descheduled. The guest calls this first thing on resume.
func (h *Hypervisor) ClaimPendingIRQs(v *VCPU) []IRQ {
	irqs := v.pendingIRQ
	v.pendingIRQ = nil
	return irqs
}

// HasPendingIRQ reports whether any interrupt is pending on v.
func (h *Hypervisor) HasPendingIRQ(v *VCPU) bool { return len(v.pendingIRQ) > 0 }
