package hypervisor

import "repro/internal/sim"

// Strict co-scheduling, as in VMware ESX 2.x (§2.1): all vCPUs of an
// SMP VM are scheduled and descheduled synchronously. The machine
// alternates gang slots: during a multi-vCPU VM's slot its vCPUs own
// the pCPUs exclusively — including pCPUs its blocked vCPUs leave idle
// (CPU fragmentation) — and during free slots the remaining VMs run.
// LHP and LWP cannot occur inside a gang slot (no sibling is ever
// preempted mid-critical-section), which is the approach's selling
// point; the fragmentation and the rigid slot rotation are its cost.

// strictCoRotate advances the gang rotation. Slots alternate between
// each multi-vCPU VM and a free slot for everyone else:
// [gang0, free, gang1, free, ...].
func (h *Hypervisor) strictCoRotate() {
	now := h.eng.Now()
	gangs := h.gangVMs()
	if len(gangs) == 0 {
		return
	}
	h.gangSlot++
	slot := h.gangSlot % (2 * len(gangs))
	var active *VM
	if slot%2 == 0 {
		active = gangs[slot/2]
	}
	h.gangActive = active

	until := now + h.cfg.Timeslice + sim.Microsecond
	for _, vm := range h.vms {
		gang := len(vm.VCPUs) >= 2
		for _, v := range vm.VCPUs {
			if v.state == StateOffline {
				continue
			}
			runsThisSlot := (active == nil && !gang) || vm == active
			if runsThisSlot {
				v.parkedUntil = 0
				if v.prio > PrioBoost {
					v.prio = PrioBoost // co-start the gang promptly
				}
			} else {
				v.parkedUntil = until
			}
		}
	}
	// Evict current occupants that do not belong to this slot, then let
	// the slot's vCPUs on.
	for _, p := range h.pcpus {
		if cur := p.current; cur != nil && cur.parkedUntil > now && !p.saWait {
			h.deschedule(p, StateRunnable, true)
		}
		h.checkPreempt(p)
	}
}

// gangVMs lists multi-vCPU VMs with at least one schedulable vCPU.
func (h *Hypervisor) gangVMs() []*VM {
	var out []*VM
	for _, vm := range h.vms {
		if len(vm.VCPUs) < 2 {
			continue
		}
		for _, v := range vm.VCPUs {
			if v.state != StateOffline {
				out = append(out, vm)
				break
			}
		}
	}
	return out
}
