package hypervisor

import (
	"fmt"

	"repro/internal/decision"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Strategy selects the hypervisor-level scheduling policy under test.
type Strategy int

const (
	// StrategyVanilla is the unmodified credit scheduler (baseline).
	StrategyVanilla Strategy = iota + 1
	// StrategyPLE adds pause-loop-exiting spin detection: a vCPU that
	// spins beyond a window is forced to yield.
	StrategyPLE
	// StrategyRelaxedCo adds VMware-style relaxed co-scheduling: the
	// leading vCPU of a skewed VM is stopped and swapped with its most
	// lagging sibling at every accounting period.
	StrategyRelaxedCo
	// StrategyIRS adds the scheduler-activation sender: the guest is
	// notified before involuntary preemption so it can rebalance.
	StrategyIRS
	// StrategyStrictCo is VMware ESX 2.x-style strict co-scheduling:
	// all vCPUs of an SMP VM are scheduled and descheduled
	// synchronously in rotating gang slots (§2.1).
	StrategyStrictCo
)

func (s Strategy) String() string {
	switch s {
	case StrategyVanilla:
		return "vanilla"
	case StrategyPLE:
		return "ple"
	case StrategyRelaxedCo:
		return "relaxed-co"
	case StrategyIRS:
		return "irs"
	case StrategyStrictCo:
		return "strict-co"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config holds hypervisor tunables. DefaultConfig matches the paper's
// Xen 4.5 credit-scheduler setup.
type Config struct {
	PCPUs    int
	Strategy Strategy

	// Timeslice is the scheduling quantum (Xen credit: 30 ms).
	Timeslice sim.Time
	// Tick is the credit-burn tick (Xen credit: 10 ms).
	Tick sim.Time
	// AccountPeriod is the credit refill / accounting period (30 ms).
	AccountPeriod sim.Time
	// Ratelimit is the minimum uninterrupted run before a wakeup may
	// preempt (Xen sched_ratelimit_us = 1000).
	Ratelimit sim.Time

	// SALimit is the hard deadline for a guest to acknowledge a
	// scheduler activation before the hypervisor preempts anyway.
	SALimit sim.Time

	// SABreakerN, when positive, arms a per-vCPU circuit breaker in the
	// SA sender: after N consecutive hard-limit expiries the sender
	// stops activating that vCPU and falls back to plain preemption,
	// re-probing once per SABreakerCooldown (half-open). 0 disables the
	// breaker, preserving the paper's unconditional protocol.
	SABreakerN        int
	SABreakerCooldown sim.Time

	// Faults, when non-nil, injects deterministic control-plane faults
	// (dropped/delayed/duplicated vIRQs, lossy SA acks, stale runstate
	// snapshots, vCPU blackouts). Nil injects nothing.
	Faults *fault.Injector

	// PLEWindow is how long continuous spinning runs before the
	// pause-loop exit fires and the vCPU is forced to yield.
	PLEWindow sim.Time

	// CoSkewThreshold is the execution-skew bound for relaxed
	// co-scheduling; beyond it the leader is stopped for CoParkTime.
	CoSkewThreshold sim.Time
	CoParkTime      sim.Time

	// LoadBalance enables hypervisor-level vCPU balancing (wake
	// placement, idle stealing, periodic re-pick) for unpinned vCPUs.
	LoadBalance bool
	// RepickEpsilon is the probability that the periodic balancer moves
	// a vCPU between equally loaded pCPUs, modelling placement noise in
	// real schedulers. Only meaningful with LoadBalance.
	RepickEpsilon float64

	// TickJitter, when positive, randomizes credit-tick sampling: each
	// pCPU re-arms its next tick after Tick scaled by a uniform factor
	// in [1-TickJitter, 1+TickJitter], drawn from a per-pCPU stream
	// forked from Seed (mean period, and hence total debit rate, is
	// preserved). 0 keeps credit1's aligned tick grid — whose
	// predictability is what tick-evasion attacks exploit. Must be in
	// [0, 1).
	TickJitter float64

	// ExactAccounting replaces tick-sampled debiting with exact
	// runstate-based charging: a vCPU owes credits for the nanoseconds
	// it actually ran (creditsPerTick per Tick of runtime), settled at
	// every tick and every deschedule. This closes the theft channel of
	// a vCPU that arranges never to be on-CPU when the tick fires, and
	// also fixes the converse misattribution (paying a full tick after
	// a mid-tick dispatch).
	ExactAccounting bool

	// IRQCost is the hypervisor-side cost of injecting an interrupt.
	IRQCost sim.Time

	// Trace, when non-nil, records scheduling events.
	Trace *trace.Log

	// Metrics, when non-nil, receives structured runtime telemetry:
	// per-vCPU runstate durations, preemption counts and wait
	// histograms, SA round-trip latencies, boost/credit accounting,
	// context switches, and work-steal activity. Nil (the default)
	// disables collection entirely.
	Metrics *obs.Registry

	// Decisions, when non-nil, records the credit scheduler's BOOST
	// grants and involuntary preemptions into the cluster-wide
	// decision log (kinds boost and preempt; see internal/decision).
	// Nil — or a ring whose kind mask excludes both — costs one
	// nil-and-mask test per hook and allocates nothing.
	Decisions *decision.Ring

	Seed uint64
}

// DefaultConfig returns the paper's Xen-like parameters for n pCPUs.
func DefaultConfig(n int) Config {
	return Config{
		PCPUs:           n,
		Strategy:        StrategyVanilla,
		Timeslice:       30 * sim.Millisecond,
		Tick:            10 * sim.Millisecond,
		AccountPeriod:   30 * sim.Millisecond,
		Ratelimit:       1 * sim.Millisecond,
		SALimit:         100 * sim.Microsecond,
		PLEWindow:       25 * sim.Microsecond,
		CoSkewThreshold: 15 * sim.Millisecond,
		CoParkTime:      0,
		LoadBalance:     false,
		RepickEpsilon:   0.15,
		IRQCost:         1 * sim.Microsecond,
		Seed:            1,
	}
}

// Hypervisor ties pCPUs, VMs and the credit scheduler together.
type Hypervisor struct {
	eng   *sim.Engine
	cfg   Config
	pcpus []*PCPU
	vms   []*VM
	rng   *sim.RNG

	gangSlot   int
	gangActive *VM

	pleYields      int64
	saSent         int64
	saAcked        int64
	saExpired      int64
	saPendingN     int64
	saFallbacks    int64
	saDelaySum     sim.Time
	saDelayMax     sim.Time
	vcpuMigrations int64

	// staleRS caches per-vCPU runstate snapshots when the fault plan
	// serves stale VCPUOP_get_runstate answers.
	staleRS map[*VCPU]rsSnap

	// Metric handles; all nil (and all updates no-ops) when
	// cfg.Metrics is nil.
	mStealAttempts *obs.Counter
	mStealMoves    *obs.Counter
	mVCPUMigr      *obs.Counter
	mPLEYields     *obs.Counter

	// occObs, when set, observes every completed pCPU occupancy
	// interval: VM vm held pCPU p for dur, ending now. It fires at the
	// deschedule choke point, so the watchdog's attribution engine sees
	// exact per-(VM, pCPU) occupancy without touching the hot path of
	// unwatched runs (one nil check).
	occObs func(vm *VM, p *PCPU, dur sim.Time)
}

// New creates a hypervisor with cfg.PCPUs physical CPUs and starts its
// periodic tick and accounting machinery on eng.
func New(eng *sim.Engine, cfg Config) *Hypervisor {
	if cfg.PCPUs <= 0 {
		panic("hypervisor: need at least one pCPU")
	}
	if cfg.TickJitter < 0 || cfg.TickJitter >= 1 {
		panic("hypervisor: TickJitter must be in [0, 1)")
	}
	h := &Hypervisor{
		eng: eng,
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0xda7a5eed),
	}
	reg := cfg.Metrics
	h.mStealAttempts = reg.Counter("hv_steal_attempts_total", obs.Labels{Sub: "hv"})
	h.mStealMoves = reg.Counter("hv_steal_moves_total", obs.Labels{Sub: "hv"})
	h.mVCPUMigr = reg.Counter("hv_vcpu_migrations_total", obs.Labels{Sub: "hv"})
	h.mPLEYields = reg.Counter("hv_ple_yields_total", obs.Labels{Sub: "hv"})
	for i := 0; i < cfg.PCPUs; i++ {
		p := &PCPU{ID: i, hv: h}
		p.sliceName = "xen-slice-" + p.Name()
		p.sliceFn = func() { h.sliceExpired(p) }
		p.mSwitches = reg.Counter("hv_ctx_switches_total", obs.Labels{Sub: "hv", CPU: p.Name()})
		reg.GaugeFunc("hv_runq_len", obs.Labels{Sub: "hv", CPU: p.Name()}, func() float64 {
			n := p.QueueLen()
			if p.current != nil {
				n++
			}
			return float64(n)
		})
		h.pcpus = append(h.pcpus, p)
		if cfg.TickJitter > 0 {
			// Jittered-tick defense: each pCPU owns a self-re-arming tick
			// chain whose next delay is drawn from an independent stream,
			// so a guest cannot predict sampling instants from wall time.
			tickRNG := h.rng.Fork(0x71c0 + uint64(i))
			name := fmt.Sprintf("xen-tick-%s", p.Name())
			var arm func()
			arm = func() {
				h.eng.After(tickRNG.Jitter(cfg.Tick, cfg.TickJitter), name, func() {
					h.tick(p)
					arm()
				})
			}
			arm()
		} else {
			// All pCPU ticks share one aligned grid, as in Xen where the
			// credit scheduler's ticks derive from a common periodic timer.
			eng.Every(cfg.Tick, fmt.Sprintf("xen-tick-%s", p.Name()), func() { h.tick(p) })
		}
	}
	eng.Every(cfg.AccountPeriod, "xen-account", h.account)
	if cfg.Strategy == StrategyStrictCo {
		eng.Every(cfg.Timeslice, "xen-gang-rotate", h.strictCoRotate)
	}
	if every, dur := cfg.Faults.BlackoutSchedule(); every > 0 {
		eng.Every(every, "fault-blackout", func() { h.blackout(dur) })
	}
	return h
}

// SetOccupancyObserver registers fn to receive every completed pCPU
// occupancy interval (nil disables). One observer per hypervisor.
func (h *Hypervisor) SetOccupancyObserver(fn func(vm *VM, p *PCPU, dur sim.Time)) {
	h.occObs = fn
}

// SyncOccupancyAccounting flushes the currently accruing occupancy
// interval of every busy pCPU to the occupancy observer and restarts
// the interval at now, mirroring SyncRunstateAccounting: callers
// sampling occupancy as a windowed signal invoke this first so
// long-running vCPUs don't hide inside an open interval.
func (h *Hypervisor) SyncOccupancyAccounting() {
	if h.occObs == nil {
		return
	}
	now := h.eng.Now()
	for _, p := range h.pcpus {
		if v := p.current; v != nil {
			if d := now - v.occSince; d > 0 {
				h.occObs(v.VM, p, d)
			}
			v.occSince = now
		}
	}
}

// Engine exposes the simulation engine driving this hypervisor.
func (h *Hypervisor) Engine() *sim.Engine { return h.eng }

// Config returns the active configuration.
func (h *Hypervisor) Config() Config { return h.cfg }

// PCPU returns physical CPU i.
func (h *Hypervisor) PCPU(i int) *PCPU { return h.pcpus[i] }

// PCPUs returns all physical CPUs.
func (h *Hypervisor) PCPUs() []*PCPU { return h.pcpus }

// VMs returns all created VMs.
func (h *Hypervisor) VMs() []*VM { return h.vms }

// Now returns the current virtual time.
func (h *Hypervisor) Now() sim.Time { return h.eng.Now() }

// NewVM creates an SMP VM with nvcpus virtual CPUs. Guest contexts must
// be registered with RegisterGuest before StartVCPU.
func (h *Hypervisor) NewVM(name string, nvcpus, weight int, saCapable bool) *VM {
	vm := &VM{
		ID:        len(h.vms),
		Name:      name,
		Weight:    weight,
		hv:        h,
		SACapable: saCapable,
	}
	reg := h.cfg.Metrics
	vmL := obs.Labels{Sub: "hv", VM: name}
	vm.mPreemptWait = reg.Histogram("hv_preempt_wait_ns", vmL)
	vm.mSAAck = reg.Histogram("hv_sa_ack_ns", vmL)
	vm.mSASent = reg.Counter("hv_sa_sent_total", vmL)
	vm.mSAAcked = reg.Counter("hv_sa_acked_total", vmL)
	vm.mSAExpired = reg.Counter("hv_sa_expired_total", vmL)
	vm.mSAFallback = reg.Counter("hv_sa_fallback_total", vmL)
	vm.mSABreaker = reg.Counter("hv_sa_breaker_opens_total", vmL)
	vm.mLHP = reg.Counter("hv_lhp_total", vmL)
	vm.mLWP = reg.Counter("hv_lwp_total", vmL)
	vm.mBoost = reg.Counter("hv_boost_total", vmL)
	vm.mCredits = reg.Counter("hv_credits_granted_total", vmL)
	vm.mDebited = reg.Counter("hv_credits_debited_total", vmL)
	for i := 0; i < nvcpus; i++ {
		v := &VCPU{
			ID:       i,
			VM:       vm,
			hv:       h,
			state:    StateOffline,
			prio:     PrioUnder,
			assigned: h.pcpus[i%len(h.pcpus)],
		}
		if reg != nil {
			vL := obs.Labels{Sub: "hv", VM: name, CPU: v.Name()}
			for s := StateRunning; s <= StateOffline; s++ {
				v.mState[s] = reg.Counter("hv_runstate_ns", obs.Labels{Sub: "hv", VM: name, CPU: v.Name(), Kind: s.String()})
			}
			v.mPreempt = reg.Counter("hv_preemptions_total", vL)
		}
		vm.VCPUs = append(vm.VCPUs, v)
	}
	h.vms = append(h.vms, vm)
	return vm
}

// RegisterGuest binds the guest-kernel context for one vCPU.
func (h *Hypervisor) RegisterGuest(v *VCPU, ctx GuestContext) { v.ctx = ctx }

// StartVCPU brings a vCPU online in the runnable state and enqueues it.
func (h *Hypervisor) StartVCPU(v *VCPU) {
	if v.ctx == nil {
		panic("hypervisor: StartVCPU before RegisterGuest for " + v.Name())
	}
	if v.state != StateOffline {
		return
	}
	v.stateSince = h.eng.Now()
	v.startedAt = h.eng.Now()
	v.started = true
	v.state = StateRunnable
	p := h.placeVCPU(v)
	v.assigned = p
	p.enqueue(v)
	h.checkPreempt(p)
}

// SAStats reports scheduler-activation round-trip statistics:
// notifications sent, acknowledged, expired at the hard limit, still
// pending (in-flight handshakes), and the mean/max guest handling
// delay. The counts obey sent == acked + expired + pending even under
// dropped or duplicated delivery.
func (h *Hypervisor) SAStats() (sent, acked, expired, pending int64, meanDelay, maxDelay sim.Time) {
	mean := sim.Time(0)
	if h.saAcked > 0 {
		mean = h.saDelaySum / sim.Time(h.saAcked)
	}
	return h.saSent, h.saAcked, h.saExpired, h.saPendingN, mean, h.saDelayMax
}

// SAFallbacks reports how many preemptions skipped the SA handshake
// because the per-vCPU circuit breaker was open.
func (h *Hypervisor) SAFallbacks() int64 { return h.saFallbacks }

// PLEYields reports how many pause-loop exits forced a yield.
func (h *Hypervisor) PLEYields() int64 { return h.pleYields }

// TheftStat is one VM's obtained-vs-fair-share CPU accounting over an
// elapsed interval: the theft metric of the adversarial-tenant
// experiments (DESIGN.md §13). Fair is the weight-proportional slice of
// total machine capacity assuming every VM wants CPU for the whole
// interval; Ratio is Obtained/Fair, so an honest tenant under full
// contention sits near 1.0 and a theft-of-service attacker above it.
type TheftStat struct {
	Name        string
	Obtained    sim.Time // cumulative runtime across the VM's vCPUs
	Fair        sim.Time // weight-proportional share of capacity
	Ratio       float64  // Obtained / Fair
	BoostGrants int64    // BOOST priorities granted on wake
	Debited     int64    // credits charged (tick-sampled or exact)
}

// TheftStats computes per-VM obtained-vs-fair-share accounting over the
// first elapsed time of the run, in VM creation order.
func (h *Hypervisor) TheftStats(elapsed sim.Time) []TheftStat {
	totalWeight := 0
	for _, vm := range h.vms {
		totalWeight += vm.Weight
	}
	capacity := elapsed * sim.Time(len(h.pcpus))
	stats := make([]TheftStat, 0, len(h.vms))
	for _, vm := range h.vms {
		st := TheftStat{
			Name:        vm.Name,
			Obtained:    vm.TotalRunTime(),
			BoostGrants: vm.BoostGrants,
			Debited:     vm.CreditsDebited,
		}
		if totalWeight > 0 {
			st.Fair = capacity * sim.Time(vm.Weight) / sim.Time(totalWeight)
		}
		if st.Fair > 0 {
			st.Ratio = float64(st.Obtained) / float64(st.Fair)
		}
		stats = append(stats, st)
	}
	return stats
}

// SyncCreditAccounting settles the exact-accounting debt of every
// currently running vCPU, so that after the call each vCPU's debited
// total equals the credits owed for its cumulative runtime. A no-op
// without ExactAccounting (tick sampling has no accruing debt).
func (h *Hypervisor) SyncCreditAccounting() {
	if !h.cfg.ExactAccounting {
		return
	}
	for _, p := range h.pcpus {
		if v := p.current; v != nil {
			h.debitExact(v)
		}
	}
}

// VCPUMigrations reports hypervisor-level vCPU-to-pCPU migrations.
func (h *Hypervisor) VCPUMigrations() int64 { return h.vcpuMigrations }
