package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// stubGuest is a minimal guest that never blocks: its vCPU always wants
// to run. It records hook invocations.
type stubGuest struct {
	v         *VCPU
	resumes   int
	suspends  int
	irqs      []IRQ
	preempted PreemptClass
}

func (g *stubGuest) Resume()  { g.resumes++ }
func (g *stubGuest) Suspend() { g.suspends++ }
func (g *stubGuest) TakeIRQ(irq IRQ) {
	g.irqs = append(g.irqs, irq)
	if irq == IRQSAUpcall {
		// Acknowledge immediately with a yield, like a trivial IRS guest.
		g.v.hv.SchedOpYield(g.v)
	}
}
func (g *stubGuest) Descheduling() PreemptClass {
	if g.preempted != 0 {
		return g.preempted
	}
	return PreemptOther
}

// rig creates a hypervisor with stub guests: vms[i] vCPUs for VM i, all
// pinned to pCPU 0 unless spread is true (then vCPU j -> pCPU j).
func rig(t *testing.T, cfg Config, spread bool, vms ...int) (*sim.Engine, *Hypervisor, [][]*stubGuest) {
	t.Helper()
	eng := sim.NewEngine()
	h := New(eng, cfg)
	var guests [][]*stubGuest
	for vi, n := range vms {
		vm := h.NewVM("vm"+string(rune('a'+vi)), n, 256, true)
		var gs []*stubGuest
		for i, v := range vm.VCPUs {
			g := &stubGuest{v: v}
			h.RegisterGuest(v, g)
			if spread {
				v.Pin(h.PCPU(i % cfg.PCPUs))
			} else {
				v.Pin(h.PCPU(0))
			}
			gs = append(gs, g)
		}
		guests = append(guests, gs)
		for _, v := range vm.VCPUs {
			h.StartVCPU(v)
		}
	}
	return eng, h, guests
}

func TestSingleVCPURunsImmediately(t *testing.T) {
	eng, h, gs := rig(t, DefaultConfig(1), false, 1)
	v := h.VMs()[0].VCPUs[0]
	if v.State() != StateRunning {
		t.Fatalf("state = %v, want running", v.State())
	}
	if gs[0][0].resumes != 1 {
		t.Fatalf("resumes = %d, want 1", gs[0][0].resumes)
	}
	_ = eng.Run(100 * sim.Millisecond)
	if v.RunTime() != 100*sim.Millisecond {
		t.Fatalf("runtime = %v, want 100ms", v.RunTime())
	}
}

func TestTwoVCPUsShareFairly(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	_ = eng.Run(3 * sim.Second)
	a := h.VMs()[0].VCPUs[0].RunTime()
	b := h.VMs()[1].VCPUs[0].RunTime()
	if a+b < sim.Time(float64(3*sim.Second)*0.99) {
		t.Fatalf("pCPU underused: %v", a+b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unfair: a=%v b=%v", a, b)
	}
}

func TestWeightedSharing(t *testing.T) {
	eng := sim.NewEngine()
	h := New(eng, DefaultConfig(1))
	heavy := h.NewVM("heavy", 1, 512, false)
	light := h.NewVM("light", 1, 256, false)
	for _, vm := range []*VM{heavy, light} {
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(0))
		h.StartVCPU(v)
	}
	_ = eng.Run(6 * sim.Second)
	ratio := float64(heavy.VCPUs[0].RunTime()) / float64(light.VCPUs[0].RunTime())
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("weight 512:256 gave runtime ratio %.2f, want ~2", ratio)
	}
}

func TestSliceRotationGranularity(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1, 1)
	_ = eng.Run(1 * sim.Second)
	// With a 30ms slice, two CPU-bound vCPUs switch roughly
	// 1s/30ms ≈ 33 times (plus boost/tick effects).
	sw := h.PCPU(0).Switches()
	if sw < 20 || sw > 120 {
		t.Fatalf("switches = %d, want ~33-100", sw)
	}
}

func TestRunstateAccountingSumsToWallClock(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1, 1)
	_ = eng.Run(2 * sim.Second)
	for _, vm := range h.VMs() {
		v := vm.VCPUs[0]
		total := v.StateTime(StateRunning) + v.StateTime(StateRunnable) + v.StateTime(StateBlocked)
		if total != 2*sim.Second {
			t.Fatalf("%s runstate sum = %v, want 2s", v.Name(), total)
		}
	}
}

func TestStealTimeMatchesCompetitorRuntime(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	_ = eng.Run(2 * sim.Second)
	a, b := h.VMs()[0].VCPUs[0], h.VMs()[1].VCPUs[0]
	if a.StealTime() != b.RunTime() {
		t.Fatalf("a.steal=%v b.run=%v (two CPU-bound vCPUs, one pCPU)", a.StealTime(), b.RunTime())
	}
}

func TestBlockAndWake(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1)
	v := h.VMs()[0].VCPUs[0]
	eng.After(10*sim.Millisecond, "block", func() {
		if !h.SchedOpBlock(v) {
			t.Error("block failed")
		}
		if v.State() != StateBlocked {
			t.Errorf("state after block = %v", v.State())
		}
	})
	eng.After(50*sim.Millisecond, "wake", func() {
		h.WakeVCPU(v)
	})
	_ = eng.Run(100 * sim.Millisecond)
	if v.State() != StateRunning {
		t.Fatalf("state = %v, want running after wake", v.State())
	}
	if got := v.StateTime(StateBlocked); got != 40*sim.Millisecond {
		t.Fatalf("blocked time = %v, want 40ms", got)
	}
}

func TestBoostPreemptsAfterRatelimit(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	b := h.VMs()[1].VCPUs[0]
	// Block A, let B hog, then wake A shortly after B's slice starts:
	// A should preempt B within ~ratelimit, not wait a full 30ms slice.
	eng.After(5*sim.Millisecond, "block-a", func() { h.SchedOpBlock(a) })
	var wakeAt, runAt sim.Time
	eng.After(100*sim.Millisecond, "wake-a", func() {
		wakeAt = eng.Now()
		h.WakeVCPU(a)
	})
	eng.Every(100*sim.Microsecond, "watch", func() {
		if runAt == 0 && wakeAt > 0 && a.State() == StateRunning {
			runAt = eng.Now()
			eng.Stop()
		}
	})
	_ = eng.Run(300 * sim.Millisecond)
	if runAt == 0 {
		t.Fatal("A never ran after wake")
	}
	delay := runAt - wakeAt
	if delay > cfg.Ratelimit+2*sim.Millisecond {
		t.Fatalf("boost wake delay %v, want <= ratelimit+eps", delay)
	}
	_ = b
}

func TestBoostExpiresAtTick(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	eng.After(5*sim.Millisecond, "block-a", func() { h.SchedOpBlock(a) })
	eng.After(41*sim.Millisecond, "wake-a", func() { h.WakeVCPU(a) })
	var sawBoost, sawDemote bool
	eng.Every(sim.Millisecond, "watch", func() {
		if a.prio == PrioBoost {
			sawBoost = true
		}
		if sawBoost && a.State() == StateRunning && a.prio != PrioBoost {
			sawDemote = true
			eng.Stop()
		}
	})
	_ = eng.Run(300 * sim.Millisecond)
	if !sawBoost {
		t.Fatal("woken vCPU never had BOOST priority")
	}
	if !sawDemote {
		t.Fatal("BOOST never expired at a tick")
	}
}

func TestPinnedVCPUStaysOnPCPU(t *testing.T) {
	cfg := DefaultConfig(2)
	eng, h, _ := rig(t, cfg, true, 2)
	_ = eng.Run(500 * sim.Millisecond)
	for i, v := range h.VMs()[0].VCPUs {
		if v.pcpu != h.PCPU(i) {
			t.Fatalf("vCPU %d on %v, want p%d", i, v.pcpu, i)
		}
	}
}

func TestCreditsNeverExceedCap(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	ok := true
	eng.Every(sim.Millisecond, "check", func() {
		for _, vm := range h.VMs() {
			for _, v := range vm.VCPUs {
				if v.credits > creditCap || v.credits < creditFloor {
					ok = false
				}
			}
		}
	})
	_ = eng.Run(2 * sim.Second)
	if !ok {
		t.Fatal("credits escaped [floor, cap]")
	}
}

func TestLHPClassificationCounted(t *testing.T) {
	eng, h, gs := rig(t, DefaultConfig(1), false, 1, 1)
	gs[0][0].preempted = PreemptLockHolder
	_ = eng.Run(1 * sim.Second)
	if h.VMs()[0].LHPCount == 0 {
		t.Fatal("no LHP events for a guest always reporting lock-holder")
	}
	if h.VMs()[0].LWPCount != 0 {
		t.Fatal("unexpected LWP events")
	}
}

func TestDispatchSkipsParkedVCPU(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	eng.After(35*sim.Millisecond, "park", func() {
		a.parkedUntil = eng.Now() + 100*sim.Millisecond
		if a.State() == StateRunning {
			p := a.pcpu
			h.deschedule(p, StateRunnable, true)
			h.dispatch(p)
		}
	})
	var ranWhileParked bool
	eng.Every(sim.Millisecond, "watch", func() {
		if a.parkedUntil > eng.Now() && a.State() == StateRunning {
			ranWhileParked = true
		}
	})
	_ = eng.Run(120 * sim.Millisecond)
	if ranWhileParked {
		t.Fatal("parked vCPU was scheduled")
	}
}

func TestYieldGoesBehindSameClass(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1, 1)
	// At some point, have vm-a yield; vm-b or vm-c should run next.
	a := h.VMs()[0].VCPUs[0]
	eng.After(5*sim.Millisecond, "yield", func() {
		if a.State() == StateRunning {
			h.SchedOpYield(a)
			if a.State() != StateRunnable {
				t.Error("yield did not deschedule")
			}
			cur := h.PCPU(0).Current()
			if cur == a {
				t.Error("yielding vCPU still current")
			}
		}
	})
	_ = eng.Run(50 * sim.Millisecond)
}

func TestTimerWakesBlockedVCPU(t *testing.T) {
	eng, h, gs := rig(t, DefaultConfig(1), false, 1)
	v := h.VMs()[0].VCPUs[0]
	eng.After(time10, "block", func() {
		h.SetTimer(v, eng.Now()+20*sim.Millisecond)
		h.SchedOpBlock(v)
	})
	_ = eng.Run(100 * sim.Millisecond)
	if v.State() != StateRunning {
		t.Fatalf("state = %v after timer, want running", v.State())
	}
	found := false
	for _, irq := range gs[0][0].irqs {
		if irq == IRQTimer {
			found = true
		}
	}
	// Timer IRQ arrives pended; the stub does not claim pending IRQs,
	// so only check the wake happened and blocked time is right.
	_ = found
	if bt := v.StateTime(StateBlocked); bt != 20*sim.Millisecond {
		t.Fatalf("blocked %v, want 20ms", bt)
	}
}

const time10 = 10 * sim.Millisecond
