package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// stubGuest is a minimal guest that never blocks: its vCPU always wants
// to run. It records hook invocations.
type stubGuest struct {
	v         *VCPU
	resumes   int
	suspends  int
	irqs      []IRQ
	preempted PreemptClass
}

func (g *stubGuest) Resume()  { g.resumes++ }
func (g *stubGuest) Suspend() { g.suspends++ }
func (g *stubGuest) TakeIRQ(irq IRQ) {
	g.irqs = append(g.irqs, irq)
	if irq == IRQSAUpcall {
		// Acknowledge immediately with a yield, like a trivial IRS guest.
		g.v.hv.SchedOpYield(g.v)
	}
}
func (g *stubGuest) Descheduling() PreemptClass {
	if g.preempted != 0 {
		return g.preempted
	}
	return PreemptOther
}

// rig creates a hypervisor with stub guests: vms[i] vCPUs for VM i, all
// pinned to pCPU 0 unless spread is true (then vCPU j -> pCPU j).
func rig(t *testing.T, cfg Config, spread bool, vms ...int) (*sim.Engine, *Hypervisor, [][]*stubGuest) {
	t.Helper()
	eng := sim.NewEngine()
	h := New(eng, cfg)
	var guests [][]*stubGuest
	for vi, n := range vms {
		vm := h.NewVM("vm"+string(rune('a'+vi)), n, 256, true)
		var gs []*stubGuest
		for i, v := range vm.VCPUs {
			g := &stubGuest{v: v}
			h.RegisterGuest(v, g)
			if spread {
				v.Pin(h.PCPU(i % cfg.PCPUs))
			} else {
				v.Pin(h.PCPU(0))
			}
			gs = append(gs, g)
		}
		guests = append(guests, gs)
		for _, v := range vm.VCPUs {
			h.StartVCPU(v)
		}
	}
	return eng, h, guests
}

func TestSingleVCPURunsImmediately(t *testing.T) {
	eng, h, gs := rig(t, DefaultConfig(1), false, 1)
	v := h.VMs()[0].VCPUs[0]
	if v.State() != StateRunning {
		t.Fatalf("state = %v, want running", v.State())
	}
	if gs[0][0].resumes != 1 {
		t.Fatalf("resumes = %d, want 1", gs[0][0].resumes)
	}
	_ = eng.Run(100 * sim.Millisecond)
	if v.RunTime() != 100*sim.Millisecond {
		t.Fatalf("runtime = %v, want 100ms", v.RunTime())
	}
}

func TestTwoVCPUsShareFairly(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	_ = eng.Run(3 * sim.Second)
	a := h.VMs()[0].VCPUs[0].RunTime()
	b := h.VMs()[1].VCPUs[0].RunTime()
	if a+b < sim.Time(float64(3*sim.Second)*0.99) {
		t.Fatalf("pCPU underused: %v", a+b)
	}
	ratio := float64(a) / float64(b)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unfair: a=%v b=%v", a, b)
	}
}

func TestWeightedSharing(t *testing.T) {
	eng := sim.NewEngine()
	h := New(eng, DefaultConfig(1))
	heavy := h.NewVM("heavy", 1, 512, false)
	light := h.NewVM("light", 1, 256, false)
	for _, vm := range []*VM{heavy, light} {
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(0))
		h.StartVCPU(v)
	}
	_ = eng.Run(6 * sim.Second)
	ratio := float64(heavy.VCPUs[0].RunTime()) / float64(light.VCPUs[0].RunTime())
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("weight 512:256 gave runtime ratio %.2f, want ~2", ratio)
	}
}

func TestSliceRotationGranularity(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1, 1)
	_ = eng.Run(1 * sim.Second)
	// With a 30ms slice, two CPU-bound vCPUs switch roughly
	// 1s/30ms ≈ 33 times (plus boost/tick effects).
	sw := h.PCPU(0).Switches()
	if sw < 20 || sw > 120 {
		t.Fatalf("switches = %d, want ~33-100", sw)
	}
}

func TestRunstateAccountingSumsToWallClock(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1, 1)
	_ = eng.Run(2 * sim.Second)
	for _, vm := range h.VMs() {
		v := vm.VCPUs[0]
		total := v.StateTime(StateRunning) + v.StateTime(StateRunnable) + v.StateTime(StateBlocked)
		if total != 2*sim.Second {
			t.Fatalf("%s runstate sum = %v, want 2s", v.Name(), total)
		}
	}
}

func TestStealTimeMatchesCompetitorRuntime(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	_ = eng.Run(2 * sim.Second)
	a, b := h.VMs()[0].VCPUs[0], h.VMs()[1].VCPUs[0]
	if a.StealTime() != b.RunTime() {
		t.Fatalf("a.steal=%v b.run=%v (two CPU-bound vCPUs, one pCPU)", a.StealTime(), b.RunTime())
	}
}

func TestBlockAndWake(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1)
	v := h.VMs()[0].VCPUs[0]
	eng.After(10*sim.Millisecond, "block", func() {
		if !h.SchedOpBlock(v) {
			t.Error("block failed")
		}
		if v.State() != StateBlocked {
			t.Errorf("state after block = %v", v.State())
		}
	})
	eng.After(50*sim.Millisecond, "wake", func() {
		h.WakeVCPU(v)
	})
	_ = eng.Run(100 * sim.Millisecond)
	if v.State() != StateRunning {
		t.Fatalf("state = %v, want running after wake", v.State())
	}
	if got := v.StateTime(StateBlocked); got != 40*sim.Millisecond {
		t.Fatalf("blocked time = %v, want 40ms", got)
	}
}

func TestBoostPreemptsAfterRatelimit(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	b := h.VMs()[1].VCPUs[0]
	// Block A, let B hog, then wake A shortly after B's slice starts:
	// A should preempt B within ~ratelimit, not wait a full 30ms slice.
	eng.After(5*sim.Millisecond, "block-a", func() { h.SchedOpBlock(a) })
	var wakeAt, runAt sim.Time
	eng.After(100*sim.Millisecond, "wake-a", func() {
		wakeAt = eng.Now()
		h.WakeVCPU(a)
	})
	eng.Every(100*sim.Microsecond, "watch", func() {
		if runAt == 0 && wakeAt > 0 && a.State() == StateRunning {
			runAt = eng.Now()
			eng.Stop()
		}
	})
	_ = eng.Run(300 * sim.Millisecond)
	if runAt == 0 {
		t.Fatal("A never ran after wake")
	}
	delay := runAt - wakeAt
	if delay > cfg.Ratelimit+2*sim.Millisecond {
		t.Fatalf("boost wake delay %v, want <= ratelimit+eps", delay)
	}
	_ = b
}

func TestBoostExpiresAtTick(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	eng.After(5*sim.Millisecond, "block-a", func() { h.SchedOpBlock(a) })
	eng.After(41*sim.Millisecond, "wake-a", func() { h.WakeVCPU(a) })
	var sawBoost, sawDemote bool
	eng.Every(sim.Millisecond, "watch", func() {
		if a.prio == PrioBoost {
			sawBoost = true
		}
		if sawBoost && a.State() == StateRunning && a.prio != PrioBoost {
			sawDemote = true
			eng.Stop()
		}
	})
	_ = eng.Run(300 * sim.Millisecond)
	if !sawBoost {
		t.Fatal("woken vCPU never had BOOST priority")
	}
	if !sawDemote {
		t.Fatal("BOOST never expired at a tick")
	}
}

func TestPinnedVCPUStaysOnPCPU(t *testing.T) {
	cfg := DefaultConfig(2)
	eng, h, _ := rig(t, cfg, true, 2)
	_ = eng.Run(500 * sim.Millisecond)
	for i, v := range h.VMs()[0].VCPUs {
		if v.pcpu != h.PCPU(i) {
			t.Fatalf("vCPU %d on %v, want p%d", i, v.pcpu, i)
		}
	}
}

func TestCreditsNeverExceedCap(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	ok := true
	eng.Every(sim.Millisecond, "check", func() {
		for _, vm := range h.VMs() {
			for _, v := range vm.VCPUs {
				if v.credits > creditCap || v.credits < creditFloor {
					ok = false
				}
			}
		}
	})
	_ = eng.Run(2 * sim.Second)
	if !ok {
		t.Fatal("credits escaped [floor, cap]")
	}
}

func TestLHPClassificationCounted(t *testing.T) {
	eng, h, gs := rig(t, DefaultConfig(1), false, 1, 1)
	gs[0][0].preempted = PreemptLockHolder
	_ = eng.Run(1 * sim.Second)
	if h.VMs()[0].LHPCount == 0 {
		t.Fatal("no LHP events for a guest always reporting lock-holder")
	}
	if h.VMs()[0].LWPCount != 0 {
		t.Fatal("unexpected LWP events")
	}
}

func TestDispatchSkipsParkedVCPU(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	eng.After(35*sim.Millisecond, "park", func() {
		a.parkedUntil = eng.Now() + 100*sim.Millisecond
		if a.State() == StateRunning {
			p := a.pcpu
			h.deschedule(p, StateRunnable, true)
			h.dispatch(p)
		}
	})
	var ranWhileParked bool
	eng.Every(sim.Millisecond, "watch", func() {
		if a.parkedUntil > eng.Now() && a.State() == StateRunning {
			ranWhileParked = true
		}
	})
	_ = eng.Run(120 * sim.Millisecond)
	if ranWhileParked {
		t.Fatal("parked vCPU was scheduled")
	}
}

func TestYieldGoesBehindSameClass(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1, 1)
	// At some point, have vm-a yield; vm-b or vm-c should run next.
	a := h.VMs()[0].VCPUs[0]
	eng.After(5*sim.Millisecond, "yield", func() {
		if a.State() == StateRunning {
			h.SchedOpYield(a)
			if a.State() != StateRunnable {
				t.Error("yield did not deschedule")
			}
			cur := h.PCPU(0).Current()
			if cur == a {
				t.Error("yielding vCPU still current")
			}
		}
	})
	_ = eng.Run(50 * sim.Millisecond)
}

func TestTimerWakesBlockedVCPU(t *testing.T) {
	eng, h, gs := rig(t, DefaultConfig(1), false, 1)
	v := h.VMs()[0].VCPUs[0]
	eng.After(time10, "block", func() {
		h.SetTimer(v, eng.Now()+20*sim.Millisecond)
		h.SchedOpBlock(v)
	})
	_ = eng.Run(100 * sim.Millisecond)
	if v.State() != StateRunning {
		t.Fatalf("state = %v after timer, want running", v.State())
	}
	found := false
	for _, irq := range gs[0][0].irqs {
		if irq == IRQTimer {
			found = true
		}
	}
	// Timer IRQ arrives pended; the stub does not claim pending IRQs,
	// so only check the wake happened and blocked time is right.
	_ = found
	if bt := v.StateTime(StateBlocked); bt != 20*sim.Millisecond {
		t.Fatalf("blocked %v, want 20ms", bt)
	}
}

const time10 = 10 * sim.Millisecond

// Exact accounting must charge a vCPU for precisely the nanoseconds it
// ran — never more (the tick-edge double-charge this regression pins)
// and never lagging by more than one tick's worth. vm-b's off-grid
// block/wake cycle forces mid-tick dispatches of both vCPUs.
func TestExactAccountingMatchesRunstateAtTickBoundaries(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.ExactAccounting = true
	eng, h, _ := rig(t, cfg, false, 1, 1)
	b := h.VMs()[1].VCPUs[0]
	// Block/wake b on a 7ms/3ms cycle, deliberately coprime with the
	// 10ms tick so dispatch edges wander across tick phases.
	var cycle func()
	cycle = func() {
		if b.State() == StateRunning || b.State() == StateRunnable {
			h.SchedOpBlock(b)
			eng.After(3*sim.Millisecond, "wake-b", func() {
				h.WakeVCPU(b)
				eng.After(7*sim.Millisecond, "block-b", cycle)
			})
		} else {
			eng.After(7*sim.Millisecond, "retry-b", cycle)
		}
	}
	eng.After(7*sim.Millisecond, "block-b", cycle)

	owed := func(v *VCPU) int64 {
		return int64(v.RunTime()) * creditsPerTick / int64(cfg.Tick)
	}
	eng.Every(sim.Millisecond, "audit", func() {
		for _, vm := range h.VMs() {
			for _, v := range vm.VCPUs {
				o := owed(v)
				if v.debited > o {
					t.Errorf("t=%v %s: debited %d > owed %d (double charge)",
						eng.Now(), v.Name(), v.debited, o)
				}
				if lag := o - v.debited; lag > creditsPerTick+1 {
					t.Errorf("t=%v %s: settlement lags %d credits (> one tick)",
						eng.Now(), v.Name(), lag)
				}
			}
		}
	})
	_ = eng.Run(1 * sim.Second)
	h.SyncCreditAccounting()
	for _, vm := range h.VMs() {
		var wantVM int64
		for _, v := range vm.VCPUs {
			if v.debited != owed(v) {
				t.Fatalf("%s: final debited %d != owed %d for %v run",
					v.Name(), v.debited, owed(v), v.RunTime())
			}
			wantVM += v.debited
		}
		if vm.CreditsDebited != wantVM {
			t.Fatalf("%s: VM debit counter %d != vCPU sum %d", vm.Name, vm.CreditsDebited, wantVM)
		}
	}
}

// A yielding vCPU re-enqueues behind every peer of its own priority
// class (the yieldHint effective-priority trick), and the hint is
// consumed by that single enqueue.
func TestYieldHintOrdersBehindSamePriorityPeers(t *testing.T) {
	eng, h, _ := rig(t, DefaultConfig(1), false, 1, 1, 1)
	a := h.VMs()[0].VCPUs[0]
	eng.After(5*sim.Millisecond, "yield", func() {
		if a.State() != StateRunning {
			t.Fatal("vm-a not running at 5ms")
		}
		h.SchedOpYield(a)
		p := h.PCPU(0)
		// Both queued peers are PrioUnder like a; a must be last.
		if n := len(p.runq); n == 0 || p.runq[n-1] != a {
			t.Errorf("yielder not at runqueue tail: %v", p.runq)
		}
		if a.yieldHint {
			t.Error("yieldHint survived the enqueue")
		}
	})
	_ = eng.Run(50 * sim.Millisecond)
}

// BOOST is re-entrant: expiry at a tick demotes to the credit-derived
// class, but any later block/wake cycle re-grants it as long as the
// vCPU is not OVER — the exact loop the boost-gamer farms. An OVER
// vCPU waking must NOT be boosted.
func TestBoostReentryAfterWake(t *testing.T) {
	cfg := DefaultConfig(1)
	eng, h, _ := rig(t, cfg, false, 1)
	a := h.VMs()[0].VCPUs[0]
	grants := func() int64 { return h.VMs()[0].BoostGrants }
	block := func(label string) {
		if !h.SchedOpBlock(a) {
			t.Fatalf("%s: SchedOpBlock refused (state %v)", label, a.State())
		}
	}

	eng.After(5*sim.Millisecond, "block-1", func() { block("block-1") })
	eng.After(15*sim.Millisecond, "wake-1", func() {
		h.WakeVCPU(a)
		if a.Prio() != PrioBoost {
			t.Errorf("first wake: prio = %v, want BOOST", a.Prio())
		}
		if grants() != 1 {
			t.Errorf("first wake: grants = %d, want 1", grants())
		}
	})
	// By 35ms at least two ticks have fired, expiring the boost.
	eng.After(35*sim.Millisecond, "block-2", func() {
		if a.Prio() == PrioBoost {
			t.Error("boost did not expire at a tick")
		}
		block("block-2")
	})
	eng.After(45*sim.Millisecond, "wake-2", func() {
		// Pin the credit class: re-entry is gated on UNDER, and by now
		// the tick debits may have pushed a into OVER.
		a.credits = 100
		a.prio = PrioUnder
		h.WakeVCPU(a)
		if a.Prio() != PrioBoost {
			t.Errorf("second wake: prio = %v, want BOOST (re-entry)", a.Prio())
		}
		if grants() != 2 {
			t.Errorf("second wake: grants = %d, want 2", grants())
		}
	})
	// An OVER vCPU (credits exhausted) gets no boost on wake.
	eng.After(55*sim.Millisecond, "block-3", func() {
		a.credits = -200
		a.prio = PrioOver
		block("block-3")
	})
	eng.After(58*sim.Millisecond, "wake-3", func() {
		h.WakeVCPU(a)
		if a.Prio() == PrioBoost {
			t.Error("OVER vCPU was boosted on wake")
		}
		if grants() != 2 {
			t.Errorf("OVER wake: grants = %d, want 2 (no new grant)", grants())
		}
		eng.Stop()
	})
	_ = eng.Run(300 * sim.Millisecond)
}

// Jittered tick sampling keeps the mean debit rate (the defense must
// not change honest tenants' bills) and stays deterministic per seed.
func TestJitteredTickPreservesMeanRateDeterministically(t *testing.T) {
	run := func(seed uint64) int64 {
		cfg := DefaultConfig(1)
		cfg.TickJitter = 0.3
		cfg.Seed = seed
		eng, h, _ := rig(t, cfg, false, 1)
		_ = eng.Run(2 * sim.Second)
		return h.VMs()[0].CreditsDebited
	}
	d1 := run(1)
	if d1 != run(1) {
		t.Fatal("same-seed jittered runs diverged")
	}
	// 2s / 10ms mean period = ~200 ticks of 100 credits.
	if d1 < 170*creditsPerTick || d1 > 230*creditsPerTick {
		t.Fatalf("jittered tick debited %d credits over 2s, want ~200 ticks' worth", d1)
	}
}

func TestTickJitterOutOfRangePanics(t *testing.T) {
	for _, j := range []float64{-0.1, 1.0, 2.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TickJitter=%v did not panic", j)
				}
			}()
			cfg := DefaultConfig(1)
			cfg.TickJitter = j
			New(sim.NewEngine(), cfg)
		}()
	}
}
