package hypervisor

import (
	"testing"

	"repro/internal/decision"
	"repro/internal/sim"
)

// decRig is occRig with a decision ring threaded through Config: nVMs
// single-vCPU VMs with stub guests pinned to pCPU 0, so the timeslice
// round-robin generates a steady stream of involuntary preemptions.
func decRig(nVMs int, d *decision.Ring) (*sim.Engine, *Hypervisor) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Decisions = d
	h := New(eng, cfg)
	for vi := 0; vi < nVMs; vi++ {
		vm := h.NewVM("vm"+string(rune('a'+vi)), 1, 256, false)
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(0))
		h.StartVCPU(v)
	}
	return eng, h
}

func TestPreemptDecisionsRecorded(t *testing.T) {
	log := decision.NewLog(1, decision.Options{Kinds: decision.AllKinds()})
	eng, _ := decRig(2, log.Ring(0))
	if err := eng.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	log.Merge()
	recs := log.Records()
	var preempts int
	for i := range recs {
		r := &recs[i]
		if r.Kind != decision.KindPreempt {
			continue
		}
		preempts++
		if r.Subject != "vma" && r.Subject != "vmb" {
			t.Fatalf("preempt subject %q", r.Subject)
		}
		if got, ok := r.Input("pcpu"); !ok || got != "p0" {
			t.Fatalf("preempt pcpu input %q (ok=%v)", got, ok)
		}
		if _, ok := r.Input("class"); !ok {
			t.Fatalf("preempt record lacks class input: %+v", r)
		}
	}
	// 30ms timeslice, two runnable vCPUs, 1s horizon: dozens of
	// involuntary preemptions; the exact count is the scheduler's
	// business, presence and shape are ours.
	if preempts < 10 {
		t.Fatalf("%d preempt decisions over 1s, want >= 10 (records: %d)", preempts, len(recs))
	}
}

func TestBoostDecisionRecorded(t *testing.T) {
	log := decision.NewLog(1, decision.Options{Kinds: decision.AllKinds()})
	eng, h := decRig(2, log.Ring(0))
	if err := eng.Run(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Block vma's vCPU via hypercall, then wake it: the wake grants
	// BOOST and must leave a decision record.
	v := h.VMs()[0].VCPUs[0]
	if v.State() == StateRunning {
		h.deschedule(v.pcpu, StateRunnable, false)
	}
	v.setState(StateBlocked)
	v.prio = PrioUnder // the grant predicate: only UNDER vCPUs boost
	h.WakeVCPU(v)
	log.Merge()
	var boosts int
	for _, r := range log.Records() {
		if r.Kind == decision.KindBoost && r.Subject == "vma" {
			boosts++
			if r.Winner != "vma/v0" {
				t.Fatalf("boost winner %q, want vma/v0", r.Winner)
			}
			if _, ok := r.Input("credits"); !ok {
				t.Fatalf("boost record lacks credits input: %+v", r)
			}
		}
	}
	if boosts != 1 {
		t.Fatalf("%d boost decisions for vma, want 1", boosts)
	}
}

// TestDisabledDecisionLogZeroAllocs pins the acceptance criterion: with
// no decision ring installed (the default), the scheduling hot path —
// timeslice preemptions, deschedule/dispatch cycles, wakes — allocates
// nothing per op. The nil-ring Wants test is all a hook site pays.
func TestDisabledDecisionLogZeroAllocs(t *testing.T) {
	eng, _ := decRig(2, nil)
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	step := 90 * sim.Millisecond // three timeslices per op
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.Run(eng.Now() + step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled decision log hot path allocates %v allocs/op, want 0", allocs)
	}
}

// TestMaskedOutDecisionLogZeroAllocs covers the other off state: a ring
// is installed but its kind mask excludes the hypervisor kinds (the
// default for cluster runs, which record control-plane kinds only).
func TestMaskedOutDecisionLogZeroAllocs(t *testing.T) {
	log := decision.NewLog(1, decision.Options{Kinds: decision.ControlKinds()})
	eng, _ := decRig(2, log.Ring(0))
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	step := 90 * sim.Millisecond
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.Run(eng.Now() + step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("masked-out decision log hot path allocates %v allocs/op, want 0", allocs)
	}
}

func benchDecisionHotPath(b *testing.B, d *decision.Ring) {
	eng, _ := decRig(2, d)
	if err := eng.Run(2 * sim.Second); err != nil {
		b.Fatal(err)
	}
	step := 90 * sim.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Run(eng.Now() + step); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathNoDecisions(b *testing.B) { benchDecisionHotPath(b, nil) }

func BenchmarkHotPathWithDecisions(b *testing.B) {
	log := decision.NewLog(1, decision.Options{Kinds: decision.AllKinds()})
	benchDecisionHotPath(b, log.Ring(0))
}
