package hypervisor

import (
	"fmt"

	"repro/internal/sim"
)

// This file holds the hypervisor half of whole-VM migration: extracting
// a scheduler-state snapshot of a VM on the source host and seeding a
// freshly created VM on the destination host with it. The cluster layer
// models the data-plane costs (pre-copy delay, switchover pause) and
// carries the guest's queued work; the hypervisor contributes the
// scheduler state so credit balances and priorities survive the move
// instead of resetting to a fresh VM's defaults.

// VCPUSnapshot carries one vCPU's scheduler state across a migration.
type VCPUSnapshot struct {
	Credits   int
	Prio      Priority
	RunTime   sim.Time // cumulative execution on the source at snapshot time
	StealTime sim.Time // cumulative steal on the source at snapshot time
}

// VMSnapshot is the migratable scheduler state of a whole VM.
type VMSnapshot struct {
	Name      string
	Weight    int
	SACapable bool
	At        sim.Time // when the snapshot was taken
	LHP, LWP  int64
	VCPUs     []VCPUSnapshot
}

// SnapshotVM captures vm's migratable scheduler state at the current
// instant. The VM keeps running on the source host; pre-copy rounds are
// modeled by the caller as delay before the switchover pause.
func (h *Hypervisor) SnapshotVM(vm *VM) VMSnapshot {
	snap := VMSnapshot{
		Name:      vm.Name,
		Weight:    vm.Weight,
		SACapable: vm.SACapable,
		At:        h.eng.Now(),
		LHP:       vm.LHPCount,
		LWP:       vm.LWPCount,
	}
	for _, v := range vm.VCPUs {
		snap.VCPUs = append(snap.VCPUs, VCPUSnapshot{
			Credits:   v.credits,
			Prio:      v.prio,
			RunTime:   v.RunTime(),
			StealTime: v.StealTime(),
		})
	}
	return snap
}

// RestoreVM seeds a freshly created, not-yet-started VM with the
// scheduler state from snap. It must run before StartVCPU so the
// restored credit balances take effect on first dispatch. The vCPU
// count must match. Runstate clocks restart from zero: run/steal time
// is per-host accounting and stays with the source. A BOOST priority
// does not survive the move — the destination treats the vCPU as a
// plain wakeup.
func (h *Hypervisor) RestoreVM(vm *VM, snap VMSnapshot) error {
	if len(vm.VCPUs) != len(snap.VCPUs) {
		return fmt.Errorf("hypervisor: restore %s: VM has %d vCPUs, snapshot has %d",
			vm.Name, len(vm.VCPUs), len(snap.VCPUs))
	}
	for _, v := range vm.VCPUs {
		if v.started || v.state != StateOffline {
			return fmt.Errorf("hypervisor: restore %s: %s is already started", vm.Name, v.Name())
		}
	}
	for i, v := range vm.VCPUs {
		s := snap.VCPUs[i]
		if s.Credits < creditFloor || s.Credits > creditCap {
			return fmt.Errorf("hypervisor: restore %s: snapshot credits %d outside [%d, %d]",
				vm.Name, s.Credits, creditFloor, creditCap)
		}
		v.credits = s.Credits
		switch s.Prio {
		case PrioBoost, 0:
			v.prio = PrioUnder
		default:
			v.prio = s.Prio
		}
	}
	vm.Weight = snap.Weight
	vm.LHPCount = snap.LHP
	vm.LWPCount = snap.LWP
	return nil
}

// SyncRunstateAccounting folds every started vCPU's currently accruing
// runstate interval into its cumulative counters and obs metrics.
// Runstate counters normally advance only on state transitions, so a
// vCPU that runs (or starves) continuously is invisible to registry
// readers until its next transition; callers sampling the registry as a
// load signal invoke this first to see exact values.
func (h *Hypervisor) SyncRunstateAccounting() {
	for _, vm := range h.vms {
		for _, v := range vm.VCPUs {
			if v.started {
				v.setState(v.state)
			}
		}
	}
}
