// Package hypervisor models a Xen-style type-1 hypervisor: physical
// CPUs, SMP virtual machines with virtual CPUs, the credit scheduler
// (30 ms slices, 10 ms ticks, BOOST/UNDER/OVER priorities), virtual
// interrupt delivery, a small hypercall surface, and the scheduling
// strategies evaluated by the paper (vanilla, PLE, relaxed
// co-scheduling, and the IRS scheduler-activation sender).
package hypervisor

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RunState is the hypervisor-visible state of a vCPU, mirroring Xen's
// RUNSTATE_* accounting states.
type RunState int

const (
	// StateRunning means the vCPU is executing on a pCPU.
	StateRunning RunState = iota + 1
	// StateRunnable means the vCPU wants to run but has been preempted.
	// Time spent here is "steal time" from the guest's point of view.
	StateRunnable
	// StateBlocked means the vCPU is idle or waiting for an event.
	StateBlocked
	// StateOffline means the vCPU is not started.
	StateOffline
)

func (s RunState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateRunnable:
		return "runnable"
	case StateBlocked:
		return "blocked"
	case StateOffline:
		return "offline"
	default:
		return fmt.Sprintf("RunState(%d)", int(s))
	}
}

// Priority is a credit-scheduler priority class.
type Priority int

const (
	// PrioBoost is given to vCPUs waking from a blocked state so that
	// latency-sensitive vCPUs run promptly.
	PrioBoost Priority = iota + 1
	// PrioUnder means the vCPU still has credits.
	PrioUnder
	// PrioOver means the vCPU has exhausted its credits.
	PrioOver
)

func (p Priority) String() string {
	switch p {
	case PrioBoost:
		return "BOOST"
	case PrioUnder:
		return "UNDER"
	case PrioOver:
		return "OVER"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// GuestContext is the guest-kernel side of one vCPU. The hypervisor
// drives the guest through these hooks; they are invoked synchronously
// from scheduler code at well-defined points.
type GuestContext interface {
	// Resume is called when the vCPU begins executing on a pCPU.
	// Pending interrupts should be taken before resuming user work.
	Resume()
	// Suspend is called when the vCPU stops executing (preemption or
	// block). The guest must freeze in-flight work accounting.
	Suspend()
	// TakeIRQ delivers an interrupt while the vCPU is executing.
	TakeIRQ(irq IRQ)
	// Descheduling lets the guest classify what the vCPU was doing for
	// LHP/LWP accounting just before an involuntary preemption.
	Descheduling() PreemptClass
}

// PreemptClass classifies what a vCPU was executing when preempted,
// used for lock-holder/lock-waiter preemption accounting.
type PreemptClass int

const (
	// PreemptOther is a preemption with no lock involvement.
	PreemptOther PreemptClass = iota + 1
	// PreemptLockHolder means the running task held a lock (LHP).
	PreemptLockHolder
	// PreemptLockWaiter means the running task waited on a lock (LWP).
	PreemptLockWaiter
	// PreemptIdle means the vCPU was idling.
	PreemptIdle
)

func (c PreemptClass) String() string {
	switch c {
	case PreemptOther:
		return "other"
	case PreemptLockHolder:
		return "lock-holder"
	case PreemptLockWaiter:
		return "lock-waiter"
	case PreemptIdle:
		return "idle"
	}
	return fmt.Sprintf("PreemptClass(%d)", int(c))
}

// VCPU is one virtual CPU of a VM.
type VCPU struct {
	ID  int
	VM  *VM
	hv  *Hypervisor
	ctx GuestContext

	state      RunState
	stateSince sim.Time
	stateTime  [StateOffline + 1]sim.Time

	prio    Priority
	credits int
	// debited is the cumulative credits charged to this vCPU under
	// exact accounting; the next settlement charges the difference
	// between the credits owed for total runtime and this figure, so a
	// run interval is never charged twice (tick + deschedule edges).
	debited int64

	pcpu     *PCPU // where running, nil otherwise
	assigned *PCPU // home runqueue
	pinned   *PCPU // hard affinity, nil = float

	sliceStart sim.Time // when the vCPU was last put on a pCPU
	occSince   sim.Time // start of the accruing occupancy interval
	// (distinct from sliceStart: occupancy flushes mid-slice via
	// SyncOccupancyAccounting without disturbing ratelimit math)

	saPending  bool         // an SA notification awaits guest acknowledgement
	saSentAt   sim.Time     // when the pending SA was sent
	saDeadline sim.EventRef // hard limit for SA completion

	// Circuit-breaker state (cfg.SABreakerN): consecutive hard-limit
	// expiries without an intervening ack, and when the breaker opened.
	saConsecExpired   int
	saBreakerOpenedAt sim.Time

	started   bool     // StartVCPU has run
	startedAt sim.Time // when the vCPU came online

	pendingIRQ []IRQ
	timer      sim.EventRef // one-shot guest timer
	timerAt    sim.Time

	yieldHint bool // vCPU yielded; enqueue behind peers of same class

	spinningSince sim.Time     // PLE: when continuous spinning began (0 = not spinning)
	pleEvent      sim.EventRef // PLE window expiry

	parkedUntil sim.Time // relaxed-co: vCPU must not run before this time
	// parkCatchRef/parkCatchTarget release the park early once the
	// lagging sibling's cumulative runtime reaches the target.
	parkCatchRef    *VCPU
	parkCatchTarget sim.Time

	// accActive records CPU consumption within the current accounting
	// window so bursty blockers still receive credits.
	accActive bool
	// acctRun accumulates runtime toward the next placement
	// re-evaluation (csched_vcpu_acct).
	acctRun sim.Time

	// Window accounting for relaxed-co progress monitoring.
	windowRun          sim.Time
	windowBlocked      sim.Time
	windowLastProgress sim.Time

	preemptions int64
	wakeups     int64

	// observer, when set, is called after every externally visible
	// scheduling transition of this vCPU: a runstate change or an SA
	// handshake opening/closing. The guest's span instrumentation uses
	// it to re-blame the tasks riding on the vCPU; it is nil (and the
	// notification free) otherwise.
	observer func()

	// Metric handles (nil, hence no-op, without a registry).
	mState   [StateOffline + 1]*obs.Counter // cumulative ns per runstate
	mPreempt *obs.Counter
}

// Name returns a short identifier such as "vm1/v2".
func (v *VCPU) Name() string { return fmt.Sprintf("%s/v%d", v.VM.Name, v.ID) }

// State returns the current hypervisor run state.
func (v *VCPU) State() RunState { return v.state }

// Pin constrains the vCPU to a single pCPU.
func (v *VCPU) Pin(p *PCPU) {
	v.pinned = p
	v.assigned = p
}

// Pinned returns the pCPU this vCPU is pinned to, or nil.
func (v *VCPU) Pinned() *PCPU { return v.pinned }

// setState moves the vCPU to state s, folding the elapsed interval into
// the runstate accounting that backs steal-time reporting.
func (v *VCPU) setState(s RunState) {
	now := v.hv.eng.Now()
	v.stateTime[v.state] += now - v.stateSince
	v.mState[v.state].AddTime(now - v.stateSince)
	if v.state == StateRunning {
		v.windowRun += now - v.stateSince
	} else if v.state == StateBlocked {
		v.windowBlocked += now - v.stateSince
	}
	if tl := v.hv.cfg.Trace; tl != nil && s != v.state {
		tl.Recordf(now, trace.KindVCPUState, v.Name(), "%s -> %s", v.state, s)
	}
	changed := s != v.state
	v.state = s
	v.stateSince = now
	if changed {
		v.notifyObserver()
	}
}

// SetObserver registers fn to be invoked after every runstate change
// and SA-handshake flip of this vCPU. One observer per vCPU; nil
// unregisters.
func (v *VCPU) SetObserver(fn func()) { v.observer = fn }

func (v *VCPU) notifyObserver() {
	if v.observer != nil {
		v.observer()
	}
}

// SAPending reports whether a scheduler-activation handshake is open:
// the hypervisor sent VIRQ_SA_UPCALL and awaits the guest's sched_op
// acknowledgement.
func (v *VCPU) SAPending() bool { return v.saPending }

// StateTime reports the cumulative time spent in state s, including the
// currently accruing interval.
func (v *VCPU) StateTime(s RunState) sim.Time {
	t := v.stateTime[s]
	if v.state == s {
		t += v.hv.eng.Now() - v.stateSince
	}
	return t
}

// StealTime reports time the vCPU spent runnable-but-not-running.
func (v *VCPU) StealTime() sim.Time { return v.StateTime(StateRunnable) }

// RunTime reports the total time the vCPU has executed.
func (v *VCPU) RunTime() sim.Time { return v.StateTime(StateRunning) }

// Runnable reports whether the vCPU wants CPU (running or queued).
func (v *VCPU) Runnable() bool {
	return v.state == StateRunning || v.state == StateRunnable
}

// Preemptions reports how many involuntary preemptions this vCPU has
// suffered.
func (v *VCPU) Preemptions() int64 { return v.preemptions }

// VM is an SMP virtual machine.
type VM struct {
	ID     int
	Name   string
	Weight int // credit-scheduler weight (default 256)
	VCPUs  []*VCPU
	hv     *Hypervisor

	// SACapable marks guests that implement the VIRQ_SA_UPCALL
	// handler. Guests without it ignore SA notifications, so the
	// hypervisor must not wait for an acknowledgement.
	SACapable bool

	// Counters for lock-holder / lock-waiter preemption events.
	LHPCount int64
	LWPCount int64

	// BoostGrants counts BOOST priorities granted on wake; CreditsDebited
	// the credits charged across all vCPUs (tick-sampled or exact).
	// Together with TheftStats they make scheduler theft first-class:
	// a tick-evader shows near-zero debits, a boost-gamer an outsized
	// grant count.
	BoostGrants    int64
	CreditsDebited int64

	// Metric handles (nil, hence no-op, without a registry).
	mPreemptWait *obs.Histogram
	mSAAck       *obs.Histogram
	mSASent      *obs.Counter
	mSAAcked     *obs.Counter
	mSAExpired   *obs.Counter
	mSAFallback  *obs.Counter
	mSABreaker   *obs.Counter
	mLHP         *obs.Counter
	mLWP         *obs.Counter
	mBoost       *obs.Counter
	mCredits     *obs.Counter
	mDebited     *obs.Counter
}

// TotalRunTime sums the execution time of all vCPUs.
func (vm *VM) TotalRunTime() sim.Time {
	var t sim.Time
	for _, v := range vm.VCPUs {
		t += v.RunTime()
	}
	return t
}

// TotalStealTime sums steal time across all vCPUs.
func (vm *VM) TotalStealTime() sim.Time {
	var t sim.Time
	for _, v := range vm.VCPUs {
		t += v.StealTime()
	}
	return t
}

// Credits exposes the current credit balance (diagnostics).
func (v *VCPU) Credits() int { return v.credits }

// Prio exposes the current priority class (diagnostics).
func (v *VCPU) Prio() Priority { return v.prio }
