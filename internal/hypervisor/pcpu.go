package hypervisor

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// PCPU is one physical CPU. Each pCPU has its own runqueue of vCPUs,
// ordered by priority class (BOOST, UNDER, OVER) and FIFO within a
// class, exactly like Xen's credit scheduler.
type PCPU struct {
	ID      int
	hv      *Hypervisor
	current *VCPU
	runq    []*VCPU

	sliceEnd sim.EventRef // end of the current 30 ms timeslice

	// sliceName/sliceFn are the timeslice event's label and callback,
	// built once at construction: re-arming happens on every context
	// switch, and allocating a fresh string + closure there put ~9
	// allocs/op on an otherwise allocation-free hot path.
	sliceName string
	sliceFn   func()

	// saWait is set while the pCPU stalls a preemption waiting for the
	// guest to acknowledge a scheduler activation.
	saWait bool

	idleSince sim.Time
	idleTotal sim.Time

	// loadSnapshot is the runnable-count view the balancer exposes to
	// wake placement. It refreshes only at ticks, so near-simultaneous
	// wakeups herd toward the same "least loaded" pCPU — the staleness
	// that produces CPU stacking (§5.6).
	loadSnapshot int

	switches  int64
	mSwitches *obs.Counter // nil without a registry
}

// snapshotLoad refreshes the stale load view.
func (p *PCPU) snapshotLoad() {
	p.loadSnapshot = p.QueueLen()
	if p.current != nil {
		p.loadSnapshot++
	}
}

// Name returns a short identifier such as "p3".
func (p *PCPU) Name() string { return fmt.Sprintf("p%d", p.ID) }

// Current returns the vCPU executing on this pCPU, or nil when idle.
func (p *PCPU) Current() *VCPU { return p.current }

// QueueLen returns the number of queued (not running) vCPUs.
func (p *PCPU) QueueLen() int { return len(p.runq) }

// Queued returns the runqueue contents in order. The caller must not
// mutate the returned slice.
func (p *PCPU) Queued() []*VCPU { return p.runq }

// Switches reports the number of context switches performed.
func (p *PCPU) Switches() int64 { return p.switches }

// IdleTime reports the cumulative idle time of the pCPU.
func (p *PCPU) IdleTime() sim.Time {
	t := p.idleTotal
	if p.current == nil {
		t += p.hv.eng.Now() - p.idleSince
	}
	return t
}

// enqueue inserts v into the runqueue respecting priority classes.
// Within a class vCPUs queue FIFO; a yielding vCPU goes behind all
// vCPUs of its own class regardless (yieldHint), matching Xen's
// SCHED_YIELD handling.
func (p *PCPU) enqueue(v *VCPU) {
	pos := len(p.runq)
	for i, q := range p.runq {
		if effectivePrio(v) < effectivePrio(q) {
			pos = i
			break
		}
	}
	p.runq = append(p.runq, nil)
	copy(p.runq[pos+1:], p.runq[pos:])
	p.runq[pos] = v
	v.yieldHint = false
}

// effectivePrio maps a vCPU to its queueing class. A yield hint demotes
// the vCPU behind its own class by treating it as slightly lower
// priority for insertion ordering.
func effectivePrio(v *VCPU) int {
	pr := int(v.prio) * 2
	if v.yieldHint {
		pr++
	}
	return pr
}

// dequeue removes v from the runqueue. It reports whether v was queued.
func (p *PCPU) dequeue(v *VCPU) bool {
	for i, q := range p.runq {
		if q == v {
			p.runq = append(p.runq[:i], p.runq[i+1:]...)
			return true
		}
	}
	return false
}

// peek returns the head of the runqueue without removing it, skipping
// vCPUs parked by relaxed co-scheduling.
func (p *PCPU) peek(now sim.Time) *VCPU {
	for _, q := range p.runq {
		if q.parkedUntil <= now {
			return q
		}
	}
	return nil
}

// pop removes and returns the first schedulable vCPU.
func (p *PCPU) pop(now sim.Time) *VCPU {
	for i, q := range p.runq {
		if q.parkedUntil <= now {
			p.runq = append(p.runq[:i], p.runq[i+1:]...)
			return q
		}
	}
	return nil
}
