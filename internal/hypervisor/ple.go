package hypervisor

import "repro/internal/sim"

// Pause-loop exiting (PLE). Real hardware counts PAUSE instructions in
// a tight loop and raises a VM-exit when a vCPU spins too long; Xen's
// handler then yields the vCPU. The simulated guest reports when the
// running task enters or leaves a PAUSE spin loop; with StrategyPLE the
// hypervisor arms a window and forces a yield when it expires while the
// vCPU is still spinning.

// SpinBegin tells the hypervisor that the vCPU entered a PAUSE loop.
// Guests call it when a task starts spinning and again on resume if the
// current task is still spinning.
func (h *Hypervisor) SpinBegin(v *VCPU) {
	if h.cfg.Strategy != StrategyPLE || v.state != StateRunning {
		return
	}
	if v.spinningSince != 0 {
		return
	}
	v.spinningSince = h.eng.Now()
	v.pleEvent = h.eng.After(h.cfg.PLEWindow, "ple-"+v.Name(), func() { h.pleExit(v) })
}

// SpinEnd tells the hypervisor the vCPU stopped spinning (lock acquired
// or the spinning task was switched out by the guest).
func (h *Hypervisor) SpinEnd(v *VCPU) {
	if v.spinningSince == 0 {
		return
	}
	v.spinningSince = 0
	h.eng.Cancel(v.pleEvent)
	v.pleEvent = sim.EventRef{}
}

// stopPLEWindow is invoked from deschedule: the window only measures
// continuous spinning while executing.
func (h *Hypervisor) stopPLEWindow(v *VCPU) {
	h.SpinEnd(v)
}

// pleExit is the VM-exit: the spinning vCPU is forced to yield. In the
// credit scheduler a yielding vCPU queues behind its priority class, so
// a competing VM's vCPU typically runs next (the behaviour §5.2 blames
// for PLE's poor showing on blocking workloads).
func (h *Hypervisor) pleExit(v *VCPU) {
	if v.spinningSince == 0 || v.state != StateRunning || v.pcpu == nil {
		return
	}
	p := v.pcpu
	if p.saWait {
		return
	}
	if p.peek(h.eng.Now()) == nil {
		// Nobody to yield to; keep spinning and re-arm the window.
		v.pleEvent = h.eng.After(h.cfg.PLEWindow, "ple-"+v.Name(), func() { h.pleExit(v) })
		return
	}
	v.spinningSince = 0
	v.pleEvent = sim.EventRef{}
	v.yieldHint = true
	h.pleYields++
	h.mPLEYields.Inc()
	h.deschedule(p, StateRunnable, false)
	h.dispatch(p)
}
