package hypervisor

import "repro/internal/sim"

// This file is the hypercall surface exposed to guest kernels. All
// calls are synchronous: the guest invokes them from vCPU context while
// it is executing.

// SchedOpBlock is HYPERVISOR_sched_op(SCHEDOP_block): the guest has no
// runnable work and gives up the vCPU until an event arrives. When the
// call doubles as an SA acknowledgement the pending flag is cleared.
// It returns false (and does not block) if an interrupt is pending.
func (h *Hypervisor) SchedOpBlock(v *VCPU) bool {
	if v.state != StateRunning || v.pcpu == nil {
		return false
	}
	if len(v.pendingIRQ) > 0 {
		return false
	}
	if v.saPending {
		h.completeSA(v, StateBlocked)
		return true
	}
	p := v.pcpu
	h.deschedule(p, StateBlocked, false)
	h.dispatch(p)
	return true
}

// SchedOpYield is HYPERVISOR_sched_op(SCHEDOP_yield): the vCPU remains
// runnable but yields the pCPU, queueing behind peers of its priority
// class. Doubles as an SA acknowledgement when one is pending.
func (h *Hypervisor) SchedOpYield(v *VCPU) {
	if v.state != StateRunning || v.pcpu == nil {
		return
	}
	if v.saPending {
		h.completeSA(v, StateRunnable)
		return
	}
	p := v.pcpu
	v.yieldHint = true
	h.deschedule(p, StateRunnable, false)
	h.dispatch(p)
}

// Runstate is what VCPUOP_get_runstate_info reports to the guest.
type Runstate struct {
	State RunState
	Steal sim.Time
}

// GetRunstate is HYPERVISOR_vcpu_op(VCPUOP_get_runstate_info): it lets
// the guest (the IRS migrator, steal-time accounting) observe the true
// hypervisor state of any sibling vCPU.
func (h *Hypervisor) GetRunstate(v *VCPU) Runstate {
	return Runstate{State: v.state, Steal: v.StealTime()}
}

// SetTimer arms the per-vCPU one-shot timer (VCPUOP_set_singleshot_timer).
// When it fires the vCPU receives IRQTimer; if it was blocked it wakes.
func (h *Hypervisor) SetTimer(v *VCPU, at sim.Time) {
	h.eng.Cancel(v.timer)
	now := h.eng.Now()
	if at < now {
		at = now
	}
	v.timerAt = at
	v.timer = h.eng.At(at, "xen-timer-"+v.Name(), func() {
		v.timer = nil
		h.SendIRQ(v, IRQTimer)
	})
}

// StopTimer cancels the pending one-shot timer, if any.
func (h *Hypervisor) StopTimer(v *VCPU) {
	h.eng.Cancel(v.timer)
	v.timer = nil
}

// Kick sends an event-channel notification to a sibling vCPU (the
// reschedule-IPI analogue). Blocked vCPUs wake with BOOST priority.
func (h *Hypervisor) Kick(v *VCPU) {
	h.SendIRQ(v, IRQKick)
}
