package hypervisor

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the hypercall surface exposed to guest kernels. All
// calls are synchronous: the guest invokes them from vCPU context while
// it is executing.

// SchedOpBlock is HYPERVISOR_sched_op(SCHEDOP_block): the guest has no
// runnable work and gives up the vCPU until an event arrives. When the
// call doubles as an SA acknowledgement the pending flag is cleared.
// It returns false (and does not block) if an interrupt is pending.
func (h *Hypervisor) SchedOpBlock(v *VCPU) bool {
	if v.state != StateRunning || v.pcpu == nil {
		return false
	}
	if len(v.pendingIRQ) > 0 {
		return false
	}
	if v.saPending {
		// The block doubles as the SA acknowledgement; under fault
		// injection the ack may be lost (the guest keeps the vCPU and
		// the hard limit fires) or arrive late.
		return h.ackSA(v, StateBlocked)
	}
	p := v.pcpu
	h.deschedule(p, StateBlocked, false)
	h.dispatch(p)
	return true
}

// SchedOpYield is HYPERVISOR_sched_op(SCHEDOP_yield): the vCPU remains
// runnable but yields the pCPU, queueing behind peers of its priority
// class. Doubles as an SA acknowledgement when one is pending.
func (h *Hypervisor) SchedOpYield(v *VCPU) {
	if v.state != StateRunning || v.pcpu == nil {
		return
	}
	if v.saPending {
		h.ackSA(v, StateRunnable)
		return
	}
	p := v.pcpu
	v.yieldHint = true
	h.deschedule(p, StateRunnable, false)
	h.dispatch(p)
}

// ackSA settles an SA acknowledgement subject to fault injection. It
// reports whether the guest's hypercall took effect: a lost ack leaves
// the handshake open (the hard limit will preempt), a delayed ack
// completes after the injected latency, and the fault-free path
// completes immediately.
func (h *Hypervisor) ackSA(v *VCPU, disposition RunState) bool {
	lost, delay := h.cfg.Faults.AckFault()
	if lost {
		if tl := h.cfg.Trace; tl != nil {
			tl.Record(h.eng.Now(), trace.KindSA, v.Name(), "ack lost (fault)")
		}
		return false
	}
	if delay > 0 {
		h.eng.After(delay, "fault-ack-delay-"+v.Name(), func() {
			// The hard limit may have fired meanwhile; a settled
			// handshake swallows the late ack.
			if v.saPending && v.pcpu != nil {
				h.completeSA(v, disposition)
			}
		})
		return true
	}
	h.completeSA(v, disposition)
	return true
}

// Runstate is what VCPUOP_get_runstate_info reports to the guest.
type Runstate struct {
	State RunState
	Steal sim.Time
}

// rsSnap is a cached runstate answer used to serve stale snapshots
// under fault injection.
type rsSnap struct {
	rs Runstate
	at sim.Time
}

// GetRunstate is HYPERVISOR_vcpu_op(VCPUOP_get_runstate_info): it lets
// the guest (the IRS migrator, steal-time accounting) observe the true
// hypervisor state of any sibling vCPU. With a StaleRunstate fault the
// answer comes from a per-vCPU snapshot refreshed only once it exceeds
// the staleness bound, so the guest can observe a sibling as running
// long after it was preempted.
func (h *Hypervisor) GetRunstate(v *VCPU) Runstate {
	maxAge := h.cfg.Faults.RunstateMaxAge()
	if maxAge <= 0 {
		return Runstate{State: v.state, Steal: v.StealTime()}
	}
	now := h.eng.Now()
	if s, ok := h.staleRS[v]; ok && now-s.at <= maxAge {
		if now > s.at {
			h.cfg.Faults.RecordStaleServe()
		}
		return s.rs
	}
	rs := Runstate{State: v.state, Steal: v.StealTime()}
	if h.staleRS == nil {
		h.staleRS = make(map[*VCPU]rsSnap)
	}
	h.staleRS[v] = rsSnap{rs: rs, at: now}
	return rs
}

// SetTimer arms the per-vCPU one-shot timer (VCPUOP_set_singleshot_timer).
// When it fires the vCPU receives IRQTimer; if it was blocked it wakes.
func (h *Hypervisor) SetTimer(v *VCPU, at sim.Time) {
	h.eng.Cancel(v.timer)
	now := h.eng.Now()
	if at < now {
		at = now
	}
	v.timerAt = at
	v.timer = h.eng.At(at, "xen-timer-"+v.Name(), func() {
		v.timer = sim.EventRef{}
		h.SendIRQ(v, IRQTimer)
	})
}

// StopTimer cancels the pending one-shot timer, if any.
func (h *Hypervisor) StopTimer(v *VCPU) {
	h.eng.Cancel(v.timer)
	v.timer = sim.EventRef{}
}

// Kick sends an event-channel notification to a sibling vCPU (the
// reschedule-IPI analogue). Blocked vCPUs wake with BOOST priority.
func (h *Hypervisor) Kick(v *VCPU) {
	h.SendIRQ(v, IRQKick)
}
