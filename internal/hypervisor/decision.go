package hypervisor

import (
	"fmt"
	"strconv"

	"repro/internal/decision"
	"repro/internal/sim"
)

// Decision-log producers for the two per-vCPU scheduler choices worth
// auditing: BOOST grants on wake and involuntary preemptions. Both are
// hot-path sites (WakeVCPU, deschedule), so the callers gate on
// Ring.Wants before calling in here; these helpers are the cold path
// and are marked noinline so their record construction never bloats the
// scheduler fast path or defeats the zero-alloc-when-off guarantee
// (pinned by TestDisabledDecisionLogZeroAllocs).

//go:noinline
func (h *Hypervisor) recordBoost(d *decision.Ring, v *VCPU) {
	d.Add(decision.Record{
		At:      h.eng.Now(),
		Kind:    decision.KindBoost,
		Subject: v.VM.Name,
		Winner:  v.Name(),
		Detail:  fmt.Sprintf("wake boost for %s", v.Name()),
		Inputs: []decision.KV{
			{Key: "credits", Val: strconv.Itoa(v.credits)},
			{Key: "grants", Val: strconv.FormatInt(v.VM.BoostGrants, 10)},
		},
	})
}

//go:noinline
func (h *Hypervisor) recordPreempt(d *decision.Ring, now sim.Time, p *PCPU, v *VCPU, pc PreemptClass, disposition RunState) {
	d.Add(decision.Record{
		At:      now,
		Kind:    decision.KindPreempt,
		Subject: v.VM.Name,
		Winner:  v.Name(),
		Detail:  fmt.Sprintf("involuntary deschedule of %s on %s (%s)", v.Name(), p.Name(), pc),
		Inputs: []decision.KV{
			{Key: "pcpu", Val: p.Name()},
			{Key: "class", Val: pc.String()},
			{Key: "prio", Val: v.prio.String()},
			{Key: "credits", Val: strconv.Itoa(v.credits)},
			{Key: "to", Val: disposition.String()},
		},
	})
}
