package hypervisor

import "repro/internal/sim"

// Relaxed co-scheduling, re-implemented the way the paper's authors did
// for Xen (§5.1): every accounting period (30 ms) the hypervisor
// measures per-vCPU progress within the period for each SMP VM. A vCPU
// "makes progress" while it executes guest instructions *or while it is
// idle* — the deceptive-idleness flaw the paper analyses (§5.2, §5.6).
// When the skew between the most and least progressed sibling exceeds
// the threshold, the leading vCPU is stopped and the most lagging
// sibling is boosted so it can catch up ("when a VM's leading vCPU is
// stopped, the hypervisor switches it with its slowest sibling vCPU to
// boost the execution of this lagging vCPU").

func (h *Hypervisor) relaxedCoAccount() {
	now := h.eng.Now()
	for _, vm := range h.vms {
		if len(vm.VCPUs) < 2 {
			continue
		}
		var leader, laggard *VCPU
		var maxP, minP sim.Time
		for _, v := range vm.VCPUs {
			if v.state == StateOffline {
				continue
			}
			// Fold the in-progress interval into the window counters.
			v.setState(v.state)
			p := v.windowRun + v.windowBlocked
			v.windowLastProgress = p
			if leader == nil || p > maxP {
				leader, maxP = v, p
			}
			if laggard == nil || p < minP {
				laggard, minP = v, p
			}
		}
		for _, v := range vm.VCPUs {
			v.windowRun, v.windowBlocked = 0, 0
		}
		if leader == nil || laggard == nil || leader == laggard {
			continue
		}
		skew := maxP - minP
		if skew <= h.cfg.CoSkewThreshold {
			continue
		}
		// Only act when the laggard is actually starving in a runqueue;
		// a running or blocked laggard needs no help.
		if laggard.state != StateRunnable {
			continue
		}
		// Stop every vCPU that leads the laggard by more than the
		// threshold; they stay stopped (and stop drawing credits) until
		// the laggard has caught up or the park cap expires.
		var firstParked *VCPU
		for _, v := range vm.VCPUs {
			lead := v.windowLastProgress - minP
			if v == laggard || v.state == StateOffline || lead <= h.cfg.CoSkewThreshold {
				continue
			}
			h.coPark(v, laggard, skew, now)
			if firstParked == nil {
				firstParked = v
			}
		}
		// Unpinned: the laggard takes over a stopped leader's pCPU —
		// the swap that spreads stacked siblings onto separate cores.
		if firstParked != nil && laggard.pinned == nil && firstParked.pinned == nil &&
			laggard.assigned != firstParked.assigned {
			if laggard.assigned.dequeue(laggard) {
				old := laggard.assigned
				laggard.assigned = firstParked.assigned
				firstParked.assigned = old
				if firstParked.state == StateRunnable {
					// Move the parked leader's queue entry to its new home.
					for _, q := range h.pcpus {
						if q.dequeue(firstParked) {
							break
						}
					}
					firstParked.assigned.enqueue(firstParked)
				}
				laggard.assigned.enqueue(laggard)
				h.vcpuMigrations++
			}
		}
		h.coBoostLaggard(laggard)
	}
}

// coPark stops a leading vCPU until the laggard catches up (by running
// the observed skew) or the park cap elapses.
func (h *Hypervisor) coPark(leader, laggard *VCPU, skew sim.Time, now sim.Time) {
	maxPark := h.cfg.CoParkTime
	if maxPark <= 0 {
		maxPark = h.cfg.AccountPeriod + h.cfg.Tick
	}
	// Mark the park before descheduling so the dispatcher cannot
	// immediately re-run the leader.
	leader.parkedUntil = now + maxPark
	leader.parkCatchRef = laggard
	leader.parkCatchTarget = laggard.RunTime() + skew
	lv := leader
	h.eng.At(leader.parkedUntil, "co-unpark-"+leader.Name(), func() {
		h.checkPreempt(lv.assigned)
	})
	if leader.state == StateRunning && leader.pcpu != nil {
		p := leader.pcpu
		h.deschedule(p, StateRunnable, true)
		h.dispatch(p)
	}
}

// coBoostLaggard requeues the laggard with BOOST priority so it
// outranks the competing VM's vCPU at the next preemption check.
func (h *Hypervisor) coBoostLaggard(laggard *VCPU) {
	laggard.assigned.dequeue(laggard)
	if laggard.prio > PrioBoost {
		laggard.prio = PrioBoost
	}
	laggard.assigned.enqueue(laggard)
	h.checkPreempt(laggard.assigned)
}

// coUnparkScan runs from the per-pCPU tick: it releases parked vCPUs
// whose laggard has caught up.
func (h *Hypervisor) coUnparkScan(p *PCPU) {
	now := h.eng.Now()
	released := false
	for _, v := range p.runq {
		if v.parkedUntil <= now || v.parkCatchRef == nil {
			continue
		}
		if v.parkCatchRef.RunTime() >= v.parkCatchTarget {
			v.parkedUntil = 0
			v.parkCatchRef = nil
			released = true
		}
	}
	if released {
		h.checkPreempt(p)
	}
}
