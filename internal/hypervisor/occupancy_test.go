package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// occRig builds nVMs single-vCPU VMs with stub guests all pinned to
// pCPU 0 on a metrics-less, trace-less hypervisor — the cheapest
// possible event hot path.
func occRig(nVMs int) (*sim.Engine, *Hypervisor) {
	eng := sim.NewEngine()
	h := New(eng, DefaultConfig(1))
	for vi := 0; vi < nVMs; vi++ {
		vm := h.NewVM("vm"+string(rune('a'+vi)), 1, 256, false)
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		v.Pin(h.PCPU(0))
		h.StartVCPU(v)
	}
	return eng, h
}

func TestOccupancyObserverAccountsFullBusyTime(t *testing.T) {
	eng, h := occRig(2)
	got := map[string]sim.Time{}
	h.SetOccupancyObserver(func(vm *VM, p *PCPU, dur sim.Time) {
		if p.ID != 0 {
			t.Fatalf("occupancy on unexpected pCPU %d", p.ID)
		}
		if dur <= 0 {
			t.Fatalf("non-positive occupancy interval %v", dur)
		}
		got[vm.Name] += dur
	})
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	h.SyncOccupancyAccounting()

	total := got["vma"] + got["vmb"]
	if total != 3*sim.Second {
		t.Fatalf("occupancy total = %v, want 3s (pCPU never idles)", total)
	}
	ratio := float64(got["vma"]) / float64(got["vmb"])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("equal-weight VMs got occupancy %v vs %v", got["vma"], got["vmb"])
	}
	// Occupancy must agree with the scheduler's own runtime accounting.
	for _, vm := range h.VMs() {
		if got[vm.Name] != vm.VCPUs[0].RunTime() {
			t.Fatalf("%s occupancy %v != runtime %v", vm.Name, got[vm.Name], vm.VCPUs[0].RunTime())
		}
	}
}

func TestSyncOccupancyFlushesOpenInterval(t *testing.T) {
	eng, h := occRig(1) // alone on the pCPU: never descheduled
	var flushed sim.Time
	h.SetOccupancyObserver(func(vm *VM, p *PCPU, dur sim.Time) { flushed += dur })
	if err := eng.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if flushed != 0 {
		t.Fatalf("observer fired %v before any deschedule or sync", flushed)
	}
	h.SyncOccupancyAccounting()
	if flushed != sim.Second {
		t.Fatalf("sync flushed %v, want 1s", flushed)
	}
	// The interval restarted: a second immediate sync adds nothing.
	h.SyncOccupancyAccounting()
	if flushed != sim.Second {
		t.Fatalf("double sync double-counted: %v", flushed)
	}
}

// TestDisabledWatchdogZeroAllocs pins the acceptance criterion: with no
// occupancy observer installed, the scheduling hot path (timeslice
// preemptions, deschedule/dispatch cycles) allocates nothing per op.
func TestDisabledWatchdogZeroAllocs(t *testing.T) {
	eng, _ := occRig(2)
	// Warm up: let event pools and runqueues reach steady state.
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	step := 90 * sim.Millisecond // three timeslices per op
	allocs := testing.AllocsPerRun(100, func() {
		if err := eng.Run(eng.Now() + step); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled watchdog hot path allocates %v allocs/op, want 0", allocs)
	}
}

func benchHotPath(b *testing.B, observer bool) {
	eng, h := occRig(2)
	if observer {
		var sink sim.Time
		h.SetOccupancyObserver(func(vm *VM, p *PCPU, dur sim.Time) { sink += dur })
	}
	if err := eng.Run(2 * sim.Second); err != nil {
		b.Fatal(err)
	}
	step := 90 * sim.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Run(eng.Now() + step); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathNoWatchdog(b *testing.B)   { benchHotPath(b, false) }
func BenchmarkHotPathWithWatchdog(b *testing.B) { benchHotPath(b, true) }
