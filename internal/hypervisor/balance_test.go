package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// lbRig builds an unpinned (LoadBalance) hypervisor with nVMs
// single-vCPU CPU-bound VMs on nPCPUs.
func lbRig(t *testing.T, nPCPUs, nVMs int) (*sim.Engine, *Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(nPCPUs)
	cfg.LoadBalance = true
	h := New(eng, cfg)
	for i := 0; i < nVMs; i++ {
		vm := h.NewVM("vm"+string(rune('a'+i)), 1, 256, false)
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		h.StartVCPU(v)
	}
	return eng, h
}

func TestUnpinnedVCPUsSpreadAcrossPCPUs(t *testing.T) {
	eng, h := lbRig(t, 4, 4)
	_ = eng.Run(2 * sim.Second)
	// 4 CPU-bound vCPUs on 4 pCPUs: each should get nearly a full pCPU.
	for _, vm := range h.VMs() {
		rt := vm.VCPUs[0].RunTime()
		if rt < sim.Time(float64(2*sim.Second)*0.85) {
			t.Fatalf("%s ran only %v of 2s; balancing failed", vm.Name, rt)
		}
	}
}

func TestStealWorkFromBusyPCPU(t *testing.T) {
	// All vCPUs initially assigned to pCPU 0; idle stealing must spread
	// them out quickly.
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.LoadBalance = true
	h := New(eng, cfg)
	for i := 0; i < 2; i++ {
		vm := h.NewVM("vm"+string(rune('a'+i)), 1, 256, false)
		v := vm.VCPUs[0]
		h.RegisterGuest(v, &stubGuest{v: v})
		v.assigned = h.PCPU(0)
		h.StartVCPU(v)
	}
	_ = eng.Run(1 * sim.Second)
	total := h.VMs()[0].VCPUs[0].RunTime() + h.VMs()[1].VCPUs[0].RunTime()
	if total < sim.Time(float64(2*sim.Second)*0.9) {
		t.Fatalf("total runtime %v of 2 pCPU-seconds; stealing failed", total)
	}
}

func TestOversubscribedWorkConserving(t *testing.T) {
	// 4 CPU-bound VMs on 2 pCPUs: the machine stays fully used and no
	// VM starves. (Global fairness across unpinned pCPUs is only
	// approximate — pairing-dependent, as in real credit1; the paper
	// pins vCPUs for its controlled experiments for this very reason.)
	eng, h := lbRig(t, 2, 4)
	_ = eng.Run(4 * sim.Second)
	var total sim.Time
	for _, vm := range h.VMs() {
		rt := vm.VCPUs[0].RunTime()
		total += rt
		if rt < sim.Time(float64(4*sim.Second)*0.2) {
			t.Fatalf("%s starved: %v of 4s", vm.Name, rt)
		}
	}
	if total < sim.Time(float64(8*sim.Second)*0.98) {
		t.Fatalf("machine underused: %v of 8 pCPU-seconds", total)
	}
}

func TestPinnedVCPUNeverStolen(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(2)
	cfg.LoadBalance = true
	h := New(eng, cfg)
	pinned := h.NewVM("pinned", 1, 256, false)
	pv := pinned.VCPUs[0]
	h.RegisterGuest(pv, &stubGuest{v: pv})
	pv.Pin(h.PCPU(0))
	h.StartVCPU(pv)
	other := h.NewVM("other", 1, 256, false)
	ov := other.VCPUs[0]
	h.RegisterGuest(ov, &stubGuest{v: ov})
	ov.Pin(h.PCPU(0)) // both compete on p0, p1 idles
	h.StartVCPU(ov)
	bad := false
	eng.Every(sim.Millisecond, "watch", func() {
		if pv.pcpu == h.PCPU(1) || ov.pcpu == h.PCPU(1) {
			bad = true
		}
	})
	_ = eng.Run(1 * sim.Second)
	if bad {
		t.Fatal("a pinned vCPU ran on the wrong pCPU")
	}
	if h.PCPU(1).IdleTime() < sim.Time(float64(sim.Second)*0.95) {
		t.Fatal("p1 should have stayed idle (both vCPUs pinned to p0)")
	}
}

func TestLoadSnapshotStaleness(t *testing.T) {
	eng, h := lbRig(t, 2, 1)
	// Snapshot refreshes only at ticks: right after a change it is stale.
	var observed bool
	eng.After(25*sim.Millisecond, "check", func() {
		p := h.PCPU(0)
		p.snapshotLoad()
		before := p.loadSnapshot
		// Mutate the queue without a tick: snapshot must not move.
		v := &VCPU{hv: h, state: StateRunnable, prio: PrioUnder, VM: &VM{Name: "x", hv: h}}
		p.enqueue(v)
		if p.loadSnapshot != before {
			t.Error("snapshot changed without a tick")
		}
		p.dequeue(v)
		observed = true
	})
	_ = eng.Run(50 * sim.Millisecond)
	if !observed {
		t.Fatal("check never ran")
	}
}

func TestVCPUMigrationsCounted(t *testing.T) {
	eng, h := lbRig(t, 2, 4)
	_ = eng.Run(2 * sim.Second)
	if h.VCPUMigrations() == 0 {
		t.Fatal("no vCPU migrations recorded in an oversubscribed unpinned setup")
	}
}
