package hypervisor

import (
	"testing"

	"repro/internal/sim"
)

// spinGuest marks its vCPU as spinning whenever it executes.
type spinGuest struct {
	h *Hypervisor
	v *VCPU
}

func (g *spinGuest) Resume()                    { g.h.SpinBegin(g.v) }
func (g *spinGuest) Suspend()                   {}
func (g *spinGuest) TakeIRQ(IRQ)                {}
func (g *spinGuest) Descheduling() PreemptClass { return PreemptLockWaiter }

func pleRig(t *testing.T, strategy Strategy) (*sim.Engine, *Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = strategy
	h := New(eng, cfg)
	spinner := h.NewVM("spinner", 1, 256, false)
	sv := spinner.VCPUs[0]
	h.RegisterGuest(sv, &spinGuest{h: h, v: sv})
	sv.Pin(h.PCPU(0))
	h.StartVCPU(sv)

	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)
	return eng, h
}

func TestPLEForcesSpinnerToYield(t *testing.T) {
	eng, h := pleRig(t, StrategyPLE)
	_ = eng.Run(1 * sim.Second)
	if h.PLEYields() == 0 {
		t.Fatal("no PLE yields for a perpetual spinner under contention")
	}
	// The spinner should get far less CPU than the competing hog.
	s := h.VMs()[0].VCPUs[0].RunTime()
	hg := h.VMs()[1].VCPUs[0].RunTime()
	if s >= hg {
		t.Fatalf("spinner ran %v vs hog %v; PLE should starve the spinner", s, hg)
	}
}

func TestPLEInactiveUnderVanilla(t *testing.T) {
	eng, h := pleRig(t, StrategyVanilla)
	_ = eng.Run(1 * sim.Second)
	if h.PLEYields() != 0 {
		t.Fatalf("%d PLE yields under vanilla", h.PLEYields())
	}
	// Without PLE the spinner keeps its fair share.
	s := h.VMs()[0].VCPUs[0].RunTime()
	hg := h.VMs()[1].VCPUs[0].RunTime()
	ratio := float64(s) / float64(hg)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("vanilla spinner share %v vs %v", s, hg)
	}
}

func TestPLENoYieldWithoutCompetitor(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = StrategyPLE
	h := New(eng, cfg)
	vm := h.NewVM("spinner", 1, 256, false)
	v := vm.VCPUs[0]
	h.RegisterGuest(v, &spinGuest{h: h, v: v})
	v.Pin(h.PCPU(0))
	h.StartVCPU(v)
	_ = eng.Run(500 * sim.Millisecond)
	if h.PLEYields() != 0 {
		t.Fatalf("PLE yielded %d times with an empty runqueue", h.PLEYields())
	}
	if v.RunTime() != 500*sim.Millisecond {
		t.Fatalf("lone spinner runtime %v, want full 500ms", v.RunTime())
	}
}

func TestSpinEndCancelsWindow(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.Strategy = StrategyPLE
	h := New(eng, cfg)
	vm := h.NewVM("a", 1, 256, false)
	v := vm.VCPUs[0]
	h.RegisterGuest(v, &stubGuest{v: v})
	v.Pin(h.PCPU(0))
	h.StartVCPU(v)
	hog := h.NewVM("hog", 1, 256, false)
	hv := hog.VCPUs[0]
	h.RegisterGuest(hv, &stubGuest{v: hv})
	hv.Pin(h.PCPU(0))
	h.StartVCPU(hv)

	// Spin for less than the PLE window, then stop: no yield.
	eng.After(sim.Millisecond, "brief-spin", func() {
		if v.State() == StateRunning {
			h.SpinBegin(v)
			h.eng.After(cfg.PLEWindow/2, "stop-spin", func() { h.SpinEnd(v) })
		}
	})
	_ = eng.Run(100 * sim.Millisecond)
	if h.PLEYields() != 0 {
		t.Fatalf("PLE fired for a sub-window spin: %d", h.PLEYields())
	}
}
