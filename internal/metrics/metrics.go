// Package metrics provides the measurement helpers used by the
// benchmark harness: latency reservoirs with percentile queries, basic
// summary statistics, and the fair-share / weighted-speedup arithmetic
// from the paper's evaluation (§5.1, §5.4).
package metrics

import (
	"math"
	"sort"

	"repro/internal/sim"
)

// Reservoir accumulates latency samples for percentile queries.
type Reservoir struct {
	samples []sim.Time
	sorted  bool
}

// Add records one sample.
func (r *Reservoir) Add(v sim.Time) {
	r.samples = append(r.samples, v)
	r.sorted = false
}

// Count returns the number of samples.
func (r *Reservoir) Count() int { return len(r.samples) }

// Mean returns the average sample, or 0 with no samples.
func (r *Reservoir) Mean() sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, v := range r.samples {
		sum += v
	}
	return sum / sim.Time(len(r.samples))
}

// Max returns the largest sample. With no samples it returns 0; with
// samples it returns the true maximum even when every sample is
// negative (the old scan from zero clamped those to 0).
func (r *Reservoir) Max() sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	m := r.samples[0]
	for _, v := range r.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the total of all samples.
func (r *Reservoir) Sum() sim.Time {
	var sum sim.Time
	for _, v := range r.samples {
		sum += v
	}
	return sum
}

// Stddev returns the sample standard deviation (Bessel-corrected), or 0
// with fewer than two samples.
func (r *Reservoir) Stddev() sim.Time {
	if len(r.samples) < 2 {
		return 0
	}
	mean := float64(r.Mean())
	var ss float64
	for _, v := range r.samples {
		d := float64(v) - mean
		ss += d * d
	}
	return sim.Time(math.Sqrt(ss / float64(len(r.samples)-1)))
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or 0 with no samples.
func (r *Reservoir) Percentile(p float64) sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Quantiles returns the Percentile of each p in ps, sorting the
// reservoir at most once. With no samples every entry is 0.
func (r *Reservoir) Quantiles(ps ...float64) []sim.Time {
	out := make([]sim.Time, len(ps))
	for i, p := range ps {
		out[i] = r.Percentile(p)
	}
	return out
}

// Stats summarises a slice of float64 observations.
type Stats struct {
	N              int
	Mean, Min, Max float64
	Stddev         float64
}

// Summarize computes summary statistics.
func Summarize(xs []float64) Stats {
	s := Stats{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Improvement returns the percentage improvement of measured over
// baseline for a lower-is-better metric (runtime, latency):
// positive means measured is faster.
func Improvement(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - measured) / baseline * 100
}

// ThroughputImprovement returns the percentage improvement for a
// higher-is-better metric.
func ThroughputImprovement(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (measured - baseline) / baseline * 100
}

// Speedup returns baseline/measured for lower-is-better metrics
// (performance normalized to vanilla, as in §5.4).
func Speedup(baseline, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return baseline / measured
}

// WeightedSpeedup is the paper's system-efficiency metric: the average
// of the foreground and background speedups (§5.4).
func WeightedSpeedup(fg, bg float64) float64 { return (fg + bg) / 2 }

// FairShare computes a VM's fair CPU entitlement over an interval given
// per-pCPU competitor counts: for each pCPU the VM occupies, it is
// entitled to interval/(competitors on that pCPU).
//
// sharers[i] is the number of VMs with a vCPU pinned to the VM's i-th
// occupied pCPU (including the VM itself).
func FairShare(interval sim.Time, sharers []int) sim.Time {
	var total sim.Time
	for _, n := range sharers {
		if n <= 0 {
			continue
		}
		total += interval / sim.Time(n)
	}
	return total
}
