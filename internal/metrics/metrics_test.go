package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestReservoirBasics(t *testing.T) {
	var r Reservoir
	if r.Count() != 0 || r.Mean() != 0 || r.Max() != 0 || r.Percentile(99) != 0 {
		t.Fatal("empty reservoir should be all zeros")
	}
	for _, v := range []sim.Time{30, 10, 20} {
		r.Add(v)
	}
	if r.Count() != 3 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Mean() != 20 {
		t.Fatalf("mean = %v", r.Mean())
	}
	if r.Max() != 30 {
		t.Fatalf("max = %v", r.Max())
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var r Reservoir
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i))
	}
	cases := []struct {
		p    float64
		want sim.Time
	}{
		{50, 50}, {90, 90}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileAfterMoreAdds(t *testing.T) {
	var r Reservoir
	r.Add(5)
	_ = r.Percentile(50) // forces a sort
	r.Add(1)             // invalidates it
	if got := r.Percentile(1); got != 1 {
		t.Fatalf("P1 = %v after re-add, want 1", got)
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var r Reservoir
		min, max := sim.Time(raw[0]), sim.Time(raw[0])
		for _, v := range raw {
			tv := sim.Time(v)
			r.Add(tv)
			if tv < min {
				min = tv
			}
			if tv > max {
				max = tv
			}
		}
		p := float64(pRaw%100) + 1
		got := r.Percentile(p)
		return got >= min && got <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAllNegative(t *testing.T) {
	var r Reservoir
	for _, v := range []sim.Time{-30, -10, -20} {
		r.Add(v)
	}
	// A scan seeded from 0 would clamp this to 0; the true max is -10.
	if got := r.Max(); got != -10 {
		t.Fatalf("max = %v, want -10", got)
	}
}

func TestSum(t *testing.T) {
	var r Reservoir
	if r.Sum() != 0 {
		t.Fatal("empty sum should be 0")
	}
	for _, v := range []sim.Time{5, -2, 7} {
		r.Add(v)
	}
	if got := r.Sum(); got != 10 {
		t.Fatalf("sum = %v, want 10", got)
	}
}

func TestStddev(t *testing.T) {
	var r Reservoir
	if r.Stddev() != 0 {
		t.Fatal("empty stddev should be 0")
	}
	r.Add(5)
	if r.Stddev() != 0 {
		t.Fatal("single-sample stddev should be 0")
	}
	var r2 Reservoir
	for _, v := range []sim.Time{2, 4, 6} {
		r2.Add(v)
	}
	// Sample (Bessel-corrected) stddev of {2,4,6} is 2.
	if got := r2.Stddev(); got != 2 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestQuantiles(t *testing.T) {
	var r Reservoir
	if qs := r.Quantiles(50, 99); len(qs) != 2 || qs[0] != 0 || qs[1] != 0 {
		t.Fatalf("empty quantiles = %v", qs)
	}
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i))
	}
	qs := r.Quantiles(50, 95, 99, 100)
	want := []sim.Time{50, 95, 99, 100}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("quantile[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
	// Quantiles must agree with individual Percentile calls.
	if qs[1] != r.Percentile(95) {
		t.Fatal("Quantiles diverges from Percentile")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("bad stats: %+v", s)
	}
	if math.Abs(s.Stddev-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", s.Stddev)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("nil input should summarize to zero")
	}
}

func TestImprovementSigns(t *testing.T) {
	if got := Improvement(10, 5); got != 50 {
		t.Fatalf("Improvement(10,5) = %v", got)
	}
	if got := Improvement(10, 20); got != -100 {
		t.Fatalf("Improvement(10,20) = %v", got)
	}
	if got := Improvement(0, 5); got != 0 {
		t.Fatal("zero baseline should yield 0")
	}
	if got := ThroughputImprovement(100, 112); math.Abs(got-12) > 1e-9 {
		t.Fatalf("ThroughputImprovement = %v", got)
	}
}

func TestSpeedupAndWeighted(t *testing.T) {
	if got := Speedup(10, 5); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := WeightedSpeedup(1.4, 1.0); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("WeightedSpeedup = %v", got)
	}
}

func TestFairShare(t *testing.T) {
	// One pCPU shared by 2 VMs + three exclusive pCPUs.
	got := FairShare(sim.Second, []int{2, 1, 1, 1})
	want := sim.Second/2 + 3*sim.Second
	if got != want {
		t.Fatalf("FairShare = %v, want %v", got, want)
	}
	if FairShare(sim.Second, []int{0}) != 0 {
		t.Fatal("zero sharers should contribute nothing")
	}
}

func TestQuickImprovementSpeedupConsistency(t *testing.T) {
	// improvement > 0 <=> speedup > 1.
	f := func(a, b uint16) bool {
		base := float64(a) + 1
		meas := float64(b) + 1
		imp := Improvement(base, meas)
		sp := Speedup(base, meas)
		return (imp > 0) == (sp > 1) || imp == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
