package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/workload"
)

// measure runs bench under strat with nInter hogs and returns seconds.
func measure(t *testing.T, name string, mode workload.SyncMode, strat core.Strategy, nInter int, tune func(string, *guest.Config)) float64 {
	t.Helper()
	bench, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	fg := core.BenchmarkVM("fg", bench, mode, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	vms := []core.VMSpec{fg}
	if nInter > 0 {
		vms = append(vms, core.HogVM("bg", nInter, core.SeqPins(0, nInter)))
	}
	res, err := core.Run(core.Scenario{
		PCPUs: 4, Strategy: strat, Seed: 1, VMs: vms, TuneGuest: tune,
	})
	if err != nil {
		t.Fatalf("%s %v: %v", name, strat, err)
	}
	return res.VM("fg").Runtime.Seconds()
}

func TestIRSBeatsVanillaForSpinningFineGrain(t *testing.T) {
	van := measure(t, "CG", workload.SyncSpinning, core.StrategyVanilla, 1, nil)
	irs := measure(t, "CG", workload.SyncSpinning, core.StrategyIRS, 1, nil)
	if irs >= van {
		t.Fatalf("IRS %.2fs not better than vanilla %.2fs", irs, van)
	}
}

func TestPLEHelpsSpinningUnderContention(t *testing.T) {
	van := measure(t, "CG", workload.SyncSpinning, core.StrategyVanilla, 2, nil)
	ple := measure(t, "CG", workload.SyncSpinning, core.StrategyPLE, 2, nil)
	if ple >= van {
		t.Fatalf("PLE %.2fs not better than vanilla %.2fs for fine spinning", ple, van)
	}
}

func TestRelaxedCoHelpsCoarseSpinning(t *testing.T) {
	van := measure(t, "BT", workload.SyncSpinning, core.StrategyVanilla, 2, nil)
	co := measure(t, "BT", workload.SyncSpinning, core.StrategyRelaxedCo, 2, nil)
	if co >= van {
		t.Fatalf("relaxed-co %.2fs not better than vanilla %.2fs for coarse spinning", co, van)
	}
}

func TestRelaxedCoNotHelpfulForBlocking(t *testing.T) {
	// §5.2: deceptive idleness blinds the skew monitor for blocking
	// workloads, so relaxed-co gives no real benefit there.
	van := measure(t, "streamcluster", 0, core.StrategyVanilla, 2, nil)
	co := measure(t, "streamcluster", 0, core.StrategyRelaxedCo, 2, nil)
	if co < van*0.92 {
		t.Fatalf("relaxed-co %.2fs suspiciously better than vanilla %.2fs for blocking", co, van)
	}
}

func TestIRSGainDiminishesWithInterference(t *testing.T) {
	// §5.2 second observation: improvement shrinks as more vCPUs are
	// interfered because fewer interference-free vCPUs remain.
	van1 := measure(t, "facesim", 0, core.StrategyVanilla, 1, nil)
	irs1 := measure(t, "facesim", 0, core.StrategyIRS, 1, nil)
	van4 := measure(t, "facesim", 0, core.StrategyVanilla, 4, nil)
	irs4 := measure(t, "facesim", 0, core.StrategyIRS, 4, nil)
	imp1 := (van1 - irs1) / van1
	imp4 := (van4 - irs4) / van4
	if imp1 <= imp4 {
		t.Fatalf("improvement did not diminish: 1-inter %.1f%% vs 4-inter %.1f%%", imp1*100, imp4*100)
	}
	if imp1 < 0.15 {
		t.Fatalf("1-inter improvement %.1f%% too small", imp1*100)
	}
}

func TestPipelineWorkloadsSeeMarginalIRSGain(t *testing.T) {
	// dedup/ferret: multiple ready threads per vCPU mean the stock
	// balancer already copes (§5.2).
	van := measure(t, "dedup", 0, core.StrategyVanilla, 1, nil)
	irs := measure(t, "dedup", 0, core.StrategyIRS, 1, nil)
	imp := (van - irs) / van
	if imp > 0.35 {
		t.Fatalf("dedup IRS improvement %.1f%% implausibly large", imp*100)
	}
	if imp < -0.15 {
		t.Fatalf("dedup IRS regression %.1f%%", imp*100)
	}
}

func TestIRSPullAddsOnTopOfPush(t *testing.T) {
	enablePull := func(name string, c *guest.Config) {
		if name == "fg" {
			c.IRSPull = true
		}
	}
	push := measure(t, "streamcluster", 0, core.StrategyIRS, 4, nil)
	pull := measure(t, "streamcluster", 0, core.StrategyIRS, 4, enablePull)
	// Pull-based migration must never hurt; at full interference it
	// catches the cases push cannot (no running target at SA time).
	if pull > push*1.05 {
		t.Fatalf("IRS+pull %.2fs worse than push-only %.2fs", pull, push)
	}
}

func TestAllStrategiesIdenticalWithoutInterference(t *testing.T) {
	base := measure(t, "EP", workload.SyncBlocking, core.StrategyVanilla, 0, nil)
	for _, strat := range []core.Strategy{core.StrategyPLE, core.StrategyRelaxedCo, core.StrategyIRS} {
		rt := measure(t, "EP", workload.SyncBlocking, strat, 0, nil)
		diff := (rt - base) / base
		if diff > 0.02 || diff < -0.02 {
			t.Fatalf("%v alone differs from vanilla by %.1f%%", strat, diff*100)
		}
	}
}
