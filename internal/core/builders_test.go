package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestSeqPins(t *testing.T) {
	got := core.SeqPins(2, 3)
	want := []int{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SeqPins = %v, want %v", got, want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	bench, _ := workload.ByName("EP")
	cases := []struct {
		name string
		scn  core.Scenario
	}{
		{"no pcpus", core.Scenario{VMs: []core.VMSpec{core.BenchmarkVM("fg", bench, 0, 1, nil)}}},
		{"no vms", core.Scenario{PCPUs: 2}},
		{"bad pin count", core.Scenario{PCPUs: 2, VMs: []core.VMSpec{
			core.BenchmarkVM("fg", bench, 0, 2, []int{0}),
		}}},
		{"pin out of range", core.Scenario{PCPUs: 2, VMs: []core.VMSpec{
			core.BenchmarkVM("fg", bench, 0, 1, []int{5}),
		}}},
		{"no workload", core.Scenario{PCPUs: 2, VMs: []core.VMSpec{{Name: "x", VCPUs: 1}}}},
	}
	for _, c := range cases {
		if _, err := core.Build(c.scn); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestRepeatRunsDistinctSeeds(t *testing.T) {
	bench, _ := workload.ByName("IS")
	scn := core.Scenario{
		PCPUs:    4,
		Strategy: core.StrategyVanilla,
		Seed:     5,
		VMs: []core.VMSpec{
			core.BenchmarkVM("fg", bench, workload.SyncSpinning, 4, core.SeqPins(0, 4)),
			core.HogVM("bg", 1, core.SeqPins(0, 1)),
		},
	}
	rts, err := core.RepeatRuns(scn, "fg", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 3 {
		t.Fatalf("got %d runtimes", len(rts))
	}
	// Different seeds should give (slightly) different runtimes.
	if rts[0] == rts[1] && rts[1] == rts[2] {
		t.Fatal("all runs identical; seeds not varied")
	}
	mean, err := core.MeanRuntime(scn, "fg", 3)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 {
		t.Fatal("zero mean runtime")
	}
}

func TestBackgroundVMRepeats(t *testing.T) {
	fgBench, _ := workload.ByName("EP")
	bgBench, _ := workload.ByName("IS")
	scn := core.Scenario{
		PCPUs:    4,
		Strategy: core.StrategyVanilla,
		VMs: []core.VMSpec{
			core.BenchmarkVM("fg", fgBench, workload.SyncBlocking, 4, core.SeqPins(0, 4)),
			core.BackgroundVM("bg", bgBench, workload.SyncSpinning, 2, core.SeqPins(0, 2)),
		},
	}
	res, err := core.Run(scn)
	if err != nil {
		t.Fatal(err)
	}
	bg := res.VM("bg")
	if bg.Completions < 1 {
		t.Fatal("background benchmark never completed")
	}
	if bg.MeanRuntime <= 0 {
		t.Fatal("no background mean runtime")
	}
	if res.VM("fg").Runtime <= 0 {
		t.Fatal("foreground did not finish")
	}
}

func TestServerVMStats(t *testing.T) {
	spec := workload.ServerSpec{
		Name: "s", Threads: 2, Service: 2 * sim.Millisecond, Duration: sim.Second,
	}
	vmSpec, stats := core.ServerVM("fg", spec, 2, core.SeqPins(0, 2))
	res, err := core.Run(core.Scenario{
		PCPUs: 2, Strategy: core.StrategyVanilla, VMs: []core.VMSpec{vmSpec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if *stats == nil {
		t.Fatal("stats pointer never filled")
	}
	if (*stats).Requests == 0 {
		t.Fatal("no requests")
	}
	_ = res
}

func TestResultVMLookup(t *testing.T) {
	bench, _ := workload.ByName("EP")
	res, err := core.Run(core.Scenario{
		PCPUs:    2,
		Strategy: core.StrategyVanilla,
		VMs:      []core.VMSpec{core.BenchmarkVM("only", bench, workload.SyncBlocking, 2, nil)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VM("only") == nil {
		t.Fatal("VM lookup failed")
	}
	if res.VM("missing") != nil {
		t.Fatal("bogus VM lookup succeeded")
	}
}

func TestErrUnfinishedWrapped(t *testing.T) {
	bench, _ := workload.ByName("BT")
	scn := core.Scenario{
		PCPUs:    4,
		Strategy: core.StrategyVanilla,
		Horizon:  50 * sim.Millisecond,
		VMs:      []core.VMSpec{core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))},
	}
	_, err := core.Run(scn)
	if !errors.Is(err, core.ErrUnfinished) {
		t.Fatalf("err = %v, want ErrUnfinished", err)
	}
}

func TestStrategiesOrder(t *testing.T) {
	ss := core.Strategies()
	if len(ss) != 4 {
		t.Fatalf("strategies = %v", ss)
	}
	if ss[0] != core.StrategyVanilla || ss[3] != core.StrategyIRS {
		t.Fatalf("unexpected order: %v", ss)
	}
}

func TestUtilizationHelper(t *testing.T) {
	bench, _ := workload.ByName("EP")
	res, err := core.Run(core.Scenario{
		PCPUs:    2,
		Strategy: core.StrategyVanilla,
		VMs:      []core.VMSpec{core.BenchmarkVM("fg", bench, workload.SyncBlocking, 2, core.SeqPins(0, 2))},
	})
	if err != nil {
		t.Fatal(err)
	}
	util := core.Utilization(res, "fg", 2*res.Elapsed)
	if util < 0.9 || util > 1.01 {
		t.Fatalf("uncontended utilization = %.2f, want ~1", util)
	}
	if core.Utilization(res, "fg", 0) != 0 {
		t.Fatal("zero fair share should yield 0")
	}
	if core.Utilization(res, "nope", res.Elapsed) != 0 {
		t.Fatal("missing VM should yield 0")
	}
}
