package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// ExampleRun demonstrates the standard interference scenario: a 4-vCPU
// VM running a barrier workload against one CPU hog, under IRS.
func ExampleRun() {
	bench, _ := workload.ByName("EP")
	fg := core.BenchmarkVM("fg", bench, workload.SyncBlocking, 4, core.SeqPins(0, 4))
	fg.IRS = true

	res, err := core.Run(core.Scenario{
		PCPUs:    4,
		Strategy: core.StrategyIRS,
		Seed:     1,
		VMs: []core.VMSpec{
			fg,
			core.HogVM("bg", 1, core.SeqPins(0, 1)),
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("finished:", res.VM("fg").Runtime > 0)
	fmt.Println("SAs acknowledged:", res.SAAcked > 0)
	// Output:
	// finished: true
	// SAs acknowledged: true
}

// ExampleScenario_baselines compares all four scheduling strategies on
// one workload.
func ExampleScenario_baselines() {
	bench, _ := workload.ByName("EP")
	var base float64
	for _, strat := range core.Strategies() {
		fg := core.BenchmarkVM("fg", bench, workload.SyncBlocking, 4, core.SeqPins(0, 4))
		fg.IRS = strat == core.StrategyIRS
		res, err := core.Run(core.Scenario{
			PCPUs:    4,
			Strategy: strat,
			Seed:     1,
			VMs: []core.VMSpec{
				fg,
				core.HogVM("bg", 1, core.SeqPins(0, 1)),
			},
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		rt := res.VM("fg").Runtime.Seconds()
		if strat == core.StrategyVanilla {
			base = rt
		}
		fmt.Printf("%s beats vanilla: %v\n", strat, rt < base*0.99)
	}
	// Output:
	// vanilla beats vanilla: false
	// ple beats vanilla: false
	// relaxed-co beats vanilla: true
	// irs beats vanilla: true
}
