// Package core is the public API of the IRS reproduction: it wires the
// simulation engine, the Xen-like hypervisor, Linux-like guest kernels,
// and workload models into runnable scenarios, and extracts the metrics
// the paper reports.
//
// A Scenario describes physical CPUs, a scheduling strategy, and a set
// of VMs each with a workload. Run executes it until every finite
// (non-repeating) workload completes and returns per-VM results.
//
//	scn := core.Scenario{
//	    PCPUs:    4,
//	    Strategy: core.StrategyIRS,
//	    VMs: []core.VMSpec{
//	        core.BenchmarkVM("fg", bench, 0, 4),
//	        core.HogVM("bg", 1, []int{0}),
//	    },
//	}
//	res, err := core.Run(scn)
package core

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Strategy re-exports the hypervisor scheduling strategies.
type Strategy = hypervisor.Strategy

// Scheduling strategies under evaluation.
const (
	StrategyVanilla   = hypervisor.StrategyVanilla
	StrategyPLE       = hypervisor.StrategyPLE
	StrategyRelaxedCo = hypervisor.StrategyRelaxedCo
	StrategyIRS       = hypervisor.StrategyIRS
	// StrategyStrictCo (ESX 2.x gang scheduling) is provided for the
	// ab-strictco ablation; the paper evaluates the four above.
	StrategyStrictCo = hypervisor.StrategyStrictCo
)

// Strategies lists all four in evaluation order.
func Strategies() []Strategy {
	return []Strategy{StrategyVanilla, StrategyPLE, StrategyRelaxedCo, StrategyIRS}
}

// VMSpec describes one virtual machine of a scenario.
type VMSpec struct {
	Name   string
	VCPUs  int
	Weight int // credit weight; 0 = 256
	// Pin maps each vCPU to a pCPU; nil leaves the vCPUs unpinned
	// (meaningful with Scenario.Unpinned).
	Pin []int
	// IRS marks the guest kernel as SA-capable (implements the
	// VIRQ_SA_UPCALL handler). Usually set for the foreground VM when
	// the strategy is StrategyIRS.
	IRS bool
	// Attach builds the VM's workload on its guest kernel.
	Attach func(k *guest.Kernel, seed uint64) *workload.Instance
	// Repeat marks a background workload that loops forever.
	Repeat bool
}

// Scenario is a complete experiment configuration.
type Scenario struct {
	PCPUs    int
	Strategy Strategy
	Seed     uint64
	// Horizon caps virtual time (default 600 s).
	Horizon sim.Time
	// Unpinned enables hypervisor-level vCPU load balancing; vCPUs with
	// no Pin float freely (the §5.6 CPU-stacking setup).
	Unpinned bool
	VMs      []VMSpec

	// TuneHV and TuneGuest optionally adjust the default configs.
	TuneHV    func(*hypervisor.Config)
	TuneGuest func(name string, c *guest.Config)

	// Metrics, when non-nil, is attached to the hypervisor and every
	// guest kernel so the run produces structured telemetry (see
	// internal/obs). Nil (the default) disables collection; the Tune
	// hooks can still attach per-layer registries by hand.
	Metrics *obs.Registry
	// SampleInterval, when positive and Metrics is set, starts a
	// periodic sampler that snapshots every metric into time series at
	// that virtual-time cadence (exposed as Cluster.Sampler).
	SampleInterval sim.Time

	// Faults, when non-zero, injects the described fault plan (dropped
	// and duplicated vIRQs, hypercall loss, stale runstates, blackouts;
	// see internal/fault) into the hypervisor and every guest kernel.
	// FaultSeed seeds the injector's independent RNG streams; 0 derives
	// it from Seed so runs stay reproducible by default.
	Faults    fault.Plan
	FaultSeed uint64
	// Invariants attaches a runtime invariant checker that audits the
	// hypervisor and every guest kernel at AuditInterval (default 1 ms
	// of virtual time) and bridges engine scheduling violations. The
	// checker is exposed as Cluster.Checker; its violation count as
	// Result.Violations.
	Invariants    bool
	AuditInterval sim.Time
}

// VMResult holds per-VM measurements.
type VMResult struct {
	Name           string
	Instance       *workload.Instance
	Runtime        sim.Time // first-completion runtime (0 if unfinished)
	MeanRuntime    sim.Time // mean over repeats
	Completions    int
	CPUTime        sim.Time // total vCPU execution time
	StealTime      sim.Time
	LHP, LWP       int64
	IRSMigrations  int64
	TaskMigrations int64
	Kernel         *guest.Kernel
}

// Result is the outcome of one scenario run.
type Result struct {
	Elapsed sim.Time // when the last finite workload completed
	VMs     []VMResult
	// SA statistics from the hypervisor (IRS runs). SAPending counts
	// handshakes still open when the run ended; SAFallbacks counts
	// preemptions that skipped the handshake because the circuit
	// breaker was open.
	SASent, SAAcked, SAExpired, SAPending int64
	SAFallbacks                           int64
	SAMeanDelay, SAMaxDelay               sim.Time
	VCPUMigrations                        int64
	Events                                uint64
	// FaultsInjected is the total fault count across all kinds
	// (Scenario.Faults); Violations the invariant-checker total
	// (Scenario.Invariants). Both 0 when the feature is off.
	FaultsInjected int64
	Violations     int64
}

// VM returns the result for the named VM.
func (r *Result) VM(name string) *VMResult {
	for i := range r.VMs {
		if r.VMs[i].Name == name {
			return &r.VMs[i]
		}
	}
	return nil
}

// ErrUnfinished is returned when the horizon expired before every
// finite workload completed.
var ErrUnfinished = errors.New("core: horizon reached before workloads completed")

// Run executes the scenario to completion of all finite workloads.
func Run(scn Scenario) (*Result, error) {
	cluster, err := Build(scn)
	if err != nil {
		return nil, err
	}
	return cluster.Run()
}

// Cluster is a built (but not yet run) scenario, exposed for tests and
// examples that need mid-run access to the pieces.
type Cluster struct {
	Scenario  Scenario
	Engine    *sim.Engine
	HV        *hypervisor.Hypervisor
	Kernels   []*guest.Kernel
	Instances []*workload.Instance
	// Sampler is the periodic metrics sampler, non-nil when the
	// scenario set both Metrics and SampleInterval.
	Sampler *obs.Sampler
	// Faults is the scenario's fault injector (nil without a plan);
	// Checker the attached invariant checker (nil unless enabled).
	Faults  *fault.Injector
	Checker *invariant.Checker

	finite     int
	doneFinite int
}

// Build constructs the engine, hypervisor, guests and workloads.
func Build(scn Scenario) (*Cluster, error) {
	if scn.PCPUs <= 0 {
		return nil, errors.New("core: scenario needs pCPUs")
	}
	if len(scn.VMs) == 0 {
		return nil, errors.New("core: scenario needs at least one VM")
	}
	if scn.Horizon <= 0 {
		scn.Horizon = 600 * sim.Second
	}
	if scn.Seed == 0 {
		scn.Seed = 1
	}

	eng := sim.NewEngine()
	var inj *fault.Injector
	if !scn.Faults.Zero() {
		if err := scn.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		seed := scn.FaultSeed
		if seed == 0 {
			seed = scn.Seed ^ 0xfa017eed
		}
		inj = fault.NewInjector(scn.Faults, seed, scn.Metrics)
	}
	hc := hypervisor.DefaultConfig(scn.PCPUs)
	hc.Strategy = scn.Strategy
	hc.LoadBalance = scn.Unpinned
	hc.Seed = scn.Seed
	hc.Metrics = scn.Metrics
	hc.Faults = inj
	if scn.TuneHV != nil {
		scn.TuneHV(&hc)
	}
	hv := hypervisor.New(eng, hc)

	c := &Cluster{Scenario: scn, Engine: eng, HV: hv, Faults: inj}
	if scn.Invariants {
		c.Checker = invariant.New(scn.AuditInterval)
		c.Checker.Observe(hv)
	}
	if scn.Metrics != nil && scn.SampleInterval > 0 {
		c.Sampler = obs.NewSampler(scn.Metrics, scn.SampleInterval)
		c.Sampler.Start(eng)
	}
	for vi, spec := range scn.VMs {
		weight := spec.Weight
		if weight == 0 {
			weight = 256
		}
		vm := hv.NewVM(spec.Name, spec.VCPUs, weight, spec.IRS)
		if spec.Pin != nil {
			if len(spec.Pin) != spec.VCPUs {
				return nil, fmt.Errorf("core: VM %s has %d vCPUs but %d pins", spec.Name, spec.VCPUs, len(spec.Pin))
			}
			for i, p := range spec.Pin {
				if p < 0 || p >= scn.PCPUs {
					return nil, fmt.Errorf("core: VM %s pins vCPU %d to invalid pCPU %d", spec.Name, i, p)
				}
				vm.VCPUs[i].Pin(hv.PCPU(p))
			}
		}
		gc := guest.DefaultConfig()
		gc.IRS = spec.IRS
		gc.Metrics = scn.Metrics
		gc.Faults = inj
		gc.Seed = scn.Seed ^ uint64(vi+1)*0x9e37
		if scn.TuneGuest != nil {
			scn.TuneGuest(spec.Name, &gc)
		}
		kern := guest.NewKernel(hv, vm, gc)
		c.Kernels = append(c.Kernels, kern)
		if c.Checker != nil {
			c.Checker.Observe(kern)
		}

		if spec.Attach == nil {
			return nil, fmt.Errorf("core: VM %s has no workload", spec.Name)
		}
		inst := spec.Attach(kern, scn.Seed^uint64(vi+1)*0x517c)
		if inst == nil {
			return nil, fmt.Errorf("core: VM %s workload attach returned nil", spec.Name)
		}
		inst.Repeat = spec.Repeat
		c.Instances = append(c.Instances, inst)
		if !spec.Repeat && !instIsEndless(inst) {
			c.finite++
		}
	}
	if c.Checker != nil {
		c.Checker.Attach(eng)
	}
	return c, nil
}

// instIsEndless reports whether the instance never completes (hogs).
func instIsEndless(in *workload.Instance) bool { return in.Endless }

// Run starts every VM and drives the simulation until all finite
// workloads finish or the horizon is hit.
func (c *Cluster) Run() (*Result, error) {
	scn := c.Scenario
	var lastFinish sim.Time
	for i := range c.Instances {
		inst := c.Instances[i]
		spec := scn.VMs[i]
		prev := inst.OnFinish
		if !spec.Repeat && !inst.Endless {
			inst.OnFinish = func() {
				if prev != nil {
					prev()
				}
				if inst.Completions == 1 {
					c.doneFinite++
					if c.doneFinite == c.finite {
						lastFinish = c.Engine.Now()
						c.Engine.Stop()
					}
				}
			}
		} else if prev != nil {
			inst.OnFinish = prev
		}
		inst.Start()
	}
	for _, k := range c.Kernels {
		k.Start()
	}
	runErr := c.Engine.Run(scn.Horizon)

	res := &Result{Elapsed: lastFinish, Events: c.Engine.Fired()}
	if lastFinish == 0 {
		res.Elapsed = c.Engine.Now()
	}
	for i, k := range c.Kernels {
		inst := c.Instances[i]
		vm := k.VM()
		res.VMs = append(res.VMs, VMResult{
			Name:           vm.Name,
			Instance:       inst,
			Runtime:        inst.Runtime(),
			MeanRuntime:    inst.MeanRuntime(),
			Completions:    inst.Completions,
			CPUTime:        vm.TotalRunTime(),
			StealTime:      vm.TotalStealTime(),
			LHP:            vm.LHPCount,
			LWP:            vm.LWPCount,
			IRSMigrations:  k.IRSMigrations,
			TaskMigrations: k.TaskMigrations,
			Kernel:         k,
		})
	}
	res.SASent, res.SAAcked, res.SAExpired, res.SAPending, res.SAMeanDelay, res.SAMaxDelay = c.HV.SAStats()
	res.SAFallbacks = c.HV.SAFallbacks()
	res.VCPUMigrations = c.HV.VCPUMigrations()
	if c.Faults != nil {
		res.FaultsInjected = c.Faults.Total()
	}
	if c.Checker != nil {
		c.Checker.Audit() // one final pass at end-of-run state
		res.Violations = c.Checker.Count()
	}

	if c.doneFinite < c.finite {
		if runErr != nil {
			return res, fmt.Errorf("%w: %v", ErrUnfinished, runErr)
		}
		return res, ErrUnfinished
	}
	return res, nil
}
