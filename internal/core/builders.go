package core

import (
	"repro/internal/guest"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file provides convenience VMSpec builders for the standard
// shapes in the paper's evaluation: a foreground VM running a catalog
// benchmark, an interference VM running n CPU hogs, a background VM
// looping a real parallel application, and server VMs.

// BenchmarkVM builds a foreground VM running bench once. mode 0 keeps
// the benchmark's native wait policy. pins maps vCPUs to pCPUs (nil =
// unpinned).
func BenchmarkVM(name string, bench workload.Benchmark, mode workload.SyncMode, vcpus int, pins []int) VMSpec {
	return VMSpec{
		Name:  name,
		VCPUs: vcpus,
		Pin:   pins,
		Attach: func(k *guest.Kernel, seed uint64) *workload.Instance {
			return bench.Instantiate(k, mode, seed)
		},
	}
}

// HogVM builds an interference VM with one vCPU per hog, pinned to the
// given pCPUs (nil = unpinned).
func HogVM(name string, hogs int, pins []int) VMSpec {
	return VMSpec{
		Name:  name,
		VCPUs: hogs,
		Pin:   pins,
		Attach: func(k *guest.Kernel, seed uint64) *workload.Instance {
			return workload.NewHog(k, hogs)
		},
	}
}

// BackgroundVM builds an interfering VM that loops a real parallel
// application with nthreads threads (the fluidanimate/streamcluster/
// LU/UA backgrounds of Figures 5-7 and 9-10).
func BackgroundVM(name string, bench workload.Benchmark, mode workload.SyncMode, nthreads int, pins []int) VMSpec {
	return VMSpec{
		Name:   name,
		VCPUs:  nthreads,
		Pin:    pins,
		Repeat: true,
		Attach: func(k *guest.Kernel, seed uint64) *workload.Instance {
			b := bench
			switch b.Kind {
			case workload.KindParallel:
				b.Parallel.Threads = nthreads
			case workload.KindWorkSteal:
				b.WorkSteal.Threads = nthreads
			}
			return b.Instantiate(k, mode, seed)
		},
	}
}

// AttackerVM builds an adversarial VM running the attacker described
// by spec (see workload.ParseAttack) on vcpus vCPUs.
func AttackerVM(name string, spec workload.AttackSpec, vcpus int, pins []int) VMSpec {
	return VMSpec{
		Name:  name,
		VCPUs: vcpus,
		Pin:   pins,
		Attach: func(k *guest.Kernel, seed uint64) *workload.Instance {
			return workload.NewAttacker(k, spec, seed)
		},
	}
}

// ServerVM builds a VM running a server workload; stats lands in the
// returned pointer after the run.
func ServerVM(name string, spec workload.ServerSpec, vcpus int, pins []int) (VMSpec, **workload.ServerStats) {
	stats := new(*workload.ServerStats)
	return VMSpec{
		Name:  name,
		VCPUs: vcpus,
		Pin:   pins,
		Attach: func(k *guest.Kernel, seed uint64) *workload.Instance {
			in, st := workload.NewServer(k, spec, seed)
			*stats = st
			return in
		},
	}, stats
}

// SeqPins returns [first, first+1, ...] of length n — the standard
// one-vCPU-per-pCPU pinning of §5.1.
func SeqPins(first, n int) []int {
	pins := make([]int, n)
	for i := range pins {
		pins[i] = first + i
	}
	return pins
}

// RepeatRuns executes the scenario `runs` times with distinct seeds and
// returns the foreground VM's runtimes in seconds (the paper averages
// 5 runs).
func RepeatRuns(scn Scenario, fgVM string, runs int) ([]float64, error) {
	var rts []float64
	for i := 0; i < runs; i++ {
		s := scn
		s.Seed = scn.Seed + uint64(i)*7919
		res, err := Run(s)
		if err != nil {
			return rts, err
		}
		vr := res.VM(fgVM)
		if vr == nil || vr.Runtime == 0 {
			return rts, ErrUnfinished
		}
		rts = append(rts, vr.Runtime.Seconds())
	}
	return rts, nil
}

// MeanRuntime runs the scenario `runs` times and averages the
// foreground runtime in seconds.
func MeanRuntime(scn Scenario, fgVM string, runs int) (float64, error) {
	rts, err := RepeatRuns(scn, fgVM, runs)
	if err != nil {
		return 0, err
	}
	return metrics.Summarize(rts).Mean, nil
}

// Utilization returns the VM's CPU consumption relative to a fair
// share over the elapsed interval (Figure 2's metric).
func Utilization(res *Result, vmName string, fairShare sim.Time) float64 {
	vr := res.VM(vmName)
	if vr == nil || fairShare <= 0 {
		return 0
	}
	return float64(vr.CPUTime) / float64(fairShare)
}
