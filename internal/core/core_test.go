package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scenario builds the paper's standard pinned setup: a 4-vCPU
// foreground VM on pCPUs 0-3 and nInter CPU hogs sharing pCPUs 0..n-1.
func scenario(bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy, nInter int, seed uint64) core.Scenario {
	fg := core.BenchmarkVM("fg", bench, mode, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	vms := []core.VMSpec{fg}
	if nInter > 0 {
		vms = append(vms, core.HogVM("bg", nInter, core.SeqPins(0, nInter)))
	}
	return core.Scenario{
		PCPUs:    4,
		Strategy: strat,
		Seed:     seed,
		VMs:      vms,
	}
}

func mustRun(t *testing.T, scn core.Scenario) *core.Result {
	t.Helper()
	res, err := core.Run(scn)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestBenchmarkRunsAloneCloseToNominal(t *testing.T) {
	bench, ok := workload.ByName("streamcluster")
	if !ok {
		t.Fatal("streamcluster not in catalog")
	}
	res := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 0, 1))
	nominal := bench.Parallel.TotalWork()
	rt := res.VM("fg").Runtime
	if rt < nominal {
		t.Fatalf("runtime %v below nominal per-thread work %v", rt, nominal)
	}
	if rt > nominal*3/2 {
		t.Fatalf("runtime %v too far above nominal %v (imbalance+overhead should be small)", rt, nominal)
	}
}

func TestInterferenceSlowsBlockingBarrierWorkload(t *testing.T) {
	bench, _ := workload.ByName("streamcluster")
	alone := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 0, 1)).VM("fg").Runtime
	inter := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 1, 1)).VM("fg").Runtime
	slowdown := float64(inter) / float64(alone)
	// Figure 1(a): barrier workloads suffer ~2-3.5x under one interferer.
	if slowdown < 1.5 {
		t.Fatalf("slowdown %.2f too small; LHP/LWP dynamics missing", slowdown)
	}
	if slowdown > 5 {
		t.Fatalf("slowdown %.2f implausibly large", slowdown)
	}
}

func TestIRSImprovesBlockingWorkloadUnderInterference(t *testing.T) {
	bench, _ := workload.ByName("streamcluster")
	van := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 1, 1)).VM("fg").Runtime
	irs := mustRun(t, scenario(bench, 0, core.StrategyIRS, 1, 1)).VM("fg").Runtime
	imp := (float64(van) - float64(irs)) / float64(van) * 100
	t.Logf("vanilla=%v irs=%v improvement=%.1f%%", van, irs, imp)
	if imp < 10 {
		t.Fatalf("IRS improvement %.1f%%, want >=10%% (paper: up to 42%%)", imp)
	}
}

func TestIRSImprovesSpinningWorkloadUnderInterference(t *testing.T) {
	bench, _ := workload.ByName("MG")
	van := mustRun(t, scenario(bench, workload.SyncSpinning, core.StrategyVanilla, 1, 1)).VM("fg").Runtime
	irs := mustRun(t, scenario(bench, workload.SyncSpinning, core.StrategyIRS, 1, 1)).VM("fg").Runtime
	imp := (float64(van) - float64(irs)) / float64(van) * 100
	t.Logf("vanilla=%v irs=%v improvement=%.1f%%", van, irs, imp)
	if imp < 5 {
		t.Fatalf("IRS improvement %.1f%%, want >=5%% for spinning (paper: up to 43%%)", imp)
	}
}

func TestWorkStealingResilientToInterference(t *testing.T) {
	bench, _ := workload.ByName("raytrace")
	alone := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 0, 1)).VM("fg").Runtime
	inter := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 1, 1)).VM("fg").Runtime
	slowdown := float64(inter) / float64(alone)
	// Figure 1(a): raytrace stays near 1x; allow up to ~1.45x
	// (it loses 1/8 of machine capacity to the hog).
	if slowdown > 1.45 {
		t.Fatalf("work-stealing slowdown %.2f, want < 1.45", slowdown)
	}
}

func TestBlockingWorkloadUnderutilizesFairShare(t *testing.T) {
	bench, _ := workload.ByName("streamcluster")
	res := mustRun(t, scenario(bench, 0, core.StrategyVanilla, 1, 1))
	// Fair share: pCPU0 shared with the hog (1/2) + 3 exclusive pCPUs.
	elapsed := res.Elapsed
	fair := elapsed/2 + 3*elapsed
	util := core.Utilization(res, "fg", fair)
	// Figure 2: blocking workloads fall well short of fair share.
	if util > 0.9 {
		t.Fatalf("utilization %.2f, want < 0.9 (deceptive idleness)", util)
	}
	if util < 0.2 {
		t.Fatalf("utilization %.2f implausibly low", util)
	}
}

func TestLHPAndLWPEventsOccur(t *testing.T) {
	// A lock-bound workload with long critical sections: preemptions
	// under contention must land on lock holders or waiters sometimes.
	spec := workload.ParallelSpec{
		Name: "lockheavy", Mode: workload.SyncSpinning,
		Iterations: 300, Work: 2 * sim.Millisecond,
		LocksPerIter: 4, CSLen: 300 * sim.Microsecond,
	}
	var lhp, lwp int64
	for seed := uint64(1); seed <= 3; seed++ {
		fg := core.VMSpec{
			Name:  "fg",
			VCPUs: 4,
			Pin:   core.SeqPins(0, 4),
			Attach: func(k *guest.Kernel, s uint64) *workload.Instance {
				return workload.NewParallel(k, spec, s)
			},
		}
		res, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: core.StrategyVanilla, Seed: seed,
			VMs: []core.VMSpec{fg, core.HogVM("bg", 2, core.SeqPins(0, 2))},
		})
		if err != nil {
			t.Fatal(err)
		}
		lhp += res.VM("fg").LHP
		lwp += res.VM("fg").LWP
	}
	if lhp == 0 {
		t.Fatal("no LHP events across 3 contended lock-heavy runs")
	}
	if lwp == 0 {
		t.Fatal("no LWP events across 3 contended lock-heavy runs")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	bench, _ := workload.ByName("CG")
	a := mustRun(t, scenario(bench, 0, core.StrategyIRS, 2, 42))
	b := mustRun(t, scenario(bench, 0, core.StrategyIRS, 2, 42))
	if a.VM("fg").Runtime != b.VM("fg").Runtime {
		t.Fatalf("non-deterministic runtimes: %v vs %v", a.VM("fg").Runtime, b.VM("fg").Runtime)
	}
	if a.Events != b.Events {
		t.Fatalf("non-deterministic event counts: %d vs %d", a.Events, b.Events)
	}
}

func TestHorizonErrorOnUnfinishedWorkload(t *testing.T) {
	bench, _ := workload.ByName("streamcluster")
	scn := scenario(bench, 0, core.StrategyVanilla, 1, 1)
	scn.Horizon = 100 * sim.Millisecond
	_, err := core.Run(scn)
	if err == nil {
		t.Fatal("expected horizon error")
	}
}
