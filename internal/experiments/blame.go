package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/workload"
)

// The blame experiment answers the question the latency tables cannot:
// not "how slow is the tail" but "whose fault is it". A bully rig — an
// open-loop locking server sharing half its pCPUs with CPU hogs — is
// run under each strategy with causal span tracing on, and the
// per-category critical-path breakdown of the p99 cohort is reported.
// The claim: under vanilla the tail is dominated by preemption wait and
// lock-holder-preemption spinning; IRS shifts the blame back to service
// time, which is the work the tenant actually asked for.

// Default bully-workload knobs, shared with cmd/irsblame.
const (
	DefaultBlameDuration = 2 * sim.Second
	DefaultBlameArrival  = 500 * sim.Microsecond
)

// BlameVariant is one strategy row of the blame table.
type BlameVariant struct {
	Name  string
	Strat core.Strategy
}

// BlameVariants lists the comparison rows in table order.
func BlameVariants() []BlameVariant {
	return []BlameVariant{
		{Name: "vanilla", Strat: core.StrategyVanilla},
		{Name: "ple", Strat: core.StrategyPLE},
		{Name: "irs", Strat: core.StrategyIRS},
	}
}

// BlameVariantByName resolves a variant by its table name.
func BlameVariantByName(name string) (BlameVariant, bool) {
	for _, v := range BlameVariants() {
		if v.Name == name {
			return v, true
		}
	}
	return BlameVariant{}, false
}

// BlameScenario builds the bully rig: a 4-vCPU open-loop server VM
// (every third request takes a shared lock) pinned across all four
// pCPUs, with two hogs stacked on pCPUs 0-1 so half the server's vCPUs
// are constantly preempted mid-request. tracer, when non-nil, is
// injected into the foreground guest so every request carries a span.
func BlameScenario(strat core.Strategy, seed uint64, duration, arrival sim.Time, tracer *span.Tracer) core.Scenario {
	spec := workload.ServerSpec{
		Name:      "srv",
		Threads:   4,
		Service:   800 * sim.Microsecond,
		Arrival:   arrival,
		LockEvery: 3,
		LockCS:    150 * sim.Microsecond,
		Duration:  duration,
	}
	fg, _ := core.ServerVM("fg", spec, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	return core.Scenario{
		PCPUs:    4,
		Strategy: strat,
		Seed:     seed,
		Horizon:  120 * sim.Second,
		VMs: []core.VMSpec{
			fg,
			core.HogVM("bg", 2, core.SeqPins(0, 2)),
		},
		TuneGuest: func(name string, c *guest.Config) {
			if name == "fg" {
				c.Spans = tracer
			}
		},
	}
}

// BlameRun executes the bully scenario once under strat and returns the
// finished request spans.
func BlameRun(strat core.Strategy, seed uint64, duration, arrival sim.Time) ([]*span.Span, error) {
	tr := span.NewTracer()
	if _, err := core.Run(BlameScenario(strat, seed, duration, arrival, tr)); err != nil {
		return nil, err
	}
	return tr.Finished(), nil
}

// Blame runs the bully workload under each strategy and reports the
// p99-cohort latency blame breakdown.
func Blame(opt Options) Table { return runFigure(opt, blameTable) }

// blameRowOut is one rendered strategy cell.
type blameRowOut struct {
	row    []string
	errStr string
}

func blameTable(h *harness) Table {
	t := Table{
		ID:    "blame",
		Title: "Latency blame attribution under the bully workload (4 pCPUs, 4-vCPU locking server + 2 hogs)",
		Columns: []string{"strategy", "reqs", "p50", "p99", "p99.9",
			"svc%(p99)", "preempt%(p99)", "lhp%(p99)", "top p99 blame", "viol"},
	}
	seed, runs := h.opt.Seed, h.opt.Runs
	for _, v := range BlameVariants() {
		v := v
		out := jobAs(h, "blame|"+v.Name, func() blameRowOut {
			return blameCell(v, seed, runs)
		})
		if out.errStr != "" {
			h.opt.Logf("blame: %s: %s", v.Name, out.errStr)
			continue
		}
		if out.row != nil {
			t.Rows = append(t.Rows, out.row)
		}
	}
	return t
}

// blameCell runs one strategy `runs` times, merges the per-run wall
// sketches (the mergeable-quantile path a scrape pipeline would use),
// and analyzes the pooled spans. Pure function of its arguments; safe
// on worker goroutines.
func blameCell(v BlameVariant, seed uint64, runs int) blameRowOut {
	var all []*span.Span
	wall := obs.NewSketch(obs.DefaultSketchAlpha)
	for i := 0; i < runs; i++ {
		spans, err := BlameRun(v.Strat, seed+uint64(i)*7919, DefaultBlameDuration, DefaultBlameArrival)
		if err != nil {
			return blameRowOut{errStr: err.Error()}
		}
		runWall := obs.NewSketch(obs.DefaultSketchAlpha)
		for _, sp := range spans {
			runWall.Add(sp.Wall())
		}
		wall.Merge(runWall)
		all = append(all, spans...)
	}
	an := span.Analyze(all, obs.DefaultSketchAlpha)
	p99 := an.Band("p99")
	if p99 == nil {
		return blameRowOut{errStr: "no finished requests"}
	}
	top := "-"
	if len(p99.Shares) > 0 {
		s := p99.Shares[0]
		top = fmt.Sprintf("%s %.1f%%", s.Cat, s.Share*100)
	}
	return blameRowOut{row: []string{
		v.Name,
		fmt.Sprintf("%d", an.Requests),
		fmtLatency(wall.Percentile(50)),
		fmtLatency(wall.Percentile(99)),
		fmtLatency(wall.Percentile(99.9)),
		fmtShare(p99.Share(span.CatService)),
		fmtShare(p99.Share(span.CatPreemptWait)),
		fmtShare(p99.Share(span.CatLHPSpin)),
		top,
		fmt.Sprintf("%d", an.Violations),
	}}
}

// fmtShare renders a [0,1] fraction as a percentage.
func fmtShare(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
