package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Figure 10: IRS improvement trend with a varying number of interfered
// vCPUs (1-8) on 8-vCPU VMs sharing 8 pCPUs, for four benchmark types
// (x264: mutex, blackscholes: barrier, EP: blocking/little sync,
// MG: spinning) and three interference types.

// fig10Case describes one sub-plot of Figure 10.
type fig10Case struct {
	bench string
	mode  workload.SyncMode
	// inters names the interference sources: always hogs plus two real
	// applications.
	inters []string
	iMode  workload.SyncMode
}

func fig10Cases() []fig10Case {
	return []fig10Case{
		{"x264", 0, []string{"fluidanimate", "streamcluster"}, 0},
		{"blackscholes", 0, []string{"fluidanimate", "streamcluster"}, 0},
		{"EP", workload.SyncBlocking, []string{"LU", "UA"}, workload.SyncSpinning},
		{"MG", workload.SyncSpinning, []string{"LU", "UA"}, workload.SyncSpinning},
	}
}

// Fig10 reproduces Figure 10 (IRS only, as plotted in the paper).
func Fig10(opt Options) Table { return runFigure(opt, fig10) }

func fig10(h *harness) Table {
	cols := []string{"benchmark", "interference"}
	for n := 1; n <= 8; n++ {
		cols = append(cols, fmt.Sprintf("%d", n))
	}
	var rows [][]string
	for _, c := range fig10Cases() {
		bench, ok := workload.ByName(c.bench)
		if !ok {
			continue
		}
		sources := []struct {
			name  string
			inter func(int) interference
		}{
			{"microbench", hogs},
		}
		for _, in := range c.inters {
			ib, ok := workload.ByName(in)
			if !ok {
				continue
			}
			ibCopy, mode := ib, c.iMode
			sources = append(sources, struct {
				name  string
				inter func(int) interference
			}{in, func(l int) interference { return benchInter(ibCopy, mode, l) }})
		}
		for _, src := range sources {
			row := []string{c.bench, src.name}
			for n := 1; n <= 8; n++ {
				s := setup{pcpus: 8, fgVCPUs: 8, bench: bench, mode: c.mode, inter: src.inter(n)}
				row = append(row, pct(h.improvement(s, core.StrategyIRS)))
			}
			rows = append(rows, row)
		}
	}
	return Table{
		ID:      "fig10",
		Title:   "IRS improvement vs number of interfered vCPUs (8-vCPU VMs)",
		Columns: cols,
		Rows:    rows,
	}
}

// Fig11 reproduces Figure 11: IRS improvement with a varying number of
// stacked interfering VMs (1-3) on each interfered pCPU, for a 4-vCPU
// foreground VM at 1-, 2- and 4-vCPU interference levels.
func Fig11(opt Options) Table { return runFigure(opt, fig11) }

func fig11(h *harness) Table {
	cols := []string{"benchmark", "interference level", "1 VM", "2 VMs", "3 VMs"}
	var rows [][]string
	for _, c := range fig10Cases() {
		bench, ok := workload.ByName(c.bench)
		if !ok {
			continue
		}
		for _, lvl := range []int{1, 2, 4} {
			row := []string{c.bench, fmt.Sprintf("%d-inter", lvl)}
			for vms := 1; vms <= 3; vms++ {
				in := hogs(lvl)
				in.vms = vms
				s := setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: c.mode, inter: in}
				row = append(row, pct(h.improvement(s, core.StrategyIRS)))
			}
			rows = append(rows, row)
		}
	}
	return Table{
		ID:      "fig11",
		Title:   "IRS improvement vs degree of interference (stacked hog VMs)",
		Columns: cols,
		Rows:    rows,
	}
}
