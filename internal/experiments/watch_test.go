package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/watch"
)

// runWatchVariant executes one watchdog rig variant at the golden seed
// and returns the live watcher for inspection.
func runWatchVariant(t *testing.T, name string) *watch.Watcher {
	t.Helper()
	v, ok := WatchVariantByName(name)
	if !ok {
		t.Fatalf("unknown watch variant %q", name)
	}
	c, err := NewWatchCluster(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("%s: %d invariant violations", name, res.Violations)
	}
	return c.Watcher()
}

func TestWatchQuietVariantStaysSilent(t *testing.T) {
	w := runWatchVariant(t, "quiet")
	if n := len(w.Alerts()); n != 0 {
		t.Fatalf("quiet rig fired %d alerts: %+v", n, w.Alerts())
	}
	if n := len(w.Recorder().Incidents()); n != 0 {
		t.Fatalf("quiet rig captured %d incidents", n)
	}
}

func TestWatchBullyDetectedAndAttributed(t *testing.T) {
	// The experiment's headline acceptance criteria: the burn-rate rule
	// fires within one slow window of the bully landing, and attribution
	// ranks the bully first with at least twice the runner-up's score.
	w := runWatchVariant(t, "bully")
	alerts := w.Alerts()
	if len(alerts) == 0 {
		t.Fatal("bully rig fired no alerts")
	}
	first := alerts[0]
	if first.At < WatchBullyArrive {
		t.Fatalf("alert at %v predates the bully landing at %v", first.At, WatchBullyArrive)
	}
	slow := DefaultWatchRuleSet()[0].Slow
	if lat := first.At - WatchBullyArrive; lat >= slow {
		t.Fatalf("detection latency %v not under one slow window (%v)", lat, slow)
	}

	ranked, triples := w.Rankings()
	if len(ranked) < 2 {
		t.Fatalf("attribution ranked %d aggressors, want at least bully + runner-up: %+v", len(ranked), ranked)
	}
	top, runner := ranked[0], ranked[1]
	if top.Aggressor != "bully" || top.Victim != "srv0" {
		t.Fatalf("top ranking = %s hurting %s, want bully hurting srv0", top.Aggressor, top.Victim)
	}
	if runner.Score > 0 && top.Score < 2*runner.Score {
		t.Fatalf("bully score %.4f not >= 2x runner-up %s %.4f",
			top.Score, runner.Aggressor, runner.Score)
	}
	// The hog on the other host must never be blamed.
	for _, tr := range triples {
		if tr.Aggressor == "ant-far" {
			t.Fatalf("cross-host hog blamed: %+v", tr)
		}
	}

	incs := w.Recorder().Incidents()
	if len(incs) == 0 {
		t.Fatal("alert fired but no incident bundle captured")
	}
	if incs[0].Alert == nil || incs[0].Alert.Rule.Name != "page" {
		t.Fatalf("incident bundle not tied to the page rule: %+v", incs[0].Alert)
	}
}

func TestWatchDetectionWithinOneEpochOfBurn(t *testing.T) {
	// Sanity on the cadence math: the fast window is 500ms, so with the
	// violation rate the bully induces, the first alert must land within
	// a handful of epochs after the fast window fills — well before the
	// slow window elapses.
	w := runWatchVariant(t, "bully")
	if len(w.Alerts()) == 0 {
		t.Fatal("no alerts")
	}
	if lat := w.Alerts()[0].At - WatchBullyArrive; lat > 1500*sim.Millisecond {
		t.Fatalf("detection latency %v, expected well under 1.5s for a saturating bully", lat)
	}
}
