package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// Figures 5 and 6: performance improvement over vanilla Xen/Linux for
// the full PARSEC (blocking) and NPB (spinning) suites, under three
// interference sources — the synthetic micro-benchmark and two real
// parallel applications — at 1-, 2- and 4-vCPU interference levels,
// for PLE, relaxed co-scheduling, and IRS.

var improvementStrategies = []core.Strategy{core.StrategyPLE, core.StrategyRelaxedCo, core.StrategyIRS}

var improvementLevels = []int{1, 2, 4}

// improvementPanel builds one panel (one interference source) of a
// Fig 5/6-style matrix.
func improvementPanel(h *harness, id, title string, suite []workload.Benchmark, mode workload.SyncMode, inter func(level int) interference) Table {
	cols := []string{"benchmark"}
	for _, lvl := range improvementLevels {
		for _, st := range improvementStrategies {
			cols = append(cols, fmt.Sprintf("%d-inter %s", lvl, st))
		}
	}
	var rows [][]string
	for _, bench := range suite {
		row := []string{bench.Name}
		for _, lvl := range improvementLevels {
			for _, st := range improvementStrategies {
				s := setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: mode, inter: inter(lvl)}
				row = append(row, pct(h.improvement(s, st)))
			}
		}
		rows = append(rows, row)
	}
	return Table{ID: id, Title: title, Columns: cols, Rows: rows}
}

// Fig5 reproduces Figure 5: PARSEC (blocking) improvement under
// (a) CPU hogs, (b) streamcluster, (c) fluidanimate interference.
func Fig5(opt Options) Table { return runFigure(opt, fig5) }

func fig5(h *harness) Table {
	stream, _ := workload.ByName("streamcluster")
	fluid, _ := workload.ByName("fluidanimate")
	panels := []Table{
		improvementPanel(h, "fig5a", "PARSEC improvement w/ micro-benchmark (blocking)", workload.PARSEC(), 0, hogs),
		improvementPanel(h, "fig5b", "PARSEC improvement w/ streamcluster (blocking)", workload.PARSEC(), 0,
			func(l int) interference { return benchInter(stream, 0, l) }),
		improvementPanel(h, "fig5c", "PARSEC improvement w/ fluidanimate (blocking)", workload.PARSEC(), 0,
			func(l int) interference { return benchInter(fluid, 0, l) }),
	}
	return mergePanels("fig5", "Improvement on PARSEC performance (blocking)", panels)
}

// Fig6 reproduces Figure 6: NPB (spinning) improvement under
// (a) CPU hogs, (b) UA, (c) LU interference.
func Fig6(opt Options) Table { return runFigure(opt, fig6) }

func fig6(h *harness) Table {
	ua, _ := workload.ByName("UA")
	lu, _ := workload.ByName("LU")
	panels := []Table{
		improvementPanel(h, "fig6a", "NPB improvement w/ micro-benchmark (spinning)", workload.NPB(), workload.SyncSpinning, hogs),
		improvementPanel(h, "fig6b", "NPB improvement w/ UA (spinning)", workload.NPB(), workload.SyncSpinning,
			func(l int) interference { return benchInter(ua, workload.SyncSpinning, l) }),
		improvementPanel(h, "fig6c", "NPB improvement w/ LU (spinning)", workload.NPB(), workload.SyncSpinning,
			func(l int) interference { return benchInter(lu, workload.SyncSpinning, l) }),
	}
	return mergePanels("fig6", "Improvement on NPB performance (spinning)", panels)
}

// mergePanels concatenates sub-panels into one table with a panel
// header column.
func mergePanels(id, title string, panels []Table) Table {
	out := Table{ID: id, Title: title}
	if len(panels) == 0 {
		return out
	}
	out.Columns = append([]string{"panel"}, panels[0].Columns...)
	for _, p := range panels {
		for _, r := range p.Rows {
			out.Rows = append(out.Rows, append([]string{p.ID}, r...))
		}
	}
	return out
}
