package experiments

import (
	"testing"

	"repro/internal/workload"
)

// The acceptance numbers of the adversarial-tenant experiment: the
// tick-evader steals well above its fair share undefended, both
// defenses together pin it to within 5% of fair, the watchdog fingers
// it, and every cell is invariant-clean.
func TestAttackAcceptance(t *testing.T) {
	evade := workload.AttackSpec{Kind: workload.AttackTickEvade}

	vanilla, ok := AttackDefenseByName("vanilla")
	if !ok {
		t.Fatal("no vanilla defense row")
	}
	o, err := RunAttack(evade, vanilla, 1)
	if err != nil {
		t.Fatalf("vanilla: %v", err)
	}
	if o.FairRatio < 1.3 {
		t.Errorf("undefended tick-evader obtained only %.3fx fair share, want >= 1.3x", o.FairRatio)
	}
	if o.TopAggressor != "attacker" {
		t.Errorf("attribution ranked %q as top aggressor, want the attacker", o.TopAggressor)
	}
	if o.Debited != 0 {
		t.Errorf("tick-evader was debited %d credits under vanilla sampling, want 0", o.Debited)
	}
	if o.Violations != 0 {
		t.Errorf("vanilla cell has %d invariant violations", o.Violations)
	}

	both, ok := AttackDefenseByName("both")
	if !ok {
		t.Fatal("no both defense row")
	}
	d, err := RunAttack(evade, both, 1)
	if err != nil {
		t.Fatalf("both: %v", err)
	}
	if d.FairRatio > AttackOvershootCap {
		t.Errorf("defended tick-evader still obtains %.3fx fair share, want <= %.2fx",
			d.FairRatio, AttackOvershootCap)
	}
	if d.Debited == 0 {
		t.Error("defended tick-evader was never debited")
	}
	if d.Violations != 0 {
		t.Errorf("defended cell has %d invariant violations", d.Violations)
	}
	if d.VictimP99 >= o.VictimP99 {
		t.Errorf("victim p99 did not improve under defenses: %v (defended) vs %v (vanilla)",
			d.VictimP99, o.VictimP99)
	}
}

// The boost-gamer's theft channel (wake boosts) is also capped by the
// defenses.
func TestAttackBoostGamerCapped(t *testing.T) {
	game := workload.AttackSpec{Kind: workload.AttackBoostGame}
	vanilla, _ := AttackDefenseByName("vanilla")
	both, _ := AttackDefenseByName("both")
	o, err := RunAttack(game, vanilla, 1)
	if err != nil {
		t.Fatalf("vanilla: %v", err)
	}
	if o.FairRatio < 1.2 {
		t.Errorf("undefended boost-gamer obtained %.3fx fair share, want >= 1.2x", o.FairRatio)
	}
	d, err := RunAttack(game, both, 1)
	if err != nil {
		t.Fatalf("both: %v", err)
	}
	if d.FairRatio > AttackOvershootCap {
		t.Errorf("defended boost-gamer still obtains %.3fx fair share, want <= %.2fx",
			d.FairRatio, AttackOvershootCap)
	}
}
