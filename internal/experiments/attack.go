package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/watch"
	"repro/internal/workload"
)

// The attack experiment quantifies credit-scheduler theft of service
// (DESIGN.md §13): an adversarial tenant (internal/workload attack
// specs) shares one pCPU with a latency-sensitive server and an honest
// CPU hog, all at equal credit weight, so every tenant's fair share is
// 1/3 of the machine. The table reports how much CPU the attacker
// actually obtained relative to that fair share, what it was billed,
// how the victim's tail latency suffered, and whether the watchdog's
// attribution engine fingers the attacker — under each combination of
// the two accounting defenses (jittered tick sampling and exact
// runstate-based debiting).

// Attack rig knobs, shared with cmd/irsim and cmd/irsweep.
const (
	// DefaultAttackDuration is the victim's request-stream duration;
	// the run ends when the stream completes.
	DefaultAttackDuration = 4 * sim.Second
	// DefaultAttackJitter is the tick-jitter fraction the "jitter" and
	// "both" defense rows apply.
	DefaultAttackJitter = 0.4
	// AttackOvershootCap is the CI gate: with both defenses on, the
	// attacker's obtained/fair ratio must not exceed this (i.e. it gets
	// at most 5% above its entitlement).
	AttackOvershootCap = 1.05
)

// AttackDefense is one hardening configuration of the credit accountant.
type AttackDefense struct {
	Name   string
	Jitter float64 // Config.TickJitter
	Exact  bool    // Config.ExactAccounting
}

// AttackDefenses lists the comparison rows in table order: undefended,
// each defense alone, then both together.
func AttackDefenses() []AttackDefense {
	return []AttackDefense{
		{Name: "vanilla"},
		{Name: "jitter", Jitter: DefaultAttackJitter},
		{Name: "exact", Exact: true},
		{Name: "both", Jitter: DefaultAttackJitter, Exact: true},
	}
}

// AttackDefenseByName resolves a defense row by its table name.
func AttackDefenseByName(name string) (AttackDefense, bool) {
	for _, d := range AttackDefenses() {
		if d.Name == name {
			return d, true
		}
	}
	return AttackDefense{}, false
}

// AttackAttackers lists the attacker specs the attack table sweeps.
func AttackAttackers() []workload.AttackSpec {
	return []workload.AttackSpec{
		{Kind: workload.AttackTickEvade},
		{Kind: workload.AttackBoostGame},
	}
}

// AttackOutcome is the measured result of one attacker × defense cell.
type AttackOutcome struct {
	Attacker string
	Defense  string
	// Share is the fraction of total machine capacity the attacker
	// obtained; FairRatio is Share relative to its weight-proportional
	// entitlement (1.0 = exactly fair, >1 = theft).
	Share     float64
	FairRatio float64
	// HonestRatio is the honest hog's obtained/fair ratio — the mirror
	// image of the theft.
	HonestRatio float64
	VictimP99   sim.Time
	BoostGrants int64
	Debited     int64
	// TopAggressor is the watchdog attribution's top-ranked aggressor
	// for the victim (with its score), RunnerUp the second.
	TopAggressor string
	TopScore     float64
	RunnerUp     string
	Violations   int64
}

// RunAttack executes one attacker × defense cell: 1 pCPU, three
// equal-weight single-vCPU VMs — "attacker" (the adversarial tenant),
// "victim" (an open-loop server, marked sensitive for attribution) and
// "honest" (a plain CPU hog). Pure function of its arguments; safe on
// worker goroutines.
func RunAttack(spec workload.AttackSpec, d AttackDefense, seed uint64) (AttackOutcome, error) {
	reg := obs.NewRegistry()
	// Closed-loop saturated server: the victim always wants CPU, so the
	// weight-proportional fair share (1/3 each) is every tenant's true
	// entitlement and per-request latency directly reflects how much of
	// it the scheduler actually delivers.
	victim, stats := core.ServerVM("victim", workload.ServerSpec{
		Name:     "victim",
		Threads:  1,
		Service:  300 * sim.Microsecond,
		Duration: DefaultAttackDuration,
	}, 1, []int{0})
	scn := core.Scenario{
		PCPUs:    1,
		Strategy: core.StrategyVanilla,
		Seed:     seed,
		Horizon:  DefaultAttackDuration + 10*sim.Second,
		VMs: []core.VMSpec{
			core.AttackerVM("attacker", spec, 1, []int{0}),
			victim,
			core.HogVM("honest", 1, []int{0}),
		},
		TuneHV: func(c *hypervisor.Config) {
			c.TickJitter = d.Jitter
			c.ExactAccounting = d.Exact
		},
		Metrics:    reg,
		Invariants: true,
	}
	c, err := core.Build(scn)
	if err != nil {
		return AttackOutcome{}, err
	}

	// Wire the single-host watchdog by hand (the cluster layer does the
	// same dance per host): occupancy intervals stream in for
	// attribution, per-VM pain is pushed each epoch.
	w := watch.New(watch.Config{Interval: DefaultWatchInterval})
	for _, vmSpec := range scn.VMs {
		w.RegisterVM(watch.VMInfo{
			Name: vmSpec.Name, Host: "h0", VCPUs: vmSpec.VCPUs,
			Sensitive: vmSpec.Name == "victim",
		})
	}
	c.HV.SetOccupancyObserver(func(vm *hypervisor.VM, p *hypervisor.PCPU, dur sim.Time) {
		w.AddOccupancy(c.Engine.Now(), "h0", vm.Name, p.Name(), dur)
	})
	w.AddFeed(func(now sim.Time) {
		c.HV.SyncRunstateAccounting()
		c.HV.SyncOccupancyAccounting()
		for _, vm := range c.HV.VMs() {
			pain := vm.TotalStealTime()
			if hist := reg.FindHistogram("hv_preempt_wait_ns", obs.Labels{Sub: "hv", VM: vm.Name}); hist != nil {
				pain += sim.Time(hist.Sum())
			}
			w.FeedPain(now, "h0", vm.Name, pain)
		}
	})
	w.Start(c.Engine)

	res, err := c.Run()
	if err != nil {
		return AttackOutcome{}, err
	}
	c.HV.SyncCreditAccounting()

	out := AttackOutcome{
		Attacker:   spec.Kind.String(),
		Defense:    d.Name,
		Violations: res.Violations,
	}
	capacity := res.Elapsed * sim.Time(scn.PCPUs)
	for _, st := range c.HV.TheftStats(res.Elapsed) {
		switch st.Name {
		case "attacker":
			if capacity > 0 {
				out.Share = float64(st.Obtained) / float64(capacity)
			}
			out.FairRatio = st.Ratio
			out.BoostGrants = st.BoostGrants
			out.Debited = st.Debited
		case "honest":
			out.HonestRatio = st.Ratio
		}
	}
	if st := *stats; st != nil && st.Requests > 0 {
		out.VictimP99 = st.Latency.Percentile(99)
	}
	ranked, _ := w.AttributeAt(c.Engine.Now(), res.Elapsed)
	for _, r := range ranked {
		if r.Victim != "victim" {
			continue
		}
		if out.TopAggressor == "" {
			out.TopAggressor, out.TopScore = r.Aggressor, r.Score
		} else if out.RunnerUp == "" {
			out.RunnerUp = r.Aggressor
		}
	}
	return out, nil
}

// AttackColumns is the attack table header, shared with the CLIs.
func AttackColumns() []string {
	return []string{"attacker", "defense", "share", "fair-ratio", "honest-ratio",
		"boosts", "debited", "victim-p99", "top-aggressor", "score", "viol"}
}

// AttackRow renders one outcome as a table row, shared with the CLIs.
func AttackRow(o AttackOutcome) []string {
	p99 := "-"
	if o.VictimP99 > 0 {
		p99 = fmtLatency(o.VictimP99)
	}
	top := "-"
	if o.TopAggressor != "" {
		top = o.TopAggressor
	}
	return []string{
		o.Attacker,
		o.Defense,
		fmt.Sprintf("%.3f", o.Share),
		fmt.Sprintf("%.3f", o.FairRatio),
		fmt.Sprintf("%.3f", o.HonestRatio),
		fmt.Sprintf("%d", o.BoostGrants),
		fmt.Sprintf("%d", o.Debited),
		p99,
		top,
		fmt.Sprintf("%.4f", o.TopScore),
		fmt.Sprintf("%d", o.Violations),
	}
}

// attackCellOut is one rendered cell (or its error).
type attackCellOut struct {
	row    []string
	errStr string
}

// Attack runs the attacker × defense matrix and reports the theft and
// defense table (the adversarial-tenant experiment).
func Attack(opt Options) Table { return runFigure(opt, attackTable) }

func attackTable(h *harness) Table {
	t := Table{
		ID:      "attack",
		Title:   "Credit-scheduler theft of service: attacker share vs defenses (1 pCPU, 3 equal-weight tenants, fair share 1/3)",
		Columns: AttackColumns(),
	}
	seed := h.opt.Seed
	for _, spec := range AttackAttackers() {
		for _, d := range AttackDefenses() {
			spec, d := spec, d
			key := fmt.Sprintf("attack|%s|%s", spec.String(), d.Name)
			out := jobAs(h, key, func() attackCellOut {
				o, err := RunAttack(spec, d, seed)
				if err != nil {
					return attackCellOut{errStr: err.Error()}
				}
				return attackCellOut{row: AttackRow(o)}
			})
			if out.errStr != "" {
				h.opt.Logf("attack: %s/%s: %s", spec.Kind, d.Name, out.errStr)
				continue
			}
			if out.row != nil {
				t.Rows = append(t.Rows, out.row)
			}
		}
	}
	return t
}
