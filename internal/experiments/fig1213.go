package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Figures 12 and 13: the CPU-stacking study (§5.6). All vCPUs of both
// the foreground VM and the interfering hog VM are unpinned; the
// hypervisor's VM-oblivious vCPU balancer is free to stack sibling
// vCPUs on the same pCPU. For blocking workloads stacking is driven by
// deceptive idleness; spinning workloads stack through placement noise
// with no force separating siblings. Improvement is over vanilla in
// the same unpinned setup.

// stackingPanel builds one strategies-vs-benchmarks panel with 4
// unpinned hogs as interference.
func stackingPanel(h *harness, id, title string, suite []workload.Benchmark, mode workload.SyncMode, inter func(int) interference) Table {
	cols := []string{"benchmark"}
	for _, st := range improvementStrategies {
		cols = append(cols, st.String())
	}
	var rows [][]string
	for _, bench := range suite {
		row := []string{bench.Name}
		for _, st := range improvementStrategies {
			s := setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: mode,
				inter: inter(4), unpinned: true, horizon: 1800 * sim.Second}
			row = append(row, pct(h.improvement(s, st)))
		}
		rows = append(rows, row)
	}
	return Table{ID: id, Title: title, Columns: cols, Rows: rows}
}

// Fig12 reproduces Figure 12: NPB performance in response to CPU
// stacking (spinning, unpinned, 4 hogs), plus the two real-application
// interference panels.
func Fig12(opt Options) Table { return runFigure(opt, fig12) }

func fig12(h *harness) Table {
	lu, _ := workload.ByName("LU")
	ua, _ := workload.ByName("UA")
	panels := []Table{
		stackingPanel(h, "fig12a", "NPB stacking w/ micro-benchmark", workload.NPB(), workload.SyncSpinning, hogs),
		stackingPanel(h, "fig12b", "NPB stacking w/ LU", workload.NPB(), workload.SyncSpinning,
			func(l int) interference { return benchInter(lu, workload.SyncSpinning, l) }),
		stackingPanel(h, "fig12c", "NPB stacking w/ UA", workload.NPB(), workload.SyncSpinning,
			func(l int) interference { return benchInter(ua, workload.SyncSpinning, l) }),
	}
	return mergePanels("fig12", "NPB performance under CPU stacking (unpinned)", panels)
}

// Fig13 reproduces Figure 13: PARSEC performance under CPU stacking
// (blocking, deceptive idleness).
func Fig13(opt Options) Table { return runFigure(opt, fig13) }

func fig13(h *harness) Table {
	stream, _ := workload.ByName("streamcluster")
	fluid, _ := workload.ByName("fluidanimate")
	panels := []Table{
		stackingPanel(h, "fig13a", "PARSEC stacking w/ micro-benchmark", workload.PARSEC(), 0, hogs),
		stackingPanel(h, "fig13b", "PARSEC stacking w/ streamcluster", workload.PARSEC(), 0,
			func(l int) interference { return benchInter(stream, 0, l) }),
		stackingPanel(h, "fig13c", "PARSEC stacking w/ fluidanimate", workload.PARSEC(), 0,
			func(l int) interference { return benchInter(fluid, 0, l) }),
	}
	return mergePanels("fig13", "PARSEC performance under CPU stacking (unpinned)", panels)
}

// SADelay reproduces the §3.1/§4.1 micro-measurement: the delay IRS
// adds to each hypervisor preemption (paper: 20-26 µs), plus SA channel
// statistics.
func SADelay(opt Options) Table { return runFigure(opt, saDelay) }

// saDelayOut carries the SA channel statistics of the one §3.1 run.
type saDelayOut struct {
	sent, acked, expired int64
	mean, max            sim.Time
	ok                   bool
}

func saDelay(h *harness) Table {
	seed := h.opt.Seed
	out := jobAs(h, "sadelay", func() saDelayOut {
		bench, _ := workload.ByName("streamcluster")
		fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
		fg.IRS = true
		scn := core.Scenario{
			PCPUs:    4,
			Strategy: core.StrategyIRS,
			Seed:     seed,
			VMs: []core.VMSpec{
				fg,
				core.HogVM("bg", 2, core.SeqPins(0, 2)),
			},
		}
		res, err := core.Run(scn)
		if err != nil {
			return saDelayOut{}
		}
		return saDelayOut{sent: res.SASent, acked: res.SAAcked, expired: res.SAExpired,
			mean: res.SAMeanDelay, max: res.SAMaxDelay, ok: true}
	})
	rows := [][]string{}
	if out.ok {
		rows = append(rows,
			[]string{"SA sent", itoa(out.sent)},
			[]string{"SA acked", itoa(out.acked)},
			[]string{"SA expired (hard limit)", itoa(out.expired)},
			[]string{"mean SA delay", out.mean.String()},
			[]string{"max SA delay", out.max.String()},
		)
	}
	return Table{
		ID:      "sadelay",
		Title:   "Scheduler-activation processing delay (paper: 20-26µs)",
		Columns: []string{"metric", "value"},
		Rows:    rows,
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
