package experiments

import (
	"sort"
	"testing"
)

// detOpt builds the shared options of the determinism tests. Workers
// is set explicitly: Workers == 0 would resolve to GOMAXPROCS, which
// on a single-CPU machine silently degrades to the serial path and
// tests nothing.
func detOpt(workers int) Options {
	return Options{Runs: 1, Seed: 11, Workers: workers}
}

// determinismCases picks cheap but structurally diverse builders:
// measure-based figures (fig1a), direct-rig jobs (fig1b), per-run jobs
// (fig2), multi-value jobs (fig8, sadelay), whole-point jobs
// (ab-salimit, ab-ticket), row-rendering workers (obs, chaos), and the
// claim matrix with its job-sharing across checks.
func determinismCases() map[string]func(Options) Table {
	return map[string]func(Options) Table{
		"fig1a":      Fig1a,
		"fig1b":      Fig1b,
		"fig2":       Fig2,
		"fig8":       Fig8,
		"sadelay":    SADelay,
		"ab-salimit": AblationSALimit,
		"ab-ticket":  AblationTicketLock,
		"obs":        ObsCounters,
		"chaos":      Chaos,
		"claims":     EvaluateClaims,
	}
}

// TestParallelMatchesSerial pins the harness's core guarantee: the
// parallel collect/execute/replay path renders byte-identical tables to
// the serial path, and two parallel runs (with different worker counts,
// hence different completion orders) are identical to each other.
func TestParallelMatchesSerial(t *testing.T) {
	cases := determinismCases()
	ids := make([]string, 0, len(cases))
	for id := range cases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fn := cases[id]
		t.Run(id, func(t *testing.T) {
			serial := fn(detOpt(1)).String()
			par4 := fn(detOpt(4)).String()
			par3 := fn(detOpt(3)).String()
			if par4 != serial {
				t.Errorf("parallel (4 workers) output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par4)
			}
			if par3 != par4 {
				t.Errorf("parallel runs differ between worker counts:\n--- 4 workers ---\n%s--- 3 workers ---\n%s", par4, par3)
			}
		})
	}
}

// TestAllParallelMatchesSerial runs the full paper-figure set both ways
// and compares the concatenated renderings byte for byte. Expensive
// (about two serial `irsim -runs 1 all` passes), so -short skips it;
// the subset test above covers every job shape on every run.
func TestAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full experiments.All determinism sweep in -short mode")
	}
	render := func(tables []Table) string {
		var s string
		for _, tb := range tables {
			s += tb.String() + "\n"
		}
		return s
	}
	serial := render(All(detOpt(1)))
	par := render(All(detOpt(4)))
	if par != serial {
		t.Errorf("experiments.All parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}
