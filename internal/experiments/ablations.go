package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Ablations beyond the paper's figures, probing the design choices
// DESIGN.md calls out:
//
//   - ab-pull:      push-based IRS (the paper) vs the pull-based
//                   mechanism proposed as future work in §6.
//   - ab-salimit:   sensitivity to the SA hard limit (§4.1's
//                   anti-rogue-guest deadline).
//   - ab-ticket:    TAS vs FIFO ticket spinlocks under interference —
//                   how acquisition-order guarantees amplify LWP.
//   - ab-spinblock: the adaptive pre-sleep spin budget vs PLE.

// AblationIRSPull compares IRS with and without the §6 pull mechanism
// on a blocking, barrier-heavy workload.
func AblationIRSPull(opt Options) Table { return runFigure(opt, ablationIRSPull) }

func ablationIRSPull(h *harness) Table {
	bench, _ := workload.ByName("streamcluster")
	rows := [][]string{}
	for _, lvl := range []int{1, 2, 4} {
		var van, push, pull []float64
		for i := 0; i < h.opt.Runs; i++ {
			seed := h.opt.Seed + uint64(i)*7919
			van = append(van, pullPointJob(h, bench, core.StrategyVanilla, false, lvl, seed))
			push = append(push, pullPointJob(h, bench, core.StrategyIRS, false, lvl, seed))
			pull = append(pull, pullPointJob(h, bench, core.StrategyIRS, true, lvl, seed))
		}
		v := metrics.Summarize(van).Mean
		rows = append(rows, []string{
			fmt.Sprintf("%d-inter", lvl),
			pct(metrics.Improvement(v, metrics.Summarize(push).Mean)),
			pct(metrics.Improvement(v, metrics.Summarize(pull).Mean)),
		})
	}
	return Table{
		ID:      "ab-pull",
		Title:   "Push-based IRS (paper) vs added pull-based migration (§6), streamcluster",
		Columns: []string{"interference", "IRS push", "IRS push+pull"},
		Rows:    rows,
	}
}

// pullPointJob wraps one pullPoint run as a harness job, one per
// (strategy, pull?, interference, seed) cell.
func pullPointJob(h *harness, bench workload.Benchmark, strat core.Strategy, irsPull bool, inter int, seed uint64) float64 {
	key := fmt.Sprintf("abpull|%s|%v|%d|%d", strat, irsPull, inter, seed)
	return jobAs(h, key, func() float64 {
		return pullPoint(bench, strat, irsPull, inter, seed)
	})
}

func pullPoint(bench workload.Benchmark, strat core.Strategy, irsPull bool, inter int, seed uint64) float64 {
	fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	scn := core.Scenario{
		PCPUs:    4,
		Strategy: strat,
		Seed:     seed,
		VMs: []core.VMSpec{
			fg,
			core.HogVM("bg", inter, core.SeqPins(0, inter)),
		},
		TuneGuest: func(name string, c *guest.Config) {
			if name == "fg" {
				c.IRSPull = irsPull
			}
		},
	}
	res, err := core.Run(scn)
	if err != nil {
		return 0
	}
	return res.VM("fg").Runtime.Seconds()
}

// AblationSALimit sweeps the SA completion hard limit. Too small and
// activations expire before the guest can respond (IRS degrades to
// vanilla); the paper's 20-26µs handling cost suggests anything beyond
// ~50µs suffices.
func AblationSALimit(opt Options) Table { return runFigure(opt, ablationSALimit) }

// salimitOut is one IRS data point of the SA-limit sweep.
type salimitOut struct {
	rt, expired float64
}

func ablationSALimit(h *harness) Table {
	opt := h.opt
	bench, _ := workload.ByName("streamcluster")
	limits := []sim.Time{
		10 * sim.Microsecond, 25 * sim.Microsecond, 50 * sim.Microsecond,
		100 * sim.Microsecond, 1 * sim.Millisecond,
	}
	base := jobAs(h, "absalimit|vanilla", func() float64 {
		return salimitPoint(opt, bench, 0, 0) // vanilla baseline
	})
	rows := [][]string{}
	for _, lim := range limits {
		lim := lim
		out := jobAs(h, fmt.Sprintf("absalimit|%s", lim), func() salimitOut {
			rt, expired := salimitPointIRS(opt, bench, lim)
			return salimitOut{rt: rt, expired: expired}
		})
		rows = append(rows, []string{
			lim.String(),
			pct(metrics.Improvement(base, out.rt)),
			fmt.Sprintf("%.0f%%", out.expired*100),
		})
	}
	return Table{
		ID:      "ab-salimit",
		Title:   "IRS sensitivity to the SA hard limit (streamcluster, 1-inter)",
		Columns: []string{"SA limit", "improvement", "SA expired"},
		Rows:    rows,
	}
}

func salimitPoint(opt Options, bench workload.Benchmark, _ sim.Time, _ int) float64 {
	var rts []float64
	for i := 0; i < opt.Runs; i++ {
		fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
		res, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: core.StrategyVanilla, Seed: opt.Seed + uint64(i)*7919,
			VMs: []core.VMSpec{fg, core.HogVM("bg", 1, core.SeqPins(0, 1))},
		})
		if err != nil {
			continue
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean
}

func salimitPointIRS(opt Options, bench workload.Benchmark, limit sim.Time) (float64, float64) {
	var rts, exp []float64
	for i := 0; i < opt.Runs; i++ {
		fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
		fg.IRS = true
		res, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: core.StrategyIRS, Seed: opt.Seed + uint64(i)*7919,
			VMs:    []core.VMSpec{fg, core.HogVM("bg", 1, core.SeqPins(0, 1))},
			TuneHV: func(c *hypervisor.Config) { c.SALimit = limit },
		})
		if err != nil {
			continue
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
		if res.SASent > 0 {
			exp = append(exp, float64(res.SAExpired)/float64(res.SASent))
		}
	}
	return metrics.Summarize(rts).Mean, metrics.Summarize(exp).Mean
}

// AblationTicketLock compares TAS and ticket spinlocks for a
// lock-heavy spinning workload under interference: FIFO handoff to a
// preempted waiter stalls the lock for everyone (the LWP pathology the
// preemptable-ticket-spinlock literature attacks [24]).
func AblationTicketLock(opt Options) Table { return runFigure(opt, ablationTicketLock) }

func ablationTicketLock(h *harness) Table {
	rows := [][]string{}
	// A lock-bound kernel: critical sections cover roughly half the
	// execution, so waiter queues actually form.
	spec := workload.ParallelSpec{
		Name: "lockbench", Mode: workload.SyncSpinning,
		Iterations: 600, Work: 1 * sim.Millisecond, Imbalance: 0.1,
		LocksPerIter: 6, CSLen: 150 * sim.Microsecond,
	}
	for _, lvl := range []int{0, 1, 2} {
		tas := ticketPointJob(h, spec, false, lvl)
		spec2 := spec
		spec2.TicketLock = true
		fifo := ticketPointJob(h, spec2, true, lvl)
		slow := 0.0
		if tas > 0 {
			slow = fifo / tas
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d-inter", lvl),
			fmt.Sprintf("%.2fs", tas),
			fmt.Sprintf("%.2fs", fifo),
			f2(slow),
		})
	}
	return Table{
		ID:      "ab-ticket",
		Title:   "TAS vs FIFO ticket spinlock under interference (vanilla Xen)",
		Columns: []string{"interference", "TAS", "ticket", "ticket/TAS"},
		Rows:    rows,
	}
}

// ticketPointJob wraps one ticketPoint cell as a harness job. The key
// carries the iteration count so ab-ticket's 600-iteration spec and
// claim C17's 400-iteration spec never collide.
func ticketPointJob(h *harness, spec workload.ParallelSpec, ticket bool, inter int) float64 {
	opt := h.opt
	key := fmt.Sprintf("abticket|%d|%v|%d", spec.Iterations, spec.TicketLock, inter)
	return jobAs(h, key, func() float64 {
		return ticketPoint(opt, spec, ticket, inter)
	})
}

func ticketPoint(opt Options, spec workload.ParallelSpec, ticket bool, inter int) float64 {
	var rts []float64
	for i := 0; i < opt.Runs; i++ {
		vms := []core.VMSpec{{
			Name:  "fg",
			VCPUs: 4,
			Pin:   core.SeqPins(0, 4),
			Attach: func(k *guest.Kernel, seed uint64) *workload.Instance {
				return workload.NewParallel(k, spec, seed)
			},
		}}
		if inter > 0 {
			vms = append(vms, core.HogVM("bg", inter, core.SeqPins(0, inter)))
		}
		res, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: core.StrategyVanilla,
			Seed: opt.Seed + uint64(i)*7919, VMs: vms,
		})
		if err != nil {
			continue
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean
}

// AblationSpinBlock sweeps the adaptive pre-sleep spin budget of
// blocking primitives and shows its interaction with PLE.
func AblationSpinBlock(opt Options) Table { return runFigure(opt, ablationSpinBlock) }

func ablationSpinBlock(h *harness) Table {
	bench, _ := workload.ByName("vips")
	budgets := []sim.Time{0, 20 * sim.Microsecond, 40 * sim.Microsecond, 120 * sim.Microsecond}
	rows := [][]string{}
	for _, b := range budgets {
		van := spinBlockPointJob(h, bench, core.StrategyVanilla, b)
		ple := spinBlockPointJob(h, bench, core.StrategyPLE, b)
		rows = append(rows, []string{
			b.String(),
			fmt.Sprintf("%.2fs", van),
			fmt.Sprintf("%.2fs", ple),
			pct(metrics.Improvement(van, ple)),
		})
	}
	return Table{
		ID:      "ab-spinblock",
		Title:   "Pre-sleep spin budget vs PLE (vips, 2-inter)",
		Columns: []string{"spin budget", "vanilla", "PLE", "PLE effect"},
		Rows:    rows,
	}
}

// spinBlockPointJob wraps one spin-budget cell as a harness job.
func spinBlockPointJob(h *harness, bench workload.Benchmark, strat core.Strategy, budget sim.Time) float64 {
	opt := h.opt
	return jobAs(h, fmt.Sprintf("abspin|%s|%s", strat, budget), func() float64 {
		return spinBlockPoint(opt, bench, strat, budget)
	})
}

func spinBlockPoint(opt Options, bench workload.Benchmark, strat core.Strategy, budget sim.Time) float64 {
	var rts []float64
	for i := 0; i < opt.Runs; i++ {
		fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
		res, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: strat, Seed: opt.Seed + uint64(i)*7919,
			VMs: []core.VMSpec{fg, core.HogVM("bg", 2, core.SeqPins(0, 2))},
			TuneGuest: func(name string, c *guest.Config) {
				c.SpinBeforeBlock = budget
			},
		})
		if err != nil {
			continue
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean
}

// AblationStrictCo contrasts ESX 2.x-style strict co-scheduling (§2.1)
// with vanilla and IRS: gang slots eliminate LHP/LWP entirely, but a
// blocking workload's idle waiters waste their reserved pCPUs (CPU
// fragmentation), and the rigid rotation caps the VM at its slot share.
func AblationStrictCo(opt Options) Table { return runFigure(opt, ablationStrictCo) }

func ablationStrictCo(h *harness) Table {
	rows := [][]string{}
	for _, c := range []struct {
		name string
		mode workload.SyncMode
	}{
		{"streamcluster", 0},          // blocking: fragmentation-prone
		{"MG", workload.SyncSpinning}, // spinning: slots fully used
		{"EP", workload.SyncBlocking}, // coarse blocking
	} {
		bench, ok := workload.ByName(c.name)
		if !ok {
			continue
		}
		van := strictPointJob(h, bench, c.mode, core.StrategyVanilla)
		co := strictPointJob(h, bench, c.mode, core.StrategyStrictCo)
		irs := strictPointJob(h, bench, c.mode, core.StrategyIRS)
		rows = append(rows, []string{
			c.name,
			fmt.Sprintf("%.2fs", van),
			fmt.Sprintf("%.2fs", co),
			fmt.Sprintf("%.2fs", irs),
			pct(metrics.Improvement(van, co)),
			pct(metrics.Improvement(van, irs)),
		})
	}
	return Table{
		ID:      "ab-strictco",
		Title:   "Strict co-scheduling (ESX 2.x) vs vanilla and IRS (2-inter)",
		Columns: []string{"benchmark", "vanilla", "strict-co", "IRS", "strict-co vs van", "IRS vs van"},
		Rows:    rows,
	}
}

// strictPointJob wraps one strict-co cell as a harness job.
func strictPointJob(h *harness, bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy) float64 {
	opt := h.opt
	key := fmt.Sprintf("abstrict|%s|%d|%s", bench.Name, mode, strat)
	return jobAs(h, key, func() float64 {
		return strictPoint(opt, bench, mode, strat)
	})
}

func strictPoint(opt Options, bench workload.Benchmark, mode workload.SyncMode, strat core.Strategy) float64 {
	var rts []float64
	for i := 0; i < opt.Runs; i++ {
		fg := core.BenchmarkVM("fg", bench, mode, 4, core.SeqPins(0, 4))
		fg.IRS = strat == core.StrategyIRS
		res, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: strat, Seed: opt.Seed + uint64(i)*7919,
			VMs: []core.VMSpec{fg, core.HogVM("bg", 2, core.SeqPins(0, 2))},
		})
		if err != nil {
			continue
		}
		rts = append(rts, res.VM("fg").Runtime.Seconds())
	}
	return metrics.Summarize(rts).Mean
}
