package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// ClusterVariant is one row of the cluster experiment: a placement
// policy paired with the per-host scheduling strategy, optional live
// migration, and optional chaos (control-plane faults + host
// blackouts). Exported so cmd/irsweep can sweep the same variants over
// different rack shapes.
type ClusterVariant struct {
	Name      string
	Policy    cluster.Policy
	Strategy  hypervisor.Strategy
	IRS       bool
	Migration bool
	Chaos     bool
}

// ClusterVariants lists the comparison rows in table order: the two
// placement baselines, interference-aware placement alone, the full
// stack (interference-aware placement + IRS inside each host), and the
// full stack under chaos.
func ClusterVariants() []ClusterVariant {
	return []ClusterVariant{
		{Name: "first-fit", Policy: cluster.FirstFit, Strategy: hypervisor.StrategyVanilla},
		{Name: "least-loaded", Policy: cluster.LeastLoaded, Strategy: hypervisor.StrategyVanilla},
		{Name: "ia", Policy: cluster.InterferenceAware, Strategy: hypervisor.StrategyVanilla, Migration: true},
		{Name: "ia+irs", Policy: cluster.InterferenceAware, Strategy: hypervisor.StrategyIRS, IRS: true, Migration: true},
		{Name: "ia+irs+chaos", Policy: cluster.InterferenceAware, Strategy: hypervisor.StrategyIRS, IRS: true, Migration: true, Chaos: true},
	}
}

// ClusterConfig materialises the cluster.Config for one variant and
// seed. Every row runs the invariant checker: the "viol" column is the
// correctness half of the table.
func ClusterConfig(v ClusterVariant, seed uint64) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.Policy = v.Policy
	cfg.Strategy = v.Strategy
	cfg.IRS = v.IRS
	cfg.Migration = v.Migration
	cfg.Invariants = true
	if v.Chaos {
		cfg.Faults = fault.LossPlan(0.10)
		cfg.HostBlackoutEvery = 6 * sim.Second
		cfg.HostBlackoutFor = 60 * sim.Millisecond
		// Chaos rides on the hardened profile (same defenses as the
		// chaos experiment's irs-hardened row): without wakeup-loss
		// polling, a lost wakeup strands an idle server worker for good.
		cfg.TuneHV = func(c *hypervisor.Config) {
			c.SABreakerN = 5
			c.SABreakerCooldown = 50 * sim.Millisecond
		}
		cfg.TuneGuest = func(c *guest.Config) {
			c.HardenDupSA = true
			c.MigratorRetries = 3
			c.MigratorBackoff = 200 * sim.Microsecond
			c.WakePoll = 5 * sim.Millisecond
		}
	}
	return cfg
}

// Cluster runs the multi-host consolidation experiment: the same VM
// arrival mix and request stream under each placement/scheduling
// variant. The claim the table supports: interference-aware placement
// plus IRS beats first-fit on tail latency and SLO-violation rate, and
// stays invariant-clean even while live-migrating under chaos.
func Cluster(opt Options) Table { return runFigure(opt, clusterTable) }

// clusterRowOut is one rendered variant cell.
type clusterRowOut struct {
	row    []string
	errStr string
}

func clusterTable(h *harness) Table {
	t := Table{
		ID:    "cluster",
		Title: "Multi-host placement: policy×strategy vs cluster tail latency (3 hosts, 4 servers + 4 antagonists)",
		Columns: []string{"variant", "served", "p50", "p99", "p99.9", "slo-viol",
			"migr", "blackouts", "injected", "violations"},
	}
	seed, shards, la := h.opt.Seed, h.opt.Shards, h.opt.Lookahead
	for _, v := range ClusterVariants() {
		v := v
		out := jobAs(h, "cluster|"+v.Name, func() clusterRowOut {
			return clusterCell(v, seed, shards, la)
		})
		if out.errStr != "" {
			h.opt.Logf("cluster: %s: %s", v.Name, out.errStr)
			continue
		}
		if out.row != nil {
			t.Rows = append(t.Rows, out.row)
		}
	}
	return t
}

// clusterCell executes one variant and renders its row. Pure function
// of its arguments; safe on worker goroutines.
func clusterCell(v ClusterVariant, seed uint64, shards int, lookahead sim.Time) clusterRowOut {
	cfg := ClusterConfig(v, seed)
	cfg.Shards = shards
	if lookahead > 0 {
		cfg.Lookahead = lookahead
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return clusterRowOut{errStr: err.Error()}
	}
	res, err := c.Run()
	if err != nil {
		return clusterRowOut{errStr: err.Error()}
	}
	return clusterRowOut{row: []string{
		v.Name,
		fmt.Sprintf("%d/%d", res.Served, res.Generated),
		fmtLatency(res.P50),
		fmtLatency(res.P99),
		fmtLatency(res.P999),
		fmt.Sprintf("%d (%.2f%%)", res.SLOViolations, res.SLORate*100),
		fmt.Sprintf("%d", res.Migrations),
		fmt.Sprintf("%d", res.Blackouts),
		fmt.Sprintf("%d", res.FaultsInjected),
		fmt.Sprintf("%d", res.Violations),
	}}
}

// fmtLatency renders a latency in milliseconds.
func fmtLatency(t sim.Time) string {
	return fmt.Sprintf("%.3fms", float64(t)/float64(sim.Millisecond))
}
