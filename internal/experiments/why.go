package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/decision"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The why experiment answers the observability question the other
// tables raise: when the 2z8h outage rig rides through its zone
// failure, *why* did the control plane do what it did? It runs the
// scale experiment's acceptance rig with the decision audit log
// attached and renders the incident's decision trail — cordon, the
// first failover route, each autoscaler action — with the inputs and
// winning margins each choice had at the instant it was made, plus a
// summary row counting every recorded decision. The trail is exact
// and byte-identical at any shard count; cmd/irswhy gates CI on it.

// RunWhy executes a cluster load spec with the decision log attached
// (recording the given kinds) and returns the finished cluster.
// Shared by the why table and cmd/irswhy.
func RunWhy(specText string, kinds []decision.Kind, seed uint64, shards int, lookahead sim.Time) (*cluster.Cluster, error) {
	spec, err := topology.ParseLoadSpec(specText)
	if err != nil {
		return nil, err
	}
	cfg, err := ScaleConfig(spec, seed)
	if err != nil {
		return nil, err
	}
	cfg.Shards = shards
	if lookahead > 0 {
		cfg.Lookahead = lookahead
	}
	cfg.Decisions = &decision.Options{Kinds: kinds}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := c.Run(); err != nil {
		return nil, err
	}
	return c, nil
}

// Why runs the outage rig with the decision log and renders its
// decision trail.
func Why(opt Options) Table { return runFigure(opt, whyTable) }

type whyOut struct {
	rows   [][]string
	errStr string
}

func whyTable(h *harness) Table {
	t := Table{
		ID:      "why",
		Title:   "Decision provenance: the 2z8h outage rig's audit trail (cordon -> failover -> autoscale), from the cluster-wide decision log",
		Columns: []string{"step", "t", "kind", "chooser", "subject", "winner", "margin", "why"},
	}
	seed, shards, la := h.opt.Seed, h.opt.Shards, h.opt.Lookahead
	out := jobAs(h, "why|2z8h-outage", func() whyOut {
		return whyCell(seed, shards, la)
	})
	if out.errStr != "" {
		h.opt.Logf("why: %s", out.errStr)
		return t
	}
	t.Rows = out.rows
	return t
}

// whyCell runs the rig and renders the trail rows plus the Σ summary.
// Pure function of its arguments; safe on worker goroutines.
func whyCell(seed uint64, shards int, lookahead sim.Time) whyOut {
	c, err := RunWhy(ScaleOutageSpec, decision.ControlKinds(), seed, shards, lookahead)
	if err != nil {
		return whyOut{errStr: err.Error()}
	}
	log := c.Decisions()
	recs := log.Records()
	var rows [][]string
	for _, step := range decision.Trail(recs) {
		r := step.Rec
		margin := "-"
		if m, ok := r.Margin(); ok {
			margin = fmt.Sprintf("%.3f", m)
		}
		rows = append(rows, []string{
			step.Label,
			r.At.String(),
			r.Kind.String(),
			r.Chooser,
			r.Subject,
			r.Winner,
			margin,
			r.Detail,
		})
	}
	rows = append(rows, []string{
		"Σ", "-", "-", "-", "-", "-", "-",
		fmt.Sprintf("%s (dropped %d)", decision.CountsString(recs), log.Dropped()),
	})
	return whyOut{rows: rows}
}
