package experiments

import "testing"

// The sharded cluster coordinator promises determinism by
// construction: the rendered tables must be byte-identical whether a
// rack simulates on one engine or on a pool of per-host engines, at
// any worker count, for any seed. These tests pin that contract at the
// experiment layer — every Result field a table renders (latency
// quantiles, SLO counts, migrations, faults, invariant violations)
// feeds the comparison, so a single reordered event anywhere in the
// stack fails here.

// shardedTable renders one experiment table under an explicit shard
// count (Workers=1 keeps the harness out of the picture).
func shardedTable(t *testing.T, id string, seed uint64, shards int) string {
	t.Helper()
	tb, ok := ByID(id, Options{Runs: 1, Seed: seed, Workers: 1, Shards: shards})
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	return tb.String()
}

func TestShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full rack matrix at three shard widths")
	}
	for _, seed := range []uint64{1, 7} {
		serial := shardedTable(t, "cluster", seed, 1)
		for _, shards := range []int{2, 4} {
			if got := shardedTable(t, "cluster", seed, shards); got != serial {
				t.Errorf("seed %d: cluster table at %d shards differs from serial.\n--- serial ---\n%s--- %d shards ---\n%s",
					seed, shards, serial, shards, got)
			}
		}
	}
}

func TestShardedMatchesSerialWatch(t *testing.T) {
	// The watch rig layers span tracing, the SLO watchdog, and
	// attribution on top of the cluster — the richest cross-shard
	// observation surface. One seed keeps the runtime sane.
	if testing.Short() {
		t.Skip("watch rig at three shard widths")
	}
	serial := shardedTable(t, "watch", 1, 1)
	for _, shards := range []int{2, 4} {
		if got := shardedTable(t, "watch", 1, shards); got != serial {
			t.Errorf("watch table at %d shards differs from serial.\n--- serial ---\n%s--- %d shards ---\n%s",
				shards, serial, shards, got)
		}
	}
}

func TestShardedMatchesSerialScale(t *testing.T) {
	// The scale rig exercises the multi-zone control plane: two-level
	// placement, the partitioned router with outage failover, and the
	// autoscaler admitting and retiring replicas mid-run — every one of
	// which crosses shard boundaries through the barrier protocol. A
	// 2-zone × 8-host rack must render identically on one engine and on
	// per-host engine pools.
	if testing.Short() {
		t.Skip("multi-zone rig at three shard widths")
	}
	serial := shardedTable(t, "scale", 1, 1)
	for _, shards := range []int{2, 4} {
		if got := shardedTable(t, "scale", 1, shards); got != serial {
			t.Errorf("scale table at %d shards differs from serial.\n--- serial ---\n%s--- %d shards ---\n%s",
				shards, serial, shards, got)
		}
	}
}
