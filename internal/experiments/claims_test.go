package experiments

import "testing"

// TestPaperClaims re-checks every headline claim of the paper on the
// simulator. This is the repository's conformance suite: if a scheduler
// change breaks the shape of a paper result, a claim fails here.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims take a few seconds")
	}
	h := newHarness(Options{Runs: 1, Seed: 1})
	for _, c := range Claims() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			got, ok := c.Check(h)
			if !ok {
				t.Errorf("%s (%s): %s\n  measured: %s", c.ID, c.Section, c.Statement, got)
			} else {
				t.Logf("%s: %s", c.ID, got)
			}
		})
	}
}

func TestClaimsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if c.ID == "" || c.Statement == "" || c.Section == "" || c.Check == nil {
			t.Fatalf("incomplete claim %+v", c.ID)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
	}
	if len(seen) < 15 {
		t.Fatalf("only %d claims; expected the full suite", len(seen))
	}
}
