package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hypervisor"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/watch"
)

// The watch experiment exercises the online SLO watchdog end to end: a
// two-host rack runs a sensitive server quietly for four seconds, then
// (in the bully variant) a fat CPU hog lands on the server's host. The
// router's violation stream must trip the burn-rate rule within one
// slow window, and the attribution engine must finger the bully — not
// the small co-resident hog, and never the hog on the other host. The
// quiet variant pins the other half of the contract: no contention, no
// alerts, no incidents.

// Watchdog rig knobs, shared with cmd/irswatch.
const (
	// DefaultWatchDuration is the request-stream duration; the bully
	// lands at WatchBullyArrive, leaving several slow windows of
	// contention before the stream ends.
	DefaultWatchDuration = 10 * sim.Second
	// WatchBullyArrive is when the bully lands on the server's host.
	WatchBullyArrive = 4 * sim.Second
	// DefaultWatchRules is the burn-rate rule the rig evaluates: page
	// when >3x the 2% violation budget burns over both the 500ms fast
	// window and the 2.5s slow window.
	DefaultWatchRules = "page:budget=0.02,fast=500ms,slow=2500ms,burn=3"
	// DefaultWatchInterval is the watch epoch cadence / window width.
	DefaultWatchInterval = 100 * sim.Millisecond
)

// WatchVariant is one row of the watch table.
type WatchVariant struct {
	Name  string
	Bully bool
}

// WatchVariants lists the comparison rows in table order.
func WatchVariants() []WatchVariant {
	return []WatchVariant{
		{Name: "quiet", Bully: false},
		{Name: "bully", Bully: true},
	}
}

// WatchVariantByName resolves a variant by its table name.
func WatchVariantByName(name string) (WatchVariant, bool) {
	for _, v := range WatchVariants() {
		if v.Name == name {
			return v, true
		}
	}
	return WatchVariant{}, false
}

// WatchConfig materialises the watchdog rig for one variant: two
// 4-pCPU hosts under least-loaded placement (no migration — the point
// is to watch the pain, not dodge it). Arrival order is engineered so
// the sensitive server shares its host with one small hog while a
// bigger hog sits across the rack: srv0 (2 vCPUs) -> h0, ant-far
// (3 vCPUs) -> h1, ant-near (1 vCPU) -> h0; the bully (4 vCPUs) then
// ties 3=3 and lands on h0 next to the victim. rules comes from
// ParseRules format; duration lets the CLI shorten the run.
func WatchConfig(v WatchVariant, seed uint64, duration sim.Time, rules []watch.Rule, interval sim.Time) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.Hosts = 2
	cfg.PCPUsPerHost = 4
	cfg.Policy = cluster.LeastLoaded
	cfg.Strategy = hypervisor.StrategyVanilla
	cfg.Overcommit = 2.0
	cfg.Migration = false
	cfg.Invariants = true
	cfg.Duration = duration
	cfg.Drain = 2 * sim.Second
	cfg.Arrival = 1 * sim.Millisecond
	cfg.Service = 1500 * sim.Microsecond
	cfg.SLO = 30 * sim.Millisecond
	cfg.VMs = []cluster.VMSpec{
		{Name: "srv0", Kind: cluster.KindServer, VCPUs: 2, Sensitive: true, Pressure: 0.8},
		{Name: "ant-far", Kind: cluster.KindAntagonist, VCPUs: 3, ArriveAt: 100 * sim.Millisecond, Pressure: 3},
		{Name: "ant-near", Kind: cluster.KindAntagonist, VCPUs: 1, ArriveAt: 200 * sim.Millisecond, Pressure: 1},
	}
	if v.Bully {
		// The bully buys its way to the CPU: 4 vCPUs at 8x the default
		// credit weight, so it takes ~2/3 of the host the moment it
		// lands instead of splitting the rack three ways.
		cfg.VMs = append(cfg.VMs, cluster.VMSpec{
			Name: "bully", Kind: cluster.KindAntagonist, VCPUs: 4, Weight: 2048,
			ArriveAt: WatchBullyArrive, Pressure: 4,
		})
	}
	cfg.Spans = span.NewTracer()
	cfg.Watch = &watch.Config{Interval: interval, Rules: rules}
	return cfg
}

// DefaultWatchRuleSet parses DefaultWatchRules; the constant is
// compile-time fixed, so a parse failure is a programming error.
func DefaultWatchRuleSet() []watch.Rule {
	rules, err := watch.ParseRules(DefaultWatchRules)
	if err != nil {
		panic("experiments: bad DefaultWatchRules: " + err.Error())
	}
	return rules
}

// NewWatchCluster builds the watchdog rig for one variant with the
// default knobs. cmd/irswatch layers its flag overrides on top of
// WatchConfig directly.
func NewWatchCluster(v WatchVariant, seed uint64) (*cluster.Cluster, error) {
	return cluster.New(WatchConfig(v, seed, DefaultWatchDuration, DefaultWatchRuleSet(), DefaultWatchInterval))
}

// Watch runs the watchdog rig under each variant and reports what the
// watchdog saw: alert count, detection latency after the bully lands,
// and the attribution ranking's top two aggressors.
func Watch(opt Options) Table { return runFigure(opt, watchTable) }

// watchRowOut is one rendered variant cell.
type watchRowOut struct {
	row    []string
	errStr string
}

func watchTable(h *harness) Table {
	t := Table{
		ID:    "watch",
		Title: "Online SLO watchdog: burn-rate alerting + noisy-neighbor attribution (2 hosts, bully lands on the victim's host at 4s)",
		Columns: []string{"variant", "served", "slo-viol", "alerts", "detect",
			"victim", "top aggressor", "score", "runner-up", "ratio", "incidents"},
	}
	seed, shards, la := h.opt.Seed, h.opt.Shards, h.opt.Lookahead
	for _, v := range WatchVariants() {
		v := v
		out := jobAs(h, "watch|"+v.Name, func() watchRowOut {
			return watchCell(v, seed, shards, la)
		})
		if out.errStr != "" {
			h.opt.Logf("watch: %s: %s", v.Name, out.errStr)
			continue
		}
		if out.row != nil {
			t.Rows = append(t.Rows, out.row)
		}
	}
	return t
}

// watchCell executes one variant and renders its row. Pure function of
// its arguments; safe on worker goroutines.
func watchCell(v WatchVariant, seed uint64, shards int, lookahead sim.Time) watchRowOut {
	cfg := WatchConfig(v, seed, DefaultWatchDuration, DefaultWatchRuleSet(), DefaultWatchInterval)
	cfg.Shards = shards
	if lookahead > 0 {
		cfg.Lookahead = lookahead
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return watchRowOut{errStr: err.Error()}
	}
	res, err := c.Run()
	if err != nil {
		return watchRowOut{errStr: err.Error()}
	}
	w := c.Watcher()
	alerts := w.Alerts()
	detect := "-"
	if len(alerts) > 0 {
		detect = fmtLatency(alerts[0].At - WatchBullyArrive)
	}
	victim, top, score, runner, ratio := "-", "-", "-", "-", "-"
	ranked, _ := w.Rankings()
	if len(ranked) > 0 {
		victim = ranked[0].Victim
		top = ranked[0].Aggressor
		score = fmt.Sprintf("%.4f", ranked[0].Score)
		if len(ranked) > 1 {
			runner = ranked[1].Aggressor
			if ranked[1].Score > 0 {
				ratio = fmt.Sprintf("%.1fx", ranked[0].Score/ranked[1].Score)
			}
		}
	}
	return watchRowOut{row: []string{
		v.Name,
		fmt.Sprintf("%d/%d", res.Served, res.Generated),
		fmt.Sprintf("%d (%.2f%%)", res.SLOViolations, res.SLORate*100),
		fmt.Sprintf("%d", len(alerts)),
		detect,
		victim,
		top,
		score,
		runner,
		ratio,
		fmt.Sprintf("%d", len(w.Recorder().Incidents())),
	}}
}
