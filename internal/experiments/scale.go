package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hypervisor"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/watch"
)

// The scale experiment drives the multi-rack control plane with
// declarative cluster-load specs (topology.ParseLoadSpec): zones under
// two-level interference-aware placement, the partitioned per-zone
// router, arrival ramps and diurnal curves, injected zone outages, and
// the burn-rate replica autoscaler. The table reports p99 / SLO-
// violation rate as the rack count grows, and — for the outage row —
// whether the control plane actually rode through the failure: the
// router fails over to the surviving zone, the autoscaler restores
// serving capacity, and the post-recovery SLO-violation rate drops
// back under 1% with every invariant clean.

// ScaleOutageSpec is the acceptance rig: 2 zones × 8 hosts with a
// mid-ramp outage of zone 1 (1.2s dark at t=6s) while the arrival rate
// ramps up; the burn-rate alert trips, the autoscaler adds replicas in
// the surviving zone, and after the zone returns the added replicas
// drain away again. Shared with cmd/irsload and the CI smoke gate.
const ScaleOutageSpec = "topo:zones=2,hosts=8,pcpus=4; sched:policy=ia,strategy=irs,migrate=on; " +
	"load:arrival=1500us,service=2ms,slo=25ms,duration=12s,drain=3s; " +
	"ramp:1500us@0,1ms@2s,450us@4s; " +
	"tenants:servers=2,server-vcpus=2,ants=2,ant-vcpus=2,spacing=400ms; " +
	"outage:zone=1,at=6s,for=1200ms; " +
	"alert:budget=0.02,fast=500ms,slow=2s,burn=3; " +
	"autoscale:max=8,step=2,cooldown=1500ms,down-after=1500ms"

// ScaleVariant is one row of the scale table: a named load spec.
type ScaleVariant struct {
	Name string
	Spec string
}

// ScaleVariants lists the comparison rows in table order: a flat
// single-zone baseline, a two-zone rig under a diurnal arrival curve,
// and the two-zone outage + autoscaler acceptance rig.
func ScaleVariants() []ScaleVariant {
	return []ScaleVariant{
		{Name: "1z4h", Spec: "topo:zones=1,hosts=4,pcpus=4; sched:policy=ia,strategy=irs,migrate=on; " +
			"load:arrival=1500us,service=2ms,slo=25ms,duration=12s,drain=2s; " +
			"tenants:servers=2,server-vcpus=2,ants=2,ant-vcpus=2,spacing=400ms"},
		{Name: "2z4h-diurnal", Spec: "topo:zones=2,hosts=4,pcpus=4; sched:policy=ia,strategy=irs,migrate=on; " +
			"load:arrival=1500us,service=2ms,slo=25ms,duration=12s,drain=2s; " +
			"diurnal:period=6s,swing=0.4,steps=12; " +
			"tenants:servers=2,server-vcpus=2,ants=2,ant-vcpus=2,spacing=400ms"},
		{Name: "2z8h-outage", Spec: ScaleOutageSpec},
	}
}

// ScaleVariantByName resolves a variant by its table name.
func ScaleVariantByName(name string) (ScaleVariant, bool) {
	for _, v := range ScaleVariants() {
		if v.Name == name {
			return v, true
		}
	}
	return ScaleVariant{}, false
}

// ScaleConfig compiles a parsed load spec into a cluster config. The
// spec layer (internal/topology) stays free of cluster imports; this
// is the one place the two vocabularies meet.
func ScaleConfig(spec topology.LoadSpec, seed uint64) (cluster.Config, error) {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	cfg.Hosts = spec.Zones * spec.HostsPerZone
	cfg.PCPUsPerHost = spec.PCPUs
	cfg.Topology = spec.Topology()

	switch spec.Policy {
	case "first-fit":
		cfg.Policy = cluster.FirstFit
	case "least-loaded":
		cfg.Policy = cluster.LeastLoaded
	case "ia":
		cfg.Policy = cluster.InterferenceAware
	default:
		return cluster.Config{}, fmt.Errorf("experiments: scale: unknown policy %q", spec.Policy)
	}
	switch spec.Strategy {
	case "vanilla":
		cfg.Strategy = hypervisor.StrategyVanilla
	case "ple":
		cfg.Strategy = hypervisor.StrategyPLE
	case "relaxed-co":
		cfg.Strategy = hypervisor.StrategyRelaxedCo
	case "irs":
		cfg.Strategy = hypervisor.StrategyIRS
		cfg.IRS = true
	default:
		return cluster.Config{}, fmt.Errorf("experiments: scale: unknown strategy %q", spec.Strategy)
	}

	cfg.Overcommit = spec.Overcommit
	cfg.Migration = spec.Migrate
	cfg.Duration = spec.Duration
	cfg.Drain = spec.Drain
	cfg.Arrival = spec.Arrival
	cfg.Service = spec.Service
	cfg.SLO = spec.SLO
	cfg.Ramp = spec.Stages()
	cfg.Invariants = true

	cfg.VMs = cluster.StandardMix(
		spec.ServersPerZone*spec.Zones, spec.ServerVCPUs,
		spec.AntsPerZone*spec.Zones, spec.AntVCPUs, spec.Spacing)
	if spec.ServerThreads > 0 {
		for i := range cfg.VMs {
			if cfg.VMs[i].Kind == cluster.KindServer {
				cfg.VMs[i].Threads = spec.ServerThreads
			}
		}
	}

	for _, o := range spec.Outages {
		cfg.ZoneOutages = append(cfg.ZoneOutages, cluster.ZoneOutage{Zone: o.Zone, At: o.At, For: o.For})
	}
	if a := spec.Alert; a != nil {
		cfg.Watch = &watch.Config{
			Interval: DefaultWatchInterval,
			Rules:    []watch.Rule{{Name: "slo-burn", Budget: a.Budget, Fast: a.Fast, Slow: a.Slow, Burn: a.Burn}},
		}
	}
	if as := spec.Autoscale; as != nil {
		tmpl := cluster.VMSpec{
			Name:      "srv-auto",
			Kind:      cluster.KindServer,
			VCPUs:     spec.ServerVCPUs,
			Pressure:  0.4 * float64(spec.ServerVCPUs),
			Sensitive: true,
		}
		if spec.ServerThreads > 0 {
			tmpl.Threads = spec.ServerThreads
		}
		cfg.Autoscale = &cluster.AutoscaleConfig{
			Template: tmpl,
			Min:      as.Min, Max: as.Max, Step: as.Step,
			Interval: as.Interval, Cooldown: as.Cooldown, DownAfter: as.DownAfter,
		}
	}
	if len(spec.Outages) > 0 {
		// Three SLO phases: before the first outage, the outage plus a
		// settle second, and the recovered tail (the acceptance gate).
		o := spec.Outages[0]
		cfg.SLOPhases = []sim.Time{o.At, o.At + o.For + sim.Second}
	}
	return cfg, nil
}

// Scale runs the cluster-load rigs and reports tail latency, SLO
// burn, failover traffic, and autoscaler activity per topology.
func Scale(opt Options) Table { return runFigure(opt, scaleTable) }

// scaleRowOut is one rendered variant cell.
type scaleRowOut struct {
	row    []string
	errStr string
}

func scaleTable(h *harness) Table {
	t := Table{
		ID:    "scale",
		Title: "Multi-rack control plane: two-level placement, partitioned router, zone outage + replica autoscaler (load specs via topology.ParseLoadSpec)",
		Columns: []string{"variant", "topo", "served", "p99", "slo-viol", "recov-slo",
			"replicas", "scale", "failover", "alerts", "migr", "viol"},
	}
	seed, shards, la := h.opt.Seed, h.opt.Shards, h.opt.Lookahead
	for _, v := range ScaleVariants() {
		v := v
		out := jobAs(h, "scale|"+v.Name, func() scaleRowOut {
			return scaleCell(v, seed, shards, la)
		})
		if out.errStr != "" {
			h.opt.Logf("scale: %s: %s", v.Name, out.errStr)
			continue
		}
		if out.row != nil {
			t.Rows = append(t.Rows, out.row)
		}
	}
	return t
}

// scaleCell executes one load spec and renders its row. Pure function
// of its arguments; safe on worker goroutines.
func scaleCell(v ScaleVariant, seed uint64, shards int, lookahead sim.Time) scaleRowOut {
	spec, err := topology.ParseLoadSpec(v.Spec)
	if err != nil {
		return scaleRowOut{errStr: err.Error()}
	}
	cfg, err := ScaleConfig(spec, seed)
	if err != nil {
		return scaleRowOut{errStr: err.Error()}
	}
	cfg.Shards = shards
	if lookahead > 0 {
		cfg.Lookahead = lookahead
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return scaleRowOut{errStr: err.Error()}
	}
	res, err := c.Run()
	if err != nil {
		return scaleRowOut{errStr: err.Error()}
	}
	start := spec.ServersPerZone * spec.Zones
	recov := "-"
	if len(res.Phases) == 3 {
		recov = fmt.Sprintf("%.2f%%", res.Phases[2].Rate*100)
	}
	return scaleRowOut{row: []string{
		v.Name,
		fmt.Sprintf("%dz×%dh", spec.Zones, spec.HostsPerZone),
		fmt.Sprintf("%d/%d", res.Served, res.Generated),
		fmtLatency(res.P99),
		fmt.Sprintf("%d (%.2f%%)", res.SLOViolations, res.SLORate*100),
		recov,
		fmt.Sprintf("%d→%d", start, res.Replicas),
		fmt.Sprintf("+%d/-%d", res.ScaleUps, res.ScaleDowns),
		fmt.Sprintf("%d", res.Failover),
		fmt.Sprintf("%d", res.Alerts),
		fmt.Sprintf("%d", res.Migrations),
		fmt.Sprintf("%d", res.Violations),
	}}
}
