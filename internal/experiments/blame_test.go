package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/span"
)

// TestBlameConservation enforces the tracing invariant end-to-end: on
// the real bully rig — preemptions, SA upcalls, IRS task migrations,
// lock spins and sleeps all firing — every finished request span's
// segments must sum to its wall latency within one tick (they are exact
// by construction; the tolerance only documents the acceptance bound).
func TestBlameConservation(t *testing.T) {
	for _, v := range BlameVariants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			spans, err := BlameRun(v.Strat, 1, DefaultBlameDuration/4, DefaultBlameArrival)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(spans) < 100 {
				t.Fatalf("only %d finished spans; the rig is not exercising the tracer", len(spans))
			}
			for _, sp := range spans {
				e := sp.ConservationError()
				if e < 0 {
					e = -e
				}
				if e > 1 {
					t.Fatalf("span #%d: wall %v != segment sum %v (error %v)",
						sp.ID, sp.Wall(), sp.Totals().Sum(), sp.ConservationError())
				}
			}
			an := span.Analyze(spans, obs.DefaultSketchAlpha)
			if an.Violations != 0 {
				t.Fatalf("%d conservation violations", an.Violations)
			}
		})
	}
}

// TestBlameShiftsTailBlame pins the experiment's claim: under the bully
// workload the baseline's p99 cohort is dominated by scheduler
// pathology (vCPU preemption wait + LHP spinning), and IRS hands that
// time back — the p99 cohort's pathology share collapses and its
// service share rises.
func TestBlameShiftsTailBlame(t *testing.T) {
	if testing.Short() {
		t.Skip("full bully runs in -short mode")
	}
	pathology := func(strat core.Strategy) (path, svc float64) {
		spans, err := BlameRun(strat, 1, DefaultBlameDuration, DefaultBlameArrival)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		an := span.Analyze(spans, obs.DefaultSketchAlpha)
		if an.Violations != 0 {
			t.Fatalf("conservation violations: %d", an.Violations)
		}
		b := an.Band("p99")
		if b == nil {
			t.Fatal("no p99 band")
		}
		return b.Share(span.CatPreemptWait) + b.Share(span.CatLHPSpin), b.Share(span.CatService)
	}
	vanPath, vanSvc := pathology(core.StrategyVanilla)
	irsPath, irsSvc := pathology(core.StrategyIRS)
	if vanPath < 0.2 {
		t.Fatalf("vanilla p99 preempt+lhp share = %.3f; the bully is not bullying", vanPath)
	}
	if irsPath >= vanPath/2 {
		t.Fatalf("irs p99 preempt+lhp share %.3f not well below vanilla's %.3f", irsPath, vanPath)
	}
	if irsSvc <= vanSvc {
		t.Fatalf("irs p99 service share %.3f did not rise above vanilla's %.3f", irsSvc, vanSvc)
	}
}

// TestBlameWallSketchMatchesMergedRuns checks the mergeable-quantile
// path the experiment table uses: per-run wall sketches merged together
// must agree exactly with one sketch over the pooled spans.
func TestBlameWallSketchMatchesMergedRuns(t *testing.T) {
	merged := obs.NewSketch(obs.DefaultSketchAlpha)
	pooled := obs.NewSketch(obs.DefaultSketchAlpha)
	for i := 0; i < 2; i++ {
		spans, err := BlameRun(core.StrategyVanilla, 1+uint64(i)*7919, DefaultBlameDuration/8, DefaultBlameArrival)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		runSketch := obs.NewSketch(obs.DefaultSketchAlpha)
		for _, sp := range spans {
			runSketch.Add(sp.Wall())
			pooled.Add(sp.Wall())
		}
		merged.Merge(runSketch)
	}
	for _, p := range []float64{50, 99, 99.9} {
		if merged.Percentile(p) != pooled.Percentile(p) {
			t.Fatalf("p%v: merged %v != pooled %v", p, merged.Percentile(p), pooled.Percentile(p))
		}
	}
}
