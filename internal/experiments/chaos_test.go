package experiments

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

func chaosRunOne(t *testing.T, idx int, rate float64) (*core.Result, error) {
	t.Helper()
	reg := obs.NewRegistry()
	scn, ok := chaosScenario(1, rate, chaosVariants()[idx], reg)
	if !ok {
		t.Fatal("streamcluster benchmark missing")
	}
	return core.Run(scn)
}

// Identical seed + plan must reproduce byte-identical exports: the
// injector's forked RNG streams keep chaos runs fully deterministic.
func TestChaosDeterministicExports(t *testing.T) {
	run := func() (string, string) {
		reg := obs.NewRegistry()
		scn, ok := chaosScenario(1, 0.10, chaosVariants()[4], reg) // irs-hardened
		if !ok {
			t.Fatal("streamcluster benchmark missing")
		}
		scn.SampleInterval = 10 * sim.Millisecond
		cl, err := core.Build(scn)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if _, err := cl.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		var prom, csv bytes.Buffer
		if err := obs.WritePrometheus(&prom, reg); err != nil {
			t.Fatalf("prometheus: %v", err)
		}
		if err := obs.WriteCSV(&csv, cl.Sampler); err != nil {
			t.Fatalf("csv: %v", err)
		}
		return prom.String(), csv.String()
	}
	p1, c1 := run()
	p2, c2 := run()
	if len(p1) == 0 || len(c1) == 0 {
		t.Fatal("empty export")
	}
	if p1 != p2 {
		t.Error("prometheus exports differ between identical chaos runs")
	}
	if c1 != c2 {
		t.Error("CSV exports differ between identical chaos runs")
	}
}

// The headline robustness claim: at 10% SA vIRQ loss the hardened IRS
// guest still beats vanilla, the unhardened one measurably lags it,
// and at 25% the unhardened protocol stalls outright (a dropped wakeup
// strands an idle vCPU) while the hardened one completes. Consistency
// never breaks: every checker-attached run reports zero violations.
func TestChaosHardeningHolds(t *testing.T) {
	vanilla, errV := chaosRunOne(t, 0, 0.10)
	unhard, errU := chaosRunOne(t, 3, 0.10)
	hard, errH := chaosRunOne(t, 4, 0.10)
	for name, err := range map[string]error{"vanilla": errV, "irs": errU, "irs-hardened": errH} {
		if err != nil {
			t.Fatalf("%s at 10%% loss did not finish: %v", name, err)
		}
	}
	for name, res := range map[string]*core.Result{"vanilla": vanilla, "irs": unhard, "irs-hardened": hard} {
		if res.Violations != 0 {
			t.Errorf("%s: %d invariant violations under fault injection", name, res.Violations)
		}
	}
	if h, v := hard.VM("fg").Runtime, vanilla.VM("fg").Runtime; h > v {
		t.Errorf("hardened IRS runtime %v exceeds vanilla %v at 10%% loss", h, v)
	}
	if u, h := unhard.VM("fg").Runtime, hard.VM("fg").Runtime; u <= h {
		t.Errorf("unhardened IRS runtime %v not behind hardened %v — hardening shows no benefit", u, h)
	}

	if _, err := chaosRunOne(t, 3, 0.25); !errors.Is(err, core.ErrUnfinished) {
		t.Errorf("unhardened IRS at 25%% loss: err = %v, want ErrUnfinished stall", err)
	}
	h25, err := chaosRunOne(t, 4, 0.25)
	if err != nil {
		t.Fatalf("hardened IRS at 25%% loss did not finish: %v", err)
	}
	if h25.Violations != 0 {
		t.Errorf("hardened IRS at 25%% loss: %d violations", h25.Violations)
	}
	k := h25.VM("fg").Kernel
	if k.SADupSuppressed+k.MigratorRetried+k.WakePollRecoveries == 0 {
		t.Error("hardened run recovered nothing — defenses never engaged")
	}
}

// The registered table keeps every cell consistent and marks only
// unhardened-IRS high-loss rows as stalled.
func TestChaosTable(t *testing.T) {
	tb, ok := ByID("chaos", fastOpts())
	if !ok {
		t.Fatal("chaos not registered in ByID")
	}
	if len(tb.Rows) != len(chaosRates())*len(chaosVariants()) {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(chaosRates())*len(chaosVariants()))
	}
	for _, row := range tb.Rows {
		if got := row[len(row)-1]; got != "0" {
			t.Errorf("row %v: violations = %s, want 0", row, got)
		}
		if row[1] == "irs-hardened" && row[2] == "stalled" {
			t.Errorf("hardened variant stalled at rate %s", row[0])
		}
		if row[0] == "0%" && row[len(row)-2] != "0" {
			t.Errorf("control row %v injected faults", row)
		}
	}
}
