// Package experiments regenerates every table and figure of the
// paper's evaluation (§5). Each FigNN function runs the corresponding
// scenario matrix on the simulator and returns a Table with the same
// rows/series the paper plots. EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Options controls experiment execution.
type Options struct {
	// Runs per data point (the paper averages 5; default 3).
	Runs int
	Seed uint64
	// Workers bounds how many simulations run concurrently. 0 selects
	// GOMAXPROCS (the parallel harness is on by default); 1 forces the
	// serial harness. Tables are byte-identical either way: results are
	// keyed and merged in canonical order and assembled by the same
	// serial code path (see parallel.go).
	Workers int
	// Verbose emits progress lines via Logf. Logf is only ever called
	// from the goroutine that invoked the experiment, never from
	// workers.
	Logf func(format string, args ...any)
	// Shards selects the per-host engine pool inside each
	// cluster-backed simulation (cluster, watch): 0 picks the
	// cluster package's auto width, 1 forces the serial coordinator,
	// N>1 runs N shard workers. Tables are byte-identical at any
	// setting — the conservative-window coordinator guarantees it —
	// so this knob only trades wall time.
	Shards int
	// Lookahead overrides the conservative window width (and router
	// transit latency) of cluster-backed simulations. 0 keeps
	// cluster.DefaultLookahead. Unlike Shards, changing it changes
	// event timing and therefore the numbers.
	Lookahead sim.Time
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// interKind selects the interfering workload type (§5.1).
type interKind int

const (
	interHogs  interKind = iota + 1 // synthetic CPU hogs
	interBench                      // a real parallel application
)

// interference describes the background load.
type interference struct {
	kind  interKind
	bench workload.Benchmark // for interBench
	mode  workload.SyncMode
	level int // number of interfered foreground vCPUs
	vms   int // number of stacked interfering VMs (Fig. 11); default 1
}

func hogs(level int) interference { return interference{kind: interHogs, level: level, vms: 1} }

func benchInter(b workload.Benchmark, mode workload.SyncMode, level int) interference {
	return interference{kind: interBench, bench: b, mode: mode, level: level, vms: 1}
}

// setup is one simulator configuration point.
type setup struct {
	pcpus    int
	fgVCPUs  int
	bench    workload.Benchmark
	mode     workload.SyncMode
	strat    core.Strategy
	inter    interference
	unpinned bool
	horizon  sim.Time
}

// scenario materialises the setup for one seed.
func (s setup) scenario(seed uint64) core.Scenario {
	var fgPins, bgPins []int
	if !s.unpinned {
		fgPins = core.SeqPins(0, s.fgVCPUs)
		bgPins = core.SeqPins(0, s.inter.level)
	}
	fg := core.BenchmarkVM("fg", s.bench, s.mode, s.fgVCPUs, fgPins)
	fg.IRS = s.strat == core.StrategyIRS
	vms := []core.VMSpec{fg}
	for v := 0; v < s.inter.vms; v++ {
		name := fmt.Sprintf("bg%d", v)
		if s.inter.level <= 0 {
			break
		}
		switch s.inter.kind {
		case interHogs:
			vms = append(vms, core.HogVM(name, s.inter.level, bgPins))
		case interBench:
			vms = append(vms, core.BackgroundVM(name, s.inter.bench, s.inter.mode, s.inter.level, bgPins))
		}
	}
	horizon := s.horizon
	if horizon == 0 {
		horizon = 900 * sim.Second
	}
	return core.Scenario{
		PCPUs:    s.pcpus,
		Strategy: s.strat,
		Seed:     seed,
		Unpinned: s.unpinned,
		Horizon:  horizon,
		VMs:      vms,
	}
}

// point is the measured outcome of a setup, averaged over runs.
type point struct {
	fgRuntime float64 // seconds, mean
	bgRuntime float64 // seconds, mean per-completion of bg0 (0 if hogs)
	err       error
}

// harness caches measurements so vanilla baselines are shared, and
// carries the collect/execute/replay machinery of the parallel sweep
// runner (parallel.go).
type harness struct {
	opt  Options
	mode int // modeRun or modeCollect

	cache   map[string]point // assembled per-setup points
	results map[string]any   // memoized raw job results
	seen    map[string]bool  // keys already collected
	pending []pendingJob     // jobs awaiting the parallel phase
}

func newHarness(opt Options) *harness {
	return &harness{
		opt:     opt.withDefaults(),
		cache:   make(map[string]point),
		results: make(map[string]any),
		seen:    make(map[string]bool),
	}
}

func (h *harness) key(s setup) string {
	return fmt.Sprintf("%d|%d|%s|%d|%s|%d|%d|%d|%d|%v",
		s.pcpus, s.fgVCPUs, s.bench.Name, s.mode, s.strat,
		s.inter.kind, interName(s.inter), s.inter.level, s.inter.vms, s.unpinned)
}

func interName(i interference) int {
	if i.kind == interBench {
		return int(i.bench.Name[0])<<8 | int(i.bench.Name[len(i.bench.Name)-1])
	}
	return 0
}

// runOutcome is the raw result of one simulated run of a setup; it is
// what workers hand back to the assembly pass.
type runOutcome struct {
	fg  float64
	bg  float64
	err error
}

// runSetup executes one isolated simulation of s. It is a pure function
// of (s, seed) and safe to call from worker goroutines.
func runSetup(s setup, seed uint64) runOutcome {
	res, err := core.Run(s.scenario(seed))
	if err != nil {
		return runOutcome{err: err}
	}
	out := runOutcome{fg: res.VM("fg").Runtime.Seconds()}
	if bgr := res.VM("bg0"); bgr != nil && s.inter.kind == interBench {
		if m := bgr.MeanRuntime; m > 0 {
			out.bg = m.Seconds()
		}
	}
	return out
}

// measure runs the setup opt.Runs times and averages. The individual
// runs are jobs — fanned out by the parallel harness, executed inline
// by the serial one — while the averaging below is always done here, in
// run order, so both harnesses perform the identical float arithmetic.
func (h *harness) measure(s setup) point {
	k := h.key(s)
	if h.mode != modeCollect {
		if p, ok := h.cache[k]; ok {
			return p
		}
	}
	outs := make([]runOutcome, h.opt.Runs)
	for i := 0; i < h.opt.Runs; i++ {
		seed := h.opt.Seed + uint64(i)*7919
		outs[i] = jobAs(h, fmt.Sprintf("%s#%d", k, i), func() runOutcome {
			return runSetup(s, seed)
		})
	}
	if h.mode == modeCollect {
		return point{}
	}
	var fg, bg []float64
	var firstErr error
	for _, o := range outs {
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", k, o.err)
			}
			continue
		}
		fg = append(fg, o.fg)
		if o.bg > 0 {
			bg = append(bg, o.bg)
		}
	}
	p := point{err: firstErr}
	if len(fg) > 0 {
		p.fgRuntime = metrics.Summarize(fg).Mean
		p.err = nil
	}
	if len(bg) > 0 {
		p.bgRuntime = metrics.Summarize(bg).Mean
	}
	h.cache[k] = p
	h.opt.Logf("measured %s: fg=%.3fs bg=%.3fs err=%v", k, p.fgRuntime, p.bgRuntime, p.err)
	return p
}

// improvement returns the % runtime improvement of strat over vanilla
// for the given setup (positive = faster than vanilla).
func (h *harness) improvement(s setup, strat core.Strategy) float64 {
	base := s
	base.strat = core.StrategyVanilla
	vb := h.measure(base)
	s.strat = strat
	vm := h.measure(s)
	if vb.err != nil || vm.err != nil || vb.fgRuntime == 0 || vm.fgRuntime == 0 {
		return 0
	}
	return metrics.Improvement(vb.fgRuntime, vm.fgRuntime)
}

// weightedSpeedup returns the paper's §5.4 metric for a setup with a
// real background application.
func (h *harness) weightedSpeedup(s setup, strat core.Strategy) float64 {
	base := s
	base.strat = core.StrategyVanilla
	vb := h.measure(base)
	s.strat = strat
	vm := h.measure(s)
	if vb.err != nil || vm.err != nil || vm.fgRuntime == 0 || vb.fgRuntime == 0 {
		return 0
	}
	fgSp := metrics.Speedup(vb.fgRuntime, vm.fgRuntime)
	bgSp := 1.0
	if vb.bgRuntime > 0 && vm.bgRuntime > 0 {
		bgSp = metrics.Speedup(vb.bgRuntime, vm.bgRuntime)
	}
	return metrics.WeightedSpeedup(fgSp, bgSp)
}

func pct(v float64) string { return fmt.Sprintf("%+.1f%%", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// All runs every experiment and returns the tables in paper order.
func All(opt Options) []Table {
	return []Table{
		Fig1a(opt), Fig1b(opt), Fig2(opt),
		Fig5(opt), Fig6(opt), Fig7(opt), Fig8(opt), Fig9(opt),
		Fig10(opt), Fig11(opt), Fig12(opt), Fig13(opt),
		SADelay(opt),
	}
}

// ByID runs a single experiment by its table ID.
func ByID(id string, opt Options) (Table, bool) {
	switch strings.ToLower(id) {
	case "fig1a":
		return Fig1a(opt), true
	case "fig1b":
		return Fig1b(opt), true
	case "fig2":
		return Fig2(opt), true
	case "fig5":
		return Fig5(opt), true
	case "fig6":
		return Fig6(opt), true
	case "fig7":
		return Fig7(opt), true
	case "fig8":
		return Fig8(opt), true
	case "fig9":
		return Fig9(opt), true
	case "fig10":
		return Fig10(opt), true
	case "fig11":
		return Fig11(opt), true
	case "fig12":
		return Fig12(opt), true
	case "fig13":
		return Fig13(opt), true
	case "sa", "tab-sa", "sadelay":
		return SADelay(opt), true
	case "ab-pull":
		return AblationIRSPull(opt), true
	case "ab-salimit":
		return AblationSALimit(opt), true
	case "ab-ticket":
		return AblationTicketLock(opt), true
	case "ab-spinblock":
		return AblationSpinBlock(opt), true
	case "ab-strictco":
		return AblationStrictCo(opt), true
	case "claims":
		return EvaluateClaims(opt), true
	case "obs", "obs-counters":
		return ObsCounters(opt), true
	case "chaos":
		return Chaos(opt), true
	case "cluster":
		return Cluster(opt), true
	case "blame":
		return Blame(opt), true
	case "watch":
		return Watch(opt), true
	case "attack":
		return Attack(opt), true
	case "scale":
		return Scale(opt), true
	case "why":
		return Why(opt), true
	default:
		return Table{}, false
	}
}

// IDs lists all experiment identifiers (paper figures first, then the
// ablations this reproduction adds).
func IDs() []string {
	return []string{"fig1a", "fig1b", "fig2", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "sadelay",
		"ab-pull", "ab-salimit", "ab-ticket", "ab-spinblock", "ab-strictco",
		"claims", "obs", "chaos", "cluster", "blame", "watch", "attack", "scale", "why"}
}
