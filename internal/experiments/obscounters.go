package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// ObsCounters reports the simulator-measured scheduling-pathology
// counters behind the end-to-end numbers of §5: instead of inferring
// behaviour from runtimes alone, each strategy's row cites what the
// hypervisor and guest actually observed — steal time, the
// preemption-wait distribution (vanilla's 30 ms delays), SA round
// trips, LHP/LWP events, and IRS migrations. The scenario is the §5.1
// single-benchmark setup: streamcluster on 4 pinned vCPUs against one
// CPU hog on pCPU 0.
func ObsCounters(opt Options) Table { return runFigure(opt, obsCounters) }

// obsRowOut is one strategy's fully-rendered counter row; errStr is set
// when the run failed. Workers hand back plain data so Logf stays on
// the assembling goroutine.
type obsRowOut struct {
	row    []string
	errStr string
}

func obsCounters(h *harness) Table {
	t := Table{
		ID:    "obs",
		Title: "Telemetry counters, streamcluster vs 1 hog (registry-measured)",
		Columns: []string{"strategy", "runtime", "steal fg", "preempt p95",
			"preempts", "SA ack p95", "SA sent/ack/exp", "LHP", "LWP", "guest migr"},
	}
	bench, ok := workload.ByName("streamcluster")
	if !ok {
		return t
	}
	seed := h.opt.Seed
	for _, strat := range append(core.Strategies(), core.StrategyStrictCo) {
		strat := strat
		out := jobAs(h, fmt.Sprintf("obs|%s", strat), func() obsRowOut {
			return obsRow(bench, strat, seed)
		})
		if out.errStr != "" {
			h.opt.Logf("obs: %s failed: %s", strat, out.errStr)
			continue
		}
		if out.row != nil {
			t.Rows = append(t.Rows, out.row)
		}
	}
	return t
}

// obsRow executes one strategy's instrumented run and renders its row.
// Pure function of its arguments; safe on worker goroutines.
func obsRow(bench workload.Benchmark, strat core.Strategy, seed uint64) obsRowOut {
	reg := obs.NewRegistry()
	fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
	fg.IRS = strat == core.StrategyIRS
	scn := core.Scenario{
		PCPUs:    4,
		Strategy: strat,
		Seed:     seed,
		VMs:      []core.VMSpec{fg, core.HogVM("bg", 1, core.SeqPins(0, 1))},
		Metrics:  reg,
	}
	res, err := core.Run(scn)
	if err != nil {
		return obsRowOut{errStr: err.Error()}
	}
	fgL := obs.Labels{Sub: "hv", VM: "fg"}
	wait := reg.FindHistogram("hv_preempt_wait_ns", fgL)
	ack := reg.FindHistogram("hv_sa_ack_ns", fgL)
	preempts := int64(0)
	for _, v := range res.VM("fg").Kernel.VM().VCPUs {
		preempts += obs.CounterValue(reg, "hv_preemptions_total",
			obs.Labels{Sub: "hv", VM: "fg", CPU: v.Name()})
	}
	return obsRowOut{row: []string{
		strat.String(),
		fmt.Sprintf("%.3fs", res.VM("fg").Runtime.Seconds()),
		fmt.Sprintf("%.3fs", res.VM("fg").StealTime.Seconds()),
		fmt.Sprintf("%.1fms", wait.Percentile(95).Milliseconds()),
		fmt.Sprintf("%d", preempts),
		fmt.Sprintf("%.1fµs", ack.Percentile(95).Microseconds()),
		fmt.Sprintf("%d/%d/%d",
			obs.CounterValue(reg, "hv_sa_sent_total", fgL),
			obs.CounterValue(reg, "hv_sa_acked_total", fgL),
			obs.CounterValue(reg, "hv_sa_expired_total", fgL)),
		fmt.Sprintf("%d", obs.CounterValue(reg, "hv_lhp_total", fgL)),
		fmt.Sprintf("%d", obs.CounterValue(reg, "hv_lwp_total", fgL)),
		fmt.Sprintf("%d", obs.CounterValue(reg, "guest_task_migrations_total",
			obs.Labels{Sub: "guest", VM: "fg"})),
	}}
}
