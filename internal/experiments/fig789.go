package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Figures 7 and 9: system-wide weighted speedup when a foreground
// benchmark is consolidated with a real background application
// (fluidanimate/streamcluster for PARSEC, LU/UA for NPB). Figure 8:
// server throughput and latency improvement under CPU hogs.

// weightedPanel builds one weighted-speedup panel.
func weightedPanel(h *harness, id, title string, suite []workload.Benchmark, mode workload.SyncMode, bg workload.Benchmark, bgMode workload.SyncMode) Table {
	cols := []string{"benchmark"}
	for _, lvl := range improvementLevels {
		for _, st := range improvementStrategies {
			cols = append(cols, fmt.Sprintf("%d-inter %s", lvl, st))
		}
	}
	var rows [][]string
	for _, bench := range suite {
		row := []string{bench.Name}
		for _, lvl := range improvementLevels {
			for _, st := range improvementStrategies {
				s := setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: mode,
					inter: benchInter(bg, bgMode, lvl)}
				row = append(row, f2(h.weightedSpeedup(s, st)))
			}
		}
		rows = append(rows, row)
	}
	return Table{ID: id, Title: title, Columns: cols, Rows: rows}
}

// Fig7 reproduces Figure 7: weighted speedup of two consolidated
// PARSEC applications (higher is better, 1.0 = vanilla).
func Fig7(opt Options) Table { return runFigure(opt, fig7) }

func fig7(h *harness) Table {
	fluid, _ := workload.ByName("fluidanimate")
	stream, _ := workload.ByName("streamcluster")
	panels := []Table{
		weightedPanel(h, "fig7a", "Weighted speedup w/ fluidanimate", workload.PARSEC(), 0, fluid, 0),
		weightedPanel(h, "fig7b", "Weighted speedup w/ streamcluster", workload.PARSEC(), 0, stream, 0),
	}
	return mergePanels("fig7", "Weighted speedup of two PARSEC applications (blocking)", panels)
}

// Fig9 reproduces Figure 9: weighted speedup for NPB applications.
func Fig9(opt Options) Table { return runFigure(opt, fig9) }

func fig9(h *harness) Table {
	lu, _ := workload.ByName("LU")
	ua, _ := workload.ByName("UA")
	panels := []Table{
		weightedPanel(h, "fig9a", "Weighted speedup w/ LU", workload.NPB(), workload.SyncSpinning, lu, workload.SyncSpinning),
		weightedPanel(h, "fig9b", "Weighted speedup w/ UA", workload.NPB(), workload.SyncSpinning, ua, workload.SyncSpinning),
	}
	return mergePanels("fig9", "Weighted speedup of NPB applications (spinning)", panels)
}

// serverSpecs returns the two server benchmarks of §5.3: a SPECjbb-like
// warehouse server (one thread per vCPU) and an ab-like webserver with
// many short-request threads.
func serverSpecs() (jbb, ab workload.ServerSpec) {
	jbb = workload.ServerSpec{
		Name:      "specjbb",
		Threads:   4,
		Service:   3 * sim.Millisecond,
		LockEvery: 25,
		LockCS:    100 * sim.Microsecond,
		Duration:  8 * sim.Second,
	}
	ab = workload.ServerSpec{
		Name:     "ab",
		Threads:  64, // 512 in the paper; scaled with the smaller service times
		Service:  1500 * sim.Microsecond,
		Duration: 8 * sim.Second,
	}
	return jbb, ab
}

// Fig8 reproduces Figure 8: throughput and latency improvement of
// SPECjbb (mean new-order latency) and ab (99th percentile) under IRS
// with 1-4 CPU hogs.
func Fig8(opt Options) Table { return runFigure(opt, fig8) }

func fig8(h *harness) Table {
	jbbSpec, abSpec := serverSpecs()
	var rows [][]string
	for _, c := range []struct {
		spec workload.ServerSpec
		pctl float64 // 0 = mean
		tag  string
	}{
		{jbbSpec, 0, "specjbb"},
		{abSpec, 99, "ab (99th)"},
	} {
		for inter := 1; inter <= 4; inter++ {
			vanT, vanL := serverPointJob(h, c.spec, core.StrategyVanilla, inter, c.pctl)
			irsT, irsL := serverPointJob(h, c.spec, core.StrategyIRS, inter, c.pctl)
			rows = append(rows, []string{
				c.tag, fmt.Sprintf("%d-inter", inter),
				pct(metrics.ThroughputImprovement(vanT, irsT)),
				pct(metrics.Improvement(vanL, irsL)),
			})
		}
	}
	return Table{
		ID:      "fig8",
		Title:   "Server throughput and latency improvement under IRS",
		Columns: []string{"server", "interference", "throughput", "latency"},
		Rows:    rows,
	}
}

// serverOut carries one server data point between workers and assembly.
type serverOut struct {
	thr, lat float64
}

// serverPointJob wraps serverPoint as a harness job, one job per
// (spec, strategy, interference, percentile) point.
func serverPointJob(h *harness, spec workload.ServerSpec, strat core.Strategy, inter int, pctl float64) (float64, float64) {
	opt := h.opt
	key := fmt.Sprintf("server|%s|%s|%d|%.0f", spec.Name, strat, inter, pctl)
	out := jobAs(h, key, func() serverOut {
		thr, lat := serverPoint(opt, spec, strat, inter, pctl)
		return serverOut{thr: thr, lat: lat}
	})
	return out.thr, out.lat
}

// serverPoint measures a server benchmark: returns (throughput req/s,
// latency seconds — mean or percentile).
func serverPoint(opt Options, spec workload.ServerSpec, strat core.Strategy, inter int, pctl float64) (float64, float64) {
	var thr, lat []float64
	for i := 0; i < opt.Runs; i++ {
		vmSpec, statsPtr := core.ServerVM("fg", spec, 4, core.SeqPins(0, 4))
		vmSpec.IRS = strat == core.StrategyIRS
		scn := core.Scenario{
			PCPUs:    4,
			Strategy: strat,
			Seed:     opt.Seed + uint64(i)*7919,
			VMs: []core.VMSpec{
				vmSpec,
				core.HogVM("bg", inter, core.SeqPins(0, inter)),
			},
		}
		res, err := core.Run(scn)
		if err != nil || *statsPtr == nil {
			continue
		}
		st := *statsPtr
		_ = res
		thr = append(thr, st.Throughput())
		if pctl > 0 {
			lat = append(lat, st.Latency.Percentile(pctl).Seconds())
		} else {
			lat = append(lat, st.Latency.Mean().Seconds())
		}
	}
	return metrics.Summarize(thr).Mean, metrics.Summarize(lat).Mean
}
