package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// chaosVariant pairs a scheduling strategy with an optional hardening
// profile. The two IRS rows isolate the value of the robustness
// mechanisms: same protocol, with and without its defenses.
type chaosVariant struct {
	name     string
	strategy core.Strategy
	irs      bool
	hardened bool
}

func chaosVariants() []chaosVariant {
	return []chaosVariant{
		{"vanilla", core.StrategyVanilla, false, false},
		{"ple", core.StrategyPLE, false, false},
		{"relaxed-co", core.StrategyRelaxedCo, false, false},
		{"irs", core.StrategyIRS, true, false},
		{"irs-hardened", core.StrategyIRS, true, true},
	}
}

// chaosRates are the swept fault intensities; 0 is the control row
// proving injection-off runs match the plain experiments.
func chaosRates() []float64 { return []float64{0, 0.10, 0.25} }

// chaosScenario builds one chaos run: the §5.1 streamcluster-vs-hog
// rig under fault.LossPlan(rate), with the invariant checker attached
// and, for the hardened variant, the full defense profile (duplicate
// suppression, migrator retries, wakeup-loss poll, SA circuit
// breaker). The registry is per-run so exports are comparable across
// repeats of the same cell.
func chaosScenario(seed uint64, rate float64, v chaosVariant, reg *obs.Registry) (core.Scenario, bool) {
	bench, ok := workload.ByName("streamcluster")
	if !ok {
		return core.Scenario{}, false
	}
	fg := core.BenchmarkVM("fg", bench, 0, 4, core.SeqPins(0, 4))
	fg.IRS = v.irs
	scn := core.Scenario{
		PCPUs:      4,
		Strategy:   v.strategy,
		Seed:       seed,
		Horizon:    120 * sim.Second,
		VMs:        []core.VMSpec{fg, core.HogVM("bg", 1, core.SeqPins(0, 1))},
		Metrics:    reg,
		Invariants: true,
	}
	if rate > 0 {
		// LossPlan(0) still carries the delay/staleness terms; keep the
		// control row genuinely injection-free.
		scn.Faults = fault.LossPlan(rate)
	}
	if v.hardened {
		scn.TuneHV = func(c *hypervisor.Config) {
			c.SABreakerN = 5
			c.SABreakerCooldown = 50 * sim.Millisecond
		}
		scn.TuneGuest = func(name string, c *guest.Config) {
			if name != "fg" {
				return
			}
			c.HardenDupSA = true
			c.MigratorRetries = 3
			c.MigratorBackoff = 200 * sim.Microsecond
			c.WakePoll = 5 * sim.Millisecond
		}
	}
	return scn, true
}

// Chaos sweeps vIRQ/hypercall fault rates across the scheduling
// strategies and reports what each run injected, recovered, and — per
// the invariant checker — whether consistency ever broke. The
// robustness claim the table supports: faults cost hardened IRS
// throughput, never correctness, while unhardened runs stall outright
// once wakeup loss strands an idle vCPU ("stalled" rows hit the
// horizon with the benchmark unfinished).
func Chaos(opt Options) Table { return runFigure(opt, chaos) }

// chaosRowOut is one rate×variant cell, rendered on the worker; errStr
// is set when the run produced no result at all.
type chaosRowOut struct {
	row    []string
	errStr string
}

func chaos(h *harness) Table {
	t := Table{
		ID:    "chaos",
		Title: "Chaos sweep: fault.LossPlan rate vs strategy (streamcluster vs 1 hog)",
		Columns: []string{"rate", "variant", "runtime", "SA sent/ack/exp/pend",
			"fallbacks", "recovered", "injected", "violations"},
	}
	if _, ok := workload.ByName("streamcluster"); !ok {
		return t
	}
	seed := h.opt.Seed
	for _, rate := range chaosRates() {
		for _, v := range chaosVariants() {
			rate, v := rate, v
			out := jobAs(h, fmt.Sprintf("chaos|%.2f|%s", rate, v.name), func() chaosRowOut {
				return chaosCell(seed, rate, v)
			})
			if out.errStr != "" {
				h.opt.Logf("chaos: %s @ %.0f%%: %s", v.name, rate*100, out.errStr)
				continue
			}
			if out.row != nil {
				t.Rows = append(t.Rows, out.row)
			}
		}
	}
	return t
}

// chaosCell executes one rate×variant run and renders its row. Pure
// function of its arguments; safe on worker goroutines.
func chaosCell(seed uint64, rate float64, v chaosVariant) chaosRowOut {
	reg := obs.NewRegistry()
	scn, ok := chaosScenario(seed, rate, v, reg)
	if !ok {
		return chaosRowOut{errStr: "benchmark unavailable"}
	}
	res, err := core.Run(scn)
	if res == nil {
		return chaosRowOut{errStr: fmt.Sprintf("%v", err)}
	}
	runtime := "stalled"
	if err == nil {
		runtime = fmt.Sprintf("%.3fs", res.VM("fg").Runtime.Seconds())
	}
	k := res.VM("fg").Kernel
	recovered := k.SADupSuppressed + k.MigratorRetried + k.WakePollRecoveries
	return chaosRowOut{row: []string{
		fmt.Sprintf("%.0f%%", rate*100),
		v.name,
		runtime,
		fmt.Sprintf("%d/%d/%d/%d", res.SASent, res.SAAcked, res.SAExpired, res.SAPending),
		fmt.Sprintf("%d", res.SAFallbacks),
		fmt.Sprintf("%d", recovered),
		fmt.Sprintf("%d", res.FaultsInjected),
		fmt.Sprintf("%d", res.Violations),
	}}
}
