package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// A Claim is one falsifiable statement from the paper, paired with a
// programmatic check against the simulator. Together the claims form a
// machine-checkable summary of the reproduction: `irsim claims` (or
// TestPaperClaims) evaluates every one and reports which hold.
type Claim struct {
	ID        string
	Section   string // where the paper makes the claim
	Statement string
	// Check runs the experiment; it returns a human-readable
	// measurement and whether the claim held.
	Check func(h *harness) (got string, ok bool)
}

// Claims returns the paper's headline claims in order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "C1-lhp-slowdown",
			Section:   "§1 Fig 1(a)",
			Statement: "Parallel programs with kernel-level synchronization suffer large slowdowns (2-3.5x) when one vCPU is interfered; spinning (ua) suffers most.",
			Check: func(h *harness) (string, bool) {
				ua := slowdownOf(h, "UA", workload.SyncSpinning)
				fl := slowdownOf(h, "fluidanimate", 0)
				return fmt.Sprintf("UA %.2fx, fluidanimate %.2fx", ua, fl),
					ua >= 2.0 && fl >= 1.5 && ua > fl
			},
		},
		{
			ID:        "C2-worksteal-resilient",
			Section:   "§1 Fig 1(a), §2.3",
			Statement: "User-level work stealing (raytrace) absorbs interference; its slowdown stays near 1x.",
			Check: func(h *harness) (string, bool) {
				rt := slowdownOf(h, "raytrace", 0)
				return fmt.Sprintf("raytrace %.2fx", rt), rt < 1.45
			},
		},
		{
			ID:        "C3-migration-staircase",
			Section:   "§1 Fig 1(b)",
			Statement: "Guest process migration off a contended vCPU takes tens of ms, growing by roughly one scheduling delay per co-located VM.",
			Check: func(h *harness) (string, bool) {
				l1 := migrationLatencyJob(h, 1).Milliseconds()
				l2 := migrationLatencyJob(h, 2).Milliseconds()
				l3 := migrationLatencyJob(h, 3).Milliseconds()
				return fmt.Sprintf("%.1f / %.1f / %.1f ms", l1, l2, l3),
					l1 >= 10 && l2 > l1 && l3 > l2
			},
		},
		{
			ID:        "C4-blocking-underutilizes",
			Section:   "§2.3 Fig 2",
			Statement: "Under interference, blocking workloads use well below their fair CPU share (deceptive idleness); raytrace stays near full share.",
			Check: func(h *harness) (string, bool) {
				sc := utilizationOfJob(h, "streamcluster", 0)
				rt := utilizationOfJob(h, "raytrace", 0)
				return fmt.Sprintf("streamcluster %.2f, raytrace %.2f", sc, rt),
					sc < 0.75 && rt > 0.8
			},
		},
		{
			ID:        "C5-irs-blocking",
			Section:   "§5.2 Fig 5",
			Statement: "IRS improves blocking PARSEC workloads substantially (paper: up to 42%) at 1-2 interfered vCPUs.",
			Check: func(h *harness) (string, bool) {
				best := 0.0
				for _, n := range []string{"streamcluster", "facesim", "bodytrack"} {
					b, _ := workload.ByName(n)
					imp := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: b, inter: hogs(1)}, core.StrategyIRS)
					if imp > best {
						best = imp
					}
				}
				return fmt.Sprintf("best %.0f%%", best), best >= 30
			},
		},
		{
			ID:        "C6-irs-spinning",
			Section:   "§5.2 Fig 6",
			Statement: "IRS improves spinning NPB workloads substantially (paper: up to 43%): migrated lock holders reschedule at guest (ms) rather than hypervisor (30 ms) granularity.",
			Check: func(h *harness) (string, bool) {
				b, _ := workload.ByName("MG")
				imp := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: b,
					mode: workload.SyncSpinning, inter: hogs(1)}, core.StrategyIRS)
				return fmt.Sprintf("MG %.0f%%", imp), imp >= 30
			},
		},
		{
			ID:        "C7-gain-diminishes",
			Section:   "§5.2, §5.5 Fig 10",
			Statement: "IRS gains diminish as interference covers more vCPUs; with every vCPU interfered the gain is marginal or negative.",
			Check: func(h *harness) (string, bool) {
				b, _ := workload.ByName("facesim")
				i1 := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: b, inter: hogs(1)}, core.StrategyIRS)
				i4 := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: b, inter: hogs(4)}, core.StrategyIRS)
				return fmt.Sprintf("1-inter %.0f%%, 4-inter %.0f%%", i1, i4),
					i1 >= i4+10
			},
		},
		{
			ID:        "C8-pipeline-marginal",
			Section:   "§5.2",
			Statement: "Pipeline-parallel dedup/ferret see only marginal IRS gains: with several ready threads per vCPU the stock balancer already copes.",
			Check: func(h *harness) (string, bool) {
				b, _ := workload.ByName("dedup")
				imp := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: b, inter: hogs(1)}, core.StrategyIRS)
				return fmt.Sprintf("dedup %.0f%%", imp), imp < 30
			},
		},
		{
			ID:        "C9-relaxedco-spinning",
			Section:   "§5.2 Fig 6",
			Statement: "Relaxed co-scheduling helps coarse-grained spinning workloads but performs poorly for fine-grained ones (CG, IS, MG, SP).",
			Check: func(h *harness) (string, bool) {
				bt, _ := workload.ByName("BT")
				mg, _ := workload.ByName("MG")
				coarse := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: bt,
					mode: workload.SyncSpinning, inter: hogs(2)}, core.StrategyRelaxedCo)
				fine := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: mg,
					mode: workload.SyncSpinning, inter: hogs(2)}, core.StrategyRelaxedCo)
				return fmt.Sprintf("BT %.0f%%, MG %.0f%%", coarse, fine),
					coarse >= 20 && fine < coarse-15
			},
		},
		{
			ID:        "C10-relaxedco-blocking",
			Section:   "§5.2 Fig 5",
			Statement: "Relaxed co-scheduling is ineffective or destructive for blocking workloads: idleness is mistaken for progress, blinding the skew monitor.",
			Check: func(h *harness) (string, bool) {
				b, _ := workload.ByName("streamcluster")
				imp := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: b, inter: hogs(2)}, core.StrategyRelaxedCo)
				return fmt.Sprintf("streamcluster %.0f%%", imp), imp < 10
			},
		},
		{
			ID:        "C11-irs-beats-baselines",
			Section:   "§5.2",
			Statement: "IRS outperforms both PLE and relaxed co-scheduling for fine-grained spinning workloads under interference.",
			Check: func(h *harness) (string, bool) {
				b, _ := workload.ByName("CG")
				s := setup{pcpus: 4, fgVCPUs: 4, bench: b, mode: workload.SyncSpinning, inter: hogs(1)}
				irs := h.improvement(s, core.StrategyIRS)
				ple := h.improvement(s, core.StrategyPLE)
				co := h.improvement(s, core.StrategyRelaxedCo)
				return fmt.Sprintf("IRS %.0f%%, PLE %.0f%%, relaxed-co %.0f%%", irs, ple, co),
					irs > ple && irs > co
			},
		},
		{
			ID:        "C12-sa-delay",
			Section:   "§3.1, §4.1",
			Statement: "SA processing adds only 20-26µs to each hypervisor preemption — negligible against ms-scale scheduling quanta.",
			Check: func(h *harness) (string, bool) {
				seed := h.opt.Seed
				out := jobAs(h, "c12", func() claimRunOut {
					b, _ := workload.ByName("streamcluster")
					fg := core.BenchmarkVM("fg", b, 0, 4, core.SeqPins(0, 4))
					fg.IRS = true
					res, err := core.Run(core.Scenario{
						PCPUs: 4, Strategy: core.StrategyIRS, Seed: seed,
						VMs: []core.VMSpec{fg, core.HogVM("bg", 2, core.SeqPins(0, 2))},
					})
					if err != nil {
						return claimRunOut{errStr: err.Error()}
					}
					return claimRunOut{val: res.SAMeanDelay.Microseconds()}
				})
				if out.errStr != "" {
					return out.errStr, false
				}
				us := out.val
				return fmt.Sprintf("mean %.0fµs", us), us >= 10 && us <= 40
			},
		},
		{
			ID:        "C13-fairness-preserved",
			Section:   "§5.4",
			Statement: "IRS does not compromise fairness: the foreground VM's CPU consumption never exceeds its fair share.",
			Check: func(h *harness) (string, bool) {
				seed := h.opt.Seed
				out := jobAs(h, "c13", func() claimRunOut {
					b, _ := workload.ByName("UA")
					fg := core.BenchmarkVM("fg", b, workload.SyncSpinning, 4, core.SeqPins(0, 4))
					fg.IRS = true
					res, err := core.Run(core.Scenario{
						PCPUs: 4, Strategy: core.StrategyIRS, Seed: seed,
						VMs: []core.VMSpec{fg, core.HogVM("bg", 2, core.SeqPins(0, 2))},
					})
					if err != nil {
						return claimRunOut{errStr: err.Error()}
					}
					// Fair share: 2 shared pCPUs (1/2 each) + 2 exclusive.
					fair := res.Elapsed + 2*res.Elapsed
					return claimRunOut{val: core.Utilization(res, "fg", fair)}
				})
				if out.errStr != "" {
					return out.errStr, false
				}
				return fmt.Sprintf("utilization %.2f of fair share", out.val), out.val <= 1.02
			},
		},
		{
			ID:        "C14-server-latency",
			Section:   "§5.3 Fig 8",
			Statement: "IRS cuts multi-threaded server latency substantially (paper: up to 46%) even though such workloads have little synchronization.",
			Check: func(h *harness) (string, bool) {
				jbb, _ := serverSpecs()
				vanT, vanL := serverPointJob(h, jbb, core.StrategyVanilla, 2, 0)
				irsT, irsL := serverPointJob(h, jbb, core.StrategyIRS, 2, 0)
				latImp := metrics.Improvement(vanL, irsL)
				thrImp := metrics.ThroughputImprovement(vanT, irsT)
				return fmt.Sprintf("latency %.0f%%, throughput %.0f%%", latImp, thrImp),
					latImp >= 10 && thrImp >= 5
			},
		},
		{
			ID:        "C15-stacking-penalty",
			Section:   "§2.3, §5.6",
			Statement: "With all vCPUs unpinned, VM-oblivious scheduling stacks sibling vCPUs and costs parallel workloads multiples of their pinned performance.",
			Check: func(h *harness) (string, bool) {
				mg, _ := workload.ByName("MG")
				pinned := h.measure(setup{pcpus: 4, fgVCPUs: 4, bench: mg,
					mode: workload.SyncSpinning, strat: core.StrategyVanilla, inter: hogs(4)})
				stacked := h.measure(setup{pcpus: 4, fgVCPUs: 4, bench: mg,
					mode: workload.SyncSpinning, strat: core.StrategyVanilla, inter: hogs(4),
					unpinned: true, horizon: 1800 * sim.Second})
				r := stacked.fgRuntime / pinned.fgRuntime
				return fmt.Sprintf("%.1fx over pinned", r), r >= 1.8
			},
		},
		{
			ID:        "C16-irs-stacking",
			Section:   "§5.6 Fig 12/13",
			Statement: "IRS recovers a good part of the stacking penalty: in-guest balancing is resilient to oblivious vCPU placement.",
			Check: func(h *harness) (string, bool) {
				mg, _ := workload.ByName("MG")
				s := setup{pcpus: 4, fgVCPUs: 4, bench: mg, mode: workload.SyncSpinning,
					inter: hogs(4), unpinned: true, horizon: 1800 * sim.Second}
				imp := h.improvement(s, core.StrategyIRS)
				return fmt.Sprintf("MG %.0f%%", imp), imp >= 15
			},
		},
		{
			ID:        "C17-ticket-lwp",
			Section:   "§1, [24]",
			Statement: "FIFO ticket locks amplify lock-waiter preemption: handoff to a preempted waiter stalls every other waiter.",
			Check: func(h *harness) (string, bool) {
				spec := workload.ParallelSpec{
					Name: "lockbench", Mode: workload.SyncSpinning,
					Iterations: 400, Work: 1 * sim.Millisecond, Imbalance: 0.1,
					LocksPerIter: 6, CSLen: 150 * sim.Microsecond,
				}
				tas := ticketPointJob(h, spec, false, 1)
				spec.TicketLock = true
				fifo := ticketPointJob(h, spec, true, 1)
				r := fifo / tas
				return fmt.Sprintf("ticket/TAS %.2fx", r), r >= 1.5
			},
		},
		{
			ID:        "C18-strictco-fragmentation",
			Section:   "§2.1",
			Statement: "Strict co-scheduling causes CPU fragmentation: it devastates blocking workloads (idle waiters waste reserved pCPUs) while spinning workloads merely break even.",
			Check: func(h *harness) (string, bool) {
				sc, _ := workload.ByName("streamcluster")
				mg, _ := workload.ByName("MG")
				blocking := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: sc, inter: hogs(2)}, core.StrategyStrictCo)
				spinning := h.improvement(setup{pcpus: 4, fgVCPUs: 4, bench: mg,
					mode: workload.SyncSpinning, inter: hogs(2)}, core.StrategyStrictCo)
				return fmt.Sprintf("streamcluster %.0f%%, MG %.0f%%", blocking, spinning),
					blocking < -20 && spinning > blocking+20
			},
		},
	}
}

// slowdownOf computes runtime(1 hog)/runtime(alone) for one benchmark.
//
//nolint:unused // kept adjacent to the claims that use it
func slowdownOf(h *harness, name string, mode workload.SyncMode) float64 {
	b, ok := workload.ByName(name)
	if !ok {
		return 0
	}
	alone := h.measure(setup{pcpus: 4, fgVCPUs: 4, bench: b, mode: mode,
		strat: core.StrategyVanilla, inter: hogs(0)})
	inter := h.measure(setup{pcpus: 4, fgVCPUs: 4, bench: b, mode: mode,
		strat: core.StrategyVanilla, inter: hogs(1)})
	if alone.fgRuntime == 0 {
		return 0
	}
	return inter.fgRuntime / alone.fgRuntime
}

// claimRunOut carries one claim measurement out of a worker; errStr is
// non-empty when the underlying run failed (job results must be plain
// data — Logf and error rendering happen during assembly).
type claimRunOut struct {
	val    float64
	errStr string
}

// utilizationOfJob wraps utilizationOf as a harness job.
func utilizationOfJob(h *harness, name string, mode workload.SyncMode) float64 {
	opt := h.opt
	return jobAs(h, fmt.Sprintf("util|%s|%d", name, mode), func() float64 {
		return utilizationOf(opt, name, mode)
	})
}

// utilizationOf measures fair-share utilization with one hog.
func utilizationOf(opt Options, name string, mode workload.SyncMode) float64 {
	b, ok := workload.ByName(name)
	if !ok {
		return 0
	}
	res, err := core.Run(fig2Scenario(b, mode, opt.Seed))
	if err != nil {
		return 0
	}
	fair := res.Elapsed/2 + 3*res.Elapsed
	return core.Utilization(res, "fg", fair)
}

// EvaluateClaims runs every claim and renders the verdict table. Claim
// checks are deterministic builders: the set of simulations they request
// never depends on measured values, so the parallel harness can collect
// the full job matrix up front and fan it out.
func EvaluateClaims(opt Options) Table { return runFigure(opt, evaluateClaims) }

func evaluateClaims(h *harness) Table {
	var rows [][]string
	for _, c := range Claims() {
		got, ok := c.Check(h)
		verdict := "HOLDS"
		if !ok {
			verdict = "FAILS"
		}
		rows = append(rows, []string{c.ID, c.Section, verdict, got})
	}
	return Table{
		ID:      "claims",
		Title:   "Paper claims, re-checked on the simulator",
		Columns: []string{"claim", "paper", "verdict", "measured"},
		Rows:    rows,
	}
}
