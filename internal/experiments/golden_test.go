package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The golden corpus pins the rendered output of the cheap, fully
// deterministic experiment tables at Runs=1, Seed=1. Any change to the
// simulator, the scheduling strategies, the cluster layer, or the table
// rendering that shifts a single byte fails here; when the change is
// intentional, regenerate with:
//
//	go test ./internal/experiments -run TestGolden -update

var update = flag.Bool("update", false, "rewrite the golden experiment tables")

func goldenOptions() Options {
	return Options{Runs: 1, Seed: 1, Workers: 1}
}

func goldenIDs() []string {
	return []string{"fig1a", "fig1b", "claims", "chaos", "cluster", "blame", "watch", "attack", "scale", "why"}
}

func TestGoldenTables(t *testing.T) {
	for _, id := range goldenIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, ok := ByID(id, goldenOptions())
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			got := tb.String()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden.\n--- got ---\n%s--- want ---\n%s", id, got, want)
			}
		})
	}
}

func TestGoldenMatchesParallelHarness(t *testing.T) {
	// The goldens are generated serially; the parallel harness must
	// produce the identical bytes.
	opt := goldenOptions()
	opt.Workers = 4
	for _, id := range []string{"fig1a", "cluster", "attack"} {
		tb, _ := ByID(id, opt)
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Skipf("no golden: %v", err)
		}
		if tb.String() != string(want) {
			t.Errorf("%s: parallel harness output differs from serial golden", id)
		}
	}
}

func TestGoldenDetectsPerturbation(t *testing.T) {
	// Sanity on the corpus itself: the pinned bytes really do depend on
	// the simulation, not just the headers — a different seed must not
	// match the seed-1 golden.
	want, err := os.ReadFile(filepath.Join("testdata", "cluster.golden"))
	if err != nil {
		t.Skipf("no golden: %v", err)
	}
	tb, _ := ByID("cluster", Options{Runs: 1, Seed: 99, Workers: 1})
	if tb.String() == string(want) {
		t.Fatal("seed-99 cluster table matches the seed-1 golden; corpus pins nothing")
	}
}
