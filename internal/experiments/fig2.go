package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Fig2 reproduces Figure 2: CPU utilization of the parallel VM relative
// to its fair share under one interfering CPU hog, with all benchmarks
// using blocking synchronization (NPB compiled with
// OMP_WAIT_POLICY=passive). Blocking workloads idle their vCPUs on
// LHP/LWP and fall short of the fair share; raytrace's user-level load
// balancing keeps utilization near 1.
func Fig2(opt Options) Table { return runFigure(opt, fig2) }

// utilOut is one fair-share utilization measurement (ok false when the
// run failed or was only collected).
type utilOut struct {
	util float64
	ok   bool
}

// fig2Run measures run i of the Figure 2 scenario for one benchmark as
// a harness job. Claim C4 shares run 0 through the same key.
func fig2Run(h *harness, bench workload.Benchmark, mode workload.SyncMode, i int) utilOut {
	seed := h.opt.Seed + uint64(i)*7919
	return jobAs(h, fmt.Sprintf("fig2|%s|%d|%d", bench.Name, mode, i), func() utilOut {
		res, err := core.Run(fig2Scenario(bench, mode, seed))
		if err != nil {
			return utilOut{}
		}
		elapsed := res.Elapsed
		// Fair share: pCPU 0 is shared with the hog (1/2 each);
		// pCPUs 1-3 belong to the parallel VM alone.
		fair := elapsed/2 + 3*elapsed
		return utilOut{util: core.Utilization(res, "fg", fair), ok: true}
	})
}

func fig2(h *harness) Table {
	rows := [][]string{}

	parsecNames := []string{"streamcluster", "canneal", "fluidanimate", "bodytrack", "x264", "facesim", "blackscholes"}
	npbNames := []string{"BT", "CG", "MG", "FT", "SP", "UA"}

	add := func(name string, mode workload.SyncMode) {
		bench, ok := workload.ByName(name)
		if !ok {
			return
		}
		var utils []float64
		for i := 0; i < h.opt.Runs; i++ {
			if out := fig2Run(h, bench, mode, i); out.ok {
				utils = append(utils, out.util)
			}
		}
		if len(utils) == 0 {
			return
		}
		rows = append(rows, []string{name, f2(metrics.Summarize(utils).Mean)})
	}

	for _, n := range parsecNames {
		add(n, 0) // native blocking
	}
	for _, n := range npbNames {
		add(n, workload.SyncBlocking) // OMP passive
	}
	add("raytrace", 0)

	return Table{
		ID:      "fig2",
		Title:   "CPU utilization relative to fair share (blocking sync, 1 hog)",
		Columns: []string{"benchmark", "utilization"},
		Rows:    rows,
	}
}

func fig2Scenario(bench workload.Benchmark, mode workload.SyncMode, seed uint64) core.Scenario {
	fg := core.BenchmarkVM("fg", bench, mode, 4, core.SeqPins(0, 4))
	return core.Scenario{
		PCPUs:    4,
		Strategy: core.StrategyVanilla,
		Seed:     seed,
		VMs: []core.VMSpec{
			fg,
			core.HogVM("bg", 1, core.SeqPins(0, 1)),
		},
	}
}
