package experiments

import (
	"sync"
)

// Parallel sweep runner. Every simulation in this package is an
// isolated deterministic engine, so a figure's full (setup × strategy ×
// seed) matrix can fan out across worker goroutines — as long as the
// *assembly* of results into a table stays serial and deterministic.
//
// The harness achieves that with a collect/execute/replay scheme:
//
//  1. collect: the figure's build function runs once with every job
//     request recorded (and zero values returned). Builders are
//     deterministic and never branch on measured values when deciding
//     *what* to measure, so this pass discovers the complete job set.
//  2. execute: the recorded jobs fan out across Options.Workers
//     goroutines. Completed results stream through a bounded channel
//     and are merged under their canonical keys, so memory stays
//     bounded by the number of distinct points plus the worker count,
//     and completion order cannot influence anything.
//  3. replay: the build function runs again. Every job request now
//     hits the memoized result, and the table is assembled by exactly
//     the code the serial harness runs — byte-identical output.
//
// Serial mode (Workers == 1) skips straight to a single build pass in
// which each job executes inline at first request; the memoization and
// assembly paths are shared, which is what the determinism test pins.
//
// Job closures run on worker goroutines: they must be self-contained
// simulations (core.Run or a private engine) and must not touch the
// harness, the options, or any shared mutable state.

// harness execution modes.
const (
	modeRun     = iota // execute jobs inline (or hit memoized results)
	modeCollect        // record job requests, return zero values
)

// pendingJob is one recorded simulation, keyed canonically.
type pendingJob struct {
	key string
	fn  func() any
}

// job returns the memoized result for key, computing it with fn on the
// first request. In collect mode it records the job for the parallel
// phase and returns nil.
func (h *harness) job(key string, fn func() any) any {
	if h.mode == modeCollect {
		if !h.seen[key] {
			h.seen[key] = true
			h.pending = append(h.pending, pendingJob{key: key, fn: fn})
		}
		return nil
	}
	if v, ok := h.results[key]; ok {
		return v
	}
	v := fn()
	h.results[key] = v
	return v
}

// jobAs is job with a typed result; collect mode yields the zero value.
func jobAs[T any](h *harness, key string, fn func() T) T {
	v := h.job(key, func() any { return fn() })
	if v == nil {
		var zero T
		return zero
	}
	return v.(T)
}

// runPending executes every collected job across the worker pool and
// merges the streamed results under their canonical keys.
func (h *harness) runPending() {
	jobs := h.pending
	h.pending = nil
	workers := h.opt.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return
	}
	if workers <= 1 {
		for _, j := range jobs {
			h.results[j.key] = j.fn()
		}
		return
	}
	type jobResult struct {
		i int
		v any
	}
	feed := make(chan int)
	done := make(chan jobResult, workers) // bounded result stream
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				done <- jobResult{i: i, v: jobs[i].fn()}
			}
		}()
	}
	go func() {
		for i := range jobs {
			feed <- i
		}
		close(feed)
		wg.Wait()
		close(done)
	}()
	// Merge in completion order; the canonical key makes the merge
	// order irrelevant to the replayed assembly.
	for r := range done {
		h.results[jobs[r.i].key] = r.v
	}
}

// runFigure executes one figure build through the harness: serially
// when Workers == 1, otherwise via collect → parallel execute → replay.
func runFigure(opt Options, build func(*harness) Table) Table {
	h := newHarness(opt)
	if h.opt.Workers <= 1 {
		return build(h)
	}
	h.mode = modeCollect
	_ = build(h)
	h.mode = modeRun
	h.runPending()
	return build(h)
}

// ParallelDo runs the given independent functions across at most
// workers goroutines and returns when all have completed. It is the
// fan-out primitive cmd/irsweep shares with the harness for ad-hoc
// sweeps that do not go through figure tables.
func ParallelDo(workers int, fns []func()) {
	if workers > len(fns) {
		workers = len(fns)
	}
	if workers <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	feed := make(chan func())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fn := range feed {
				fn()
			}
		}()
	}
	for _, fn := range fns {
		feed <- fn
	}
	close(feed)
	wg.Wait()
}
