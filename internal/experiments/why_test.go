package experiments

import (
	"testing"

	"repro/internal/decision"
)

// TestWhyTrailExactSequence pins the acceptance criterion: the 2z8h
// outage rig's decision trail is exactly the elasticity story — the
// zone cordon, the first failover route, the autoscaler's +2, and the
// two drains after recovery. Anything more (a spurious scale event, a
// failover before the cordon) or less (a missed record) fails here.
func TestWhyTrailExactSequence(t *testing.T) {
	c, err := RunWhy(ScaleOutageSpec, decision.ControlKinds(), 1, 1, 0)
	if err != nil {
		t.Fatalf("RunWhy: %v", err)
	}
	trail := decision.Trail(c.Decisions().Records())
	const want = "cordon,failover,scale-up,scale-up,drain,drain"
	if got := decision.TrailString(trail); got != want {
		t.Fatalf("trail = %q, want %q", got, want)
	}
	// The failover route must postdate its cordon and carry the
	// failover input that marks rerouted traffic.
	if trail[1].Rec.At < trail[0].Rec.At {
		t.Fatalf("failover at %v precedes cordon at %v", trail[1].Rec.At, trail[0].Rec.At)
	}
	if _, ok := trail[1].Rec.Input("failover"); !ok {
		t.Fatal("failover step lacks the failover input")
	}
	// Scale directions must agree with the labels.
	for _, step := range trail[2:] {
		act, _ := step.Rec.Input("act")
		switch step.Label {
		case "scale-up":
			if act != "up" {
				t.Fatalf("scale-up step has act=%q", act)
			}
		case "drain":
			if act != "down" {
				t.Fatalf("drain step has act=%q", act)
			}
		}
	}
}

// TestShardedMatchesSerialWhy extends the shard-invariance matrix to
// the decision log: the rendered why table — trail timestamps, margins,
// and the Σ counts of every recorded decision — must be byte-identical
// whether the rig runs serially or across per-host engine shards.
func TestShardedMatchesSerialWhy(t *testing.T) {
	if testing.Short() {
		t.Skip("outage rig at three shard widths")
	}
	serial := shardedTable(t, "why", 1, 1)
	for _, shards := range []int{2, 4} {
		if got := shardedTable(t, "why", 1, shards); got != serial {
			t.Errorf("why table at %d shards differs from serial.\n--- serial ---\n%s--- %d shards ---\n%s",
				shards, serial, shards, got)
		}
	}
}
