package experiments

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig1a reproduces Figure 1(a): the slowdown of ua (spinning),
// raytrace (user-level work stealing) and fluidanimate (blocking) in a
// 4-vCPU VM with one interfered vCPU, relative to running alone.
func Fig1a(opt Options) Table { return runFigure(opt, fig1a) }

func fig1a(h *harness) Table {
	rows := [][]string{}
	cases := []struct {
		name string
		mode workload.SyncMode
	}{
		{"UA", workload.SyncSpinning},
		{"raytrace", 0},
		{"fluidanimate", 0},
	}
	for _, c := range cases {
		bench, ok := workload.ByName(c.name)
		if !ok {
			continue
		}
		alone := h.measure(setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: c.mode,
			strat: hypervisor.StrategyVanilla, inter: hogs(0)})
		inter := h.measure(setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: c.mode,
			strat: hypervisor.StrategyVanilla, inter: hogs(1)})
		slow := 0.0
		if alone.fgRuntime > 0 {
			slow = inter.fgRuntime / alone.fgRuntime
		}
		rows = append(rows, []string{c.name, f2(slow)})
	}
	return Table{
		ID:      "fig1a",
		Title:   "Slowdown with one interfered vCPU (relative to no interference)",
		Columns: []string{"benchmark", "slowdown"},
		Rows:    rows,
	}
}

// Fig1b reproduces Figure 1(b): the latency of migrating a process off
// a vCPU that suffers preemptions, as a function of how many
// compute-bound VMs share the source pCPU (paper: 1 ms alone, then
// 26.4/53.2/79.8 ms — one Xen scheduling delay per added VM).
func Fig1b(opt Options) Table { return runFigure(opt, fig1b) }

func fig1b(h *harness) Table {
	rows := [][]string{}
	for nVMs := 0; nVMs <= 3; nVMs++ {
		lat := migrationLatencyJob(h, nVMs)
		label := "alone"
		if nVMs > 0 {
			label = fmt.Sprintf("%dVM", nVMs)
		}
		rows = append(rows, []string{label, fmt.Sprintf("%.1fms", lat.Milliseconds())})
	}
	return Table{
		ID:      "fig1b",
		Title:   "Process migration latency from a contended vCPU (mean of 30 probes)",
		Columns: []string{"co-located VMs", "latency"},
		Rows:    rows,
	}
}

// migrationLatencyJob wraps one migrationLatency rig as a harness job
// so Fig 1(b)'s four rigs (and claim C3's three) fan out in parallel.
func migrationLatencyJob(h *harness, nVMs int) sim.Time {
	opt := h.opt
	return jobAs(h, fmt.Sprintf("fig1b|%d", nVMs), func() sim.Time {
		return migrationLatency(opt, nVMs)
	})
}

// migrationLatency builds the Fig 1(b) rig directly: a 2-vCPU VM with a
// busy task on vCPU 0, nVMs hog VMs sharing pCPU 0, and 30 forced
// migrations of the (running) task from vCPU 0 to vCPU 1.
func migrationLatency(opt Options, nVMs int) sim.Time {
	eng := sim.NewEngine()
	hc := hypervisor.DefaultConfig(2)
	hv := hypervisor.New(eng, hc)

	fgVM := hv.NewVM("fg", 2, 256, false)
	fgVM.VCPUs[0].Pin(hv.PCPU(0))
	fgVM.VCPUs[1].Pin(hv.PCPU(1))
	gc := guest.DefaultConfig()
	gc.Seed = opt.Seed
	kern := guest.NewKernel(hv, fgVM, gc)

	for i := 0; i < nVMs; i++ {
		vm := hv.NewVM(fmt.Sprintf("hog%d", i), 1, 256, false)
		vm.VCPUs[0].Pin(hv.PCPU(0))
		k := guest.NewKernel(hv, vm, guest.DefaultConfig())
		workload.NewHog(k, 1).Start()
		k.Start()
	}

	// The probe target: an endless compute task on guest CPU 0, held
	// there by affinity until probed.
	inst := workload.NewHog(kern, 1)
	inst.Start()
	task := kern.Tasks()[0]
	task.Affinity = kern.CPU(0)
	kern.Start()
	res := &metrics.Reservoir{}
	rng := sim.NewRNG(opt.Seed ^ 0xf191b)
	probes := 0
	var probe, waitPreempted func()
	// The paper measures migration away from "a vCPU with frequent
	// preemptions": each probe fires right after the source vCPU is
	// involuntarily descheduled (when contended), so the latency is the
	// stopper's wait for the vCPU to be scheduled again.
	waitPreempted = func() {
		if probes >= 30 {
			eng.Stop()
			return
		}
		if nVMs == 0 || fgVM.VCPUs[0].State() == hypervisor.StateRunnable {
			probe()
			return
		}
		eng.After(rng.Jitter(500*sim.Microsecond, 0.5), "fig1b-poll", waitPreempted)
	}
	probe = func() {
		probes++
		kern.MigrationLatencyProbe(task, kern.CPU(1), func(lat sim.Time) {
			res.Add(lat)
			// Move it straight back from the uncontended side, then let
			// it run on the contended vCPU long enough for the credit
			// state to re-equilibrate before the next probe.
			eng.After(rng.Jitter(5*sim.Millisecond, 0.4), "fig1b-back", func() {
				kern.MigrationLatencyProbe(task, kern.CPU(0), func(sim.Time) {
					eng.After(rng.Jitter(300*sim.Millisecond, 0.4), "fig1b-next", waitPreempted)
				})
			})
		})
	}
	eng.After(500*sim.Millisecond, "fig1b-start", waitPreempted)
	_ = eng.Run(120 * sim.Second)
	return res.Mean()
}
