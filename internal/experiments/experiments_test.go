package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func fastOpts() Options { return Options{Runs: 1, Seed: 1} }

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tb.String()
	if !strings.Contains(s, "== x: demo ==") {
		t.Fatalf("missing header: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
	// Columns align: every row has the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned rows: %q vs %q", lines[1], lines[2])
	}
}

func TestIDsAllResolve(t *testing.T) {
	// Only checks registration, not execution (the heavy figures run in
	// the bench harness).
	for _, id := range IDs() {
		if id == "" {
			t.Fatal("empty id")
		}
	}
	if _, ok := ByID("nope", fastOpts()); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestFig1aShape(t *testing.T) {
	tb := Fig1a(fastOpts())
	if len(tb.Rows) != 3 {
		t.Fatalf("fig1a rows = %d, want 3", len(tb.Rows))
	}
	slow := map[string]float64{}
	for _, r := range tb.Rows {
		var v float64
		if _, err := sscanf(r[1], &v); err != nil {
			t.Fatalf("bad slowdown cell %q", r[1])
		}
		slow[r[0]] = v
	}
	// Figure 1(a): ua and fluidanimate slow down substantially;
	// raytrace stays near 1.
	if slow["UA"] < 1.5 {
		t.Fatalf("UA slowdown %.2f, want >= 1.5", slow["UA"])
	}
	if slow["fluidanimate"] < 1.3 {
		t.Fatalf("fluidanimate slowdown %.2f, want >= 1.3", slow["fluidanimate"])
	}
	if slow["raytrace"] > 1.45 {
		t.Fatalf("raytrace slowdown %.2f, want resilient (< 1.45)", slow["raytrace"])
	}
	if slow["raytrace"] >= slow["UA"] {
		t.Fatal("raytrace should be more resilient than UA")
	}
}

func TestFig1bStaircase(t *testing.T) {
	tb := Fig1b(fastOpts())
	if len(tb.Rows) != 4 {
		t.Fatalf("fig1b rows = %d", len(tb.Rows))
	}
	var lats []float64
	for _, r := range tb.Rows {
		var v float64
		if _, err := sscanf(strings.TrimSuffix(r[1], "ms"), &v); err != nil {
			t.Fatalf("bad latency cell %q", r[1])
		}
		lats = append(lats, v)
	}
	// Monotonically increasing staircase; alone is ~instant, each VM
	// adds on the order of a scheduling delay.
	for i := 1; i < len(lats); i++ {
		if lats[i] <= lats[i-1] {
			t.Fatalf("staircase not increasing: %v", lats)
		}
	}
	if lats[0] > 2 {
		t.Fatalf("alone latency %.1fms, want ~0-1ms", lats[0])
	}
	if lats[1] < 10 {
		t.Fatalf("1VM latency %.1fms, want >= 10ms (one Xen slice)", lats[1])
	}
}

func TestSADelayInPaperRange(t *testing.T) {
	tb := SADelay(fastOpts())
	var mean string
	for _, r := range tb.Rows {
		if r[0] == "mean SA delay" {
			mean = r[1]
		}
	}
	if mean == "" {
		t.Fatal("no mean SA delay row")
	}
	if !strings.Contains(mean, "µs") {
		t.Fatalf("mean SA delay %q not in microseconds", mean)
	}
	var v float64
	if _, err := sscanf(strings.TrimSuffix(mean, "µs"), &v); err != nil {
		t.Fatalf("bad delay %q", mean)
	}
	// Paper: 20-26µs.
	if v < 10 || v > 40 {
		t.Fatalf("mean SA delay %.1fµs, want 10-40", v)
	}
}

func TestHarnessCachesBaselines(t *testing.T) {
	h := newHarness(fastOpts())
	bench, _ := workload.ByName("EP")
	s := setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: workload.SyncBlocking, inter: hogs(1)}
	base := s
	base.strat = StrategyVanillaForTest()
	p1 := h.measure(base)
	p2 := h.measure(base)
	if p1 != p2 {
		t.Fatal("cache miss for identical setup")
	}
	if len(h.cache) != 1 {
		t.Fatalf("cache has %d entries, want 1", len(h.cache))
	}
}

func TestImprovementSymmetry(t *testing.T) {
	// improvement(vanilla vs vanilla) must be ~0.
	h := newHarness(fastOpts())
	bench, _ := workload.ByName("EP")
	s := setup{pcpus: 4, fgVCPUs: 4, bench: bench, mode: workload.SyncBlocking, inter: hogs(1)}
	if imp := h.improvement(s, StrategyVanillaForTest()); imp != 0 {
		t.Fatalf("vanilla self-improvement = %.2f, want 0", imp)
	}
}

func sscanf(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

// StrategyVanillaForTest avoids importing core in every assertion site.
func StrategyVanillaForTest() core.Strategy { return core.StrategyVanilla }
