package workload

import (
	"fmt"
	"sort"

	"repro/internal/guest"
	"repro/internal/sim"
)

// Kind discriminates the program family a benchmark belongs to.
type Kind int

const (
	// KindParallel is a data-parallel loop (barriers and/or locks).
	KindParallel Kind = iota + 1
	// KindPipeline is pipeline parallelism with per-stage thread pools.
	KindPipeline
	// KindWorkSteal is user-level work stealing.
	KindWorkSteal
)

// Benchmark is a catalog entry. Exactly one of the spec fields is used
// according to Kind. The parameters encode each benchmark's
// synchronization structure and granularity as characterised in the
// paper (§2.3, §5.1, §5.5); absolute work is scaled to a few virtual
// seconds per run.
type Benchmark struct {
	Name      string
	Suite     string // "parsec" or "npb"
	Kind      Kind
	Parallel  ParallelSpec
	Pipeline  PipelineSpec
	WorkSteal WorkStealSpec
}

// Instantiate creates the benchmark on kern. mode overrides the
// synchronization wait policy for KindParallel benchmarks (NPB runs
// blocking in Fig. 2 with OMP_WAIT_POLICY=passive and spinning in the
// main evaluation with active).
func (b Benchmark) Instantiate(kern *guest.Kernel, mode SyncMode, seed uint64) *Instance {
	switch b.Kind {
	case KindParallel:
		spec := b.Parallel
		if mode != 0 {
			spec.Mode = mode
		}
		return NewParallel(kern, spec, seed)
	case KindPipeline:
		return NewPipeline(kern, b.Pipeline, seed)
	case KindWorkSteal:
		return NewWorkSteal(kern, b.WorkSteal, seed)
	default:
		panic(fmt.Sprintf("workload: bad kind %d for %s", b.Kind, b.Name))
	}
}

// DefaultMode returns the benchmark's native wait policy.
func (b Benchmark) DefaultMode() SyncMode {
	if b.Kind == KindParallel {
		return b.Parallel.Mode
	}
	return SyncBlocking
}

// par is a helper to build ParallelSpec catalog entries.
func par(name, suite string, mode SyncMode, iters int, work sim.Time, imb float64, locks int, cs sim.Time, barrierEvery int) Benchmark {
	return Benchmark{
		Name:  name,
		Suite: suite,
		Kind:  KindParallel,
		Parallel: ParallelSpec{
			Name:         name,
			Mode:         mode,
			Iterations:   iters,
			Work:         work,
			Imbalance:    imb,
			LocksPerIter: locks,
			CSLen:        cs,
			BarrierEvery: barrierEvery,
		},
	}
}

// PARSEC returns the 12 PARSEC benchmarks of Figure 5, modelled by
// their dominant synchronization structure (pthread, blocking).
func PARSEC() []Benchmark {
	ms := sim.Millisecond
	us := sim.Microsecond
	return []Benchmark{
		// blackscholes: coarse pthread barriers between price sweeps.
		par("blackscholes", "parsec", SyncBlocking, 12, 250*ms, 0.05, 0, 0, 1),
		// dedup: 4-stage pipeline, 4 threads per stage.
		{Name: "dedup", Suite: "parsec", Kind: KindPipeline, Pipeline: PipelineSpec{
			Name: "dedup", Stages: 4, ThreadsPerStage: 4, Items: 600,
			WorkPerStage: 1200 * us, Imbalance: 0.3, QueueCap: 8,
		}},
		// streamcluster: barrier every 20-30 ms (fine-grained, §5.1).
		par("streamcluster", "parsec", SyncBlocking, 140, 25*ms, 0.10, 0, 0, 1),
		// canneal: fine-grained lock-based element swaps, no barriers.
		par("canneal", "parsec", SyncBlocking, 450, 8*ms, 0.10, 6, 40*us, 0),
		// fluidanimate: very fine mutexes plus per-frame barriers.
		par("fluidanimate", "parsec", SyncBlocking, 80, 45*ms, 0.08, 30, 25*us, 1),
		// vips: image pipeline approximated as mid-grained barriers+locks.
		par("vips", "parsec", SyncBlocking, 250, 13*ms, 0.15, 2, 50*us, 1),
		// bodytrack: condvar/barrier per processing stage, fine-grained.
		par("bodytrack", "parsec", SyncBlocking, 260, 12*ms, 0.12, 1, 60*us, 1),
		// ferret: 5-stage pipeline, 4 threads per stage.
		{Name: "ferret", Suite: "parsec", Kind: KindPipeline, Pipeline: PipelineSpec{
			Name: "ferret", Stages: 5, ThreadsPerStage: 4, Items: 500,
			WorkPerStage: 1200 * us, Imbalance: 0.3, QueueCap: 8,
		}},
		// swaptions: embarrassingly parallel, one final join.
		par("swaptions", "parsec", SyncBlocking, 8, 400*ms, 0.05, 0, 0, 8),
		// x264: exclusively mutex-based point-to-point sync (§5.5).
		par("x264", "parsec", SyncBlocking, 280, 11*ms, 0.18, 4, 80*us, 0),
		// raytrace: user-level work stealing.
		{Name: "raytrace", Suite: "parsec", Kind: KindWorkSteal, WorkSteal: WorkStealSpec{
			Name: "raytrace", Chunks: 700, ChunkWork: 4500 * us, Imbalance: 0.4, GrabCS: 5 * us,
		}},
		// facesim: fine-grained barriers per physics sub-step.
		par("facesim", "parsec", SyncBlocking, 220, 14*ms, 0.10, 0, 0, 1),
	}
}

// NPB returns the 9 NAS Parallel Benchmarks of Figure 6 (OpenMP,
// barrier-style group synchronization; wait policy set per experiment).
func NPB() []Benchmark {
	ms := sim.Millisecond
	return []Benchmark{
		par("BT", "npb", SyncSpinning, 160, 22*ms, 0.08, 0, 0, 1),
		par("LU", "npb", SyncSpinning, 230, 15*ms, 0.10, 0, 0, 1),
		par("CG", "npb", SyncSpinning, 500, 6*ms, 0.08, 0, 0, 1),
		par("EP", "npb", SyncSpinning, 8, 420*ms, 0.04, 0, 0, 8),
		par("FT", "npb", SyncSpinning, 60, 60*ms, 0.06, 0, 0, 1),
		par("IS", "npb", SyncSpinning, 350, 5*ms, 0.12, 0, 0, 1),
		par("MG", "npb", SyncSpinning, 420, 7*ms, 0.10, 0, 0, 1),
		par("SP", "npb", SyncSpinning, 380, 9*ms, 0.08, 0, 0, 1),
		par("UA", "npb", SyncSpinning, 420, 8*ms, 0.14, 0, 0, 1),
	}
}

// ByName finds a benchmark in the combined catalog.
func ByName(name string) (Benchmark, bool) {
	for _, b := range append(PARSEC(), NPB()...) {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names lists all catalog benchmark names, sorted.
func Names() []string {
	var ns []string
	for _, b := range append(PARSEC(), NPB()...) {
		ns = append(ns, b.Name)
	}
	sort.Strings(ns)
	return ns
}
