package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/guest"
	"repro/internal/sim"
)

// This file models adversarial tenants: guest programs that game the
// credit scheduler's accounting instead of doing useful work, after
// "Scheduler Vulnerabilities and Attacks in Cloud Computing" (Zhou et
// al., PAPERS.md). Two attack families are implemented:
//
//   - tick-evade: the guest knows the hypervisor samples credit debits
//     on a periodic tick (Xen credit1: 10 ms, aligned). It computes
//     wall-clock phase, runs flat out between ticks, and sleeps across
//     each sampling instant — so under vanilla accounting it is never
//     on-CPU when the bill arrives. Sleeping also re-enters BOOST on
//     every wake, compounding the theft.
//   - boost-game: a sleep/wake duty cycle tuned to re-enter the
//     transient PrioBoost class as often as the ratelimit allows,
//     jumping honest CPU-bound tenants in the runqueue.
//
// Both are deterministic and seeded; the optional jitter knob perturbs
// the attacker's own timing (modelling imperfect guest timers) from a
// forked per-thread stream, never from global state.

// AttackKind discriminates the attacker families.
type AttackKind int

const (
	// AttackNone is the zero spec: no attacker.
	AttackNone AttackKind = iota
	// AttackTickEvade sleeps across each credit-sampling tick.
	AttackTickEvade
	// AttackBoostGame sleep/wake cycles to farm BOOST priority.
	AttackBoostGame
)

func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackTickEvade:
		return "tick-evade"
	case AttackBoostGame:
		return "boost-game"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// AttackSpec parameterizes one attacker. The zero value is "no
// attacker"; unset fields take the defaults documented per field (see
// withDefaults). Specs parse from strings (ParseAttack) so the CLIs can
// drive attackers from flags, mirroring fault.ParsePlan.
type AttackSpec struct {
	Kind AttackKind

	// Period is the sampling tick the evader hides from (default: the
	// hypervisor's 10 ms credit tick).
	Period sim.Time
	// Margin is how long before each predicted tick the evader goes to
	// sleep — its safety margin against dispatch latency (default
	// 500 µs).
	Margin sim.Time
	// Resume is how long after the predicted tick the evader wakes
	// (default 50 µs).
	Resume sim.Time

	// Run and Sleep are the boost-gamer's duty cycle: run flat out for
	// Run, sleep Sleep to re-arm the wake boost (defaults 900 µs /
	// 100 µs — just above the 1 ms ratelimit when combined).
	Run   sim.Time
	Sleep sim.Time

	// Threads is how many attacker tasks to spawn (default 1; they are
	// placed round-robin over the guest CPUs).
	Threads int

	// Jitter scales each cycle's durations by a uniform factor in
	// [1-Jitter, 1+Jitter] from a seeded per-thread stream, modelling
	// an attacker with imperfect timer knowledge. 0 = exact timing.
	Jitter float64
}

// Zero reports whether the spec describes no attacker.
func (s AttackSpec) Zero() bool { return s == AttackSpec{} }

// withDefaults fills unset fields with the documented defaults.
func (s AttackSpec) withDefaults() AttackSpec {
	if s.Period == 0 {
		s.Period = 10 * sim.Millisecond
	}
	if s.Margin == 0 {
		s.Margin = 500 * sim.Microsecond
	}
	if s.Resume == 0 {
		s.Resume = 50 * sim.Microsecond
	}
	if s.Run == 0 {
		s.Run = 900 * sim.Microsecond
	}
	if s.Sleep == 0 {
		s.Sleep = 100 * sim.Microsecond
	}
	if s.Threads == 0 {
		s.Threads = 1
	}
	return s
}

// Validate rejects malformed specs: fields without a kind, negative or
// out-of-range knobs, or an evasion window wider than the period.
func (s AttackSpec) Validate() error {
	if s.Kind == AttackNone {
		if !s.Zero() {
			return fmt.Errorf("workload: attack fields set without a kind")
		}
		return nil
	}
	if s.Kind != AttackTickEvade && s.Kind != AttackBoostGame {
		return fmt.Errorf("workload: unknown attack kind %d", int(s.Kind))
	}
	durs := []struct {
		name string
		v    sim.Time
	}{
		{"period", s.Period}, {"margin", s.Margin}, {"resume", s.Resume},
		{"run", s.Run}, {"sleep", s.Sleep},
	}
	for _, d := range durs {
		if d.v < 0 {
			return fmt.Errorf("workload: attack %s=%v negative", d.name, d.v)
		}
	}
	if s.Threads < 0 {
		return fmt.Errorf("workload: attack threads=%d negative", s.Threads)
	}
	if s.Jitter < 0 || s.Jitter >= 1 {
		return fmt.Errorf("workload: attack jitter=%v outside [0, 1)", s.Jitter)
	}
	d := s.withDefaults()
	if d.Margin+d.Resume >= d.Period {
		return fmt.Errorf("workload: attack margin+resume (%v) must be below period (%v)",
			(d.Margin + d.Resume).Std(), d.Period.Std())
	}
	return nil
}

// String renders the spec as a canonical string ParseAttack accepts:
// the kind followed by comma-separated key=value pairs in fixed order,
// zero (defaulted) fields omitted. The zero spec renders as "none".
func (s AttackSpec) String() string {
	if s.Kind == AttackNone {
		return "none"
	}
	parts := []string{s.Kind.String()}
	dur := func(key string, v sim.Time) {
		if v != 0 {
			parts = append(parts, key+"="+v.Std().String())
		}
	}
	dur("period", s.Period)
	dur("margin", s.Margin)
	dur("resume", s.Resume)
	dur("run", s.Run)
	dur("sleep", s.Sleep)
	if s.Threads != 0 {
		parts = append(parts, "threads="+strconv.Itoa(s.Threads))
	}
	if s.Jitter != 0 {
		parts = append(parts, "jitter="+strconv.FormatFloat(s.Jitter, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// ParseAttack parses an attacker spec: a kind ("tick-evade" or
// "boost-game") optionally followed by comma-separated key=value pairs
// (period, margin, resume, run, sleep as Go durations; threads as an
// int; jitter as a float in [0,1)). "", "none" and "off" parse as the
// zero spec. The result of AttackSpec.String always round-trips.
func ParseAttack(spec string) (AttackSpec, error) {
	var s AttackSpec
	spec = strings.TrimSpace(spec)
	switch strings.ToLower(spec) {
	case "", "none", "off":
		return s, nil
	}
	fields := strings.Split(spec, ",")
	switch strings.ToLower(strings.TrimSpace(fields[0])) {
	case "tick-evade":
		s.Kind = AttackTickEvade
	case "boost-game":
		s.Kind = AttackBoostGame
	default:
		return AttackSpec{}, fmt.Errorf("workload: unknown attack kind %q (want tick-evade or boost-game)", strings.TrimSpace(fields[0]))
	}
	durFields := map[string]*sim.Time{
		"period": &s.Period,
		"margin": &s.Margin,
		"resume": &s.Resume,
		"run":    &s.Run,
		"sleep":  &s.Sleep,
	}
	seen := map[string]bool{}
	for _, part := range fields[1:] {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return AttackSpec{}, fmt.Errorf("workload: attack %q is not key=value", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if seen[key] {
			return AttackSpec{}, fmt.Errorf("workload: duplicate attack key %q", key)
		}
		seen[key] = true
		switch {
		case durFields[key] != nil:
			d, err := time.ParseDuration(val)
			if err != nil {
				return AttackSpec{}, fmt.Errorf("workload: attack %s: %v", key, err)
			}
			*durFields[key] = sim.Duration(d)
		case key == "threads":
			n, err := strconv.Atoi(val)
			if err != nil {
				return AttackSpec{}, fmt.Errorf("workload: attack threads: %v", err)
			}
			s.Threads = n
		case key == "jitter":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return AttackSpec{}, fmt.Errorf("workload: attack jitter: %v", err)
			}
			s.Jitter = f
		default:
			return AttackSpec{}, fmt.Errorf("workload: unknown attack key %q", key)
		}
	}
	if err := s.Validate(); err != nil {
		return AttackSpec{}, err
	}
	return s, nil
}

// tickEvadeProg runs until just before each predicted sampling tick,
// then sleeps across it. The phase arithmetic works on wall clock, so a
// preemption that delays the compute segment past the danger window is
// detected and the pointless sleep skipped.
type tickEvadeProg struct {
	spec AttackSpec
	rng  *sim.RNG
}

func (p *tickEvadeProg) Step(t *guest.Task) guest.Action {
	now := t.Kernel().Now()
	margin := p.rng.Jitter(p.spec.Margin, p.spec.Jitter)
	phase := now % p.spec.Period
	runFor := p.spec.Period - margin - phase
	if runFor < 0 {
		runFor = 0
	}
	return guest.RunThen(runFor, func(t *guest.Task, resume func()) {
		k := t.Kernel()
		ph := k.Now() % p.spec.Period
		if ph >= p.spec.Period-margin {
			// Inside the danger window: hide from the imminent tick and
			// come back just after it — with a fresh BOOST, no less.
			k.SleepTask(t, p.spec.Period-ph+p.spec.Resume, resume)
			return
		}
		// The compute segment was stretched past the tick by contention;
		// sleeping now would only waste runnable time.
		resume()
	})
}

// boostGameProg is a plain duty cycle: run, sleep, wake boosted,
// repeat.
type boostGameProg struct {
	spec AttackSpec
	rng  *sim.RNG
}

func (p *boostGameProg) Step(t *guest.Task) guest.Action {
	run := p.rng.Jitter(p.spec.Run, p.spec.Jitter)
	return guest.RunThen(run, func(t *guest.Task, resume func()) {
		t.Kernel().SleepTask(t, p.rng.Jitter(p.spec.Sleep, p.spec.Jitter), resume)
	})
}

// NewAttacker instantiates the attacker described by spec on kern.
// Attackers never finish (Endless, like hogs); spec defaults are
// applied here, so sparse parsed specs work directly.
func NewAttacker(kern *guest.Kernel, spec AttackSpec, seed uint64) *Instance {
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	if spec.Kind == AttackNone {
		panic("workload: NewAttacker with no attack kind")
	}
	spec = spec.withDefaults()
	in := &Instance{Name: "attack-" + spec.Kind.String(), kern: kern, Endless: true}
	in.spawn = func() {
		rng := sim.NewRNG(seed ^ 0xa77acc)
		for i := 0; i < spec.Threads; i++ {
			var prog guest.Program
			switch spec.Kind {
			case AttackTickEvade:
				prog = &tickEvadeProg{spec: spec, rng: rng.Fork(uint64(i))}
			default:
				prog = &boostGameProg{spec: spec, rng: rng.Fork(uint64(i))}
			}
			kern.Spawn(fmt.Sprintf("atk-%d", i), prog, i%len(kern.CPUs()))
		}
	}
	return in
}
