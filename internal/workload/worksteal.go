package workload

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/sim"
)

// WorkStealSpec models raytrace-style user-level load balancing: a
// shared pool of work chunks that threads grab through a tiny critical
// section. A slowed thread simply takes fewer chunks, so interference
// is absorbed — the resilience shown in Figures 1(a) and 2.
type WorkStealSpec struct {
	Name    string
	Threads int // 0 = one per vCPU
	Chunks  int
	// ChunkWork is the mean compute per chunk.
	ChunkWork sim.Time
	Imbalance float64
	// GrabCS is the critical-section length of taking a chunk.
	GrabCS sim.Time
}

// TotalWork returns the nominal aggregate compute of one run.
func (s WorkStealSpec) TotalWork() sim.Time {
	return sim.Time(s.Chunks) * s.ChunkWork
}

type stealShared struct {
	spec WorkStealSpec
	pool int
	lk   *guestsync.SpinLock
	rng  *sim.RNG
}

type stealWorker struct {
	sh   *stealShared
	done bool
	rng  *sim.RNG
}

// Step implements guest.Program: grab a chunk (short spinlock CS),
// compute it, repeat until the pool drains.
func (w *stealWorker) Step(t *guest.Task) guest.Action {
	if w.done {
		return guest.Exit()
	}
	sh := w.sh
	return guest.RunThen(0, func(t *guest.Task, resume func()) {
		sh.lk.Lock(t, func() {
			got := sh.pool > 0
			if got {
				sh.pool--
			}
			t.Kernel().RunInTask(t, sh.spec.GrabCS, func() {
				sh.lk.Unlock(t)
				if !got {
					w.done = true
					resume()
					return
				}
				work := w.rng.Jitter(sh.spec.ChunkWork, sh.spec.Imbalance)
				t.Kernel().RunInTask(t, work, resume)
			})
		})
	})
}

// NewWorkSteal instantiates a work-stealing benchmark on kern.
func NewWorkSteal(kern *guest.Kernel, spec WorkStealSpec, seed uint64) *Instance {
	threads := spec.Threads
	if threads <= 0 {
		threads = len(kern.CPUs())
	}
	in := &Instance{Name: spec.Name, kern: kern}
	in.spawn = func() {
		sh := &stealShared{
			spec: spec,
			pool: spec.Chunks,
			lk:   guestsync.NewSpinLock(kern),
			rng:  sim.NewRNG(seed ^ 0x57ea1),
		}
		for i := 0; i < threads; i++ {
			w := &stealWorker{sh: sh, rng: sh.rng.Fork(uint64(i))}
			kern.Spawn(fmt.Sprintf("%s-%d", spec.Name, i), w, i%len(kern.CPUs()))
		}
	}
	return in
}
