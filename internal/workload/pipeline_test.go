package workload_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestPipelineBackpressure(t *testing.T) {
	// Stage 1 is much slower than stage 0; the bounded queue must
	// throttle the producer rather than grow without bound, and the
	// run must still complete.
	eng, kern := rig(t, 2)
	spec := workload.PipelineSpec{
		Name: "bp", Stages: 2, ThreadsPerStage: 1, Items: 50,
		WorkPerStage: 2 * sim.Millisecond, QueueCap: 2,
	}
	in := workload.NewPipeline(kern, spec, 1)
	runInstance(t, eng, kern, in, 30*sim.Second)
	// Producer and consumer have equal per-item work here; runtime is
	// dominated by the slowest stage: ~50 × 2ms plus pipeline fill.
	if in.Runtime() < 100*sim.Millisecond {
		t.Fatalf("runtime %v implausibly fast", in.Runtime())
	}
}

func TestPipelineManyStagesDrain(t *testing.T) {
	eng, kern := rig(t, 4)
	spec := workload.PipelineSpec{
		Name: "deep", Stages: 5, ThreadsPerStage: 4, Items: 120,
		WorkPerStage: 300 * sim.Microsecond, Imbalance: 0.4, QueueCap: 8,
	}
	in := workload.NewPipeline(kern, spec, 7)
	runInstance(t, eng, kern, in, 60*sim.Second)
	if kern.LiveTasks() != 0 {
		t.Fatalf("%d tasks leaked", kern.LiveTasks())
	}
}

func TestPipelineUnevenItemSplit(t *testing.T) {
	// Items not divisible by the stage-0 thread count must still all be
	// produced and consumed.
	eng, kern := rig(t, 2)
	spec := workload.PipelineSpec{
		Name: "odd", Stages: 2, ThreadsPerStage: 3, Items: 10,
		WorkPerStage: 200 * sim.Microsecond, QueueCap: 4,
	}
	in := workload.NewPipeline(kern, spec, 1)
	runInstance(t, eng, kern, in, 30*sim.Second)
	if in.Completions != 1 {
		t.Fatal("pipeline with uneven split did not finish")
	}
}

func TestPipelinePanicsOnSingleStage(t *testing.T) {
	_, kern := rig(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a 1-stage pipeline")
		}
	}()
	workload.NewPipeline(kern, workload.PipelineSpec{
		Name: "bad", Stages: 1, ThreadsPerStage: 1, Items: 1, WorkPerStage: sim.Millisecond,
	}, 1)
}

func TestParallelTotalWork(t *testing.T) {
	spec := workload.ParallelSpec{
		Iterations: 10, Work: 5 * sim.Millisecond,
		LocksPerIter: 2, CSLen: 100 * sim.Microsecond,
	}
	want := sim.Time(10) * (5*sim.Millisecond + 200*sim.Microsecond)
	if got := spec.TotalWork(); got != want {
		t.Fatalf("TotalWork = %v, want %v", got, want)
	}
}

func TestImbalanceIncreasesBarrierWait(t *testing.T) {
	// Higher per-iteration jitter means more time lost at barriers:
	// runtime grows with Imbalance for the same nominal work.
	run := func(imb float64) sim.Time {
		eng, kern := rig(t, 4)
		spec := workload.ParallelSpec{
			Name: "imb", Mode: workload.SyncBlocking,
			Iterations: 100, Work: 5 * sim.Millisecond,
			Imbalance: imb, BarrierEvery: 1,
		}
		in := workload.NewParallel(kern, spec, 3)
		runInstance(t, eng, kern, in, 30*sim.Second)
		return in.Runtime()
	}
	smooth := run(0)
	jittery := run(0.5)
	if jittery <= smooth {
		t.Fatalf("imbalance 0.5 runtime %v <= balanced %v", jittery, smooth)
	}
}

func TestTicketLockSpecSelectsFIFO(t *testing.T) {
	eng, kern := rig(t, 2)
	spec := workload.ParallelSpec{
		Name: "tl", Mode: workload.SyncSpinning, Threads: 2,
		Iterations: 20, Work: sim.Millisecond,
		LocksPerIter: 2, CSLen: 50 * sim.Microsecond,
		TicketLock: true,
	}
	in := workload.NewParallel(kern, spec, 1)
	runInstance(t, eng, kern, in, 30*sim.Second)
	if in.Runtime() <= 0 {
		t.Fatal("ticket-lock workload did not run")
	}
}

func TestWorkStealTotalWork(t *testing.T) {
	spec := workload.WorkStealSpec{Chunks: 10, ChunkWork: 3 * sim.Millisecond}
	if got := spec.TotalWork(); got != 30*sim.Millisecond {
		t.Fatalf("TotalWork = %v", got)
	}
}

func TestPipelineTotalWork(t *testing.T) {
	spec := workload.PipelineSpec{Stages: 4, Items: 10, WorkPerStage: sim.Millisecond}
	if got := spec.TotalWork(); got != 40*sim.Millisecond {
		t.Fatalf("TotalWork = %v", got)
	}
}
