package workload

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// ServerSpec models multi-threaded request-processing workloads
// (§5.3): SPECjbb-style warehouses (few threads, one per vCPU, modest
// service times, occasional shared lock) and ab-style webservers (many
// short-request threads per vCPU). Workers run a closed loop for
// Duration; each request's latency — queueing included — is recorded.
type ServerSpec struct {
	Name    string
	Threads int
	// Service is the mean request service time (exponentially
	// distributed).
	Service sim.Time
	// Think is the mean pause between requests (0 = saturated).
	Think sim.Time
	// LockEvery makes every n-th request acquire a shared mutex for
	// LockCS (0 = no locking).
	LockEvery int
	LockCS    sim.Time
	// Duration is how long the measurement runs.
	Duration sim.Time
	// Arrival, when non-zero, switches the server to an open loop:
	// requests arrive with exponential inter-arrival times (mean
	// Arrival) into a shared queue that the worker threads drain, so
	// latency includes queueing delay. Zero keeps the closed loop
	// (each worker issues its next request immediately).
	Arrival sim.Time
}

// ServerStats captures the paper's server metrics.
type ServerStats struct {
	Requests int64
	Latency  *metrics.Reservoir
	Elapsed  sim.Time
}

// Throughput returns completed requests per virtual second.
func (s *ServerStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Requests) / s.Elapsed.Seconds()
}

type serverShared struct {
	spec      ServerSpec
	stats     *ServerStats
	mu        *guestsync.Mutex
	rng       *sim.RNG
	startedAt sim.Time
	until     sim.Time
}

type serverWorker struct {
	sh   *serverShared
	rng  *sim.RNG
	reqs int
}

// Step implements guest.Program: one request per step.
func (w *serverWorker) Step(t *guest.Task) guest.Action {
	sh := w.sh
	if t.Kernel().Now() >= sh.until {
		return guest.Exit()
	}
	w.reqs++
	service := w.rng.Exp(sh.spec.Service)
	start := t.Kernel().Now()
	finish := func(resume func()) {
		sh.stats.Requests++
		sh.stats.Latency.Add(t.Kernel().Now() - start)
		if el := t.Kernel().Now() - sh.startedAt; el > sh.stats.Elapsed {
			sh.stats.Elapsed = el
		}
		if sh.spec.Think > 0 {
			t.Kernel().SleepTask(t, w.rng.Exp(sh.spec.Think), resume)
			return
		}
		resume()
	}
	locked := sh.spec.LockEvery > 0 && w.reqs%sh.spec.LockEvery == 0
	return guest.RunThen(service, func(t *guest.Task, resume func()) {
		if !locked {
			finish(resume)
			return
		}
		sh.mu.Lock(t, func() {
			t.Kernel().RunInTask(t, sh.spec.LockCS, func() {
				sh.mu.Unlock(t)
				finish(resume)
			})
		})
	})
}

// NewServer instantiates a server benchmark on kern. Stats gives access
// to throughput and latency percentiles after the run.
func NewServer(kern *guest.Kernel, spec ServerSpec, seed uint64) (*Instance, *ServerStats) {
	if spec.Threads <= 0 {
		spec.Threads = len(kern.CPUs())
	}
	stats := &ServerStats{Latency: &metrics.Reservoir{}}
	if spec.Arrival > 0 {
		return newOpenServer(kern, spec, seed, stats), stats
	}
	in := &Instance{Name: spec.Name, kern: kern}
	in.spawn = func() {
		sh := &serverShared{
			spec:      spec,
			stats:     stats,
			mu:        guestsync.NewMutex(kern),
			rng:       sim.NewRNG(seed ^ 0x5e2e2),
			startedAt: kern.Now(),
			until:     kern.Now() + spec.Duration,
		}
		for i := 0; i < spec.Threads; i++ {
			w := &serverWorker{sh: sh, rng: sh.rng.Fork(uint64(i))}
			kern.Spawn(fmt.Sprintf("%s-%d", spec.Name, i), w, i%len(kern.CPUs()))
		}
	}
	return in, stats
}

type hogProg struct{}

func (hogProg) Step(t *guest.Task) guest.Action {
	return guest.Run(10 * sim.Millisecond)
}

// NewHog instantiates an interference VM workload: n CPU hogs placed on
// the first n guest CPUs. Hogs never finish.
func NewHog(kern *guest.Kernel, n int) *Instance {
	in := &Instance{Name: "cpu-hog", kern: kern, Endless: true}
	in.spawn = func() {
		for i := 0; i < n; i++ {
			kern.Spawn(fmt.Sprintf("hog-%d", i), hogProg{}, i%len(kern.CPUs()))
		}
	}
	return in
}
