package workload_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func remoteRig(t *testing.T, threads int, service sim.Time) (*sim.Engine, *workload.Instance, *workload.RemoteGate) {
	t.Helper()
	eng, kern := rig(t, threads)
	in, gate := workload.NewRemoteServer(kern, workload.ServerSpec{
		Name: "remote", Threads: threads, Service: service,
	}, 1, nil)
	in.Start()
	kern.Start()
	return eng, in, gate
}

func TestRemoteGateServesSubmissions(t *testing.T) {
	eng, _, gate := remoteRig(t, 2, 1*sim.Millisecond)
	const n = 200
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 2 * sim.Millisecond
		eng.At(at, "submit", func() {
			if !gate.Submit(eng.Now()) {
				t.Error("submit rejected on an open gate")
			}
		})
	}
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gate.Submitted() != n || gate.Served() != n {
		t.Fatalf("submitted %d served %d, want %d", gate.Submitted(), gate.Served(), n)
	}
	if got := gate.Served() + gate.InFlight() + int64(gate.QueueLen()); got != gate.Submitted() {
		t.Fatalf("conservation: served+inflight+queued = %d, submitted = %d", got, gate.Submitted())
	}
}

func TestRemoteGateLatencyIncludesPreSubmitDelay(t *testing.T) {
	// A request carried across a migration keeps its original arrival
	// stamp; the 50 ms it spent in transit must show in the measured
	// latency even though the gate only saw it afterwards.
	eng, _, gate := remoteRig(t, 1, 1*sim.Millisecond)
	var lat sim.Time
	gate.OnServed = func(l sim.Time) { lat = l }
	eng.At(50*sim.Millisecond, "late-submit", func() {
		gate.Submit(0) // stamped at t=0, submitted at t=50ms
	})
	if err := eng.Run(1 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gate.Served() != 1 {
		t.Fatalf("served = %d, want 1", gate.Served())
	}
	if lat < 50*sim.Millisecond {
		t.Fatalf("latency %v does not include the 50ms pre-submit delay", lat)
	}
}

func TestRemoteGateCloseCarriesQueue(t *testing.T) {
	// One slow worker, a burst of requests, then an early close: the
	// requests no worker picked up come back for the migration to carry.
	eng, _, gate := remoteRig(t, 1, 10*sim.Millisecond)
	const n = 10
	var carried []workload.Request
	eng.At(1*sim.Millisecond, "burst", func() {
		for i := 0; i < n; i++ {
			gate.Submit(eng.Now())
		}
	})
	eng.At(5*sim.Millisecond, "close", func() {
		carried = gate.Close()
		if !gate.Closed() {
			t.Error("gate not closed after Close")
		}
		if gate.Submit(eng.Now()) {
			t.Error("submit accepted on a closed gate")
		}
	})
	if err := eng.Run(1 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(carried) == 0 {
		t.Fatal("close carried no queued requests")
	}
	if got := gate.Served() + int64(len(carried)); got != n {
		t.Fatalf("served %d + carried %d != submitted %d", gate.Served(), len(carried), n)
	}
	// Carried stamps are the original arrival times, all ≤ close time.
	for _, req := range carried {
		if req.Arrival > 5*sim.Millisecond {
			t.Fatalf("carried stamp %v is later than the close", req.Arrival)
		}
	}
	if gate.Close() != nil {
		t.Fatal("second Close returned a non-empty queue")
	}
}

func TestRemoteGateSubmitBeforeStartPanics(t *testing.T) {
	eng, kern := rig(t, 1)
	_, gate := workload.NewRemoteServer(kern, workload.ServerSpec{
		Name: "early", Threads: 1, Service: sim.Millisecond,
	}, 1, nil)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("Submit before Start did not panic")
		}
	}()
	gate.Submit(0)
}
