package workload_test

import (
	"testing"

	"repro/internal/workload"
)

// FuzzParseAttack asserts that arbitrary attacker specs never panic and
// that any spec ParseAttack accepts is valid and survives a String →
// ParseAttack round trip.
func FuzzParseAttack(f *testing.F) {
	seeds := []string{
		"",
		"none",
		"off",
		"tick-evade",
		"boost-game",
		"tick-evade,margin=500us,resume=100us",
		"tick-evade,period=10ms,margin=1ms,threads=2",
		"boost-game,run=900us,sleep=100us,jitter=0.1",
		"boost-game,run=2ms,sleep=50us,threads=4",
		"TICK-EVADE, margin = 1ms ",
		"tick-evade,margin=9ms,resume=2ms",
		"tick-evade,margin",
		"tick-evade,margin=xyz",
		"tick-evade,margin=1ms,margin=2ms",
		"tick-evade,bogus=1",
		"tick-evade,threads=-1",
		"tick-evade,jitter=1.5",
		"frobnicate",
		"=,=,=",
		"tick-evade,period=9223372036854775807ns,margin=1ns",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := workload.ParseAttack(spec)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseAttack(%q) accepted invalid spec %+v: %v", spec, s, err)
		}
		back, err := workload.ParseAttack(s.String())
		if err != nil {
			t.Fatalf("ParseAttack(%q) -> %q does not re-parse: %v", spec, s.String(), err)
		}
		if back != s {
			t.Fatalf("round trip of %q: %+v != %+v", spec, back, s)
		}
	})
}
