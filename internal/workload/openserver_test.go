package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestOpenLoopServerCompletes(t *testing.T) {
	eng, kern := rig(t, 2)
	spec := workload.ServerSpec{
		Name: "open", Threads: 2, Service: 2 * sim.Millisecond,
		Arrival:  2 * sim.Millisecond, // offered load ≈ capacity/2
		Duration: 2 * sim.Second,
	}
	in, stats := workload.NewServer(kern, spec, 1)
	runInstance(t, eng, kern, in, 20*sim.Second)
	if stats.Requests < 500 {
		t.Fatalf("requests = %d, want ~1000", stats.Requests)
	}
	// Offered 500 req/s; served throughput should be close.
	if thr := stats.Throughput(); thr < 400 || thr > 600 {
		t.Fatalf("throughput %.0f, want ~500", thr)
	}
}

func TestOpenLoopLatencyIncludesQueueing(t *testing.T) {
	// At high load (ρ≈0.9), mean latency must exceed the bare service
	// time substantially (M/M/c queueing delay).
	run := func(arrival sim.Time) sim.Time {
		eng, kern := rig(t, 2)
		spec := workload.ServerSpec{
			Name: "q", Threads: 2, Service: 2 * sim.Millisecond,
			Arrival: arrival, Duration: 3 * sim.Second,
		}
		in, stats := workload.NewServer(kern, spec, 1)
		runInstance(t, eng, kern, in, 30*sim.Second)
		return stats.Latency.Mean()
	}
	light := run(10 * sim.Millisecond)   // ρ = 0.1
	heavy := run(1100 * sim.Microsecond) // ρ ≈ 0.9
	if heavy <= light {
		t.Fatalf("heavy-load latency %v <= light-load %v", heavy, light)
	}
	if heavy < 3*sim.Millisecond {
		t.Fatalf("heavy-load latency %v shows no queueing", heavy)
	}
}

func TestOpenLoopTailExplodesUnderInterference(t *testing.T) {
	// The open loop shows the §5.3 effect sharply: a vCPU preemption
	// stalls in-service requests AND queues arrivals behind them, so
	// the p99 under interference is dominated by 30 ms scheduling
	// delays. IRS pulls it back down.
	point := func(strat core.Strategy) sim.Time {
		spec := workload.ServerSpec{
			Name: "tail", Threads: 4, Service: 2 * sim.Millisecond,
			Arrival: 1500 * sim.Microsecond, Duration: 5 * sim.Second,
		}
		vmSpec, stats := core.ServerVM("fg", spec, 4, core.SeqPins(0, 4))
		vmSpec.IRS = strat == core.StrategyIRS
		_, err := core.Run(core.Scenario{
			PCPUs: 4, Strategy: strat, Seed: 5,
			Horizon: 120 * sim.Second,
			VMs: []core.VMSpec{
				vmSpec,
				core.HogVM("bg", 2, core.SeqPins(0, 2)),
			},
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		return (*stats).Latency.Percentile(99)
	}
	van := point(core.StrategyVanilla)
	irs := point(core.StrategyIRS)
	if van < 10*sim.Millisecond {
		t.Fatalf("vanilla p99 %v; interference should push it past a scheduling delay", van)
	}
	if irs >= van {
		t.Fatalf("IRS p99 %v not better than vanilla %v", irs, van)
	}
}
