package workload_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
	"repro/internal/workload"
)

func rig(t *testing.T, nvcpus int) (*sim.Engine, *guest.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	hv := hypervisor.New(eng, hypervisor.DefaultConfig(nvcpus))
	vm := hv.NewVM("vm", nvcpus, 256, false)
	kern := guest.NewKernel(hv, vm, guest.DefaultConfig())
	return eng, kern
}

func runInstance(t *testing.T, eng *sim.Engine, kern *guest.Kernel, in *workload.Instance, horizon sim.Time) {
	t.Helper()
	in.OnFinish = func() { eng.Stop() }
	in.Start()
	kern.Start()
	if err := eng.Run(horizon); err != nil {
		t.Fatalf("run: %v", err)
	}
	if in.Completions != 1 {
		t.Fatalf("completions = %d, want 1", in.Completions)
	}
}

func TestCatalogComplete(t *testing.T) {
	parsec := workload.PARSEC()
	if len(parsec) != 12 {
		t.Fatalf("PARSEC catalog has %d entries, want 12 (Figure 5)", len(parsec))
	}
	npb := workload.NPB()
	if len(npb) != 9 {
		t.Fatalf("NPB catalog has %d entries, want 9 (Figure 6)", len(npb))
	}
	names := map[string]bool{}
	for _, b := range append(parsec, npb...) {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
	}
	for _, want := range []string{"dedup", "ferret", "raytrace", "x264", "EP", "UA"} {
		if !names[want] {
			t.Fatalf("missing benchmark %s", want)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, ok := workload.ByName("streamcluster"); !ok {
		t.Fatal("streamcluster not found")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Fatal("bogus name found")
	}
	if len(workload.Names()) != 21 {
		t.Fatalf("Names() = %d entries, want 21", len(workload.Names()))
	}
}

func TestEveryCatalogBenchmarkCompletesAlone(t *testing.T) {
	for _, b := range append(workload.PARSEC(), workload.NPB()...) {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			eng, kern := rig(t, 4)
			in := b.Instantiate(kern, 0, 1)
			runInstance(t, eng, kern, in, 120*sim.Second)
			if in.Runtime() <= 0 {
				t.Fatal("zero runtime")
			}
		})
	}
}

func TestParallelRuntimeTracksNominalWork(t *testing.T) {
	eng, kern := rig(t, 4)
	spec := workload.ParallelSpec{
		Name: "cal", Mode: workload.SyncBlocking,
		Iterations: 50, Work: 10 * sim.Millisecond, BarrierEvery: 1,
	}
	in := workload.NewParallel(kern, spec, 1)
	runInstance(t, eng, kern, in, 10*sim.Second)
	nominal := spec.TotalWork()
	if in.Runtime() < nominal || in.Runtime() > nominal*13/10 {
		t.Fatalf("runtime %v vs nominal %v", in.Runtime(), nominal)
	}
}

func TestParallelSpinningModeBurnsMoreCPU(t *testing.T) {
	mk := func(mode workload.SyncMode) (sim.Time, sim.Time) {
		eng, kern := rig(t, 4)
		spec := workload.ParallelSpec{
			Name: "m", Mode: mode, Iterations: 40,
			Work: 8 * sim.Millisecond, Imbalance: 0.4, BarrierEvery: 1,
		}
		in := workload.NewParallel(kern, spec, 1)
		runInstance(t, eng, kern, in, 30*sim.Second)
		var cpu sim.Time
		for _, tk := range kern.Tasks() {
			cpu += tk.CPUTime
		}
		return in.Runtime(), cpu
	}
	_, blockCPU := mk(workload.SyncBlocking)
	_, spinCPU := mk(workload.SyncSpinning)
	if spinCPU <= blockCPU {
		t.Fatalf("spinning CPU %v <= blocking CPU %v; spinners must burn cycles", spinCPU, blockCPU)
	}
}

func TestPipelineProcessesAllItems(t *testing.T) {
	eng, kern := rig(t, 4)
	spec := workload.PipelineSpec{
		Name: "pipe", Stages: 3, ThreadsPerStage: 2, Items: 100,
		WorkPerStage: 500 * sim.Microsecond, QueueCap: 4,
	}
	in := workload.NewPipeline(kern, spec, 1)
	runInstance(t, eng, kern, in, 60*sim.Second)
	// All 6 threads exited => all queues drained and closed.
	if kern.LiveTasks() != 0 {
		t.Fatalf("%d tasks still alive", kern.LiveTasks())
	}
}

func TestWorkStealDrainsPool(t *testing.T) {
	eng, kern := rig(t, 4)
	spec := workload.WorkStealSpec{
		Name: "ws", Chunks: 200, ChunkWork: sim.Millisecond, GrabCS: 2 * sim.Microsecond,
	}
	in := workload.NewWorkSteal(kern, spec, 1)
	runInstance(t, eng, kern, in, 30*sim.Second)
	// 200 chunks over 4 threads: ~50ms each in parallel.
	if in.Runtime() < 45*sim.Millisecond || in.Runtime() > 120*sim.Millisecond {
		t.Fatalf("runtime %v, want ~50-70ms", in.Runtime())
	}
}

func TestWorkStealAbsorbsImbalance(t *testing.T) {
	// A work-stealing pool should finish in ~total/threads even when
	// individual chunk sizes vary a lot.
	eng, kern := rig(t, 4)
	spec := workload.WorkStealSpec{
		Name: "ws", Chunks: 400, ChunkWork: sim.Millisecond,
		Imbalance: 0.5, GrabCS: 2 * sim.Microsecond,
	}
	in := workload.NewWorkSteal(kern, spec, 1)
	runInstance(t, eng, kern, in, 30*sim.Second)
	ideal := spec.TotalWork() / 4
	if in.Runtime() > ideal*3/2 {
		t.Fatalf("runtime %v vs ideal %v: stealing failed to balance", in.Runtime(), ideal)
	}
}

func TestServerRecordsLatencies(t *testing.T) {
	eng, kern := rig(t, 2)
	spec := workload.ServerSpec{
		Name: "srv", Threads: 2, Service: 2 * sim.Millisecond,
		Duration: 2 * sim.Second,
	}
	in, stats := workload.NewServer(kern, spec, 1)
	runInstance(t, eng, kern, in, 10*sim.Second)
	if stats.Requests < 100 {
		t.Fatalf("requests = %d, want many", stats.Requests)
	}
	if stats.Latency.Count() != int(stats.Requests) {
		t.Fatalf("latency samples %d != requests %d", stats.Latency.Count(), stats.Requests)
	}
	if stats.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	// Saturated 2 threads / 2 vCPUs at 2ms services: ~1000 req/s.
	if thr := stats.Throughput(); thr < 700 || thr > 1200 {
		t.Fatalf("throughput %.0f, want ~1000", thr)
	}
}

func TestServerWithThinkTime(t *testing.T) {
	eng, kern := rig(t, 2)
	spec := workload.ServerSpec{
		Name: "srv", Threads: 4, Service: sim.Millisecond,
		Think: 10 * sim.Millisecond, Duration: 2 * sim.Second,
	}
	in, stats := workload.NewServer(kern, spec, 1)
	runInstance(t, eng, kern, in, 10*sim.Second)
	// 4 closed-loop clients with ~11ms cycle: ~360 req/s.
	if thr := stats.Throughput(); thr < 250 || thr > 450 {
		t.Fatalf("throughput %.0f, want ~360", thr)
	}
}

func TestHogNeverFinishes(t *testing.T) {
	eng, kern := rig(t, 2)
	in := workload.NewHog(kern, 2)
	if !in.Endless {
		t.Fatal("hog not marked endless")
	}
	finished := false
	in.OnFinish = func() { finished = true }
	in.Start()
	kern.Start()
	_ = eng.Run(2 * sim.Second)
	if finished {
		t.Fatal("hog finished")
	}
	for _, tk := range kern.Tasks() {
		if tk.CPUTime < sim.Time(float64(2*sim.Second)*0.95) {
			t.Fatalf("hog %s only used %v of 2s", tk.Name, tk.CPUTime)
		}
	}
}

func TestRepeatingInstanceRespawns(t *testing.T) {
	eng, kern := rig(t, 2)
	spec := workload.ParallelSpec{
		Name: "bg", Mode: workload.SyncBlocking, Threads: 2,
		Iterations: 5, Work: 5 * sim.Millisecond, BarrierEvery: 1,
	}
	in := workload.NewParallel(kern, spec, 1)
	in.Repeat = true
	in.Start()
	kern.Start()
	_ = eng.Run(2 * sim.Second)
	if in.Completions < 10 {
		t.Fatalf("completions = %d, want many (repeat)", in.Completions)
	}
	if in.MeanRuntime() <= 0 {
		t.Fatal("no mean runtime")
	}
}

func TestInstanceRuntimeIsFirstCompletion(t *testing.T) {
	eng, kern := rig(t, 2)
	spec := workload.ParallelSpec{
		Name: "x", Mode: workload.SyncBlocking, Threads: 2,
		Iterations: 3, Work: 4 * sim.Millisecond, BarrierEvery: 1,
	}
	in := workload.NewParallel(kern, spec, 1)
	in.Repeat = true
	in.Start()
	kern.Start()
	_ = eng.Run(500 * sim.Millisecond)
	if in.Runtime() > in.FinishedAt-in.StartedAt {
		t.Fatal("Runtime() exceeds first completion span")
	}
}

func TestDefaultModePreserved(t *testing.T) {
	b, _ := workload.ByName("CG")
	if b.DefaultMode() != workload.SyncSpinning {
		t.Fatal("NPB default should be spinning")
	}
	p, _ := workload.ByName("facesim")
	if p.DefaultMode() != workload.SyncBlocking {
		t.Fatal("PARSEC default should be blocking")
	}
}
