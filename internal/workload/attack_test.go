package workload_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// newTestKernel attaches a default guest kernel to vm, for multi-VM
// attack rigs (the shared rig helper only builds a single VM).
func newTestKernel(hv *hypervisor.Hypervisor, vm *hypervisor.VM) *guest.Kernel {
	return guest.NewKernel(hv, vm, guest.DefaultConfig())
}

func TestParseAttackRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"tick-evade",
		"boost-game",
		"tick-evade,margin=500µs,resume=100µs",
		"tick-evade,period=10ms,margin=1ms,threads=2",
		"boost-game,run=900µs,sleep=100µs,jitter=0.1",
	}
	for _, spec := range cases {
		s, err := workload.ParseAttack(spec)
		if err != nil {
			t.Fatalf("ParseAttack(%q): %v", spec, err)
		}
		back, err := workload.ParseAttack(s.String())
		if err != nil {
			t.Fatalf("ParseAttack(%q) -> %q does not re-parse: %v", spec, s.String(), err)
		}
		if back != s {
			t.Fatalf("round trip of %q: %+v != %+v", spec, back, s)
		}
	}
}

func TestParseAttackDefaultsAndAliases(t *testing.T) {
	for _, spec := range []string{"", "none", "off", " NONE "} {
		s, err := workload.ParseAttack(spec)
		if err != nil {
			t.Fatalf("ParseAttack(%q): %v", spec, err)
		}
		if !s.Zero() {
			t.Fatalf("ParseAttack(%q) = %+v, want zero spec", spec, s)
		}
	}
	s, err := workload.ParseAttack("TICK-EVADE, margin = 1ms ")
	if err != nil {
		t.Fatalf("case-insensitive parse: %v", err)
	}
	if s.Kind != workload.AttackTickEvade || s.Margin != sim.Millisecond {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseAttackRejectsMalformedSpecs(t *testing.T) {
	bad := []string{
		"frobnicate",
		"tick-evade,margin",
		"tick-evade,margin=xyz",
		"tick-evade,margin=1ms,margin=2ms",
		"tick-evade,bogus=1",
		"tick-evade,margin=-1ms",
		"tick-evade,threads=-1",
		"tick-evade,jitter=1.5",
		"tick-evade,margin=9ms,resume=2ms", // window swallows the period
		"boost-game,period=1ms,margin=2ms",
	}
	for _, spec := range bad {
		if _, err := workload.ParseAttack(spec); err == nil {
			t.Errorf("ParseAttack(%q) accepted a malformed spec", spec)
		}
	}
}

// The tick-evader's defining property: under vanilla tick-sampled
// accounting it burns CPU but is (almost) never charged, because it
// sleeps across every sampling instant. The honest hog sharing its
// pCPU pays full freight.
func TestTickEvaderDodgesTickDebits(t *testing.T) {
	eng := sim.NewEngine()
	hv := hypervisor.New(eng, hypervisor.DefaultConfig(1))

	atkVM := hv.NewVM("attacker", 1, 256, false)
	atkKern := newTestKernel(hv, atkVM)
	spec, err := workload.ParseAttack("tick-evade")
	if err != nil {
		t.Fatal(err)
	}
	atk := workload.NewAttacker(atkKern, spec, 7)

	hogVM := hv.NewVM("honest", 1, 256, false)
	hogKern := newTestKernel(hv, hogVM)
	hog := workload.NewHog(hogKern, 1)

	atk.Start()
	hog.Start()
	atkKern.Start()
	hogKern.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}

	atkRun := atkVM.TotalRunTime()
	if atkRun < 500*sim.Millisecond {
		t.Fatalf("attacker only ran %v of 2s; the evasion loop is broken", atkRun)
	}
	// The evader must pay at most a token number of ticks (startup
	// transients) while consuming a large share of the pCPU.
	if atkVM.CreditsDebited > 10*100 {
		t.Fatalf("attacker was debited %d credits over 2s (ran %v); evasion failed",
			atkVM.CreditsDebited, atkRun)
	}
	if hogVM.CreditsDebited < 50*100 {
		t.Fatalf("honest hog debited only %d credits; rig miswired", hogVM.CreditsDebited)
	}
}

// Exact accounting closes the evasion channel: the same attacker is
// charged for (floored) every microsecond it ran, sleep pattern or not.
func TestExactAccountingChargesTickEvader(t *testing.T) {
	cfg := hypervisor.DefaultConfig(1)
	cfg.ExactAccounting = true
	eng := sim.NewEngine()
	hv := hypervisor.New(eng, cfg)

	atkVM := hv.NewVM("attacker", 1, 256, false)
	atkKern := newTestKernel(hv, atkVM)
	spec, _ := workload.ParseAttack("tick-evade")
	atk := workload.NewAttacker(atkKern, spec, 7)

	hogVM := hv.NewVM("honest", 1, 256, false)
	hogKern := newTestKernel(hv, hogVM)
	hog := workload.NewHog(hogKern, 1)

	atk.Start()
	hog.Start()
	atkKern.Start()
	hogKern.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	hv.SyncCreditAccounting()

	wantAtk := int64(atkVM.TotalRunTime()) * 100 / int64(cfg.Tick)
	if atkVM.CreditsDebited != wantAtk {
		t.Fatalf("attacker debited %d credits, want %d (exact for %v run)",
			atkVM.CreditsDebited, wantAtk, atkVM.TotalRunTime())
	}
	if atkVM.CreditsDebited < 100 {
		t.Fatalf("attacker debited only %d credits; it should pay for real now", atkVM.CreditsDebited)
	}
}

// The boost-gamer's sleep/wake cycle must re-enter BOOST at a far
// higher rate than an honest CPU hog (which never blocks, so never
// earns wake boosts at all).
func TestBoostGamerFarmsBoosts(t *testing.T) {
	eng := sim.NewEngine()
	hv := hypervisor.New(eng, hypervisor.DefaultConfig(1))

	atkVM := hv.NewVM("attacker", 1, 256, false)
	atkKern := newTestKernel(hv, atkVM)
	spec, _ := workload.ParseAttack("boost-game")
	atk := workload.NewAttacker(atkKern, spec, 7)

	hogVM := hv.NewVM("honest", 1, 256, false)
	hogKern := newTestKernel(hv, hogVM)
	hog := workload.NewHog(hogKern, 1)

	atk.Start()
	hog.Start()
	atkKern.Start()
	hogKern.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if atkVM.BoostGrants < 100 {
		t.Fatalf("boost-gamer earned %d boosts over 2s, want hundreds", atkVM.BoostGrants)
	}
	if hogVM.BoostGrants > atkVM.BoostGrants/10 {
		t.Fatalf("honest hog earned %d boosts vs attacker %d; rig miswired",
			hogVM.BoostGrants, atkVM.BoostGrants)
	}
}

func TestAttackerDeterministicAcrossRuns(t *testing.T) {
	run := func() (sim.Time, int64) {
		eng := sim.NewEngine()
		hv := hypervisor.New(eng, hypervisor.DefaultConfig(1))
		atkVM := hv.NewVM("attacker", 1, 256, false)
		atkKern := newTestKernel(hv, atkVM)
		spec, _ := workload.ParseAttack("tick-evade,jitter=0.2")
		atk := workload.NewAttacker(atkKern, spec, 42)
		hogVM := hv.NewVM("honest", 1, 256, false)
		hogKern := newTestKernel(hv, hogVM)
		hog := workload.NewHog(hogKern, 1)
		atk.Start()
		hog.Start()
		atkKern.Start()
		hogKern.Start()
		if err := eng.Run(1 * sim.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return atkVM.TotalRunTime(), atkVM.CreditsDebited
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 || d1 != d2 {
		t.Fatalf("attacker runs diverged: (%v, %d) vs (%v, %d)", r1, d1, r2, d2)
	}
}

func TestNewAttackerPanicsOnBadSpec(t *testing.T) {
	_, kern := rig(t, 1)
	for _, spec := range []workload.AttackSpec{
		{},
		{Kind: workload.AttackTickEvade, Jitter: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAttacker(%+v) did not panic", spec)
				}
			}()
			workload.NewAttacker(kern, spec, 1)
		}()
	}
}
