package workload

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/sim"
)

// PipelineSpec models pipeline-parallel benchmarks (dedup: 4 stages,
// ferret: 5 stages, each with several worker threads per stage). Items
// flow through bounded queues guarded by mutex + condition variables.
// Because every vCPU hosts several ready threads, the stock guest
// balancer already copes with preemption, which is why the paper sees
// only marginal IRS gains for these (§5.2).
type PipelineSpec struct {
	Name            string
	Stages          int
	ThreadsPerStage int
	Items           int
	// WorkPerStage is the mean compute one item needs in each stage.
	WorkPerStage sim.Time
	Imbalance    float64
	QueueCap     int
}

// TotalWork returns the nominal aggregate compute of one run.
func (s PipelineSpec) TotalWork() sim.Time {
	return sim.Time(s.Items*s.Stages) * s.WorkPerStage
}

// pipeQueue is a bounded blocking queue of work items.
type pipeQueue struct {
	kern     *guest.Kernel
	mu       *guestsync.Mutex
	notEmpty *guestsync.Cond
	notFull  *guestsync.Cond
	items    int
	cap      int
	closed   bool
}

func newPipeQueue(kern *guest.Kernel, cap int) *pipeQueue {
	return &pipeQueue{
		kern:     kern,
		mu:       guestsync.NewMutex(kern),
		notEmpty: guestsync.NewCond(kern),
		notFull:  guestsync.NewCond(kern),
		cap:      cap,
	}
}

// push adds an item, blocking while full.
func (q *pipeQueue) push(t *guest.Task, cont func()) {
	q.mu.Lock(t, func() { q.pushLocked(t, cont) })
}

func (q *pipeQueue) pushLocked(t *guest.Task, cont func()) {
	if q.items >= q.cap {
		q.notFull.Wait(t, q.mu, func() { q.pushLocked(t, cont) })
		return
	}
	q.items++
	q.notEmpty.Signal()
	q.mu.Unlock(t)
	cont()
}

// pop removes an item, blocking while empty; cont receives ok=false
// when the queue is closed and drained.
func (q *pipeQueue) pop(t *guest.Task, cont func(ok bool)) {
	q.mu.Lock(t, func() { q.popLocked(t, cont) })
}

func (q *pipeQueue) popLocked(t *guest.Task, cont func(ok bool)) {
	if q.items == 0 {
		if q.closed {
			q.mu.Unlock(t)
			cont(false)
			return
		}
		q.notEmpty.Wait(t, q.mu, func() { q.popLocked(t, cont) })
		return
	}
	q.items--
	q.notFull.Signal()
	q.mu.Unlock(t)
	cont(true)
}

// close marks the queue finished; blocked poppers drain then stop.
func (q *pipeQueue) close(t *guest.Task, cont func()) {
	q.mu.Lock(t, func() {
		q.closed = true
		q.notEmpty.Broadcast()
		q.mu.Unlock(t)
		cont()
	})
}

// pipeShared is per-instance pipeline state.
type pipeShared struct {
	spec   PipelineSpec
	queues []*pipeQueue // queues[i] feeds stage i (stage 0 self-feeds)
	// producersLeft[i] counts live threads of stage i, to close the
	// downstream queue when a stage finishes.
	producersLeft []int
	rng           *sim.RNG
}

// pipeWorker is one thread of one pipeline stage.
type pipeWorker struct {
	sh    *pipeShared
	stage int
	// stage-0 workers generate toGen items then finish.
	toGen int
	done  bool
	rng   *sim.RNG
}

// Step implements guest.Program. Stage 0 generates items; later stages
// pop, compute, and push onward. Each Step handles one item.
func (w *pipeWorker) Step(t *guest.Task) guest.Action {
	if w.done {
		return guest.Exit()
	}
	sh := w.sh
	work := w.rng.Jitter(sh.spec.WorkPerStage, sh.spec.Imbalance)
	if w.stage == 0 {
		if w.toGen == 0 {
			w.done = true
			return guest.RunThen(0, func(t *guest.Task, resume func()) {
				w.finishStage(t, resume)
			})
		}
		w.toGen--
		return guest.RunThen(work, func(t *guest.Task, resume func()) {
			sh.queues[1].push(t, resume)
		})
	}
	// Later stage: pop an item, compute, pass on.
	return guest.RunThen(0, func(t *guest.Task, resume func()) {
		sh.queues[w.stage].pop(t, func(ok bool) {
			if !ok {
				w.done = true
				w.finishStage(t, resume)
				return
			}
			t.Kernel().RunInTask(t, work, func() {
				if w.stage == sh.spec.Stages-1 {
					resume()
					return
				}
				sh.queues[w.stage+1].push(t, resume)
			})
		})
	})
}

// finishStage decrements the live count of this stage and closes the
// downstream queue when the stage has fully drained.
func (w *pipeWorker) finishStage(t *guest.Task, cont func()) {
	sh := w.sh
	sh.producersLeft[w.stage]--
	if sh.producersLeft[w.stage] == 0 && w.stage < sh.spec.Stages-1 {
		sh.queues[w.stage+1].close(t, cont)
		return
	}
	cont()
}

// NewPipeline instantiates a pipeline benchmark on kern.
func NewPipeline(kern *guest.Kernel, spec PipelineSpec, seed uint64) *Instance {
	if spec.Stages < 2 {
		panic("workload: pipeline needs at least 2 stages")
	}
	if spec.QueueCap <= 0 {
		spec.QueueCap = 8
	}
	in := &Instance{Name: spec.Name, kern: kern}
	in.spawn = func() {
		sh := &pipeShared{
			spec:          spec,
			rng:           sim.NewRNG(seed ^ 0x9199e),
			producersLeft: make([]int, spec.Stages),
		}
		sh.queues = make([]*pipeQueue, spec.Stages)
		for i := 1; i < spec.Stages; i++ {
			sh.queues[i] = newPipeQueue(kern, spec.QueueCap)
		}
		ncpu := len(kern.CPUs())
		n := 0
		for s := 0; s < spec.Stages; s++ {
			sh.producersLeft[s] = spec.ThreadsPerStage
			for i := 0; i < spec.ThreadsPerStage; i++ {
				w := &pipeWorker{sh: sh, stage: s, rng: sh.rng.Fork(uint64(s*100 + i))}
				if s == 0 {
					w.toGen = spec.Items / spec.ThreadsPerStage
					if i < spec.Items%spec.ThreadsPerStage {
						w.toGen++
					}
				}
				kern.Spawn(fmt.Sprintf("%s-s%d-%d", spec.Name, s, i), w, n%ncpu)
				n++
			}
		}
	}
	return in
}
