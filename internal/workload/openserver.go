package workload

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/sim"
	"repro/internal/span"
)

// Open-loop server mode: requests arrive from simulated external
// clients with exponential inter-arrival times and queue until a worker
// thread picks them up, so recorded latency includes queueing delay.
// This complements the closed-loop mode (ServerSpec.Arrival == 0) and
// makes latency-vs-load studies possible: an interfered, slowed server
// builds queues and its tail latency explodes well before throughput
// does.

// Request is one queued request: its original arrival stamp plus the
// blame span riding with it (nil when causal tracing is off). The span
// follows the request through queueing, worker binding, migration
// carry-over, and service.
type Request struct {
	Arrival sim.Time
	Span    *span.Span
}

type openServerShared struct {
	*serverShared
	queue    []Request // waiting requests, arrival order
	sleepers []openSleeper
	kern     *guest.Kernel
	genRNG   *sim.RNG
	Dropped  int64
	// gate is non-nil in remote-gate mode (NewRemoteServer): arrivals
	// are pushed in by an external router instead of generated here.
	gate *RemoteGate
}

type openSleeper struct {
	t    *guest.Task
	cont func()
}

// openWorker is one server thread in open-loop mode.
type openWorker struct {
	sh   *openServerShared
	rng  *sim.RNG
	reqs int
}

// Step implements guest.Program: take the next request or sleep.
func (w *openWorker) Step(t *guest.Task) guest.Action {
	sh := w.sh
	if t.Kernel().Now() >= sh.until && len(sh.queue) == 0 {
		return guest.Exit()
	}
	return guest.RunThen(0, func(tk *guest.Task, resume func()) {
		w.take(tk, resume)
	})
}

// take pops a request and services it, or sleeps until one arrives.
func (w *openWorker) take(t *guest.Task, resume func()) {
	sh := w.sh
	if len(sh.queue) == 0 {
		if t.Kernel().Now() >= sh.until {
			resume() // Step will exit
			return
		}
		sh.sleepers = append(sh.sleepers, openSleeper{t: t, cont: func() {
			w.take(t, resume)
		}})
		t.Kernel().BlockTask(t)
		return
	}
	req := sh.queue[0]
	sh.queue = sh.queue[1:]
	if g := sh.gate; g != nil {
		g.inflight++
	}
	if req.Span != nil {
		// A worker owns the request from here: the span leaves the
		// queue phase and starts tracking the task's scheduling fate.
		req.Span.BeginPhase(t.Kernel().Now(), "service", span.CatKernel)
		t.Kernel().AttachSpan(t, req.Span)
	}
	w.reqs++
	locked := sh.spec.LockEvery > 0 && w.reqs%sh.spec.LockEvery == 0
	service := w.rng.Exp(sh.spec.Service)
	finish := func() {
		now := t.Kernel().Now()
		sh.stats.Requests++
		lat := now - req.Arrival
		sh.stats.Latency.Add(lat)
		if el := now - sh.startedAt; el > sh.stats.Elapsed {
			sh.stats.Elapsed = el
		}
		if sp := t.Kernel().DetachSpan(t); sp != nil {
			sp.Finish(now)
		}
		if g := sh.gate; g != nil {
			g.inflight--
			g.served++
			if g.OnServed != nil {
				g.OnServed(lat)
			}
		}
		resume()
	}
	t.Kernel().RunInTask(t, service, func() {
		if !locked {
			finish()
			return
		}
		// Every LockEvery-th request touches the shared mutex for
		// LockCS — the lock-holder-preemption surface of the open loop.
		sh.mu.Lock(t, func() {
			t.Kernel().RunInTask(t, sh.spec.LockCS, func() {
				sh.mu.Unlock(t)
				finish()
			})
		})
	})
}

// generate schedules the next external arrival.
func (sh *openServerShared) generate() {
	now := sh.kern.Now()
	if now >= sh.until {
		// Run down: wake every sleeper so workers can exit.
		sl := sh.sleepers
		sh.sleepers = nil
		for _, s := range sl {
			sh.kern.WakeTask(s.t, s.cont)
		}
		return
	}
	sh.queue = append(sh.queue, Request{Arrival: now, Span: sh.kern.Spans().Start(now)})
	if len(sh.sleepers) > 0 {
		s := sh.sleepers[0]
		sh.sleepers = sh.sleepers[1:]
		sh.kern.WakeTask(s.t, s.cont)
	}
	sh.kern.Engine().After(sh.genRNG.Exp(sh.spec.Arrival), "arrival-"+sh.spec.Name, sh.generate)
}

// newOpenServer wires the open-loop variant; called from NewServer when
// spec.Arrival > 0.
func newOpenServer(kern *guest.Kernel, spec ServerSpec, seed uint64, stats *ServerStats) *Instance {
	in := &Instance{Name: spec.Name, kern: kern}
	in.spawn = func() {
		sh := &openServerShared{
			serverShared: &serverShared{
				spec:      spec,
				stats:     stats,
				rng:       sim.NewRNG(seed ^ 0x09e27),
				startedAt: kern.Now(),
				until:     kern.Now() + spec.Duration,
			},
			kern: kern,
		}
		sh.genRNG = sh.rng.Fork(999)
		if spec.LockEvery > 0 {
			sh.mu = guestsync.NewMutex(kern)
		}
		for i := 0; i < spec.Threads; i++ {
			w := &openWorker{sh: sh, rng: sh.rng.Fork(uint64(i))}
			kern.Spawn(fmt.Sprintf("%s-%d", spec.Name, i), w, i%len(kern.CPUs()))
		}
		// External clients: arrivals run on the engine, not on a vCPU.
		kern.Engine().After(sh.genRNG.Exp(spec.Arrival), "arrival-"+spec.Name, sh.generate)
		// A final sweep at the deadline releases any sleeping workers.
		kern.Engine().At(sh.until, "arrival-end-"+spec.Name, sh.generate)
	}
	return in
}
