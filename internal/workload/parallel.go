// Package workload models the benchmarks from the paper's evaluation
// as synchronization-structure programs: data-parallel loops with
// blocking or spinning barriers (PARSEC/NPB), mutex-based point-to-
// point synchronization (x264, fluidanimate), pipeline parallelism
// (dedup, ferret), user-level work stealing (raytrace), multi-threaded
// servers (SPECjbb, ab), and the CPU-hog interference micro-benchmark.
// Parameters encode each benchmark's granularity and sync type; the
// absolute work amounts are scaled so one run takes a few virtual
// seconds.
package workload

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/sim"
)

// SyncMode selects blocking (pthread/OMP passive) vs spinning
// (OMP active wait policy) synchronization primitives.
type SyncMode int

const (
	// SyncBlocking uses sleeping mutexes and barriers.
	SyncBlocking SyncMode = iota + 1
	// SyncSpinning uses busy-wait barriers and spinlocks.
	SyncSpinning
)

func (m SyncMode) String() string {
	if m == SyncSpinning {
		return "spinning"
	}
	return "blocking"
}

// barrier abstracts blocking and spinning barriers.
type barrier interface {
	Wait(t *guest.Task, cont func())
}

// lock abstracts blocking mutexes and spinlocks.
type lock interface {
	Lock(t *guest.Task, cont func())
	Unlock(t *guest.Task)
}

// ParallelSpec describes a data-parallel benchmark: threads iterate
// {compute, optional critical sections, optional barrier}.
type ParallelSpec struct {
	Name       string
	Threads    int // 0 = one per vCPU
	Mode       SyncMode
	Iterations int
	// Work is the mean per-thread compute per iteration.
	Work sim.Time
	// Imbalance is the fractional jitter applied to each thread's work
	// each iteration (natural load imbalance of the application).
	Imbalance float64
	// LocksPerIter critical sections of CSLen each are embedded evenly
	// in every iteration's compute.
	LocksPerIter int
	CSLen        sim.Time
	// BarrierEvery joins a barrier after this many iterations
	// (0 = never, 1 = every iteration).
	BarrierEvery int
	// TicketLock makes spinning-mode locks FIFO ticket locks instead of
	// test-and-set — the acquisition-order guarantee that amplifies
	// lock-waiter preemption (used by the ticket-lock ablation).
	TicketLock bool
}

// TotalWork returns the nominal single-thread compute of the benchmark.
func (s ParallelSpec) TotalWork() sim.Time {
	per := s.Work + sim.Time(s.LocksPerIter)*s.CSLen
	return sim.Time(s.Iterations) * per
}

// parallelShared is the state shared by all threads of one instance.
type parallelShared struct {
	spec ParallelSpec
	bar  barrier
	lk   lock
	rng  *sim.RNG
}

// parallelProg is one thread of a ParallelSpec instance.
type parallelProg struct {
	sh   *parallelShared
	iter int
	rng  *sim.RNG
}

// Step implements guest.Program.
func (p *parallelProg) Step(t *guest.Task) guest.Action {
	sp := p.sh.spec
	if p.iter >= sp.Iterations {
		return guest.Exit()
	}
	p.iter++
	work := p.rng.Jitter(sp.Work, sp.Imbalance)
	needBarrier := sp.BarrierEvery > 0 && p.iter%sp.BarrierEvery == 0

	if sp.LocksPerIter <= 0 {
		if !needBarrier {
			return guest.Run(work)
		}
		return guest.RunThen(work, func(t *guest.Task, resume func()) {
			p.sh.bar.Wait(t, resume)
		})
	}

	// Interleave critical sections within the compute: split the work
	// into LocksPerIter chunks, each followed by lock; CS; unlock.
	chunk := work / sim.Time(sp.LocksPerIter)
	remaining := sp.LocksPerIter
	var doChunk func(t *guest.Task, resume func())
	doChunk = func(t *guest.Task, resume func()) {
		p.sh.lk.Lock(t, func() {
			t.Kernel().RunInTask(t, sp.CSLen, func() {
				p.sh.lk.Unlock(t)
				remaining--
				if remaining == 0 {
					if needBarrier {
						p.sh.bar.Wait(t, resume)
					} else {
						resume()
					}
					return
				}
				t.Kernel().RunInTask(t, chunk, func() {
					doChunk(t, resume)
				})
			})
		})
	}
	return guest.RunThen(chunk, doChunk)
}

// Instance is one running workload attached to a guest kernel.
type Instance struct {
	Name string
	kern *guest.Kernel

	// Repeat re-runs the workload when it completes (background /
	// interfering applications run in a loop, §5.4).
	Repeat bool
	// Endless marks workloads that never complete (CPU hogs).
	Endless bool

	StartedAt   sim.Time
	FinishedAt  sim.Time // of the first completion
	Completions int
	lastStart   sim.Time
	runTimes    []sim.Time

	// OnFinish fires at every completion (after bookkeeping).
	OnFinish func()

	spawn func()
}

// Kernel returns the guest kernel the instance runs on.
func (in *Instance) Kernel() *guest.Kernel { return in.kern }

// Runtime returns the duration of the first complete run (the paper's
// per-benchmark performance metric), or 0 if unfinished.
func (in *Instance) Runtime() sim.Time {
	if in.Completions == 0 {
		return 0
	}
	return in.runTimes[0]
}

// MeanRuntime averages all completed runs (used for the repeating
// background applications).
func (in *Instance) MeanRuntime() sim.Time {
	if len(in.runTimes) == 0 {
		return 0
	}
	var sum sim.Time
	for _, r := range in.runTimes {
		sum += r
	}
	return sum / sim.Time(len(in.runTimes))
}

// start wires completion tracking into the kernel and spawns tasks.
func (in *Instance) start() {
	in.StartedAt = in.kern.Now()
	in.lastStart = in.StartedAt
	in.kern.OnAllExited = func() {
		now := in.kern.Now()
		in.Completions++
		in.runTimes = append(in.runTimes, now-in.lastStart)
		if in.Completions == 1 {
			in.FinishedAt = now
		}
		if in.OnFinish != nil {
			in.OnFinish()
		}
		if in.Repeat {
			in.lastStart = now
			in.spawn()
		}
	}
	in.spawn()
}

// NewParallel instantiates a data-parallel benchmark on kern. Threads
// are placed round-robin over the guest CPUs.
func NewParallel(kern *guest.Kernel, spec ParallelSpec, seed uint64) *Instance {
	threads := spec.Threads
	if threads <= 0 {
		threads = len(kern.CPUs())
	}
	in := &Instance{Name: spec.Name, kern: kern}
	in.spawn = func() {
		sh := &parallelShared{spec: spec, rng: sim.NewRNG(seed ^ 0xbadc0de)}
		if spec.Mode == SyncSpinning {
			sh.bar = guestsync.NewSpinBarrier(kern, threads)
			if spec.TicketLock {
				sh.lk = guestsync.NewTicketLock(kern)
			} else {
				sh.lk = guestsync.NewSpinLock(kern)
			}
		} else {
			sh.bar = guestsync.NewBarrier(kern, threads)
			sh.lk = guestsync.NewMutex(kern)
		}
		for i := 0; i < threads; i++ {
			p := &parallelProg{sh: sh, rng: sh.rng.Fork(uint64(i))}
			kern.Spawn(fmt.Sprintf("%s-%d", spec.Name, i), p, i%len(kern.CPUs()))
		}
	}
	return in
}

// Start spawns the workload's tasks and begins tracking completions.
// Call once, before or after Kernel.Start.
func (in *Instance) Start() { in.start() }
