package guest

import (
	"repro/internal/hypervisor"
	"repro/internal/span"
)

// Span instrumentation. The guest kernel is the one layer that sees
// both sides of the semantic gap — the task's scheduling state and the
// backing vCPU's hypervisor runstate — so the blame category of a
// request lives here: spanCategory is re-evaluated at every guest task
// transition (dispatch, preemption, block/wake, spin, migration) and,
// via a per-vCPU observer, at every hypervisor runstate or SA-handshake
// transition underneath the request.
//
// The instrumentation is pay-as-you-go: tasks carry a nil span pointer
// until a workload binds a request, and the vCPU observers are only
// registered once the first span attaches to a kernel, so untraced
// runs pay a nil-check per hook and nothing per vCPU transition.

// Spans returns the tracer configured for this kernel (nil when span
// tracing is off). Workloads mint request spans from it.
func (k *Kernel) Spans() *span.Tracer { return k.cfg.Spans }

// AttachSpan binds a request span to t: until DetachSpan, every
// scheduling transition of t (and of the vCPU under it) re-blames the
// span. The first attachment registers the vCPU observers.
func (k *Kernel) AttachSpan(t *Task, sp *span.Span) {
	if sp == nil {
		return
	}
	k.ensureSpanObservers()
	t.span = sp
	k.spanSync(t)
}

// DetachSpan unbinds and returns t's span (nil if none).
func (k *Kernel) DetachSpan(t *Task) *span.Span {
	sp := t.span
	t.span = nil
	return sp
}

// ensureSpanObservers registers the per-vCPU transition observers,
// once.
func (k *Kernel) ensureSpanObservers() {
	if k.spanObs {
		return
	}
	k.spanObs = true
	for _, c := range k.cpus {
		c := c
		c.vcpu.SetObserver(c.spanSyncAll)
	}
}

// spanSyncAll re-blames every span-carrying task whose category can
// depend on this vCPU's state: the current task and the ready queue.
// (Blocked and migrating tasks have vCPU-independent categories.)
func (c *CPU) spanSyncAll() {
	if c.cur != nil {
		c.kern.spanSync(c.cur)
	}
	for _, t := range c.rq.Tasks() {
		c.kern.spanSync(t)
	}
}

// spanSync transitions t's span (if any) to the category implied by
// the current task + vCPU state.
func (k *Kernel) spanSync(t *Task) {
	if t.span == nil {
		return
	}
	t.span.Transition(k.eng.Now(), k.spanCategory(t))
}

// spanCategory is the blame decision function (see the package comment
// of internal/span for the taxonomy).
func (k *Kernel) spanCategory(t *Task) span.Category {
	switch t.state {
	case TaskBlocked:
		return span.CatBlocked
	case TaskMigrating:
		return span.CatTaskMigr
	case TaskReady:
		if t.cpu != nil && t.cpu.vcpu.State() == hypervisor.StateRunnable {
			// Queued behind a preempted vCPU: the wait is steal, not CFS.
			return span.CatPreemptWait
		}
		return span.CatRunqWait
	case TaskRunning:
		c := t.cpu
		switch {
		case c == nil || c.cur != t:
			return span.CatOther
		case c.vcpu.State() != hypervisor.StateRunning:
			// The guest believes the task runs; the hypervisor knows the
			// vCPU does not — the semantic gap itself.
			return span.CatPreemptWait
		case c.vcpu.SAPending():
			return span.CatSAWait
		case !c.executing:
			return span.CatKernel
		case t.spin != nil:
			if h := t.spinHolder; h != nil {
				if holder := h(); holder != nil && !holderRunning(holder) {
					return span.CatLHPSpin
				}
			}
			return span.CatSpin
		default:
			return span.CatService
		}
	}
	return span.CatOther
}

// holderRunning reports whether a lock holder is actually making
// progress: current on its CPU with the backing vCPU executing.
// Anything else — holder preempted at guest level, or its vCPU stolen
// by the hypervisor — makes waiting for it lock-holder-preemption
// blame.
func holderRunning(h *Task) bool {
	return h.state == TaskRunning && h.cpu != nil && h.cpu.cur == h &&
		h.cpu.vcpu.State() == hypervisor.StateRunning
}
