// Package guest models a Linux-like SMP guest kernel running inside a
// hypervisor VM: per-vCPU CFS runqueues, timer ticks, push/pull/wakeup
// load balancing with rt_avg load tracking, and the guest half of IRS
// (SA receiver, context switcher, migrator — §3 and §4.2 of the paper).
package guest

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/span"
)

// TaskState is the guest-kernel state of a task.
type TaskState int

const (
	// TaskReady means the task sits on a runqueue waiting for CPU.
	TaskReady TaskState = iota + 1
	// TaskRunning means the task is the current task of a CPU. Note
	// that the backing vCPU may itself be preempted by the hypervisor —
	// the guest still sees the task as running (the semantic gap).
	TaskRunning
	// TaskBlocked means the task sleeps (mutex wait, sleep, I/O).
	TaskBlocked
	// TaskMigrating means the task was evicted from a preempted vCPU by
	// the IRS context switcher and is in the migrator's hands.
	TaskMigrating
	// TaskDone means the task exited.
	TaskDone
)

func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskMigrating:
		return "migrating"
	case TaskDone:
		return "done"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// Program drives a task's behaviour. Step is called whenever the
// previous action has fully completed and must return the next action.
type Program interface {
	Step(t *Task) Action
}

// ActionKind discriminates Action.
type ActionKind int

const (
	// ActRun executes on-CPU work for Dur, then calls Done.
	ActRun ActionKind = iota + 1
	// ActExit terminates the task.
	ActExit
)

// Action is one step of a program: compute for Dur, then perform Done
// (typically a synchronization operation). Done receives a resume
// callback that must be invoked exactly once — possibly much later,
// e.g. after a lock wait — to advance to the next Step.
type Action struct {
	Kind ActionKind
	Dur  sim.Time
	Done func(t *Task, resume func())
}

// Run is shorthand for a pure-compute action.
func Run(d sim.Time) Action { return Action{Kind: ActRun, Dur: d} }

// RunThen is a compute action followed by a completion operation.
func RunThen(d sim.Time, done func(t *Task, resume func())) Action {
	return Action{Kind: ActRun, Dur: d, Done: done}
}

// Exit terminates the task.
func Exit() Action { return Action{Kind: ActExit} }

// spinWait tracks a task busy-waiting on a condition. The wait ends
// when granted is set (direct handoff) or poll succeeds (test-and-set
// re-acquire); resume then continues the program. A bounded wait
// (budget > 0) falls back to onTimeout — running in task context —
// once spent reaches the budget (adaptive mutex / futex pre-sleep
// spinning).
type spinWait struct {
	granted bool
	poll    func() bool
	resume  func()

	budget    sim.Time
	spent     sim.Time
	onTimeout func()
	timeoutEv sim.EventRef
}

// Task is a guest thread.
type Task struct {
	ID   int
	Name string
	kern *Kernel
	prog Program

	state TaskState
	cpu   *CPU // CPU the task is assigned to (rq owner or runner)

	vruntime sim.Time
	weight   int

	// Current compute segment.
	segRemaining sim.Time
	segDone      func()
	// pending is executed the next time the task gets on CPU, before
	// resuming any compute segment (continuation after a wakeup).
	pending func()

	spin *spinWait // non-nil while busy-waiting

	// span, when non-nil, is the request this task is currently
	// serving; every scheduling transition re-blames it (see span.go).
	span *span.Span
	// spinHolder, set by lock implementations for the duration of a
	// spin wait, reports who holds the awaited lock so spin time can be
	// blamed on lock-holder preemption when the holder is stalled.
	spinHolder func() *Task

	// Lock bookkeeping for LHP/LWP classification.
	LocksHeld   int
	WaitingLock bool

	// Affinity restricts the task to a single CPU (cpus_allowed with
	// one bit set); nil means any CPU. Balancers and the migrator
	// respect it.
	Affinity *CPU

	// IRS bookkeeping.
	MigrTag bool // task was displaced from a preempted vCPU (paper §3.3)
	homeCPU *CPU // CPU the task was evicted from
	lastRun sim.Time

	// Statistics.
	CPUTime    sim.Time
	Migrations int64
	exited     bool
}

// State returns the task's current state.
func (t *Task) State() TaskState { return t.state }

// CPU returns the CPU the task is currently assigned to.
func (t *Task) CPU() *CPU { return t.cpu }

// Spinning reports whether the task is busy-waiting.
func (t *Task) Spinning() bool { return t.spin != nil }

// Span returns the request span bound to this task, if any.
func (t *Task) Span() *span.Span { return t.span }

// SetSpinHolder declares who holds the lock the task is about to spin
// on; lock implementations call it just before SpinTask and the kernel
// clears it when the spin ends.
func (t *Task) SetSpinHolder(fn func() *Task) { t.spinHolder = fn }

// Kernel returns the guest kernel owning this task.
func (t *Task) Kernel() *Kernel { return t.kern }

func (t *Task) String() string {
	return fmt.Sprintf("%s(%s)", t.Name, t.state)
}

// MarkDisplaced tags t as displaced from its home CPU by the IRS
// context switcher. The balancer prefers pulling displaced tasks back
// home, and with IRS enabled a waking task preempts a displaced current
// task instead of migrating away (Fig. 4).
func (t *Task) MarkDisplaced(home *CPU) {
	t.MigrTag = true
	t.homeCPU = home
}
