package guest

import (
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// The guest half of IRS (§3.2–3.3, §4.2 of the paper):
//
//   - SA receiver: the VIRQ_SA_UPCALL interrupt handler (entered via
//     CPU.TakeIRQ, which models the handler + softirq latency).
//   - Context switcher: the UPCALL_SOFTIRQ bottom half. It deschedules
//     the current task, marks it migrating, wakes the migrator, and
//     acknowledges the SA with SCHEDOP_block or SCHEDOP_yield.
//   - Migrator: a system-wide kernel thread that moves the descheduled
//     task to the least-loaded sibling vCPU (Algorithm 2).

// finishSAUpcall is the context switcher: it runs after the SA
// receiver's handling cost has elapsed and must end with the sched_op
// hypercall that acknowledges the activation.
func (c *CPU) finishSAUpcall() {
	c.saInFlight = false
	k := c.kern
	if !k.cfg.IRS {
		// Vanilla guest: the notification is ignored; the hypervisor's
		// hard limit will complete the preemption.
		return
	}
	t := c.cur
	if t != nil {
		// Deschedule the running task and hand it to the migrator.
		c.bankCur()
		c.execGen++
		t.state = TaskMigrating
		t.MarkDisplaced(c)
		c.cur = nil
		k.spanSync(t)
		k.migrator.submit(t)
	}
	// Acknowledge: block when the runqueue is empty, else yield so the
	// remaining tasks keep the vCPU runnable (Algorithm 1, line 12).
	if c.rq.Len() == 0 {
		c.stopTick()
		if !k.hv.SchedOpBlock(c.vcpu) {
			// A pending interrupt prevented blocking; yield instead so
			// the hypervisor can complete the preemption.
			k.hv.SchedOpYield(c.vcpu)
		}
		return
	}
	k.hv.SchedOpYield(c.vcpu)
}

// migrator is the IRS migration kernel thread. It is modelled as a
// lightweight actor that runs as soon as any vCPU of the VM is
// executing (it borrows CPU like the real migration kthread, but we do
// not charge it a full scheduling slot).
type migrator struct {
	kern    *Kernel
	queue   []migrItem
	waiting bool
	busy    bool
	// retrying holds tasks parked in a backoff wait between migration
	// attempts (Config.MigratorRetries); the invariant audit uses it to
	// locate every TaskMigrating task.
	retrying map[*Task]struct{}
}

// migrItem is one queued migration with its submission time, so the
// migrator's queueing + processing latency is measurable.
type migrItem struct {
	t       *Task
	at      sim.Time
	retries int
}

// submit hands a descheduled task to the migrator and tries to run it.
func (m *migrator) submit(t *Task) {
	m.queue = append(m.queue, migrItem{t: t, at: m.kern.Now()})
	m.kick()
}

// kick attempts to process queued migrations; called on submit and
// whenever a vCPU resumes.
func (m *migrator) kick() {
	if m.busy || len(m.queue) == 0 {
		return
	}
	runner := m.runnerCPU()
	if runner == nil {
		m.waiting = true
		return
	}
	m.waiting = false
	m.busy = true
	// An injected fault can stall the migrator kthread here, delaying
	// every queued migration (drainSync is unaffected: a CPU about to
	// idle settles its landing spot synchronously either way).
	delay := m.kern.cfg.MigratorCost + m.kern.cfg.Faults.MigratorStall()
	m.kern.eng.After(delay, "irs-migrator", func() {
		m.busy = false
		m.drain()
	})
}

// runnerCPU finds an executing vCPU for the migrator to run on.
func (m *migrator) runnerCPU() *CPU {
	for _, c := range m.kern.cpus {
		if c.running {
			return c
		}
	}
	return nil
}

// drainSync processes queued migrations immediately (invoked from a
// CPU that is about to idle and may be a landing spot).
func (m *migrator) drainSync() {
	if m.busy {
		return
	}
	m.drain()
}

// drain processes all queued migrations.
func (m *migrator) drain() {
	for len(m.queue) > 0 {
		item := m.queue[0]
		m.queue = m.queue[1:]
		m.migrate(item)
	}
	m.kick()
}

// retryLater parks the migration for MigratorBackoff, then re-submits
// it (hardened path; see Config.MigratorRetries).
func (m *migrator) retryLater(item migrItem) {
	k := m.kern
	item.retries++
	k.MigratorRetried++
	k.mMigrRetry.Inc()
	if m.retrying == nil {
		m.retrying = make(map[*Task]struct{})
	}
	m.retrying[item.t] = struct{}{}
	k.eng.After(k.cfg.MigratorBackoff, "irs-migrator-retry", func() {
		delete(m.retrying, item.t)
		if item.t.state != TaskMigrating || item.t.exited {
			return
		}
		m.queue = append(m.queue, item)
		m.kick()
	})
}

// migrate implements Algorithm 2: find the least-loaded sibling vCPU —
// an idle one if possible, otherwise the running vCPU with the lowest
// rt_avg — and move the task there. Preempted (runnable) vCPUs and the
// source vCPU are skipped. With no target the task returns home, or —
// hardened — the attempt is retried after a bounded backoff.
func (m *migrator) migrate(item migrItem) {
	t, submitted := item.t, item.at
	if t.state != TaskMigrating || t.exited {
		return
	}
	k := m.kern
	k.mMigrLatency.Observe(k.Now() - submitted)
	src := t.homeCPU
	var idle, leastLoaded *CPU
	for _, c := range k.cpus {
		if c == src || (t.Affinity != nil && t.Affinity != c) {
			continue
		}
		rs := k.hv.GetRunstate(c.vcpu)
		switch {
		case c.GuestIdle() && rs.State != hypervisor.StateRunnable:
			idle = c
		case rs.State == hypervisor.StateRunning:
			if leastLoaded == nil || c.rtAvg < leastLoaded.rtAvg {
				leastLoaded = c
			}
		}
		if idle != nil {
			break
		}
	}
	target := idle
	if target == nil {
		target = leastLoaded
	}
	canRetry := k.cfg.MigratorRetries > 0 && item.retries < k.cfg.MigratorRetries
	if target != nil && target == leastLoaded && canRetry && !target.running {
		// Hardened: the runstate snapshot called the target Running but
		// the vCPU is not actually executing (a stale VCPUOP_get_runstate
		// reply). Landing the task there re-creates the preemption wait
		// IRS exists to avoid; back off and retry instead.
		target = nil
	}
	if target == nil {
		if canRetry {
			m.retryLater(item)
			return
		}
		// No viable destination (every sibling is preempted): put the
		// task back on its home runqueue; it runs when the vCPU does.
		// The home vCPU blocked when it acknowledged the SA, so it must
		// be kicked awake to ever reconsider its runqueue.
		t.MigrTag = false
		t.homeCPU = nil
		t.state = TaskReady
		t.cpu = src
		src.rq.Enqueue(t)
		k.spanSync(t)
		k.kickCPU(src)
		return
	}
	k.moveTask(t, target)
	// moveTask consumes displacement tags; this move IS the
	// displacement, so re-tag with the original home.
	t.MarkDisplaced(src)
	k.IRSMigrations++
	k.mIRSMigr.Inc()
	k.checkMigratePreempt(target, t)
	k.kickCPU(target)
}

// checkMigratePreempt applies check_preempt_curr semantics on migration
// arrival: a migrated task with markedly lower vruntime preempts the
// current task (§5.2: "the migrated task likely has smaller virtual
// runtime ... and would be prioritized by CFS").
func (k *Kernel) checkMigratePreempt(c *CPU, t *Task) {
	cur := c.cur
	if cur == nil {
		return
	}
	if t.vruntime < cur.vruntime-k.cfg.WakeupGranularity {
		c.setNeedResched()
	}
}

// MigrationLatencyProbe forcibly migrates task t to CPU dst using the
// stopper-thread protocol (migration_cpu_stop): if t is running, the
// request executes on t's CPU the next time its vCPU actually runs —
// the semantics that produce Figure 1(b)'s staircase. done receives
// the request-to-completion latency.
func (k *Kernel) MigrationLatencyProbe(t *Task, dst *CPU, done func(sim.Time)) {
	start := k.Now()
	finish := func() {
		if done != nil {
			done(k.Now() - start)
		}
	}
	src := t.cpu
	if t.state == TaskReady {
		// Fast path: a ready task moves without the stopper.
		src.rq.Remove(t)
		k.moveTask(t, dst)
		k.kickCPU(dst)
		finish()
		return
	}
	if t.state != TaskRunning {
		finish()
		return
	}
	t.Affinity = dst
	work := func() {
		if t.state != TaskRunning || t.cpu != src {
			finish()
			return
		}
		src.bankCur()
		src.execGen++
		src.cur = nil
		k.moveTask(t, dst)
		k.kickCPU(dst)
		src.schedule()
		finish()
	}
	// migration_cpu_stop must execute on the source CPU while it
	// actually runs; if the vCPU is (or becomes) preempted, the work
	// waits in the stopper queue until the vCPU resumes.
	if src.running {
		k.eng.After(k.cfg.StopperCost, "stopper-"+t.Name, func() {
			if src.running {
				work()
				return
			}
			src.stoppers = append(src.stoppers, work)
		})
		return
	}
	src.stoppers = append(src.stoppers, work)
}
