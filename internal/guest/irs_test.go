package guest_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// TestMigratorPrefersIdleVCPU: Algorithm 2 line 8-10 — an idle sibling
// ends the search.
func TestMigratorPrefersIdleVCPU(t *testing.T) {
	eng := sim.NewEngine()
	hc := hypervisor.DefaultConfig(3)
	hc.Strategy = hypervisor.StrategyIRS
	hv := hypervisor.New(eng, hc)
	fgVM := hv.NewVM("fg", 3, 256, true)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	bgVM := hv.NewVM("bg", 1, 256, false)
	bgVM.VCPUs[0].Pin(hv.PCPU(0))

	gc := guest.DefaultConfig()
	gc.IRS = true
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	bg.Spawn("hog", hogProg{}, 0)

	// CPU 0 contended and busy; CPU 1 busy; CPU 2 idle.
	w0 := fg.Spawn("w0", hogProg{}, 0)
	fg.Spawn("w1", hogProg{}, 1)
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fg.IRSMigrations == 0 {
		t.Fatal("no IRS migrations")
	}
	// w0 should have been repeatedly migrated to idle CPU 2 and run at
	// nearly full speed.
	if w0.CPUTime < sim.Time(float64(2*sim.Second)*0.75) {
		t.Fatalf("w0 CPU %v; idle vCPU 2 should have absorbed it", w0.CPUTime)
	}
}

// TestMigratorSkipsPreemptedVCPUs: Algorithm 2 skips runnable (not
// running) siblings — migrating there would not help.
func TestMigratorSkipsPreemptedVCPUs(t *testing.T) {
	eng := sim.NewEngine()
	hc := hypervisor.DefaultConfig(2)
	hc.Strategy = hypervisor.StrategyIRS
	hv := hypervisor.New(eng, hc)
	fgVM := hv.NewVM("fg", 2, 256, true)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	// Hogs on BOTH pCPUs: every sibling is either running or preempted.
	bgVM := hv.NewVM("bg", 2, 256, false)
	for i, v := range bgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	gc := guest.DefaultConfig()
	gc.IRS = true
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	bg.Spawn("hog0", hogProg{}, 0)
	bg.Spawn("hog1", hogProg{}, 1)
	w0 := fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The task must never be parked on a preempted vCPU's runqueue
	// while some sibling was actually running. Weak check: the task
	// kept making progress close to the fair share.
	if w0.CPUTime < sim.Time(float64(2*sim.Second)*0.35) {
		t.Fatalf("w0 CPU %v, want >= ~40%% of 2s", w0.CPUTime)
	}
}

// barrierPair runs two tasks round-tripping through a mutex to exercise
// the Fig. 4 wakeup path.
type lockStepProg struct {
	mu     *guestsync.Mutex
	rounds int
	work   sim.Time
}

func (p *lockStepProg) Step(t *guest.Task) guest.Action {
	if p.rounds <= 0 {
		return guest.Exit()
	}
	p.rounds--
	return guest.RunThen(p.work, func(tk *guest.Task, resume func()) {
		p.mu.Lock(tk, func() {
			tk.Kernel().RunInTask(tk, p.work/4, func() {
				p.mu.Unlock(tk)
				resume()
			})
		})
	})
}

// TestWakerPreemptsTaggedTask: the Fig. 4 fix — a task waking on its
// home vCPU preempts a migration-tagged current task instead of being
// migrated away (ping-pong avoidance).
func TestWakerPreemptsTaggedTask(t *testing.T) {
	r := newRig(t, 2, 2, nil, func(c *guest.Config) { c.IRS = true })
	// Manufacture the situation directly: task A runs on CPU 1 with a
	// migration tag; sleeping task B previously lived on CPU 1 and CPU 0
	// is idle. Without the Fig. 4 rule, B would wake onto idle CPU 0;
	// with it, B preempts the tagged A in place.
	a := r.kern.Spawn("a", &finiteProg{chunk: 20 * sim.Millisecond, left: 50}, 1)
	b := r.kern.Spawn("b", &sleepProg{sleep: 15 * sim.Millisecond, work: 5 * sim.Millisecond, rounds: 5}, 1)
	a.Affinity = r.kern.CPU(1) // hold both on CPU 1 against idle pulls
	b.Affinity = r.kern.CPU(1)
	r.kern.Start()
	r.eng.After(10*sim.Millisecond, "tag", func() {
		a.MarkDisplaced(r.kern.CPU(0))
		b.Affinity = nil // the rule, not affinity, must keep B home
	})
	var preempted bool
	r.eng.Every(500*sim.Microsecond, "watch", func() {
		if b.State() == guest.TaskRunning && b.CPU() == r.kern.CPU(1) && a.State() == guest.TaskReady {
			preempted = true
			r.eng.Stop()
		}
	})
	_ = r.eng.Run(2 * sim.Second)
	if !preempted {
		t.Fatal("waking task never preempted the tagged task on its home CPU")
	}
}

// TestTaggedTaskPulledHome: the balancer prefers pulling tagged tasks
// back to their home CPU when it becomes free.
func TestTaggedTaskPulledHome(t *testing.T) {
	r := newRig(t, 2, 2, nil, func(c *guest.Config) { c.IRS = true })
	a := r.kern.Spawn("a", &finiteProg{chunk: 5 * sim.Millisecond, left: 2000}, 0)
	r.kern.Spawn("b", &finiteProg{chunk: 5 * sim.Millisecond, left: 2000}, 1)
	r.kern.Start()
	// Put A on CPU 1's queue as if the IRS migrator displaced it.
	moved := false
	r.eng.After(20*sim.Millisecond, "displace", func() {
		if a.State() != guest.TaskRunning || a.CPU() != r.kern.CPU(0) {
			return
		}
		r.kern.MigrationLatencyProbe(a, r.kern.CPU(1), func(sim.Time) {
			a.Affinity = nil // the probe pins; release for the pull-back
			a.MarkDisplaced(r.kern.CPU(0))
			moved = true
		})
	})
	var home bool
	r.eng.Every(sim.Millisecond, "watch", func() {
		if moved && a.CPU() == r.kern.CPU(0) && !a.MigrTag {
			home = true
			r.eng.Stop()
		}
	})
	_ = r.eng.Run(5 * sim.Second)
	if !moved {
		t.Skip("displacement never happened")
	}
	if !home {
		t.Fatal("tagged task never pulled back home with its tag cleared")
	}
}

// TestSAEvictionBlocksEmptyVCPU: the context switcher answers
// SCHEDOP_block when the runqueue drains (Algorithm 1 line 12).
func TestSAEvictionBlocksEmptyVCPU(t *testing.T) {
	eng, hv, fg, bg := rig2(t, hypervisor.StrategyIRS, true)
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	v0 := fg.VM().VCPUs[0]
	var sawBlocked bool
	eng.Every(sim.Millisecond, "watch", func() {
		if v0.State() == hypervisor.StateBlocked {
			sawBlocked = true
			eng.Stop()
		}
	})
	_ = eng.Run(2 * sim.Second)
	_ = hv
	if !sawBlocked {
		t.Fatal("SA eviction never blocked the emptied vCPU")
	}
}

// TestIRSDisabledGuestIgnoresSA: a guest without IRS support never
// migrates on SA, and the hypervisor's hard limit completes preemption.
func TestIRSDisabledGuestIgnoresSA(t *testing.T) {
	eng := sim.NewEngine()
	hc := hypervisor.DefaultConfig(2)
	hc.Strategy = hypervisor.StrategyIRS
	hv := hypervisor.New(eng, hc)
	// VM claims SA capability at the hypervisor but its kernel has
	// IRS disabled (config mismatch — must degrade gracefully).
	fgVM := hv.NewVM("fg", 2, 256, true)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	bgVM := hv.NewVM("bg", 1, 256, false)
	bgVM.VCPUs[0].Pin(hv.PCPU(0))
	gc := guest.DefaultConfig()
	gc.IRS = false
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	bg.Spawn("hog", hogProg{}, 0)
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	_, _, expired, _, _, _ := hv.SAStats()
	if expired == 0 {
		t.Fatal("hard limit never fired for a non-responsive guest")
	}
	if fg.IRSMigrations != 0 {
		t.Fatal("IRS-disabled guest migrated tasks")
	}
	// Fairness preserved even with expired SAs.
	fgRun := fgVM.VCPUs[0].RunTime()
	bgRun := bgVM.VCPUs[0].RunTime()
	ratio := float64(fgRun) / float64(bgRun)
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("fairness broken: %v vs %v", fgRun, bgRun)
	}
}

// TestPingPongAvoidedWithIRS measures wake migrations with and without
// the Fig. 4 rule using a lock-stepping pair under interference.
func TestPingPongAvoidedWithIRS(t *testing.T) {
	run := func(irs bool) int64 {
		eng, _, fg, bg := rig2(t, strategyFor(irs), irs)
		mu := guestsync.NewMutex(fg)
		fg.Spawn("a", &lockStepProg{mu: mu, rounds: 150, work: 4 * sim.Millisecond}, 0)
		fg.Spawn("b", &lockStepProg{mu: mu, rounds: 150, work: 4 * sim.Millisecond}, 1)
		fg.OnAllExited = func() { eng.Stop() }
		fg.Start()
		bg.Start()
		_ = eng.Run(60 * sim.Second)
		return fg.WakeMigrations
	}
	van := run(false)
	irs := run(true)
	// The rule cannot eliminate wake migrations, but it must not blow
	// them up; this is a smoke check that the tag rule is wired in.
	if irs > van*3+10 {
		t.Fatalf("IRS wake migrations %d vs vanilla %d", irs, van)
	}
}

func strategyFor(irs bool) hypervisor.Strategy {
	if irs {
		return hypervisor.StrategyIRS
	}
	return hypervisor.StrategyVanilla
}
