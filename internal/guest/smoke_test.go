package guest_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// testRig wires an engine, hypervisor and one guest kernel together.
type testRig struct {
	eng  *sim.Engine
	hv   *hypervisor.Hypervisor
	vm   *hypervisor.VM
	kern *guest.Kernel
}

func newRig(t *testing.T, pcpus, vcpus int, hcfg func(*hypervisor.Config), gcfg func(*guest.Config)) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	hc := hypervisor.DefaultConfig(pcpus)
	if hcfg != nil {
		hcfg(&hc)
	}
	hv := hypervisor.New(eng, hc)
	vm := hv.NewVM("vm0", vcpus, 256, true)
	gc := guest.DefaultConfig()
	if gcfg != nil {
		gcfg(&gc)
	}
	kern := guest.NewKernel(hv, vm, gc)
	return &testRig{eng: eng, hv: hv, vm: vm, kern: kern}
}

// computeProg runs a fixed amount of work and exits.
type computeProg struct {
	chunk sim.Time
	n     int
	done  int
}

func (p *computeProg) Step(t *guest.Task) guest.Action {
	if p.done >= p.n {
		return guest.Exit()
	}
	p.done++
	return guest.Run(p.chunk)
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	prog := &computeProg{chunk: 10 * sim.Millisecond, n: 10}
	task := r.kern.Spawn("worker", prog, 0)
	finished := sim.Time(-1)
	r.kern.OnAllExited = func() { finished = r.eng.Now() }
	r.kern.Start()
	if err := r.eng.Run(5 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if task.State() != guest.TaskDone {
		t.Fatalf("task state = %v, want done", task.State())
	}
	if finished < 100*sim.Millisecond {
		t.Fatalf("finished at %v, want >= 100ms of work", finished)
	}
	// Allow modest overhead beyond the pure compute time.
	if finished > 120*sim.Millisecond {
		t.Fatalf("finished at %v, too much overhead", finished)
	}
	if got := task.CPUTime; got < 100*sim.Millisecond {
		t.Fatalf("CPU time %v, want >= 100ms", got)
	}
}

func TestTwoTasksShareOneCPU(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	p1 := &computeProg{chunk: 50 * sim.Millisecond, n: 2}
	p2 := &computeProg{chunk: 50 * sim.Millisecond, n: 2}
	t1 := r.kern.Spawn("a", p1, 0)
	t2 := r.kern.Spawn("b", p2, 0)
	var finished sim.Time
	r.kern.OnAllExited = func() { finished = r.eng.Now(); r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(5 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if finished < 200*sim.Millisecond || finished > 230*sim.Millisecond {
		t.Fatalf("finished at %v, want ~200ms", finished)
	}
	// CFS should have interleaved them: both CPU times ~100ms.
	for _, task := range []*guest.Task{t1, t2} {
		if task.CPUTime < 99*sim.Millisecond || task.CPUTime > 110*sim.Millisecond {
			t.Fatalf("%s CPU time %v, want ~100ms", task.Name, task.CPUTime)
		}
	}
}

func TestTasksSpreadAcrossCPUs(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	var finished sim.Time
	r.kern.OnAllExited = func() { finished = r.eng.Now(); r.eng.Stop() }
	r.kern.Spawn("a", &computeProg{chunk: 100 * sim.Millisecond, n: 1}, 0)
	r.kern.Spawn("b", &computeProg{chunk: 100 * sim.Millisecond, n: 1}, 1)
	r.kern.Start()
	if err := r.eng.Run(5 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if finished > 110*sim.Millisecond {
		t.Fatalf("finished at %v, want ~100ms (parallel)", finished)
	}
}

// mutexProg increments a shared counter inside a mutex n times.
type mutexProg struct {
	mu      *guestsync.Mutex
	n       int
	i       int
	hold    sim.Time
	outside sim.Time
	counter *int
}

func (p *mutexProg) Step(t *guest.Task) guest.Action {
	if p.i >= p.n {
		return guest.Exit()
	}
	p.i++
	return guest.RunThen(p.outside, func(t *guest.Task, resume func()) {
		p.mu.Lock(t, func() {
			// Critical section: hold the lock while computing.
			*p.counter++
			t.Kernel().RunInTask(t, p.hold, func() {
				p.mu.Unlock(t)
				resume()
			})
		})
	})
}

func TestMutexMutualExclusionAndProgress(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	mu := guestsync.NewMutex(r.kern)
	counter := 0
	const n = 50
	mk := func() *mutexProg {
		return &mutexProg{mu: mu, n: n, hold: sim.Millisecond, outside: 2 * sim.Millisecond, counter: &counter}
	}
	r.kern.Spawn("a", mk(), 0)
	r.kern.Spawn("b", mk(), 1)
	var done bool
	r.kern.OnAllExited = func() { done = true; r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(10 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done {
		t.Fatal("workload did not finish")
	}
	if counter != 2*n {
		t.Fatalf("counter = %d, want %d", counter, 2*n)
	}
}

func TestBlockingBarrierRounds(t *testing.T) {
	r := newRig(t, 4, 4, nil, nil)
	bar := guestsync.NewBarrier(r.kern, 4)
	const rounds = 20
	for i := 0; i < 4; i++ {
		p := &barrierProg{bar: bar, rounds: rounds, work: 2 * sim.Millisecond}
		r.kern.Spawn("w", p, i)
	}
	var done bool
	r.kern.OnAllExited = func() { done = true; r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(10 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done {
		t.Fatal("barrier workload did not finish")
	}
	if bar.Generations != rounds {
		t.Fatalf("generations = %d, want %d", bar.Generations, rounds)
	}
}

type barrierProg struct {
	bar    *guestsync.Barrier
	rounds int
	i      int
	work   sim.Time
}

func (p *barrierProg) Step(t *guest.Task) guest.Action {
	if p.i >= p.rounds {
		return guest.Exit()
	}
	p.i++
	return guest.RunThen(p.work, func(t *guest.Task, resume func()) {
		p.bar.Wait(t, resume)
	})
}

func TestSpinBarrierRounds(t *testing.T) {
	r := newRig(t, 4, 4, nil, nil)
	bar := guestsync.NewSpinBarrier(r.kern, 4)
	const rounds = 20
	for i := 0; i < 4; i++ {
		p := &spinBarrierProg{bar: bar, rounds: rounds, work: 2 * sim.Millisecond}
		r.kern.Spawn("w", p, i)
	}
	var done bool
	r.kern.OnAllExited = func() { done = true; r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(10 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !done {
		t.Fatal("spin barrier workload did not finish")
	}
	if bar.Generations != rounds {
		t.Fatalf("generations = %d, want %d", bar.Generations, rounds)
	}
}

type spinBarrierProg struct {
	bar    *guestsync.SpinBarrier
	rounds int
	i      int
	work   sim.Time
}

func (p *spinBarrierProg) Step(t *guest.Task) guest.Action {
	if p.i >= p.rounds {
		return guest.Exit()
	}
	p.i++
	return guest.RunThen(p.work, func(t *guest.Task, resume func()) {
		p.bar.Wait(t, resume)
	})
}
