package guest

import "repro/internal/sim"

// Busy-wait support. A spinning task stays "running" in the guest and
// burns CPU on its vCPU until the wait is granted (explicitly, e.g. a
// ticket handoff) or its poll succeeds (test-and-set style). Spinning
// is visible to the hypervisor's PLE detector via SpinBegin/SpinEnd.

const spinGrantCost = 1 * sim.Microsecond

// SpinTask puts the current task into a busy-wait. poll, if non-nil, is
// re-evaluated whenever the spinner (re)gains the CPU and should
// attempt the acquisition, returning success. resume runs once the wait
// ends. Must be called from task context.
func (k *Kernel) SpinTask(t *Task, poll func() bool, resume func()) {
	k.SpinTaskBounded(t, 0, poll, resume, nil)
}

// SpinTaskBounded is SpinTask with a CPU-time budget: once the task has
// burned budget of actual spinning, onTimeout runs in task context
// (typically putting the task to sleep). budget 0 spins forever.
func (k *Kernel) SpinTaskBounded(t *Task, budget sim.Time, poll func() bool, resume func(), onTimeout func()) {
	c := t.cpu
	if c.cur != t {
		panic("guest: SpinTask on non-current task " + t.Name)
	}
	t.spin = &spinWait{poll: poll, resume: resume, budget: budget, onTimeout: onTimeout}
	t.WaitingLock = true
	k.mSpinWaits.Inc()
	if c.running && !c.executing {
		c.startCur()
	}
}

// GrantSpin ends t's busy-wait (direct handoff). The spinner proceeds
// the next time it physically executes; if it is executing right now it
// proceeds immediately.
func (k *Kernel) GrantSpin(t *Task) {
	if t.spin == nil {
		return
	}
	t.spin.granted = true
	k.resumeSpinner(t)
}

// PollSpinner nudges an actively executing spinner to re-run its poll
// (a lock became free).
func (k *Kernel) PollSpinner(t *Task) {
	if t.spin == nil || t.spin.poll == nil {
		return
	}
	k.resumeSpinner(t)
}

// resumeSpinner re-enters startCur on the spinner's CPU so the grant or
// poll is consumed there.
func (k *Kernel) resumeSpinner(t *Task) {
	c := t.cpu
	if c.cur != t || !c.running {
		return // consumed when the task next runs
	}
	if c.executing {
		c.bankCur()
		c.execGen++
	}
	c.execAfter(spinGrantCost, c.startCur)
}
