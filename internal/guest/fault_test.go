package guest_test

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// faultRig2 is rig2 with a shared fault injector attached to both the
// hypervisor and the foreground guest, plus config hooks for the
// hardening knobs under test.
func faultRig2(t *testing.T, plan fault.Plan, hcfg func(*hypervisor.Config), gcfg func(*guest.Config)) (*sim.Engine, *hypervisor.Hypervisor, *guest.Kernel, *guest.Kernel, *fault.Injector) {
	t.Helper()
	eng := sim.NewEngine()
	in := fault.NewInjector(plan, 7, nil)
	hc := hypervisor.DefaultConfig(2)
	hc.Strategy = hypervisor.StrategyIRS
	hc.Faults = in
	if hcfg != nil {
		hcfg(&hc)
	}
	hv := hypervisor.New(eng, hc)

	fgVM := hv.NewVM("fg", 2, 256, true)
	bgVM := hv.NewVM("bg", 1, 256, false)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	bgVM.VCPUs[0].Pin(hv.PCPU(0))

	gc := guest.DefaultConfig()
	gc.IRS = true
	gc.Faults = in
	if gcfg != nil {
		gcfg(&gc)
	}
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	bg.Spawn("hog", hogProg{}, 0)
	return eng, hv, fg, bg, in
}

// chaosRig hogs BOTH pCPUs so the foreground task cannot escape
// contention: every preemption restarts the SA handshake, giving the
// fault plan a steady stream of deliveries to corrupt.
func chaosRig(t *testing.T, plan fault.Plan, gcfg func(*guest.Config)) (*sim.Engine, *hypervisor.Hypervisor, *guest.Kernel, *guest.Kernel, *fault.Injector) {
	t.Helper()
	eng := sim.NewEngine()
	in := fault.NewInjector(plan, 7, nil)
	hc := hypervisor.DefaultConfig(2)
	hc.Strategy = hypervisor.StrategyIRS
	hc.Faults = in
	hv := hypervisor.New(eng, hc)
	fgVM := hv.NewVM("fg", 2, 256, true)
	bgVM := hv.NewVM("bg", 2, 256, false)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	for i, v := range bgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	gc := guest.DefaultConfig()
	gc.IRS = true
	gc.Faults = in
	if gcfg != nil {
		gcfg(&gc)
	}
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	bg.Spawn("hog0", hogProg{}, 0)
	bg.Spawn("hog1", hogProg{}, 1)
	return eng, hv, fg, bg, in
}

// TestHardenDupSASuppression: with duplicated SA upcalls and a slow
// handler, the unhardened guest restarts the handler mid-flight and
// blows the hard limit; suppression keeps every handshake inside it.
func TestHardenDupSASuppression(t *testing.T) {
	run := func(harden bool) (*guest.Kernel, *hypervisor.Hypervisor) {
		plan := fault.Plan{DupSA: 1, DelaySA: 20 * sim.Microsecond}
		eng, hv, fg, bg, _ := chaosRig(t, plan, func(c *guest.Config) {
			c.SAHandlerCost = 70 * sim.Microsecond
			c.HardenDupSA = harden
		})
		fg.Spawn("w0", hogProg{}, 0)
		fg.Start()
		bg.Start()
		_ = eng.Run(2 * sim.Second)
		return fg, hv
	}

	fg, hv := run(true)
	sent, _, expired, _, _, _ := hv.SAStats()
	if sent == 0 {
		t.Fatal("no SAs sent under contention")
	}
	if fg.SADupSuppressed == 0 {
		t.Fatal("hardened guest suppressed no duplicate upcalls")
	}
	// A stray timer/kick IRQ can still cancel a handler mid-flight
	// (protocol quirk independent of duplication), so allow a sliver.
	if expired*20 > sent {
		t.Fatalf("hardened guest expired %d/%d handshakes, want <= 5%%", expired, sent)
	}

	fgU, hvU := run(false)
	sentU, _, expiredU, _, _, _ := hvU.SAStats()
	if fgU.SADupSuppressed != 0 {
		t.Fatal("unhardened guest counted suppressions")
	}
	if expiredU*20 <= sentU {
		t.Fatalf("unhardened guest expired only %d/%d handshakes under duplicated upcalls", expiredU, sentU)
	}
}

// TestWakePollRecoversLostKick: with every wakeup kick dropped, a
// sleeper's wake strands its task on a blocked vCPU forever; the idle
// loop's recovery poll bounds the damage to WakePoll.
func TestWakePollRecoversLostKick(t *testing.T) {
	run := func(poll sim.Time) (*guest.Kernel, *guest.Task, bool) {
		eng := sim.NewEngine()
		in := fault.NewInjector(fault.Plan{DropWake: 1}, 7, nil)
		hc := hypervisor.DefaultConfig(2)
		hc.Faults = in
		hv := hypervisor.New(eng, hc)
		vm := hv.NewVM("vm0", 2, 256, false)
		for i, v := range vm.VCPUs {
			v.Pin(hv.PCPU(i))
		}
		gc := guest.DefaultConfig()
		gc.WakePoll = poll
		kern := guest.NewKernel(hv, vm, gc)
		task := kern.Spawn("sleeper", &sleepProg{sleep: 30 * sim.Millisecond, work: 10 * sim.Millisecond, rounds: 5}, 0)
		done := false
		kern.OnAllExited = func() { done = true; eng.Stop() }
		kern.Start()
		_ = eng.Run(5 * sim.Second)
		return kern, task, done
	}

	_, task, done := run(0)
	if done || task.State() == guest.TaskDone {
		t.Fatal("workload finished although every wakeup kick was dropped")
	}

	kern, task, done := run(2 * sim.Millisecond)
	if !done || task.State() != guest.TaskDone {
		t.Fatalf("hardened workload unfinished (task %v)", task.State())
	}
	if kern.WakePollRecoveries == 0 {
		t.Fatal("no wake-poll recoveries recorded")
	}
}

// TestMigratorRetriesLandTask: with every pCPU hogged, stale runstate
// snapshots, and the migrating task affine to a single (often
// preempted) sibling, the migrator regularly finds no trustworthy
// target; bounded retries must kick in without losing the task.
func TestMigratorRetriesLandTask(t *testing.T) {
	eng := sim.NewEngine()
	in := fault.NewInjector(fault.Plan{StaleRunstate: 50 * sim.Millisecond}, 7, nil)
	hc := hypervisor.DefaultConfig(3)
	hc.Strategy = hypervisor.StrategyIRS
	hc.Faults = in
	hv := hypervisor.New(eng, hc)
	fgVM := hv.NewVM("fg", 3, 256, true)
	bgVM := hv.NewVM("bg", 3, 256, false)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	for i, v := range bgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	gc := guest.DefaultConfig()
	gc.IRS = true
	gc.Faults = in
	gc.MigratorRetries = 3
	gc.MigratorBackoff = 200 * sim.Microsecond
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	for i := 0; i < 3; i++ {
		bg.Spawn(fmt.Sprintf("hog%d", i), hogProg{}, i)
	}
	w0 := fg.Spawn("w0", hogProg{}, 0)
	fg.Spawn("w1", hogProg{}, 1)
	fg.Spawn("w2", hogProg{}, 2)
	// The affinity restricts w0's migrations to CPU 1, which is
	// preempted about half the time: no-viable-target becomes common.
	w0.Affinity = fg.CPU(1)

	var violations []string
	eng.Every(sim.Millisecond, "audit", func() {
		fg.AuditInvariants(func(rule, detail string) {
			violations = append(violations, fmt.Sprintf("%s: %s", rule, detail))
		})
	})
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fg.MigratorRetried == 0 {
		t.Fatal("migrator never retried despite stale runstates and full siblings")
	}
	if len(violations) > 0 {
		t.Fatalf("%d invariant violations, first: %s", len(violations), violations[0])
	}
	// The task must keep progressing despite the retries.
	if w0.CPUTime < sim.Time(float64(2*sim.Second)*0.25) {
		t.Fatalf("w0 CPU %v, want >= ~25%% of 2s", w0.CPUTime)
	}
}

// TestTickJitterKeepsProgress: delayed timer ticks slow CFS slice
// enforcement but never wedge the guest.
func TestTickJitterKeepsProgress(t *testing.T) {
	eng := sim.NewEngine()
	in := fault.NewInjector(fault.Plan{TickJitter: 0.5}, 7, nil)
	hv := hypervisor.New(eng, hypervisor.DefaultConfig(1))
	vm := hv.NewVM("vm0", 1, 256, false)
	vm.VCPUs[0].Pin(hv.PCPU(0))
	gc := guest.DefaultConfig()
	gc.Faults = in
	kern := guest.NewKernel(hv, vm, gc)
	kern.Spawn("a", &finiteProg{chunk: 10 * sim.Millisecond, left: 10}, 0)
	kern.Spawn("b", &finiteProg{chunk: 10 * sim.Millisecond, left: 10}, 0)
	var finished sim.Time
	kern.OnAllExited = func() { finished = eng.Now(); eng.Stop() }
	kern.Start()
	if err := eng.Run(5 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if finished == 0 || finished > 300*sim.Millisecond {
		t.Fatalf("finished at %v, want ~200ms despite tick jitter", finished)
	}
	if in.Count(fault.KindTickJitter) == 0 {
		t.Fatal("no tick jitter injected")
	}
}

// TestMigratorStallDelaysButCompletes: a stalled migrator kthread delays
// SA migrations; they still happen and nothing is lost.
func TestMigratorStallDelaysButCompletes(t *testing.T) {
	plan := fault.Plan{StallProb: 1, StallFor: 200 * sim.Microsecond}
	eng, _, fg, bg, in := faultRig2(t, plan, nil, nil)
	fg.Spawn("w0", hogProg{}, 0)
	var violations []string
	eng.Every(sim.Millisecond, "audit", func() {
		fg.AuditInvariants(func(rule, detail string) {
			violations = append(violations, fmt.Sprintf("%s: %s", rule, detail))
		})
	})
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fg.IRSMigrations == 0 {
		t.Fatal("no IRS migrations despite an idle sibling")
	}
	if in.Count(fault.KindMigratorStall) == 0 {
		t.Fatal("no migrator stalls injected")
	}
	if len(violations) > 0 {
		t.Fatalf("%d invariant violations, first: %s", len(violations), violations[0])
	}
}

// TestGuestAuditCleanUnderChaos: the full hardened stack under a mixed
// loss plan keeps both the guest and hypervisor invariants clean.
func TestGuestAuditCleanUnderChaos(t *testing.T) {
	plan := fault.LossPlan(0.25)
	plan.StallProb = 0.2
	plan.StallFor = 200 * sim.Microsecond
	plan.TickJitter = 0.25
	eng, hv, fg, bg, _ := faultRig2(t, plan,
		func(c *hypervisor.Config) {
			c.SABreakerN = 5
			c.SABreakerCooldown = 50 * sim.Millisecond
		},
		func(c *guest.Config) {
			c.HardenDupSA = true
			c.MigratorRetries = 3
			c.MigratorBackoff = 200 * sim.Microsecond
			c.WakePoll = 5 * sim.Millisecond
		})
	fg.Spawn("w0", hogProg{}, 0)
	fg.Spawn("w1", &sleepProg{sleep: 20 * sim.Millisecond, work: 5 * sim.Millisecond, rounds: 50}, 1)
	var violations []string
	record := func(rule, detail string) {
		violations = append(violations, fmt.Sprintf("%s: %s", rule, detail))
	}
	eng.Every(sim.Millisecond, "audit", func() {
		fg.AuditInvariants(record)
		bg.AuditInvariants(record)
		hv.AuditInvariants(record)
	})
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(violations) > 0 {
		t.Fatalf("%d invariant violations, first: %s", len(violations), violations[0])
	}
}
