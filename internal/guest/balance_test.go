package guest_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// finiteProg computes total work in chunks and exits.
type finiteProg struct {
	chunk sim.Time
	left  int
}

func (p *finiteProg) Step(t *guest.Task) guest.Action {
	if p.left <= 0 {
		return guest.Exit()
	}
	p.left--
	return guest.Run(p.chunk)
}

func TestIdleBalancePullsReadyTask(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	// Two tasks spawned on CPU 0; CPU 1 idle. Idle balance should pull
	// one over so they run in parallel.
	r.kern.Spawn("a", &finiteProg{chunk: 10 * sim.Millisecond, left: 10}, 0)
	r.kern.Spawn("b", &finiteProg{chunk: 10 * sim.Millisecond, left: 10}, 0)
	var finished sim.Time
	r.kern.OnAllExited = func() { finished = r.eng.Now(); r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(5 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if finished > 130*sim.Millisecond {
		t.Fatalf("finished at %v; pull balancing failed (serial would be 200ms)", finished)
	}
	if r.kern.PullMigrations == 0 {
		t.Fatal("no pull migrations recorded")
	}
}

func TestAffinityPreventsPull(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	a := r.kern.Spawn("a", &finiteProg{chunk: 10 * sim.Millisecond, left: 10}, 0)
	b := r.kern.Spawn("b", &finiteProg{chunk: 10 * sim.Millisecond, left: 10}, 0)
	a.Affinity = r.kern.CPU(0)
	b.Affinity = r.kern.CPU(0)
	var finished sim.Time
	r.kern.OnAllExited = func() { finished = r.eng.Now(); r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(5 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if finished < 200*sim.Millisecond {
		t.Fatalf("finished at %v; affinity-bound tasks must serialize on CPU 0", finished)
	}
	if a.Migrations+b.Migrations != 0 {
		t.Fatal("affinity-bound task migrated")
	}
}

func TestWakeupPrefersIdleSibling(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	// One CPU-bound task on CPU 0, one sleeper whose previous CPU is 0:
	// on wake, it should land on idle CPU 1.
	r.kern.Spawn("busy", &finiteProg{chunk: 50 * sim.Millisecond, left: 20}, 0)
	sleeper := &sleepProg{sleep: 30 * sim.Millisecond, work: 10 * sim.Millisecond, rounds: 5}
	st := r.kern.Spawn("sleeper", sleeper, 0)
	r.kern.OnAllExited = func() { r.eng.Stop() }
	r.kern.Start()
	if err := r.eng.Run(10 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.Migrations == 0 {
		t.Fatal("sleeper never migrated to the idle sibling")
	}
}

type sleepProg struct {
	sleep, work sim.Time
	rounds      int
}

func (p *sleepProg) Step(t *guest.Task) guest.Action {
	if p.rounds <= 0 {
		return guest.Exit()
	}
	p.rounds--
	return guest.RunThen(p.work, func(tk *guest.Task, resume func()) {
		tk.Kernel().SleepTask(tk, p.sleep, resume)
	})
}

func TestRTAvgReflectsSteal(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	fg.Spawn("w0", hogProg{}, 0)
	fg.Spawn("w1", hogProg{}, 1)
	bg.Start()
	fg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	contended := fg.CPU(0).RTAvg()
	free := fg.CPU(1).RTAvg()
	if contended <= free {
		t.Fatalf("rt_avg contended=%.2f free=%.2f; steal should inflate the contended CPU", contended, free)
	}
}

func TestMigrationProbeFastPathForReadyTask(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	// Two tasks on CPU 0: one runs, the other is ready.
	a := r.kern.Spawn("a", &finiteProg{chunk: 100 * sim.Millisecond, left: 100}, 0)
	b := r.kern.Spawn("b", &finiteProg{chunk: 100 * sim.Millisecond, left: 100}, 0)
	a.Affinity = r.kern.CPU(0)
	b.Affinity = r.kern.CPU(0)
	r.kern.Start()
	var lat sim.Time = -1
	r.eng.After(50*sim.Millisecond, "probe", func() {
		ready := a
		if a.State() == guest.TaskRunning {
			ready = b
		}
		ready.Affinity = nil
		r.kern.MigrationLatencyProbe(ready, r.kern.CPU(1), func(l sim.Time) {
			lat = l
			r.eng.Stop()
		})
	})
	_ = r.eng.Run(2 * sim.Second)
	if lat != 0 {
		t.Fatalf("ready-task migration latency = %v, want 0 (fast path)", lat)
	}
}

func TestMigrationProbeWaitsForPreemptedVCPU(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	task := fg.Spawn("w0", hogProg{}, 0)
	task.Affinity = fg.CPU(0)
	fg.Start()
	bg.Start()
	var lat sim.Time = -1
	var tryProbe func()
	tryProbe = func() {
		// Probe only when the source vCPU is preempted, like Fig 1(b).
		if fg.VM().VCPUs[0].State() == hypervisor.StateRunnable {
			task.Affinity = nil
			fg.MigrationLatencyProbe(task, fg.CPU(1), func(l sim.Time) {
				lat = l
				eng.Stop()
			})
			return
		}
		eng.After(sim.Millisecond, "retry", tryProbe)
	}
	eng.After(500*sim.Millisecond, "probe", tryProbe)
	_ = eng.Run(5 * sim.Second)
	if lat < 5*sim.Millisecond {
		t.Fatalf("migration latency %v; stopper must wait for the preempted vCPU (~30ms)", lat)
	}
}

func TestTaskConservation(t *testing.T) {
	// Under heavy churn (migrations, wakes, IRS), every task is always
	// in exactly one place: some CPU's cur, some runqueue, blocked,
	// migrating, or done.
	eng, _, fg, bg := rig2(t, hypervisor.StrategyIRS, true)
	for i := 0; i < 4; i++ {
		fg.Spawn("w", &finiteProg{chunk: 3 * sim.Millisecond, left: 300}, i%2)
	}
	bg.Start()
	fg.Start()
	violations := 0
	eng.Every(sim.Millisecond, "audit", func() {
		seen := map[*guest.Task]int{}
		for _, c := range fg.CPUs() {
			if c.Current() != nil {
				seen[c.Current()]++
			}
		}
		for _, tk := range fg.Tasks() {
			switch tk.State() {
			case guest.TaskRunning:
				if seen[tk] != 1 {
					violations++
				}
			case guest.TaskReady, guest.TaskBlocked, guest.TaskMigrating, guest.TaskDone:
				if seen[tk] != 0 {
					violations++
				}
			default:
				violations++
			}
		}
	})
	fg.OnAllExited = func() { eng.Stop() }
	if err := eng.Run(30 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if violations != 0 {
		t.Fatalf("%d task-placement violations", violations)
	}
	if fg.LiveTasks() != 0 {
		t.Fatalf("%d tasks lost", fg.LiveTasks())
	}
}

func TestCPUTimeConservation(t *testing.T) {
	// Total task CPU time must not exceed total vCPU runtime, and must
	// account for most of it (the rest is kernel overhead).
	eng, _, fg, bg := rig2(t, hypervisor.StrategyIRS, true)
	fg.Spawn("w0", &finiteProg{chunk: 5 * sim.Millisecond, left: 400}, 0)
	fg.Spawn("w1", &finiteProg{chunk: 5 * sim.Millisecond, left: 400}, 1)
	fg.OnAllExited = func() { eng.Stop() }
	bg.Start()
	fg.Start()
	if err := eng.Run(30 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	var taskCPU sim.Time
	for _, tk := range fg.Tasks() {
		taskCPU += tk.CPUTime
	}
	vcpuRun := fg.VM().TotalRunTime()
	if taskCPU > vcpuRun {
		t.Fatalf("task CPU %v exceeds vCPU runtime %v", taskCPU, vcpuRun)
	}
	if float64(taskCPU) < float64(vcpuRun)*0.90 {
		t.Fatalf("task CPU %v far below vCPU runtime %v; unaccounted time", taskCPU, vcpuRun)
	}
}
