package guest

import "repro/internal/hypervisor"

// Pull-based IRS — the paper's proposed future work (§6): "The ideal
// migration should be pull-based and happen when a vCPU becomes idle.
// This calls for a new mechanism of task migration — migrating a
// 'running' task from a preempted vCPU."
//
// With Config.IRSPull enabled, a guest CPU that is about to idle scans
// its siblings: if a sibling vCPU is preempted at the hypervisor
// (runstate runnable) while its current task is frozen mid-execution,
// the idle CPU steals that task directly. Unlike the push-based
// migrator this never guesses at load — migration happens exactly when
// there is a free vCPU to absorb the work.

// irsPullSteal pulls the frozen current task off a preempted sibling
// vCPU. It reports whether a task was stolen.
func (c *CPU) irsPullSteal() bool {
	k := c.kern
	if !k.cfg.IRSPull {
		return false
	}
	for _, o := range k.cpus {
		if o == c || o.cur == nil || o.running {
			continue
		}
		if k.hv.GetRunstate(o.vcpu).State != hypervisor.StateRunnable {
			continue
		}
		t := o.cur
		if t.Affinity != nil && t.Affinity != c {
			continue
		}
		// The task's progress was banked when its vCPU was suspended;
		// detach it and re-home it here. This is the "new mechanism":
		// a guest-visible running task changes CPUs without its host
		// vCPU executing.
		o.cur = nil
		o.execGen++
		k.moveTask(t, c)
		t.MarkDisplaced(o)
		k.IRSPullSteals++
		k.mIRSPull.Inc()
		return true
	}
	return false
}
