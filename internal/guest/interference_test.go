package guest_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

// hogProg computes forever.
type hogProg struct{}

func (hogProg) Step(t *guest.Task) guest.Action { return guest.Run(10 * sim.Millisecond) }

// rig2 builds a foreground VM and an interfering hog VM sharing pCPU 0.
func rig2(t *testing.T, strategy hypervisor.Strategy, fgIRS bool) (*sim.Engine, *hypervisor.Hypervisor, *guest.Kernel, *guest.Kernel) {
	t.Helper()
	eng := sim.NewEngine()
	hc := hypervisor.DefaultConfig(2)
	hc.Strategy = strategy
	hv := hypervisor.New(eng, hc)

	fgVM := hv.NewVM("fg", 2, 256, fgIRS)
	bgVM := hv.NewVM("bg", 1, 256, false)
	for i, v := range fgVM.VCPUs {
		v.Pin(hv.PCPU(i))
	}
	bgVM.VCPUs[0].Pin(hv.PCPU(0))

	gc := guest.DefaultConfig()
	gc.IRS = fgIRS
	fg := guest.NewKernel(hv, fgVM, gc)
	bg := guest.NewKernel(hv, bgVM, guest.DefaultConfig())
	bg.Spawn("hog", hogProg{}, 0)
	return eng, hv, fg, bg
}

func TestFairSharingUnderContention(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	// Foreground task on contended CPU 0 runs alongside the hog.
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	fgRun := fg.VM().VCPUs[0].RunTime()
	bgRun := bg.VM().VCPUs[0].RunTime()
	ratio := float64(fgRun) / float64(bgRun)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("unfair sharing: fg=%v bg=%v ratio=%.2f", fgRun, bgRun, ratio)
	}
	total := fgRun + bgRun
	if total < sim.Time(float64(3*sim.Second)*0.95) {
		t.Fatalf("pCPU 0 underutilized: %v of 3s", total)
	}
}

func TestStealTimeAccountedUnderContention(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	steal := fg.VM().VCPUs[0].StealTime()
	// With two equal-weight competitors, about half the time is stolen.
	if steal < sim.Second || steal > 2*sim.Second {
		t.Fatalf("steal time %v, want ~1.5s", steal)
	}
	if fg.VM().VCPUs[1].StealTime() > 100*sim.Millisecond {
		t.Fatalf("uncontended vCPU has steal time %v", fg.VM().VCPUs[1].StealTime())
	}
}

func TestSARoundTripUnderIRS(t *testing.T) {
	eng, hv, fg, bg := rig2(t, hypervisor.StrategyIRS, true)
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	sent, acked, expired, _, mean, max := hv.SAStats()
	if sent == 0 {
		t.Fatal("no SA notifications sent despite contention")
	}
	if acked == 0 {
		t.Fatal("no SA notifications acknowledged")
	}
	if expired > sent/10 {
		t.Fatalf("too many SA expirations: %d of %d", expired, sent)
	}
	// The paper reports 20-26µs of SA processing delay (§3.1).
	if mean < 10*sim.Microsecond || mean > 40*sim.Microsecond {
		t.Fatalf("mean SA delay %v, want 10-40µs", mean)
	}
	if max > hv.Config().SALimit {
		t.Fatalf("max SA delay %v exceeds hard limit %v", max, hv.Config().SALimit)
	}
}

func TestIRSMigratesTaskOffPreemptedVCPU(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyIRS, true)
	// One busy task on the contended CPU 0; CPU 1 idle. IRS should keep
	// shoving the task to CPU 1 whenever vCPU 0 is preempted.
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fg.IRSMigrations == 0 {
		t.Fatal("IRS migrator never moved the task")
	}
	// The task should have accumulated nearly full speed: with an idle
	// sibling vCPU available it should not be throttled to 50%.
	task := fg.Tasks()[0]
	if task.CPUTime < sim.Time(float64(3*sim.Second)*0.8) {
		t.Fatalf("task CPU time %v, want >80%% of 3s (IRS should exploit idle vCPU 1)", task.CPUTime)
	}
}

func TestVanillaTaskStuckOnPreemptedVCPU(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	fg.Spawn("w0", hogProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Without IRS the guest never migrates the "running" task: it stays
	// on the contended vCPU at ~50% speed.
	task := fg.Tasks()[0]
	if task.CPUTime > sim.Time(float64(3*sim.Second)*0.65) {
		t.Fatalf("task CPU time %v; expected ~50%% without IRS", task.CPUTime)
	}
	if fg.IRSMigrations != 0 {
		t.Fatalf("vanilla guest performed %d IRS migrations", fg.IRSMigrations)
	}
}

func TestLHPCountedForLockHolders(t *testing.T) {
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	// A task that holds a lock almost always, on the contended CPU.
	fg.Spawn("holder", &alwaysLockedProg{}, 0)
	fg.Start()
	bg.Start()
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fg.VM().LHPCount == 0 {
		t.Fatal("no LHP events recorded for a persistent lock holder under contention")
	}
}

// alwaysLockedProg marks itself as holding a lock during all compute.
type alwaysLockedProg struct{ started bool }

func (p *alwaysLockedProg) Step(t *guest.Task) guest.Action {
	if !p.started {
		p.started = true
		t.LocksHeld++
	}
	return guest.Run(5 * sim.Millisecond)
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, int64) {
		eng, _, fg, bg := rig2(t, hypervisor.StrategyIRS, true)
		fg.Spawn("w0", hogProg{}, 0)
		fg.Spawn("w1", hogProg{}, 1)
		fg.Start()
		bg.Start()
		if err := eng.Run(2 * sim.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return fg.Tasks()[0].CPUTime, fg.IRSMigrations
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", c1, m1, c2, m2)
	}
}
