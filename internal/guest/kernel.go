package guest

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/trace"
)

// Config holds guest-kernel tunables. Defaults mirror a Linux 3.18-era
// CFS setup (250 Hz tick, ~6 ms effective slices with two runnable
// tasks) plus the measured costs of the IRS paths (§3.1: SA handling
// takes 20–26 µs end to end).
type Config struct {
	// Tick is the timer-interrupt period (Linux: 4 ms at 250 Hz).
	Tick sim.Time
	// SchedLatency is the CFS scheduling period; each of n runnable
	// tasks gets SchedLatency/n, floored at MinGranularity.
	SchedLatency   sim.Time
	MinGranularity sim.Time
	// WakeupGranularity limits wakeup preemption: a waking task preempts
	// only when its vruntime lags the current task's by more than this.
	WakeupGranularity sim.Time
	// BalanceInterval is the periodic load-balancing period per CPU.
	BalanceInterval sim.Time

	// IRS enables the guest half of interference-resilient scheduling:
	// the VIRQ_SA_UPCALL handler, context switcher, and migrator.
	IRS bool

	// IRSPull additionally enables the pull-based migration mechanism
	// proposed as future work in §6: an idling guest CPU steals the
	// frozen current task of a preempted sibling vCPU.
	IRSPull bool

	// Protocol-hardening toggles, each independently ablatable. All off
	// by default, reproducing the paper's unhardened protocol.

	// HardenDupSA suppresses duplicate SA upcalls: an upcall arriving
	// while the context switcher is already in flight is dropped
	// instead of restarting the handler (which would double its latency
	// and can push the ack past the hypervisor's hard limit).
	HardenDupSA bool
	// MigratorRetries bounds re-submission when the migrator finds no
	// viable target or its chosen busy target turns out to be preempted
	// (stale runstate); MigratorBackoff is the delay between attempts.
	// 0 retries reproduces the immediate send-home fallback.
	MigratorRetries int
	MigratorBackoff sim.Time
	// WakePoll, when positive, arms a recovery timer before the idle
	// loop blocks the vCPU, so a lost wakeup kick strands queued work
	// for at most WakePoll instead of forever.
	WakePoll sim.Time

	// Faults, when non-nil, injects guest-side faults: timer-tick
	// jitter and migrator-thread stalls. Nil injects nothing.
	Faults *fault.Injector

	// Trace, when non-nil, records task scheduling events.
	Trace *trace.Log

	// Metrics, when non-nil, receives guest-kernel telemetry: task
	// migration counts by cause, balance decisions, spin-wait entries,
	// migrator latency, and per-CPU rt_avg gauges. Nil disables
	// collection.
	Metrics *obs.Registry

	// Spans, when non-nil, is the tracer request-serving workloads on
	// this kernel mint blame spans from (see internal/span). Nil
	// disables causal tracing at zero cost.
	Spans *span.Tracer

	// SpinBeforeBlock is the adaptive-spin budget blocking primitives
	// burn before sleeping (futex/adaptive-mutex pre-sleep spinning).
	// This short spinning is what pause-loop exiting punishes on
	// blocking workloads (§5.2). 0 disables it.
	SpinBeforeBlock sim.Time

	// Costs of kernel paths, charged as virtual time.
	CtxSwitchCost sim.Time // task context switch
	TickCost      sim.Time // timer-interrupt handler
	IRQCost       sim.Time // generic interrupt entry/exit
	SAHandlerCost sim.Time // SA receiver + context switcher bottom half
	MigratorCost  sim.Time // migrator scan + __migrate_task
	StopperCost   sim.Time // migration_cpu_stop on the source CPU
	CacheHot      sim.Time // tasks that ran more recently are not pulled

	Seed uint64
}

// DefaultConfig returns the Linux-like defaults used in the paper's
// evaluation.
func DefaultConfig() Config {
	return Config{
		Tick:              4 * sim.Millisecond,
		SchedLatency:      12 * sim.Millisecond,
		MinGranularity:    2 * sim.Millisecond,
		WakeupGranularity: 1 * sim.Millisecond,
		BalanceInterval:   20 * sim.Millisecond,
		IRS:               false,
		SpinBeforeBlock:   40 * sim.Microsecond,
		CtxSwitchCost:     3 * sim.Microsecond,
		TickCost:          1 * sim.Microsecond,
		IRQCost:           2 * sim.Microsecond,
		SAHandlerCost:     18 * sim.Microsecond,
		MigratorCost:      4 * sim.Microsecond,
		StopperCost:       5 * sim.Microsecond,
		CacheHot:          500 * sim.Microsecond,
		Seed:              1,
	}
}

// Kernel is one guest operating system instance driving one VM.
type Kernel struct {
	eng  *sim.Engine
	hv   *hypervisor.Hypervisor
	vm   *hypervisor.VM
	cfg  Config
	cpus []*CPU
	rng  *sim.RNG

	tasks      []*Task
	nextTaskID int
	liveTasks  int

	migrator *migrator
	// spanObs is set once the per-vCPU span observers are registered
	// (first AttachSpan).
	spanObs bool

	// OnAllExited fires once every spawned task has exited.
	OnAllExited func()

	// Statistics.
	TaskMigrations  int64
	WakeMigrations  int64
	PullMigrations  int64
	IRSMigrations   int64
	IRSPullSteals   int64
	idleBalanceRuns int64

	// Hardening statistics (see the Harden* / WakePoll config knobs).
	SADupSuppressed    int64 // duplicate SA upcalls dropped
	MigratorRetried    int64 // migrations re-attempted after backoff
	WakePollRecoveries int64 // lost wakeups recovered by the idle poll

	// Metric handles (nil, hence no-op, without a registry).
	mTaskMigr    *obs.Counter
	mWakeMigr    *obs.Counter
	mPullMigr    *obs.Counter
	mIRSMigr     *obs.Counter
	mIRSPull     *obs.Counter
	mIdleBalance *obs.Counter
	mSpinWaits   *obs.Counter
	mMigrLatency *obs.Histogram
	mSADupSupp   *obs.Counter
	mMigrRetry   *obs.Counter
	mWakeRecover *obs.Counter
}

// NewKernel boots a guest kernel onto vm, creating one guest CPU per
// vCPU and registering the interrupt/scheduling hooks with the
// hypervisor. Call Start to bring the vCPUs online.
func NewKernel(hv *hypervisor.Hypervisor, vm *hypervisor.VM, cfg Config) *Kernel {
	k := &Kernel{
		eng: hv.Engine(),
		hv:  hv,
		vm:  vm,
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ uint64(vm.ID)<<32 ^ 0x6e51),
	}
	reg := cfg.Metrics
	vmL := obs.Labels{Sub: "guest", VM: vm.Name}
	k.mTaskMigr = reg.Counter("guest_task_migrations_total", vmL)
	k.mWakeMigr = reg.Counter("guest_wake_migrations_total", vmL)
	k.mPullMigr = reg.Counter("guest_pull_migrations_total", vmL)
	k.mIRSMigr = reg.Counter("guest_irs_migrations_total", vmL)
	k.mIRSPull = reg.Counter("guest_irs_pull_steals_total", vmL)
	k.mIdleBalance = reg.Counter("guest_idle_balance_total", vmL)
	k.mSpinWaits = reg.Counter("guest_spin_waits_total", vmL)
	k.mMigrLatency = reg.Histogram("guest_migrator_latency_ns", vmL)
	k.mSADupSupp = reg.Counter("guest_sa_dup_suppressed_total", vmL)
	k.mMigrRetry = reg.Counter("guest_migrator_retries_total", vmL)
	k.mWakeRecover = reg.Counter("guest_wake_poll_recoveries_total", vmL)
	for i, v := range vm.VCPUs {
		c := &CPU{kern: k, id: i, vcpu: v}
		c.mRTAvg = reg.Gauge("guest_rt_avg", obs.Labels{Sub: "guest", VM: vm.Name, CPU: fmt.Sprintf("cpu%d", i)})
		k.cpus = append(k.cpus, c)
		hv.RegisterGuest(v, c)
	}
	k.migrator = &migrator{kern: k}
	return k
}

// Start brings all vCPUs online.
func (k *Kernel) Start() {
	for _, c := range k.cpus {
		k.hv.StartVCPU(c.vcpu)
	}
}

// VM returns the hypervisor VM this kernel runs in.
func (k *Kernel) VM() *hypervisor.VM { return k.vm }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// CPU returns guest CPU i.
func (k *Kernel) CPU(i int) *CPU { return k.cpus[i] }

// CPUs returns all guest CPUs.
func (k *Kernel) CPUs() []*CPU { return k.cpus }

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Now returns current virtual time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// RNG returns the kernel's deterministic random stream.
func (k *Kernel) RNG() *sim.RNG { return k.rng }

// Tasks returns all spawned tasks.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// LiveTasks returns the number of tasks that have not exited.
func (k *Kernel) LiveTasks() int { return k.liveTasks }

// Spawn creates a task running prog, initially ready on CPU cpu.
func (k *Kernel) Spawn(name string, prog Program, cpu int) *Task {
	if cpu < 0 || cpu >= len(k.cpus) {
		panic(fmt.Sprintf("guest: spawn %s on invalid cpu %d", name, cpu))
	}
	t := &Task{
		ID:     k.nextTaskID,
		Name:   name,
		kern:   k,
		prog:   prog,
		weight: 1024,
		state:  TaskReady,
		cpu:    k.cpus[cpu],
	}
	k.nextTaskID++
	k.tasks = append(k.tasks, t)
	k.liveTasks++
	c := t.cpu
	t.vruntime = c.minVruntime()
	t.pending = func() { k.step(t) }
	c.rq.Enqueue(t)
	k.kickCPU(c)
	return t
}

// step asks the program for the next action and begins it. It runs in
// task context (t is the current task of an executing CPU).
func (k *Kernel) step(t *Task) {
	if t.exited {
		return
	}
	act := t.prog.Step(t)
	switch act.Kind {
	case ActExit:
		k.exitTask(t)
	case ActRun:
		done := act.Done
		t.segRemaining = act.Dur
		t.segDone = func() {
			if done == nil {
				k.step(t)
				return
			}
			done(t, func() { k.step(t) })
		}
		t.cpu.startSegment(t)
	default:
		panic(fmt.Sprintf("guest: bad action kind %d from %s", act.Kind, t.Name))
	}
}

// exitTask terminates t and schedules the next task on its CPU.
func (k *Kernel) exitTask(t *Task) {
	c := t.cpu
	t.exited = true
	t.state = TaskDone
	k.liveTasks--
	if c.cur == t {
		c.bankCur()
		c.cur = nil
		if k.liveTasks == 0 && k.OnAllExited != nil {
			k.OnAllExited()
		}
		c.schedule()
		return
	}
	c.rq.Remove(t)
	if k.liveTasks == 0 && k.OnAllExited != nil {
		k.OnAllExited()
	}
}

// RunInTask schedules d of on-CPU work for task t (which must be the
// current task of its CPU), then calls done. Synchronization code uses
// it to express work performed inside critical sections.
func (k *Kernel) RunInTask(t *Task, d sim.Time, done func()) {
	if t.cpu.cur != t {
		panic("guest: RunInTask on non-current task " + t.Name)
	}
	t.segRemaining = d
	t.segDone = done
	t.cpu.startSegment(t)
}

// BlockTask puts the current task of its CPU to sleep. Synchronization
// primitives call this from task context; the task resumes when
// WakeTask is called and the task is next scheduled.
func (k *Kernel) BlockTask(t *Task) {
	c := t.cpu
	if c.cur != t {
		panic("guest: BlockTask on non-current task " + t.Name)
	}
	c.bankCur()
	t.state = TaskBlocked
	c.cur = nil
	k.spanSync(t)
	k.traceTask(t, "blocked on cpu%d", c.id)
	c.schedule()
}

// traceTask records a task event when tracing is enabled.
func (k *Kernel) traceTask(t *Task, format string, args ...any) {
	if k.cfg.Trace != nil {
		k.cfg.Trace.Recordf(k.eng.Now(), trace.KindTask, t.Name, format, args...)
	}
}

// SleepTask blocks the current task for duration d, then wakes it and
// runs cont. (The wakeup timer is modelled as an engine event rather
// than a guest timer interrupt; see DESIGN.md.)
func (k *Kernel) SleepTask(t *Task, d sim.Time, cont func()) {
	k.eng.After(d, "sleep-"+t.Name, func() {
		if t.state == TaskBlocked {
			k.WakeTask(t, cont)
		}
	})
	k.BlockTask(t)
}

// WakeTask makes a blocked task ready, running wakeup load balancing to
// choose its CPU. cont, if non-nil, runs when the task next gets CPU.
func (k *Kernel) WakeTask(t *Task, cont func()) {
	if t.state != TaskBlocked {
		panic("guest: WakeTask on " + t.String())
	}
	if cont != nil {
		prev := t.pending
		if prev != nil {
			panic("guest: WakeTask with pending continuation on " + t.Name)
		}
		t.pending = cont
	}
	target := k.selectCPUForWake(t)
	if target != t.cpu {
		k.WakeMigrations++
		k.mWakeMigr.Inc()
		t.Migrations++
	}
	t.cpu = target
	t.state = TaskReady
	// Sleeper fairness: never let a long sleeper hoard vruntime credit.
	base := target.minVruntime() - k.cfg.SchedLatency/2
	if t.vruntime < base {
		t.vruntime = base
	}
	target.rq.Enqueue(t)
	k.spanSync(t)
	k.traceTask(t, "woken on cpu%d", target.id)
	k.checkWakePreempt(target, t)
	k.kickCPU(target)
}

// checkWakePreempt applies CFS wakeup preemption plus the IRS rule from
// Fig. 4: a waking task always preempts a migration-tagged current task
// so lock waiters wake on their home vCPU without ping-pong migration.
// Like the real kernel, it only flags the preemption (need_resched);
// the switch happens at the next preemption point.
func (k *Kernel) checkWakePreempt(c *CPU, woken *Task) {
	cur := c.cur
	if cur == nil {
		return
	}
	tagPreempt := k.cfg.IRS && cur.MigrTag
	if !tagPreempt && woken.vruntime >= cur.vruntime-k.cfg.WakeupGranularity {
		return
	}
	c.setNeedResched()
}

// AuditInvariants walks the guest scheduler's state and reports every
// broken invariant through report (rule, detail). The central rule is
// no-lost-tasks: every non-exited task must be locatable exactly where
// its state claims it is — on a CPU, on a runqueue, in the migrator's
// hands, or blocked awaiting a wakeup. Faults (lost kicks, stalled
// migrators, blackouts) may delay tasks, never strand them untracked.
func (k *Kernel) AuditInvariants(report func(rule, detail string)) {
	live := 0
	for _, t := range k.tasks {
		if t.exited {
			if t.state != TaskDone {
				report("no-lost-tasks", fmt.Sprintf("%s exited but in state %s", t.Name, t.state))
			}
			continue
		}
		live++
		switch t.state {
		case TaskRunning:
			if t.cpu == nil || t.cpu.cur != t {
				report("no-lost-tasks", fmt.Sprintf("%s claims running but is not current anywhere", t.Name))
			}
		case TaskReady:
			onRQ := false
			if t.cpu != nil {
				for _, q := range t.cpu.rq.Tasks() {
					if q == t {
						onRQ = true
						break
					}
				}
				if t.cpu.cur == t {
					report("no-lost-tasks", fmt.Sprintf("%s claims ready but is current on cpu%d", t.Name, t.cpu.id))
				}
			}
			if !onRQ {
				report("no-lost-tasks", fmt.Sprintf("%s claims ready but is on no runqueue", t.Name))
			}
		case TaskMigrating:
			found := false
			for _, it := range k.migrator.queue {
				if it.t == t {
					found = true
					break
				}
			}
			if !found {
				_, found = k.migrator.retrying[t]
			}
			if !found {
				report("no-lost-tasks", fmt.Sprintf("%s claims migrating but the migrator does not hold it", t.Name))
			}
		case TaskBlocked:
			// Awaiting an external wakeup; nothing locatable to check.
		default:
			report("no-lost-tasks", fmt.Sprintf("%s in unexpected state %s", t.Name, t.state))
		}
	}
	if live != k.liveTasks {
		report("live-task-count", fmt.Sprintf("%d tasks not exited but liveTasks=%d", live, k.liveTasks))
	}
}

// kickCPU ensures CPU c will notice newly queued work: an idle blocked
// vCPU gets an event-channel kick; an executing idle loop reschedules.
func (k *Kernel) kickCPU(c *CPU) {
	if c.cur != nil {
		return
	}
	if c.running {
		c.schedule()
		return
	}
	if c.vcpu.State() == hypervisor.StateBlocked {
		k.hv.Kick(c.vcpu)
	}
	// A runnable (preempted) vCPU will pick the task up on resume.
}
