package guest

import "repro/internal/trace"

// Guest-level load balancing: pull (idle + periodic) migration and
// wakeup CPU selection. As §2.3 of the paper observes, none of this
// machinery reacts to hypervisor preemption on its own: a preempted
// vCPU's current task stays in the "running" state and is never
// migratable, and hypervisor-level imbalance creates no guest-level
// imbalance. IRS adds the missing trigger (see irs.go).

// pullBalance pulls one ready task from the busiest sibling runqueue.
// idle=true is the aggressive new-idle balance; otherwise the standard
// imbalance threshold applies. It reports whether a task was pulled.
func (c *CPU) pullBalance(idle bool) bool {
	k := c.kern
	if idle {
		k.idleBalanceRuns++
		k.mIdleBalance.Inc()
	}
	myLoad := c.rq.Len()
	if c.cur != nil {
		myLoad++
	}
	var busiest *CPU
	busiestLoad := 0
	for _, o := range k.cpus {
		if o == c || o.rq.Len() == 0 {
			continue
		}
		load := o.rq.Len()
		if o.cur != nil {
			load++
		}
		if load > busiestLoad {
			busiest, busiestLoad = o, load
		}
	}
	if busiest == nil {
		return false
	}
	// Standard balance needs a real imbalance; new-idle balance pulls
	// whenever anyone has a waiter.
	if !idle && busiestLoad-myLoad < 2 {
		return false
	}
	t := c.pickPullTask(busiest)
	if t == nil {
		return false
	}
	busiest.rq.Remove(t)
	k.moveTask(t, c)
	k.PullMigrations++
	k.mPullMigr.Inc()
	return true
}

// pickPullTask selects which ready task to steal from src. Tagged tasks
// whose home is this CPU come first (the IRS "bring it back" rule);
// cache-hot tasks are skipped unless nothing else qualifies.
func (c *CPU) pickPullTask(src *CPU) *Task {
	now := c.kern.Now()
	var fallback *Task
	for _, t := range src.rq.Tasks() {
		if t.Affinity != nil && t.Affinity != c {
			continue
		}
		if t.MigrTag && t.homeCPU == c {
			return t
		}
		if now-t.lastRun < c.kern.cfg.CacheHot {
			if fallback == nil {
				fallback = t
			}
			continue
		}
		return t
	}
	return fallback
}

// moveTask re-homes a ready task onto dst, renormalizing its vruntime
// so it neither dominates nor starves on the new queue.
func (k *Kernel) moveTask(t *Task, dst *CPU) {
	// Any onward migration consumes the displacement tag: the task has
	// either returned home or found a new home.
	if t.MigrTag {
		t.MigrTag = false
		t.homeCPU = nil
	}
	src := t.cpu
	if src != nil && src != dst {
		delta := t.vruntime - src.minVruntime()
		if delta < 0 {
			delta = 0
		}
		t.vruntime = dst.minVruntime() + delta
	}
	t.cpu = dst
	t.state = TaskReady
	t.Migrations++
	k.TaskMigrations++
	k.mTaskMigr.Inc()
	if k.cfg.Trace != nil {
		from := -1
		if src != nil {
			from = src.id
		}
		k.cfg.Trace.Recordf(k.eng.Now(), trace.KindMigrate, t.Name, "cpu%d -> cpu%d", from, dst.id)
	}
	dst.rq.Enqueue(t)
	k.spanSync(t)
}

// selectCPUForWake chooses where a waking task should run: its previous
// CPU when idle, otherwise an idle sibling, otherwise the previous CPU.
// With IRS, a waker whose previous CPU currently runs a migration-
// tagged task stays put and preempts the tagged task instead (the
// ping-pong fix from Fig. 4).
func (k *Kernel) selectCPUForWake(t *Task) *CPU {
	if t.Affinity != nil {
		return t.Affinity
	}
	prev := t.cpu
	if prev == nil {
		prev = k.cpus[0]
	}
	if prev.GuestIdle() {
		return prev
	}
	if k.cfg.IRS && prev.cur != nil && prev.cur.MigrTag {
		return prev
	}
	for _, c := range k.cpus {
		if c.GuestIdle() {
			return c
		}
	}
	return prev
}
