package guest

import "repro/internal/sim"

// runQueue is a CFS-like ready queue ordered by task vruntime. Sizes
// here are tiny (a handful of tasks), so an ordered slice is both
// simple and fast.
type runQueue struct {
	tasks       []*Task
	minVruntime sim.Time
}

// Len returns the number of queued (ready, not running) tasks.
func (rq *runQueue) Len() int { return len(rq.tasks) }

// Enqueue inserts t in vruntime order.
func (rq *runQueue) Enqueue(t *Task) {
	pos := len(rq.tasks)
	for i, q := range rq.tasks {
		if t.vruntime < q.vruntime {
			pos = i
			break
		}
	}
	rq.tasks = append(rq.tasks, nil)
	copy(rq.tasks[pos+1:], rq.tasks[pos:])
	rq.tasks[pos] = t
}

// PickNext removes and returns the task with the smallest vruntime.
func (rq *runQueue) PickNext() *Task {
	if len(rq.tasks) == 0 {
		return nil
	}
	t := rq.tasks[0]
	rq.tasks = rq.tasks[1:]
	rq.updateMin(t.vruntime)
	return t
}

// Peek returns the lowest-vruntime task without removing it.
func (rq *runQueue) Peek() *Task {
	if len(rq.tasks) == 0 {
		return nil
	}
	return rq.tasks[0]
}

// Remove deletes t from the queue, reporting whether it was present.
func (rq *runQueue) Remove(t *Task) bool {
	for i, q := range rq.tasks {
		if q == t {
			rq.tasks = append(rq.tasks[:i], rq.tasks[i+1:]...)
			return true
		}
	}
	return false
}

// Tasks returns the queued tasks in vruntime order. The caller must not
// mutate the returned slice.
func (rq *runQueue) Tasks() []*Task { return rq.tasks }

func (rq *runQueue) updateMin(v sim.Time) {
	if v > rq.minVruntime {
		rq.minVruntime = v
	}
}
