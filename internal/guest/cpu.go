package guest

import (
	"repro/internal/hypervisor"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CPU is the guest kernel's view of one vCPU: a CFS runqueue, the
// current task, the timer tick, and the machinery that freezes and
// resumes execution as the hypervisor schedules the backing vCPU.
type CPU struct {
	kern *Kernel
	id   int
	vcpu *hypervisor.VCPU

	rq  runQueue
	cur *Task

	// running mirrors whether the backing vCPU is executing on a pCPU.
	running bool
	// executing is true while cur actively consumes CPU (a compute
	// segment or a spin loop); curStart is when that stint began.
	executing bool
	curStart  sim.Time
	// completion fires when the current compute segment finishes; nil
	// while spinning (spins end by grant, not by time).
	completion sim.EventRef
	// execGen invalidates in-flight deferred work across suspends.
	execGen uint64

	sliceUsed   sim.Time
	lastBalance sim.Time
	// needResched defers a wakeup/migration preemption to the next
	// preemption point, so continuation chains never lose the CPU
	// mid-flight (the kernel's TIF_NEED_RESCHED).
	needResched bool

	// rtAvg is the Linux-style runqueue load estimate combining guest
	// task load and hypervisor steal time (§3.3).
	rtAvg        float64
	lastSteal    sim.Time
	lastRTUpdate sim.Time

	// stoppers queue migration_cpu_stop work that must run on this CPU.
	stoppers []func()

	tickArmed bool
	// saInFlight is true while the SA receiver/context switcher runs;
	// with HardenDupSA a duplicate upcall arriving in that window is
	// dropped instead of restarting the handler.
	saInFlight bool
	// wakePollArmed is true while the idle loop's wakeup-loss recovery
	// timer (Config.WakePoll) is armed on the blocked vCPU.
	wakePollArmed bool

	// Statistics.
	IdleTime  sim.Time
	idleSince sim.Time
	TicksRun  int64
	Switches  int64

	mRTAvg *obs.Gauge // nil without a registry
}

var _ hypervisor.GuestContext = (*CPU)(nil)

// ID returns the guest CPU index.
func (c *CPU) ID() int { return c.id }

// VCPU returns the backing virtual CPU.
func (c *CPU) VCPU() *hypervisor.VCPU { return c.vcpu }

// Current returns the task the guest believes is running on this CPU.
func (c *CPU) Current() *Task { return c.cur }

// QueueLen returns the number of ready tasks waiting on this CPU.
func (c *CPU) QueueLen() int { return c.rq.Len() }

// Running reports whether the backing vCPU currently executes.
func (c *CPU) Running() bool { return c.running }

// RTAvg returns the current runqueue load estimate.
func (c *CPU) RTAvg() float64 { return c.rtAvg }

// GuestIdle reports whether the guest has no work for this CPU.
func (c *CPU) GuestIdle() bool { return c.cur == nil && c.rq.Len() == 0 }

// minVruntime approximates the runqueue's minimum vruntime for
// placement of woken and migrated tasks.
func (c *CPU) minVruntime() sim.Time {
	min := c.rq.minVruntime
	if c.cur != nil && c.cur.vruntime > min {
		min = c.cur.vruntime
	}
	if head := c.rq.Peek(); head != nil && head.vruntime > min {
		min = head.vruntime
	}
	return min
}

// ---- hypervisor.GuestContext ----

// Resume is invoked by the hypervisor when the vCPU starts executing.
func (c *CPU) Resume() {
	c.running = true
	now := c.kern.Now()
	var cost sim.Time
	irqs := c.kern.hv.ClaimPendingIRQs(c.vcpu)
	if c.wakePollArmed {
		// The idle loop armed a wakeup-loss recovery timer before
		// blocking. If we wake up with queued work but no kick among the
		// claimed interrupts, the wakeup IPI was lost and the poll is
		// what saved the stranded task.
		c.wakePollArmed = false
		kicked := false
		for _, irq := range irqs {
			if irq == hypervisor.IRQKick {
				kicked = true
			}
		}
		if !kicked && c.rq.Len() > 0 {
			c.kern.WakePollRecoveries++
			c.kern.mWakeRecover.Inc()
		}
	}
	// Timer interrupts outrank everything else (TIMER_SOFTIRQ priority).
	for pass := 0; pass < 2; pass++ {
		for _, irq := range irqs {
			timer := irq == hypervisor.IRQTimer
			if (pass == 0) == timer {
				cost += c.handleIRQ(irq)
			}
		}
	}
	for _, w := range c.stoppers {
		w()
		cost += c.kern.cfg.StopperCost
	}
	c.stoppers = nil
	c.kern.migrator.kick()
	if !c.tickArmed && (c.cur != nil || c.rq.Len() > 0) {
		c.armTick(now)
	}
	c.execAfter(cost, c.startCur)
}

// Suspend is invoked when the vCPU stops executing; it freezes the
// current task's progress.
func (c *CPU) Suspend() {
	c.bankCur()
	c.running = false
	c.execGen++
	// Suspension invalidates any in-flight SA handler (execGen above);
	// a later upcall must be allowed to start a fresh one.
	c.saInFlight = false
}

// TakeIRQ handles an interrupt delivered while executing.
func (c *CPU) TakeIRQ(irq hypervisor.IRQ) {
	if irq == hypervisor.IRQSAUpcall && c.saInFlight && c.kern.cfg.HardenDupSA {
		// Hardened: a duplicate upcall while the handler is already in
		// flight is dropped. Without this, the bankCur/execGen++ below
		// cancels the in-flight handler and restarts it, doubling the
		// ack latency — enough to blow the hypervisor's hard limit.
		c.kern.SADupSuppressed++
		c.kern.mSADupSupp.Inc()
		return
	}
	c.bankCur()
	c.execGen++
	if irq == hypervisor.IRQSAUpcall {
		// SA receiver + context-switcher bottom half; the sched_op
		// acknowledgement happens when the handler cost has elapsed.
		c.saInFlight = true
		c.execAfter(c.kern.cfg.IRQCost+c.kern.cfg.SAHandlerCost, c.finishSAUpcall)
		return
	}
	cost := c.handleIRQ(irq)
	c.execAfter(cost, c.startCur)
}

// Descheduling classifies the preempted vCPU for LHP/LWP accounting.
func (c *CPU) Descheduling() hypervisor.PreemptClass {
	t := c.cur
	switch {
	case t == nil:
		return hypervisor.PreemptIdle
	case t.LocksHeld > 0:
		return hypervisor.PreemptLockHolder
	case t.WaitingLock || t.spin != nil:
		return hypervisor.PreemptLockWaiter
	default:
		return hypervisor.PreemptOther
	}
}

// ---- execution machinery ----

// bankCur folds the elapsed stint into the current task's accounting
// and cancels any pending completion. Safe to call at any time.
func (c *CPU) bankCur() {
	if !c.executing || c.cur == nil {
		return
	}
	now := c.kern.Now()
	elapsed := now - c.curStart
	t := c.cur
	t.CPUTime += elapsed
	t.vruntime += elapsed
	t.lastRun = now
	c.sliceUsed += elapsed
	if !c.completion.Cancelled() {
		t.segRemaining -= elapsed
		if t.segRemaining < 0 {
			t.segRemaining = 0
		}
		c.kern.eng.Cancel(c.completion)
		c.completion = sim.EventRef{}
	} else if t.spin != nil {
		t.spin.spent += elapsed
		c.kern.eng.Cancel(t.spin.timeoutEv)
		t.spin.timeoutEv = sim.EventRef{}
	}
	c.executing = false
	c.kern.spanSync(t)
}

// execAfter runs fn after the given kernel-path cost, unless the vCPU
// is suspended in between.
func (c *CPU) execAfter(cost sim.Time, fn func()) {
	if cost <= 0 {
		fn()
		return
	}
	gen := c.execGen
	c.kern.eng.After(cost, "guest-exec", func() {
		if c.running && gen == c.execGen {
			fn()
		}
	})
}

// startCur (re)starts whatever the CPU should be doing: pending
// continuations, an interrupted compute segment, a spin loop, or task
// selection when there is no current task.
func (c *CPU) startCur() {
	if !c.running || c.executing {
		return
	}
	if c.needResched {
		c.needResched = false
		if c.cur != nil && c.rq.Len() > 0 {
			c.preemptLocalDeferred()
			c.schedule()
			return
		}
	}
	t := c.cur
	if t == nil {
		c.schedule()
		return
	}
	if t.pending != nil {
		fn := t.pending
		t.pending = nil
		fn()
		// The continuation may have blocked or exited the task, in
		// which case a successor was already dispatched; only re-enter
		// when the task is still current.
		if c.cur != t {
			return
		}
		c.startCur()
		return
	}
	if t.spin != nil {
		sw := t.spin
		if sw.granted || (sw.poll != nil && sw.poll()) {
			c.endSpin(t, sw)
			sw.resume()
			if c.cur != t {
				return
			}
			c.startCur()
			return
		}
		if sw.budget > 0 && sw.spent >= sw.budget {
			// Adaptive-spin budget exhausted: fall back (usually sleep).
			c.endSpin(t, sw)
			sw.onTimeout()
			if c.cur != t {
				return
			}
			c.startCur()
			return
		}
		// Keep spinning: burn CPU until granted, timed out or preempted.
		c.executing = true
		c.curStart = c.kern.Now()
		c.kern.spanSync(t)
		c.kern.hv.SpinBegin(c.vcpu)
		if sw.budget > 0 {
			sw.timeoutEv = c.kern.eng.After(sw.budget-sw.spent, "spin-budget-"+t.Name, func() {
				c.spinTimeout(t, sw)
			})
		}
		return
	}
	if t.segRemaining > 0 {
		c.executing = true
		c.curStart = c.kern.Now()
		c.kern.spanSync(t)
		done := t.segDone
		c.completion = c.kern.eng.After(t.segRemaining, "seg-"+t.Name, func() {
			if c.cur != t {
				return
			}
			c.completion = sim.EventRef{}
			c.bankCur()
			t.segRemaining = 0
			t.segDone = nil
			done()
		})
		return
	}
	if t.segDone != nil {
		// Zero-length segment: complete immediately.
		done := t.segDone
		t.segDone = nil
		done()
		c.startCur()
		return
	}
	// Nothing to do: the program must have finished a step without
	// arming the next one (it blocked and was requeued elsewhere, or
	// exited). Let the scheduler sort it out.
	c.schedule()
}

// endSpin clears a consumed or abandoned spin wait.
func (c *CPU) endSpin(t *Task, sw *spinWait) {
	c.kern.eng.Cancel(sw.timeoutEv)
	sw.timeoutEv = sim.EventRef{}
	t.spin = nil
	t.spinHolder = nil
	t.WaitingLock = false
	c.kern.hv.SpinEnd(c.vcpu)
}

// spinTimeout fires when a bounded spin exhausts its budget while
// actually executing.
func (c *CPU) spinTimeout(t *Task, sw *spinWait) {
	if c.cur != t || t.spin != sw || !c.running || !c.executing {
		return
	}
	c.bankCur()
	c.execGen++
	c.endSpin(t, sw)
	sw.onTimeout()
	if c.cur == t {
		c.startCur()
	}
}

// startSegment is called from Kernel.step when a new compute segment is
// armed for t. If t is currently on CPU and executing context, begin.
func (c *CPU) startSegment(t *Task) {
	if c.cur == t && c.running && !c.executing {
		c.startCur()
	}
	// Otherwise the segment starts when the task is next scheduled.
}

// schedule picks the next task when the CPU has no current task.
func (c *CPU) schedule() {
	if c.cur != nil || !c.running {
		return
	}
	next := c.rq.PickNext()
	if next == nil {
		c.goIdle()
		return
	}
	c.dispatchTask(next)
}

func (c *CPU) dispatchTask(next *Task) {
	if c.idleSince > 0 {
		c.IdleTime += c.kern.Now() - c.idleSince
		c.idleSince = 0
	}
	// Leaving the idle loop without a Resume (kicked while executing):
	// the recovery poll no longer applies.
	c.wakePollArmed = false
	next.state = TaskRunning
	next.cpu = c
	c.cur = next
	c.sliceUsed = 0
	c.Switches++
	c.kern.spanSync(next)
	if !c.tickArmed {
		c.armTick(c.kern.Now())
	}
	c.execAfter(c.kern.cfg.CtxSwitchCost, c.startCur)
}

// setNeedResched requests a reschedule of CPU c. A CPU that is actively
// executing a compute segment is interrupted right away (the resched
// IPI); one that is mid-kernel-path defers to the next preemption
// point in startCur.
func (c *CPU) setNeedResched() {
	if c.running && c.executing {
		c.preemptLocal()
		return
	}
	c.needResched = true
}

// preemptLocal moves the current task back to the runqueue (guest-level
// CFS preemption) and reschedules.
func (c *CPU) preemptLocal() {
	t := c.cur
	if t == nil {
		return
	}
	c.bankCur()
	c.execGen++
	t.state = TaskReady
	c.cur = nil
	c.rq.Enqueue(t)
	c.kern.spanSync(t)
	c.schedule()
}

// goIdle tries idle (pull) balancing, then blocks the vCPU.
func (c *CPU) goIdle() {
	// An in-flight IRS migration may be about to land a task right
	// here (e.g. returning home); settle it before deciding to block,
	// or the vCPU gives up its scheduling slot for nothing.
	if len(c.kern.migrator.queue) > 0 {
		c.kern.migrator.drainSync()
		if c.cur != nil || c.rq.Len() > 0 {
			c.schedule()
			return
		}
	}
	if c.pullBalance(true) || c.irsPullSteal() {
		c.schedule()
		return
	}
	// Tickless idle: stop the tick and give the vCPU back.
	c.stopTick()
	if c.idleSince == 0 {
		c.idleSince = c.kern.Now()
	}
	if wp := c.kern.cfg.WakePoll; wp > 0 {
		// Hardened: arm a recovery timer so a lost wakeup kick strands
		// queued work for at most WakePoll. The one-shot timer is
		// naturally replaced by the next armTick once the CPU is busy.
		c.wakePollArmed = true
		c.kern.hv.SetTimer(c.vcpu, c.kern.Now()+wp)
	}
	if !c.kern.hv.SchedOpBlock(c.vcpu) {
		// An interrupt is pending; it will arrive via TakeIRQ or the
		// next Resume. Stay in the (running) idle loop.
		c.wakePollArmed = false
		if c.running {
			irqs := c.kern.hv.ClaimPendingIRQs(c.vcpu)
			var cost sim.Time
			for _, irq := range irqs {
				cost += c.handleIRQ(irq)
			}
			c.execAfter(cost, c.startCur)
		}
		return
	}
}

// handleIRQ dispatches one interrupt and returns its handling cost.
func (c *CPU) handleIRQ(irq hypervisor.IRQ) sim.Time {
	switch irq {
	case hypervisor.IRQTimer:
		return c.kern.cfg.IRQCost + c.tick()
	case hypervisor.IRQKick:
		// Reschedule IPI: queued work (if any) is picked up by the
		// startCur that follows IRQ handling.
		return c.kern.cfg.IRQCost
	case hypervisor.IRQSAUpcall:
		// Handled specially in TakeIRQ; an SA never arrives pended.
		return c.kern.cfg.IRQCost
	default:
		return c.kern.cfg.IRQCost
	}
}

// armTick programs the next timer interrupt via the hypervisor. An
// injected tick-jitter fault pushes the expiry late.
func (c *CPU) armTick(now sim.Time) {
	c.tickArmed = true
	c.kern.hv.SetTimer(c.vcpu, now+c.kern.cfg.Tick+c.kern.cfg.Faults.TickDelay(c.kern.cfg.Tick))
}

func (c *CPU) stopTick() {
	if c.tickArmed {
		c.tickArmed = false
		c.kern.hv.StopTimer(c.vcpu)
	}
}

// tick is the timer-interrupt handler: CFS slice enforcement, rt_avg
// update, periodic load balancing, and re-arming the timer.
func (c *CPU) tick() sim.Time {
	c.TicksRun++
	cost := c.kern.cfg.TickCost
	now := c.kern.Now()
	c.updateRTAvg(now)

	if c.cur != nil && c.rq.Len() > 0 {
		nr := c.rq.Len() + 1
		slice := c.kern.cfg.SchedLatency / sim.Time(nr)
		if slice < c.kern.cfg.MinGranularity {
			slice = c.kern.cfg.MinGranularity
		}
		if c.sliceUsed >= slice {
			c.preemptLocalDeferred()
		}
	}
	if now-c.lastBalance >= c.kern.cfg.BalanceInterval {
		c.lastBalance = now
		if c.pullBalance(false) {
			cost += c.kern.cfg.MigratorCost
		}
	}
	// NOHZ idle balancing: a busy CPU with queued work kicks an idle
	// sibling so it can pull (idle CPUs are tickless and cannot balance
	// on their own).
	if c.rq.Len() > 0 {
		for _, o := range c.kern.cpus {
			if o != c && o.GuestIdle() {
				c.kern.kickCPU(o)
				break
			}
		}
	}
	if c.cur != nil || c.rq.Len() > 0 {
		c.armTick(now)
	} else {
		c.tickArmed = false
	}
	return cost
}

// preemptLocalDeferred requeues the current task; used from interrupt
// context where cur is already banked.
func (c *CPU) preemptLocalDeferred() {
	t := c.cur
	if t == nil {
		return
	}
	t.state = TaskReady
	c.cur = nil
	c.rq.Enqueue(t)
	c.kern.spanSync(t)
	// Task selection happens in the startCur that follows the IRQ.
}

// updateRTAvg refreshes the Linux-style rt_avg estimate: an EWMA over
// guest runqueue load plus the hypervisor steal-time fraction.
func (c *CPU) updateRTAvg(now sim.Time) {
	window := now - c.lastRTUpdate
	if window <= 0 {
		return
	}
	steal := c.vcpu.StealTime()
	dSteal := steal - c.lastSteal
	c.lastSteal = steal
	c.lastRTUpdate = now
	load := float64(c.rq.Len())
	if c.cur != nil {
		load++
	}
	stealFrac := float64(dSteal) / float64(window)
	sample := load + stealFrac
	const alpha = 0.25
	c.rtAvg = (1-alpha)*c.rtAvg + alpha*sample
	c.mRTAvg.Set(c.rtAvg)
}
