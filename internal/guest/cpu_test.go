package guest_test

import (
	"testing"

	"repro/internal/guest"
	"repro/internal/guestsync"
	"repro/internal/hypervisor"
	"repro/internal/sim"
)

func TestTickFiresPeriodically(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	r.kern.Spawn("w", &computeProg{chunk: 10 * sim.Millisecond, n: 50}, 0)
	r.kern.OnAllExited = func() { r.eng.Stop() }
	r.kern.Start()
	_ = r.eng.Run(5 * sim.Second)
	ticks := r.kern.CPU(0).TicksRun
	// 500ms of work at a 4ms tick: ~125 ticks.
	if ticks < 100 || ticks > 150 {
		t.Fatalf("ticks = %d, want ~125", ticks)
	}
}

func TestTicklessIdleStopsTicks(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	r.kern.Spawn("w", &computeProg{chunk: 10 * sim.Millisecond, n: 5}, 0)
	r.kern.Start()
	_ = r.eng.Run(2 * sim.Second)
	ticks := r.kern.CPU(0).TicksRun
	// 50ms of work then idle: ticks must stop shortly after.
	if ticks > 20 {
		t.Fatalf("ticks = %d; the idle CPU kept ticking", ticks)
	}
}

func TestCFSInterleavesBySlice(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	a := r.kern.Spawn("a", &computeProg{chunk: 200 * sim.Millisecond, n: 1}, 0)
	b := r.kern.Spawn("b", &computeProg{chunk: 200 * sim.Millisecond, n: 1}, 0)
	r.kern.OnAllExited = func() { r.eng.Stop() }
	r.kern.Start()

	// Track alternation: sample which task runs every ms.
	var switches int
	var last *guest.Task
	r.eng.Every(sim.Millisecond, "watch", func() {
		cur := r.kern.CPU(0).Current()
		if cur != nil && cur != last {
			switches++
			last = cur
		}
	})
	_ = r.eng.Run(2 * sim.Second)
	// 400ms total at ~6ms effective slices: dozens of switches.
	if switches < 20 {
		t.Fatalf("only %d task alternations; CFS slicing inactive", switches)
	}
	// Both finish with similar CPU time.
	d := a.CPUTime - b.CPUTime
	if d < 0 {
		d = -d
	}
	if d > 20*sim.Millisecond {
		t.Fatalf("unfair CFS: a=%v b=%v", a.CPUTime, b.CPUTime)
	}
}

func TestIdleTimeAccounted(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	r.kern.Spawn("w", &sleepProg{sleep: 40 * sim.Millisecond, work: 10 * sim.Millisecond, rounds: 10}, 0)
	r.kern.OnAllExited = func() { r.eng.Stop() }
	r.kern.Start()
	_ = r.eng.Run(5 * sim.Second)
	idle := r.kern.CPU(0).IdleTime
	// ~10 rounds × 40ms sleep ≈ 400ms idle.
	if idle < 300*sim.Millisecond {
		t.Fatalf("idle time %v, want ~400ms", idle)
	}
}

func TestSpinBudgetAccountingSurvivesPreemption(t *testing.T) {
	// A spinner whose vCPU is preempted mid-spin must not have its
	// budget consumed by wall-clock time while descheduled.
	eng, _, fg, bg := rig2(t, hypervisor.StrategyVanilla, false)
	mu := guestsync.NewMutex(fg)
	// Holder on CPU 1 (uncontended) holds the lock for a long time.
	holder := &lockStepProg{mu: mu, rounds: 1, work: 200 * sim.Millisecond}
	fg.Spawn("holder", holder, 1)
	// Waiter on contended CPU 0 spins briefly then must sleep — even
	// though its vCPU gets preempted during the spin.
	waiter := &lockStepProg{mu: mu, rounds: 1, work: sim.Millisecond}
	wt := fg.Spawn("waiter", waiter, 0)
	fg.OnAllExited = func() { eng.Stop() }
	fg.Start()
	bg.Start()
	_ = eng.Run(10 * sim.Second)
	if wt.State() != guest.TaskDone {
		t.Fatalf("waiter state %v", wt.State())
	}
	// The waiter's total CPU must be small: spin budget (40µs) + work,
	// not hundreds of ms of spinning.
	if wt.CPUTime > 5*sim.Millisecond {
		t.Fatalf("waiter burned %v; bounded spin failed", wt.CPUTime)
	}
}

func TestExitWhileOthersQueued(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	r.kern.Spawn("a", &computeProg{chunk: 5 * sim.Millisecond, n: 2}, 0)
	r.kern.Spawn("b", &computeProg{chunk: 5 * sim.Millisecond, n: 6}, 0)
	var done bool
	r.kern.OnAllExited = func() { done = true; r.eng.Stop() }
	r.kern.Start()
	_ = r.eng.Run(2 * sim.Second)
	if !done {
		t.Fatal("second task never finished after first exited")
	}
}

func TestRunInTaskPanicsOffCPU(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	tk := r.kern.Spawn("a", &computeProg{chunk: 5 * sim.Millisecond, n: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for RunInTask on a non-current task")
		}
	}()
	r.kern.RunInTask(tk, sim.Millisecond, func() {})
}

func TestBlockTaskPanicsOffCPU(t *testing.T) {
	r := newRig(t, 2, 2, nil, nil)
	tk := r.kern.Spawn("a", &computeProg{chunk: 5 * sim.Millisecond, n: 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for BlockTask on a non-current task")
		}
	}()
	r.kern.BlockTask(tk)
}

func TestSpawnOnInvalidCPUPanics(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid CPU index")
		}
	}()
	r.kern.Spawn("bad", &computeProg{}, 7)
}

func TestGuestIdleReflectsState(t *testing.T) {
	r := newRig(t, 1, 1, nil, nil)
	c := r.kern.CPU(0)
	if !c.GuestIdle() {
		t.Fatal("fresh CPU should be idle")
	}
	r.kern.Spawn("a", &computeProg{chunk: 10 * sim.Millisecond, n: 1}, 0)
	if c.GuestIdle() {
		t.Fatal("CPU with a queued task should not be idle")
	}
}
