package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

// mkSpan builds a finished span with the given wall split between
// service and preempt-wait time.
func mkSpan(tr *Tracer, start, service, preempt sim.Time) *Span {
	s := tr.Start(start)
	s.BeginPhase(start, "service", CatService)
	s.Transition(start+service, CatPreemptWait)
	s.Finish(start + service + preempt)
	return s
}

func TestAnalyzeBandsAndShares(t *testing.T) {
	tr := NewTracer()
	var spans []*Span
	// 200 requests: wall grows with i, and only the slowest 10 carry
	// preempt-wait time — the tail has a different blame mix than the
	// body, which is exactly what the bands must surface.
	for i := 1; i <= 200; i++ {
		var preempt sim.Time
		if i > 190 {
			preempt = us(int64(i) * 10)
		}
		spans = append(spans, mkSpan(tr, us(int64(i)*1000), us(int64(i)), preempt))
	}
	a := Analyze(spans, 0)

	if a.Requests != 200 || a.Violations != 0 || a.MaxError != 0 {
		t.Fatalf("requests=%d violations=%d maxErr=%v", a.Requests, a.Violations, a.MaxError)
	}
	if got := len(a.Bands); got != 4 {
		t.Fatalf("bands = %d, want 4", got)
	}
	all := a.Band("all")
	if all == nil || all.Requests != 200 {
		t.Fatalf("all band = %+v", all)
	}
	p99 := a.Band("p99")
	if p99 == nil || p99.Requests != 2 {
		t.Fatalf("p99 band = %+v, want the top-1%% cohort (2 of 200)", p99)
	}
	if a.Band("p99.9") == nil || a.Band("p99.9").Requests != 1 {
		t.Fatal("p99.9 band must hold at least one request")
	}
	// Tail blame: preempt-wait dominates the p99 cohort but not the body.
	if p99.Share(CatPreemptWait) < 0.8 {
		t.Fatalf("p99 preempt share = %v, want > 0.8", p99.Share(CatPreemptWait))
	}
	if a.Band("p50").Share(CatPreemptWait) != 0 {
		t.Fatal("p50 cohort must have no preempt-wait blame")
	}
	// Shares are sorted descending and sum to ~1.
	var sum float64
	for i, sh := range p99.Shares {
		sum += sh.Share
		if i > 0 && sh.Time > p99.Shares[i-1].Time {
			t.Fatal("shares not sorted by time desc")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("share sum = %v", sum)
	}

	// Slowest returns descending walls.
	slow := a.Slowest(3)
	if len(slow) != 3 || slow[0].Wall() < slow[1].Wall() || slow[1].Wall() < slow[2].Wall() {
		t.Fatalf("slowest not descending: %v %v %v", slow[0].Wall(), slow[1].Wall(), slow[2].Wall())
	}
	if slow[0].Wall() != a.Wall.Max() {
		t.Fatalf("slowest wall %v != sketch max %v", slow[0].Wall(), a.Wall.Max())
	}
	// Per-request critical path of the slowest: preempt-wait first.
	top := slow[0].TopContributors(2)
	if len(top) == 0 || top[0].Cat != CatPreemptWait {
		t.Fatalf("top contributor = %+v, want preempt-wait", top)
	}
}

func TestAnalyzeFlagsConservationViolations(t *testing.T) {
	tr := NewTracer()
	good := mkSpan(tr, us(10), us(100), 0)
	bad := mkSpan(tr, us(20), us(100), 0)
	// Corrupt the bad span's recorded segments behind the API's back.
	bad.Phases[1].Segments[0].End -= us(7)
	a := Analyze([]*Span{good, bad, nil}, 0)
	if a.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (nil skipped)", a.Requests)
	}
	if a.Violations != 1 || a.MaxError != us(7) {
		t.Fatalf("violations=%d maxErr=%v, want 1 and 7µs", a.Violations, a.MaxError)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil, 0)
	if a.Requests != 0 || len(a.Bands) != 0 || a.Band("p99") != nil || len(a.Slowest(5)) != 0 {
		t.Fatal("empty analysis must be empty")
	}
}

func TestWriteChromeSpansDeterministicJSON(t *testing.T) {
	tr := NewTracer()
	spans := []*Span{
		mkSpan(tr, us(100), us(50), us(30)),
		mkSpan(tr, us(200), us(40), 0),
	}
	render := func() string {
		var b bytes.Buffer
		if err := WriteChromeSpans(&b, []TrackSet{{Name: "vanilla", Spans: spans}}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	if out != render() {
		t.Fatal("chrome span export is not byte-deterministic")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// B/E events must pair up per (pid, tid).
	depth := map[[2]float64]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		key := [2]float64{e["pid"].(float64), e["tid"].(float64)}
		switch ph {
		case "B":
			depth[key]++
		case "E":
			depth[key]--
			if depth[key] < 0 {
				t.Fatal("unbalanced E event")
			}
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced B/E on track %v", k)
		}
	}
	for _, want := range []string{"vanilla", "preempt-wait", "service", "queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q", want)
		}
	}
}
