package span

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Blame analysis: turn a pile of finished spans into the paper's
// quantitative story — per-request critical paths and aggregate
// per-category latency breakdowns at p50/p99/p99.9 ("p99 = 4% service,
// 61% preempt-wait, 22% LHP spin, ..."). The conservation invariant
// (segment sum == wall latency, exact) is checked for every span and
// surfaced as a violation count so a broken instrumentation hook can
// never silently skew the attribution.

// CategoryShare is one category's slice of a time budget.
type CategoryShare struct {
	Cat   Category
	Time  sim.Time
	Share float64 // fraction of the budget (0..1)
}

// shares converts per-category totals into a non-zero, descending
// share list (ties broken by category order, so output is stable).
func shares(t Totals) []CategoryShare {
	sum := t.Sum()
	if sum <= 0 {
		return nil
	}
	out := make([]CategoryShare, 0, NumCategories)
	for i, v := range t {
		if v > 0 {
			out = append(out, CategoryShare{Cat: Category(i), Time: v, Share: float64(v) / float64(sum)})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Time > out[b].Time })
	return out
}

// TopContributors returns the span's per-category critical-path
// breakdown: its own segment time aggregated per category, largest
// first, capped at k (k <= 0 means all).
func (s *Span) TopContributors(k int) []CategoryShare {
	out := shares(s.Totals())
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Band is the blame breakdown of one latency cohort: the requests
// whose wall latency falls in a quantile band (e.g. the top 1% for
// p99). Shares answer "for requests this slow, where did the time go".
type Band struct {
	Label    string
	Requests int
	// Wall is the cohort's latency floor — the band's order statistic.
	Wall   sim.Time
	Totals Totals
	Shares []CategoryShare
}

// Share returns the band's share for category c (0 when absent).
func (b *Band) Share(c Category) float64 {
	for _, sh := range b.Shares {
		if sh.Cat == c {
			return sh.Share
		}
	}
	return 0
}

// Analysis is the result of Analyze over one run's finished spans.
type Analysis struct {
	Requests int
	// Violations counts spans whose segments do not sum to their wall
	// latency. The instrumentation maintains this at zero by
	// construction; any other value is a bug.
	Violations int
	// MaxError is the largest absolute conservation error seen.
	MaxError sim.Time

	// Wall is a mergeable quantile sketch of end-to-end latency;
	// PerCategory sketches the per-request time spent in each category
	// (zeros included, so quantiles are over all requests).
	Wall        *obs.Sketch
	PerCategory [NumCategories]*obs.Sketch

	// Totals is the grand per-category budget across all requests.
	Totals Totals
	// Bands holds the all/p50/p99/p99.9 cohort breakdowns, in that
	// order.
	Bands []Band
	// Sorted is every analyzed span ascending by (wall, ID).
	Sorted []*Span
}

// Band returns the named band (e.g. "p99"), or nil.
func (a *Analysis) Band(label string) *Band {
	for i := range a.Bands {
		if a.Bands[i].Label == label {
			return &a.Bands[i]
		}
	}
	return nil
}

// Slowest returns the k slowest requests, slowest first.
func (a *Analysis) Slowest(k int) []*Span {
	n := len(a.Sorted)
	if k > n {
		k = n
	}
	out := make([]*Span, 0, k)
	for i := n - 1; i >= n-k; i-- {
		out = append(out, a.Sorted[i])
	}
	return out
}

// Analyze computes the blame breakdown over finished spans. alpha is
// the sketch relative-error bound (<= 0 selects the default 1%).
func Analyze(spans []*Span, alpha float64) *Analysis {
	a := &Analysis{Wall: obs.NewSketch(alpha)}
	for i := range a.PerCategory {
		a.PerCategory[i] = obs.NewSketch(alpha)
	}
	for _, s := range spans {
		if s == nil || !s.Finished() {
			continue
		}
		a.Requests++
		a.Sorted = append(a.Sorted, s)
		if err := s.ConservationError(); err != 0 {
			a.Violations++
			if err < 0 {
				err = -err
			}
			if err > a.MaxError {
				a.MaxError = err
			}
		}
		t := s.Totals()
		a.Totals.Add(t)
		a.Wall.Add(s.Wall())
		for i, v := range t {
			a.PerCategory[i].Add(v)
		}
	}
	sort.SliceStable(a.Sorted, func(x, y int) bool {
		if a.Sorted[x].Wall() != a.Sorted[y].Wall() {
			return a.Sorted[x].Wall() < a.Sorted[y].Wall()
		}
		return a.Sorted[x].ID < a.Sorted[y].ID
	})

	n := len(a.Sorted)
	if n == 0 {
		return a
	}
	band := func(label string, lo, hi int) {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if lo >= hi {
			lo = hi - 1
		}
		b := Band{Label: label, Requests: hi - lo, Wall: a.Sorted[lo].Wall()}
		for _, s := range a.Sorted[lo:hi] {
			b.Totals.Add(s.Totals())
		}
		b.Shares = shares(b.Totals)
		a.Bands = append(a.Bands, b)
	}
	band("all", 0, n)
	// p50 is the middle decile, not a single noisy request; the tail
	// bands are top-1% and top-0.1% cohorts.
	band("p50", n*45/100, n*55/100+1)
	band("p99", n*99/100, n)
	band("p99.9", n*999/1000, n)
	return a
}
