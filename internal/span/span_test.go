package span

import (
	"testing"

	"repro/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

func TestSpanTilesWallExactly(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(us(100))
	s.BeginPhase(us(150), "service", CatKernel)
	s.Transition(us(152), CatService)
	s.Transition(us(200), CatPreemptWait)
	s.Transition(us(230), CatService)
	s.Finish(us(260))

	if !s.Finished() || s.Wall() != us(160) {
		t.Fatalf("wall = %v, want 160µs", s.Wall())
	}
	if err := s.ConservationError(); err != 0 {
		t.Fatalf("conservation error = %v, want 0", err)
	}
	tot := s.Totals()
	if tot[CatQueueWait] != us(50) || tot[CatKernel] != us(2) ||
		tot[CatService] != us(78) || tot[CatPreemptWait] != us(30) {
		t.Fatalf("totals = %v", tot)
	}

	// The segments of each phase tile the phase; the phases tile the span.
	if len(s.Phases) != 2 || s.Phases[0].Name != "queue" || s.Phases[1].Name != "service" {
		t.Fatalf("phases = %+v", s.Phases)
	}
	cursor := s.Start
	for _, p := range s.Phases {
		if p.Start != cursor {
			t.Fatalf("phase %s starts at %v, previous ended at %v", p.Name, p.Start, cursor)
		}
		at := p.Start
		for _, seg := range p.Segments {
			if seg.Start != at {
				t.Fatalf("segment gap in %s: %v != %v", p.Name, seg.Start, at)
			}
			if seg.Dur() <= 0 {
				t.Fatalf("empty segment survived: %+v", seg)
			}
			at = seg.End
		}
		if at != p.End {
			t.Fatalf("phase %s segments end at %v, phase ends at %v", p.Name, at, p.End)
		}
		cursor = p.End
	}
	if cursor != s.End {
		t.Fatalf("phases end at %v, span ends at %v", cursor, s.End)
	}
}

func TestSpanCoalescesAndDropsZeroLength(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(us(0))
	s.BeginPhase(us(10), "service", CatService)
	// A burst of same-instant transitions must leave no trace.
	s.Transition(us(20), CatPreemptWait)
	s.Transition(us(20), CatKernel)
	s.Transition(us(20), CatService)
	// Returning to the running category coalesces with the prior segment.
	s.Transition(us(30), CatService)
	s.Finish(us(40))

	if err := s.ConservationError(); err != 0 {
		t.Fatalf("conservation error = %v", err)
	}
	if n := s.SegmentCount(); n != 2 {
		t.Fatalf("segment count = %d, want 2 (queue-wait + one coalesced service)", n)
	}
	svc := s.Phases[1].Segments
	if len(svc) != 1 || svc[0].Cat != CatService || svc[0].Dur() != us(30) {
		t.Fatalf("service phase = %+v, want one 30µs service segment", svc)
	}
}

func TestSpanFinishedIsSealed(t *testing.T) {
	tr := NewTracer()
	s := tr.Start(us(5))
	s.Finish(us(15))
	before := s.Totals()
	s.Transition(us(25), CatService)
	s.BeginPhase(us(25), "late", CatService)
	s.Finish(us(30))
	if s.End != us(15) || s.Totals() != before || len(s.Phases) != 1 {
		t.Fatal("mutation after Finish changed the span")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start(us(1)) // nil tracer mints nil span
	if s != nil || tr.Open() != 0 || tr.Finished() != nil {
		t.Fatal("nil tracer must be inert")
	}
	s.Transition(us(2), CatService) // nil span: all hooks are no-ops
	s.BeginPhase(us(2), "x", CatService)
	s.Finish(us(3))
}

func TestTracerAccounting(t *testing.T) {
	tr := NewTracer()
	a := tr.Start(us(1))
	b := tr.Start(us(2))
	if a.ID == b.ID {
		t.Fatal("span IDs must be unique")
	}
	if tr.Open() != 2 {
		t.Fatalf("open = %d, want 2", tr.Open())
	}
	b.Finish(us(9))
	if tr.Open() != 1 || len(tr.Finished()) != 1 || tr.Finished()[0] != b {
		t.Fatal("finish accounting wrong")
	}
}
