// Package span implements causal, hierarchical request tracing for the
// simulator: a span is minted when a request enters the system (the
// cluster router or an open-loop arrival source), travels with the
// request through VM queueing, guest task dispatch, hypervisor vCPU
// runstates, and cluster live migration, and ends when the request is
// served. Each completed span carries a tree of timed, categorized
// segments — the request's life tiled into non-overlapping intervals,
// each blamed on one mechanism (service, runqueue wait, vCPU
// preemption, LHP spin, the SA handshake, migration downtime, ...).
//
// Conservation holds by construction: Transition closes the current
// segment under the current category and opens the next one at the
// same instant, so the segments of a finished span always sum to its
// wall latency exactly. The blame analyzer (blame.go) builds on that
// to answer "where did the p99 go" quantitatively.
//
// Tracing is pay-as-you-go: layers carry a nil-able *Span and check it
// before every hook, so an untraced run takes only dead nil-checks.
package span

import (
	"fmt"

	"repro/internal/sim"
)

// Category names the mechanism an interval of a request's life is
// blamed on. The decision function lives where both the guest task and
// the backing vCPU are visible (guest.Kernel); this package only
// defines the taxonomy.
type Category int

const (
	// CatService is on-CPU execution of the request's own work.
	CatService Category = iota
	// CatKernel is guest-kernel overhead charged while the request's
	// task is current: IRQ handling, context-switch cost, softirq and
	// SA-handler bottom halves.
	CatKernel
	// CatQueueWait is time in a server or router queue before any
	// worker thread picks the request up.
	CatQueueWait
	// CatRunqWait is time ready on a guest runqueue whose vCPU is
	// actually executing — ordinary CFS queueing.
	CatRunqWait
	// CatPreemptWait is time lost to hypervisor preemption: the
	// request's vCPU is runnable-but-not-running (steal), whether the
	// task was current or queued on it.
	CatPreemptWait
	// CatSAWait is the scheduler-activation handshake window: from
	// VIRQ_SA_UPCALL send until the guest's sched_op acknowledgement.
	CatSAWait
	// CatLHPSpin is spinning on a lock whose holder is not making
	// progress (holder preempted at guest or hypervisor level) — the
	// paper's lock-holder-preemption symptom.
	CatLHPSpin
	// CatSpin is any other busy-wait (plain contention, LWP spin).
	CatSpin
	// CatBlocked is sleeping on a contended lock or condition after the
	// adaptive-spin budget ran out.
	CatBlocked
	// CatTaskMigr is time in the IRS migrator's hands (descheduled from
	// a preempted vCPU, waiting to land elsewhere).
	CatTaskMigr
	// CatVMMigr is cluster live-migration downtime: the request was
	// queued on a VM that froze for switchover and carried it across.
	CatVMMigr
	// CatOther is the defensive bucket; it should stay empty.
	CatOther

	// NumCategories sizes per-category arrays.
	NumCategories = int(CatOther) + 1
)

var categoryNames = [NumCategories]string{
	"service", "kernel", "queue-wait", "runq-wait", "preempt-wait",
	"sa-wait", "lhp-spin", "spin", "blocked", "task-migr", "vm-migr",
	"other",
}

func (c Category) String() string {
	if c < 0 || int(c) >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// Categories lists all categories in canonical (render) order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Segment is one leaf interval of a span: [Start, End) blamed on Cat.
type Segment struct {
	Start, End sim.Time
	Cat        Category
}

// Dur returns the segment length.
func (s Segment) Dur() sim.Time { return s.End - s.Start }

// Phase is one coarse stage of a request's life (e.g. "queue" before a
// worker binds it, "service" afterwards) holding the leaf segments that
// tile it. Phases are the middle level of the span tree.
type Phase struct {
	Name       string
	Start, End sim.Time
	Segments   []Segment
}

// Totals is per-category accumulated time, indexed by Category.
type Totals [NumCategories]sim.Time

// Sum returns the total across all categories.
func (t Totals) Sum() sim.Time {
	var s sim.Time
	for _, v := range t {
		s += v
	}
	return s
}

// Add folds o into t.
func (t *Totals) Add(o Totals) {
	for i, v := range o {
		t[i] += v
	}
}

// Span is one request's causal trace: a root interval subdivided into
// phases, each subdivided into categorized segments. All mutation
// happens at simulation time through Transition/BeginPhase/Finish.
type Span struct {
	ID         int64
	Start, End sim.Time // End is 0 while the span is open
	Phases     []*Phase

	cur      Category
	curSince sim.Time
	tracer   *Tracer
}

// Wall returns the end-to-end latency of a finished span.
func (s *Span) Wall() sim.Time { return s.End - s.Start }

// Finished reports whether Finish has run.
func (s *Span) Finished() bool { return s.End != 0 }

// Category returns the category currently accruing.
func (s *Span) Category() Category { return s.cur }

// phase returns the open phase.
func (s *Span) phase() *Phase { return s.Phases[len(s.Phases)-1] }

// closeSegment seals the accruing interval [curSince, now) under the
// current category, coalescing with the previous segment when the
// category repeats. Zero-length intervals vanish, so a flurry of
// same-instant transitions costs nothing.
func (s *Span) closeSegment(now sim.Time) {
	if now <= s.curSince {
		return
	}
	p := s.phase()
	if n := len(p.Segments); n > 0 && p.Segments[n-1].Cat == s.cur && p.Segments[n-1].End == s.curSince {
		p.Segments[n-1].End = now
	} else {
		p.Segments = append(p.Segments, Segment{Start: s.curSince, End: now, Cat: s.cur})
	}
	s.curSince = now
}

// Transition moves the span to category c at time now, closing the
// interval accrued under the previous category. Calling it with the
// current category is a cheap no-op; calling it on a finished span is
// ignored (the request already left the system).
func (s *Span) Transition(now sim.Time, c Category) {
	if s == nil || s.Finished() {
		return
	}
	if c == s.cur {
		return
	}
	s.closeSegment(now)
	s.cur = c
}

// BeginPhase closes the open phase and starts a new one named name,
// continuing in category c.
func (s *Span) BeginPhase(now sim.Time, name string, c Category) {
	if s == nil || s.Finished() {
		return
	}
	s.closeSegment(now)
	s.phase().End = now
	s.Phases = append(s.Phases, &Phase{Name: name, Start: now})
	s.cur = c
}

// Finish seals the span at now and hands it to its tracer.
func (s *Span) Finish(now sim.Time) {
	if s == nil || s.Finished() {
		return
	}
	s.closeSegment(now)
	s.phase().End = now
	s.End = now
	if s.End == 0 {
		// A request served at t=0 would read as still-open; nudge the
		// sentinel (cannot happen with a nonzero arrival process, but
		// keep Finished() honest).
		s.End = 1
	}
	if s.tracer != nil {
		s.tracer.finish(s)
	}
}

// Totals sums the span's segments per category.
func (s *Span) Totals() Totals {
	var t Totals
	for _, p := range s.Phases {
		for _, seg := range p.Segments {
			t[seg.Cat] += seg.Dur()
		}
	}
	return t
}

// SegmentCount returns the number of leaf segments.
func (s *Span) SegmentCount() int {
	n := 0
	for _, p := range s.Phases {
		n += len(p.Segments)
	}
	return n
}

// ConservationError returns wall latency minus the segment sum. By
// construction it is 0 for every finished span; the blame analyzer and
// the tests enforce that.
func (s *Span) ConservationError() sim.Time {
	return s.Wall() - s.Totals().Sum()
}

// Tracer mints spans and collects them as they finish. One tracer
// serves one run; it is not safe for concurrent use (the simulation is
// single-threaded by design).
type Tracer struct {
	nextID   int64
	open     int
	finished []*Span

	// OnFinish, when non-nil, observes each span as it finishes (after
	// it is appended to the finished list). The watch flight recorder
	// subscribes here to keep its bounded ring of recent spans without
	// rescanning the full trace on every incident.
	OnFinish func(*Span)
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start mints a span for a request that arrived at time arrival. The
// span opens in the "queue" phase accruing CatQueueWait — a request is
// nobody's task until a worker binds it.
func (tr *Tracer) Start(arrival sim.Time) *Span {
	if tr == nil {
		return nil
	}
	tr.nextID++
	tr.open++
	return &Span{
		ID:       tr.nextID,
		Start:    arrival,
		Phases:   []*Phase{{Name: "queue", Start: arrival}},
		cur:      CatQueueWait,
		curSince: arrival,
		tracer:   tr,
	}
}

func (tr *Tracer) finish(s *Span) {
	tr.open--
	tr.finished = append(tr.finished, s)
	if tr.OnFinish != nil {
		tr.OnFinish(s)
	}
}

// Finished returns the collected spans in completion order. The slice
// is owned by the tracer; callers must not mutate it.
func (tr *Tracer) Finished() []*Span {
	if tr == nil {
		return nil
	}
	return tr.finished
}

// Open returns the number of minted spans that have not finished
// (requests still queued or in flight when the run ended).
func (tr *Tracer) Open() int {
	if tr == nil {
		return 0
	}
	return tr.open
}

// Adopt re-points s at tr, so a later Finish lands in tr's collection.
// The sharded cluster uses per-host collector tracers: a span minted on
// the control shard is adopted by the host it is routed to (and by the
// destination host when a migration carries it), keeping all mutation
// shard-local; the barrier then folds finished spans back into the
// minting tracer with AbsorbFinished. Adopt does not move open counts —
// the minting tracer keeps the liability until AbsorbFinished settles
// it.
func (tr *Tracer) Adopt(s *Span) {
	if tr == nil || s == nil {
		return
	}
	s.tracer = tr
}

// TakeFinished returns the collected spans and resets the collection
// (the open count is untouched; collectors never mint).
func (tr *Tracer) TakeFinished() []*Span {
	if tr == nil || len(tr.finished) == 0 {
		return nil
	}
	out := tr.finished
	tr.finished = nil
	return out
}

// AbsorbFinished folds spans finished on a collector tracer back into
// tr, in the given order: each is appended to tr's finished list,
// settles one open span, observes OnFinish, and is re-pointed at tr.
func (tr *Tracer) AbsorbFinished(spans []*Span) {
	if tr == nil {
		return
	}
	for _, s := range spans {
		s.tracer = tr
		tr.open--
		tr.finished = append(tr.finished, s)
		if tr.OnFinish != nil {
			tr.OnFinish(s)
		}
	}
}
