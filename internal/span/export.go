package span

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

// Perfetto-compatible nested span export, in the same Chrome Trace
// Event Format as obs.WriteChromeTrace (B/E duration slices + metadata
// events; loads directly in chrome://tracing and ui.perfetto.dev).
// Each request becomes one thread track; the span tree nests on it:
// an outer request slice, phase slices inside it, and categorized leaf
// segments inside those. Multiple TrackSets (e.g. one per scheduling
// strategy) render as separate processes in one file, so baseline and
// IRS timelines sit side by side.

type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

func dur(t sim.Time) string { return time.Duration(t).String() }

// TrackSet is one named group of spans exported as its own Perfetto
// process.
type TrackSet struct {
	Name  string
	Spans []*Span
}

// WriteChromeSpans renders the track sets as Chrome trace JSON.
// Unfinished spans are skipped (they have no right edge to draw).
func WriteChromeSpans(w io.Writer, sets []TrackSet) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for si, set := range sets {
		pid := si + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]string{"name": set.Name},
		})
		tid := 0
		for _, s := range set.Spans {
			if s == nil || !s.Finished() {
				continue
			}
			tid++
			req := fmt.Sprintf("req %d", s.ID)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]string{"name": fmt.Sprintf("%s (wall %s)", req, dur(s.Wall()))},
			})
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: req, Ph: "B", Ts: usec(s.Start), Pid: pid, Tid: tid, Cat: "request",
				Args: map[string]string{"wall": dur(s.Wall())},
			})
			for _, p := range s.Phases {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: p.Name, Ph: "B", Ts: usec(p.Start), Pid: pid, Tid: tid, Cat: "phase",
				})
				for _, seg := range p.Segments {
					out.TraceEvents = append(out.TraceEvents,
						chromeEvent{
							Name: seg.Cat.String(), Ph: "B", Ts: usec(seg.Start),
							Pid: pid, Tid: tid, Cat: "segment",
							Args: map[string]string{"dur": dur(seg.Dur())},
						},
						chromeEvent{
							Name: seg.Cat.String(), Ph: "E", Ts: usec(seg.End),
							Pid: pid, Tid: tid, Cat: "segment",
						})
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: p.Name, Ph: "E", Ts: usec(p.End), Pid: pid, Tid: tid, Cat: "phase",
				})
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: req, Ph: "E", Ts: usec(s.End), Pid: pid, Tid: tid, Cat: "request",
			})
		}
	}
	return json.NewEncoder(w).Encode(out)
}
