package watch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestSeriesObserveAndRollup(t *testing.T) {
	s := NewSeries(10*sim.Millisecond, 8, 0)
	s.Observe(1*sim.Millisecond, 5)
	s.Observe(9*sim.Millisecond, 3)
	s.Observe(15*sim.Millisecond, 7)

	w, ok := s.WindowAt(0)
	if !ok {
		t.Fatal("window at 0 missing")
	}
	if w.Count != 2 || w.Sum != 8 || w.Min != 3 || w.Max != 5 {
		t.Fatalf("window 0 = %+v", w)
	}
	if w.Mean() != 4 {
		t.Fatalf("mean = %v, want 4", w.Mean())
	}

	all := s.WindowsBetween(0, 20*sim.Millisecond)
	if len(all) != 2 {
		t.Fatalf("windows = %d, want 2", len(all))
	}
	r := s.RollupBetween(0, 20*sim.Millisecond)
	if r.Count != 3 || r.Sum != 15 || r.Min != 3 || r.Max != 7 {
		t.Fatalf("rollup = %+v", r)
	}

	// The window containing `from` is included even when from cuts it.
	mid := s.WindowsBetween(5*sim.Millisecond, 20*sim.Millisecond)
	if len(mid) != 2 {
		t.Fatalf("mid-window range = %d windows, want 2", len(mid))
	}
}

func TestSeriesRingEviction(t *testing.T) {
	s := NewSeries(sim.Millisecond, 4, 0)
	for i := 0; i < 10; i++ {
		s.Observe(sim.Time(i)*sim.Millisecond, float64(i))
	}
	// Depth 4: only windows 6..9 survive.
	if _, ok := s.WindowAt(5 * sim.Millisecond); ok {
		t.Fatal("window 5 should be evicted")
	}
	for i := 6; i < 10; i++ {
		w, ok := s.WindowAt(sim.Time(i) * sim.Millisecond)
		if !ok || w.Sum != float64(i) {
			t.Fatalf("window %d = %+v ok=%v", i, w, ok)
		}
	}
	if got := len(s.WindowsBetween(0, 10*sim.Millisecond)); got != 4 {
		t.Fatalf("surviving windows = %d, want 4", got)
	}
}

func TestSeriesSketchWindows(t *testing.T) {
	s := NewSeries(sim.Millisecond, 4, obs.DefaultSketchAlpha)
	for i := 1; i <= 100; i++ {
		s.Observe(sim.Time(i), float64(i)) // all in window 0
	}
	w, ok := s.WindowAt(0)
	if !ok || w.Sketch == nil {
		t.Fatal("sketch window missing")
	}
	p50 := float64(w.Sketch.Percentile(50))
	if math.Abs(p50-50) > 2 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
}

// randomWindow builds a window with nw values, optionally sketched —
// the generator behind the associativity property test.
func randomWindow(rng *rand.Rand, start sim.Time, sketched bool) Window {
	alpha := 0.0
	if sketched {
		alpha = obs.DefaultSketchAlpha
	}
	w := Window{Start: start}
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		w.observe(float64(rng.Intn(1_000_000)), alpha)
	}
	return w
}

func windowsEqual(t *testing.T, a, b Window) {
	t.Helper()
	if a.Start != b.Start || a.Count != b.Count || a.Sum != b.Sum ||
		a.Min != b.Min || a.Max != b.Max {
		t.Fatalf("windows differ: %+v vs %+v", a, b)
	}
	if (a.Sketch == nil) != (b.Sketch == nil) {
		t.Fatalf("sketch presence differs")
	}
	if a.Sketch != nil {
		for _, p := range []float64{50, 90, 99, 99.9} {
			if a.Sketch.Percentile(p) != b.Sketch.Percentile(p) {
				t.Fatalf("p%v differs: %v vs %v", p, a.Sketch.Percentile(p), b.Sketch.Percentile(p))
			}
		}
		if a.Sketch.Count() != b.Sketch.Count() || a.Sketch.Sum() != b.Sketch.Sum() {
			t.Fatalf("sketch count/sum differ")
		}
	}
}

// TestRollupAssociativeProperty checks the property the multi-window
// SLO math relies on: Rollup over any parenthesization and order of
// the same windows yields identical rollups — including the quantile
// sketches, which merge bucket-wise.
func TestRollupAssociativeProperty(t *testing.T) {
	for _, sketched := range []bool{false, true} {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 50; trial++ {
			n := 2 + rng.Intn(5)
			ws := make([]Window, n)
			for i := range ws {
				ws[i] = randomWindow(rng, sim.Time(i)*sim.Millisecond, sketched)
			}

			flat := Rollup(ws...)

			// Left fold: ((w0+w1)+w2)+...
			left := ws[0]
			for _, w := range ws[1:] {
				left = Rollup(left, w)
			}
			windowsEqual(t, flat, left)

			// Right fold: w0+(w1+(w2+...)).
			right := ws[n-1]
			for i := n - 2; i >= 0; i-- {
				right = Rollup(ws[i], right)
			}
			windowsEqual(t, flat, right)

			// Shuffled order (commutativity); Start differs when the
			// earliest window is empty, so compare aggregates only on
			// non-empty-first trials.
			perm := rng.Perm(n)
			shuffled := make([]Window, n)
			for i, p := range perm {
				shuffled[i] = ws[p]
			}
			sh := Rollup(shuffled...)
			if sh.Count != flat.Count || sh.Sum != flat.Sum ||
				(flat.Count > 0 && (sh.Min != flat.Min || sh.Max != flat.Max || sh.Start != flat.Start)) {
				t.Fatalf("shuffled rollup differs: %+v vs %+v", sh, flat)
			}
		}
	}
}

// TestRollupDoesNotAliasInputs guards the subtle bug class where a
// rollup's sketch shares state with a ring window's sketch.
func TestRollupDoesNotAliasInputs(t *testing.T) {
	a := Window{}
	a.observe(10, obs.DefaultSketchAlpha)
	before := a.Sketch.Count()
	r := Rollup(a)
	r.Sketch.Add(99)
	if a.Sketch.Count() != before {
		t.Fatal("Rollup aliased an input sketch")
	}
}

func TestStoreObserveAndVisit(t *testing.T) {
	st := NewStore(sim.Millisecond, 8)
	st.SketchSeries("lat")
	st.Observe("lat", obs.Labels{VM: "a"}, 100, 5)
	st.Observe("lat", obs.Labels{VM: "a"}, 200, 7)
	st.Observe("cnt", obs.Labels{}, 100, 1)

	if st.Len() != 2 {
		t.Fatalf("len = %d, want 2", st.Len())
	}
	var names []string
	st.Visit(func(name string, l obs.Labels, s *Series) { names = append(names, name) })
	if len(names) != 2 || names[0] != "cnt" || names[1] != "lat" {
		t.Fatalf("visit order = %v", names)
	}
	lat := st.Series("lat", obs.Labels{VM: "a"})
	w, ok := lat.WindowAt(0)
	if !ok || w.Count != 2 || w.Sketch == nil {
		t.Fatalf("lat window = %+v ok=%v", w, ok)
	}
	cnt := st.Series("cnt", obs.Labels{})
	w, _ = cnt.WindowAt(0)
	if w.Sketch != nil {
		t.Fatal("unsketchable series grew a sketch")
	}
}

func TestStoreAttachSampler(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("reqs_total", obs.Labels{Sub: "hv"})
	eng := sim.NewEngine()
	eng.Every(sim.Millisecond, "tick", func() { c.Inc() })
	sampler := obs.NewSampler(reg, 10*sim.Millisecond)
	sampler.Start(eng)

	st := NewStore(10*sim.Millisecond, 16)
	st.Attach(sampler)
	if err := eng.Run(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s := st.Series("reqs_total", obs.Labels{Sub: "hv"})
	if s == nil {
		t.Fatal("sampler points did not reach the store")
	}
	if got := len(s.WindowsBetween(0, 60*sim.Millisecond)); got == 0 {
		t.Fatal("no windows recorded")
	}
}
