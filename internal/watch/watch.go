package watch

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Config sizes a Watcher. The zero value is usable: every field has a
// default.
type Config struct {
	// Interval is the epoch cadence and window width (default 100ms).
	Interval sim.Time
	// Depth is the store's ring depth in windows (default 64).
	Depth int
	// Rules are the burn-rate alert rules to evaluate each epoch.
	Rules []Rule
	// SpanRing bounds the flight recorder's recent-span ring
	// (default DefaultSpanRing).
	SpanRing int
	// MaxIncidents caps stored incident bundles
	// (default DefaultMaxIncidents).
	MaxIncidents int
	// SketchSeries names sampler series whose windows should carry
	// quantile sketches.
	SketchSeries []string
}

// DefaultInterval and DefaultDepth size the windowed store when the
// config leaves them zero.
const (
	DefaultInterval = 100 * sim.Millisecond
	DefaultDepth    = 64
)

// Watcher is the online SLO watchdog: it rolls telemetry into windows,
// evaluates burn-rate rules every epoch, runs noisy-neighbor
// attribution when a rule fires, and snapshots flight-recorder
// incident bundles. One watcher serves one run (or one cluster — the
// cluster layer multiplexes all hosts into it).
type Watcher struct {
	cfg      Config
	eng      *sim.Engine
	store    *Store
	monitor  *Monitor
	recorder *Recorder

	vms      map[string]VMInfo
	lastPain map[string]sim.Time

	// feeds run at the top of every epoch, before rule evaluation;
	// the cluster layer registers one per host to sync hypervisor
	// accounting and push cumulative pain counters.
	feeds []func(now sim.Time)

	lastRankings []RankedAggressor
	lastTriples  []AggressorScore

	// alertHooks observe each alert (without the ranking); unlike the
	// single-valued OnAlert, any number may register (AddAlertHook) —
	// the autoscaler listens here without stealing the CLI's slot.
	alertHooks []func(Alert)

	// OnAlert, when non-nil, observes each alert with the aggressor
	// ranking computed for it (live CLI output hooks in here).
	OnAlert func(Alert, []RankedAggressor)
	// OnIncident, when non-nil, observes each captured incident bundle.
	OnIncident func(*Incident)
}

// New builds a watcher from cfg, applying defaults for zero fields.
func New(cfg Config) *Watcher {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
	}
	// The store must retain at least the longest slow window.
	for _, r := range cfg.Rules {
		if need := int(r.Slow/cfg.Interval) + 2; need > cfg.Depth {
			cfg.Depth = need
		}
	}
	st := NewStore(cfg.Interval, cfg.Depth)
	st.SketchSeries(cfg.SketchSeries...)
	return &Watcher{
		cfg:      cfg,
		store:    st,
		monitor:  NewMonitor(cfg.Interval, cfg.Rules),
		recorder: NewRecorder(cfg.SpanRing, cfg.MaxIncidents),
		vms:      map[string]VMInfo{},
		lastPain: map[string]sim.Time{},
	}
}

// Store returns the windowed telemetry store.
func (w *Watcher) Store() *Store { return w.store }

// Monitor returns the SLO monitor.
func (w *Watcher) Monitor() *Monitor { return w.monitor }

// Recorder returns the flight recorder.
func (w *Watcher) Recorder() *Recorder { return w.recorder }

// Interval returns the epoch cadence.
func (w *Watcher) Interval() sim.Time { return w.cfg.Interval }

// Alerts returns every alert fired so far.
func (w *Watcher) Alerts() []Alert { return w.monitor.Alerts() }

// Rankings returns the aggressor ranking (and triples) computed for
// the most recent alert, or the latest on-demand attribution.
func (w *Watcher) Rankings() ([]RankedAggressor, []AggressorScore) {
	return w.lastRankings, w.lastTriples
}

// Start arms the epoch event on eng. A nil *Watcher is a no-op so the
// cluster can wire an optional watcher unconditionally.
func (w *Watcher) Start(eng *sim.Engine) {
	if w == nil {
		return
	}
	w.eng = eng
	eng.Every(w.cfg.Interval, "watch-epoch", w.epoch)
}

// AddFeed registers a callback run at the top of every epoch, before
// rule evaluation. Feeds push cumulative counters into the watcher.
func (w *Watcher) AddFeed(fn func(now sim.Time)) {
	if w == nil || fn == nil {
		return
	}
	w.feeds = append(w.feeds, fn)
}

// RegisterVM records (or updates, e.g. after live migration) one VM's
// placement metadata for attribution.
func (w *Watcher) RegisterVM(info VMInfo) {
	if w == nil {
		return
	}
	w.vms[info.Name] = info
}

// VMs returns the registered VM metadata sorted by name.
func (w *Watcher) VMs() []VMInfo {
	out := make([]VMInfo, 0, len(w.vms))
	for _, v := range w.vms {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ObserveRequest feeds one served request into the SLO signal; wire it
// to the router's completion callback.
func (w *Watcher) ObserveRequest(at sim.Time, violated bool) {
	if w == nil {
		return
	}
	w.monitor.Observe(at, violated)
}

// signalTime shifts an accounting flush at an exact window boundary
// back into the window the value accrued in: a delta pushed at
// t = k×interval describes (t-interval, t], which is window k-1.
func signalTime(at sim.Time) sim.Time {
	if at > 0 {
		return at - 1
	}
	return 0
}

// FeedPain pushes one VM's cumulative pain counter (preempt-wait +
// steal across its vCPUs, in ns). The watcher differentiates against
// the previous push, clamping counter resets to zero, and rolls the
// delta into the SeriesPain window that just accrued it.
func (w *Watcher) FeedPain(at sim.Time, host, vm string, cumulative sim.Time) {
	if w == nil {
		return
	}
	delta := cumulative - w.lastPain[vm]
	if delta < 0 {
		delta = 0
	}
	w.lastPain[vm] = cumulative
	w.store.Observe(SeriesPain, obs.Labels{Sub: host, VM: vm}, signalTime(at), float64(delta))
}

// AddOccupancy rolls one occupancy interval (VM vm held pCPU pcpu for
// dur, ending at at) into the SeriesOcc windows. Wire it to the
// hypervisor's occupancy observer.
func (w *Watcher) AddOccupancy(at sim.Time, host, vm, pcpu string, dur sim.Time) {
	if w == nil || dur <= 0 {
		return
	}
	w.store.Observe(SeriesOcc, obs.Labels{Sub: host, VM: vm, CPU: pcpu}, signalTime(at), float64(dur))
}

// AttributeAt runs the attribution engine over the trailing window
// [now-window, now) on demand, also refreshing Rankings().
func (w *Watcher) AttributeAt(now, window sim.Time) ([]RankedAggressor, []AggressorScore) {
	if w == nil {
		return nil, nil
	}
	ranked, triples := Attribute(w.store, w.VMs(), now-window, now)
	w.lastRankings, w.lastTriples = ranked, triples
	return ranked, triples
}

// RecordInvariant captures an incident bundle for a tripped invariant
// (wire it to invariant.Checker.OnViolation via the cluster layer).
// Attribution runs over the longest rule slow window for context.
func (w *Watcher) RecordInvariant(at sim.Time, rule, detail string) {
	if w == nil {
		return
	}
	window := w.maxSlow()
	ranked, triples := w.AttributeAt(at, window)
	inc := w.recorder.Capture(at, "invariant", rule+": "+detail, w.store, at-window)
	if inc == nil {
		return
	}
	inc.Rankings = ranked
	inc.Triples = triples
	if w.OnIncident != nil {
		w.OnIncident(inc)
	}
}

// maxSlow returns the longest slow window among the rules, or ten
// intervals when no rules are configured.
func (w *Watcher) maxSlow() sim.Time {
	var max sim.Time
	for _, r := range w.cfg.Rules {
		if r.Slow > max {
			max = r.Slow
		}
	}
	if max == 0 {
		max = 10 * w.cfg.Interval
	}
	return max
}

// epoch is the engine-attached heartbeat (Start).
func (w *Watcher) epoch() { w.RunEpoch(w.eng.Now()) }

// RunEpoch runs one watchdog epoch at the given virtual time: sync
// feeds, evaluate rules, and on a rising alert run attribution and
// capture an incident bundle. The sharded cluster drives this from a
// coordinator barrier task instead of Start, so the watcher reads
// every host with all shards parked at now. A nil *Watcher is a no-op.
func (w *Watcher) RunEpoch(now sim.Time) {
	if w == nil {
		return
	}
	for _, f := range w.feeds {
		f(now)
	}
	for _, a := range w.monitor.Evaluate(now) {
		a := a
		// Rank aggressors over the fast window — the interval whose burn
		// actually tripped the rule. The slow window (used below for the
		// flight-recorder context) reaches back far enough that a steady
		// background tenant's occupancy would dilute a freshly-landed
		// bully out of the top slot.
		ranked, triples := w.AttributeAt(now, a.Rule.Fast)
		if inc := w.recorder.Capture(now, "slo-alert", a.String(), w.store, now-a.Rule.Slow); inc != nil {
			inc.Alert = &a
			inc.Rankings = ranked
			inc.Triples = triples
			if w.OnIncident != nil {
				w.OnIncident(inc)
			}
		}
		if w.OnAlert != nil {
			w.OnAlert(a, ranked)
		}
		for _, h := range w.alertHooks {
			h(a)
		}
	}
}

// AddAlertHook registers fn to observe every alert RunEpoch fires, in
// registration order, after attribution and OnAlert. Unlike OnAlert it
// is additive — multiple listeners (autoscaler, tests, CLIs) coexist.
// A nil *Watcher or nil fn is a no-op.
func (w *Watcher) AddAlertHook(fn func(Alert)) {
	if w == nil || fn == nil {
		return
	}
	w.alertHooks = append(w.alertHooks, fn)
}
