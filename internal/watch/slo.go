package watch

import (
	"fmt"

	"repro/internal/sim"
)

// Alert is one burn-rate rule firing (a rising edge; the monitor does
// not re-alert while a rule stays hot).
type Alert struct {
	Rule Rule
	At   sim.Time

	// FastBurn/SlowBurn are the burn rates that tripped the rule, and
	// FastFrac/SlowFrac the underlying violation fractions.
	FastBurn, SlowBurn float64
	FastFrac, SlowFrac float64
	// Requests is the request count in the slow window at alert time.
	Requests int64
}

func (a Alert) String() string {
	return fmt.Sprintf("[%s] ALERT %s: burn fast=%.2f slow=%.2f (frac fast=%.4f slow=%.4f, budget %g, n=%d)",
		a.At, a.Rule.Name, a.FastBurn, a.SlowBurn, a.FastFrac, a.SlowFrac, a.Rule.Budget, a.Requests)
}

// Monitor evaluates a set of burn-rate rules online against one
// violation signal: each served request is Observe()d as met (0) or
// violated (1), folded into a windowed series, and Evaluate() checks
// every rule's fast+slow windows against its burn threshold.
type Monitor struct {
	rules  []Rule
	signal *Series
	firing []bool
	alerts []Alert
}

// NewMonitor builds a monitor for rules over windows of the given
// interval. The signal ring is sized to cover the longest slow window
// (plus slack so the window trailing `now` is never evicted early).
func NewMonitor(interval sim.Time, rules []Rule) *Monitor {
	if interval <= 0 {
		panic("watch: NewMonitor needs a positive interval")
	}
	var maxSlow sim.Time
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			panic(err.Error())
		}
		if r.Slow > maxSlow {
			maxSlow = r.Slow
		}
	}
	depth := int(maxSlow/interval) + 2
	if depth < 2 {
		depth = 2
	}
	return &Monitor{
		rules:  rules,
		signal: NewSeries(interval, depth, 0),
		firing: make([]bool, len(rules)),
	}
}

// Rules returns the monitored rules.
func (m *Monitor) Rules() []Rule { return m.rules }

// Observe records one served request at time at: violated is true when
// the request missed its SLO.
func (m *Monitor) Observe(at sim.Time, violated bool) {
	v := 0.0
	if violated {
		v = 1
	}
	m.signal.Observe(at, v)
}

// burn returns the violation fraction and burn rate over [now-win, now)
// for a rule with the given budget, plus the request count seen.
func (m *Monitor) burn(now, win sim.Time, budget float64) (frac, burn float64, n int64) {
	w := m.signal.RollupBetween(now-win, now)
	if w.Count == 0 {
		return 0, 0, 0
	}
	frac = w.Sum / float64(w.Count)
	return frac, frac / budget, w.Count
}

// Evaluate checks every rule at virtual time now and returns the
// alerts that fired on this pass (rising edges only). A rule re-arms
// once either window's burn rate drops back under its threshold.
func (m *Monitor) Evaluate(now sim.Time) []Alert {
	var fired []Alert
	for i, r := range m.rules {
		fastFrac, fastBurn, _ := m.burn(now, r.Fast, r.Budget)
		slowFrac, slowBurn, n := m.burn(now, r.Slow, r.Budget)
		hot := n > 0 && fastBurn >= r.Burn && slowBurn >= r.Burn
		if hot && !m.firing[i] {
			a := Alert{
				Rule: r, At: now,
				FastBurn: fastBurn, SlowBurn: slowBurn,
				FastFrac: fastFrac, SlowFrac: slowFrac,
				Requests: n,
			}
			m.alerts = append(m.alerts, a)
			fired = append(fired, a)
		}
		m.firing[i] = hot
	}
	return fired
}

// Alerts returns every alert fired so far, in order.
func (m *Monitor) Alerts() []Alert { return m.alerts }

// AnyFiring reports whether any rule is currently hot — the level
// signal (as opposed to Evaluate's rising edges) reactive control
// loops like the cluster's replica autoscaler poll between epochs.
func (m *Monitor) AnyFiring() bool {
	for _, f := range m.firing {
		if f {
			return true
		}
	}
	return false
}

// Firing reports whether the named rule is currently hot.
func (m *Monitor) Firing(name string) bool {
	for i, r := range m.rules {
		if r.Name == name {
			return m.firing[i]
		}
	}
	return false
}
