// Package watch is the online half of the simulator's observability:
// where internal/obs answers questions after a run, watch answers them
// while the run is still going. It keeps a windowed rollup store over
// virtual time (fixed-interval ring buckets with min/max/sum/count and
// mergeable quantile sketches), evaluates multi-window burn-rate SLO
// rules against the router's violation stream, attributes alerts to
// noisy neighbors by correlating victim pain against co-resident VM
// pCPU occupancy, and snapshots a flight-recorder incident bundle when
// an alert fires or an invariant trips.
//
// Like span and obs, watch is pay-as-you-go: a run that never attaches
// a Watcher pays only dead nil-checks at the hook sites.
package watch

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Window is one fixed-interval rollup bucket: [Start, Start+interval)
// in virtual time. Count/Sum/Min/Max are exact; Sketch (optional)
// carries bounded-relative-error quantiles that merge exactly across
// windows.
type Window struct {
	Start  sim.Time
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
	Sketch *obs.Sketch
}

// Empty reports whether the window saw no observations.
func (w Window) Empty() bool { return w.Count == 0 }

// Mean returns Sum/Count, or 0 for an empty window.
func (w Window) Mean() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// observe folds one value into the window.
func (w *Window) observe(v float64, alpha float64) {
	if w.Count == 0 || v < w.Min {
		w.Min = v
	}
	if w.Count == 0 || v > w.Max {
		w.Max = v
	}
	w.Count++
	w.Sum += v
	if alpha > 0 {
		if w.Sketch == nil {
			w.Sketch = obs.NewSketch(alpha)
		}
		w.Sketch.Add(sim.Time(v))
	}
}

// Rollup merges a set of windows into one aggregate window — the
// operation behind every multi-window SLO evaluation. It is associative
// and commutative: min/max/sum/count combine trivially and sketches
// merge bucket-wise (see obs.Sketch.Merge), so Rollup(a, Rollup(b, c))
// equals Rollup(Rollup(a, b), c). The result's Start is the earliest
// non-empty window's Start; its Sketch (if any input had one) is a
// fresh sketch, never an alias of an input's.
func Rollup(ws ...Window) Window {
	var out Window
	for _, w := range ws {
		if w.Empty() {
			continue
		}
		if out.Count == 0 {
			out.Start = w.Start
			out.Min = w.Min
			out.Max = w.Max
		} else {
			if w.Start < out.Start {
				out.Start = w.Start
			}
			if w.Min < out.Min {
				out.Min = w.Min
			}
			if w.Max > out.Max {
				out.Max = w.Max
			}
		}
		out.Count += w.Count
		out.Sum += w.Sum
		if w.Sketch != nil {
			if out.Sketch == nil {
				out.Sketch = obs.NewSketch(w.Sketch.Alpha())
			}
			out.Sketch.Merge(w.Sketch)
		}
	}
	return out
}

// Series is a ring of consecutive windows for one metric: depth windows
// of a fixed interval, indexed by aligned start time. Observations land
// in the window covering their timestamp; writing a window whose slot
// holds an older epoch evicts it, so the ring always covers the most
// recent depth intervals that saw traffic.
type Series struct {
	interval sim.Time
	alpha    float64 // >0 enables per-window sketches
	ring     []Window
}

// NewSeries returns an empty series of depth windows of the given
// interval. alpha > 0 attaches a quantile sketch to each window.
func NewSeries(interval sim.Time, depth int, alpha float64) *Series {
	if interval <= 0 {
		panic("watch: NewSeries needs a positive interval")
	}
	if depth <= 0 {
		panic("watch: NewSeries needs a positive depth")
	}
	s := &Series{interval: interval, ring: make([]Window, depth)}
	s.alpha = alpha
	for i := range s.ring {
		s.ring[i].Start = -1 // no window ever starts at negative time
	}
	return s
}

// Interval returns the window width.
func (s *Series) Interval() sim.Time { return s.interval }

// Depth returns the ring capacity in windows.
func (s *Series) Depth() int { return len(s.ring) }

// slot returns the ring position for the window starting at ws.
func (s *Series) slot(ws sim.Time) int {
	return int((ws / s.interval) % sim.Time(len(s.ring)))
}

// Observe folds v into the window covering time at.
func (s *Series) Observe(at sim.Time, v float64) {
	ws := at - at%s.interval
	i := s.slot(ws)
	if s.ring[i].Start != ws {
		s.ring[i] = Window{Start: ws}
	}
	s.ring[i].observe(v, s.alpha)
}

// WindowsBetween returns the non-empty windows overlapping [from, to),
// oldest first (the window containing `from` is included even when
// `from` cuts it in half). from is clamped to 0; windows evicted from
// the ring are simply absent.
func (s *Series) WindowsBetween(from, to sim.Time) []Window {
	if from < 0 {
		from = 0
	}
	// Align down: the window containing `from` is included, so ranges
	// that cut a window in half still see its data.
	start := from - from%s.interval
	var out []Window
	for ws := start; ws < to; ws += s.interval {
		i := s.slot(ws)
		if s.ring[i].Start == ws && !s.ring[i].Empty() {
			out = append(out, s.ring[i])
		}
	}
	return out
}

// WindowAt returns the window starting exactly at ws, if the ring
// still holds it.
func (s *Series) WindowAt(ws sim.Time) (Window, bool) {
	if ws < 0 || ws%s.interval != 0 {
		return Window{}, false
	}
	i := s.slot(ws)
	if s.ring[i].Start != ws {
		return Window{}, false
	}
	return s.ring[i], true
}

// RollupBetween merges the windows in [from, to) into one aggregate.
func (s *Series) RollupBetween(from, to sim.Time) Window {
	return Rollup(s.WindowsBetween(from, to)...)
}

// Store maps metric identities (name + obs labels) to windowed series,
// all sharing one interval and depth. It is the watcher's working set:
// sampler points, pain signals, and occupancy deltas all land here.
type Store struct {
	interval sim.Time
	depth    int

	// sketchAlpha, when > 0, is applied to series whose name is listed
	// in sketchFor.
	sketchAlpha float64
	sketchFor   map[string]bool

	entries map[string]*storeEntry
}

type storeEntry struct {
	name   string
	labels obs.Labels
	series *Series
}

// NewStore returns an empty store with the given window interval and
// ring depth.
func NewStore(interval sim.Time, depth int) *Store {
	if interval <= 0 {
		panic("watch: NewStore needs a positive interval")
	}
	if depth <= 0 {
		panic("watch: NewStore needs a positive depth")
	}
	return &Store{
		interval:    interval,
		depth:       depth,
		sketchAlpha: obs.DefaultSketchAlpha,
		sketchFor:   map[string]bool{},
		entries:     map[string]*storeEntry{},
	}
}

// Interval returns the store's window width.
func (st *Store) Interval() sim.Time { return st.interval }

// SketchSeries marks series names whose windows should carry quantile
// sketches (typically latency-like series; counters don't need them).
func (st *Store) SketchSeries(names ...string) {
	for _, n := range names {
		st.sketchFor[n] = true
	}
}

// Observe folds a point into the series for (name, labels), creating
// it on first use.
func (st *Store) Observe(name string, l obs.Labels, at sim.Time, v float64) {
	key := name + l.String()
	e := st.entries[key]
	if e == nil {
		alpha := 0.0
		if st.sketchFor[name] {
			alpha = st.sketchAlpha
		}
		e = &storeEntry{name: name, labels: l, series: NewSeries(st.interval, st.depth, alpha)}
		st.entries[key] = e
	}
	e.series.Observe(at, v)
}

// Attach subscribes the store to a sampler: every sampled point is
// folded into the matching windowed series as it lands.
func (st *Store) Attach(s *obs.Sampler) {
	if s == nil {
		return
	}
	s.OnPoint = func(name string, l obs.Labels, at sim.Time, v float64) {
		st.Observe(name, l, at, v)
	}
}

// Series returns the series for (name, labels), or nil.
func (st *Store) Series(name string, l obs.Labels) *Series {
	e := st.entries[name+l.String()]
	if e == nil {
		return nil
	}
	return e.series
}

// Len returns the number of distinct series.
func (st *Store) Len() int { return len(st.entries) }

// Visit calls fn for every series in deterministic (name, labels)
// order.
func (st *Store) Visit(fn func(name string, l obs.Labels, s *Series)) {
	keys := make([]string, 0, len(st.entries))
	for k := range st.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := st.entries[k]
		fn(e.name, e.labels, e.series)
	}
}
