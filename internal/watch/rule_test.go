package watch

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestParseRuleFull(t *testing.T) {
	r, err := ParseRule("page:budget=0.02,fast=500ms,slow=2s,burn=4")
	if err != nil {
		t.Fatal(err)
	}
	want := Rule{Name: "page", Budget: 0.02, Fast: 500 * sim.Millisecond, Slow: sim.Time(2 * time.Second), Burn: 4}
	if r != want {
		t.Fatalf("rule = %+v, want %+v", r, want)
	}
}

func TestParseRuleDefaults(t *testing.T) {
	r, err := ParseRule("slo:budget=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Fast != DefaultFastWindow || r.Slow != DefaultSlowWindow || r.Burn != DefaultBurn {
		t.Fatalf("defaults not applied: %+v", r)
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []string{
		"",                              // no colon
		"noname",                        // no colon
		":budget=0.1",                   // empty name
		"x:fast=1s",                     // budget missing
		"x:budget=0",                    // budget out of range
		"x:budget=1",                    // budget out of range
		"x:budget=0.1,budget=0.2",       // duplicate field
		"x:budget=0.1,fast=0s",          // fast not positive
		"x:budget=0.1,fast=2s,slow=1s",  // slow < fast
		"x:budget=0.1,burn=0",           // burn not positive
		"x:budget=0.1,bogus=3",          // unknown field
		"x:budget=abc",                  // bad float
		"x:budget=0.1,fast=xyz",         // bad duration
		"x:budget=0.1,",                 // empty field
		"a b:budget=0.1",                // reserved char in name
	}
	for _, c := range cases {
		if _, err := ParseRule(c); err == nil {
			t.Errorf("ParseRule(%q) accepted invalid input", c)
		}
	}
}

func TestParseRulesList(t *testing.T) {
	rs, err := ParseRules("a:budget=0.1; b:budget=0.2,burn=3;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name != "a" || rs[1].Name != "b" {
		t.Fatalf("rules = %+v", rs)
	}
	if _, err := ParseRules("a:budget=0.1;a:budget=0.2"); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"page:budget=0.02,fast=500ms,slow=2s,burn=4",
		"slo:budget=0.1",
		"t:budget=0.001,fast=1ms,slow=1ms,burn=0.5",
	} {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", r.String(), err)
		}
		if r != r2 {
			t.Fatalf("round trip %q -> %+v -> %+v", s, r, r2)
		}
	}
}

// FuzzParseRule drives the parser with arbitrary input; whatever
// parses must validate, render, and round-trip to an equal rule.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"page:budget=0.02,fast=500ms,slow=2s,burn=4",
		"slo:budget=0.1",
		"x:budget=0.5,burn=1.5",
		"a:budget=0.001,fast=10ms,slow=10m,burn=14.4",
		"bad:burn=2",
		":budget=0.1",
		"x:budget=0.1,fast=-1s",
		"x:budget=NaN",
		"x:budget=0.1,slow=1h,fast=59m59s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRule(s)
		if err != nil {
			return
		}
		if verr := r.Validate(); verr != nil {
			t.Fatalf("parsed rule fails validation: %q -> %+v: %v", s, r, verr)
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("rendered rule does not re-parse: %q -> %q: %v", s, r.String(), err)
		}
		if r != r2 {
			t.Fatalf("round trip changed rule: %q -> %+v -> %+v", s, r, r2)
		}
	})
}
