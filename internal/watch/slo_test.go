package watch

import (
	"testing"

	"repro/internal/sim"
)

func testRule() Rule {
	return Rule{
		Name: "page", Budget: 0.02,
		Fast: 200 * sim.Millisecond, Slow: sim.Second, Burn: 3,
	}
}

// feed pushes n requests at time at, v of them violated.
func feed(m *Monitor, at sim.Time, n, v int) {
	for i := 0; i < n; i++ {
		m.Observe(at, i < v)
	}
}

func TestMonitorNoTrafficNoAlert(t *testing.T) {
	m := NewMonitor(100*sim.Millisecond, []Rule{testRule()})
	if got := m.Evaluate(sim.Second); len(got) != 0 {
		t.Fatalf("alerts on empty signal: %v", got)
	}
}

func TestMonitorCleanTrafficNoAlert(t *testing.T) {
	m := NewMonitor(100*sim.Millisecond, []Rule{testRule()})
	for ms := 0; ms < 1000; ms += 100 {
		feed(m, sim.Time(ms)*sim.Millisecond, 100, 1) // 1% < 2% budget
	}
	if got := m.Evaluate(sim.Second); len(got) != 0 {
		t.Fatalf("alerts on within-budget traffic: %v", got)
	}
}

func TestMonitorBothWindowsMustBurn(t *testing.T) {
	// A violation spike confined to the last 100ms trips the fast
	// window but not the slow one: no alert (that's the point of
	// multi-window burn rates).
	m := NewMonitor(100*sim.Millisecond, []Rule{testRule()})
	for ms := 0; ms < 900; ms += 100 {
		feed(m, sim.Time(ms)*sim.Millisecond, 100, 0)
	}
	feed(m, 900*sim.Millisecond, 100, 30)
	fastFrac, fastBurn, _ := m.burn(sim.Second, 200*sim.Millisecond, 0.02)
	if fastFrac != 0.15 || fastBurn < 3 {
		t.Fatalf("fast frac=%v burn=%v", fastFrac, fastBurn)
	}
	_, slowBurn, _ := m.burn(sim.Second, sim.Second, 0.02)
	if slowBurn >= 3 {
		t.Fatalf("slow burn %v unexpectedly over threshold", slowBurn)
	}
	if got := m.Evaluate(sim.Second); len(got) != 0 {
		t.Fatalf("alert despite cold slow window: %v", got)
	}
}

func TestMonitorAlertsOnSustainedBurn(t *testing.T) {
	m := NewMonitor(100*sim.Millisecond, []Rule{testRule()})
	for ms := 0; ms < 1000; ms += 100 {
		feed(m, sim.Time(ms)*sim.Millisecond, 100, 20) // 20% >> 2%
	}
	got := m.Evaluate(sim.Second)
	if len(got) != 1 {
		t.Fatalf("alerts = %v, want 1", got)
	}
	a := got[0]
	if a.Rule.Name != "page" || a.At != sim.Second {
		t.Fatalf("alert = %+v", a)
	}
	if a.SlowFrac != 0.2 || a.SlowBurn != 10 {
		t.Fatalf("slow frac=%v burn=%v, want 0.2/10", a.SlowFrac, a.SlowBurn)
	}
	if !m.Firing("page") {
		t.Fatal("rule should be firing")
	}

	// Still hot next epoch: no re-alert (rising edge only).
	feed(m, 1000*sim.Millisecond, 100, 20)
	if got := m.Evaluate(1100 * sim.Millisecond); len(got) != 0 {
		t.Fatalf("re-alerted while hot: %v", got)
	}

	// Cool down: rule re-arms, a second burst re-alerts.
	for ms := 1100; ms < 2400; ms += 100 {
		feed(m, sim.Time(ms)*sim.Millisecond, 100, 0)
		m.Evaluate(sim.Time(ms+100) * sim.Millisecond)
	}
	if m.Firing("page") {
		t.Fatal("rule should have re-armed")
	}
	for ms := 2400; ms < 3400; ms += 100 {
		feed(m, sim.Time(ms)*sim.Millisecond, 100, 20)
	}
	if got := m.Evaluate(3400 * sim.Millisecond); len(got) != 1 {
		t.Fatalf("second alert missing: %v", got)
	}
	if len(m.Alerts()) != 2 {
		t.Fatalf("total alerts = %d, want 2", len(m.Alerts()))
	}
}

func TestWatcherEndToEndAlertAndAttribution(t *testing.T) {
	eng := sim.NewEngine()
	w := New(Config{
		Interval: 100 * sim.Millisecond,
		Rules:    []Rule{testRule()},
	})
	w.Start(eng)

	w.RegisterVM(VMInfo{Name: "victim", Host: "h0", VCPUs: 2, Sensitive: true})
	w.RegisterVM(VMInfo{Name: "bully", Host: "h0", VCPUs: 4})
	w.RegisterVM(VMInfo{Name: "mild", Host: "h0", VCPUs: 1})
	w.RegisterVM(VMInfo{Name: "far", Host: "h1", VCPUs: 8}) // other host: never blamed

	var cum sim.Time
	w.AddFeed(func(now sim.Time) {
		// Victim suffers 40ms of pain per 100ms epoch after t=500ms.
		if now > 500*sim.Millisecond {
			cum += 40 * sim.Millisecond
		}
		w.FeedPain(now, "h0", "victim", cum)
	})
	// Bully occupies p1 hard, mild occupies p2 a little, far is busy on
	// another host entirely.
	eng.Every(100*sim.Millisecond, "occ", func() {
		now := eng.Now()
		w.AddOccupancy(now, "h0", "bully", "p1", 80*sim.Millisecond)
		w.AddOccupancy(now, "h0", "mild", "p2", 10*sim.Millisecond)
		w.AddOccupancy(now, "h1", "far", "p0", 100*sim.Millisecond)
	})
	// Requests: clean before 500ms, 30% violations after.
	eng.Every(10*sim.Millisecond, "reqs", func() {
		now := eng.Now()
		for i := 0; i < 10; i++ {
			w.ObserveRequest(now, now > 500*sim.Millisecond && i < 3)
		}
	})

	var alerted []Alert
	var rankedAt []RankedAggressor
	w.OnAlert = func(a Alert, ranked []RankedAggressor) {
		alerted = append(alerted, a)
		rankedAt = ranked
	}
	if err := eng.Run(3 * sim.Second); err != nil {
		t.Fatal(err)
	}

	if len(alerted) == 0 {
		t.Fatal("no alert fired")
	}
	a := alerted[0]
	// Detection latency: violations start at 500ms; alert must land
	// within one slow window of that.
	if lat := a.At - 500*sim.Millisecond; lat > a.Rule.Slow {
		t.Fatalf("detection latency %v exceeds slow window %v", lat, a.Rule.Slow)
	}
	if len(rankedAt) < 2 {
		t.Fatalf("ranking too short: %v", rankedAt)
	}
	if rankedAt[0].Aggressor != "bully" || rankedAt[0].Victim != "victim" {
		t.Fatalf("top aggressor = %+v, want bully", rankedAt[0])
	}
	if rankedAt[0].Score < 2*rankedAt[1].Score {
		t.Fatalf("bully score %v not >= 2x runner-up %v", rankedAt[0].Score, rankedAt[1].Score)
	}
	for _, r := range rankedAt {
		if r.Aggressor == "far" {
			t.Fatal("cross-host VM blamed")
		}
	}

	// The alert also captured an incident bundle.
	incs := w.Recorder().Incidents()
	if len(incs) == 0 {
		t.Fatal("no incident captured")
	}
	if incs[0].Reason != "slo-alert" || incs[0].Alert == nil {
		t.Fatalf("incident = %+v", incs[0])
	}
	if len(incs[0].Rankings) == 0 || incs[0].Rankings[0].Aggressor != "bully" {
		t.Fatalf("incident rankings = %v", incs[0].Rankings)
	}
}

func TestWatcherPainCounterReset(t *testing.T) {
	w := New(Config{Interval: 100 * sim.Millisecond})
	w.FeedPain(100*sim.Millisecond, "h0", "vm", 50*sim.Millisecond)
	w.FeedPain(200*sim.Millisecond, "h0", "vm", 10*sim.Millisecond) // reset: clamp to 0
	w.FeedPain(300*sim.Millisecond, "h0", "vm", 30*sim.Millisecond)

	s := w.Store().Series(SeriesPain, labelsFor("h0", "vm"))
	if s == nil {
		t.Fatal("pain series missing")
	}
	r := s.RollupBetween(0, 400*sim.Millisecond)
	// 50ms + 0 (clamped) + 20ms.
	if want := float64(70 * sim.Millisecond); r.Sum != want {
		t.Fatalf("pain sum = %v, want %v", r.Sum, want)
	}
}
