package watch

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/trace"
)

// WindowDump is one window rendered for an incident bundle, with
// sketch quantiles materialized (a sketch itself is not meaningfully
// JSON-serializable for a human reader).
type WindowDump struct {
	StartNS int64   `json:"start_ns"`
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	P50NS   int64   `json:"p50_ns,omitempty"`
	P99NS   int64   `json:"p99_ns,omitempty"`
}

// SeriesDump is one store series' recent windows.
type SeriesDump struct {
	Name    string       `json:"name"`
	Labels  string       `json:"labels,omitempty"`
	Windows []WindowDump `json:"windows"`
}

// HostEvents is one host's recent scheduling events, pre-rendered.
type HostEvents struct {
	Host    string   `json:"host"`
	Dropped uint64   `json:"dropped"`
	Events  []string `json:"events"`
}

// SpanSummary is one recent span's headline numbers.
type SpanSummary struct {
	ID      int64  `json:"id"`
	StartNS int64  `json:"start_ns"`
	WallNS  int64  `json:"wall_ns"`
	Blame   string `json:"blame"` // dominant non-service category
}

// Incident is one self-contained flight-recorder snapshot: why it
// fired, who the attribution engine blames, and the raw windows,
// events, and spans an operator needs to replay the story in a JSON
// viewer or (via WriteTrace) Perfetto.
type Incident struct {
	ID     int    `json:"id"`
	AtNS   int64  `json:"at_ns"`
	Reason string `json:"reason"` // "slo-alert" | "invariant"
	Detail string `json:"detail"`

	Alert    *Alert            `json:"alert,omitempty"`
	Rankings []RankedAggressor `json:"rankings,omitempty"`
	Triples  []AggressorScore  `json:"triples,omitempty"`

	Series []SeriesDump `json:"series,omitempty"`
	Hosts  []HostEvents `json:"hosts,omitempty"`
	Spans  []SpanSummary `json:"spans,omitempty"`

	// spans kept aside for the Chrome-trace dump.
	traceSpans []*span.Span
}

// At returns the incident's virtual time.
func (inc *Incident) At() sim.Time { return sim.Time(inc.AtNS) }

// WriteJSON renders the incident bundle as indented JSON.
func (inc *Incident) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(inc)
}

// WriteTrace renders the incident's recent spans as Chrome trace JSON
// (loadable in ui.perfetto.dev), slowest requests first.
func (inc *Incident) WriteTrace(w io.Writer) error {
	return span.WriteChromeSpans(w, []span.TrackSet{
		{Name: "incident spans (slowest recent)", Spans: inc.traceSpans},
	})
}

// Recorder is the flight recorder: bounded rings of recent spans and
// per-host sim events, plus the incident store. All rings are sized at
// construction; a run that records nothing keeps only empty slices.
type Recorder struct {
	spanCap  int
	spans    []*span.Span // ring, insertion order via next
	spanNext int
	total    int64

	hosts []recorderHost

	maxIncidents int
	incidents    []*Incident
}

type recorderHost struct {
	name string
	log  *trace.Log
}

// Ring/bundle sizing defaults.
const (
	// DefaultSpanRing bounds how many recent spans the recorder keeps.
	DefaultSpanRing = 512
	// DefaultMaxIncidents caps stored incidents (a tripped invariant
	// re-fires every audit; the first few bundles tell the story).
	DefaultMaxIncidents = 8
	// traceSpanCount is how many slowest recent spans a bundle carries.
	traceSpanCount = 32
	// hostEventCount is how many trailing events per host a bundle
	// carries.
	hostEventCount = 64
)

// NewRecorder builds a recorder keeping spanCap recent spans and at
// most maxIncidents incidents (non-positive values take the defaults).
func NewRecorder(spanCap, maxIncidents int) *Recorder {
	if spanCap <= 0 {
		spanCap = DefaultSpanRing
	}
	if maxIncidents <= 0 {
		maxIncidents = DefaultMaxIncidents
	}
	return &Recorder{spanCap: spanCap, maxIncidents: maxIncidents}
}

// ObserveSpan folds one finished span into the ring; wire it to
// span.Tracer.OnFinish.
func (rec *Recorder) ObserveSpan(s *span.Span) {
	if s == nil {
		return
	}
	rec.total++
	if len(rec.spans) < rec.spanCap {
		rec.spans = append(rec.spans, s)
		return
	}
	rec.spans[rec.spanNext] = s
	rec.spanNext = (rec.spanNext + 1) % rec.spanCap
}

// SpanCount returns how many spans the recorder has seen in total.
func (rec *Recorder) SpanCount() int64 { return rec.total }

// AddHostLog registers one host's bounded event log for inclusion in
// incident bundles.
func (rec *Recorder) AddHostLog(name string, log *trace.Log) {
	if log == nil {
		return
	}
	rec.hosts = append(rec.hosts, recorderHost{name: name, log: log})
}

// Incidents returns the recorded incidents in order.
func (rec *Recorder) Incidents() []*Incident { return rec.incidents }

// dominantBlame names the non-service category a span spent the most
// time in ("clean" when service dominates everything else).
func dominantBlame(s *span.Span) string {
	t := s.Totals()
	best, bestV := span.CatService, sim.Time(0)
	for c := 0; c < span.NumCategories; c++ {
		if span.Category(c) == span.CatService {
			continue
		}
		if t[c] > bestV {
			best, bestV = span.Category(c), t[c]
		}
	}
	if bestV == 0 {
		return "clean"
	}
	return best.String()
}

// Capture assembles an incident bundle at virtual time at: the store's
// windows over [from, at), each host's trailing events, and the slowest
// recent spans. It returns nil when the incident cap is reached (the
// caller should treat that as "already told this story").
func (rec *Recorder) Capture(at sim.Time, reason, detail string, st *Store, from sim.Time) *Incident {
	if len(rec.incidents) >= rec.maxIncidents {
		return nil
	}
	inc := &Incident{
		ID:     len(rec.incidents) + 1,
		AtNS:   int64(at),
		Reason: reason,
		Detail: detail,
	}

	if st != nil {
		st.Visit(func(name string, l obs.Labels, s *Series) {
			ws := s.WindowsBetween(from, at)
			if len(ws) == 0 {
				return
			}
			sd := SeriesDump{Name: name, Labels: l.String()}
			for _, w := range ws {
				wd := WindowDump{
					StartNS: int64(w.Start), Count: w.Count,
					Sum: w.Sum, Min: w.Min, Max: w.Max,
				}
				if w.Sketch != nil {
					wd.P50NS = int64(w.Sketch.Percentile(50))
					wd.P99NS = int64(w.Sketch.Percentile(99))
				}
				sd.Windows = append(sd.Windows, wd)
			}
			inc.Series = append(inc.Series, sd)
		})
	}

	for _, h := range rec.hosts {
		events := h.log.Events()
		if len(events) > hostEventCount {
			events = events[len(events)-hostEventCount:]
		}
		he := HostEvents{Host: h.name, Dropped: h.log.Dropped()}
		for _, e := range events {
			he.Events = append(he.Events, e.String())
		}
		inc.Hosts = append(inc.Hosts, he)
	}

	// Slowest recent spans, then back into start order for rendering.
	recent := append([]*span.Span(nil), rec.spans...)
	sort.Slice(recent, func(i, j int) bool {
		if recent[i].Wall() != recent[j].Wall() {
			return recent[i].Wall() > recent[j].Wall()
		}
		return recent[i].ID < recent[j].ID
	})
	if len(recent) > traceSpanCount {
		recent = recent[:traceSpanCount]
	}
	sort.Slice(recent, func(i, j int) bool { return recent[i].Start < recent[j].Start })
	inc.traceSpans = recent
	for _, s := range recent {
		inc.Spans = append(inc.Spans, SpanSummary{
			ID: s.ID, StartNS: int64(s.Start), WallNS: int64(s.Wall()),
			Blame: dominantBlame(s),
		})
	}

	rec.incidents = append(rec.incidents, inc)
	return inc
}
