package watch

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Canonical series names for the watcher's interference signals. Both
// are fed as per-window deltas in nanoseconds, so a window's Sum is
// "how much of this happened inside this interval":
//
//   - SeriesPain, labeled {sub=<host>, vm=<victim>}: the victim's
//     combined preempt-wait + steal time across all its vCPUs.
//   - SeriesOcc, labeled {sub=<host>, vm=<aggressor>, cpu=<pcpu>}:
//     how long that VM's vCPUs physically occupied that pCPU.
const (
	SeriesPain = "watch.pain"
	SeriesOcc  = "watch.occ"
)

// VMInfo is the placement metadata the attribution engine needs about
// one VM: where it runs, how wide it is, and whether it is a protected
// (SLO-carrying) tenant whose pain is worth attributing.
type VMInfo struct {
	Name      string
	Host      string
	VCPUs     int
	Sensitive bool
}

// AggressorScore is one attribution triple: how strongly aggressor
// activity on one pCPU correlates with the victim's pain. Score is the
// windowed mean of painFrac×occFrac, where painFrac is the victim's
// steal+wait per vCPU-second and occFrac the aggressor's occupancy
// fraction of that pCPU — dimensionless, higher is guiltier.
type AggressorScore struct {
	Victim    string  `json:"victim"`
	Aggressor string  `json:"aggressor"`
	PCPU      string  `json:"pcpu"`
	Score     float64 `json:"score"`
}

func (a AggressorScore) String() string {
	return fmt.Sprintf("%s<-%s@%s %.4f", a.Victim, a.Aggressor, a.PCPU, a.Score)
}

// RankedAggressor aggregates the triples of one (victim, aggressor)
// pair across pCPUs — the headline ranking an operator acts on.
type RankedAggressor struct {
	Victim    string  `json:"victim"`
	Aggressor string  `json:"aggressor"`
	Score     float64 `json:"score"`
}

func (r RankedAggressor) String() string {
	return fmt.Sprintf("%s<-%s %.4f", r.Victim, r.Aggressor, r.Score)
}

// Attribute correlates victim pain against co-resident VM occupancy
// over [from, to) and returns the aggregate per-aggressor ranking plus
// the per-pCPU triples behind it, both sorted by descending score with
// deterministic name-order tie-breaks.
//
// For each window w the victim's pain fraction is
// pain(w) = (stealΔ+waitΔ)/(interval×vcpus) and each co-resident
// aggressor's occupancy fraction of pCPU p is occ(w,p) = occΔ/interval;
// the triple score is the mean over windows of pain(w)×occ(w,p).
// Multiplying per-window (rather than correlating totals) rewards
// aggressors whose occupancy coincides in time with the victim's pain,
// which is what separates the bully from a steady background tenant.
func Attribute(st *Store, vms []VMInfo, from, to sim.Time) ([]RankedAggressor, []AggressorScore) {
	interval := float64(st.Interval())

	// Index occupancy series by (host, aggressor VM) once.
	type occSeries struct {
		pcpu   string
		series *Series
	}
	occByVM := map[string][]occSeries{}
	st.Visit(func(name string, l obs.Labels, s *Series) {
		if name != SeriesOcc {
			return
		}
		key := l.Sub + "/" + l.VM
		occByVM[key] = append(occByVM[key], occSeries{pcpu: l.CPU, series: s})
	})

	sorted := append([]VMInfo(nil), vms...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	var triples []AggressorScore
	for _, victim := range sorted {
		if !victim.Sensitive || victim.VCPUs <= 0 {
			continue
		}
		ps := st.Series(SeriesPain, obs.Labels{Sub: victim.Host, VM: victim.Name})
		if ps == nil {
			continue
		}
		pains := ps.WindowsBetween(from, to)
		if len(pains) == 0 {
			continue
		}
		for _, aggr := range sorted {
			if aggr.Name == victim.Name || aggr.Host != victim.Host {
				continue
			}
			for _, occ := range occByVM[aggr.Host+"/"+aggr.Name] {
				var sum float64
				for _, pw := range pains {
					ow, ok := occ.series.WindowAt(pw.Start)
					if !ok {
						continue
					}
					painFrac := pw.Sum / (interval * float64(victim.VCPUs))
					occFrac := ow.Sum / interval
					sum += painFrac * occFrac
				}
				score := sum / float64(len(pains))
				if score > 0 {
					triples = append(triples, AggressorScore{
						Victim: victim.Name, Aggressor: aggr.Name,
						PCPU: occ.pcpu, Score: score,
					})
				}
			}
		}
	}

	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		if a.Aggressor != b.Aggressor {
			return a.Aggressor < b.Aggressor
		}
		return a.PCPU < b.PCPU
	})

	// Aggregate triples into the per-(victim, aggressor) ranking.
	agg := map[string]*RankedAggressor{}
	var order []string
	for _, t := range triples {
		key := t.Victim + "\x00" + t.Aggressor
		r := agg[key]
		if r == nil {
			r = &RankedAggressor{Victim: t.Victim, Aggressor: t.Aggressor}
			agg[key] = r
			order = append(order, key)
		}
		r.Score += t.Score
	}
	ranked := make([]RankedAggressor, 0, len(order))
	for _, key := range order {
		ranked = append(ranked, *agg[key])
	}
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		return a.Aggressor < b.Aggressor
	})
	return ranked, triples
}
