package watch

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// Rule is one multi-window burn-rate SLO alert rule in the Google SRE
// style: the alert fires when the error-budget burn rate exceeds Burn
// over BOTH the fast window (responsiveness) and the slow window
// (sustained impact), which keeps detection quick without paging on
// one-interval blips.
//
// The signal is the router's per-request violation stream: each served
// request contributes a 0 (met SLO) or 1 (violated). Budget is the
// violation fraction the SLO tolerates; burn rate is the observed
// fraction divided by the budget, so burn 1.0 consumes the budget
// exactly as provisioned and burn 4.0 exhausts it four times too fast.
type Rule struct {
	// Name identifies the rule in alerts and incident bundles.
	Name string
	// Budget is the tolerated violation fraction, in (0, 1).
	Budget float64
	// Fast and Slow are the two evaluation windows, Fast <= Slow.
	Fast, Slow sim.Time
	// Burn is the burn-rate threshold both windows must exceed.
	Burn float64
}

// Defaults applied by ParseRule when a field is omitted.
const (
	DefaultFastWindow = sim.Time(time.Second)
	DefaultSlowWindow = sim.Time(5 * time.Second)
	DefaultBurn       = 2.0
)

// String renders the rule in the exact syntax ParseRule accepts, with
// every field explicit: "name:budget=0.02,fast=500ms,slow=2s,burn=4".
// ParseRule(r.String()) round-trips to an equal rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s:budget=%s,fast=%s,slow=%s,burn=%s",
		r.Name,
		strconv.FormatFloat(r.Budget, 'g', -1, 64),
		time.Duration(r.Fast),
		time.Duration(r.Slow),
		strconv.FormatFloat(r.Burn, 'g', -1, 64))
}

// Validate reports whether the rule's fields are coherent.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("watch: rule needs a name")
	}
	if strings.ContainsAny(r.Name, ":,;= \t\n") {
		return fmt.Errorf("watch: rule name %q contains reserved characters", r.Name)
	}
	if !(r.Budget > 0 && r.Budget < 1) {
		return fmt.Errorf("watch: rule %s: budget %v outside (0, 1)", r.Name, r.Budget)
	}
	if r.Fast <= 0 {
		return fmt.Errorf("watch: rule %s: fast window %v not positive", r.Name, r.Fast)
	}
	if r.Slow < r.Fast {
		return fmt.Errorf("watch: rule %s: slow window %v shorter than fast %v", r.Name, r.Slow, r.Fast)
	}
	if !(r.Burn > 0) {
		return fmt.Errorf("watch: rule %s: burn threshold %v not positive", r.Name, r.Burn)
	}
	return nil
}

// ParseRule parses one rule of the form
//
//	name:budget=0.02[,fast=500ms][,slow=2s][,burn=4]
//
// budget is required; fast, slow and burn fall back to
// DefaultFastWindow/DefaultSlowWindow/DefaultBurn. Durations use Go
// syntax ("500ms", "2s"). Whitespace around the rule is ignored.
func ParseRule(s string) (Rule, error) {
	s = strings.TrimSpace(s)
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Rule{}, fmt.Errorf("watch: rule %q: want name:key=value,...", s)
	}
	r := Rule{
		Name: strings.TrimSpace(name),
		Fast: DefaultFastWindow,
		Slow: DefaultSlowWindow,
		Burn: DefaultBurn,
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(rest, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return Rule{}, fmt.Errorf("watch: rule %q: empty field", s)
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Rule{}, fmt.Errorf("watch: rule %q: field %q is not key=value", s, field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if seen[key] {
			return Rule{}, fmt.Errorf("watch: rule %q: duplicate field %q", s, key)
		}
		seen[key] = true
		switch key {
		case "budget", "burn":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Rule{}, fmt.Errorf("watch: rule %q: %s: %v", s, key, err)
			}
			if key == "budget" {
				r.Budget = f
			} else {
				r.Burn = f
			}
		case "fast", "slow":
			d, err := time.ParseDuration(val)
			if err != nil {
				return Rule{}, fmt.Errorf("watch: rule %q: %s: %v", s, key, err)
			}
			if key == "fast" {
				r.Fast = sim.Time(d)
			} else {
				r.Slow = sim.Time(d)
			}
		default:
			return Rule{}, fmt.Errorf("watch: rule %q: unknown field %q", s, key)
		}
	}
	if !seen["budget"] {
		return Rule{}, fmt.Errorf("watch: rule %q: budget is required", s)
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// ParseRules parses a semicolon-separated rule list. Empty segments
// (a trailing ";") are skipped; rule names must be unique.
func ParseRules(s string) ([]Rule, error) {
	var out []Rule
	names := map[string]bool{}
	for _, seg := range strings.Split(s, ";") {
		if strings.TrimSpace(seg) == "" {
			continue
		}
		r, err := ParseRule(seg)
		if err != nil {
			return nil, err
		}
		if names[r.Name] {
			return nil, fmt.Errorf("watch: duplicate rule name %q", r.Name)
		}
		names[r.Name] = true
		out = append(out, r)
	}
	return out, nil
}
