package watch

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/trace"
)

func finishedSpan(tr *span.Tracer, start, end sim.Time) *span.Span {
	s := tr.Start(start)
	s.Transition(start, span.CatService)
	s.Finish(end)
	return s
}

func TestRecorderSpanRingBounded(t *testing.T) {
	rec := NewRecorder(4, 0)
	tr := span.NewTracer()
	tr.OnFinish = rec.ObserveSpan
	for i := 1; i <= 10; i++ {
		finishedSpan(tr, sim.Time(i), sim.Time(i)+sim.Time(i)*sim.Microsecond)
	}
	if rec.SpanCount() != 10 {
		t.Fatalf("span count = %d, want 10", rec.SpanCount())
	}
	inc := rec.Capture(sim.Second, "invariant", "test", nil, 0)
	if inc == nil {
		t.Fatal("capture failed")
	}
	if len(inc.Spans) != 4 {
		t.Fatalf("bundle spans = %d, want ring cap 4", len(inc.Spans))
	}
	// Ring keeps the most recent spans: IDs 7..10.
	for _, s := range inc.Spans {
		if s.ID < 7 {
			t.Fatalf("evicted span %d still in bundle", s.ID)
		}
	}
}

func TestRecorderIncidentCap(t *testing.T) {
	rec := NewRecorder(0, 2)
	if rec.Capture(1, "invariant", "a", nil, 0) == nil {
		t.Fatal("first capture refused")
	}
	if rec.Capture(2, "invariant", "b", nil, 0) == nil {
		t.Fatal("second capture refused")
	}
	if rec.Capture(3, "invariant", "c", nil, 0) != nil {
		t.Fatal("cap not enforced")
	}
	if len(rec.Incidents()) != 2 {
		t.Fatalf("incidents = %d", len(rec.Incidents()))
	}
}

func TestIncidentBundleJSONAndTrace(t *testing.T) {
	rec := NewRecorder(8, 0)
	tr := span.NewTracer()
	tr.OnFinish = rec.ObserveSpan
	finishedSpan(tr, sim.Millisecond, 5*sim.Millisecond)

	log := trace.NewLog(16)
	log.Record(2*sim.Millisecond, trace.KindNote, "p0", "hello")
	rec.AddHostLog("host0", log)

	st := NewStore(sim.Millisecond, 8)
	st.SketchSeries("lat")
	st.Observe("lat", obs.Labels{VM: "a"}, sim.Millisecond, float64(3*sim.Millisecond))
	st.Observe(SeriesPain, labelsFor("h0", "a"), sim.Millisecond, 7)

	inc := rec.Capture(8*sim.Millisecond, "slo-alert", "details here", st, 0)
	if inc == nil {
		t.Fatal("capture failed")
	}

	var buf bytes.Buffer
	if err := inc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"slo-alert", "details here", "host0", "hello", "watch.pain", `"p50_ns"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("bundle JSON missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := inc.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
}

func TestWatcherRecordInvariant(t *testing.T) {
	eng := sim.NewEngine()
	w := New(Config{Interval: 100 * sim.Millisecond})
	w.Start(eng)
	var seen []*Incident
	w.OnIncident = func(inc *Incident) { seen = append(seen, inc) }
	eng.At(sim.Second, "trip", func() {
		w.RecordInvariant(eng.Now(), "sa-accounting", "mismatch")
	})
	if err := eng.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("incidents = %d, want 1", len(seen))
	}
	if seen[0].Reason != "invariant" || !strings.Contains(seen[0].Detail, "sa-accounting") {
		t.Fatalf("incident = %+v", seen[0])
	}
}
