package watch

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func labelsFor(host, vm string) obs.Labels { return obs.Labels{Sub: host, VM: vm} }

// buildScene fills a store with one victim in pain and two aggressors
// of different intensity over windows [0, n*interval).
func buildScene(t *testing.T, n int) (*Store, []VMInfo) {
	t.Helper()
	iv := 100 * sim.Millisecond
	st := NewStore(iv, 32)
	for i := 0; i < n; i++ {
		at := sim.Time(i) * iv
		st.Observe(SeriesPain, labelsFor("h0", "victim"), at, float64(40*sim.Millisecond))
		st.Observe(SeriesOcc, obs.Labels{Sub: "h0", VM: "bully", CPU: "p1"}, at, float64(60*sim.Millisecond))
		st.Observe(SeriesOcc, obs.Labels{Sub: "h0", VM: "bully", CPU: "p2"}, at, float64(20*sim.Millisecond))
		st.Observe(SeriesOcc, obs.Labels{Sub: "h0", VM: "mild", CPU: "p1"}, at, float64(10*sim.Millisecond))
		st.Observe(SeriesOcc, obs.Labels{Sub: "h1", VM: "far", CPU: "p0"}, at, float64(100*sim.Millisecond))
	}
	vms := []VMInfo{
		{Name: "victim", Host: "h0", VCPUs: 2, Sensitive: true},
		{Name: "bully", Host: "h0", VCPUs: 4},
		{Name: "mild", Host: "h0", VCPUs: 1},
		{Name: "far", Host: "h1", VCPUs: 8},
	}
	return st, vms
}

func TestAttributeRanksCoResidentAggressors(t *testing.T) {
	st, vms := buildScene(t, 10)
	ranked, triples := Attribute(st, vms, 0, sim.Second)

	if len(ranked) != 2 {
		t.Fatalf("ranked = %v, want bully and mild only", ranked)
	}
	if ranked[0].Aggressor != "bully" || ranked[1].Aggressor != "mild" {
		t.Fatalf("order = %v", ranked)
	}
	// pain = 40ms/(100ms*2) = 0.2 per window.
	// bully: occ 0.6+0.2 over two pCPUs -> 0.2*0.8 = 0.16
	// mild:  occ 0.1 -> 0.2*0.1 = 0.02; ratio 8x.
	if ranked[0].Score < 2*ranked[1].Score {
		t.Fatalf("bully %v not >= 2x mild %v", ranked[0].Score, ranked[1].Score)
	}
	const eps = 1e-9
	if got := ranked[0].Score; got < 0.16-eps || got > 0.16+eps {
		t.Fatalf("bully score = %v, want 0.16", got)
	}

	// Triples keep the per-pCPU detail, sorted by descending score.
	if len(triples) != 3 {
		t.Fatalf("triples = %v", triples)
	}
	if triples[0].PCPU != "p1" || triples[0].Aggressor != "bully" {
		t.Fatalf("top triple = %+v", triples[0])
	}
	for _, tr := range triples {
		if tr.Aggressor == "far" {
			t.Fatal("cross-host VM in triples")
		}
	}
}

func TestAttributeRequiresTemporalOverlap(t *testing.T) {
	// Occupancy in disjoint windows from the pain contributes nothing:
	// the engine correlates per-window, not totals.
	iv := 100 * sim.Millisecond
	st := NewStore(iv, 32)
	for i := 0; i < 5; i++ {
		st.Observe(SeriesPain, labelsFor("h0", "victim"), sim.Time(i)*iv, float64(40*sim.Millisecond))
	}
	for i := 5; i < 10; i++ {
		st.Observe(SeriesOcc, obs.Labels{Sub: "h0", VM: "late", CPU: "p0"}, sim.Time(i)*iv, float64(90*sim.Millisecond))
	}
	vms := []VMInfo{
		{Name: "victim", Host: "h0", VCPUs: 1, Sensitive: true},
		{Name: "late", Host: "h0", VCPUs: 4},
	}
	ranked, _ := Attribute(st, vms, 0, sim.Second)
	if len(ranked) != 0 {
		t.Fatalf("non-overlapping occupancy blamed: %v", ranked)
	}
}

func TestAttributeNoVictimsNoOutput(t *testing.T) {
	st, vms := buildScene(t, 5)
	for i := range vms {
		vms[i].Sensitive = false
	}
	ranked, triples := Attribute(st, vms, 0, sim.Second)
	if len(ranked) != 0 || len(triples) != 0 {
		t.Fatalf("output without sensitive victims: %v %v", ranked, triples)
	}
}

func TestAttributeDeterministicTieBreak(t *testing.T) {
	iv := 100 * sim.Millisecond
	st := NewStore(iv, 16)
	st.Observe(SeriesPain, labelsFor("h0", "v"), 0, float64(50*sim.Millisecond))
	// Two aggressors with identical occupancy: tie broken by name.
	st.Observe(SeriesOcc, obs.Labels{Sub: "h0", VM: "zeta", CPU: "p0"}, 0, float64(30*sim.Millisecond))
	st.Observe(SeriesOcc, obs.Labels{Sub: "h0", VM: "alpha", CPU: "p0"}, 0, float64(30*sim.Millisecond))
	vms := []VMInfo{
		{Name: "v", Host: "h0", VCPUs: 1, Sensitive: true},
		{Name: "zeta", Host: "h0", VCPUs: 1},
		{Name: "alpha", Host: "h0", VCPUs: 1},
	}
	ranked, _ := Attribute(st, vms, 0, iv)
	if len(ranked) != 2 || ranked[0].Aggressor != "alpha" || ranked[1].Aggressor != "zeta" {
		t.Fatalf("tie-break order = %v", ranked)
	}
}
