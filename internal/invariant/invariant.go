// Package invariant is a runtime consistency checker for simulation
// runs. It periodically audits every attached source (the hypervisor's
// scheduling state, each guest kernel's task accounting) and collects
// structured violations instead of panicking, so chaos experiments can
// assert "faults degrade performance, never consistency" and report
// exactly what broke, where, and at which virtual time when something
// does.
package invariant

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Violation is one broken invariant, stamped with virtual time.
type Violation struct {
	At     sim.Time
	Rule   string // e.g. "sa-accounting", "no-lost-tasks"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.At, v.Rule, v.Detail)
}

// Source is anything that can audit its own invariants. The hypervisor
// and each guest kernel implement it.
type Source interface {
	AuditInvariants(report func(rule, detail string))
}

// maxRecorded caps stored violations; past it only the count grows
// (a broken invariant usually re-fires on every audit pass).
const maxRecorded = 256

// Checker audits a set of sources on a fixed virtual-time cadence and
// records violations. The zero Checker is unusable; use New.
type Checker struct {
	eng     *sim.Engine
	every   sim.Time
	sources []Source

	violations []Violation
	total      int64
	audits     int64

	// OnViolation, when non-nil, observes every violation as it is
	// recorded (including ones past the storage cap). The watch flight
	// recorder subscribes here so an invariant trip dumps an incident
	// bundle with the scheduling context still in its rings.
	OnViolation func(Violation)
}

// New creates a checker auditing at the given cadence once attached.
// A non-positive cadence defaults to 1 ms of virtual time.
func New(every sim.Time) *Checker {
	if every <= 0 {
		every = sim.Millisecond
	}
	return &Checker{every: every}
}

// Observe registers sources to audit. Call before Attach.
func (c *Checker) Observe(srcs ...Source) {
	for _, s := range srcs {
		if s != nil {
			c.sources = append(c.sources, s)
		}
	}
}

// Attach hooks the checker to the engine: a periodic audit event plus
// the engine's own OnViolation reporting (schedule-in-past and
// non-positive-period become recorded violations instead of panics).
func (c *Checker) Attach(eng *sim.Engine) {
	c.eng = eng
	eng.OnViolation = func(name, detail string) {
		c.record(eng.Now(), name, detail)
	}
	eng.Every(c.every, "invariant-audit", func() { c.Audit() })
}

// Audit runs one audit pass over every source immediately.
func (c *Checker) Audit() {
	now := sim.Time(0)
	if c.eng != nil {
		now = c.eng.Now()
	}
	c.AuditAt(now)
}

// AuditAt runs one audit pass stamped with the given virtual time. An
// unattached checker driven by an external clock (the sharded cluster
// audits at coordinator barriers, where no single engine is "the"
// clock) uses this instead of Attach.
func (c *Checker) AuditAt(now sim.Time) {
	c.audits++
	for _, s := range c.sources {
		s.AuditInvariants(func(rule, detail string) {
			c.record(now, rule, detail)
		})
	}
}

// Record reports one externally detected violation, e.g. a sharded
// coordinator's lookahead violation or an engine contract trip bridged
// from a shard without its own checker.
func (c *Checker) Record(at sim.Time, rule, detail string) {
	c.record(at, rule, detail)
}

func (c *Checker) record(at sim.Time, rule, detail string) {
	c.total++
	if len(c.violations) < maxRecorded {
		c.violations = append(c.violations, Violation{At: at, Rule: rule, Detail: detail})
	}
	if c.OnViolation != nil {
		c.OnViolation(Violation{At: at, Rule: rule, Detail: detail})
	}
}

// Violations returns the recorded violations (capped at maxRecorded;
// Count gives the true total).
func (c *Checker) Violations() []Violation { return c.violations }

// Count returns the total number of violations observed.
func (c *Checker) Count() int64 { return c.total }

// Audits returns how many audit passes have run.
func (c *Checker) Audits() int64 { return c.audits }

// Summary renders a one-line result: "clean (N audits)" or the
// violation count with the first few rules.
func (c *Checker) Summary() string {
	if c.total == 0 {
		return fmt.Sprintf("clean (%d audits)", c.audits)
	}
	rules := make(map[string]int)
	var order []string
	for _, v := range c.violations {
		if rules[v.Rule] == 0 {
			order = append(order, v.Rule)
		}
		rules[v.Rule]++
	}
	parts := make([]string, 0, len(order))
	for _, r := range order {
		parts = append(parts, fmt.Sprintf("%s×%d", r, rules[r]))
	}
	return fmt.Sprintf("%d violations (%s)", c.total, strings.Join(parts, " "))
}
