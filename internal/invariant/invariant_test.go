package invariant_test

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/sim"
)

// fakeSource reports a fixed set of violations per audit.
type fakeSource struct {
	rules []string
}

func (f *fakeSource) AuditInvariants(report func(rule, detail string)) {
	for _, r := range f.rules {
		report(r, "detail for "+r)
	}
}

func TestCleanSourceStaysClean(t *testing.T) {
	eng := sim.NewEngine()
	chk := invariant.New(sim.Millisecond)
	chk.Observe(&fakeSource{})
	chk.Attach(eng)
	_ = eng.Run(10 * sim.Millisecond)
	if chk.Count() != 0 {
		t.Fatalf("count = %d, want 0", chk.Count())
	}
	if chk.Audits() == 0 {
		t.Fatal("no audits ran")
	}
	if got := chk.Summary(); !strings.HasPrefix(got, "clean") {
		t.Fatalf("summary = %q, want clean", got)
	}
}

func TestViolationsTimestampedAndCounted(t *testing.T) {
	eng := sim.NewEngine()
	chk := invariant.New(2 * sim.Millisecond)
	chk.Observe(&fakeSource{rules: []string{"rule-a", "rule-b"}})
	chk.Attach(eng)
	_ = eng.Run(5 * sim.Millisecond) // audits at 2ms and 4ms
	if chk.Count() != 4 {
		t.Fatalf("count = %d, want 4", chk.Count())
	}
	vs := chk.Violations()
	if len(vs) != 4 {
		t.Fatalf("recorded %d, want 4", len(vs))
	}
	if vs[0].At != 2*sim.Millisecond || vs[2].At != 4*sim.Millisecond {
		t.Fatalf("timestamps %v and %v, want 2ms and 4ms", vs[0].At, vs[2].At)
	}
	if vs[0].Rule != "rule-a" || vs[1].Rule != "rule-b" {
		t.Fatalf("rules %q %q", vs[0].Rule, vs[1].Rule)
	}
	if s := chk.Summary(); !strings.Contains(s, "rule-a×2") || !strings.Contains(s, "4 violations") {
		t.Fatalf("summary = %q", s)
	}
}

func TestEngineViolationsBridged(t *testing.T) {
	eng := sim.NewEngine()
	chk := invariant.New(sim.Second)
	chk.Attach(eng)
	// Schedule-in-past and non-positive period are reported, not panics.
	eng.At(5*sim.Millisecond, "later", func() {
		eng.At(sim.Millisecond, "past", func() {})
	})
	eng.Every(0, "bad", func() {})
	_ = eng.Run(10 * sim.Millisecond)
	var rules []string
	for _, v := range chk.Violations() {
		rules = append(rules, v.Rule)
	}
	if len(rules) != 2 || rules[0] != "non-positive-period" || rules[1] != "schedule-in-past" {
		t.Fatalf("bridged rules = %v", rules)
	}
	if chk.Violations()[1].At != 5*sim.Millisecond {
		t.Fatalf("schedule-in-past stamped at %v, want 5ms", chk.Violations()[1].At)
	}
}

func TestRecordingCapHolds(t *testing.T) {
	eng := sim.NewEngine()
	chk := invariant.New(sim.Millisecond)
	src := &fakeSource{}
	for i := 0; i < 10; i++ {
		src.rules = append(src.rules, "noisy")
	}
	chk.Observe(src)
	chk.Attach(eng)
	_ = eng.Run(100 * sim.Millisecond) // 100 audits x 10 = 1000 violations
	if chk.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", chk.Count())
	}
	if len(chk.Violations()) != 256 {
		t.Fatalf("recorded %d, want capped at 256", len(chk.Violations()))
	}
}
