// Package fault is the deterministic fault-injection subsystem of the
// simulator. A Plan describes a mix of control-plane faults — dropped,
// delayed or duplicated virtual interrupts, lossy or slow hypercalls,
// stale VCPUOP_get_runstate snapshots, jittered guest timer ticks,
// migrator-thread stalls, and vCPU blackouts — and an Injector turns
// the plan into per-decision draws from seeded SplitMix64 streams.
//
// Every fault channel owns an independent RNG stream forked from the
// run seed, so enabling one fault class never perturbs the draws of
// another and a given (seed, plan) pair reproduces a chaos run
// bit-for-bit. A nil *Injector is a valid "no faults" injector: every
// decision method reports "don't inject", mirroring the nil-safety of
// trace.Log and obs.Registry, so injection sites in scheduler hot
// paths need no guards.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Plan describes a fault mix. Probabilities are in [0, 1]; durations
// are virtual time. The zero Plan injects nothing.
type Plan struct {
	// DropSA / DupSA / DelaySA fault the VIRQ_SA_UPCALL channel: a
	// dropped SA is never delivered to the guest (the hypervisor still
	// accounts it as sent, so its hard limit fires); a duplicated SA is
	// delivered twice; DelaySA adds a uniform [0, DelaySA) delivery
	// latency.
	DropSA  float64
	DupSA   float64
	DelaySA sim.Time

	// DropWake / DupWake / DelayWake fault event-channel wakeup
	// notifications (IRQKick): the lost-wakeup pathology.
	DropWake  float64
	DupWake   float64
	DelayWake sim.Time

	// AckLoss is the probability that a sched_op hypercall carrying an
	// SA acknowledgement is lost in the hypervisor: the guest believes
	// it answered, the sender never sees it, and the hard limit fires.
	// AckDelay adds a uniform [0, AckDelay) latency to surviving acks.
	AckLoss  float64
	AckDelay sim.Time

	// StaleRunstate serves VCPUOP_get_runstate snapshots up to this
	// old: a snapshot is cached per vCPU and only refreshed once its
	// age exceeds the bound, so the IRS migrator can observe a sibling
	// as running when it was long since preempted.
	StaleRunstate sim.Time

	// TickJitter scales guest timer-tick periods by a uniform factor in
	// [1, 1+TickJitter], modelling coalesced / late timer interrupts.
	TickJitter float64

	// StallProb stalls the IRS migrator kernel thread for StallFor
	// before it processes a batch, with probability StallProb per kick.
	StallProb float64
	StallFor  sim.Time

	// BlackoutEvery pauses one vCPU (chosen uniformly from the started
	// vCPUs) for BlackoutFor at this period — the control-plane
	// pause/resume blackout. 0 disables.
	BlackoutEvery sim.Time
	BlackoutFor   sim.Time
}

// Zero reports whether the plan injects no faults at all.
func (p Plan) Zero() bool { return p == Plan{} }

// Validate rejects plans with probabilities outside [0, 1] or negative
// durations.
func (p Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"drop-sa", p.DropSA}, {"dup-sa", p.DupSA},
		{"drop-wake", p.DropWake}, {"dup-wake", p.DupWake},
		{"ack-loss", p.AckLoss}, {"tick-jitter", p.TickJitter},
		{"stall-p", p.StallProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s=%v outside [0,1]", pr.name, pr.v)
		}
	}
	durs := []struct {
		name string
		v    sim.Time
	}{
		{"delay-sa", p.DelaySA}, {"delay-wake", p.DelayWake},
		{"ack-delay", p.AckDelay}, {"stale-runstate", p.StaleRunstate},
		{"stall-for", p.StallFor}, {"blackout-every", p.BlackoutEvery},
		{"blackout-for", p.BlackoutFor},
	}
	for _, d := range durs {
		if d.v < 0 {
			return fmt.Errorf("fault: %s=%v negative", d.name, d.v)
		}
	}
	if p.BlackoutEvery > 0 && p.BlackoutFor <= 0 {
		return fmt.Errorf("fault: blackout-every set but blackout-for is zero")
	}
	if p.BlackoutFor > 0 && p.BlackoutEvery <= 0 {
		return fmt.Errorf("fault: blackout-for set but blackout-every is zero")
	}
	if p.StallProb > 0 && p.StallFor <= 0 {
		return fmt.Errorf("fault: stall-p set but stall-for is zero")
	}
	return nil
}

// String renders the plan as a canonical spec that ParsePlan accepts:
// comma-separated key=value pairs in fixed order, zero fields omitted.
// The zero plan renders as "none".
func (p Plan) String() string {
	var parts []string
	prob := func(key string, v float64) {
		if v != 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	dur := func(key string, v sim.Time) {
		if v != 0 {
			parts = append(parts, key+"="+v.Std().String())
		}
	}
	prob("drop-sa", p.DropSA)
	prob("dup-sa", p.DupSA)
	dur("delay-sa", p.DelaySA)
	prob("drop-wake", p.DropWake)
	prob("dup-wake", p.DupWake)
	dur("delay-wake", p.DelayWake)
	prob("ack-loss", p.AckLoss)
	dur("ack-delay", p.AckDelay)
	dur("stale-runstate", p.StaleRunstate)
	prob("tick-jitter", p.TickJitter)
	prob("stall-p", p.StallProb)
	dur("stall-for", p.StallFor)
	dur("blackout-every", p.BlackoutEvery)
	dur("blackout-for", p.BlackoutFor)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a fault-plan spec: comma-separated key=value pairs
// where probability keys take floats in [0,1] and duration keys take Go
// durations ("50us", "2ms"). "", "none" and "off" parse as the zero
// plan. The result of Plan.String always round-trips.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	switch strings.ToLower(spec) {
	case "", "none", "off":
		return p, nil
	}
	probFields := map[string]*float64{
		"drop-sa":     &p.DropSA,
		"dup-sa":      &p.DupSA,
		"drop-wake":   &p.DropWake,
		"dup-wake":    &p.DupWake,
		"ack-loss":    &p.AckLoss,
		"tick-jitter": &p.TickJitter,
		"stall-p":     &p.StallProb,
	}
	durFields := map[string]*sim.Time{
		"delay-sa":       &p.DelaySA,
		"delay-wake":     &p.DelayWake,
		"ack-delay":      &p.AckDelay,
		"stale-runstate": &p.StaleRunstate,
		"stall-for":      &p.StallFor,
		"blackout-every": &p.BlackoutEvery,
		"blackout-for":   &p.BlackoutFor,
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: %q is not key=value", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if seen[key] {
			return Plan{}, fmt.Errorf("fault: duplicate key %q", key)
		}
		seen[key] = true
		switch {
		case probFields[key] != nil:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %s: %v", key, err)
			}
			*probFields[key] = f
		case durFields[key] != nil:
			d, err := time.ParseDuration(val)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: %s: %v", key, err)
			}
			*durFields[key] = sim.Duration(d)
		default:
			return Plan{}, fmt.Errorf("fault: unknown key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// LossPlan is the standard chaos mix at loss rate r used by the chaos
// sweep: SA vIRQs drop at r and duplicate at r/2 with up to 30 µs
// delivery delay, SA acks are lost at r/2, wakeup kicks drop at r/4,
// and runstate snapshots may be 200 µs stale.
func LossPlan(r float64) Plan {
	return Plan{
		DropSA:        r,
		DupSA:         r / 2,
		DelaySA:       30 * sim.Microsecond,
		DropWake:      r / 4,
		AckLoss:       r / 2,
		StaleRunstate: 200 * sim.Microsecond,
	}
}

// Kind names one fault channel, used for injection counters.
type Kind int

const (
	KindSADrop Kind = iota + 1
	KindSADup
	KindSADelay
	KindWakeDrop
	KindWakeDup
	KindWakeDelay
	KindAckLoss
	KindAckDelay
	KindStaleRunstate
	KindTickJitter
	KindMigratorStall
	KindBlackout
	kindMax
)

func (k Kind) String() string {
	switch k {
	case KindSADrop:
		return "sa-drop"
	case KindSADup:
		return "sa-dup"
	case KindSADelay:
		return "sa-delay"
	case KindWakeDrop:
		return "wake-drop"
	case KindWakeDup:
		return "wake-dup"
	case KindWakeDelay:
		return "wake-delay"
	case KindAckLoss:
		return "ack-loss"
	case KindAckDelay:
		return "ack-delay"
	case KindStaleRunstate:
		return "stale-runstate"
	case KindTickJitter:
		return "tick-jitter"
	case KindMigratorStall:
		return "migrator-stall"
	case KindBlackout:
		return "blackout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injector draws fault decisions for one run. Create with NewInjector;
// a nil *Injector never injects.
type Injector struct {
	plan Plan

	// One independent stream per channel so fault classes do not
	// perturb each other's draws.
	saRNG       *sim.RNG
	wakeRNG     *sim.RNG
	ackRNG      *sim.RNG
	tickRNG     *sim.RNG
	migratorRNG *sim.RNG
	blackoutRNG *sim.RNG

	counts [kindMax]int64
	mKinds [kindMax]*obs.Counter // nil without a registry
}

// NewInjector builds an injector for plan seeded with seed. reg, when
// non-nil, receives per-channel injection counters
// (fault_injected_total{sub="fault",kind=...}).
func NewInjector(plan Plan, seed uint64, reg *obs.Registry) *Injector {
	root := sim.NewRNG(seed ^ 0xfa017eed)
	in := &Injector{
		plan:        plan,
		saRNG:       root.Fork(1),
		wakeRNG:     root.Fork(2),
		ackRNG:      root.Fork(3),
		tickRNG:     root.Fork(4),
		migratorRNG: root.Fork(5),
		blackoutRNG: root.Fork(6),
	}
	for k := Kind(1); k < kindMax; k++ {
		in.mKinds[k] = reg.Counter("fault_injected_total", obs.Labels{Sub: "fault", Kind: k.String()})
	}
	return in
}

// Plan returns the injector's plan (the zero plan on a nil injector).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// record counts one injected fault.
func (in *Injector) record(k Kind) {
	in.counts[k]++
	in.mKinds[k].Inc()
}

// Count reports how many faults of kind k were injected so far.
func (in *Injector) Count(k Kind) int64 {
	if in == nil {
		return 0
	}
	return in.counts[k]
}

// Total reports the total number of injected faults.
func (in *Injector) Total() int64 {
	if in == nil {
		return 0
	}
	var t int64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// CountsLine renders the non-zero injection counts as "kind=n" pairs in
// kind order, for summary tables. Empty when nothing was injected.
func (in *Injector) CountsLine() string {
	if in == nil {
		return ""
	}
	var parts []string
	for k := Kind(1); k < kindMax; k++ {
		if in.counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, in.counts[k]))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// delivery draws one vIRQ-delivery decision from rng.
func (in *Injector) delivery(rng *sim.RNG, drop, dup float64, maxDelay sim.Time,
	dropK, dupK, delayK Kind) (dropped bool, delays []sim.Time) {
	if drop == 0 && dup == 0 && maxDelay == 0 {
		return false, nil
	}
	if drop > 0 && rng.Float64() < drop {
		in.record(dropK)
		return true, nil
	}
	d := sim.Time(0)
	if maxDelay > 0 {
		d = sim.Time(rng.Float64() * float64(maxDelay))
		if d > 0 {
			in.record(delayK)
		}
	}
	delays = []sim.Time{d}
	if dup > 0 && rng.Float64() < dup {
		in.record(dupK)
		// The duplicate trails the original by an extra draw from the
		// same window (at least 1 ns so orderings stay stable).
		extra := sim.Time(1)
		if maxDelay > 0 {
			extra += sim.Time(rng.Float64() * float64(maxDelay))
		}
		delays = append(delays, d+extra)
	}
	return false, delays
}

// SADelivery decides the fate of one VIRQ_SA_UPCALL delivery: dropped
// outright, or delivered once (or twice, when duplicated) after the
// returned delays. A nil slice with dropped=false means "deliver now".
func (in *Injector) SADelivery() (dropped bool, delays []sim.Time) {
	if in == nil {
		return false, nil
	}
	return in.delivery(in.saRNG, in.plan.DropSA, in.plan.DupSA, in.plan.DelaySA,
		KindSADrop, KindSADup, KindSADelay)
}

// WakeDelivery decides the fate of one IRQKick wakeup notification.
func (in *Injector) WakeDelivery() (dropped bool, delays []sim.Time) {
	if in == nil {
		return false, nil
	}
	return in.delivery(in.wakeRNG, in.plan.DropWake, in.plan.DupWake, in.plan.DelayWake,
		KindWakeDrop, KindWakeDup, KindWakeDelay)
}

// AckFault decides the fate of one SA-acknowledging sched_op hypercall:
// lost entirely, or delayed by the returned latency (0 = on time).
func (in *Injector) AckFault() (lost bool, delay sim.Time) {
	if in == nil || (in.plan.AckLoss == 0 && in.plan.AckDelay == 0) {
		return false, 0
	}
	if in.plan.AckLoss > 0 && in.ackRNG.Float64() < in.plan.AckLoss {
		in.record(KindAckLoss)
		return true, 0
	}
	if in.plan.AckDelay > 0 {
		delay = sim.Time(in.ackRNG.Float64() * float64(in.plan.AckDelay))
		if delay > 0 {
			in.record(KindAckDelay)
		}
	}
	return false, delay
}

// RunstateMaxAge returns how stale a served VCPUOP_get_runstate
// snapshot may be (0 = always fresh).
func (in *Injector) RunstateMaxAge() sim.Time {
	if in == nil {
		return 0
	}
	return in.plan.StaleRunstate
}

// RecordStaleServe counts one runstate request answered from a stale
// snapshot.
func (in *Injector) RecordStaleServe() {
	if in != nil {
		in.record(KindStaleRunstate)
	}
}

// TickDelay returns the extra latency to add to a guest timer tick of
// the given period (uniform in [0, period*TickJitter]).
func (in *Injector) TickDelay(period sim.Time) sim.Time {
	if in == nil || in.plan.TickJitter == 0 || period <= 0 {
		return 0
	}
	d := sim.Time(in.tickRNG.Float64() * in.plan.TickJitter * float64(period))
	if d > 0 {
		in.record(KindTickJitter)
	}
	return d
}

// MigratorStall returns how long the migrator thread stalls before
// processing this batch (0 = no stall).
func (in *Injector) MigratorStall() sim.Time {
	if in == nil || in.plan.StallProb == 0 {
		return 0
	}
	if in.migratorRNG.Float64() < in.plan.StallProb {
		in.record(KindMigratorStall)
		return in.plan.StallFor
	}
	return 0
}

// BlackoutSchedule returns the blackout period and duration (0, 0 when
// blackouts are disabled).
func (in *Injector) BlackoutSchedule() (every, dur sim.Time) {
	if in == nil {
		return 0, 0
	}
	return in.plan.BlackoutEvery, in.plan.BlackoutFor
}

// BlackoutPick chooses the index of the vCPU to pause among n
// candidates and counts the blackout.
func (in *Injector) BlackoutPick(n int) int {
	if in == nil || n <= 0 {
		return 0
	}
	in.record(KindBlackout)
	return in.blackoutRNG.Intn(n)
}
