package fault

import "testing"

// FuzzParsePlan asserts that arbitrary specs never panic and that any
// spec ParsePlan accepts survives a String → ParsePlan round trip.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"",
		"none",
		"off",
		"drop-sa=0.1",
		"drop-sa=0.1,dup-sa=0.05,delay-sa=30us",
		"drop-wake=0.25,dup-wake=0.1,delay-wake=40us",
		"ack-loss=0.5,ack-delay=10us",
		"stale-runstate=200us",
		"tick-jitter=0.5",
		"stall-p=0.1,stall-for=200us",
		"blackout-every=50ms,blackout-for=2ms",
		LossPlan(0.1).String(),
		"drop-sa=1.5",
		"drop-sa=x",
		"delay-sa=-5us",
		"bogus=1",
		"drop-sa",
		"=,=,=",
		"drop-sa=0.1,drop-sa=0.2",
		"DROP-SA = 0.1 , TICK-JITTER = 1",
		"drop-sa=1e-300,delay-sa=9223372036854775807ns",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan(%q) accepted invalid plan %+v: %v", spec, p, err)
		}
		back, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%q) -> %q does not re-parse: %v", spec, p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip of %q: %+v != %+v", spec, back, p)
		}
	})
}
