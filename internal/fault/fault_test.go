package fault

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestParsePlanZero(t *testing.T) {
	for _, spec := range []string{"", "none", "off", "  NONE  "} {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if !p.Zero() {
			t.Fatalf("ParsePlan(%q) = %+v, want zero plan", spec, p)
		}
	}
	if s := (Plan{}).String(); s != "none" {
		t.Fatalf("zero plan renders %q, want none", s)
	}
}

func TestParsePlanFields(t *testing.T) {
	p, err := ParsePlan("drop-sa=0.1, dup-sa=0.05, delay-sa=30us, drop-wake=0.2, ack-loss=0.01, ack-delay=10us, stale-runstate=1ms, tick-jitter=0.25, stall-p=0.1, stall-for=200us, blackout-every=50ms, blackout-for=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropSA != 0.1 || p.DupSA != 0.05 || p.DelaySA != 30*sim.Microsecond {
		t.Fatalf("SA fields wrong: %+v", p)
	}
	if p.DropWake != 0.2 || p.AckLoss != 0.01 || p.AckDelay != 10*sim.Microsecond {
		t.Fatalf("wake/ack fields wrong: %+v", p)
	}
	if p.StaleRunstate != sim.Millisecond || p.TickJitter != 0.25 {
		t.Fatalf("stale/tick fields wrong: %+v", p)
	}
	if p.StallProb != 0.1 || p.StallFor != 200*sim.Microsecond {
		t.Fatalf("stall fields wrong: %+v", p)
	}
	if p.BlackoutEvery != 50*sim.Millisecond || p.BlackoutFor != 2*sim.Millisecond {
		t.Fatalf("blackout fields wrong: %+v", p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"drop-sa",                 // not key=value
		"bogus=1",                 // unknown key
		"drop-sa=1.5",             // probability out of range
		"drop-sa=x",               // bad float
		"delay-sa=zz",             // bad duration
		"delay-sa=-5us",           // negative duration
		"drop-sa=0.1,drop-sa=0.2", // duplicate key
		"blackout-every=1ms",      // blackout period without duration
		"stall-p=0.5",             // stall probability without duration
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) succeeded, want error", spec)
		}
	}
}

func TestPlanStringRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		LossPlan(0.1),
		{DropSA: 0.25, DelayWake: 40 * sim.Microsecond, TickJitter: 0.5},
		{BlackoutEvery: 100 * sim.Millisecond, BlackoutFor: sim.Millisecond},
	}
	for _, p := range plans {
		back, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("round trip of %q: %v", p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip of %q: got %+v, want %+v", p.String(), back, p)
		}
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if drop, delays := in.SADelivery(); drop || delays != nil {
		t.Fatal("nil injector faulted an SA")
	}
	if drop, delays := in.WakeDelivery(); drop || delays != nil {
		t.Fatal("nil injector faulted a wake")
	}
	if lost, d := in.AckFault(); lost || d != 0 {
		t.Fatal("nil injector faulted an ack")
	}
	if in.RunstateMaxAge() != 0 || in.TickDelay(sim.Millisecond) != 0 || in.MigratorStall() != 0 {
		t.Fatal("nil injector returned non-zero fault parameters")
	}
	if e, d := in.BlackoutSchedule(); e != 0 || d != 0 {
		t.Fatal("nil injector scheduled blackouts")
	}
	if in.Total() != 0 || in.CountsLine() != "" {
		t.Fatal("nil injector counted injections")
	}
	in.RecordStaleServe() // must not panic
}

func TestInjectorDeterminism(t *testing.T) {
	draw := func() []int64 {
		in := NewInjector(LossPlan(0.3), 42, nil)
		for i := 0; i < 1000; i++ {
			in.SADelivery()
			in.WakeDelivery()
			in.AckFault()
			in.TickDelay(4 * sim.Millisecond)
			in.MigratorStall()
		}
		var counts []int64
		for k := Kind(1); k < kindMax; k++ {
			counts = append(counts, in.Count(k))
		}
		return counts
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at kind %v: %d vs %d", Kind(i+1), a[i], b[i])
		}
	}
}

func TestInjectorStreamsIndependent(t *testing.T) {
	// Enabling wake faults must not change the SA draws.
	saOnly := NewInjector(Plan{DropSA: 0.5}, 7, nil)
	both := NewInjector(Plan{DropSA: 0.5, DropWake: 0.5}, 7, nil)
	for i := 0; i < 500; i++ {
		d1, _ := saOnly.SADelivery()
		both.WakeDelivery()
		d2, _ := both.SADelivery()
		if d1 != d2 {
			t.Fatalf("SA stream perturbed by wake faults at draw %d", i)
		}
	}
}

func TestInjectorRates(t *testing.T) {
	in := NewInjector(Plan{DropSA: 0.2}, 99, nil)
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if d, _ := in.SADelivery(); d {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("drop rate %.3f, want ~0.2", got)
	}
}

func TestInjectorCountsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInjector(Plan{DropSA: 1}, 1, reg)
	for i := 0; i < 5; i++ {
		if d, _ := in.SADelivery(); !d {
			t.Fatal("drop-sa=1 did not drop")
		}
	}
	if in.Count(KindSADrop) != 5 || in.Total() != 5 {
		t.Fatalf("counts wrong: %d/%d", in.Count(KindSADrop), in.Total())
	}
	if v := obs.CounterValue(reg, "fault_injected_total", obs.Labels{Sub: "fault", Kind: "sa-drop"}); v != 5 {
		t.Fatalf("metric = %d, want 5", v)
	}
	if line := in.CountsLine(); !strings.Contains(line, "sa-drop=5") {
		t.Fatalf("CountsLine %q missing sa-drop=5", line)
	}
}

func TestDupDeliveryOrdering(t *testing.T) {
	in := NewInjector(Plan{DupSA: 1, DelaySA: 10 * sim.Microsecond}, 3, nil)
	for i := 0; i < 100; i++ {
		drop, delays := in.SADelivery()
		if drop {
			t.Fatal("dup plan dropped")
		}
		if len(delays) != 2 {
			t.Fatalf("dup plan returned %d deliveries, want 2", len(delays))
		}
		if delays[1] <= delays[0] {
			t.Fatalf("duplicate at %v not after original at %v", delays[1], delays[0])
		}
	}
}
