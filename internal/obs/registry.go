// Package obs is the observability subsystem of the simulator: a typed
// metrics registry (counters, gauges, histograms keyed by
// subsystem/VM/CPU labels), a sim-engine-driven periodic sampler that
// snapshots registered metrics into time series, and machine-readable
// exporters (Prometheus text, CSV time series, Chrome trace_viewer
// JSON).
//
// Collection is opt-in and nil-safe, mirroring trace.Log: a nil
// *Registry hands out nil metric handles, and every mutating method on
// a nil handle is a no-op, so instrumentation sites never need a guard
// and a run without a registry pays only a nil check.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Labels identify one instance of a metric. Empty fields are omitted
// from the rendered label set.
type Labels struct {
	// Sub is the emitting subsystem ("hv", "guest", "wl").
	Sub string
	// VM is the virtual machine name, when the metric is per-VM.
	VM string
	// CPU names a vCPU ("fg/v0"), pCPU ("p2"), or guest CPU ("cpu1").
	CPU string
	// Kind is a free-form discriminator (a runstate name, an event
	// class) for metric families split along one more dimension.
	Kind string
}

// String renders the labels in Prometheus form, e.g.
// `{sub="hv",vm="fg",cpu="fg/v0"}`. Empty label sets render as "".
func (l Labels) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	add("sub", l.Sub)
	add("vm", l.VM)
	add("cpu", l.CPU)
	add("kind", l.Kind)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counter is a monotonically non-decreasing int64 (event counts,
// cumulative nanoseconds). All methods are nil-safe.
type Counter struct{ v int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// AddTime increments the counter by a virtual duration in nanoseconds.
func (c *Counter) AddTime(d sim.Time) { c.Add(int64(d)) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous float64 value. All methods are nil-safe.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) {
	if g != nil {
		g.v = x
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates a distribution of virtual-time samples with
// constant-time count/sum and sorted-reservoir quantiles. All methods
// are nil-safe.
type Histogram struct {
	res   metrics.Reservoir
	sum   sim.Time
	count int64
}

// Observe records one sample.
func (h *Histogram) Observe(v sim.Time) {
	if h == nil {
		return
	}
	h.res.Add(v)
	h.sum += v
	h.count++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() sim.Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() sim.Time {
	if h == nil {
		return 0
	}
	return h.res.Max()
}

// Percentile returns the p-th percentile by nearest rank (0 with no
// samples).
func (h *Histogram) Percentile(p float64) sim.Time {
	if h == nil {
		return 0
	}
	return h.res.Percentile(p)
}

// Quantiles returns the percentiles for each p in ps.
func (h *Histogram) Quantiles(ps ...float64) []sim.Time {
	if h == nil {
		return make([]sim.Time, len(ps))
	}
	return h.res.Quantiles(ps...)
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
	kindGaugeFunc
	kindSketch
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindGaugeFunc:
		return "gauge"
	case kindSketch:
		return "sketch"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// entry is one registered metric instance.
type entry struct {
	name   string
	labels Labels
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	sketch  *Sketch
	fn      func() float64
}

// key is the unique identity of an entry.
func (e *entry) key() string { return e.name + e.labels.String() }

// Registry holds every registered metric of a run. The zero value is
// not usable; call NewRegistry. A nil *Registry is a valid "collection
// off" registry: its getters return nil handles.
type Registry struct {
	byKey map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*entry{}}
}

// get returns the existing entry for (name, labels) or registers a new
// one of the given kind. Re-registering under a different kind is a
// programming error and panics.
func (r *Registry) get(name string, l Labels, k metricKind) *entry {
	e := &entry{name: name, labels: l, kind: k}
	if old, ok := r.byKey[e.key()]; ok {
		if old.kind != k {
			panic(fmt.Sprintf("obs: metric %s%s registered as %s and %s", name, l, old.kind, k))
		}
		return old
	}
	r.byKey[e.key()] = e
	return e
}

// Counter returns (registering on first use) the counter for
// (name, labels). Returns nil on a nil registry.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	e := r.get(name, l, kindCounter)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns (registering on first use) the gauge for (name, labels).
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string, l Labels) *Gauge {
	if r == nil {
		return nil
	}
	e := r.get(name, l, kindGauge)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram returns (registering on first use) the histogram for
// (name, labels). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, l Labels) *Histogram {
	if r == nil {
		return nil
	}
	e := r.get(name, l, kindHistogram)
	if e.hist == nil {
		e.hist = &Histogram{}
	}
	return e.hist
}

// Sketch returns (registering on first use) the DDSketch-style
// quantile sketch for (name, labels). Unlike Histogram's sampling
// reservoir, a sketch keeps bounded-relative-error quantiles over the
// whole stream and merges exactly, so scrape pipelines can aggregate
// per-host sketches. Non-positive alpha selects DefaultSketchAlpha;
// the alpha of the first registration wins. Returns nil on a nil
// registry.
func (r *Registry) Sketch(name string, l Labels, alpha float64) *Sketch {
	if r == nil {
		return nil
	}
	e := r.get(name, l, kindSketch)
	if e.sketch == nil {
		e.sketch = NewSketch(alpha)
	}
	return e.sketch
}

// GaugeFunc registers a polled gauge: fn is evaluated at sample and
// export time. No-op on a nil registry; re-registering replaces fn.
func (r *Registry) GaugeFunc(name string, l Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.get(name, l, kindGaugeFunc).fn = fn
}

// Len returns the number of registered metric instances.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.byKey)
}

// sortedEntries returns the entries ordered by name then label string,
// the deterministic iteration order behind every exporter.
func (r *Registry) sortedEntries() []*entry {
	if r == nil {
		return nil
	}
	es := make([]*entry, 0, len(r.byKey))
	for _, e := range r.byKey {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].name != es[j].name {
			return es[i].name < es[j].name
		}
		return es[i].labels.String() < es[j].labels.String()
	})
	return es
}

// Visit calls fn for every registered metric in deterministic order.
// Exactly one of counter/gauge/hist/sketch is non-nil per call; polled
// gauges are presented as a *Gauge holding the current fn value.
func (r *Registry) Visit(fn func(name string, l Labels, counter *Counter, gauge *Gauge, hist *Histogram, sketch *Sketch)) {
	for _, e := range r.sortedEntries() {
		switch e.kind {
		case kindCounter:
			fn(e.name, e.labels, e.counter, nil, nil, nil)
		case kindGauge:
			fn(e.name, e.labels, nil, e.gauge, nil, nil)
		case kindGaugeFunc:
			fn(e.name, e.labels, nil, &Gauge{v: e.fn()}, nil, nil)
		case kindHistogram:
			fn(e.name, e.labels, nil, nil, e.hist, nil)
		case kindSketch:
			fn(e.name, e.labels, nil, nil, nil, e.sketch)
		}
	}
}

// FindSketch returns the sketch registered under (name, labels), or
// nil when absent. It never registers.
func (r *Registry) FindSketch(name string, l Labels) *Sketch {
	if r == nil {
		return nil
	}
	e := &entry{name: name, labels: l}
	if old, ok := r.byKey[e.key()]; ok && old.kind == kindSketch {
		return old.sketch
	}
	return nil
}

// FindHistogram returns the histogram registered under (name, labels),
// or nil when absent (or on a nil registry). Unlike Histogram it never
// registers.
func (r *Registry) FindHistogram(name string, l Labels) *Histogram {
	if r == nil {
		return nil
	}
	e := &entry{name: name, labels: l}
	if old, ok := r.byKey[e.key()]; ok && old.kind == kindHistogram {
		return old.hist
	}
	return nil
}

// FindCounter returns the counter registered under (name, labels), or
// nil when absent. It never registers.
func (r *Registry) FindCounter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	e := &entry{name: name, labels: l}
	if old, ok := r.byKey[e.key()]; ok && old.kind == kindCounter {
		return old.counter
	}
	return nil
}
