package obs

import (
	"sort"

	"repro/internal/sim"
)

// Point is one time-series observation in virtual time.
type Point struct {
	At sim.Time
	V  float64
}

// Series is one sampled time series.
type Series struct {
	// Name is the metric name plus an optional ".field" suffix for
	// histogram-derived series (count, mean, p95, max).
	Name   string
	Labels Labels
	Points []Point
}

// Sampler periodically snapshots every metric of a registry into time
// series, driven by the simulation engine's virtual clock. Like the
// registry it is opt-in: scenarios that never attach one pay nothing.
type Sampler struct {
	reg      *Registry
	interval sim.Time
	eng      *sim.Engine
	series   map[string]*Series
	samples  int

	// OnPoint, when non-nil, observes every sampled point as it is
	// appended (after the point is stored). The online watch layer
	// (internal/watch) subscribes here to fold sampler series into its
	// windowed rollup store without a second registry walk.
	OnPoint func(name string, l Labels, at sim.Time, v float64)
}

// NewSampler creates a sampler snapshotting reg every interval of
// virtual time.
func NewSampler(reg *Registry, interval sim.Time) *Sampler {
	if reg == nil {
		panic("obs: NewSampler needs a registry")
	}
	if interval <= 0 {
		panic("obs: NewSampler needs a positive interval")
	}
	return &Sampler{reg: reg, interval: interval, series: map[string]*Series{}}
}

// Interval returns the sampling cadence.
func (s *Sampler) Interval() sim.Time { return s.interval }

// Samples returns how many sampling rounds have run.
func (s *Sampler) Samples() int { return s.samples }

// Start arms the periodic sampling event on eng. A nil *Sampler is a
// no-op, so callers can wire an optional sampler unconditionally.
func (s *Sampler) Start(eng *sim.Engine) {
	if s == nil {
		return
	}
	s.eng = eng
	eng.Every(s.interval, "obs-sample", s.sample)
}

// Sample takes one snapshot immediately (used by tests and by callers
// that want a final post-run data point).
func (s *Sampler) Sample() {
	if s == nil {
		return
	}
	s.sample()
}

func (s *Sampler) sample() {
	var now sim.Time
	if s.eng != nil {
		now = s.eng.Now()
	}
	s.samples++
	s.reg.Visit(func(name string, l Labels, c *Counter, g *Gauge, h *Histogram, sk *Sketch) {
		switch {
		case c != nil:
			s.append(name, l, now, float64(c.Value()))
		case g != nil:
			s.append(name, l, now, g.Value())
		case h != nil:
			// A histogram contributes a small family of derived series;
			// quantiles are snapshotted so the series shows how the
			// distribution evolved, not just its final shape.
			s.append(name+".count", l, now, float64(h.Count()))
			s.append(name+".mean", l, now, float64(h.Mean()))
			s.append(name+".p95", l, now, float64(h.Percentile(95)))
			s.append(name+".max", l, now, float64(h.Max()))
		case sk != nil:
			// Sketches snapshot the tail quantiles a burn-rate monitor
			// watches (see WritePrometheus for the scrape-shaped view).
			s.append(name+".count", l, now, float64(sk.Count()))
			s.append(name+".p50", l, now, float64(sk.Percentile(50)))
			s.append(name+".p99", l, now, float64(sk.Percentile(99)))
			s.append(name+".p999", l, now, float64(sk.Percentile(99.9)))
		}
	})
}

func (s *Sampler) append(name string, l Labels, at sim.Time, v float64) {
	key := name + l.String()
	se := s.series[key]
	if se == nil {
		se = &Series{Name: name, Labels: l}
		s.series[key] = se
	}
	se.Points = append(se.Points, Point{At: at, V: v})
	if s.OnPoint != nil {
		s.OnPoint(name, l, at, v)
	}
}

// AllSeries returns every series sorted by name then labels.
func (s *Sampler) AllSeries() []*Series {
	if s == nil {
		return nil
	}
	out := make([]*Series, 0, len(s.series))
	for _, se := range s.series {
		out = append(out, se)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels.String() < out[j].Labels.String()
	})
	return out
}

// SeriesByName returns the series for (name, labels), or nil.
func (s *Sampler) SeriesByName(name string, l Labels) *Series {
	if s == nil {
		return nil
	}
	return s.series[name+l.String()]
}
