package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Chrome trace_viewer / Perfetto export. The trace.Log's string-
// formatted ring is lowered into the Trace Event Format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// vCPU runstate transitions become B/E duration slices on a per-vCPU
// track, everything else becomes instant events, and metadata events
// name the tracks. The output loads directly in chrome://tracing and
// ui.perfetto.dev.

// chromeEvent is one entry of the traceEvents array. Timestamps are in
// microseconds, the unit the trace viewer expects.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// simPid is the single synthetic process all tracks live under.
const simPid = 1

func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChromeTrace converts the events of log that fall inside
// [from, to] (to == 0 means no upper bound) to Chrome trace JSON.
func WriteChromeTrace(w io.Writer, log *trace.Log, from, to sim.Time) error {
	var events []trace.Event
	for _, e := range log.Events() {
		if e.At < from || (to > 0 && e.At > to) {
			continue
		}
		events = append(events, e)
	}

	// Stable thread ids: one track per subject, ordered by name.
	subjects := map[string]int{}
	for _, e := range events {
		subjects[e.Subject] = 0
	}
	names := make([]string, 0, len(subjects))
	for s := range subjects {
		names = append(names, s)
	}
	sort.Strings(names)
	for i, s := range names {
		subjects[s] = i + 1
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: simPid,
		Args: map[string]string{"name": "irs-sim"},
	})
	for _, s := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: simPid, Tid: subjects[s],
			Args: map[string]string{"name": s},
		})
	}

	// open tracks which vCPU subjects currently have a B slice pending.
	open := map[string]string{}
	end := to
	for _, e := range events {
		if end < e.At {
			end = e.At
		}
		tid := subjects[e.Subject]
		switch e.Kind {
		case trace.KindVCPUState:
			prev, next, ok := splitTransition(e.Detail)
			if !ok {
				out.TraceEvents = append(out.TraceEvents, instant(e, tid))
				continue
			}
			if name, pending := open[e.Subject]; pending && name == prev {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: prev, Ph: "E", Ts: usec(e.At), Pid: simPid, Tid: tid, Cat: "vcpu",
				})
				delete(open, e.Subject)
			}
			// Only non-idle states get slices; "blocked" gaps read as
			// idle track space, which is what a scheduler timeline wants.
			if next == "running" || next == "runnable" {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: next, Ph: "B", Ts: usec(e.At), Pid: simPid, Tid: tid, Cat: "vcpu",
				})
				open[e.Subject] = next
			}
		default:
			out.TraceEvents = append(out.TraceEvents, instant(e, tid))
		}
	}
	// Close any slice still open so B/E pairs balance at the window edge.
	for _, s := range names {
		if name, pending := open[s]; pending {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Ph: "E", Ts: usec(end), Pid: simPid, Tid: subjects[s], Cat: "vcpu",
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// instant renders a trace event as an instant ("i") marker.
func instant(e trace.Event, tid int) chromeEvent {
	return chromeEvent{
		Name: e.Kind.String(), Ph: "i", Ts: usec(e.At), Pid: simPid, Tid: tid,
		Cat: e.Kind.String(), S: "t",
		Args: map[string]string{"subject": e.Subject, "detail": e.Detail},
	}
}

// splitTransition parses a "from -> to" runstate detail.
func splitTransition(detail string) (prev, next string, ok bool) {
	i := strings.Index(detail, " -> ")
	if i < 0 {
		return "", "", false
	}
	return detail[:i], detail[i+4:], true
}
