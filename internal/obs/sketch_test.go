package obs

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

// exactPercentile is the nearest-rank order statistic the sketch
// approximates, computed from the full sorted sample.
func exactPercentile(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestSketchRelativeErrorBound(t *testing.T) {
	// Property: for heavy-tailed exponential-ish streams of many sizes
	// and seeds, every quantile estimate stays within the advertised
	// relative error of the true order statistic.
	for _, alpha := range []float64{0.01, 0.05} {
		for _, n := range []int{10, 137, 5000} {
			for seed := uint64(1); seed <= 3; seed++ {
				rng := sim.NewRNG(seed * 7919)
				s := NewSketch(alpha)
				var vals []sim.Time
				for i := 0; i < n; i++ {
					v := rng.Exp(2 * sim.Millisecond)
					vals = append(vals, v)
					s.Add(v)
				}
				sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
				for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
					want := exactPercentile(vals, p)
					got := s.Percentile(p)
					// ±alpha relative, plus 1ns slack for integer rounding.
					tol := sim.Time(alpha*float64(want)) + 1
					if got < want-tol || got > want+tol {
						t.Fatalf("alpha=%v n=%d seed=%d p%v: got %v, exact %v (tol %v)",
							alpha, n, seed, p, got, want, tol)
					}
				}
				if s.Count() != int64(n) {
					t.Fatalf("count = %d, want %d", s.Count(), n)
				}
				if s.Min() != vals[0] || s.Max() != vals[n-1] {
					t.Fatalf("min/max = %v/%v, want %v/%v", s.Min(), s.Max(), vals[0], vals[n-1])
				}
			}
		}
	}
}

func TestSketchMergeAssociative(t *testing.T) {
	// Three shards of one stream must merge to the same sketch in any
	// association order, and match the all-in-one sketch exactly.
	rng := sim.NewRNG(42)
	shards := make([][]sim.Time, 3)
	var all []sim.Time
	for i := 0; i < 3000; i++ {
		v := rng.Exp(time500())
		shards[i%3] = append(shards[i%3], v)
		all = append(all, v)
	}
	build := func(vals ...[]sim.Time) *Sketch {
		s := NewSketch(0.01)
		for _, vs := range vals {
			for _, v := range vs {
				s.Add(v)
			}
		}
		return s
	}
	// ((A ⊔ B) ⊔ C)
	left := build(shards[0])
	ab := build(shards[1])
	left.Merge(ab)
	left.Merge(build(shards[2]))
	// (A ⊔ (B ⊔ C))
	right := build(shards[0])
	bc := build(shards[1])
	bc.Merge(build(shards[2]))
	right.Merge(bc)
	// single stream
	one := build(all)

	for _, p := range []float64{0, 10, 50, 90, 99, 99.9, 100} {
		lv, rv, ov := left.Percentile(p), right.Percentile(p), one.Percentile(p)
		if lv != rv || lv != ov {
			t.Fatalf("p%v: (A⊔B)⊔C=%v A⊔(B⊔C)=%v single=%v — merge is not exact", p, lv, rv, ov)
		}
	}
	if left.Count() != one.Count() || left.Min() != one.Min() || left.Max() != one.Max() {
		t.Fatal("merged count/min/max differ from the single-stream sketch")
	}
}

func time500() sim.Time { return 500 * sim.Microsecond }

func TestSketchZeroAndEmpty(t *testing.T) {
	s := NewSketch(0.01)
	if s.Percentile(99) != 0 || s.Count() != 0 {
		t.Fatal("empty sketch must report zero")
	}
	for i := 0; i < 10; i++ {
		s.Add(0)
	}
	s.Add(sim.Millisecond)
	if got := s.Percentile(50); got != 0 {
		t.Fatalf("p50 of mostly-zero stream = %v, want 0", got)
	}
	if got := s.Percentile(100); got < sim.Time(float64(sim.Millisecond)*0.99) {
		t.Fatalf("p100 = %v, want ≈1ms", got)
	}
}

func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different alpha did not panic")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(sim.Millisecond)
	a.Merge(b)
}
