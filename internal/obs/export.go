package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// This file holds the text exporters. Both are deterministic: metric
// and series iteration is sorted, and floats render with strconv's
// shortest round-trip formatting, so the same seed yields byte-
// identical output.

// formatFloat renders v in the shortest form that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the registry in the Prometheus text
// exposition format. Counters and gauges emit one sample each;
// histograms emit a summary (quantile series plus _sum and _count).
func WritePrometheus(w io.Writer, r *Registry) error {
	lastType := map[string]bool{}
	typeLine := func(name, typ string) string {
		if lastType[name] {
			return ""
		}
		lastType[name] = true
		return fmt.Sprintf("# TYPE %s %s\n", name, typ)
	}
	var err error
	emit := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.Visit(func(name string, l Labels, c *Counter, g *Gauge, h *Histogram, sk *Sketch) {
		switch {
		case c != nil:
			emit("%s", typeLine(name, "counter"))
			emit("%s%s %d\n", name, l, c.Value())
		case g != nil:
			emit("%s", typeLine(name, "gauge"))
			emit("%s%s %s\n", name, l, formatFloat(g.Value()))
		case h != nil:
			emit("%s", typeLine(name, "summary"))
			qs := h.Quantiles(50, 95, 99)
			for i, q := range []string{"0.5", "0.95", "0.99"} {
				emit("%s%s %d\n", name, quantileLabels(l, q), int64(qs[i]))
			}
			emit("%s_sum%s %d\n", name, l, int64(h.Sum()))
			emit("%s_count%s %d\n", name, l, h.Count())
		case sk != nil:
			// Sketches surface the deeper tail a reservoir can't promise:
			// p99.9 with bounded relative error, scrape after scrape.
			emit("%s", typeLine(name, "summary"))
			for _, q := range []struct {
				p     float64
				label string
			}{{50, "0.5"}, {99, "0.99"}, {99.9, "0.999"}} {
				emit("%s%s %d\n", name, quantileLabels(l, q.label), int64(sk.Percentile(q.p)))
			}
			emit("%s_sum%s %d\n", name, l, int64(sk.Sum()))
			emit("%s_count%s %d\n", name, l, sk.Count())
		}
	})
	return err
}

// quantileLabels renders l with a quantile="q" label appended.
func quantileLabels(l Labels, q string) string {
	s := l.String()
	if s == "" {
		return fmt.Sprintf("{quantile=%q}", q)
	}
	return s[:len(s)-1] + fmt.Sprintf(",quantile=%q}", q)
}

// WriteCSVTable writes one header row followed by rows through a
// shared csv.Writer. Every CSV surface of the repo (sampler exports,
// irsblame -csv) funnels through here so quoting and flushing behave
// identically everywhere.
func WriteCSVTable(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV renders the sampler's time series in long form, one row per
// point: metric,labels,t_ns,value. Rows are sorted by series then time.
func WriteCSV(w io.Writer, s *Sampler) error {
	var rows [][]string
	for _, se := range s.AllSeries() {
		for _, pt := range se.Points {
			rows = append(rows, []string{
				se.Name,
				se.Labels.String(),
				strconv.FormatInt(int64(pt.At), 10),
				formatFloat(pt.V),
			})
		}
	}
	return WriteCSVTable(w, []string{"metric", "labels", "t_ns", "value"}, rows)
}

// HistogramLine renders the headline stats of a histogram as
// "n=<count> p50=<..> p95=<..> p99=<..> max=<..>" using virtual-time
// formatting, for summary tables.
func HistogramLine(h *Histogram) string {
	if h.Count() == 0 {
		return "n=0"
	}
	qs := h.Quantiles(50, 95, 99)
	return fmt.Sprintf("n=%d p50=%s p95=%s p99=%s max=%s",
		h.Count(), qs[0], qs[1], qs[2], h.Max())
}

// CounterValue is a convenience lookup: the value of the counter
// registered under (name, labels), 0 when absent.
func CounterValue(r *Registry, name string, l Labels) int64 {
	return r.FindCounter(name, l).Value()
}

// CounterTime is CounterValue for nanosecond-accumulating counters.
func CounterTime(r *Registry, name string, l Labels) sim.Time {
	return sim.Time(CounterValue(r, name, l))
}
